#include "net/http.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace saad::net {
namespace {

using Status = HttpParser::Status;

#define SKIP_IF_METRICS_DISABLED()                                     \
  if (!obs::kMetricsEnabled)                                           \
  GTEST_SKIP() << "mutations compiled out (SAAD_METRICS=OFF)"

HttpParser parser(std::size_t max_line = 1024, std::size_t max_bytes = 8192,
                  std::size_t max_headers = 64) {
  return HttpParser(max_line, max_bytes, max_headers);
}

Status feed_all(HttpParser& p, const std::string& bytes) {
  return p.feed(bytes.data(), bytes.size());
}

// ---- Parser unit tests ------------------------------------------------------

TEST(HttpParser, ParsesSimpleGet) {
  auto p = parser();
  EXPECT_EQ(feed_all(p, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Status::kOk);
  EXPECT_EQ(p.request().method, "GET");
  EXPECT_EQ(p.request().path, "/metrics");
}

TEST(HttpParser, StripsQueryAndAcceptsHead) {
  auto p = parser();
  EXPECT_EQ(feed_all(p, "HEAD /statusz?pretty=1 HTTP/1.0\r\n\r\n"),
            Status::kOk);
  EXPECT_EQ(p.request().method, "HEAD");
  EXPECT_EQ(p.request().path, "/statusz");
}

TEST(HttpParser, ToleratesBareLfLineEndings) {
  auto p = parser();
  EXPECT_EQ(feed_all(p, "GET /healthz HTTP/1.1\nHost: x\n\n"), Status::kOk);
  EXPECT_EQ(p.request().path, "/healthz");
}

TEST(HttpParser, IncrementalByteAtATimeFeed) {
  auto p = parser();
  const std::string request = "GET /spans HTTP/1.1\r\nAccept: */*\r\n\r\n";
  for (std::size_t i = 0; i + 1 < request.size(); ++i)
    ASSERT_EQ(p.feed(&request[i], 1), Status::kNeedMore) << "byte " << i;
  EXPECT_EQ(p.feed(&request[request.size() - 1], 1), Status::kOk);
  EXPECT_EQ(p.request().path, "/spans");
}

TEST(HttpParser, RejectsNonGetHeadAsBadMethod) {
  auto p = parser();
  EXPECT_EQ(feed_all(p, "POST /metrics HTTP/1.1\r\n\r\n"), Status::kBadMethod);
}

TEST(HttpParser, RejectsBodies) {
  auto trailing = parser();
  EXPECT_EQ(feed_all(trailing, "GET / HTTP/1.1\r\n\r\nxx"),
            Status::kBadRequest);
  auto length = parser();
  EXPECT_EQ(feed_all(length, "GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\n"),
            Status::kBadRequest);
  auto chunked = parser();
  EXPECT_EQ(
      feed_all(chunked, "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
      Status::kBadRequest);
  auto zero = parser();
  EXPECT_EQ(feed_all(zero, "GET / HTTP/1.1\r\nContent-Length: 0\r\n\r\n"),
            Status::kOk);
}

TEST(HttpParser, RejectsMalformedRequestLines) {
  for (const char* bad : {
           "GET /\r\n\r\n",                       // missing version
           "GET / HTTP/1.1 extra\r\n\r\n",        // four tokens
           "GET / HTTP/2\r\n\r\n",                // wrong version shape
           "get / HTTP/1.1\r\n\r\n",              // lowercase method
           "GET metrics HTTP/1.1\r\n\r\n",        // target not absolute
           "GET /a b HTTP/1.1\r\n\r\n",           // space inside target
           "\r\n\r\n",                            // empty head
           "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",  // malformed header
       }) {
    auto p = parser();
    EXPECT_EQ(feed_all(p, bad), Status::kBadRequest) << bad;
  }
}

TEST(HttpParser, OversizedRequestLineIsLineTooLong) {
  auto p = parser(64, 8192, 64);
  const std::string request =
      "GET /" + std::string(200, 'a') + " HTTP/1.1\r\n\r\n";
  EXPECT_EQ(feed_all(p, request), Status::kLineTooLong);

  // The cap also fires before any newline arrives (slow-loris style).
  auto drip = parser(64, 8192, 64);
  const std::string long_line = "GET /" + std::string(200, 'b');
  EXPECT_EQ(feed_all(drip, long_line), Status::kLineTooLong);
}

TEST(HttpParser, OversizedHeadIsHeadersTooBig) {
  auto p = parser(1024, 256, 64);
  const std::string request = "GET / HTTP/1.1\r\nX-Pad: " +
                              std::string(400, 'c') + "\r\n\r\n";
  EXPECT_EQ(feed_all(p, request), Status::kHeadersTooBig);

  auto many = parser(1024, 8192, 4);
  std::string headers = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 8; ++i)
    headers += "X-H" + std::to_string(i) + ": v\r\n";
  headers += "\r\n";
  EXPECT_EQ(feed_all(many, headers), Status::kHeadersTooBig);
}

TEST(HttpParser, VerdictIsSticky) {
  auto p = parser();
  EXPECT_EQ(feed_all(p, "BAD\r\n\r\n"), Status::kBadRequest);
  EXPECT_EQ(feed_all(p, "GET / HTTP/1.1\r\n\r\n"), Status::kBadRequest);
}

// ---- Live server tests ------------------------------------------------------

struct HttpCounters {
  std::uint64_t requests, parse_rejects, request_line_rejects, header_rejects,
      method_rejects, not_found, truncated;

  static std::uint64_t value(const char* name) {
    return obs::MetricsRegistry::global().counter(name, "").value();
  }
  static std::uint64_t response_value(const char* code) {
    return obs::MetricsRegistry::global()
        .counter("saad_http_responses_total", "", {{"code", code}})
        .value();
  }
  static HttpCounters snap() {
    return HttpCounters{value("saad_http_requests_total"),
                        value("saad_http_parse_rejects_total"),
                        value("saad_http_request_line_rejects_total"),
                        value("saad_http_header_rejects_total"),
                        value("saad_http_method_rejects_total"),
                        value("saad_http_not_found_total"),
                        value("saad_http_truncated_total")};
  }
};

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// One request, read to EOF (the admin plane always closes after a response).
std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = connect_to(port);
  if (fd < 0) return "";
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t w = ::write(fd, request.data() + off, request.size() - off);
    if (w <= 0) break;
    off += static_cast<std::size_t>(w);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

class AdminServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AdminServer::Options options;
    options.poll_interval_ms = 10;
    options.max_request_line = 128;
    options.max_request_bytes = 512;
    options.max_headers = 8;
    server_ = std::make_unique<AdminServer>(options);
    server_->route("/ping", [](const HttpRequest&) {
      HttpResponse response;
      response.body = "pong\n";
      return response;
    });
    server_->route("/stream", [](const HttpRequest&) {
      HttpResponse response;
      response.body_writer = [](int fd) {
        const char chunk[] = "streamed-body\n";
        [[maybe_unused]] const auto n = ::write(fd, chunk, sizeof(chunk) - 1);
      };
      return response;
    });
    server_->route("/unavailable", [](const HttpRequest&) {
      HttpResponse response;
      response.status = 503;
      response.body = "not ready\n";
      return response;
    });
    ASSERT_TRUE(server_->start());
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override { server_->stop(); }

  std::unique_ptr<AdminServer> server_;
};

TEST_F(AdminServerTest, ServesRegisteredRoute) {
  const std::string response =
      http_exchange(server_->port(), "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_EQ(response.substr(response.size() - 5), "pong\n");
}

TEST_F(AdminServerTest, HeadOmitsBody) {
  const std::string response =
      http_exchange(server_->port(), "HEAD /ping HTTP/1.1\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_EQ(response.find("pong"), std::string::npos);
}

TEST_F(AdminServerTest, StreamedBodyIsCloseDelimited) {
  const std::string response =
      http_exchange(server_->port(), "GET /stream HTTP/1.1\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << response;
  EXPECT_EQ(response.find("Content-Length:"), std::string::npos) << response;
  EXPECT_NE(response.find("\r\n\r\nstreamed-body\n"), std::string::npos);
}

TEST_F(AdminServerTest, HandlerStatusPassesThrough) {
  const std::string response =
      http_exchange(server_->port(), "GET /unavailable HTTP/1.1\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 503 Service Unavailable\r\n", 0), 0u)
      << response;
}

TEST_F(AdminServerTest, UnknownPathCounts404Exactly) {
  SKIP_IF_METRICS_DISABLED();
  const auto before = HttpCounters::snap();
  const auto r404 = HttpCounters::response_value("404");
  const std::string response =
      http_exchange(server_->port(), "GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u) << response;
  const auto after = HttpCounters::snap();
  EXPECT_EQ(after.requests, before.requests + 1);
  EXPECT_EQ(after.not_found, before.not_found + 1);
  EXPECT_EQ(HttpCounters::response_value("404"), r404 + 1);
  EXPECT_EQ(after.parse_rejects, before.parse_rejects);
  EXPECT_EQ(after.method_rejects, before.method_rejects);
}

TEST_F(AdminServerTest, OversizedRequestLineCounts414Exactly) {
  SKIP_IF_METRICS_DISABLED();
  const auto before = HttpCounters::snap();
  const auto r414 = HttpCounters::response_value("414");
  const std::string request =
      "GET /" + std::string(300, 'a') + " HTTP/1.1\r\n\r\n";
  const std::string response = http_exchange(server_->port(), request);
  EXPECT_EQ(response.rfind("HTTP/1.1 414 URI Too Long\r\n", 0), 0u)
      << response;
  const auto after = HttpCounters::snap();
  EXPECT_EQ(after.request_line_rejects, before.request_line_rejects + 1);
  EXPECT_EQ(HttpCounters::response_value("414"), r414 + 1);
  EXPECT_EQ(after.header_rejects, before.header_rejects);
  EXPECT_EQ(after.parse_rejects, before.parse_rejects);
  EXPECT_EQ(after.requests, before.requests);
  EXPECT_EQ(after.truncated, before.truncated);
}

TEST_F(AdminServerTest, OversizedHeadersCount431Exactly) {
  SKIP_IF_METRICS_DISABLED();
  const auto before = HttpCounters::snap();
  const auto r431 = HttpCounters::response_value("431");
  const std::string request =
      "GET /ping HTTP/1.1\r\nX-Pad: " + std::string(600, 'b') + "\r\n\r\n";
  const std::string response = http_exchange(server_->port(), request);
  EXPECT_EQ(
      response.rfind("HTTP/1.1 431 Request Header Fields Too Large\r\n", 0),
      0u)
      << response;
  const auto after = HttpCounters::snap();
  EXPECT_EQ(after.header_rejects, before.header_rejects + 1);
  EXPECT_EQ(HttpCounters::response_value("431"), r431 + 1);
  EXPECT_EQ(after.request_line_rejects, before.request_line_rejects);
  EXPECT_EQ(after.parse_rejects, before.parse_rejects);
  EXPECT_EQ(after.requests, before.requests);
}

TEST_F(AdminServerTest, PostCounts405AndMalformedCounts400) {
  SKIP_IF_METRICS_DISABLED();
  const auto before = HttpCounters::snap();
  const std::string post =
      http_exchange(server_->port(), "POST /ping HTTP/1.1\r\n\r\n");
  EXPECT_EQ(post.rfind("HTTP/1.1 405 Method Not Allowed\r\n", 0), 0u) << post;
  const std::string bad = http_exchange(server_->port(), "NOT-HTTP\r\n\r\n");
  EXPECT_EQ(bad.rfind("HTTP/1.1 400 Bad Request\r\n", 0), 0u) << bad;
  const auto after = HttpCounters::snap();
  EXPECT_EQ(after.method_rejects, before.method_rejects + 1);
  EXPECT_EQ(after.parse_rejects, before.parse_rejects + 1);
  EXPECT_EQ(after.requests, before.requests);
}

TEST_F(AdminServerTest, DisconnectMidRequestCountsTruncated) {
  SKIP_IF_METRICS_DISABLED();
  const auto before = HttpCounters::snap();
  const int fd = connect_to(server_->port());
  ASSERT_GE(fd, 0);
  const char partial[] = "GET /ping HT";
  ASSERT_EQ(::write(fd, partial, sizeof(partial) - 1),
            static_cast<ssize_t>(sizeof(partial) - 1));
  // Give the I/O thread a poll cycle to ingest the partial bytes before the
  // close lands, so the parser has started.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ::close(fd);
  for (int i = 0; i < 200; ++i) {
    if (HttpCounters::snap().truncated > before.truncated) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const auto after = HttpCounters::snap();
  EXPECT_EQ(after.truncated, before.truncated + 1);
  EXPECT_EQ(after.requests, before.requests);
  EXPECT_EQ(after.parse_rejects, before.parse_rejects);
}

TEST(AdminServer, StopIsIdempotentAndRestartable) {
  AdminServer::Options options;
  options.poll_interval_ms = 10;
  AdminServer server{options};
  server.route("/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong\n";
    return response;
  });
  ASSERT_TRUE(server.start());
  const std::uint16_t first_port = server.port();
  EXPECT_NE(first_port, 0);
  server.stop();
  server.stop();
  EXPECT_FALSE(server.running());
  ASSERT_TRUE(server.start());
  const std::string response =
      http_exchange(server.port(), "GET /ping HTTP/1.1\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << response;
  server.stop();
}

TEST(AdminServer, StartFailsOnOccupiedPort) {
  AdminServer::Options options;
  options.poll_interval_ms = 10;
  AdminServer first{options};
  ASSERT_TRUE(first.start());
  AdminServer::Options clash = options;
  clash.port = first.port();
  AdminServer second{clash};
  EXPECT_FALSE(second.start());
  first.stop();
}

}  // namespace
}  // namespace saad::net
