// Corruption / fuzz suite for the SAADNET1 wire layer, at two levels:
//
//  * FrameDecoder in isolation: bit-flips, truncations at every byte
//    boundary, oversized length prefixes, and garbage payloads must decode
//    to a clean latched error — never crash, never OOM, never fabricate
//    frames that were not sent.
//  * A live SynopsisServer fed raw socket bytes: every damage class drops
//    exactly the abused connection and bumps exactly the matching reject
//    counter, and the server keeps serving well-formed sessions afterwards.
//
// Runs under the asan/ubsan presets in CI (ctest -L corruption).
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/channel.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"

namespace saad::net {
namespace {

using core::Synopsis;

Synopsis sample_synopsis(Rng& rng) {
  Synopsis s;
  s.stage = static_cast<core::StageId>(rng.next_below(8));
  s.host = static_cast<core::HostId>(rng.next_below(4));
  s.start = static_cast<UsTime>(rng.next_below(1 << 20));
  s.duration = 500 + static_cast<UsTime>(rng.next_below(5000));
  const auto points = 1 + rng.next_below(4);
  for (std::uint64_t p = 0; p < points; ++p)
    s.log_points.push_back({static_cast<core::LogPointId>(rng.next_below(60)),
                            static_cast<std::uint32_t>(1 + rng.next_below(3))});
  return s;
}

/// One well-formed session: magic, hello, a batch, a heartbeat, a goodbye.
std::vector<std::uint8_t> good_stream(std::size_t batch_synopses = 5) {
  Rng rng(7);
  std::vector<Synopsis> batch;
  for (std::size_t i = 0; i < batch_synopses; ++i)
    batch.push_back(sample_synopsis(rng));

  std::vector<std::uint8_t> bytes(std::begin(kStreamMagic),
                                  std::end(kStreamMagic));
  std::vector<std::uint8_t> payload;
  encode_hello(Hello{}, payload);
  encode_frame(FrameType::kHello, payload, bytes);
  payload.clear();
  encode_batch(batch, payload);
  encode_frame(FrameType::kBatch, payload, bytes);
  encode_frame(FrameType::kHeartbeat, {}, bytes);
  payload.clear();
  encode_goodbye(batch_synopses, payload);
  encode_frame(FrameType::kGoodbye, payload, bytes);
  return bytes;
}

std::size_t count_frames(FrameDecoder& decoder) {
  std::size_t n = 0;
  Frame frame;
  while (decoder.next(frame)) ++n;
  return n;
}

// ---- decoder level ---------------------------------------------------------

TEST(WireDecoder, ByteAtATimeFeedRecoversEveryFrame) {
  const auto bytes = good_stream();
  FrameDecoder decoder(/*expect_magic=*/true);
  for (const auto b : bytes) {
    ASSERT_TRUE(decoder.feed({&b, 1}));
  }
  EXPECT_EQ(count_frames(decoder), 4u);
  EXPECT_FALSE(decoder.failed());
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(WireDecoder, EveryBitFlipIsCleanlyRejectedOrHarmless) {
  const auto pristine = good_stream();
  FrameDecoder baseline(true);
  ASSERT_TRUE(baseline.feed(pristine));
  const std::size_t expected = count_frames(baseline);

  for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = pristine;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      FrameDecoder decoder(true);
      decoder.feed(mutated);
      std::size_t decoded = 0;
      Frame frame;
      while (decoder.next(frame)) {
        ++decoded;
        // Whatever survived framing must also parse without crashing.
        if (frame.type == FrameType::kBatch) {
          std::vector<Synopsis> out;
          decode_batch(frame.payload, out);
        } else if (frame.type == FrameType::kHello) {
          Hello hello;
          decode_hello(frame.payload, hello);
        } else if (frame.type == FrameType::kGoodbye) {
          std::uint64_t total = 0;
          decode_goodbye(frame.payload, total);
        }
      }
      // A single flipped bit can damage at most the frame it lives in:
      // never more frames than were sent, and a latched error thereafter.
      EXPECT_LE(decoded, expected) << "byte " << byte << " bit " << bit;
      if (decoded < expected) {
        EXPECT_TRUE(decoder.failed() || decoder.mid_frame())
            << "byte " << byte << " bit " << bit
            << ": frames vanished without a latched error";
      }
    }
  }
}

TEST(WireDecoder, TruncationAtEveryBoundaryNeverCrashes) {
  const auto pristine = good_stream();
  for (std::size_t cut = 0; cut < pristine.size(); ++cut) {
    FrameDecoder decoder(true);
    ASSERT_TRUE(
        decoder.feed({pristine.data(), cut}))
        << "a pure prefix of a valid stream must not be an error, cut=" << cut;
    count_frames(decoder);
    // The reassembly buffer stays bounded by one frame.
    EXPECT_LE(decoder.buffered_bytes(),
              kMaxFramePayload + kFrameHeaderBytes + sizeof kStreamMagic);
  }
}

TEST(WireDecoder, OversizedLengthRejectedBeforeAllocation) {
  std::vector<std::uint8_t> bytes(std::begin(kStreamMagic),
                                  std::end(kStreamMagic));
  const auto huge = static_cast<std::uint32_t>(kMaxFramePayload + 1);
  bytes.push_back(static_cast<std::uint8_t>(FrameType::kBatch));
  for (int i = 0; i < 4; ++i)
    bytes.push_back(static_cast<std::uint8_t>(huge >> (8 * i)));
  for (int i = 0; i < 4; ++i) bytes.push_back(0);  // crc, never reached
  FrameDecoder decoder(true);
  EXPECT_FALSE(decoder.feed(bytes));
  EXPECT_EQ(decoder.error(), WireError::kOversized);
  // The poisoned decoder must not have buffered anything near `huge`.
  EXPECT_LE(decoder.buffered_bytes(), kFrameHeaderBytes + sizeof kStreamMagic);
}

TEST(WireDecoder, BadMagicRejected) {
  auto bytes = good_stream();
  bytes[0] = 'X';
  FrameDecoder decoder(true);
  EXPECT_FALSE(decoder.feed(bytes));
  EXPECT_EQ(decoder.error(), WireError::kBadMagic);
}

TEST(WireDecoder, UnknownFrameTypeRejected) {
  for (const std::uint8_t type : {std::uint8_t{0}, std::uint8_t{5},
                                  std::uint8_t{0xff}}) {
    std::vector<std::uint8_t> bytes(std::begin(kStreamMagic),
                                    std::end(kStreamMagic));
    bytes.push_back(type);
    for (int i = 0; i < 8; ++i) bytes.push_back(0);  // len=0 + some crc
    FrameDecoder decoder(true);
    EXPECT_FALSE(decoder.feed(bytes));
    EXPECT_EQ(decoder.error(), WireError::kBadType) << "type " << int(type);
  }
}

TEST(WireDecoder, CorruptPayloadFailsCrc) {
  auto bytes = good_stream();
  bytes.back() ^= 0x40;  // last payload byte of the goodbye frame
  FrameDecoder decoder(true);
  EXPECT_FALSE(decoder.feed(bytes));
  EXPECT_EQ(decoder.error(), WireError::kBadCrc);
  // The three frames completed before the damage stay poppable (they were
  // CRC-checked); the damaged goodbye itself is never delivered.
  EXPECT_EQ(count_frames(decoder), 3u);
}

TEST(WireDecoder, PoisonedDecoderIgnoresFurtherInput) {
  auto bytes = good_stream();
  bytes[0] = '?';
  FrameDecoder decoder(true);
  EXPECT_FALSE(decoder.feed(bytes));
  const auto pristine = good_stream();
  EXPECT_FALSE(decoder.feed(pristine));  // still poisoned
  Frame frame;
  EXPECT_FALSE(decoder.next(frame));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(WirePayloads, ParsersRejectGarbageWithoutCrashing) {
  Rng rng(99);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    Hello hello;
    decode_hello(junk, hello);
    std::vector<Synopsis> batch;
    decode_batch(junk, batch);
    std::uint64_t total = 0;
    decode_goodbye(junk, total);
  }
  // A count prefix far beyond the payload size must be rejected up front,
  // not drive a giant reserve().
  std::vector<std::uint8_t> lying_count = {0xff, 0xff, 0xff, 0xff,
                                           0xff, 0xff, 0xff, 0xff, 0x7f};
  std::vector<Synopsis> batch;
  EXPECT_FALSE(decode_batch(lying_count, batch));
  EXPECT_TRUE(batch.empty());
}

// ---- server level ----------------------------------------------------------

class ServerCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<SynopsisServer>(&channel_);
    ASSERT_TRUE(server_->start());
  }
  void TearDown() override { server_->stop(); }

  /// Raw TCP connection to the server, bypassing SynopsisClient entirely.
  int dial() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
        0);
    return fd;
  }

  void send_bytes(int fd, const std::vector<std::uint8_t>& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t w =
          ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (w <= 0) break;  // server may already have dropped us — fine
      sent += static_cast<std::size_t>(w);
    }
  }

  /// Polls server stats until `done` or a 5 s deadline (damage accounting
  /// happens on the I/O thread, asynchronously to this test).
  bool wait_for(const std::function<bool(const SynopsisServer::Stats&)>& done) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      if (done(server_->stats())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }

  /// Valid prologue + hello, the prefix every post-hello damage test needs.
  static std::vector<std::uint8_t> hello_prefix() {
    std::vector<std::uint8_t> bytes(std::begin(kStreamMagic),
                                    std::end(kStreamMagic));
    std::vector<std::uint8_t> payload;
    encode_hello(Hello{}, payload);
    encode_frame(FrameType::kHello, payload, bytes);
    return bytes;
  }

  core::SynopsisChannel channel_;
  std::unique_ptr<SynopsisServer> server_;
};

TEST_F(ServerCorruption, GarbageBeforeHelloIsCountedAndDropped) {
  const int fd = dial();
  send_bytes(fd, {'H', 'T', 'T', 'P', '/', '1', '.', '1', ' ', 'l', 'o', 'l'});
  EXPECT_TRUE(wait_for([](const SynopsisServer::Stats& s) {
    return s.magic_rejects == 1;
  })) << "magic reject was never counted";
  EXPECT_TRUE(wait_for([this](const SynopsisServer::Stats&) {
    return server_->active_connections() == 0;
  })) << "abused connection was not dropped";
  ::close(fd);
  // Never hello'd: not a session, and nothing was published.
  EXPECT_EQ(server_->stats().sessions, 0u);
  EXPECT_EQ(server_->stats().published, 0u);
}

TEST_F(ServerCorruption, CorruptCrcPoisonsOnlyThatConnection) {
  auto bytes = hello_prefix();
  Rng rng(3);
  std::vector<Synopsis> batch = {sample_synopsis(rng)};
  std::vector<std::uint8_t> payload;
  encode_batch(batch, payload);
  const auto frame_start = bytes.size();
  encode_frame(FrameType::kBatch, payload, bytes);
  bytes.back() ^= 0x01;  // damage the batch payload, CRC now mismatches
  ASSERT_GT(bytes.size(), frame_start);

  const int fd = dial();
  send_bytes(fd, bytes);
  EXPECT_TRUE(wait_for(
      [](const SynopsisServer::Stats& s) { return s.crc_rejects == 1; }));
  ::close(fd);
  EXPECT_EQ(server_->stats().synopses, 0u);  // the damaged batch never lands
}

TEST_F(ServerCorruption, OversizedLengthPrefixIsCountedAndDropped) {
  auto bytes = hello_prefix();
  const auto huge = static_cast<std::uint32_t>(kMaxFramePayload + 7);
  bytes.push_back(static_cast<std::uint8_t>(FrameType::kBatch));
  for (int i = 0; i < 4; ++i)
    bytes.push_back(static_cast<std::uint8_t>(huge >> (8 * i)));
  for (int i = 0; i < 4; ++i) bytes.push_back(0xab);

  const int fd = dial();
  send_bytes(fd, bytes);
  EXPECT_TRUE(wait_for(
      [](const SynopsisServer::Stats& s) { return s.frame_rejects == 1; }));
  ::close(fd);
}

TEST_F(ServerCorruption, MidFrameDisconnectIsCountedAsTruncation) {
  auto bytes = hello_prefix();
  Rng rng(4);
  std::vector<Synopsis> batch = {sample_synopsis(rng), sample_synopsis(rng)};
  std::vector<std::uint8_t> payload;
  encode_batch(batch, payload);
  std::vector<std::uint8_t> frame;
  encode_frame(FrameType::kBatch, payload, frame);
  // Ship the hello plus roughly half the batch frame, then vanish.
  bytes.insert(bytes.end(), frame.begin(), frame.begin() + frame.size() / 2);

  const int fd = dial();
  send_bytes(fd, bytes);
  // Make sure the server has read the partial frame before the FIN.
  EXPECT_TRUE(wait_for(
      [&](const SynopsisServer::Stats& s) { return s.bytes >= bytes.size(); }));
  ::close(fd);
  EXPECT_TRUE(wait_for(
      [](const SynopsisServer::Stats& s) { return s.truncated == 1; }));
}

TEST_F(ServerCorruption, FirstFrameMustBeHello) {
  std::vector<std::uint8_t> bytes(std::begin(kStreamMagic),
                                  std::end(kStreamMagic));
  encode_frame(FrameType::kHeartbeat, {}, bytes);
  const int fd = dial();
  send_bytes(fd, bytes);
  EXPECT_TRUE(wait_for(
      [](const SynopsisServer::Stats& s) { return s.payload_rejects == 1; }));
  ::close(fd);
}

TEST_F(ServerCorruption, UnsupportedHelloVersionIsRejected) {
  std::vector<std::uint8_t> bytes(std::begin(kStreamMagic),
                                  std::end(kStreamMagic));
  std::vector<std::uint8_t> payload;
  encode_hello(Hello{kProtocolVersion + 9, 0, 0}, payload);
  encode_frame(FrameType::kHello, payload, bytes);
  const int fd = dial();
  send_bytes(fd, bytes);
  EXPECT_TRUE(wait_for(
      [](const SynopsisServer::Stats& s) { return s.payload_rejects == 1; }));
  ::close(fd);
}

TEST_F(ServerCorruption, ServerStillServesAfterAbuse) {
  // Round 1: three different damage classes, three dropped connections.
  {
    const int fd = dial();
    send_bytes(fd, {0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0});
    ::close(fd);
  }
  {
    auto bytes = hello_prefix();
    bytes.push_back(0x7f);  // unknown frame type
    for (int i = 0; i < 8; ++i) bytes.push_back(0);
    const int fd = dial();
    send_bytes(fd, bytes);
    ::close(fd);
  }
  {
    auto bytes = hello_prefix();
    bytes.resize(bytes.size() - 3);  // truncated hello... mid-frame FIN
    const int fd = dial();
    send_bytes(fd, bytes);
    ::close(fd);
  }
  EXPECT_TRUE(wait_for([](const SynopsisServer::Stats& s) {
    return s.magic_rejects + s.frame_rejects + s.truncated >= 2;
  }));

  // Round 2: a well-formed session must still work end to end.
  Rng rng(5);
  std::vector<Synopsis> sent;
  for (int i = 0; i < 100; ++i) sent.push_back(sample_synopsis(rng));
  SynopsisClient::Options options;
  options.port = server_->port();
  options.batch_synopses = 32;
  SynopsisClient client(options);
  for (const auto& s : sent) client.enqueue(s);
  ASSERT_TRUE(client.flush());
  ASSERT_TRUE(client.close());

  EXPECT_TRUE(wait_for([](const SynopsisServer::Stats& s) {
    return s.synopses == 100 && s.goodbyes == 1;
  })) << "server stopped serving after abuse";
  std::vector<Synopsis> received;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (received.size() < sent.size() &&
         std::chrono::steady_clock::now() < deadline) {
    std::vector<Synopsis> chunk;
    channel_.drain(chunk);
    server_->ack(chunk.size());
    received.insert(received.end(), chunk.begin(), chunk.end());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    std::vector<std::uint8_t> a, b;
    core::encode_synopsis(sent[i], a);
    core::encode_synopsis(received[i], b);
    EXPECT_EQ(a, b) << "synopsis " << i;
  }
}

}  // namespace
}  // namespace saad::net
