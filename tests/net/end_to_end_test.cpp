// End-to-end determinism golden test for the network ingestion layer: a
// synopsis stream delivered over a real loopback TCP connection
// (SynopsisClient -> SAADNET1 frames -> SynopsisServer -> SynopsisChannel)
// must arrive bit-identical and in order, and analyzer verdicts computed on
// the delivered stream must match the in-process pipeline byte for byte at
// any thread count — the wire must be invisible to detection.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/analyzer_pool.h"
#include "core/channel.h"
#include "net/client.h"
#include "net/server.h"

namespace saad::net {
namespace {

using core::Anomaly;
using core::AnalyzerPool;
using core::DetectorConfig;
using core::OutlierModel;
using core::Synopsis;

/// Full-precision serialization (same as the analyzer_pool golden test):
/// any drift in value, order, or count shows up as a string diff.
std::string dump(const std::vector<Anomaly>& anomalies) {
  std::string out;
  char line[256];
  for (const auto& a : anomalies) {
    std::snprintf(line, sizeof line,
                  "w=%zu ws=%lld h=%u s=%u k=%d new=%d p=%.17g prop=%.17g "
                  "train=%.17g n=%llu out=%llu sig=%s\n",
                  a.window, static_cast<long long>(a.window_start), a.host,
                  a.stage, static_cast<int>(a.kind),
                  a.due_to_new_signature ? 1 : 0, a.p_value, a.proportion,
                  a.train_proportion, static_cast<unsigned long long>(a.n),
                  static_cast<unsigned long long>(a.outliers),
                  a.example_signature.to_string().c_str());
    out += line;
  }
  return out;
}

Synopsis make(Rng& rng, UsTime start, double rare_rate, double slow_rate) {
  constexpr core::StageId kStages = 12;
  constexpr core::HostId kHosts = 6;
  Synopsis s;
  s.stage = static_cast<core::StageId>(rng.next_below(kStages));
  s.host = static_cast<core::HostId>(rng.next_below(kHosts));
  s.start = start;
  const auto base = static_cast<core::LogPointId>(s.stage * 8);
  s.log_points.push_back({base, 1});
  const auto variant = rng.next_below(3);
  for (std::uint64_t v = 0; v <= variant; ++v)
    s.log_points.push_back({static_cast<core::LogPointId>(base + 1 + v), 2});
  if (rng.next_double() < rare_rate)
    s.log_points.push_back({static_cast<core::LogPointId>(base + 7), 1});
  s.duration = 1000 + static_cast<UsTime>(rng.next_below(3000));
  if (rng.next_double() < slow_rate) s.duration *= 40;
  return s;
}

std::vector<Synopsis> make_trace(std::uint64_t seed, std::size_t count,
                                 double rare_rate, double slow_rate) {
  Rng rng(seed);
  std::vector<Synopsis> trace;
  trace.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    trace.push_back(
        make(rng, static_cast<UsTime>(i) * 700, rare_rate, slow_rate));
  return trace;
}

/// Ships `stream` through a real loopback connection and returns what the
/// channel delivered, in delivery order.
std::vector<Synopsis> loopback_roundtrip(const std::vector<Synopsis>& stream,
                                         SynopsisServer::Stats* stats_out) {
  core::SynopsisChannel channel;
  SynopsisServer server(&channel);
  EXPECT_TRUE(server.start());

  SynopsisClient::Options options;
  options.port = server.port();
  options.batch_synopses = 256;
  options.connect_attempts_per_flush = 5;
  SynopsisClient client(options);
  for (const auto& s : stream) {
    client.enqueue(s);
    if (client.spool_size() >= options.batch_synopses) {
      EXPECT_TRUE(client.flush());
    }
  }
  EXPECT_TRUE(client.close());

  std::vector<Synopsis> received;
  std::vector<Synopsis> chunk;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    chunk.clear();
    channel.drain(chunk);
    server.ack(chunk.size());
    received.insert(received.end(), chunk.begin(), chunk.end());
    if (server.sessions_finished() > 0 && server.active_connections() == 0 &&
        server.drained() && received.size() >= stream.size())
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();
  chunk.clear();
  channel.drain(chunk);
  server.ack(chunk.size());
  received.insert(received.end(), chunk.begin(), chunk.end());
  if (stats_out) *stats_out = server.stats();
  return received;
}

/// Replays `stream` through an AnalyzerPool with a mid-stream advance_to
/// plus a finish (the way Monitor::poll drives it) and dumps the verdicts.
std::string run_pool(const OutlierModel& model, std::size_t threads,
                     const std::vector<Synopsis>& stream) {
  DetectorConfig config;
  config.window = sec(5);
  config.analyzer_threads = threads;
  AnalyzerPool pool(&model, config);
  const std::size_t half = stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i) pool.ingest(stream[i]);
  std::string out = dump(pool.advance_to(stream[half].start));
  for (std::size_t i = half; i < stream.size(); ++i) pool.ingest(stream[i]);
  out += dump(pool.finish());
  return out;
}

TEST(NetEndToEnd, LoopbackDeliveryIsBitIdenticalAndOrdered) {
  const auto stream = make_trace(21, 5000, 0.05, 0.08);
  SynopsisServer::Stats stats;
  const auto received = loopback_roundtrip(stream, &stats);

  ASSERT_EQ(received.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    std::vector<std::uint8_t> sent_bytes, recv_bytes;
    core::encode_synopsis(stream[i], sent_bytes);
    core::encode_synopsis(received[i], recv_bytes);
    ASSERT_EQ(sent_bytes, recv_bytes) << "synopsis " << i << " diverged";
  }

  EXPECT_EQ(stats.synopses, stream.size());
  EXPECT_EQ(stats.published, stream.size());
  EXPECT_EQ(stats.sessions, 1u);
  EXPECT_EQ(stats.goodbyes, 1u);
  EXPECT_EQ(stats.goodbye_mismatches, 0u);
  EXPECT_EQ(stats.crc_rejects, 0u);
  EXPECT_EQ(stats.magic_rejects, 0u);
  EXPECT_EQ(stats.frame_rejects, 0u);
  EXPECT_EQ(stats.payload_rejects, 0u);
  EXPECT_EQ(stats.truncated, 0u);
  EXPECT_EQ(stats.shed_batches, 0u);
  EXPECT_EQ(stats.shed_synopses, 0u);
}

TEST(NetEndToEnd, VerdictsMatchInProcessDetectAtAnyThreadCount) {
  const auto training = make_trace(11, 20000, 0.002, 0.005);
  const auto model = OutlierModel::train(training);
  // Elevated rare-signature and stretched-duration rates so both the flow
  // and the performance tests fire — an empty golden would be vacuous.
  const auto stream = make_trace(12, 20000, 0.05, 0.08);

  const std::string in_process = run_pool(model, 1, stream);
  ASSERT_FALSE(in_process.empty())
      << "workload produced no anomalies — the golden comparison is vacuous";

  SynopsisServer::Stats stats;
  const auto received = loopback_roundtrip(stream, &stats);
  ASSERT_EQ(received.size(), stream.size());
  EXPECT_EQ(stats.shed_synopses, 0u);

  for (std::size_t threads : {1u, 4u}) {
    EXPECT_EQ(run_pool(model, threads, received), in_process)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace saad::net
