// Concurrency stress for the admin plane, run under tsan in CI (label
// net-stress, like server_stress_test.cpp for the ingest listener): many
// scrapers hammer a live AdminServer from parallel threads while the
// "serving loop" keeps mutating the shared registry, so any data race
// between the I/O thread, handlers, and instrumentation is visible.
#include "net/http.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/metrics.h"

namespace saad::net {
namespace {

std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t w = ::write(fd, request.data() + off, request.size() - off);
    if (w <= 0) break;
    off += static_cast<std::size_t>(w);
  }
  std::string response;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(AdminServerStress, ConcurrentScrapersSeeConsistentResponses) {
  AdminServer::Options options;
  options.poll_interval_ms = 5;
  options.max_connections = 64;
  AdminServer server{options};
  std::atomic<std::uint64_t> pipeline_progress{0};
  server.route("/metrics", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = obs::render_prometheus(obs::MetricsRegistry::global());
    return response;
  });
  server.route("/statusz", [&pipeline_progress](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body =
        "{\"progress\":" +
        std::to_string(
            pipeline_progress.load(std::memory_order_relaxed)) +
        "}";
    return response;
  });
  ASSERT_TRUE(server.start());
  const std::uint16_t port = server.port();

  // A stand-in for the serving loop: mutates the registry the /metrics
  // handler snapshots, so scrapes race real instrumentation writes.
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    auto& counter = obs::MetricsRegistry::global().counter(
        "saad_test_stress_ops_total", "stress mutator ops");
    while (!stop.load(std::memory_order_relaxed)) {
      counter.inc();
      pipeline_progress.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 25;
  std::atomic<int> ok{0}, rejected{0}, failed{0};
  std::vector<std::thread> scrapers;
  scrapers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    scrapers.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const char* path = (t + i) % 3 == 0   ? "/statusz"
                           : (t + i) % 3 == 1 ? "/metrics"
                                              : "/missing";
        const std::string response =
            http_exchange(port, std::string("GET ") + path + " HTTP/1.1\r\n\r\n");
        if (response.rfind("HTTP/1.1 200 OK\r\n", 0) == 0) {
          ok.fetch_add(1);
        } else if (response.rfind("HTTP/1.1 404 Not Found\r\n", 0) == 0) {
          rejected.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : scrapers) thread.join();
  stop.store(true, std::memory_order_relaxed);
  mutator.join();

  EXPECT_EQ(failed.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(rejected.load(), 0);
  EXPECT_EQ(ok.load() + rejected.load(),
            kThreads * kRequestsPerThread);
  EXPECT_TRUE(server.running());
  server.stop();
}

TEST(AdminServerStress, ScrapersDuringStopAreCutOffCleanly) {
  AdminServer::Options options;
  options.poll_interval_ms = 5;
  AdminServer server{options};
  server.route("/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong\n";
    return response;
  });
  ASSERT_TRUE(server.start());
  const std::uint16_t port = server.port();

  std::atomic<bool> done{false};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed))
        http_exchange(port, "GET /ping HTTP/1.1\r\n\r\n");
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();  // must join cleanly with scrapes in flight
  done.store(true, std::memory_order_relaxed);
  for (auto& thread : scrapers) thread.join();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace saad::net
