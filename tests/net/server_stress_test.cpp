// Concurrency stress for the network ingestion path, meant to run under the
// tsan preset: eight client threads hammer one SynopsisServer while the
// consumer thread drains and acks, and every synopsis must land exactly
// once. Races between the I/O thread, the client threads, and the consumer
// are exactly what tsan is pointed at here.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/channel.h"
#include "net/client.h"
#include "net/server.h"

namespace saad::net {
namespace {

using core::Synopsis;

constexpr int kClients = 8;
constexpr std::uint64_t kPerClient = 4000;

Synopsis tagged(int client, std::uint64_t i) {
  Synopsis s;
  s.stage = static_cast<core::StageId>(client);
  s.host = static_cast<core::HostId>(client);
  // Globally unique uid in the start time: client * 1e6 + sequence.
  s.start = static_cast<UsTime>(
      static_cast<std::uint64_t>(client) * 1000000 + i);
  s.duration = 1000 + static_cast<UsTime>(i % 7);
  s.log_points.push_back({static_cast<core::LogPointId>(client * 8), 1});
  return s;
}

TEST(NetServerStress, EightConcurrentClientsEverySynopsisExactlyOnce) {
  core::SynopsisChannel channel;
  SynopsisServer server(&channel);
  ASSERT_TRUE(server.start());

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SynopsisClient::Options options;
      options.port = server.port();
      options.host_id = static_cast<core::HostId>(c);
      options.batch_synopses = 128;
      options.connect_attempts_per_flush = 10;
      SynopsisClient client(options);
      for (std::uint64_t i = 0; i < kPerClient; ++i) {
        client.enqueue(tagged(c, i));
        if (client.spool_size() >= options.batch_synopses) {
          EXPECT_TRUE(client.flush()) << "client " << c;
        }
      }
      EXPECT_TRUE(client.close()) << "client " << c;
      EXPECT_EQ(client.stats().sent_synopses, kPerClient) << "client " << c;
    });
  }

  // Consumer: drain + ack concurrently with the senders.
  constexpr std::uint64_t kTotal = kClients * kPerClient;
  std::vector<Synopsis> received;
  received.reserve(kTotal);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    std::vector<Synopsis> chunk;
    channel.drain(chunk);
    server.ack(chunk.size());
    received.insert(received.end(), chunk.begin(), chunk.end());
    if (received.size() >= kTotal &&
        server.sessions_finished() == kClients &&
        server.active_connections() == 0 && server.drained())
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& t : clients) t.join();
  server.stop();
  {
    std::vector<Synopsis> chunk;
    channel.drain(chunk);
    server.ack(chunk.size());
    received.insert(received.end(), chunk.begin(), chunk.end());
  }

  // Exactly once, globally: each uid appears a single time, and each
  // client's own sequence arrives in the order it was sent.
  ASSERT_EQ(received.size(), kTotal);
  std::unordered_map<std::uint64_t, std::uint32_t> counts;
  counts.reserve(received.size());
  std::vector<std::uint64_t> last_seen(kClients, 0);
  std::vector<bool> seen_any(kClients, false);
  for (const auto& s : received) {
    const auto uid = static_cast<std::uint64_t>(s.start);
    EXPECT_EQ(++counts[uid], 1u) << "uid " << uid << " duplicated";
    const auto c = static_cast<std::size_t>(uid / 1000000);
    const auto seq = uid % 1000000;
    ASSERT_LT(c, static_cast<std::size_t>(kClients));
    if (seen_any[c]) {
      EXPECT_GT(seq, last_seen[c]) << "client " << c << " reordered";
    }
    seen_any[c] = true;
    last_seen[c] = seq;
  }

  const auto stats = server.stats();
  EXPECT_EQ(stats.sessions, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.synopses, kTotal);
  EXPECT_EQ(stats.published, kTotal);
  EXPECT_EQ(stats.goodbyes, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.goodbye_mismatches, 0u);
  EXPECT_EQ(stats.crc_rejects + stats.magic_rejects + stats.frame_rejects +
                stats.payload_rejects + stats.truncated,
            0u);
  EXPECT_EQ(stats.shed_synopses, 0u);
}

}  // namespace
}  // namespace saad::net
