// SynopsisClient resilience: the jittered exponential backoff schedule is
// pinned through an injected sleep recorder, a server outage is survived
// with the spool delivering exactly once after reconnect, and spool
// overflow degrades to the crash-safe spill trace instead of losing data.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/channel.h"
#include "core/trace_io.h"
#include "net/client.h"
#include "net/server.h"
#include "testutil/temp_dir.h"

namespace saad::net {
namespace {

using core::Synopsis;

Synopsis tagged(std::uint64_t uid) {
  Synopsis s;
  s.stage = 1;
  s.host = 0;
  s.start = static_cast<UsTime>(uid);  // the uid rides in the start time
  s.duration = 1000;
  s.log_points.push_back({3, 1});
  return s;
}

/// A port with nothing listening on it: bind an ephemeral port, read the
/// number back, close. Connects to it then fail fast with ECONNREFUSED.
std::uint16_t dead_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
            0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

/// Drains `channel` (acking the server) until `expected` synopses arrived
/// or the deadline passed.
std::vector<Synopsis> drain_until(core::SynopsisChannel& channel,
                                  SynopsisServer& server,
                                  std::size_t expected) {
  std::vector<Synopsis> received;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (received.size() < expected &&
         std::chrono::steady_clock::now() < deadline) {
    std::vector<Synopsis> chunk;
    channel.drain(chunk);
    server.ack(chunk.size());
    received.insert(received.end(), chunk.begin(), chunk.end());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return received;
}

TEST(NetClientBackoff, ScheduleIsExponentialJitteredAndCapped) {
  std::vector<UsTime> waits;
  SynopsisClient::Options options;
  options.port = dead_port();
  options.backoff_initial = ms(50);
  options.backoff_max = ms(400);
  options.backoff_jitter = 0.2;
  options.seed = 7;
  options.sleep_fn = [&](UsTime us) { waits.push_back(us); };
  SynopsisClient client(options);

  for (int i = 0; i < 6; ++i) {
    // The first attempt dials immediately; each retry backs off first, and
    // current_backoff() exposes the pre-jitter delay the wait is built on.
    const UsTime base = client.current_backoff();
    EXPECT_EQ(base, i == 0 ? 0
                           : std::min<UsTime>(ms(50) << (i - 1), ms(400)));
    EXPECT_FALSE(client.connect());
  }
  EXPECT_EQ(client.stats().connect_failures, 6u);
  EXPECT_EQ(client.stats().backoffs, 5u);

  // Every recorded wait sits inside its jitter band: [0.8 d, 1.2 d] around
  // the exponential 50, 100, 200, 400(cap), 400 ms.
  ASSERT_EQ(waits.size(), 5u);
  const UsTime expected[] = {ms(50), ms(100), ms(200), ms(400), ms(400)};
  bool any_jitter = false;
  for (std::size_t i = 0; i < waits.size(); ++i) {
    const double lo = 0.8 * static_cast<double>(expected[i]);
    const double hi = 1.2 * static_cast<double>(expected[i]);
    EXPECT_GE(static_cast<double>(waits[i]), lo) << "wait " << i;
    EXPECT_LE(static_cast<double>(waits[i]), hi) << "wait " << i;
    if (waits[i] != expected[i]) any_jitter = true;
  }
  EXPECT_TRUE(any_jitter) << "five waits all exactly on the curve — jitter "
                             "is not being applied";

  // A successful connection resets the schedule to "no backoff".
  core::SynopsisChannel channel;
  SynopsisServer server(&channel);
  ASSERT_TRUE(server.start());
  SynopsisClient::Options fresh = options;
  fresh.port = server.port();
  SynopsisClient ok(fresh);
  EXPECT_TRUE(ok.connect());
  EXPECT_EQ(ok.current_backoff(), 0);
  server.stop();
}

TEST(NetClientReconnect, SpooledSynopsesDeliverExactlyOnceAfterOutage) {
  core::SynopsisChannel channel1;
  SynopsisServer::Options server_options;  // ephemeral port first,
  auto server = std::make_unique<SynopsisServer>(&channel1, server_options);
  ASSERT_TRUE(server->start());
  const std::uint16_t port = server->port();  // ...then pinned for restart

  SynopsisClient::Options options;
  options.port = port;
  options.batch_synopses = 64;
  options.connect_attempts_per_flush = 8;
  options.sleep_fn = [](UsTime) {};  // no real waiting in tests
  SynopsisClient client(options);

  // Phase 1: a healthy flush, fully drained.
  for (std::uint64_t uid = 1000; uid < 1500; ++uid)
    client.enqueue(tagged(uid));
  ASSERT_TRUE(client.flush());
  const auto phase1 = drain_until(channel1, *server, 500);
  ASSERT_EQ(phase1.size(), 500u);

  // Outage: the server dies mid-session.
  server->stop();
  server.reset();

  // The client only notices on its next write. Heartbeats carry no
  // synopses, so hammer those until the dead peer is detected — nothing
  // can be lost in this window by construction.
  bool detected = false;
  for (int i = 0; i < 1000 && !detected; ++i) {
    detected = !client.heartbeat();
    if (!detected) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(detected) << "client never noticed the dead connection";
  EXPECT_FALSE(client.connected());
  EXPECT_GE(client.stats().send_errors, 1u);

  // Phase 2 accumulates entirely in the spool while the server is down.
  for (std::uint64_t uid = 2000; uid < 2500; ++uid)
    client.enqueue(tagged(uid));
  EXPECT_EQ(client.spool_size(), 500u);

  // Restart on the same port; the next flush reconnects and replays the
  // spool in order.
  core::SynopsisChannel channel2;
  server_options.port = port;
  server = std::make_unique<SynopsisServer>(&channel2, server_options);
  bool restarted = false;
  for (int i = 0; i < 100 && !(restarted = server->start()); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(restarted) << "could not rebind port " << port;

  ASSERT_TRUE(client.flush());
  EXPECT_EQ(client.spool_size(), 0u);
  EXPECT_GE(client.stats().reconnects, 1u);
  ASSERT_TRUE(client.close());

  const auto phase2 = drain_until(channel2, *server, 500);
  server->stop();

  // Exactly once, in order: every spooled uid arrives a single time, and
  // nothing from phase 1 is replayed.
  std::map<std::uint64_t, int> counts;
  for (const auto& s : phase2) ++counts[static_cast<std::uint64_t>(s.start)];
  ASSERT_EQ(phase2.size(), 500u);
  for (std::uint64_t uid = 2000; uid < 2500; ++uid)
    EXPECT_EQ(counts[uid], 1) << "uid " << uid;
  EXPECT_TRUE(std::is_sorted(phase2.begin(), phase2.end(),
                             [](const Synopsis& a, const Synopsis& b) {
                               return a.start < b.start;
                             }));
}

TEST(NetClientReconnect, GoodbyeAfterReconnectClaimsOnlyCurrentConnection) {
  // Regression: the goodbye frame used to claim the client's *lifetime*
  // synopsis total. After an outage + reconnect the new connection's server
  // never saw the earlier connection's synopses, so its per-connection audit
  // flagged a spurious goodbye mismatch on every clean shutdown.
  core::SynopsisChannel channel1;
  SynopsisServer::Options server_options;
  auto server = std::make_unique<SynopsisServer>(&channel1, server_options);
  ASSERT_TRUE(server->start());
  const std::uint16_t port = server->port();

  SynopsisClient::Options options;
  options.port = port;
  options.batch_synopses = 64;
  options.connect_attempts_per_flush = 8;
  options.sleep_fn = [](UsTime) {};
  SynopsisClient client(options);

  // Connection 1 carries 300 synopses, then the server dies.
  for (std::uint64_t uid = 0; uid < 300; ++uid) client.enqueue(tagged(uid));
  ASSERT_TRUE(client.flush());
  ASSERT_EQ(drain_until(channel1, *server, 300).size(), 300u);
  server->stop();
  server.reset();
  bool detected = false;
  for (int i = 0; i < 1000 && !detected; ++i) {
    detected = !client.heartbeat();
    if (!detected) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(detected);

  // Connection 2 (after restart) carries 200 more, then a clean close: the
  // goodbye must claim 200, not 500.
  core::SynopsisChannel channel2;
  server_options.port = port;
  server = std::make_unique<SynopsisServer>(&channel2, server_options);
  bool restarted = false;
  for (int i = 0; i < 100 && !(restarted = server->start()); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(restarted);
  for (std::uint64_t uid = 1000; uid < 1200; ++uid)
    client.enqueue(tagged(uid));
  ASSERT_TRUE(client.close());
  EXPECT_GE(client.stats().reconnects, 1u);

  ASSERT_EQ(drain_until(channel2, *server, 200).size(), 200u);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server->sessions_finished() < 1 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const auto stats = server->stats();
  server->stop();
  EXPECT_EQ(stats.sessions, 1u);
  EXPECT_EQ(stats.goodbyes, 1u);
  EXPECT_EQ(stats.goodbye_mismatches, 0u)
      << "goodbye claimed a lifetime total instead of this connection's "
         "count";
}

TEST(NetClientSpool, OverflowDegradesOldestToSpillTraceInOrder) {
  testutil::TempDir tmp;
  SynopsisClient::Options options;
  options.port = dead_port();
  options.spool_max_synopses = 100;
  options.spill_trace_path = tmp.path("spill.trc");
  options.sleep_fn = [](UsTime) {};
  {
    SynopsisClient client(options);
    for (std::uint64_t uid = 0; uid < 250; ++uid) client.enqueue(tagged(uid));
    EXPECT_EQ(client.spool_size(), 100u);
    EXPECT_EQ(client.stats().spilled, 150u);  // the oldest 150 overflowed
    EXPECT_FALSE(client.flush());             // nothing to connect to
    EXPECT_GE(client.stats().connect_failures, 1u);
    EXPECT_EQ(client.stats().dropped, 0u);
    // Destruction without close() models a crash: the remaining spool
    // degrades to the spill trace too.
  }
  const auto spilled = core::read_trace_file(options.spill_trace_path);
  ASSERT_TRUE(spilled.has_value());
  ASSERT_EQ(spilled->size(), 250u);
  for (std::uint64_t uid = 0; uid < 250; ++uid)
    EXPECT_EQ(static_cast<std::uint64_t>((*spilled)[uid].start), uid)
        << "spill order diverged at " << uid;
}

TEST(NetClientSpool, OverflowWithoutSpillPathDropsLoudly) {
  SynopsisClient::Options options;
  options.port = dead_port();
  options.spool_max_synopses = 10;
  options.sleep_fn = [](UsTime) {};
  SynopsisClient client(options);
  for (std::uint64_t uid = 0; uid < 35; ++uid) client.enqueue(tagged(uid));
  EXPECT_EQ(client.spool_size(), 10u);
  EXPECT_EQ(client.stats().dropped, 25u);
  EXPECT_EQ(client.stats().spilled, 0u);
}

}  // namespace
}  // namespace saad::net
