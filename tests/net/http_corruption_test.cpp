// Adversarial-input suite for the admin plane's request parser, in the same
// spirit as wire_corruption_test.cpp for the synopsis wire protocol: every
// truncation and every single-bit flip of canonical requests must produce a
// calm verdict — never a crash, never a false kOk, and never an accepted
// method outside GET/HEAD.
#include "net/http.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace saad::net {
namespace {

using Status = HttpParser::Status;

const char* kCanonicalRequests[] = {
    "GET /metrics HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n",
    "GET /statusz?pretty=1 HTTP/1.0\r\n\r\n",
    "HEAD /healthz HTTP/1.1\r\nUser-Agent: probe/1.0\r\n\r\n",
    "GET /spans HTTP/1.1\nConnection: close\n\n",
};

HttpParser make_parser() { return HttpParser(256, 1024, 16); }

bool is_reject(Status status) {
  return status == Status::kBadRequest || status == Status::kLineTooLong ||
         status == Status::kHeadersTooBig || status == Status::kBadMethod;
}

// A truncated head can never be a complete request: the parser must keep
// asking for more (or reject), and a later completion must still parse.
TEST(HttpParserCorruption, EveryTruncationIsNeedMoreOrReject) {
  for (const char* canonical : kCanonicalRequests) {
    const std::string request(canonical);
    for (std::size_t cut = 0; cut < request.size(); ++cut) {
      auto parser = make_parser();
      const Status status = parser.feed(request.data(), cut);
      ASSERT_NE(status, Status::kOk)
          << "truncation at " << cut << " of: " << canonical;
      if (status == Status::kNeedMore) {
        // Feeding the rest must complete the original request.
        const Status rest =
            parser.feed(request.data() + cut, request.size() - cut);
        ASSERT_EQ(rest, Status::kOk)
            << "resume at " << cut << " of: " << canonical;
      } else {
        ASSERT_TRUE(is_reject(status)) << "truncation at " << cut;
      }
    }
  }
}

// Any single-bit corruption is handled without a crash, and whatever the
// parser does accept still satisfies its own invariants: GET/HEAD only,
// absolute printable target.
TEST(HttpParserCorruption, EveryBitFlipYieldsSaneVerdict) {
  for (const char* canonical : kCanonicalRequests) {
    const std::string request(canonical);
    for (std::size_t byte = 0; byte < request.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string flipped = request;
        flipped[byte] = static_cast<char>(
            static_cast<unsigned char>(flipped[byte]) ^ (1u << bit));
        auto parser = make_parser();
        const Status status = parser.feed(flipped.data(), flipped.size());
        if (status == Status::kOk) {
          const HttpRequest& parsed = parser.request();
          ASSERT_TRUE(parsed.method == "GET" || parsed.method == "HEAD")
              << "byte " << byte << " bit " << bit << ": " << parsed.method;
          ASSERT_FALSE(parsed.path.empty());
          ASSERT_EQ(parsed.path[0], '/');
          for (char c : parsed.path) {
            ASSERT_GT(static_cast<unsigned char>(c), 0x20u);
            ASSERT_LT(static_cast<unsigned char>(c), 0x7fu);
          }
        } else if (status != Status::kNeedMore) {
          ASSERT_TRUE(is_reject(status)) << "byte " << byte << " bit " << bit;
        }
        // A flip that destroyed the head terminator leaves kNeedMore — the
        // live server would time the connection out; nothing to assert.
      }
    }
  }
}

// Bit flips fed in two fragments split at every position: chunking must not
// change the verdict the one-shot feed produced.
TEST(HttpParserCorruption, SplitFeedsMatchOneShotVerdicts) {
  const std::string request(kCanonicalRequests[0]);
  for (std::size_t byte = 0; byte < request.size(); byte += 3) {
    std::string flipped = request;
    flipped[byte] = static_cast<char>(
        static_cast<unsigned char>(flipped[byte]) ^ 0x40u);
    auto oneshot = make_parser();
    const Status expected = oneshot.feed(flipped.data(), flipped.size());
    for (std::size_t cut = 0; cut <= flipped.size(); cut += 5) {
      auto split = make_parser();
      Status status = split.feed(flipped.data(), cut);
      if (status == Status::kNeedMore)
        status = split.feed(flipped.data() + cut, flipped.size() - cut);
      ASSERT_EQ(status, expected) << "byte " << byte << " cut " << cut;
    }
  }
}

// Deterministic garbage: random bytes, random chunking. The parser must
// terminate with a bounded buffer and never report kOk for non-HTTP noise
// that lacks a plausible request line.
TEST(HttpParserCorruption, RandomGarbageNeverCrashes) {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;  // fixed seed: reproducible
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 33);
  };
  for (int round = 0; round < 200; ++round) {
    const std::size_t size = 1 + next() % 2048;
    std::string garbage(size, '\0');
    for (auto& c : garbage) c = static_cast<char>(next() & 0xff);
    auto parser = make_parser();
    std::size_t off = 0;
    Status status = Status::kNeedMore;
    while (off < garbage.size() && status == Status::kNeedMore) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + next() % 64, garbage.size() - off);
      status = parser.feed(garbage.data() + off, chunk);
      off += chunk;
    }
    if (status == Status::kOk) {
      ASSERT_TRUE(parser.request().method == "GET" ||
                  parser.request().method == "HEAD");
    }
  }
}

// Pathological flood: far more bytes than the cap, no newline at all. The
// parser must reject once, stay sticky, and never buffer unboundedly.
TEST(HttpParserCorruption, UnterminatedFloodRejectsOnce) {
  auto parser = make_parser();
  const std::string flood(64 * 1024, 'A');
  EXPECT_EQ(parser.feed(flood.data(), flood.size()), Status::kLineTooLong);
  EXPECT_EQ(parser.feed(flood.data(), flood.size()), Status::kLineTooLong);
}

}  // namespace
}  // namespace saad::net
