// Unit-level MiniHBase behavior (the end-to-end fault experiments live in
// hbase_hdfs_test.cpp).
#include "systems/hbase/hbase.h"

#include <gtest/gtest.h>

#include <map>

namespace saad::systems {
namespace {

struct HBaseUnitFixture : ::testing::Test {
  sim::Engine engine;
  core::LogRegistry registry;
  core::NullSink sink;
  faults::FaultPlane plane;
  std::unique_ptr<core::Monitor> monitor;
  std::unique_ptr<MiniHdfs> hdfs;
  std::unique_ptr<MiniHBase> hbase;

  void SetUp() override {
    monitor = std::make_unique<core::Monitor>(&registry, &engine.clock());
    hdfs = std::make_unique<MiniHdfs>(&engine, &registry, monitor.get(),
                                      &sink, core::Level::kInfo, &plane,
                                      HdfsOptions{}, /*seed=*/5);
    hbase = std::make_unique<MiniHBase>(&engine, &registry, monitor.get(),
                                        &sink, core::Level::kInfo, &plane,
                                        hdfs.get(), HBaseOptions{},
                                        /*seed=*/6);
    hdfs->start();
    hbase->start();
    monitor->start_training();
  }

  const std::vector<core::Synopsis>& drain(UsTime until) {
    engine.run_until(until);
    monitor->poll(engine.now());
    return monitor->training_trace();
  }

  int stage_tasks(const std::vector<core::Synopsis>& trace,
                  core::StageId stage) const {
    int n = 0;
    for (const auto& s : trace)
      if (s.stage == stage) n++;
    return n;
  }
};

TEST_F(HBaseUnitFixture, PutThenGetRoundTrips) {
  bool ok = false;
  std::optional<std::string> got;
  auto proc = [&]() -> sim::Process {
    ok = co_await hbase->put("k1", "v1");
    got = co_await hbase->get("k1");
  };
  proc();
  engine.run_until(sec(2));
  EXPECT_TRUE(ok);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "v1");
}

TEST_F(HBaseUnitFixture, GetMissReturnsNothing) {
  std::optional<std::string> got = std::string("sentinel");
  auto proc = [&]() -> sim::Process { got = co_await hbase->get("ghost"); };
  proc();
  engine.run_until(sec(2));
  EXPECT_FALSE(got.has_value());
}

TEST_F(HBaseUnitFixture, PutsGroupCommitThroughOneWalSync) {
  // Many puts in one 5 ms sync interval share the WAL pipeline write.
  int completed = 0;
  auto writer = [&](int i) -> sim::Process {
    (void)co_await hbase->put("batch" + std::to_string(i), "v");
    completed++;
  };
  for (int i = 0; i < 20; ++i) writer(i);
  const auto& trace = drain(sec(2));
  EXPECT_EQ(completed, 20);
  // Far fewer log-sync tasks than puts: the group commit worked. Each sync
  // appears as one 'ds_stream' DataStreamer task (the flush path would use
  // ds_flush_block).
  const int syncs = stage_tasks(trace, hbase->stages().data_streamer);
  EXPECT_GT(syncs, 0);
  EXPECT_LT(syncs, 15);
}

TEST_F(HBaseUnitFixture, MemstoreFlushMovesDataAndWritesHFile) {
  // Push enough data into one Regionserver to cross the 64 KB flush line.
  auto writer = [&]() -> sim::Process {
    for (int i = 0; i < 1200; ++i) {
      (void)co_await hbase->put("k" + std::to_string(i),
                                std::string(100, 'v'));
    }
  };
  writer();
  const auto before = hdfs->blocks_written();
  drain(sec(30));
  EXPECT_GT(hdfs->blocks_written(), before);

  // Flushed data is still served (now via the HFile path).
  std::optional<std::string> got;
  auto reader = [&]() -> sim::Process { got = co_await hbase->get("k3"); };
  reader();
  engine.run_until(sec(32));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 100u);
}

TEST_F(HBaseUnitFixture, DaemonsProduceTheirStages) {
  const auto& trace = drain(minutes(2));
  EXPECT_GT(stage_tasks(trace, hbase->stages().log_roller), 0);
  EXPECT_GT(stage_tasks(trace, hbase->stages().split_log_worker), 10);
  EXPECT_GT(stage_tasks(trace, hbase->stages().compaction_checker), 10);
  EXPECT_GT(stage_tasks(trace, hbase->stages().listener), 10);
  EXPECT_GT(stage_tasks(trace, hbase->stages().connection), 10);
}

TEST_F(HBaseUnitFixture, RegionOwnershipIsStableWithoutCrashes) {
  drain(minutes(1));
  EXPECT_EQ(hbase->regions_reassigned(), 0u);
  for (int i = 0; i < hbase->num_regionservers(); ++i)
    EXPECT_FALSE(hbase->rs_crashed(i));
}

TEST_F(HBaseUnitFixture, PreloadServesFromEveryRegionServer) {
  hbase->preload(1000, 10);
  int hits = 0;
  auto reader = [&]() -> sim::Process {
    for (int k = 0; k < 50; ++k) {
      const auto v = co_await hbase->get("user" + std::to_string(k * 17));
      if (v.has_value()) hits++;
    }
  };
  reader();
  engine.run_until(sec(5));
  EXPECT_EQ(hits, 50);
}

TEST_F(HBaseUnitFixture, TriggeredMajorCompactionRunsOnAllServers) {
  hbase->preload(5000, 100);
  // Accumulate a couple of HFiles per server first.
  auto writer = [&]() -> sim::Process {
    for (int i = 0; i < 4000; ++i)
      (void)co_await hbase->put("user" + std::to_string(i % 5000),
                                std::string(100, 'x'));
  };
  writer();
  drain(minutes(1));
  const auto trace_before = monitor->training_trace().size();
  hbase->trigger_major_compaction();
  const auto& trace = drain(minutes(1) + sec(30));
  (void)trace_before;
  int majors = 0;
  for (const auto& s : trace) {
    if (s.stage != hbase->stages().compaction_request) continue;
    for (const auto& lp : s.log_points)
      if (lp.point == hbase->points().cr_major) majors++;
  }
  EXPECT_GE(majors, 1);
}

}  // namespace
}  // namespace saad::systems
