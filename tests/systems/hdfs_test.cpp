#include "systems/hdfs/hdfs.h"

#include <gtest/gtest.h>

#include <map>

namespace saad::systems {
namespace {

struct HdfsFixture : ::testing::Test {
  sim::Engine engine;
  core::LogRegistry registry;
  core::NullSink sink;
  faults::FaultPlane plane;
  std::unique_ptr<core::Monitor> monitor;
  std::unique_ptr<MiniHdfs> hdfs;

  void SetUp() override {
    monitor = std::make_unique<core::Monitor>(&registry, &engine.clock());
    hdfs = std::make_unique<MiniHdfs>(&engine, &registry, monitor.get(),
                                      &sink, core::Level::kInfo, &plane,
                                      HdfsOptions{}, /*seed=*/17);
    hdfs->start();
    monitor->start_training();
  }

  /// Runs the engine until idle-ish and returns captured synopses.
  const std::vector<core::Synopsis>& drain(UsTime until) {
    engine.run_until(until);
    monitor->poll(engine.now());
    return monitor->training_trace();
  }
};

TEST_F(HdfsFixture, WriteBlockCompletesThroughThePipeline) {
  bool ok = false;
  auto proc = [&]() -> sim::Process {
    ok = co_await hdfs->write_block(100, 64 * 1024);
  };
  proc();
  const auto& trace = drain(sec(5));
  EXPECT_TRUE(ok);
  EXPECT_EQ(hdfs->blocks_written(), 1u);

  // Replication: 3 DataXceiver tasks + 3 PacketResponder tasks on the
  // pipeline nodes (plus any IPC-daemon tasks).
  std::map<core::StageId, int> per_stage;
  std::map<core::HostId, int> xceiver_hosts;
  for (const auto& s : trace) {
    per_stage[s.stage]++;
    if (s.stage == hdfs->stages().data_xceiver) xceiver_hosts[s.host]++;
  }
  EXPECT_EQ(per_stage[hdfs->stages().data_xceiver], 3);
  EXPECT_EQ(per_stage[hdfs->stages().packet_responder], 3);
  EXPECT_EQ(xceiver_hosts.size(), 3u);
  // Pipeline placement: nodes (100+i) % 4.
  EXPECT_TRUE(xceiver_hosts.contains(hdfs->pipeline_node(100, 0)));
  EXPECT_TRUE(xceiver_hosts.contains(hdfs->pipeline_node(100, 2)));
}

TEST_F(HdfsFixture, XceiverSynopsisCarriesPacketFrequencies) {
  auto proc = [&]() -> sim::Process {
    (void)co_await hdfs->write_block(7, 64 * 1024);  // 4 packets
  };
  proc();
  const auto& trace = drain(sec(5));
  const core::Synopsis* xceiver = nullptr;
  for (const auto& s : trace) {
    if (s.stage == hdfs->stages().data_xceiver) {
      xceiver = &s;
      break;
    }
  }
  ASSERT_NE(xceiver, nullptr);
  // L2 (receive packet) fires once per packet: count 4 in the frequency
  // vector — the synopsis preserves frequencies even though the signature
  // is a set.
  std::uint32_t l2_count = 0;
  for (const auto& lp : xceiver->log_points) {
    if (lp.point == hdfs->points().dx_recv_packet) l2_count = lp.count;
  }
  EXPECT_EQ(l2_count, 4u);
}

TEST_F(HdfsFixture, ReadBlockUsesThePrimaryReplica) {
  bool ok = false;
  auto proc = [&]() -> sim::Process {
    ok = co_await hdfs->read_block(9, 32 * 1024);
  };
  proc();
  const auto& trace = drain(sec(5));
  EXPECT_TRUE(ok);
  bool found = false;
  for (const auto& s : trace) {
    if (s.stage != hdfs->stages().data_xceiver) continue;
    EXPECT_EQ(s.host, hdfs->pipeline_node(9, 0));
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(HdfsFixture, PipelineDiskErrorFailsTheWrite) {
  faults::FaultSpec fault;
  fault.host = static_cast<std::uint16_t>(hdfs->pipeline_node(5, 1));
  fault.activity = faults::Activity::kDiskWrite;
  fault.mode = faults::FaultMode::kError;
  fault.intensity = 1.0;
  fault.until = minutes(10);
  plane.add(fault);

  bool ok = true;
  auto proc = [&]() -> sim::Process {
    ok = co_await hdfs->write_block(5, 16 * 1024);
  };
  proc();
  engine.run_until(sec(10));
  EXPECT_FALSE(ok);  // the middle DN never persisted: ack chain broken
  EXPECT_EQ(hdfs->blocks_written(), 0u);
}

TEST_F(HdfsFixture, RecoverBlockHappyPath) {
  MiniHdfs::RecoverResult result = MiniHdfs::RecoverResult::kFailed;
  auto proc = [&]() -> sim::Process {
    result = co_await hdfs->recover_block(3);
  };
  proc();
  engine.run_until(sec(10));
  EXPECT_EQ(result, MiniHdfs::RecoverResult::kOk);
  EXPECT_EQ(hdfs->recoveries_started(), 1u);
  EXPECT_EQ(hdfs->recovery_rejections(), 0u);
}

TEST_F(HdfsFixture, ConcurrentRecoveryIsRejected) {
  // The premature-recovery-termination bug's server side: a second request
  // while the first is still running is answered "already in recovery".
  MiniHdfs::RecoverResult first = MiniHdfs::RecoverResult::kFailed;
  MiniHdfs::RecoverResult second = MiniHdfs::RecoverResult::kFailed;
  auto p1 = [&]() -> sim::Process {
    first = co_await hdfs->recover_block(3);
  };
  auto p2 = [&]() -> sim::Process {
    co_await engine.delay(ms(100));  // after p1's recovery started
    second = co_await hdfs->recover_block(3);
  };
  p1();
  p2();
  engine.run_until(sec(20));
  EXPECT_EQ(first, MiniHdfs::RecoverResult::kOk);
  EXPECT_EQ(second, MiniHdfs::RecoverResult::kAlreadyInRecovery);
  EXPECT_EQ(hdfs->recovery_rejections(), 1u);
}

TEST_F(HdfsFixture, RecoveredBlockConfirmsImmediately) {
  MiniHdfs::RecoverResult again = MiniHdfs::RecoverResult::kFailed;
  UsTime second_call_cost = 0;
  auto proc = [&]() -> sim::Process {
    (void)co_await hdfs->recover_block(3);
    const UsTime begin = engine.now();
    again = co_await hdfs->recover_block(3);
    second_call_cost = engine.now() - begin;
  };
  proc();
  engine.run_until(sec(30));
  EXPECT_EQ(again, MiniHdfs::RecoverResult::kOk);
  // Finalized replicas: no replica copy the second time.
  EXPECT_LT(second_call_cost, ms(100));
}

TEST_F(HdfsFixture, ImpatientClientTimesOutWhileRecoveryContinues) {
  MiniHdfs::RecoverResult result = MiniHdfs::RecoverResult::kOk;
  auto proc = [&]() -> sim::Process {
    result = co_await hdfs->recover_block(3, /*client_timeout=*/ms(50));
  };
  proc();
  engine.run_until(sec(30));
  EXPECT_EQ(result, MiniHdfs::RecoverResult::kFailed);
  EXPECT_EQ(hdfs->recoveries_started(), 1u);  // the DN kept going
}

TEST_F(HdfsFixture, HeartbeatsDriveTheIpcStages) {
  const auto& trace = drain(minutes(1));
  std::map<core::StageId, int> per_stage;
  for (const auto& s : trace) per_stage[s.stage]++;
  // heartbeat_period 3 s, 4 DNs, ~1 minute: ~80 of each IPC stage.
  EXPECT_GT(per_stage[hdfs->stages().listener], 40);
  EXPECT_GT(per_stage[hdfs->stages().reader], 40);
  EXPECT_GT(per_stage[hdfs->stages().handler], 40);
}

TEST_F(HdfsFixture, EmptyPacketBranchProducesTheRareFlow) {
  HdfsOptions options;
  options.empty_packet_chance = 0.5;  // force the L3 branch often
  MiniHdfs flaky(&engine, &registry, monitor.get(), &sink, core::Level::kInfo,
                 &plane, options, /*seed=*/3);
  flaky.start();
  auto proc = [&]() -> sim::Process {
    for (std::uint64_t b = 0; b < 50; ++b)
      (void)co_await flaky.write_block(b, 64 * 1024);
  };
  proc();
  const auto& trace = drain(minutes(2));
  bool saw_l3 = false;
  for (const auto& s : trace) {
    if (s.stage != flaky.stages().data_xceiver) continue;
    for (const auto& lp : s.log_points)
      if (lp.point == flaky.points().dx_empty_packet) saw_l3 = true;
  }
  EXPECT_TRUE(saw_l3);
}

}  // namespace
}  // namespace saad::systems
