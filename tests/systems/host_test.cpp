#include "systems/host.h"

#include <gtest/gtest.h>

namespace saad::systems {
namespace {

struct HostFixture : ::testing::Test {
  sim::Engine engine;
  faults::FaultPlane plane;
  core::LogRegistry registry;
  core::NullSink sink;
  ManualClock clock;
  std::vector<core::Synopsis> emitted;
  std::unique_ptr<core::TaskExecutionTracker> tracker;
  std::unique_ptr<Host> host;
  core::StageId stage = core::kInvalidStage;
  core::LogPointId lp = 0;

  void SetUp() override {
    stage = registry.register_stage("S");
    lp = registry.register_log_point(stage, core::Level::kInfo, "x");
    tracker = std::make_unique<core::TaskExecutionTracker>(
        2, &engine.clock(),
        [this](const core::Synopsis& s) { emitted.push_back(s); });
    host = std::make_unique<Host>(&engine, &plane, &registry, &sink,
                                  core::Level::kInfo, tracker.get(), 2,
                                  Rng(1));
  }
};

TEST_F(HostFixture, BeginProducesTrackedTasks) {
  {
    auto task = host->begin(stage);
    task.log(lp, "hello");
  }
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].host, 2);
  EXPECT_EQ(emitted[0].stage, stage);
}

TEST_F(HostFixture, ComputeTakesRoughlyTheRequestedTime) {
  UsTime elapsed = 0;
  auto proc = [&]() -> sim::Process {
    const UsTime begin = engine.now();
    co_await host->compute(ms(10));
    elapsed = engine.now() - begin;
  };
  proc();
  engine.run_all();
  // Lognormal jitter (sigma 0.2) around the base.
  EXPECT_GT(elapsed, ms(5));
  EXPECT_LT(elapsed, ms(25));
}

TEST_F(HostFixture, ComputeQueuesBeyondTheCpuSlots) {
  // 2 * kCpuSlots equal jobs: the second wave finishes ~one service later.
  std::vector<UsTime> done;
  auto proc = [&]() -> sim::Process {
    co_await host->compute(ms(10));
    done.push_back(engine.now());
  };
  for (int i = 0; i < 2 * Host::kCpuSlots; ++i) proc();
  engine.run_all();
  ASSERT_EQ(done.size(), static_cast<std::size_t>(2 * Host::kCpuSlots));
  EXPECT_GT(done.back(), ms(15));  // queued behind the first wave
}

TEST_F(HostFixture, HogServiceIdlesWithoutHogs) {
  host->run_disk_hog_service();
  engine.run_until(sec(10));
  // Nothing occupied the disk: a probe completes at its bare service time.
  UsTime elapsed = 0;
  auto probe = [&]() -> sim::Process {
    const UsTime begin = engine.now();
    (void)co_await host->disk().io(faults::Activity::kDiskRead, 1000);
    elapsed = engine.now() - begin;
  };
  probe();
  engine.run_until(sec(11));
  EXPECT_LT(elapsed, ms(5));
}

TEST_F(HostFixture, HogServiceBlocksDiskUnderHighIntensity) {
  faults::HogSpec hog;
  hog.host = 2;
  hog.from = 0;
  hog.until = minutes(5);
  hog.processes = 4;
  plane.add_hog(hog);
  host->run_disk_hog_service();

  // Probe the disk repeatedly; at least one probe lands behind a writeback
  // burst (60ms * (4-2)^2 = 240ms base) and takes far longer than service.
  UsTime worst = 0;
  auto prober = [&]() -> sim::Process {
    for (int i = 0; i < 100; ++i) {
      const UsTime begin = engine.now();
      (void)co_await host->disk().io(faults::Activity::kDiskRead, 500);
      worst = std::max(worst, engine.now() - begin);
      co_await engine.delay(ms(500));
    }
  };
  prober();
  engine.run_until(minutes(2));
  EXPECT_GT(worst, ms(50));
}

TEST_F(HostFixture, NullTrackerHostStillLogs) {
  core::CountingSink counting;
  Host untracked(&engine, &plane, &registry, &counting, core::Level::kInfo,
                 nullptr, 3, Rng(2));
  {
    auto task = untracked.begin(stage);
    task.log(lp, "text");
  }
  EXPECT_EQ(counting.total_messages(), 1u);  // logged, no synopsis
}

}  // namespace
}  // namespace saad::systems
