// Unit-level MiniCassandra behavior (the end-to-end fault experiments live
// in cassandra_test.cpp).
#include "systems/cassandra/cassandra.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace saad::systems {
namespace {

struct CassandraUnitFixture : ::testing::Test {
  sim::Engine engine;
  core::LogRegistry registry;
  core::NullSink sink;
  faults::FaultPlane plane;
  std::unique_ptr<core::Monitor> monitor;
  std::unique_ptr<MiniCassandra> cass;

  void SetUp() override {
    monitor = std::make_unique<core::Monitor>(&registry, &engine.clock());
    cass = std::make_unique<MiniCassandra>(&engine, &registry, monitor.get(),
                                           &sink, core::Level::kInfo, &plane,
                                           CassandraOptions{}, /*seed=*/44);
    cass->start();
    monitor->start_training();
  }

  const std::vector<core::Synopsis>& drain(UsTime until) {
    engine.run_until(until);
    monitor->poll(engine.now());
    return monitor->training_trace();
  }
};

TEST_F(CassandraUnitFixture, WriteReplicatesToTwoNodes) {
  bool ok = false;
  auto proc = [&]() -> sim::Process {
    ok = co_await cass->put("replicated", "value");
  };
  proc();
  const auto& trace = drain(sec(2));
  EXPECT_TRUE(ok);
  // RF=2: the mutation runs the Table stage on two distinct hosts.
  std::set<core::HostId> hosts;
  for (const auto& s : trace) {
    if (s.stage == cass->stages().table) hosts.insert(s.host);
  }
  EXPECT_EQ(hosts.size(), 2u);
}

TEST_F(CassandraUnitFixture, OverwriteReturnsLatestValue) {
  std::optional<std::string> got;
  auto proc = [&]() -> sim::Process {
    (void)co_await cass->put("k", "old");
    (void)co_await cass->put("k", "new");
    got = co_await cass->get("k");
  };
  proc();
  engine.run_until(sec(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "new");
}

TEST_F(CassandraUnitFixture, WritePathEmitsTheFullStageChain) {
  auto proc = [&]() -> sim::Process {
    (void)co_await cass->put("chain", "v");
  };
  proc();
  const auto& trace = drain(sec(2));
  std::map<core::StageId, int> per_stage;
  for (const auto& s : trace) per_stage[s.stage]++;
  EXPECT_GE(per_stage[cass->stages().storage_proxy], 1);
  EXPECT_GE(per_stage[cass->stages().worker_process], 2);   // RF=2
  EXPECT_GE(per_stage[cass->stages().table], 2);
  EXPECT_GE(per_stage[cass->stages().log_record_adder], 2);
}

TEST_F(CassandraUnitFixture, RemoteWritesTraverseTcpStages) {
  // Over many keys, some replicas are remote: both TCP stages appear.
  auto proc = [&]() -> sim::Process {
    for (int i = 0; i < 50; ++i)
      (void)co_await cass->put("key" + std::to_string(i), "v");
  };
  proc();
  const auto& trace = drain(sec(5));
  int outbound = 0, inbound = 0;
  for (const auto& s : trace) {
    if (s.stage == cass->stages().outbound_tcp) outbound++;
    if (s.stage == cass->stages().incoming_tcp) inbound++;
  }
  EXPECT_GT(outbound, 10);
  EXPECT_GT(inbound, 10);
}

TEST_F(CassandraUnitFixture, ReadOfPreloadedKeyProbesSSTables) {
  cass->preload(100, 16);
  std::optional<std::string> got;
  auto proc = [&]() -> sim::Process { got = co_await cass->get("user7"); };
  proc();
  const auto& trace = drain(sec(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 16u);
  // The LocalReadRunnable flow includes the sstable-merge point.
  bool probed = false;
  for (const auto& s : trace) {
    if (s.stage != cass->stages().local_read) continue;
    for (const auto& lp : s.log_points)
      if (lp.point == cass->points().lr_disk) probed = true;
  }
  EXPECT_TRUE(probed);
}

TEST_F(CassandraUnitFixture, DaemonsKeepTheClusterChatty) {
  const auto& trace = drain(minutes(1));
  std::map<core::StageId, int> per_stage;
  for (const auto& s : trace) per_stage[s.stage]++;
  EXPECT_GT(per_stage[cass->stages().cassandra_daemon], 100);  // gossip
  EXPECT_GT(per_stage[cass->stages().gc_inspector], 10);
  EXPECT_GT(per_stage[cass->stages().commit_log], 50);
  EXPECT_GT(per_stage[cass->stages().compaction_manager], 20);
}

TEST_F(CassandraUnitFixture, GcInspectorStaysCalmWithoutPressure) {
  const auto& trace = drain(minutes(1));
  for (const auto& s : trace) {
    if (s.stage != cass->stages().gc_inspector) continue;
    for (const auto& lp : s.log_points)
      EXPECT_NE(lp.point, cass->points().gc_warn);
  }
}

TEST_F(CassandraUnitFixture, NoHintsWithoutFaults) {
  auto proc = [&]() -> sim::Process {
    for (int i = 0; i < 200; ++i)
      (void)co_await cass->put("quiet" + std::to_string(i), "v");
  };
  proc();
  drain(sec(10));
  EXPECT_EQ(cass->hints_stored(), 0u);
  EXPECT_EQ(cass->write_timeouts(), 0u);
}

}  // namespace
}  // namespace saad::systems
