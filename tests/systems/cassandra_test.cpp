#include "systems/cassandra/cassandra.h"

#include <gtest/gtest.h>

#include <set>

#include "core/report.h"
#include "workload/ycsb.h"

namespace saad::systems {
namespace {

/// End-to-end harness: 4-node MiniCassandra + YCSB + SAAD monitor.
struct CassandraFixture : ::testing::Test {
  sim::Engine engine;
  core::LogRegistry registry;
  core::NullSink sink;
  faults::FaultPlane plane;
  std::unique_ptr<core::Monitor> monitor;
  std::unique_ptr<MiniCassandra> cass;
  std::unique_ptr<workload::YcsbDriver> ycsb;

  void SetUp() override {
    monitor = std::make_unique<core::Monitor>(&registry, &engine.clock());
    CassandraOptions options;  // 4 nodes, RF 2
    cass = std::make_unique<MiniCassandra>(
        &engine, &registry, monitor.get(), &sink, core::Level::kInfo, &plane,
        options, /*seed=*/2024);

    workload::YcsbOptions wl;
    wl.clients = 8;
    wl.think_mean = ms(10);
    wl.read_proportion = 0.2;
    // Bounded key space: the dataset (and with it compaction cost and read
    // fan-in) plateaus, so the system reaches a steady state.
    wl.key_space = 20000;
    ycsb = std::make_unique<workload::YcsbDriver>(&engine, cass.get(), wl,
                                                  /*seed=*/99);
  }

  /// Warm up to steady state (the paper lets the loaded system run before
  /// measuring), train on [warmup, warmup+train), arm the detector.
  void train(UsTime warmup = minutes(2), UsTime train_span = minutes(2)) {
    cass->preload(20000, 100);  // the paper's baseline data set
    cass->start();
    ycsb->start(minutes(40));  // clients run for the whole test
    engine.run_until(warmup);
    monitor->start_training();  // discards warmup synopses
    engine.run_until(warmup + train_span);
    core::TrainingConfig config;
    monitor->train(config);
    monitor->arm();
  }

  std::vector<core::Anomaly> run_and_poll(UsTime until) {
    engine.run_until(until);
    return monitor->poll(engine.now());
  }

  bool has_anomaly(const std::vector<core::Anomaly>& anomalies,
                   core::StageId stage, core::HostId host,
                   core::AnomalyKind kind) const {
    for (const auto& a : anomalies) {
      if (a.stage == stage && a.host == host && a.kind == kind) return true;
    }
    return false;
  }
};

TEST_F(CassandraFixture, TrainingCoversTheCoreStages) {
  train();
  const auto* model = monitor->model();
  ASSERT_NE(model, nullptr);
  EXPECT_GT(model->trained_tasks(), 10000u);
  const auto& st = cass->stages();
  for (core::StageId stage :
       {st.worker_process, st.table, st.storage_proxy, st.log_record_adder,
        st.memtable, st.commit_log, st.gc_inspector, st.cassandra_daemon,
        st.local_read, st.incoming_tcp, st.outbound_tcp,
        st.compaction_manager}) {
    EXPECT_NE(model->stage_model(stage), nullptr)
        << registry.stage(stage).name;
  }
}

TEST_F(CassandraFixture, FaultFreeRunStaysMostlyQuiet) {
  train();
  const auto anomalies = run_and_poll(minutes(8));
  // Natural variability can produce a handful of false positives (the paper
  // measures ~1 per 10 minutes per system); a quiet 4-minute run must not
  // light up the cluster.
  EXPECT_LE(anomalies.size(), 6u);
}

TEST_F(CassandraFixture, WalErrorHighIntensityWedgesAndRaisesTableAnomaly) {
  train();

  faults::FaultSpec fault;
  fault.host = 1;
  fault.activity = faults::Activity::kWalAppend;
  fault.mode = faults::FaultMode::kError;
  fault.intensity = 1.0;
  fault.from = minutes(5);
  fault.until = minutes(10);
  plane.add(fault);

  const auto anomalies = run_and_poll(minutes(10));
  EXPECT_TRUE(cass->node_wedged(1));
  // Table 1's frozen-MemTable flow on the faulted host:
  EXPECT_TRUE(has_anomaly(anomalies, cass->stages().table, 1,
                          core::AnomalyKind::kFlow));
  // And no Table flow anomaly on an unfaulted host.
  EXPECT_FALSE(has_anomaly(anomalies, cass->stages().table, 2,
                           core::AnomalyKind::kFlow));
  // Coordinators hint the failed endpoint.
  EXPECT_GT(cass->hints_stored(), 0u);
}

TEST_F(CassandraFixture, WedgedNodeEventuallyCrashes) {
  train();
  faults::FaultSpec fault;
  fault.host = 1;
  fault.activity = faults::Activity::kWalAppend;
  fault.mode = faults::FaultMode::kError;
  fault.intensity = 1.0;
  fault.from = minutes(5);
  fault.until = minutes(25);
  plane.add(fault);

  engine.run_until(minutes(25));
  EXPECT_TRUE(cass->node_crashed(1));
  // The cluster keeps serving after the crash: gossip marks it down and
  // writes keep succeeding on the surviving replicas.
  const auto& ops = ycsb->stats().ops;
  const std::size_t last = ops.num_windows() - 1;
  EXPECT_GT(ops.rate_in(last), 0.0);
}

TEST_F(CassandraFixture, WalErrorLowIntensityDoesNotWedge) {
  train();
  faults::FaultSpec fault;
  fault.host = 1;
  fault.activity = faults::Activity::kWalAppend;
  fault.mode = faults::FaultMode::kError;
  fault.intensity = 0.01;
  fault.from = minutes(5);
  fault.until = minutes(15);
  plane.add(fault);

  const auto anomalies = run_and_poll(minutes(15));
  EXPECT_FALSE(cass->node_wedged(1));
  EXPECT_FALSE(cass->node_crashed(1));
  // The 1% failed writes terminate prematurely: a rare {lra_add}-only /
  // {tbl_start}-only flow the detector flags on the faulted host.
  const bool flow_on_faulted =
      has_anomaly(anomalies, cass->stages().table, 1,
                  core::AnomalyKind::kFlow) ||
      has_anomaly(anomalies, cass->stages().log_record_adder, 1,
                  core::AnomalyKind::kFlow) ||
      has_anomaly(anomalies, cass->stages().worker_process, 1,
                  core::AnomalyKind::kFlow);
  EXPECT_TRUE(flow_on_faulted);
}

TEST_F(CassandraFixture, FlushErrorRaisesMemtableAndGcAnomalies) {
  train();
  faults::FaultSpec fault;
  fault.host = 2;
  fault.activity = faults::Activity::kMemtableFlush;
  fault.mode = faults::FaultMode::kError;
  fault.intensity = 1.0;
  fault.from = minutes(5);
  fault.until = minutes(12);
  plane.add(fault);

  const auto anomalies = run_and_poll(minutes(12));
  EXPECT_TRUE(has_anomaly(anomalies, cass->stages().memtable, 2,
                          core::AnomalyKind::kFlow));
  // Memory pressure from unflushable MemTables shows up in GCInspector.
  EXPECT_TRUE(has_anomaly(anomalies, cass->stages().gc_inspector, 2,
                          core::AnomalyKind::kFlow));
  EXPECT_GT(cass->store(2).flushes_failed(), 0u);
  EXPECT_GT(cass->store(2).frozen_backlog(), 0u);
}

TEST_F(CassandraFixture, WalDelayRaisesPerformanceAnomalies) {
  train();
  faults::FaultSpec fault;
  fault.host = 3;
  fault.activity = faults::Activity::kWalAppend;
  fault.mode = faults::FaultMode::kDelay;
  fault.delay = ms(100);
  fault.intensity = 1.0;
  fault.from = minutes(5);
  fault.until = minutes(10);
  plane.add(fault);

  const auto anomalies = run_and_poll(minutes(10));
  const bool perf_on_faulted =
      has_anomaly(anomalies, cass->stages().worker_process, 3,
                  core::AnomalyKind::kPerformance) ||
      has_anomaly(anomalies, cass->stages().log_record_adder, 3,
                  core::AnomalyKind::kPerformance) ||
      has_anomaly(anomalies, cass->stages().table, 3,
                  core::AnomalyKind::kPerformance);
  EXPECT_TRUE(perf_on_faulted);
  EXPECT_FALSE(cass->node_wedged(3));  // delay faults don't wedge
}

TEST_F(CassandraFixture, DataPathServesWrittenValues) {
  cass->start();
  bool ok = false;
  std::optional<std::string> read_back;
  auto proc = [&]() -> sim::Process {
    ok = co_await cass->put("mykey", "myvalue");
    read_back = co_await cass->get("mykey");
  };
  proc();
  engine.run_until(sec(1));
  EXPECT_TRUE(ok);
  ASSERT_TRUE(read_back.has_value());
  EXPECT_EQ(*read_back, "myvalue");
}

TEST_F(CassandraFixture, SignatureDistributionIsHeadHeavy) {
  // Fig. 6c's shape: a few signatures account for ~95% of tasks.
  train();
  std::map<std::pair<core::StageId, core::Signature>, std::uint64_t> counts;
  std::uint64_t total = 0;
  for (const auto& s : monitor->training_trace()) {
    counts[{s.stage, core::Signature::from(s)}]++;
    total++;
  }
  ASSERT_GT(total, 0u);
  std::vector<std::uint64_t> sorted;
  for (const auto& [k, c] : counts) sorted.push_back(c);
  std::sort(sorted.rbegin(), sorted.rend());
  std::uint64_t cum = 0;
  std::size_t needed = 0;
  for (auto c : sorted) {
    cum += c;
    needed++;
    if (cum >= total * 95 / 100) break;
  }
  // A minority of signatures covers 95% of tasks.
  EXPECT_LT(needed, sorted.size());
  EXPECT_LE(needed, sorted.size() / 2 + 1);
}

TEST_F(CassandraFixture, DeterministicAcrossRuns) {
  train();
  faults::FaultSpec fault;
  fault.host = 1;
  fault.activity = faults::Activity::kWalAppend;
  fault.mode = faults::FaultMode::kError;
  fault.intensity = 1.0;
  fault.from = minutes(5);
  fault.until = minutes(8);
  plane.add(fault);
  const auto anomalies = run_and_poll(minutes(8));

  // Rebuild the identical world and replay.
  sim::Engine engine2;
  core::LogRegistry registry2;
  core::NullSink sink2;
  faults::FaultPlane plane2;
  core::Monitor monitor2(&registry2, &engine2.clock());
  MiniCassandra cass2(&engine2, &registry2, &monitor2, &sink2,
                      core::Level::kInfo, &plane2, CassandraOptions{}, 2024);
  workload::YcsbOptions wl;
  wl.clients = 8;
  wl.think_mean = ms(10);
  wl.read_proportion = 0.2;
  wl.key_space = 20000;
  workload::YcsbDriver ycsb2(&engine2, &cass2, wl, 99);
  cass2.preload(20000, 100);
  cass2.start();
  ycsb2.start(minutes(40));
  engine2.run_until(minutes(2));
  monitor2.start_training();
  engine2.run_until(minutes(4));
  monitor2.train({});
  monitor2.arm();
  plane2.add(fault);
  engine2.run_until(minutes(8));
  const auto anomalies2 = monitor2.poll(engine2.now());

  ASSERT_EQ(anomalies.size(), anomalies2.size());
  for (std::size_t i = 0; i < anomalies.size(); ++i) {
    EXPECT_EQ(anomalies[i].stage, anomalies2[i].stage);
    EXPECT_EQ(anomalies[i].host, anomalies2[i].host);
    EXPECT_EQ(anomalies[i].kind, anomalies2[i].kind);
    EXPECT_EQ(anomalies[i].window, anomalies2[i].window);
  }
}

}  // namespace
}  // namespace saad::systems
