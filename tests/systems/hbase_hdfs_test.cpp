#include "systems/hbase/hbase.h"

#include <gtest/gtest.h>

#include "core/report.h"
#include "workload/ycsb.h"

namespace saad::systems {
namespace {

/// End-to-end harness: 4 co-located Regionserver/DataNode hosts + YCSB +
/// SAAD monitor — the paper's §5.5 testbed.
struct HBaseFixture : ::testing::Test {
  sim::Engine engine;
  core::LogRegistry registry;
  core::NullSink sink;
  faults::FaultPlane plane;
  std::unique_ptr<core::Monitor> monitor;
  std::unique_ptr<MiniHdfs> hdfs;
  std::unique_ptr<MiniHBase> hbase;
  std::unique_ptr<workload::YcsbDriver> ycsb;

  void SetUp() override {
    monitor = std::make_unique<core::Monitor>(&registry, &engine.clock());
    hdfs = std::make_unique<MiniHdfs>(&engine, &registry, monitor.get(), &sink,
                                      core::Level::kInfo, &plane,
                                      HdfsOptions{}, /*seed=*/7);
    hbase = std::make_unique<MiniHBase>(&engine, &registry, monitor.get(),
                                        &sink, core::Level::kInfo, &plane,
                                        hdfs.get(), HBaseOptions{},
                                        /*seed=*/11);
    workload::YcsbOptions wl;
    wl.clients = 8;
    wl.think_mean = ms(10);
    wl.read_proportion = 0.2;
    wl.key_space = 20000;
    ycsb = std::make_unique<workload::YcsbDriver>(&engine, hbase.get(), wl,
                                                  /*seed=*/99);
  }

  /// Warm up (steady state), train on [2, 6) minutes, arm.
  void train() {
    hbase->preload(20000, 100);
    hdfs->start();
    hbase->start();
    ycsb->start(minutes(40));
    engine.run_until(minutes(2));
    monitor->start_training();
    engine.run_until(minutes(6));
    monitor->train({});
    monitor->arm();
  }

  std::vector<core::Anomaly> run_and_poll(UsTime until) {
    engine.run_until(until);
    return monitor->poll(engine.now());
  }

  void add_hog(int processes, UsTime from, UsTime until) {
    faults::HogSpec hog;
    hog.host = faults::kAnyHost;  // the paper launches dd on all hosts
    hog.from = from;
    hog.until = until;
    hog.processes = processes;
    plane.add_hog(hog);
  }

  bool has_anomaly(const std::vector<core::Anomaly>& anomalies,
                   core::StageId stage, core::AnomalyKind kind,
                   int host = -1) const {
    for (const auto& a : anomalies) {
      if (a.stage == stage && a.kind == kind &&
          (host < 0 || a.host == host)) {
        return true;
      }
    }
    return false;
  }

  int crashed_count() const {
    int n = 0;
    for (int i = 0; i < hbase->num_regionservers(); ++i)
      if (hbase->rs_crashed(i)) ++n;
    return n;
  }
};

TEST_F(HBaseFixture, TrainingCoversHdfsAndHBaseStages) {
  train();
  const auto* model = monitor->model();
  ASSERT_NE(model, nullptr);
  for (core::StageId stage :
       {hdfs->stages().data_xceiver, hdfs->stages().packet_responder,
        hdfs->stages().handler, hdfs->stages().listener,
        hdfs->stages().reader, hbase->stages().call, hbase->stages().handler,
        hbase->stages().data_streamer, hbase->stages().response_processor,
        hbase->stages().log_roller, hbase->stages().split_log_worker,
        hbase->stages().compaction_checker,
        hbase->stages().compaction_request, hbase->stages().listener,
        hbase->stages().connection}) {
    EXPECT_NE(model->stage_model(stage), nullptr)
        << registry.stage(stage).name;
  }
}

TEST_F(HBaseFixture, FaultFreeRunStaysQuiet) {
  train();
  const auto anomalies = run_and_poll(minutes(10));
  EXPECT_LE(anomalies.size(), 6u);
  EXPECT_EQ(crashed_count(), 0);
}

TEST_F(HBaseFixture, LowIntensityHogIsNearlyInvisible) {
  train();
  add_hog(1, minutes(7), minutes(10));
  const auto anomalies = run_and_poll(minutes(10));
  // One dd process: absorbed (the paper saw only 2 marks on the busiest
  // Regionservers). No crash, no recovery, few anomalies.
  EXPECT_LE(anomalies.size(), 8u);
  EXPECT_EQ(crashed_count(), 0);
  EXPECT_EQ(hbase->recoveries_attempted(), 0u);
}

TEST_F(HBaseFixture, MediumHogSlowsRpcCallsNotDataNodes) {
  train();
  add_hog(2, minutes(7), minutes(11));
  const auto anomalies = run_and_poll(minutes(11));
  EXPECT_EQ(crashed_count(), 0);
  // The paper: "Our model isolates the RPC calls in stage Call as anomalous
  // ... Since we see no performance anomalies on the Data Nodes, this
  // pattern suggests CPU contention rather than I/O slow-down."
  EXPECT_TRUE(has_anomaly(anomalies, hbase->stages().call,
                          core::AnomalyKind::kPerformance));
  EXPECT_FALSE(has_anomaly(anomalies, hdfs->stages().data_xceiver,
                           core::AnomalyKind::kPerformance));
  EXPECT_FALSE(has_anomaly(anomalies, hdfs->stages().packet_responder,
                           core::AnomalyKind::kPerformance));
}

TEST_F(HBaseFixture, HighHogTriggersRecoveryBugAndCrash) {
  train();
  add_hog(4, minutes(7), minutes(13));
  const auto anomalies = run_and_poll(minutes(13));

  // The premature-recovery-termination bug fires...
  EXPECT_GT(hbase->recoveries_attempted(), 0u);
  EXPECT_GT(hdfs->recovery_rejections(), 0u);
  // ...visible as a RecoverBlocks flow anomaly on a DataNode...
  EXPECT_TRUE(has_anomaly(anomalies, hdfs->stages().recover_blocks,
                          core::AnomalyKind::kFlow));
  // ...and at least one Regionserver aborts (the paper lost RS 3).
  EXPECT_GE(crashed_count(), 1);
  EXPECT_LE(crashed_count(), 3);  // the cluster survives
  EXPECT_GT(hbase->regions_reassigned(), 0u);

  // Survivors split the dead server's logs and reopen regions: the
  // cluster-wide surge of flow outliers.
  EXPECT_TRUE(has_anomaly(anomalies, hbase->stages().split_log_worker,
                          core::AnomalyKind::kFlow));
  EXPECT_TRUE(has_anomaly(anomalies, hbase->stages().open_region,
                          core::AnomalyKind::kFlow));
}

TEST_F(HBaseFixture, MajorCompactionIsALegitimateFalsePositive) {
  train();
  engine.run_until(minutes(8));
  hbase->trigger_major_compaction();
  const auto anomalies = run_and_poll(minutes(10));
  // "A case of false positive where a legitimate but rare activity is
  // misidentified as an anomaly" — the major-compaction flow was not in the
  // training trace, so it raises flow anomalies in the compaction stages.
  const bool compaction_flagged =
      has_anomaly(anomalies, hbase->stages().compaction_request,
                  core::AnomalyKind::kFlow) ||
      has_anomaly(anomalies, hbase->stages().compaction_checker,
                  core::AnomalyKind::kFlow);
  EXPECT_TRUE(compaction_flagged);
}

TEST_F(HBaseFixture, DataPathServesWrittenValues) {
  hbase->preload(100, 8);
  hdfs->start();
  hbase->start();
  bool ok = false;
  std::optional<std::string> fresh, preloaded;
  auto proc = [&]() -> sim::Process {
    ok = co_await hbase->put("mykey", "myvalue");
    fresh = co_await hbase->get("mykey");
    preloaded = co_await hbase->get("user42");  // served from HFiles
  };
  proc();
  engine.run_until(sec(2));
  EXPECT_TRUE(ok);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(*fresh, "myvalue");
  ASSERT_TRUE(preloaded.has_value());
  EXPECT_EQ(preloaded->size(), 8u);
}

TEST_F(HBaseFixture, WritesKeepFlowingThroughHdfsPipelines) {
  train();
  engine.run_until(minutes(7));
  EXPECT_GT(hdfs->blocks_written(), 1000u);  // WAL syncs stream constantly
}

}  // namespace
}  // namespace saad::systems
