#include "workload/ycsb.h"

#include <gtest/gtest.h>

#include <map>

namespace saad::workload {
namespace {

/// Minimal in-sim KV service with a fixed per-op latency.
class FakeKv : public KvService {
 public:
  FakeKv(sim::Engine* engine, UsTime latency)
      : engine_(engine), latency_(latency) {}

  sim::Task<bool> put(std::string key, std::string value) override {
    co_await engine_->delay(latency_);
    data_[std::move(key)] = std::move(value);
    puts_++;
    co_return true;
  }

  sim::Task<std::optional<std::string>> get(std::string key) override {
    co_await engine_->delay(latency_);
    gets_++;
    const auto it = data_.find(key);
    if (it == data_.end()) co_return std::nullopt;
    co_return it->second;
  }

  int puts() const { return puts_; }
  int gets() const { return gets_; }

 private:
  sim::Engine* engine_;
  UsTime latency_;
  std::map<std::string, std::string> data_;
  int puts_ = 0;
  int gets_ = 0;
};

TEST(YcsbDriver, GeneratesConfiguredMix) {
  sim::Engine engine;
  FakeKv kv(&engine, 100);
  YcsbOptions options;
  options.clients = 20;
  options.read_proportion = 0.25;
  options.think_mean = ms(1);
  YcsbDriver driver(&engine, &kv, options, 42);
  driver.start(sec(30));
  engine.run_all();

  const int total = kv.puts() + kv.gets();
  ASSERT_GT(total, 1000);
  EXPECT_NEAR(static_cast<double>(kv.gets()) / total, 0.25, 0.05);
}

TEST(YcsbDriver, ThroughputRecordedPerWindow) {
  sim::Engine engine;
  FakeKv kv(&engine, 100);
  YcsbOptions options;
  options.clients = 10;
  options.think_mean = ms(1);
  YcsbDriver driver(&engine, &kv, options, 7);
  driver.start(sec(40));
  engine.run_all();

  // 40 s of traffic = 4 windows of 10 s, all nonzero.
  ASSERT_GE(driver.stats().ops.num_windows(), 4u);
  for (std::size_t w = 0; w < 4; ++w)
    EXPECT_GT(driver.stats().ops.rate_in(w), 0.0) << "window " << w;
  EXPECT_GT(driver.mean_rate(0, 4), 100.0);
}

TEST(YcsbDriver, StopsAtDeadline) {
  sim::Engine engine;
  FakeKv kv(&engine, 100);
  YcsbOptions options;
  options.clients = 5;
  options.think_mean = ms(1);
  YcsbDriver driver(&engine, &kv, options, 7);
  driver.start(sec(5));
  engine.run_all();
  // All events drained: no client still running.
  EXPECT_TRUE(engine.idle());
  // Ops stop shortly after the deadline (at most one in-flight op each).
  EXPECT_LE(engine.now(), sec(5) + ms(10));
}

TEST(YcsbDriver, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Engine engine;
    FakeKv kv(&engine, 100);
    YcsbOptions options;
    options.clients = 10;
    options.think_mean = ms(1);
    YcsbDriver driver(&engine, &kv, options, seed);
    driver.start(sec(10));
    engine.run_all();
    return std::make_pair(kv.puts(), kv.gets());
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(YcsbDriver, ZipfianSkewsKeys) {
  sim::Engine engine;
  FakeKv kv(&engine, 10);

  class CountingKv : public KvService {
   public:
    explicit CountingKv(sim::Engine* e) : engine_(e) {}
    sim::Task<bool> put(std::string key, std::string) override {
      co_await engine_->delay(10);
      counts_[key]++;
      total_++;
      co_return true;
    }
    sim::Task<std::optional<std::string>> get(std::string key) override {
      co_await engine_->delay(10);
      counts_[key]++;
      total_++;
      co_return std::nullopt;
    }
    std::map<std::string, int> counts_;
    int total_ = 0;
    sim::Engine* engine_;
  } counting(&engine);

  YcsbOptions options;
  options.clients = 10;
  options.key_space = 10000;
  options.think_mean = 500;
  YcsbDriver driver(&engine, &counting, options, 11);
  driver.start(sec(20));
  engine.run_all();

  // Hot keys dominate: the single most popular key holds a few percent.
  int max_count = 0;
  for (const auto& [k, c] : counting.counts_) max_count = std::max(max_count, c);
  ASSERT_GT(counting.total_, 1000);
  EXPECT_GT(static_cast<double>(max_count) / counting.total_, 0.02);
}

TEST(YcsbDriver, PutBatchingQuirkStarvesServerPuts) {
  sim::Engine engine;
  FakeKv kv(&engine, 100);
  YcsbOptions options;
  options.clients = 10;
  options.read_proportion = 0.2;
  options.think_mean = ms(1);
  options.put_batch_size = 10;  // the YCSB 0.1.4 misconfiguration
  YcsbDriver driver(&engine, &kv, options, 13);
  driver.start(sec(20));
  engine.run_all();

  const auto& stats = driver.stats();
  std::uint64_t client_ops = 0, server_puts = 0;
  for (std::size_t w = 0; w < stats.ops.num_windows(); ++w)
    client_ops += stats.ops.count_in(w);
  for (std::size_t w = 0; w < stats.server_puts.num_windows(); ++w)
    server_puts += stats.server_puts.count_in(w);
  // ~80% writes, only 1 in 10 reaches the server.
  EXPECT_LT(server_puts, client_ops / 5);
  EXPECT_GT(server_puts, 0u);
}

TEST(YcsbDriver, KeyNameFormat) {
  EXPECT_EQ(YcsbDriver::key_name(0), "user0");
  EXPECT_EQ(YcsbDriver::key_name(12345), "user12345");
}

}  // namespace
}  // namespace saad::workload
