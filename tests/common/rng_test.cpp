#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace saad {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(11);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(9);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.chance(0.25)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMedianApproximatelyRequested) {
  Rng rng(19);
  std::vector<double> xs(100001);
  for (auto& x : xs) x = rng.lognormal_median(4.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + 50000, xs.end());
  EXPECT_NEAR(xs[50000], 4.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Zipfian, ValuesInRange) {
  Rng rng(29);
  Zipfian zipf(1000, 0.99);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(zipf.next(rng), 1000u);
}

TEST(Zipfian, SkewsTowardLowRanks) {
  Rng rng(31);
  Zipfian zipf(10000, 0.99);
  int low = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (zipf.next(rng) < 100) ++low;
  // With theta=0.99 the head is heavily weighted: far more than uniform 1%.
  EXPECT_GT(low, n / 4);
}

TEST(Zipfian, SingleElementAlwaysZero) {
  Rng rng(37);
  Zipfian zipf(1, 0.99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.next(rng), 0u);
}

TEST(PickCumulative, RespectsWeights) {
  Rng rng(41);
  const std::vector<double> cum = {0.5, 0.5, 1.0};  // item 1 has zero mass
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 100000; ++i) counts[pick_cumulative(rng, cum)]++;
  EXPECT_NEAR(counts[0] / 100000.0, 0.5, 0.02);
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 100000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace saad
