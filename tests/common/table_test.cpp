#include "common/table.h"

#include <gtest/gtest.h>

namespace saad {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.to_string().find("only"), std::string::npos);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(static_cast<std::int64_t>(42)), "42");
}

TEST(TimelineChart, MarksAppearAtBucket) {
  TimelineChart chart(20, "test");
  chart.mark("StageA(1)", 5, 'F');
  chart.mark("StageA(1)", 7, 'P');
  chart.mark("StageB(2)", 0, 'N');
  const std::string s = chart.to_string(10);
  EXPECT_NE(s.find("StageA(1)"), std::string::npos);
  EXPECT_NE(s.find("StageB(2)"), std::string::npos);
  // Row A: dots with F at index 5 and P at index 7.
  const auto pos = s.find("StageA(1) |");
  ASSERT_NE(pos, std::string::npos);
  const std::string row = s.substr(pos + 11, 20);
  EXPECT_EQ(row[5], 'F');
  EXPECT_EQ(row[7], 'P');
  EXPECT_EQ(row[0], '.');
}

TEST(TimelineChart, OutOfRangeMarkIgnored) {
  TimelineChart chart(5, "t");
  chart.mark("X", 99, 'F');
  // No row created for an out-of-range mark.
  EXPECT_EQ(chart.to_string().find("X |"), std::string::npos);
}

TEST(TimelineChart, LaterMarkOverwrites) {
  TimelineChart chart(3, "t");
  chart.mark("X", 1, 'P');
  chart.mark("X", 1, 'F');
  const std::string s = chart.to_string();
  const auto pos = s.find("X |");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(s[pos + 3 + 1], 'F');
}

}  // namespace
}  // namespace saad
