#include "common/histogram.h"

#include <gtest/gtest.h>

namespace saad {
namespace {

TEST(Histogram, EmptyReturnsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_EQ(h.percentile(0.5), 1000);
  EXPECT_EQ(h.percentile(1.0), 1000);
}

TEST(Histogram, PercentileWithinResolution) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.record(i);
  // ~3% bucket resolution.
  EXPECT_NEAR(h.percentile(0.5), 5000, 5000 * 0.05);
  EXPECT_NEAR(h.percentile(0.99), 9900, 9900 * 0.05);
  EXPECT_EQ(h.percentile(1.0), 10000);
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, MergeCombinesCounts) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.record(5);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.99), 0);
}

TEST(Histogram, NonPositiveValuesClampToOne) {
  Histogram h;
  h.record(0);
  h.record(-7);
  EXPECT_EQ(h.count(), 2u);
  // min/max track raw values even though buckets clamp.
  EXPECT_EQ(h.min(), -7);
}

TEST(WindowedCounter, BucketsByWindow) {
  WindowedCounter w(sec(10));
  w.record(sec(1));
  w.record(sec(9));
  w.record(sec(10));
  w.record(sec(25), 3);
  EXPECT_EQ(w.num_windows(), 3u);
  EXPECT_EQ(w.count_in(0), 2u);
  EXPECT_EQ(w.count_in(1), 1u);
  EXPECT_EQ(w.count_in(2), 3u);
  EXPECT_EQ(w.count_in(99), 0u);
}

TEST(WindowedCounter, RatePerSecond) {
  WindowedCounter w(sec(10));
  w.record(sec(3), 50);
  EXPECT_DOUBLE_EQ(w.rate_in(0), 5.0);
  EXPECT_EQ(w.rates().size(), 1u);
}

}  // namespace
}  // namespace saad
