#include "common/clock.h"

#include <gtest/gtest.h>

#include <thread>

namespace saad {
namespace {

TEST(ManualClock, StartsAtGivenTime) {
  ManualClock c(123);
  EXPECT_EQ(c.now(), 123);
}

TEST(ManualClock, SetAndAdvance) {
  ManualClock c;
  c.set(1000);
  EXPECT_EQ(c.now(), 1000);
  c.advance(500);
  EXPECT_EQ(c.now(), 1500);
}

TEST(RealClock, MonotonicNonNegative) {
  RealClock c;
  const UsTime a = c.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const UsTime b = c.now();
  EXPECT_GE(a, 0);
  EXPECT_GT(b, a);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(ms(3), 3000);
  EXPECT_EQ(sec(2), 2000000);
  EXPECT_EQ(minutes(1), 60000000);
  EXPECT_DOUBLE_EQ(to_ms(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_sec(sec(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_min(minutes(7)), 7.0);
}

}  // namespace
}  // namespace saad
