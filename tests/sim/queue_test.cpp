#include "sim/queue.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace saad::sim {
namespace {

TEST(SimQueue, PopReadyWhenItemAvailable) {
  Engine engine;
  SimQueue<int> queue(&engine);
  queue.push(42);
  int got = 0;
  auto consumer = [&]() -> Process { got = co_await queue.pop(); };
  consumer();
  EXPECT_EQ(got, 42);  // completed synchronously: item was ready
}

TEST(SimQueue, ConsumerWaitsForProducer) {
  Engine engine;
  SimQueue<std::string> queue(&engine);
  std::string got;
  auto consumer = [&]() -> Process { got = co_await queue.pop(); };
  consumer();
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(queue.waiting_consumers(), 1u);

  engine.schedule_at(100, [&] { queue.push("hello"); });
  engine.run_all();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(engine.now(), 100);
}

TEST(SimQueue, FifoOrderAmongItems) {
  Engine engine;
  SimQueue<int> queue(&engine);
  std::vector<int> got;
  auto consumer = [&]() -> Process {
    for (int i = 0; i < 3; ++i) got.push_back(co_await queue.pop());
  };
  queue.push(1);
  queue.push(2);
  queue.push(3);
  consumer();
  engine.run_all();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(SimQueue, FifoOrderAmongWaiters) {
  Engine engine;
  SimQueue<int> queue(&engine);
  std::vector<std::pair<int, int>> got;  // (consumer, item)
  auto consumer = [&](int id) -> Process {
    const int item = co_await queue.pop();
    got.emplace_back(id, item);
  };
  consumer(1);
  consumer(2);
  engine.schedule_at(10, [&] {
    queue.push(100);
    queue.push(200);
  });
  engine.run_all();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::make_pair(1, 100));
  EXPECT_EQ(got[1], std::make_pair(2, 200));
}

TEST(SimQueue, WokenConsumerCannotLoseItsItem) {
  // A push destined for a suspended waiter delivers by value: a competing
  // pop cannot steal it even if it runs before the waiter resumes.
  Engine engine;
  SimQueue<int> queue(&engine);
  int waiter_got = 0, thief_got = 0;
  auto waiter = [&]() -> Process { waiter_got = co_await queue.pop(); };
  waiter();
  queue.push(1);  // hands off to the waiter, resume scheduled
  auto thief = [&]() -> Process { thief_got = co_await queue.pop(); };
  thief();  // must suspend: the queue is logically empty
  queue.push(2);
  engine.run_all();
  EXPECT_EQ(waiter_got, 1);
  EXPECT_EQ(thief_got, 2);
}

TEST(SimQueue, SizeReflectsBufferedItems) {
  Engine engine;
  SimQueue<int> queue(&engine);
  EXPECT_TRUE(queue.empty());
  queue.push(1);
  queue.push(2);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_FALSE(queue.empty());
}

TEST(SimQueue, ManyProducersManyConsumers) {
  Engine engine;
  SimQueue<int> queue(&engine);
  int sum = 0, count = 0;
  auto consumer = [&]() -> Process {
    for (;;) {
      sum += co_await queue.pop();
      count++;
    }
  };
  consumer();
  consumer();
  consumer();
  for (int t = 1; t <= 100; ++t) {
    engine.schedule_at(t, [&queue, t] { queue.push(t); });
  }
  engine.run_all();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sum, 5050);
}

TEST(SimQueue, MoveOnlyItems) {
  Engine engine;
  SimQueue<std::unique_ptr<int>> queue(&engine);
  int got = 0;
  auto consumer = [&]() -> Process {
    auto p = co_await queue.pop();
    got = *p;
  };
  consumer();
  queue.push(std::make_unique<int>(9));
  engine.run_all();
  EXPECT_EQ(got, 9);
}

}  // namespace
}  // namespace saad::sim
