#include "sim/resource.h"

#include <gtest/gtest.h>

#include <vector>

namespace saad::sim {
namespace {

TEST(Resource, CapacityLimitsConcurrency) {
  Engine engine;
  Resource res(&engine, 2);
  std::vector<UsTime> completion;
  auto worker = [&]() -> Process {
    co_await res.acquire();
    co_await engine.delay(100);
    res.release();
    completion.push_back(engine.now());
  };
  worker();
  worker();
  worker();  // must queue behind the first two
  engine.run_all();
  ASSERT_EQ(completion.size(), 3u);
  EXPECT_EQ(completion[0], 100);
  EXPECT_EQ(completion[1], 100);
  EXPECT_EQ(completion[2], 200);
}

TEST(Resource, ReleaseHandsSlotToFirstWaiter) {
  Engine engine;
  Resource res(&engine, 1);
  std::vector<int> order;
  auto worker = [&](int id) -> Process {
    co_await res.acquire();
    order.push_back(id);
    co_await engine.delay(10);
    res.release();
  };
  worker(1);
  worker(2);
  worker(3);
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(res.available(), 1);
  EXPECT_EQ(res.queue_length(), 0u);
}

TEST(Resource, UseCombinesAcquireDelayRelease) {
  Engine engine;
  Resource res(&engine, 1);
  std::vector<UsTime> completion;
  auto worker = [&]() -> Process {
    co_await res.use(50);
    completion.push_back(engine.now());
  };
  worker();
  worker();
  engine.run_all();
  EXPECT_EQ(completion, (std::vector<UsTime>{50, 100}));
}

struct DiskFixture : ::testing::Test {
  Engine engine;
  faults::FaultPlane plane;
};

TEST_F(DiskFixture, IoTakesServiceTime) {
  Disk disk(&engine, &plane, 0, Rng(1));
  IoResult result;
  auto proc = [&]() -> Process {
    result = co_await disk.io(faults::Activity::kDiskWrite, 500);
  };
  proc();
  engine.run_all();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.service, 500);
  EXPECT_EQ(engine.now(), 500);
}

TEST_F(DiskFixture, ContendedIoQueues) {
  Disk disk(&engine, &plane, 0, Rng(2));
  std::vector<IoResult> results;
  auto proc = [&]() -> Process {
    results.push_back(co_await disk.io(faults::Activity::kDiskWrite, 100));
  };
  proc();
  proc();
  engine.run_all();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].queued, 0);
  EXPECT_EQ(results[1].queued, 100);
  EXPECT_EQ(engine.now(), 200);
}

TEST_F(DiskFixture, ErrorFaultFailsOperation) {
  faults::FaultSpec spec;
  spec.host = 0;
  spec.activity = faults::Activity::kWalAppend;
  spec.mode = faults::FaultMode::kError;
  spec.intensity = 1.0;
  spec.from = 0;
  spec.until = sec(10);
  plane.add(spec);

  Disk disk(&engine, &plane, 0, Rng(3));
  IoResult wal, other;
  auto proc = [&]() -> Process {
    wal = co_await disk.io(faults::Activity::kWalAppend, 100);
    other = co_await disk.io(faults::Activity::kDiskWrite, 100);
  };
  proc();
  engine.run_all();
  EXPECT_FALSE(wal.ok);     // targeted activity fails
  EXPECT_TRUE(other.ok);    // other activities unaffected
}

TEST_F(DiskFixture, DelayFaultStretchesService) {
  faults::FaultSpec spec;
  spec.activity = faults::Activity::kMemtableFlush;
  spec.mode = faults::FaultMode::kDelay;
  spec.delay = ms(100);
  spec.until = sec(10);
  plane.add(spec);

  Disk disk(&engine, &plane, 0, Rng(4));
  IoResult result;
  auto proc = [&]() -> Process {
    result = co_await disk.io(faults::Activity::kMemtableFlush, 1000);
  };
  proc();
  engine.run_all();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.service, 1000 + ms(100));
}

TEST_F(DiskFixture, HogMultipliesServiceTimeOnceSaturated) {
  faults::HogSpec hog;
  hog.host = 0;
  hog.from = 0;
  hog.until = sec(10);
  hog.processes = 4;
  plane.add_hog(hog);

  Disk disk(&engine, &plane, 0, Rng(5));
  IoResult result;
  auto proc = [&]() -> Process {
    result = co_await disk.io(faults::Activity::kDiskRead, 1000);
  };
  proc();
  engine.run_all();
  EXPECT_EQ(result.service, 1600);  // 1 + 0.3 * (4 - 2) = 1.6x
}

TEST_F(DiskFixture, ServiceJitterVariesAroundMedian) {
  Disk disk(&engine, &plane, 0, Rng(6), /*service_sigma=*/0.25);
  std::vector<UsTime> services;
  auto proc = [&]() -> Process {
    for (int i = 0; i < 200; ++i) {
      const auto r = co_await disk.io(faults::Activity::kDiskRead, 1000);
      services.push_back(r.service);
    }
  };
  proc();
  engine.run_all();
  // Jittered: not all equal, median near 1000, all positive.
  std::sort(services.begin(), services.end());
  EXPECT_LT(services.front(), services.back());
  EXPECT_NEAR(static_cast<double>(services[100]), 1000.0, 150.0);
  EXPECT_GT(services.front(), 0);
}

TEST_F(DiskFixture, NetworkTransferLatency) {
  Network net(&engine, &plane, Rng(6), ms(1));
  IoResult result;
  auto proc = [&]() -> Process { result = co_await net.transfer(0, 250); };
  proc();
  engine.run_all();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.service, ms(1) + 250);
}

TEST(Gate, OpenGateDoesNotBlock) {
  Engine engine;
  Gate gate(&engine, true);
  bool passed = false;
  auto proc = [&]() -> Process {
    co_await gate.wait();
    passed = true;
  };
  proc();
  EXPECT_TRUE(passed);
}

TEST(Gate, ClosedGateBlocksUntilOpened) {
  Engine engine;
  Gate gate(&engine, false);
  std::vector<UsTime> passed;
  auto proc = [&]() -> Process {
    co_await gate.wait();
    passed.push_back(engine.now());
  };
  proc();
  proc();
  EXPECT_EQ(gate.waiting(), 2u);
  engine.schedule_at(500, [&] { gate.open(); });
  engine.run_all();
  EXPECT_EQ(passed, (std::vector<UsTime>{500, 500}));
  EXPECT_TRUE(gate.is_open());
}

TEST(Gate, CloseReArmsTheGate) {
  Engine engine;
  Gate gate(&engine, true);
  gate.close();
  bool passed = false;
  auto proc = [&]() -> Process {
    co_await gate.wait();
    passed = true;
  };
  proc();
  EXPECT_FALSE(passed);
  gate.open();
  engine.run_all();
  EXPECT_TRUE(passed);
}

}  // namespace
}  // namespace saad::sim
