#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.h"

namespace saad::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
  EXPECT_TRUE(engine.idle());
}

TEST(Engine, EventsRunInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(300, [&] { order.push_back(3); });
  engine.schedule_at(100, [&] { order.push_back(1); });
  engine.schedule_at(200, [&] { order.push_back(2); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.events_processed(), 3u);
}

TEST(Engine, TiesBreakByScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(100, [&] { order.push_back(1); });
  engine.schedule_at(100, [&] { order.push_back(2); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, RunUntilStopsAndAdvancesClock) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(100, [&] { fired++; });
  engine.schedule_at(500, [&] { fired++; });
  engine.run_until(250);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), 250);
  engine.run_until(1000);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), 1000);
}

TEST(Engine, ClockMatchesEventTimeDuringExecution) {
  Engine engine;
  UsTime seen = -1;
  engine.schedule_at(12345, [&] { seen = engine.now(); });
  engine.run_all();
  EXPECT_EQ(seen, 12345);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine engine;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) engine.schedule_in(10, chain);
  };
  engine.schedule_at(0, chain);
  engine.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(engine.now(), 40);
}

TEST(Engine, ProcessDelayResumesAtRightTime) {
  Engine engine;
  std::vector<UsTime> stamps;
  auto proc = [&]() -> Process {
    stamps.push_back(engine.now());
    co_await engine.delay(100);
    stamps.push_back(engine.now());
    co_await engine.delay(250);
    stamps.push_back(engine.now());
  };
  proc();
  engine.run_all();
  EXPECT_EQ(stamps, (std::vector<UsTime>{0, 100, 350}));
}

TEST(Engine, ZeroDelayDoesNotSuspend) {
  Engine engine;
  bool done = false;
  auto proc = [&]() -> Process {
    co_await engine.delay(0);
    done = true;
  };
  proc();
  // delay(0) is ready immediately: the process completed synchronously.
  EXPECT_TRUE(done);
}

TEST(Engine, TaskComposesWithProcess) {
  Engine engine;
  std::vector<int> order;
  auto child = [&](int v) -> Task<int> {
    co_await engine.delay(50);
    co_return v * 2;
  };
  auto parent = [&]() -> Process {
    order.push_back(1);
    const int r = co_await child(21);
    order.push_back(r);
  };
  parent();
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 42}));
  EXPECT_EQ(engine.now(), 50);
}

TEST(Engine, NestedTasksChainCorrectly) {
  Engine engine;
  auto inner = [&]() -> Task<int> {
    co_await engine.delay(10);
    co_return 7;
  };
  auto middle = [&]() -> Task<int> {
    const int a = co_await inner();
    co_await engine.delay(10);
    co_return a + 1;
  };
  int result = 0;
  auto outer = [&]() -> Process { result = co_await middle(); };
  outer();
  engine.run_all();
  EXPECT_EQ(result, 8);
  EXPECT_EQ(engine.now(), 20);
}

TEST(Engine, ManyConcurrentProcessesInterleaveDeterministically) {
  Engine engine;
  std::vector<int> order;
  auto proc = [&](int id, UsTime dt) -> Process {
    co_await engine.delay(dt);
    order.push_back(id);
  };
  proc(1, 30);
  proc(2, 10);
  proc(3, 20);
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(Engine, VoidTask) {
  Engine engine;
  bool ran = false;
  auto child = [&]() -> Task<void> {
    co_await engine.delay(5);
    ran = true;
  };
  auto parent = [&]() -> Process { co_await child(); };
  parent();
  engine.run_all();
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace saad::sim
