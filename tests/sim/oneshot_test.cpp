#include "sim/oneshot.h"

#include <gtest/gtest.h>

namespace saad::sim {
namespace {

TEST(OneShot, FulfilledBeforeWaitIsImmediatelyReady) {
  Engine engine;
  auto shot = OneShot::create(&engine);
  shot->fulfill();
  bool result = false;
  bool done = false;
  auto proc = [&]() -> Process {
    result = co_await shot->wait(ms(10));
    done = true;
  };
  proc();
  EXPECT_TRUE(done);  // completed synchronously
  EXPECT_TRUE(result);
}

TEST(OneShot, FulfillWakesWaiterAtFulfillTime) {
  Engine engine;
  auto shot = OneShot::create(&engine);
  bool result = false;
  UsTime woke_at = -1;
  auto proc = [&]() -> Process {
    result = co_await shot->wait(sec(10));
    woke_at = engine.now();
  };
  proc();
  engine.schedule_at(ms(7), [&] { shot->fulfill(); });
  engine.run_all();
  EXPECT_TRUE(result);
  EXPECT_EQ(woke_at, ms(7));
}

TEST(OneShot, TimeoutDeliversFalse) {
  Engine engine;
  auto shot = OneShot::create(&engine);
  bool result = true;
  UsTime woke_at = -1;
  auto proc = [&]() -> Process {
    result = co_await shot->wait(ms(50));
    woke_at = engine.now();
  };
  proc();
  engine.run_all();
  EXPECT_FALSE(result);
  EXPECT_EQ(woke_at, ms(50));
}

TEST(OneShot, LateFulfillAfterTimeoutIsHarmless) {
  Engine engine;
  auto shot = OneShot::create(&engine);
  bool result = true;
  auto proc = [&]() -> Process { result = co_await shot->wait(ms(10)); };
  proc();
  engine.schedule_at(ms(100), [&] { shot->fulfill(); });
  engine.run_all();
  EXPECT_FALSE(result);  // timed out first; the late fulfill is a no-op
  EXPECT_TRUE(shot->fulfilled());
}

TEST(OneShot, FulfillIsIdempotent) {
  Engine engine;
  auto shot = OneShot::create(&engine);
  int wakeups = 0;
  bool result = false;
  auto proc = [&]() -> Process {
    result = co_await shot->wait(sec(1));
    wakeups++;
  };
  proc();
  engine.schedule_at(ms(1), [&] {
    shot->fulfill();
    shot->fulfill();
    shot->fulfill();
  });
  engine.run_all();
  EXPECT_EQ(wakeups, 1);
  EXPECT_TRUE(result);
}

TEST(OneShot, StateOutlivesTimedOutWaiter) {
  // The timeout event holds a shared_ptr: dropping the caller's reference
  // right after waiting must not leave the scheduled event dangling.
  Engine engine;
  {
    auto shot = OneShot::create(&engine);
    auto proc = [&]() -> Process { (void)co_await shot->wait(ms(5)); };
    proc();
  }  // caller's reference gone; the engine still holds the timeout closure
  engine.run_all();  // must not crash
}

TEST(OneShot, ZeroFulfillNoWaiterStaysFulfilled) {
  Engine engine;
  auto shot = OneShot::create(&engine);
  EXPECT_FALSE(shot->fulfilled());
  shot->fulfill();
  EXPECT_TRUE(shot->fulfilled());
}

}  // namespace
}  // namespace saad::sim
