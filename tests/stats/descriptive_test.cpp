#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace saad::stats {
namespace {

TEST(Welford, EmptyIsZero) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.mean(), 0.0);
  EXPECT_EQ(w.variance(), 0.0);
}

TEST(Welford, MeanAndVarianceMatchDefinition) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Welford, SingleSampleVarianceZero) {
  Welford w;
  w.add(3.0);
  EXPECT_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
}

TEST(Welford, MergeEqualsCombinedStream) {
  Welford a, b, combined;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37;
    const double y = 50 - i * 0.11;
    a.add(x);
    b.add(y);
    combined.add(x);
    combined.add(y);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
}

TEST(Welford, MergeWithEmptyIsIdentity) {
  Welford a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

// An empty sample has no percentile: the NaN sentinel forces callers to
// decide (model.cpp checks isfinite before trusting a threshold), where the
// old silent 0.0 made every real duration look like an outlier.
TEST(Percentile, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(percentile({}, 0.5)));
  EXPECT_TRUE(std::isnan(percentile({}, 0.0)));
  EXPECT_TRUE(std::isnan(percentile({}, 1.0)));
}

TEST(Percentile, SingleElementIsThatElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 1.0), 42.0);
}

TEST(Percentile, NonEmptyNeverNaN) {
  const std::vector<double> v = {3.5, 1.25, 2.0, 9.75};
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0})
    EXPECT_TRUE(std::isfinite(percentile(v, q))) << "q=" << q;
}

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  // Sorted {10, 20}: q=0.5 -> midpoint.
  EXPECT_DOUBLE_EQ(percentile({20, 10}, 0.5), 15.0);
}

TEST(Percentile, ExtremesAreMinMax) {
  std::vector<double> v = {5, 9, 1, 7};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, ClampsOutOfRangeQ) {
  std::vector<double> v = {1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 3.0);
}

TEST(PercentileSorted, P99OfUniformRange) {
  std::vector<double> v(1000);
  for (int i = 0; i < 1000; ++i) v[i] = i + 1;  // 1..1000 sorted
  EXPECT_NEAR(percentile_sorted(v, 0.99), 990.01, 0.5);
}

TEST(PercentileSorted, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(percentile_sorted({}, 0.99)));
}

TEST(PercentileSorted, SingleElementIsThatElement) {
  EXPECT_DOUBLE_EQ(percentile_sorted({7.0}, 0.99), 7.0);
}

}  // namespace
}  // namespace saad::stats
