#include "stats/kfold.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace saad::stats {
namespace {

TEST(KFoldIndices, PartitionsAllIndicesExactlyOnce) {
  const auto folds = kfold_indices(103, 5);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<bool> seen(103, false);
  for (const auto& fold : folds) {
    for (auto idx : fold) {
      ASSERT_LT(idx, 103u);
      ASSERT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(KFoldIndices, FoldsAreBalanced) {
  const auto folds = kfold_indices(100, 5);
  for (const auto& fold : folds) EXPECT_EQ(fold.size(), 20u);
}

TEST(KFoldIndices, ZeroSamples) {
  const auto folds = kfold_indices(0, 3);
  ASSERT_EQ(folds.size(), 3u);
  for (const auto& fold : folds) EXPECT_TRUE(fold.empty());
}

TEST(KFoldStability, TightDistributionIsStable) {
  // Lognormal with small sigma: p99 threshold generalizes across folds.
  saad::Rng rng(1);
  std::vector<double> samples(5000);
  for (auto& s : samples) s = rng.lognormal_median(10000, 0.2);
  const auto result = kfold_quantile_stability(samples, 5, 0.99, 2.0);
  EXPECT_TRUE(result.stable);
  EXPECT_NEAR(result.mean_heldout_outlier_rate, 0.01, 0.01);
}

TEST(KFoldStability, NonstationaryRegimeShiftIsUnstable) {
  // The duration distribution changes partway through the training trace
  // (e.g. a load regime): a threshold trained on the early blocks wildly
  // misclassifies the late block. No single p99 is meaningful for this flow.
  saad::Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 800; ++i) samples.push_back(rng.uniform(1, 2));
  for (int i = 0; i < 200; ++i) samples.push_back(rng.uniform(100, 1000));
  const auto result = kfold_quantile_stability(samples, 5, 0.99, 2.0);
  EXPECT_FALSE(result.stable);
  EXPECT_GT(result.mean_heldout_outlier_rate, 0.02);
}

TEST(KFoldStability, StationaryHeavyTailRemainsStable) {
  // I.i.d. samples, even with a heavy tail, generalize: the held-out
  // outlier rate stays near the nominal 1%.
  saad::Rng rng(21);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(rng.chance(0.15) ? rng.uniform(100, 1000)
                                       : rng.uniform(1, 2));
  }
  const auto result = kfold_quantile_stability(samples, 5, 0.99, 2.0);
  EXPECT_TRUE(result.stable);
}

TEST(KFoldIndices, BlocksAreContiguousAndOrdered) {
  const auto folds = kfold_indices(10, 3);
  ASSERT_EQ(folds.size(), 3u);
  std::size_t expected = 0;
  for (const auto& fold : folds) {
    for (auto idx : fold) EXPECT_EQ(idx, expected++);
  }
  EXPECT_EQ(expected, 10u);
}

TEST(KFoldStability, TooFewSamplesReportedUnstable) {
  const std::vector<double> tiny = {1, 2, 3};
  const auto result = kfold_quantile_stability(tiny, 5, 0.99, 2.0);
  EXPECT_FALSE(result.stable);
}

TEST(KFoldStability, KBelowTwoReportedUnstable) {
  const std::vector<double> samples(100, 1.0);
  const auto result = kfold_quantile_stability(samples, 1, 0.99, 2.0);
  EXPECT_FALSE(result.stable);
}

TEST(KFoldStability, ConstantSamplesAreStable) {
  // All durations identical: nothing exceeds the threshold, perfectly stable.
  const std::vector<double> samples(500, 42.0);
  const auto result = kfold_quantile_stability(samples, 5, 0.99, 2.0);
  EXPECT_TRUE(result.stable);
  EXPECT_EQ(result.mean_heldout_outlier_rate, 0.0);
}

class UnstableFactorSweep : public ::testing::TestWithParam<double> {};

TEST_P(UnstableFactorSweep, HigherFactorIsMorePermissive) {
  saad::Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(rng.lognormal_median(100, 1.2));
  const auto strict = kfold_quantile_stability(samples, 5, 0.99, 0.1);
  const auto at_param = kfold_quantile_stability(samples, 5, 0.99, GetParam());
  // The held-out rate is identical; only the verdict changes with the factor.
  EXPECT_DOUBLE_EQ(strict.mean_heldout_outlier_rate,
                   at_param.mean_heldout_outlier_rate);
  if (strict.stable) {
    EXPECT_TRUE(at_param.stable);
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, UnstableFactorSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace saad::stats
