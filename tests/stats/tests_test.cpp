#include "stats/tests.h"

#include <gtest/gtest.h>

namespace saad::stats {
namespace {

TEST(ProportionAbove, ZeroTrialsNeverRejects) {
  const auto r = proportion_above(0, 0, 0.01);
  EXPECT_FALSE(r.reject);
  EXPECT_EQ(r.p_value, 1.0);
}

TEST(ProportionAbove, ProportionBelowBaselineNeverRejects) {
  // 1% observed vs 5% baseline: cannot reject "p <= p0".
  const auto r = proportion_above(10, 1000, 0.05);
  EXPECT_FALSE(r.reject);
}

TEST(ProportionAbove, LargeExcessRejects) {
  // 30% observed vs 1% baseline with n=1000: decisive.
  const auto r = proportion_above(300, 1000, 0.01);
  EXPECT_TRUE(r.reject);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(ProportionAbove, SmallExcessWithSmallNDoesNotReject) {
  // 2/100 vs 1%: not significant at alpha=0.001.
  const auto r = proportion_above(2, 100, 0.01);
  EXPECT_FALSE(r.reject);
}

TEST(ProportionAbove, TinyWindowFallsBackToExactBinomial) {
  // n < min_n: exact binomial path. 3 of 5 outliers vs 1% baseline:
  // P(X>=3 | n=5, p=.01) ~ 9.8e-6 < 0.001 -> reject.
  const auto r = proportion_above(3, 5, 0.01);
  EXPECT_TRUE(r.reject);
  // But 1 of 5 is plausible under 1%: P(X>=1) ~ 4.9% -> no rejection.
  const auto r2 = proportion_above(1, 5, 0.01);
  EXPECT_FALSE(r2.reject);
}

TEST(ProportionAbove, AllOutliersUsesExactPath) {
  // phat == 1 would give zero standard error; must not blow up.
  const auto r = proportion_above(50, 50, 0.01);
  EXPECT_TRUE(r.reject);
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(ProportionAbove, ZeroBaselineAnyOutlierSignificantWithEnoughN) {
  // p0 = 0: any outlier count has binomial tail 0 under H0 -> reject.
  const auto r = proportion_above(1, 100, 0.0);
  EXPECT_TRUE(r.reject);
}

TEST(ProportionAbove, TTestVsZTestAgreeForLargeN) {
  const auto t = proportion_above(60, 2000, 0.01, kDefaultAlpha,
                                  ProportionTestKind::kTTest);
  const auto z = proportion_above(60, 2000, 0.01, kDefaultAlpha,
                                  ProportionTestKind::kZTest);
  EXPECT_EQ(t.reject, z.reject);
  EXPECT_NEAR(t.p_value, z.p_value, 1e-4);
}

TEST(ProportionAbove, ExactBinomialKindForcesExactPath) {
  const auto r = proportion_above(30, 1000, 0.01, kDefaultAlpha,
                                  ProportionTestKind::kExactBinomial);
  EXPECT_TRUE(r.reject);
}

TEST(ProportionAbove, AlphaControlsDecision) {
  // Borderline case: p-value between 1e-3 and 1e-1.
  const auto strict = proportion_above(20, 1000, 0.01, 1e-6);
  const auto loose = proportion_above(20, 1000, 0.01, 0.05);
  EXPECT_FALSE(strict.reject);
  EXPECT_TRUE(loose.reject);
}

class ProportionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProportionSweep, MonotoneInOutlierCount) {
  // p-value must not increase as the outlier count grows (fixed n, p0).
  const std::uint64_t n = GetParam();
  double prev = 1.0;
  for (std::uint64_t k = n / 100 + 1; k <= n / 4; k += n / 100 + 1) {
    const auto r = proportion_above(k, n, 0.01);
    EXPECT_LE(r.p_value, prev + 1e-12) << "n=" << n << " k=" << k;
    prev = r.p_value;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ProportionSweep,
                         ::testing::Values(100, 500, 2000, 10000));

}  // namespace
}  // namespace saad::stats
