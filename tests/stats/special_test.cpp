#include "stats/special.h"

#include <gtest/gtest.h>

#include <cmath>

namespace saad::stats {
namespace {

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2, 3, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetricCaseAtHalf) {
  // I_0.5(a, a) = 0.5 by symmetry.
  for (double a : {0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(incomplete_beta(a, a, 0.5), 0.5, 1e-10) << "a=" << a;
  }
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1,1) = x.
  for (double x : {0.1, 0.25, 0.7, 0.99}) {
    EXPECT_NEAR(incomplete_beta(1, 1, x), x, 1e-12);
  }
}

TEST(IncompleteBeta, KnownValue) {
  // I_x(2,2) = x^2 (3 - 2x).
  const double x = 0.3;
  EXPECT_NEAR(incomplete_beta(2, 2, x), x * x * (3 - 2 * x), 1e-10);
}

TEST(StudentT, CdfAtZeroIsHalf) {
  for (double df : {1.0, 5.0, 30.0, 200.0}) {
    EXPECT_NEAR(student_t_cdf(0.0, df), 0.5, 1e-12);
  }
}

TEST(StudentT, SymmetricTails) {
  const double p_hi = student_t_cdf(2.0, 10);
  const double p_lo = student_t_cdf(-2.0, 10);
  EXPECT_NEAR(p_hi + p_lo, 1.0, 1e-12);
}

TEST(StudentT, KnownQuantiles) {
  // Classic t-table values: P(T <= 1.812) = 0.95 for df=10;
  // P(T <= 2.764) = 0.99 for df=10.
  EXPECT_NEAR(student_t_cdf(1.812, 10), 0.95, 1e-3);
  EXPECT_NEAR(student_t_cdf(2.764, 10), 0.99, 1e-3);
  // df=1 (Cauchy): P(T <= 1) = 0.75.
  EXPECT_NEAR(student_t_cdf(1.0, 1), 0.75, 1e-10);
}

TEST(StudentT, ConvergesToNormalForLargeDf) {
  // Standard normal: P(Z <= 1.96) ~ 0.975.
  EXPECT_NEAR(student_t_cdf(1.96, 1e6), 0.975, 1e-3);
}

TEST(StudentT, InfinityHandled) {
  EXPECT_DOUBLE_EQ(student_t_cdf(INFINITY, 5), 1.0);
  EXPECT_DOUBLE_EQ(student_t_cdf(-INFINITY, 5), 0.0);
}

TEST(BinomialUpperTail, DegenerateCases) {
  EXPECT_DOUBLE_EQ(binomial_upper_tail(0, 10, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(11, 10, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(5, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(5, 10, 1.0), 1.0);
}

TEST(BinomialUpperTail, MatchesHandComputedValues) {
  // P(X >= 1), X ~ Bin(10, 0.1) = 1 - 0.9^10.
  EXPECT_NEAR(binomial_upper_tail(1, 10, 0.1), 1 - std::pow(0.9, 10), 1e-10);
  // P(X >= 10), X ~ Bin(10, 0.5) = 0.5^10.
  EXPECT_NEAR(binomial_upper_tail(10, 10, 0.5), std::pow(0.5, 10), 1e-10);
  // P(X >= 2), X ~ Bin(3, 0.5) = C(3,2)/8 + C(3,3)/8 = 0.5.
  EXPECT_NEAR(binomial_upper_tail(2, 3, 0.5), 0.5, 1e-12);
}

TEST(BinomialUpperTail, NormalApproxForHugeN) {
  // n > 100000 triggers the approximation; compare with the exact value of
  // a symmetric case: P(X >= n/2) ~ 0.5 for p=0.5.
  EXPECT_NEAR(binomial_upper_tail(100001, 200002, 0.5), 0.5, 0.01);
}

}  // namespace
}  // namespace saad::stats
