#include "stats/p2_quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "stats/descriptive.h"

namespace saad::stats {
namespace {

TEST(P2Quantile, EmptyIsZero) {
  P2Quantile p2(0.99);
  EXPECT_EQ(p2.value(), 0.0);
  EXPECT_EQ(p2.count(), 0u);
}

TEST(P2Quantile, TinySamplesAreExactish) {
  P2Quantile median(0.5);
  median.add(3);
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
  median.add(1);
  median.add(2);
  EXPECT_DOUBLE_EQ(median.value(), 2.0);
}

class P2Accuracy : public ::testing::TestWithParam<double> {};

TEST_P(P2Accuracy, TracksLognormalQuantileWithinFivePercent) {
  const double q = GetParam();
  saad::Rng rng(42);
  P2Quantile p2(q);
  std::vector<double> exact;
  exact.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.lognormal_median(10000, 0.3);
    p2.add(x);
    exact.push_back(x);
  }
  const double truth = percentile(std::move(exact), q);
  EXPECT_NEAR(p2.value() / truth, 1.0, 0.05) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2Accuracy,
                         ::testing::Values(0.5, 0.9, 0.95, 0.99));

TEST(P2Quantile, UniformP99) {
  saad::Rng rng(7);
  P2Quantile p2(0.99);
  for (int i = 0; i < 50000; ++i) p2.add(rng.uniform(0, 1000));
  EXPECT_NEAR(p2.value(), 990.0, 15.0);
}

TEST(P2Quantile, SortedInputDoesNotBreakIt) {
  P2Quantile p2(0.9);
  for (int i = 1; i <= 10000; ++i) p2.add(i);
  EXPECT_NEAR(p2.value(), 9000.0, 500.0);
}

TEST(P2Quantile, ConstantStream) {
  P2Quantile p2(0.99);
  for (int i = 0; i < 1000; ++i) p2.add(42.0);
  EXPECT_DOUBLE_EQ(p2.value(), 42.0);
}

TEST(P2Quantile, MemoryIsConstant) {
  // The whole point: five markers, regardless of stream length.
  EXPECT_LE(sizeof(P2Quantile), 200u);
}

}  // namespace
}  // namespace saad::stats
