#include <gtest/gtest.h>

#include "baseline/error_monitor.h"
#include "baseline/log_renderer.h"
#include "baseline/text_miner.h"

namespace saad::baseline {
namespace {

struct BaselineFixture : ::testing::Test {
  core::LogRegistry registry;
  core::StageId stage = core::kInvalidStage;
  core::LogPointId lp_block = 0, lp_packet = 0, lp_close = 0, lp_err = 0;

  void SetUp() override {
    stage = registry.register_stage("DataXceiver");
    lp_block =
        registry.register_log_point(stage, core::Level::kDebug,
                                    "Receiving block blk_%");
    lp_packet = registry.register_log_point(
        stage, core::Level::kDebug, "Receiving one packet for block blk_%");
    lp_close =
        registry.register_log_point(stage, core::Level::kInfo, "Closing down.");
    lp_err = registry.register_log_point(stage, core::Level::kError,
                                         "I/O error on blockfile %");
  }
};

TEST_F(BaselineFixture, RenderLineHasTimestampLevelStageAndText) {
  const std::string line =
      render_line(registry, lp_block, minutes(90) + ms(123),
                  "Receiving block blk_42");
  EXPECT_NE(line.find("2014-12-08 01:30:00,123"), std::string::npos);
  EXPECT_NE(line.find("DEBUG"), std::string::npos);
  EXPECT_NE(line.find("DataXceiver:"), std::string::npos);
  EXPECT_NE(line.find("Receiving block blk_42"), std::string::npos);
}

TEST_F(BaselineFixture, RenderLineFallsBackToTemplate) {
  const std::string line = render_line(registry, lp_close, 0, {});
  EXPECT_NE(line.find("Closing down."), std::string::npos);
}

TEST_F(BaselineFixture, RenderingSinkForwardsFullLines) {
  ManualClock clock(sec(5));
  core::MemorySink memory;
  RenderingSink sink(&registry, &clock, &memory);
  sink.write(core::Level::kDebug, lp_block, "Receiving block blk_7");
  ASSERT_EQ(memory.lines().size(), 1u);
  EXPECT_NE(memory.lines()[0].text.find("blk_7"), std::string::npos);
  EXPECT_NE(memory.lines()[0].text.find("2014-12-08"), std::string::npos);
}

TEST_F(BaselineFixture, TextMinerMatchesRenderedLines) {
  TextMiner miner(registry);
  EXPECT_EQ(miner.num_templates(), registry.num_log_points());

  const std::string line =
      render_line(registry, lp_packet, ms(10),
                  "Receiving one packet for block blk_99");
  EXPECT_EQ(miner.match(line), lp_packet);
}

TEST_F(BaselineFixture, TextMinerMatchesTemplateWithoutArguments) {
  TextMiner miner(registry);
  const std::string line = render_line(registry, lp_close, ms(10), {});
  EXPECT_EQ(miner.match(line), lp_close);
}

TEST_F(BaselineFixture, TextMinerRejectsGarbage) {
  TextMiner miner(registry);
  EXPECT_EQ(miner.match("completely unrelated text"), core::kInvalidLogPoint);
}

TEST_F(BaselineFixture, MineAggregatesPerTemplateCounts) {
  TextMiner miner(registry);
  std::vector<std::string> corpus;
  for (int i = 0; i < 5; ++i)
    corpus.push_back(render_line(registry, lp_block, ms(i),
                                 "Receiving block blk_" + std::to_string(i)));
  for (int i = 0; i < 3; ++i)
    corpus.push_back(render_line(registry, lp_close, ms(i), {}));
  corpus.push_back("junk line");

  const auto counts = miner.mine(corpus);
  EXPECT_EQ(counts[lp_block], 5u);
  EXPECT_EQ(counts[lp_close], 3u);
  EXPECT_EQ(counts.back(), 1u);  // unmatched bucket
}

TEST_F(BaselineFixture, ErrorMonitorAlertsOnErrorsOnly) {
  ManualClock clock;
  core::NullSink null;
  ErrorLogMonitor monitor(&clock, &null);

  clock.set(minutes(2));
  monitor.write(core::Level::kDebug, lp_block, "fine");
  monitor.write(core::Level::kInfo, lp_close, "also fine");
  EXPECT_EQ(monitor.total_alerts(), 0u);

  clock.set(minutes(3) + sec(10));
  monitor.write(core::Level::kError, lp_err, "I/O error on blockfile 9");
  ASSERT_EQ(monitor.total_alerts(), 1u);
  EXPECT_EQ(monitor.alerts()[0].at, minutes(3) + sec(10));
  EXPECT_EQ(monitor.alerts()[0].point, lp_err);
  EXPECT_EQ(monitor.alerts_per_window().count_in(3), 1u);
}

TEST_F(BaselineFixture, ErrorMonitorConfigurableLevel) {
  ManualClock clock;
  ErrorLogMonitor monitor(&clock, nullptr, core::Level::kWarn);
  const auto lp_warn = registry.register_log_point(
      stage, core::Level::kWarn, "slow operation");
  monitor.write(core::Level::kWarn, lp_warn, "slow operation");
  EXPECT_EQ(monitor.total_alerts(), 1u);
}

TEST_F(BaselineFixture, ErrorMonitorForwardsToInner) {
  ManualClock clock;
  core::CountingSink counting;
  ErrorLogMonitor monitor(&clock, &counting);
  monitor.write(core::Level::kDebug, lp_block, "x");
  monitor.write(core::Level::kError, lp_err, "y");
  EXPECT_EQ(counting.total_messages(), 2u);
}

}  // namespace
}  // namespace saad::baseline
