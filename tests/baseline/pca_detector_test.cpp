#include "baseline/pca_detector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace saad::baseline {
namespace {

/// Training rows living on a 1-D subspace (plus small noise) inside R^4.
std::vector<std::vector<double>> correlated_rows(std::size_t n,
                                                 saad::Rng& rng) {
  std::vector<std::vector<double>> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng.uniform(50, 150);  // the latent "load" factor
    rows.push_back({t + rng.normal(0, 1), 2 * t + rng.normal(0, 1),
                    0.5 * t + rng.normal(0, 1), 3 * t + rng.normal(0, 1)});
  }
  return rows;
}

TEST(PcaDetector, CapturesTheDominantSubspace) {
  saad::Rng rng(1);
  const auto rows = correlated_rows(400, rng);
  const auto detector = PcaDetector::train(rows);
  // One latent factor: one (or very few) components capture 95% variance.
  EXPECT_LE(detector.num_components(), 2u);
  EXPECT_GE(detector.num_components(), 1u);
}

TEST(PcaDetector, NormalRowsPassAnomalousRowsFlag) {
  saad::Rng rng(2);
  const auto rows = correlated_rows(400, rng);
  const auto detector = PcaDetector::train(rows);

  // Fresh rows from the same structure: almost all pass.
  saad::Rng rng2(3);
  int false_alarms = 0;
  const auto fresh = correlated_rows(200, rng2);
  for (const auto& row : fresh)
    if (detector.anomalous(row)) false_alarms++;
  EXPECT_LE(false_alarms, 6);

  // A row that breaks the correlation structure (same magnitudes!) flags.
  const std::vector<double> broken = {100, 50, 100, 20};
  EXPECT_TRUE(detector.anomalous(broken));
  EXPECT_GT(detector.spe(broken), detector.threshold());
}

TEST(PcaDetector, ScalingAlongTheSubspaceIsNotAnomalous) {
  // The key property (and blind spot) of subspace methods: changes *along*
  // the normal correlation directions — e.g. uniform load growth — do not
  // raise the residual.
  saad::Rng rng(4);
  const auto detector = PcaDetector::train(correlated_rows(400, rng));
  const std::vector<double> scaled = {300, 600, 150, 900};  // 3x typical load
  EXPECT_FALSE(detector.anomalous(scaled));
}

TEST(PcaDetector, ConstantColumnsAreHandled) {
  std::vector<std::vector<double>> rows(100, std::vector<double>{5, 0, 1});
  const auto detector = PcaDetector::train(rows);
  EXPECT_FALSE(detector.anomalous({5, 0, 1}));
  EXPECT_TRUE(detector.anomalous({5, 10, 1}));
}

TEST(PcaDetector, DeterministicTraining) {
  saad::Rng rng_a(7), rng_b(7);
  const auto a = PcaDetector::train(correlated_rows(200, rng_a));
  const auto b = PcaDetector::train(correlated_rows(200, rng_b));
  EXPECT_DOUBLE_EQ(a.threshold(), b.threshold());
  EXPECT_EQ(a.num_components(), b.num_components());
}

TEST(CountMatrix, BucketsSynopsesByWindowAndPoint) {
  std::vector<core::Synopsis> trace(3);
  trace[0].start = sec(5);
  trace[0].log_points = {{1, 2}, {3, 1}};
  trace[1].start = sec(8);
  trace[1].log_points = {{1, 1}};
  trace[2].start = sec(65);
  trace[2].log_points = {{2, 4}};

  const auto matrix = count_matrix(trace, /*num_points=*/4, minutes(1));
  ASSERT_EQ(matrix.size(), 2u);
  EXPECT_DOUBLE_EQ(matrix[0][1], 3.0);  // 2 + 1
  EXPECT_DOUBLE_EQ(matrix[0][3], 1.0);
  EXPECT_DOUBLE_EQ(matrix[1][2], 4.0);
  EXPECT_DOUBLE_EQ(matrix[1][0], 0.0);
}

TEST(CountMatrix, IgnoresOutOfRangePoints) {
  std::vector<core::Synopsis> trace(1);
  trace[0].start = 0;
  trace[0].log_points = {{100, 5}};
  const auto matrix = count_matrix(trace, /*num_points=*/4, minutes(1));
  ASSERT_EQ(matrix.size(), 1u);
  for (double v : matrix[0]) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace saad::baseline
