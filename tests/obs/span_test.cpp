#include "obs/span.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "json_checker.h"

namespace saad::obs {
namespace {

// A scripted clock: each call advances by a fixed step, so every timestamp a
// tracer records is a pure function of how many stamps preceded it. Two
// tracers driven through the same hook sequence therefore produce
// byte-identical exports — the determinism property the admin plane's
// /spans endpoint relies on for reproducible acceptance runs.
SpanTracer::Options scripted(std::uint64_t sample_every, std::uint64_t seed,
                             std::int64_t* time, std::int64_t step = 10) {
  SpanTracer::Options options;
  options.sample_every = sample_every;
  options.seed = seed;
  options.clock = [time, step] { return *time += step; };
  return options;
}

// Drives one batch through every hop. `cumulative` is the shared
// published-synopsis position both producer and consumer sides count in.
std::uint64_t drive_batch(SpanTracer& tracer, std::uint64_t synopses,
                          std::uint64_t& cumulative) {
  const std::uint64_t token = tracer.on_batch_decoded(synopses);
  cumulative += synopses;
  tracer.on_published(token, cumulative);
  tracer.on_dequeued(cumulative);
  tracer.on_assigned(cumulative);
  tracer.on_window_close(cumulative);
  tracer.on_verdict_emit(cumulative);
  return token;
}

TEST(SpanTracer, DisabledHooksAreNoOps) {
  SpanTracer tracer;
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.on_batch_decoded(16), 0u);
  tracer.on_published(1, 16);
  tracer.on_dequeued(16);
  tracer.on_verdict_emit(16);
  EXPECT_EQ(tracer.batches(), 0u);
  EXPECT_EQ(tracer.sampled(), 0u);
  EXPECT_TRUE(tracer.completed().empty());
}

TEST(SpanTracer, SamplingIsDeterministicInSeedAndRate) {
  std::int64_t time = 0;
  SpanTracer tracer;
  tracer.enable(scripted(4, 1, &time));
  std::vector<std::uint64_t> sampled_batches;
  for (std::uint64_t i = 0; i < 12; ++i) {
    if (tracer.on_batch_decoded(8) != 0) sampled_batches.push_back(i);
  }
  // batch i sampled iff i % 4 == 1 % 4.
  EXPECT_EQ(sampled_batches, (std::vector<std::uint64_t>{1, 5, 9}));
  EXPECT_EQ(tracer.batches(), 12u);
  EXPECT_EQ(tracer.sampled(), 3u);
}

TEST(SpanTracer, FullLifecycleStampsEveryHopInOrder) {
  std::int64_t time = 0;
  SpanTracer tracer;
  tracer.enable(scripted(1, 0, &time));
  std::uint64_t cumulative = 0;
  const std::uint64_t token = drive_batch(tracer, 32, cumulative);
  EXPECT_NE(token, 0u);

  const auto spans = tracer.completed();
  ASSERT_EQ(spans.size(), 1u);
  const PipelineSpan& span = spans[0];
  EXPECT_EQ(span.id, token);
  EXPECT_EQ(span.batch_index, 0u);
  EXPECT_EQ(span.synopses, 32u);
  EXPECT_EQ(span.position, 32u);
  for (std::size_t h = 0; h < kSpanHops; ++h) {
    EXPECT_GT(span.ts_us[h], 0) << to_string(static_cast<SpanHop>(h));
    if (h > 0) {
      EXPECT_GT(span.ts_us[h], span.ts_us[h - 1])
          << to_string(static_cast<SpanHop>(h));
    }
  }
  EXPECT_EQ(tracer.completed_count(), 1u);
  EXPECT_EQ(tracer.abandoned(), 0u);
}

TEST(SpanTracer, ConsumerHooksWaitForPublishPosition) {
  std::int64_t time = 0;
  SpanTracer tracer;
  tracer.enable(scripted(1, 0, &time));

  const std::uint64_t token = tracer.on_batch_decoded(10);
  ASSERT_NE(token, 0u);
  // Consumer progress before the batch is published must not stamp it...
  tracer.on_dequeued(100);
  tracer.on_assigned(100);
  tracer.on_published(token, 10);
  // ...nor does progress short of the publish position.
  tracer.on_dequeued(9);
  tracer.on_verdict_emit(9);
  EXPECT_TRUE(tracer.completed().empty());

  // Hops stamp strictly in order: verdict-emit can't fire before the
  // intermediate hops even when the position is reached.
  tracer.on_verdict_emit(10);
  EXPECT_TRUE(tracer.completed().empty());
  tracer.on_dequeued(10);
  tracer.on_assigned(10);
  tracer.on_window_close(10);
  tracer.on_verdict_emit(10);
  ASSERT_EQ(tracer.completed().size(), 1u);
}

TEST(SpanTracer, ShedBatchIsAbandoned) {
  std::int64_t time = 0;
  SpanTracer tracer;
  tracer.enable(scripted(1, 0, &time));
  const std::uint64_t token = tracer.on_batch_decoded(5);
  ASSERT_NE(token, 0u);
  tracer.on_shed(token);
  EXPECT_EQ(tracer.abandoned(), 1u);
  // The span is gone: later consumer progress can't resurrect it.
  tracer.on_published(token, 5);
  tracer.on_dequeued(5);
  tracer.on_assigned(5);
  tracer.on_window_close(5);
  tracer.on_verdict_emit(5);
  EXPECT_TRUE(tracer.completed().empty());
  EXPECT_EQ(tracer.completed_count(), 0u);
}

TEST(SpanTracer, OpenBoundAbandonsOldest) {
  std::int64_t time = 0;
  SpanTracer tracer;
  SpanTracer::Options options = scripted(1, 0, &time);
  options.max_open = 2;
  tracer.enable(options);
  const std::uint64_t first = tracer.on_batch_decoded(1);
  tracer.on_batch_decoded(1);
  tracer.on_batch_decoded(1);  // evicts `first`
  EXPECT_EQ(tracer.sampled(), 3u);
  EXPECT_EQ(tracer.abandoned(), 1u);
  tracer.on_published(first, 1);  // no-op: the span is gone
  EXPECT_TRUE(tracer.completed().empty());
}

TEST(SpanTracer, RingEvictsOldestAndExportsOldestFirst) {
  std::int64_t time = 0;
  SpanTracer tracer;
  SpanTracer::Options options = scripted(1, 0, &time);
  options.ring_capacity = 2;
  tracer.enable(options);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < 5; ++i) drive_batch(tracer, 4, cumulative);
  EXPECT_EQ(tracer.completed_count(), 5u);
  const auto spans = tracer.completed();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].batch_index, 3u);  // oldest retained
  EXPECT_EQ(spans[1].batch_index, 4u);
  EXPECT_LT(spans[0].ts_us[0], spans[1].ts_us[0]);
}

TEST(SpanTracer, ChromeTraceIsValidJsonWithEveryHop) {
  std::int64_t time = 0;
  SpanTracer tracer;
  tracer.enable(scripted(1, 0, &time));
  std::uint64_t cumulative = 0;
  drive_batch(tracer, 16, cumulative);
  const std::string json = tracer.chrome_trace_json();
  EXPECT_TRUE(saad::testing::JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  for (std::size_t h = 0; h < kSpanHops; ++h) {
    const std::string name =
        std::string("\"name\":\"") + to_string(static_cast<SpanHop>(h)) + "\"";
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

TEST(SpanTracer, EmptyTraceIsStillValidJson) {
  SpanTracer tracer;
  const std::string json = tracer.chrome_trace_json();
  EXPECT_TRUE(saad::testing::JsonChecker(json).valid()) << json;
}

// The property the admin-plane acceptance test leans on: same seed + sample
// rate + clock script => byte-identical Chrome trace JSON, regardless of
// when the export is taken or how many unsampled batches interleave.
TEST(SpanTracer, SameSeedAndRateExportByteIdenticalTraces) {
  const auto run = [] {
    std::int64_t time = 0;
    SpanTracer tracer;
    tracer.enable(scripted(3, 2, &time, 7));
    std::uint64_t cumulative = 0;
    for (int i = 0; i < 20; ++i) drive_batch(tracer, 8, cumulative);
    return tracer.chrome_trace_json();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  // A different seed picks different batches: the export must differ.
  std::int64_t time = 0;
  SpanTracer other;
  other.enable(scripted(3, 0, &time, 7));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < 20; ++i) drive_batch(other, 8, cumulative);
  EXPECT_NE(first, other.chrome_trace_json());
}

TEST(SpanTracer, EnableResetsStateAndDisableDropsOpenSpans) {
  std::int64_t time = 0;
  SpanTracer tracer;
  tracer.enable(scripted(1, 0, &time));
  std::uint64_t cumulative = 0;
  drive_batch(tracer, 4, cumulative);
  tracer.on_batch_decoded(4);  // left open
  tracer.disable();
  EXPECT_FALSE(tracer.enabled());

  tracer.enable(scripted(1, 0, &time));
  EXPECT_EQ(tracer.batches(), 0u);
  EXPECT_EQ(tracer.sampled(), 0u);
  EXPECT_TRUE(tracer.completed().empty());
}

}  // namespace
}  // namespace saad::obs
