// saad_json_check — exits 0 iff stdin is exactly one well-formed JSON value.
// A thin CLI over the strict checker the unit tests share (json_checker.h),
// so shell acceptance tests can assert that /statusz and /spans responses
// are RFC 8259-conformant without a JSON library:
//
//   curl_like http://127.0.0.1:$port/statusz | saad_json_check
#include <cstdio>
#include <string>

#include "json_checker.h"

int main() {
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, stdin)) > 0) text.append(buf, n);
  if (std::ferror(stdin)) {
    std::fprintf(stderr, "saad_json_check: read error on stdin\n");
    return 2;
  }
  if (text.empty()) {
    std::fprintf(stderr, "saad_json_check: empty input\n");
    return 1;
  }
  if (!saad::testing::JsonChecker(text).valid()) {
    std::fprintf(stderr,
                 "saad_json_check: input is not well-formed JSON (%zu bytes)\n",
                 text.size());
    return 1;
  }
  return 0;
}
