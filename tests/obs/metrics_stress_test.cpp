// Concurrency stress for the self-telemetry registry, meant for the tsan
// preset (labeled "stress" in CMake): writer threads hammer counters,
// gauges, and histograms while a scraper thread snapshots and renders
// concurrently. Totals must be exact once the writers join — relaxed
// ordering may tear a mid-run scrape but never lose an increment.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace saad::obs {
namespace {

TEST(MetricsStress, ConcurrentWritersExactTotals) {
  if (!kMetricsEnabled)
    GTEST_SKIP() << "mutations compiled out (SAAD_METRICS=OFF)";
  MetricsRegistry registry;
  Counter& counter = registry.counter("saad_stress_ops_total", "ops");
  Gauge& gauge = registry.gauge("saad_stress_depth", "depth");
  Histogram& histogram =
      registry.histogram("saad_stress_us", "us", latency_bounds_us());

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 50'000;
  std::atomic<bool> stop_scraping{false};

  // Scraper runs concurrently with the writers: snapshots must stay
  // internally consistent (no crash, bucket sums <= running totals) and the
  // renderers must never produce torn structures.
  std::thread scraper([&] {
    while (!stop_scraping.load(std::memory_order_acquire)) {
      const auto families = registry.snapshot();
      ASSERT_EQ(families.size(), 3u);
      const std::string text = render_prometheus(registry);
      ASSERT_NE(text.find("saad_stress_ops_total"), std::string::npos);
      (void)render_json(registry);
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        counter.inc();
        if ((i & 1) == 0)
          gauge.add(1);
        else
          gauge.sub(1);
        histogram.observe(static_cast<std::int64_t>((t * 1000 + i) % 100000));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop_scraping.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(counter.value(), kThreads * kOpsPerThread);
  EXPECT_EQ(gauge.value(), 0);  // adds and subs balanced per thread
  const auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count, kThreads * kOpsPerThread);
  std::uint64_t bucket_sum = 0;
  for (auto c : snap.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, snap.count);
}

TEST(MetricsStress, ConcurrentRegistrationIsRaceFree) {
  MetricsRegistry registry;
  constexpr std::size_t kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  // All threads get-or-create the same family and distinct per-thread
  // series; the same (name, labels) must resolve to one instance.
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 100; ++round) {
        Counter& shared =
            registry.counter("saad_stress_shared_total", "shared");
        Counter& mine = registry.counter(
            "saad_stress_sharded_total", "sharded",
            {{"worker", std::to_string(t % kMaxIndexedLabels)}});
        mine.inc();
        if (round == 0) seen[t] = &shared;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (std::size_t t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(registry.num_families(), 2u);
}

TEST(MetricsStress, FlightRecorderConcurrentRecordAndDump) {
  FlightRecorder recorder(64);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kEvents = 2'000;
  std::atomic<bool> stop_dumping{false};
  std::thread dumper([&] {
    while (!stop_dumping.load(std::memory_order_acquire)) {
      const auto events = recorder.dump();
      // Retained tail is contiguous and ordered.
      for (std::size_t i = 1; i < events.size(); ++i)
        ASSERT_EQ(events[i].seq, events[i - 1].seq + 1);
      (void)recorder.dump_text();
    }
  });
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kEvents; ++i)
        recorder.record(EventKind::kCustom, "thread %zu event %zu", t, i);
    });
  }
  for (auto& w : writers) w.join();
  stop_dumping.store(true, std::memory_order_release);
  dumper.join();
  EXPECT_EQ(recorder.recorded(), kThreads * kEvents);
  EXPECT_EQ(recorder.dump().size(), 64u);
}

}  // namespace
}  // namespace saad::obs
