#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "json_checker.h"
#include "obs/exposition.h"

namespace saad::obs {
namespace {

// Value-assertion tests are meaningless in a -DSAAD_METRICS=OFF build, where
// inc()/observe() compile to no-ops; registration, identity, and exposition
// shape still hold and stay tested there.
#define SKIP_IF_METRICS_DISABLED()                                     \
  if (!kMetricsEnabled)                                                \
  GTEST_SKIP() << "mutations compiled out (SAAD_METRICS=OFF)"

TEST(MetricsRegistry, CounterAccumulates) {
  SKIP_IF_METRICS_DISABLED();
  MetricsRegistry registry;
  Counter& c = registry.counter("saad_test_ops_total", "ops");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsRegistry, GaugeSetAddSub) {
  SKIP_IF_METRICS_DISABLED();
  MetricsRegistry registry;
  Gauge& g = registry.gauge("saad_test_depth", "depth");
  g.set(10);
  g.add(5);
  g.sub(7);
  EXPECT_EQ(g.value(), 8);
}

TEST(MetricsRegistry, GetOrCreateReturnsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.counter("saad_test_ops_total", "ops");
  Counter& b = registry.counter("saad_test_ops_total", "ops");
  EXPECT_EQ(&a, &b);

  // Distinct label sets are distinct series in the same family.
  Counter& s0 = registry.counter("saad_test_lbl_total", "x", {{"shard", "0"}});
  Counter& s1 = registry.counter("saad_test_lbl_total", "x", {{"shard", "1"}});
  Counter& s0again =
      registry.counter("saad_test_lbl_total", "x", {{"shard", "0"}});
  EXPECT_NE(&s0, &s1);
  EXPECT_EQ(&s0, &s0again);
  EXPECT_EQ(registry.num_families(), 2u);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("saad_test_ops_total", "ops");
  EXPECT_THROW(registry.gauge("saad_test_ops_total", "ops"),
               std::logic_error);
  EXPECT_THROW(
      registry.histogram("saad_test_ops_total", "ops", size_bounds()),
      std::logic_error);
}

TEST(MetricsRegistry, InvalidNameThrows) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter("", "x"), std::logic_error);
  EXPECT_THROW(registry.counter("9starts_with_digit", "x"), std::logic_error);
  EXPECT_THROW(registry.counter("has space", "x"), std::logic_error);
  EXPECT_THROW(registry.counter("has-dash", "x"), std::logic_error);
}

TEST(MetricsRegistry, HistogramBucketsBoundariesInclusive) {
  SKIP_IF_METRICS_DISABLED();
  MetricsRegistry registry;
  Histogram& h =
      registry.histogram("saad_test_us", "us", {10, 100, 1000});
  h.observe(5);     // -> bucket le=10
  h.observe(10);    // boundary is inclusive -> le=10
  h.observe(11);    // -> le=100
  h.observe(1001);  // -> +Inf
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + Inf
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 5 + 10 + 11 + 1001);
}

TEST(MetricsRegistry, SnapshotReflectsRegistrationOrder) {
  MetricsRegistry registry;
  registry.counter("saad_test_first_total", "1st");
  registry.gauge("saad_test_second", "2nd");
  registry.histogram("saad_test_third_us", "3rd", {1, 2});
  const auto families = registry.snapshot();
  ASSERT_EQ(families.size(), 3u);
  EXPECT_EQ(families[0].name, "saad_test_first_total");
  EXPECT_EQ(families[0].type, MetricType::kCounter);
  EXPECT_EQ(families[1].name, "saad_test_second");
  EXPECT_EQ(families[1].type, MetricType::kGauge);
  EXPECT_EQ(families[2].name, "saad_test_third_us");
  EXPECT_EQ(families[2].type, MetricType::kHistogram);
  EXPECT_EQ(families[2].bounds, (std::vector<std::int64_t>{1, 2}));
}

TEST(MetricsRegistry, ResetValuesKeepsRegistrations) {
  SKIP_IF_METRICS_DISABLED();
  MetricsRegistry registry;
  Counter& c = registry.counter("saad_test_ops_total", "ops");
  Histogram& h = registry.histogram("saad_test_us", "us", {10});
  c.inc(7);
  h.observe(3);
  registry.reset_values();
  EXPECT_EQ(registry.num_families(), 2u);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
}

// ---- Prometheus exposition golden tests ------------------------------------

TEST(Exposition, PrometheusGoldenCounterAndGauge) {
  SKIP_IF_METRICS_DISABLED();
  MetricsRegistry registry;
  Counter& c =
      registry.counter("saad_test_ops_total", "Operations.", {{"shard", "3"}});
  c.inc(12);
  registry.gauge("saad_test_depth", "Queue depth.").set(-4);
  const std::string text = render_prometheus(registry);
  EXPECT_EQ(text,
            "# HELP saad_test_ops_total Operations.\n"
            "# TYPE saad_test_ops_total counter\n"
            "saad_test_ops_total{shard=\"3\"} 12\n"
            "# HELP saad_test_depth Queue depth.\n"
            "# TYPE saad_test_depth gauge\n"
            "saad_test_depth -4\n");
}

TEST(Exposition, PrometheusEscapesHelpAndLabelValues) {
  MetricsRegistry registry;
  registry.counter("saad_test_esc_total", "line\none \\ two",
                   {{"path", "a\\b\"c\nd"}});
  const std::string text = render_prometheus(registry);
  EXPECT_NE(text.find("# HELP saad_test_esc_total line\\none \\\\ two\n"),
            std::string::npos);
  EXPECT_NE(text.find("saad_test_esc_total{path=\"a\\\\b\\\"c\\nd\"} 0\n"),
            std::string::npos);
}

TEST(Exposition, PrometheusHistogramIsCumulativeWithInf) {
  SKIP_IF_METRICS_DISABLED();
  MetricsRegistry registry;
  Histogram& h = registry.histogram("saad_test_us", "Latency.", {10, 100});
  h.observe(5);
  h.observe(7);
  h.observe(50);
  h.observe(500);
  const std::string text = render_prometheus(registry);
  EXPECT_NE(text.find("# TYPE saad_test_us histogram"), std::string::npos);
  // Buckets must be cumulative: 2, 2+1, 2+1+1; _count equals the +Inf count.
  EXPECT_NE(text.find("saad_test_us_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("saad_test_us_bucket{le=\"100\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("saad_test_us_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("saad_test_us_sum 562\n"), std::string::npos);
  EXPECT_NE(text.find("saad_test_us_count 4\n"), std::string::npos);
}

TEST(Exposition, PrometheusHistogramBucketsKeepExtraLabels) {
  MetricsRegistry registry;
  registry.histogram("saad_test_us", "Latency.", {10}, {{"worker", "2"}});
  const std::string text = render_prometheus(registry);
  EXPECT_NE(text.find("saad_test_us_bucket{worker=\"2\",le=\"10\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("saad_test_us_count{worker=\"2\"} 0\n"),
            std::string::npos);
}

// ---- JSON exposition -------------------------------------------------------

TEST(Exposition, JsonIsWellFormedAndSchemaVersioned) {
  MetricsRegistry registry;
  Counter& c = registry.counter("saad_test_ops_total", "Ops with \"quotes\".",
                                {{"shard", "0"}});
  c.inc(3);
  Histogram& h = registry.histogram("saad_test_us", "Latency.", {10, 100});
  h.observe(42);
  registry.gauge("saad_test_depth", "Depth.").set(9);

  const std::string json = render_json(registry);
  EXPECT_TRUE(saad::testing::JsonChecker(json).valid()) << json;
  EXPECT_EQ(json.rfind("{\"schema_version\":1,", 0), 0u) << json;
  EXPECT_NE(json.find("\"name\":\"saad_test_ops_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  if (kMetricsEnabled) {
    EXPECT_NE(json.find("\"value\":3"), std::string::npos);
    EXPECT_NE(json.find("\"count\":1"), std::string::npos);
    EXPECT_NE(json.find("\"sum\":42"), std::string::npos);
    // Cumulative buckets in JSON too: le 10 -> 0, le 100 -> 1, +Inf -> 1.
    EXPECT_NE(json.find("\"le\":100,\"count\":1"), std::string::npos);
    EXPECT_NE(json.find("\"le\":\"+Inf\",\"count\":1"), std::string::npos);
  }
}

TEST(Exposition, JsonEscapesHelpText) {
  MetricsRegistry registry;
  registry.counter("saad_test_esc_total", "line\nwith \"quotes\" \\ slash");
  const std::string json = render_json(registry);
  EXPECT_TRUE(saad::testing::JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("line\\nwith \\\"quotes\\\" \\\\ slash"),
            std::string::npos);
}

TEST(Exposition, EmptyRegistryRendersEmptyShells) {
  MetricsRegistry registry;
  EXPECT_EQ(render_prometheus(registry), "");
  const std::string json = render_json(registry);
  EXPECT_TRUE(saad::testing::JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"families\":[]"), std::string::npos);
}

}  // namespace
}  // namespace saad::obs
