// Minimal strict JSON well-formedness parser for test assertions — the same
// check the lint SARIF suite uses (tests/lint/sarif_test.cpp), shared here so
// the telemetry exposition tests can assert RFC 8259 conformance without a
// JSON library. Returns true iff `text` is exactly one valid JSON value;
// rejects unbalanced braces, bad escapes, trailing commas, unquoted keys.
#pragma once

#include <cctype>
#include <string_view>

namespace saad::testing {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') return ++pos_, true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<std::size_t>(i) >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    text_[pos_ + static_cast<std::size_t>(i)]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace saad::testing
