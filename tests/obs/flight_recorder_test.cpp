#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

namespace saad::obs {
namespace {

TEST(FlightRecorder, RecordsInOrderWithDetails) {
  FlightRecorder recorder(8);
  recorder.record(EventKind::kWindowOpen, "window %d opened", 3);
  recorder.record(EventKind::kCorruptBlock, "block %d bad crc", 7);
  const auto events = recorder.dump();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].kind, EventKind::kWindowOpen);
  EXPECT_STREQ(events[0].detail, "window 3 opened");
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[1].kind, EventKind::kCorruptBlock);
  EXPECT_STREQ(events[1].detail, "block 7 bad crc");
  EXPECT_LE(events[0].wall_us, events[1].wall_us);
}

TEST(FlightRecorder, RingKeepsNewestEvents) {
  FlightRecorder recorder(4);
  for (int i = 0; i < 10; ++i)
    recorder.record(EventKind::kCustom, "event %d", i);
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.capacity(), 4u);
  const auto events = recorder.dump();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first among the retained tail: 6, 7, 8, 9.
  EXPECT_STREQ(events[0].detail, "event 6");
  EXPECT_STREQ(events[3].detail, "event 9");
  EXPECT_EQ(events[0].seq, 7u);  // 1-based
  EXPECT_EQ(events[3].seq, 10u);
}

TEST(FlightRecorder, LongDetailsTruncateSafely) {
  FlightRecorder recorder(2);
  const std::string big(4 * FlightRecorder::kDetailBytes, 'x');
  recorder.record(EventKind::kCustom, "%s", big.c_str());
  const auto events = recorder.dump();
  ASSERT_EQ(events.size(), 1u);
  const std::string detail = events[0].detail;
  EXPECT_EQ(detail.size(), FlightRecorder::kDetailBytes - 1);
  EXPECT_EQ(detail, big.substr(0, FlightRecorder::kDetailBytes - 1));
}

TEST(FlightRecorder, DumpTextFormat) {
  FlightRecorder recorder(8);
  recorder.record(EventKind::kModeChange, "armed");
  recorder.record(EventKind::kTornTail, "lost 12 bytes");
  const std::string text = recorder.dump_text();
  // "#seq +offset kind: detail" lines, oldest first.
  EXPECT_NE(text.find("#1 +0.000000s mode-change: armed"), std::string::npos)
      << text;
  EXPECT_NE(text.find("torn-tail: lost 12 bytes"), std::string::npos) << text;
  EXPECT_LT(text.find("mode-change"), text.find("torn-tail"));
}

TEST(FlightRecorder, ClearResetsRetainedNotLifetime) {
  FlightRecorder recorder(8);
  recorder.record(EventKind::kCustom, "one");
  recorder.record(EventKind::kCustom, "two");
  recorder.clear();
  EXPECT_TRUE(recorder.dump().empty());
  EXPECT_EQ(recorder.recorded(), 2u);
  recorder.record(EventKind::kCustom, "three");
  const auto events = recorder.dump();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 3u);  // sequence numbers keep counting
}

TEST(FlightRecorder, GlobalIsSameInstance) {
  EXPECT_EQ(&FlightRecorder::global(), &FlightRecorder::global());
}

TEST(FlightRecorder, DumpToFdWritesCrashSafeText) {
  FlightRecorder recorder(4);
  recorder.record(EventKind::kIoError, "disk full on %s", "trace.tmp");
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  recorder.dump_to_fd(fds[1]);
  close(fds[1]);
  std::string text;
  char buf[512];
  for (;;) {
    const ssize_t n = read(fds[0], buf, sizeof(buf));
    if (n <= 0) break;
    text.append(buf, static_cast<std::size_t>(n));
  }
  close(fds[0]);
  EXPECT_NE(text.find("saad flight recorder (1 of 1 events)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("#1 io-error: disk full on trace.tmp"),
            std::string::npos)
      << text;
}

// Regression test for short-write handling: a pipe shrunk to its minimum
// capacity forces write(2) to return short counts and EAGAIN (the write end
// is non-blocking) while a deliberately slow reader drains it. Every line of
// a dump much larger than the pipe must still arrive intact and in order —
// dump_to_fd must loop on short writes and back off on EAGAIN rather than
// silently truncating the dump.
TEST(FlightRecorder, DumpToFdSurvivesShortWritesOnTinyPipe) {
  constexpr int kEvents = 64;
  FlightRecorder recorder(kEvents);
  const std::string pad(FlightRecorder::kDetailBytes - 32, 'x');
  for (int i = 0; i < kEvents; ++i)
    recorder.record(EventKind::kCustom, "event %04d %s", i, pad.c_str());

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
#ifdef F_SETPIPE_SZ
  // One page is the floor; the dump is an order of magnitude bigger.
  fcntl(fds[1], F_SETPIPE_SZ, 4096);
#endif
  ASSERT_EQ(fcntl(fds[1], F_SETFL, O_NONBLOCK), 0);

  std::string text;
  std::thread reader([&] {
    char buf[256];  // small reads keep the pipe near-full for the writer
    for (;;) {
      const ssize_t n = read(fds[0], buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      text.append(buf, static_cast<std::size_t>(n));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  recorder.dump_to_fd(fds[1]);
  close(fds[1]);
  reader.join();
  close(fds[0]);

  EXPECT_NE(text.find("saad flight recorder (64 of 64 events)"),
            std::string::npos);
  for (int i = 0; i < kEvents; ++i) {
    char marker[32];
    std::snprintf(marker, sizeof(marker), "event %04d ", i);
    EXPECT_NE(text.find(marker), std::string::npos) << marker;
  }
  // In order, newline-terminated: as many lines as events plus the banner.
  std::size_t lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_EQ(lines, static_cast<std::size_t>(kEvents) + 1);
  EXPECT_LT(text.find("event 0000 "), text.find("event 0063 "));
}

}  // namespace
}  // namespace saad::obs
