// Property test: the LSM store behaves like a std::map under randomized
// interleavings of puts, gets, flushes and major compactions — including
// flush failures injected mid-sequence (data must never be lost, only
// buffered).
#include <gtest/gtest.h>

#include <map>

#include "lsm/store.h"
#include "sim/engine.h"

namespace saad::lsm {
namespace {

class LsmRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LsmRandomOps, MatchesReferenceMapUnderRandomInterleavings) {
  sim::Engine engine;
  faults::FaultPlane plane;
  sim::Disk disk(&engine, &plane, 0, Rng(GetParam()));
  LsmOptions options;
  options.memtable_flush_bytes = 2048;
  options.major_compaction_tables = 3;
  LsmStore store(&engine, &disk, options);
  std::map<std::string, std::string> reference;

  // A window during which every flush fails (data must stay readable).
  faults::FaultSpec flaky;
  flaky.activity = faults::Activity::kMemtableFlush;
  flaky.mode = faults::FaultMode::kError;
  flaky.intensity = 1.0;
  flaky.from = sec(20);
  flaky.until = sec(40);
  plane.add(flaky);

  bool done = false;
  std::size_t mismatches = 0;
  auto driver = [&]() -> sim::Process {
    Rng rng(GetParam() ^ 0xABCDEF);
    for (int op = 0; op < 3000; ++op) {
      const double dice = rng.next_double();
      const std::string key = "k" + std::to_string(rng.next_below(200));
      if (dice < 0.5) {
        const std::string value = "v" + std::to_string(op);
        if (store.apply(key, value)) reference[key] = value;
        if (store.needs_flush()) (void)co_await store.flush();
      } else if (dice < 0.9) {
        const auto got = co_await store.get(key);
        const auto it = reference.find(key);
        const bool match = (it == reference.end() && !got.value) ||
                           (it != reference.end() && got.value &&
                            *got.value == it->second);
        if (!match) mismatches++;
      } else if (dice < 0.95) {
        (void)co_await store.flush();
      } else if (store.needs_major_compaction()) {
        (void)co_await store.major_compact();
      }
      co_await engine.delay(ms(20));
    }
    done = true;
  };
  driver();
  engine.run_until(minutes(10));
  ASSERT_TRUE(done);
  EXPECT_EQ(mismatches, 0u);

  // After the fault window, everything flushes and reads stay correct.
  bool verified = false;
  auto verifier = [&]() -> sim::Process {
    while (store.frozen_backlog() > 0 || store.active_bytes() > 0) {
      (void)co_await store.flush();
      co_await engine.delay(sec(1));
    }
    for (const auto& [key, value] : reference) {
      const auto got = co_await store.get(key);
      if (!got.value || *got.value != value) mismatches++;
    }
    verified = true;
  };
  verifier();
  engine.run_until(minutes(20));
  ASSERT_TRUE(verified);
  EXPECT_EQ(mismatches, 0u);
  EXPECT_EQ(store.unflushed_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsmRandomOps,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace saad::lsm
