#include "lsm/store.h"

#include <gtest/gtest.h>

#include "sim/engine.h"

namespace saad::lsm {
namespace {

struct LsmFixture : ::testing::Test {
  sim::Engine engine;
  faults::FaultPlane plane;
  std::unique_ptr<sim::Disk> disk;
  LsmOptions options;
  std::unique_ptr<LsmStore> store;

  void SetUp() override {
    disk = std::make_unique<sim::Disk>(&engine, &plane, 0, Rng(1));
    options.memtable_flush_bytes = 1024;
    options.major_compaction_tables = 3;
    store = std::make_unique<LsmStore>(&engine, disk.get(), options);
  }

  void fill_memtable(int n, const std::string& prefix = "k") {
    for (int i = 0; i < n; ++i)
      store->apply(prefix + std::to_string(i), std::string(100, 'v'));
  }

  bool run_flush() {
    bool result = false;
    auto proc = [&]() -> sim::Process { result = co_await store->flush(); };
    proc();
    engine.run_all();
    return result;
  }
};

TEST_F(LsmFixture, ApplyAndGetFromMemtable) {
  store->apply("alpha", "1");
  auto proc = [&]() -> sim::Process {
    const auto r = co_await store->get("alpha");
    EXPECT_EQ(r.value, "1");
    EXPECT_EQ(r.sstables_probed, 0u);
  };
  proc();
  engine.run_all();
}

TEST_F(LsmFixture, GetMissingKey) {
  auto proc = [&]() -> sim::Process {
    const auto r = co_await store->get("ghost");
    EXPECT_FALSE(r.value.has_value());
  };
  proc();
  engine.run_all();
}

TEST_F(LsmFixture, NeedsFlushAfterThreshold) {
  EXPECT_FALSE(store->needs_flush());
  fill_memtable(20);  // ~2000 bytes > 1024
  EXPECT_TRUE(store->needs_flush());
}

TEST_F(LsmFixture, FlushMovesDataToSSTable) {
  fill_memtable(20);
  EXPECT_TRUE(run_flush());
  EXPECT_EQ(store->num_sstables(), 1u);
  EXPECT_EQ(store->active_bytes(), 0u);
  EXPECT_EQ(store->flushes_completed(), 1u);

  // Data survives the flush and is read back from disk.
  auto proc = [&]() -> sim::Process {
    const auto r = co_await store->get("k3");
    EXPECT_TRUE(r.value.has_value());
    EXPECT_EQ(r.sstables_probed, 1u);
  };
  proc();
  engine.run_all();
}

TEST_F(LsmFixture, FlushTrimsWal) {
  auto writer = [&]() -> sim::Process {
    (void)co_await store->wal_append(2000);
  };
  writer();
  engine.run_all();
  EXPECT_EQ(store->wal().pending_bytes(), 2000u);
  fill_memtable(20);
  run_flush();
  EXPECT_LT(store->wal().pending_bytes(), 2000u);
}

TEST_F(LsmFixture, FailedFlushKeepsMemoryPressure) {
  faults::FaultSpec spec;
  spec.activity = faults::Activity::kMemtableFlush;
  spec.mode = faults::FaultMode::kError;
  spec.intensity = 1.0;
  spec.until = minutes(60);
  plane.add(spec);

  fill_memtable(20);
  const std::size_t before = store->unflushed_bytes();
  EXPECT_FALSE(run_flush());
  EXPECT_EQ(store->num_sstables(), 0u);
  EXPECT_EQ(store->flushes_failed(), 1u);
  EXPECT_EQ(store->frozen_backlog(), 1u);
  EXPECT_EQ(store->unflushed_bytes(), before);  // still buffered

  // Lift the fault: the retry drains the backlog.
  plane.clear();
  EXPECT_TRUE(run_flush());
  EXPECT_EQ(store->frozen_backlog(), 0u);
  EXPECT_EQ(store->num_sstables(), 1u);
}

TEST_F(LsmFixture, FailedFlushBacksOff) {
  faults::FaultSpec spec;
  spec.activity = faults::Activity::kMemtableFlush;
  spec.mode = faults::FaultMode::kError;
  spec.intensity = 1.0;
  spec.until = minutes(60);
  plane.add(spec);

  fill_memtable(20);
  EXPECT_TRUE(store->needs_flush());
  EXPECT_FALSE(run_flush());
  // The failure arms the backoff: no immediate retrigger at the write rate.
  EXPECT_FALSE(store->needs_flush());
  engine.run_until(engine.now() + options.flush_retry_backoff + 1);
  fill_memtable(20);
  EXPECT_TRUE(store->needs_flush());
}

TEST_F(LsmFixture, FrozenMemtableStillReadable) {
  faults::FaultSpec spec;
  spec.activity = faults::Activity::kMemtableFlush;
  spec.mode = faults::FaultMode::kError;
  spec.intensity = 1.0;
  spec.until = minutes(60);
  plane.add(spec);
  fill_memtable(20);
  run_flush();  // fails; data stays in the frozen table
  auto proc = [&]() -> sim::Process {
    const auto r = co_await store->get("k5");
    EXPECT_TRUE(r.value.has_value());
  };
  proc();
  engine.run_all();
}

TEST_F(LsmFixture, MajorCompactionMergesTables) {
  for (int round = 0; round < 3; ++round) {
    fill_memtable(20, "r" + std::to_string(round) + "_");
    ASSERT_TRUE(run_flush());
  }
  ASSERT_EQ(store->num_sstables(), 3u);
  EXPECT_TRUE(store->needs_major_compaction());

  bool ok = false;
  auto proc = [&]() -> sim::Process { ok = co_await store->major_compact(); };
  proc();
  engine.run_all();
  EXPECT_TRUE(ok);
  EXPECT_EQ(store->num_sstables(), 1u);
  EXPECT_EQ(store->compactions_completed(), 1u);

  // All rounds' keys are still present, with a single probe now.
  auto reader = [&]() -> sim::Process {
    for (int round = 0; round < 3; ++round) {
      const auto r =
          co_await store->get("r" + std::to_string(round) + "_7");
      EXPECT_TRUE(r.value.has_value()) << "round " << round;
      EXPECT_EQ(r.sstables_probed, 1u);
    }
  };
  reader();
  engine.run_all();
}

TEST_F(LsmFixture, CompactionKeepsNewestValue) {
  store->apply("dup", "old");
  fill_memtable(20);
  run_flush();
  store->apply("dup", "new");
  fill_memtable(20);
  run_flush();
  fill_memtable(20, "x");
  run_flush();

  auto proc = [&]() -> sim::Process {
    (void)co_await store->major_compact();
    const auto r = co_await store->get("dup");
    EXPECT_TRUE(r.value.has_value());
    if (r.value) {
      EXPECT_EQ(*r.value, "new");
    }
  };
  proc();
  engine.run_all();
}

TEST_F(LsmFixture, WedgeActiveBlocksApplies) {
  store->apply("a", "1");
  store->wedge_active();
  EXPECT_TRUE(store->memtable_frozen());
  EXPECT_FALSE(store->apply("b", "2"));
}

TEST_F(LsmFixture, WalErrorFaultFailsAppend) {
  faults::FaultSpec spec;
  spec.activity = faults::Activity::kWalAppend;
  spec.mode = faults::FaultMode::kError;
  spec.intensity = 1.0;
  spec.until = minutes(60);
  plane.add(spec);
  auto proc = [&]() -> sim::Process {
    const auto io = co_await store->wal_append(100);
    EXPECT_FALSE(io.ok);
  };
  proc();
  engine.run_all();
  EXPECT_EQ(store->wal().failed_appends(), 1u);
  EXPECT_EQ(store->wal().pending_bytes(), 0u);
}

TEST_F(LsmFixture, ConcurrentFlushReturnsFalse) {
  fill_memtable(20);
  bool first = false, second = true;
  auto proc = [&]() -> sim::Process { first = co_await store->flush(); };
  auto proc2 = [&]() -> sim::Process { second = co_await store->flush(); };
  proc();
  proc2();  // starts while the first flush awaits disk I/O
  engine.run_all();
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
}

TEST(MemTable, OverwriteAdjustsBytes) {
  MemTable m;
  m.put("k", "12345");
  const auto b1 = m.bytes();
  m.put("k", "1");
  EXPECT_EQ(m.bytes(), b1 - 4);
  EXPECT_EQ(m.entries(), 1u);
}

TEST(SSTable, MergePrefersNewest) {
  SSTable old_table(1, {{"a", "old"}, {"b", "only-old"}});
  SSTable new_table(2, {{"a", "new"}});
  const SSTable merged =
      SSTable::merge(3, {&new_table, &old_table});
  EXPECT_EQ(merged.entries(), 2u);
  EXPECT_EQ(merged.get("a"), "new");
  EXPECT_EQ(merged.get("b"), "only-old");
  EXPECT_FALSE(merged.get("c").has_value());
}

}  // namespace
}  // namespace saad::lsm
