// Shared unique-tempdir helper for every test that touches the filesystem.
//
// `ctest -j` runs each test binary (and, with gtest sharding, each fixture)
// as its own process against the *shared* system temp root, so two tests
// writing the same literal file name race: one truncates the file the other
// is mid-read on. That bit PR 4's suites; this helper is the one sanctioned
// way to name scratch files.
//
// Each TempDir instance creates its own directory
//
//   <system-temp>/saad_<test-suite>_<test-name>_<pid>_<seq>_<rand>/
//
// so names inside it can be as plain as "trace.trc". The directory (and
// everything in it) is removed on destruction; removal failure is ignored —
// a leftover directory must never fail the test that already passed.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <filesystem>
#include <random>
#include <string>

#include <unistd.h>

namespace saad::testutil {

class TempDir {
 public:
  TempDir() {
    std::string tag = "saad";
    if (const auto* info =
            ::testing::UnitTest::GetInstance()->current_test_info()) {
      tag += std::string("_") + info->test_suite_name() + "_" + info->name();
    }
    // Parameterized/typed test names carry '/' — flatten everything that is
    // not filename-safe.
    for (char& c : tag)
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';

    static std::atomic<std::uint64_t> sequence{0};
    std::random_device rd;
    for (int attempt = 0; attempt < 16; ++attempt) {
      auto candidate =
          std::filesystem::temp_directory_path() /
          (tag + "_" + std::to_string(static_cast<long long>(::getpid())) +
           "_" + std::to_string(sequence.fetch_add(1)) + "_" +
           std::to_string(rd()));
      std::error_code ec;
      if (std::filesystem::create_directory(candidate, ec) && !ec) {
        dir_ = std::move(candidate);
        return;
      }
    }
    ADD_FAILURE() << "TempDir: could not create a unique directory under "
                  << std::filesystem::temp_directory_path();
  }

  ~TempDir() {
    if (dir_.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);  // best effort
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& dir() const { return dir_; }

  /// Absolute path for a scratch file inside the unique directory.
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

/// Process-wide scratch directory for tests that only need unique file
/// names: `scratch_path("trace.trc")` is safe under `ctest -j` because
/// every gtest process gets its own TempDir (removed at process exit).
/// Fixtures that want per-test isolation inside one process should hold a
/// TempDir member instead.
inline std::string scratch_path(const std::string& name) {
  static TempDir dir;
  return dir.path(name);
}

}  // namespace saad::testutil
