// Seeded violation: SAAD-FL010 loop-carried-log-point (note).
// The per-row statement repeats once per iteration: its per-task count in
// the synopsis is statically unbounded.
class RowScanner implements Runnable {
  public void run() {
    LOG.info("row scan started");
    while (cursor.hasNext()) {
      LOG.debug("row scan visits one row");
    }
  }
}
