// Seeded violation: SAAD-FL009 error-path-only-logging (warning).
// The only log point lives in the catch handler, so every normal execution
// of the stage emits an empty signature.
class Flusher implements Runnable {
  public void run() {
    try {
      flushAll();
    } catch (IOException e) {
      LOG.error("flush failed hard");
    }
  }
}
