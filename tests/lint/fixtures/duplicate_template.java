// Seeded violation: SAAD-LP001 duplicate-template (error).
// Both statements share the static text "starting request", so the
// dictionary aliases two distinct log points into one entry.
class Worker implements Runnable {
  public void run() {
    LOG.info("starting request");
    doWork();
    LOG.debug("starting request");
  }
}
