// Seeded violation: SAAD-DQ005 unmarked-dequeue-site (note) — the take()
// in Dispatcher has no SAAD_STAGE marker nearby. MarkedDispatcher shows
// the compliant form: a marker within the window suppresses the note.
class Dispatcher {
  void serve() {
    Request r = queue.take();
    handle(r);
  }
}

class MarkedDispatcher {
  void serve() {
    SAAD_STAGE("MarkedDispatcher");
    Request r = queue.take();
    log.info("dispatching marked request");
  }
}
