// Seeded violation: SAAD-LP004 log-point-outside-stage (warning).
// A log statement in free code: its events are attributed to stage 0.
static void helper() {
  log.error("checkpoint failed");
}
