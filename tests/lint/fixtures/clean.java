// Fully compliant instrumentation: unique static templates, every log
// point inside a stage, the dequeue site covered by a SAAD_STAGE marker
// within the inspection window. saad_lint must report nothing here.
class Archiver implements Runnable {
  public void run() {
    LOG.info("archiver woke up");
    SAAD_STAGE("Archiver");
    Batch b = inbox.poll();
    LOG.debug("archiving one batch");
    LOG.warn("archive volume nearly full");
  }
}
