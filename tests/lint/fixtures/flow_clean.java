// Flow-rule clean fixture: branches, a try/catch, and early exits whose
// instrumentation is fully discriminating — every alternative logs, the
// normal path logs, nothing is unreachable, nothing loops. The flow rules
// (SAAD-FL007..FL010) must report nothing here.
class Balancer implements Runnable {
  public void run() {
    LOG.info("balancer pass begins");
    if (overloaded) {
      LOG.warn("balancer shedding load");
    } else {
      LOG.debug("balancer load nominal");
    }
    try {
      rebalance();
      LOG.info("balancer pass rebalanced");
    } catch (Exception e) {
      LOG.error("balancer rebalance failed");
    }
  }
}
