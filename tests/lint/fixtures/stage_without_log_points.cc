// Seeded violation: SAAD-ST002 stage-without-log-points (warning).
// The IdleSweeper stage is declared but nothing logs inside it, so its
// per-execution signature is always empty. SweepReporter shows the file is
// otherwise instrumented — the rule skips files with no log points at all.
void setup_sweeper() {
  SAAD_STAGE("IdleSweeper");
  sweep();
}

class SweepReporter {
 public:
  void run() {
    log.info("sweep reporter heartbeat");
  }
};
