// Seeded violation: SAAD-ST002 stage-without-log-points (warning).
// The IdleSweeper stage is declared but nothing logs inside it, so its
// per-execution signature is always empty.
void setup_sweeper() {
  SAAD_STAGE("IdleSweeper");
  sweep();
}
