// Seeded violation: SAAD-FL007 unreachable-log-point (error).
// The epilogue statement sits after an unconditional return: no task can
// ever execute it, so it can never contribute to any signature.
class Uploader implements Runnable {
  public void run() {
    LOG.info("upload begins");
    LOG.info("upload completed");
    return;
    LOG.debug("upload epilogue never runs");
  }
}
