// Seeded violation: SAAD-LP003 dynamic-only-template (error).
// The statement has no static literal at all; its template dictionary
// entry would be empty and unstable across runs.
class Mailbox implements Runnable {
  public void run() {
    log.warn(formatStatus());
    log.info("mailbox drained");
  }
}
