// Seeded violation: SAAD-FL008 branch-without-log-coverage (warning).
// The local path logs, the remote path does not: both produce the same
// signature, so a flow anomaly between them is statically invisible.
class Router implements Runnable {
  public void run() {
    LOG.info("routing one request");
    if (isLocal) {
      LOG.debug("routing request locally");
    } else {
      forwardRemote();
    }
  }
}
