#include "lint/baseline.h"

#include <gtest/gtest.h>

namespace saad::lint {
namespace {

Diagnostic diag(std::string rule, std::string file, std::string key,
                int line = 1) {
  Diagnostic d;
  d.rule_id = std::move(rule);
  d.file = std::move(file);
  d.content_key = std::move(key);
  d.line = line;
  d.message = "m";
  return d;
}

TEST(LintBaseline, FingerprintIgnoresLineNumbers) {
  EXPECT_EQ(fingerprint(diag("SAAD-LP001", "a.cc", "tmpl", 10)),
            fingerprint(diag("SAAD-LP001", "a.cc", "tmpl", 99)));
  EXPECT_NE(fingerprint(diag("SAAD-LP001", "a.cc", "tmpl")),
            fingerprint(diag("SAAD-LP003", "a.cc", "tmpl")));
  EXPECT_NE(fingerprint(diag("SAAD-LP001", "a.cc", "tmpl")),
            fingerprint(diag("SAAD-LP001", "b.cc", "tmpl")));
}

TEST(LintBaseline, FingerprintEscapesDelimiters) {
  const auto tricky = fingerprint(diag("R", "a|b.cc", "x\\y|z\nw"));
  // Exactly two unescaped field separators survive.
  std::size_t separators = 0;
  for (std::size_t i = 0; i < tricky.size(); ++i) {
    if (tricky[i] == '\\') {
      ++i;  // escaped char
      continue;
    }
    if (tricky[i] == '|') ++separators;
  }
  EXPECT_EQ(separators, 2u);
  EXPECT_EQ(tricky.find('\n'), std::string::npos);
}

TEST(LintBaseline, RoundTripThroughText) {
  std::vector<Diagnostic> diags = {
      diag("SAAD-LP001", "a.cc", "dup template"),
      diag("SAAD-LP001", "a.cc", "dup template"),  // same fingerprint, x2
      diag("SAAD-DQ005", "b|weird.cc", "q.take(); // pipe | in line"),
  };
  const auto baseline = make_baseline(diags);
  EXPECT_EQ(baseline.counts.size(), 2u);

  const auto text = serialize_baseline(baseline);
  Baseline reparsed;
  ASSERT_TRUE(parse_baseline(text, reparsed));
  EXPECT_EQ(reparsed.counts, baseline.counts);
}

TEST(LintBaseline, ParseRejectsMalformedLines) {
  Baseline b;
  EXPECT_FALSE(parse_baseline("not enough fields\n", b));
  EXPECT_FALSE(parse_baseline("a|b|c|not_a_number\n", b));
  EXPECT_FALSE(parse_baseline("a|b|c|0\n", b));   // counts are positive
  EXPECT_FALSE(parse_baseline("a|b|c|3x\n", b));  // trailing garbage
  Baseline ok;
  EXPECT_TRUE(parse_baseline("# comment only\n\n", ok));
  EXPECT_TRUE(ok.counts.empty());
}

TEST(LintBaseline, FilterAbsorbsUpToCount) {
  std::vector<Diagnostic> diags = {
      diag("SAAD-LP001", "a.cc", "k"),
      diag("SAAD-LP001", "a.cc", "k"),
      diag("SAAD-LP001", "a.cc", "k"),
      diag("SAAD-ST002", "a.cc", "stage"),
  };
  Baseline baseline;
  baseline.counts[fingerprint(diags[0])] = 2;

  const auto fresh = filter_new(diags, baseline);
  ASSERT_EQ(fresh.size(), 2u);  // third duplicate + the unbaselined stage
  EXPECT_EQ(fresh[0].rule_id, "SAAD-LP001");
  EXPECT_EQ(fresh[1].rule_id, "SAAD-ST002");
}

TEST(LintBaseline, EmptyBaselinePassesEverythingThrough) {
  const std::vector<Diagnostic> diags = {diag("SAAD-LP001", "a.cc", "k")};
  EXPECT_EQ(filter_new(diags, Baseline{}).size(), 1u);
}

TEST(LintBaseline, StaleEntriesAreHarmless) {
  Baseline baseline;
  baseline.counts["SAAD-LP001|gone.cc|old"] = 5;
  const std::vector<Diagnostic> diags = {diag("SAAD-LP001", "a.cc", "new")};
  EXPECT_EQ(filter_new(diags, baseline).size(), 1u);
}

}  // namespace
}  // namespace saad::lint
