#include "lint/rules.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/log_registry.h"
#include "lint/engine.h"

namespace saad::lint {
namespace {

core::ScanResult scan(std::string_view source, const std::string& file = "t.java") {
  return core::scan_source(source, file);
}

std::vector<Diagnostic> lint(std::string_view source) {
  return run_rules(scan(source), nullptr);
}

std::size_t count_rule(const std::vector<Diagnostic>& diags,
                       std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.rule_id == rule; }));
}

const Diagnostic* find_diag(const std::vector<Diagnostic>& diags,
                            std::string_view rule) {
  for (const auto& d : diags)
    if (d.rule_id == rule) return &d;
  return nullptr;
}

TEST(LintRules, CatalogIsCompleteAndStable) {
  const auto catalog = rule_catalog();
  ASSERT_EQ(catalog.size(), 10u);
  for (const auto& rule : catalog) {
    EXPECT_EQ(find_rule(rule.id), &rule);
    EXPECT_FALSE(rule.name.empty());
    EXPECT_FALSE(rule.short_description.empty());
  }
  EXPECT_EQ(find_rule("SAAD-XX999"), nullptr);
}

TEST(LintRules, DuplicateTemplateFlagsSecondOccurrence) {
  const auto diags = lint(R"(
class A implements Runnable {
  public void run() {
    LOG.info("same text");
    LOG.warn("same text");
  }
}
)");
  ASSERT_EQ(count_rule(diags, kRuleDuplicateTemplate), 1u);
  const auto* d = find_diag(diags, kRuleDuplicateTemplate);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 5);  // the second statement is the finding
  EXPECT_NE(d->message.find("same text"), std::string::npos);
  EXPECT_NE(d->message.find("t.java:4"), std::string::npos);
  EXPECT_FALSE(d->fixit.empty());
}

TEST(LintRules, DuplicateTemplateAcrossFiles) {
  core::ScanResult merged = scan("class A { void run() { LOG.info(\"x\"); } }", "a.java");
  core::merge(merged, scan("class B { void run() { LOG.info(\"x\"); } }", "b.java"));
  const auto diags = run_rules(merged, nullptr);
  EXPECT_EQ(count_rule(diags, kRuleDuplicateTemplate), 1u);
}

TEST(LintRules, StageWithoutLogPoints) {
  // The file carries other instrumentation, so the silent stage is a real
  // gap rather than an uninstrumented source.
  const auto diags = lint(R"(
class Busy implements Runnable {
  public void run() { LOG.info("busy neighbor logging"); }
}
void f() { SAAD_STAGE("Empty"); }
)");
  ASSERT_EQ(count_rule(diags, kRuleStageWithoutLogPoints), 1u);
  const auto* d = find_diag(diags, kRuleStageWithoutLogPoints);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("Empty"), std::string::npos);
}

TEST(LintRules, StageInUninstrumentedFileIsSkipped) {
  // A SAAD_STAGE marker in a file with no scanned log points at all (the
  // C++ stage-attribution idiom) must not warn.
  const auto diags = lint("void f() { SAAD_STAGE(\"Empty\"); }");
  EXPECT_EQ(count_rule(diags, kRuleStageWithoutLogPoints), 0u);
}

TEST(LintRules, StageWithLogPointsIsClean) {
  const auto diags = lint(R"(
class Busy implements Runnable {
  public void run() { LOG.info("busy working"); }
}
)");
  EXPECT_EQ(count_rule(diags, kRuleStageWithoutLogPoints), 0u);
}

TEST(LintRules, DynamicOnlyTemplate) {
  const auto diags = lint(R"(
class A implements Runnable {
  public void run() { log.info(status()); }
}
)");
  ASSERT_EQ(count_rule(diags, kRuleDynamicOnlyTemplate), 1u);
  EXPECT_EQ(find_diag(diags, kRuleDynamicOnlyTemplate)->severity,
            Severity::kError);
}

TEST(LintRules, LogPointOutsideStage) {
  const auto diags = lint("void free() { log.error(\"orphaned\"); }");
  ASSERT_EQ(count_rule(diags, kRuleLogPointOutsideStage), 1u);
  const auto* d = find_diag(diags, kRuleLogPointOutsideStage);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("orphaned"), std::string::npos);
}

TEST(LintRules, UnmarkedDequeueSiteRespectsWindow) {
  const auto unmarked = lint("void f() { Call c = queue.take(); }");
  ASSERT_EQ(count_rule(unmarked, kRuleUnmarkedDequeueSite), 1u);
  EXPECT_EQ(find_diag(unmarked, kRuleUnmarkedDequeueSite)->severity,
            Severity::kNote);

  const auto marked = lint(R"(
void f() {
  SAAD_STAGE("Consumer");
  Call c = queue.take();
  log.info("consumer dequeued one call");
}
)");
  EXPECT_EQ(count_rule(marked, kRuleUnmarkedDequeueSite), 0u);

  // A marker further away than the window does not cover the site.
  RuleOptions tight;
  tight.dequeue_marker_window = 0;
  const auto far_marker = run_rules(
      scan("void f() {\n  SAAD_STAGE(\"C\");\n  q.take();\n}"), nullptr,
      tight);
  EXPECT_EQ(count_rule(far_marker, kRuleUnmarkedDequeueSite), 1u);
}

TEST(LintRules, RegistryDriftBothDirections) {
  core::LogRegistry registry;
  const auto stage = registry.register_stage("Worker");
  registry.register_log_point(stage, core::Level::kInfo, "in registry only",
                              "old.java", 12);
  registry.register_log_point(stage, core::Level::kInfo, "in both");

  const auto result = scan(R"(
class Worker implements Runnable {
  public void run() {
    LOG.info("in both");
    LOG.info("in source only");
  }
}
)");
  const auto diags = run_rules(result, &registry);
  ASSERT_EQ(count_rule(diags, kRuleRegistrySourceDrift), 2u);
  bool saw_stale = false, saw_unregistered = false;
  for (const auto& d : diags) {
    if (d.rule_id != kRuleRegistrySourceDrift) continue;
    EXPECT_EQ(d.severity, Severity::kError);
    if (d.message.find("in registry only") != std::string::npos) {
      saw_stale = true;
      EXPECT_EQ(d.file, "old.java");
      EXPECT_EQ(d.line, 12);
    }
    if (d.message.find("in source only") != std::string::npos)
      saw_unregistered = true;
  }
  EXPECT_TRUE(saw_stale);
  EXPECT_TRUE(saw_unregistered);
}

TEST(LintRules, NoRegistryMeansNoDriftRule) {
  const auto diags = lint("class A { void run() { LOG.info(\"x\"); } }");
  EXPECT_EQ(count_rule(diags, kRuleRegistrySourceDrift), 0u);
}

TEST(LintRules, DiagnosticsAreSorted) {
  auto diags = lint(R"(
void z() { log.error("later orphan"); }
void a() { log.error("early orphan"); }
)");
  for (std::size_t i = 1; i < diags.size(); ++i) {
    EXPECT_LE(std::tie(diags[i - 1].file, diags[i - 1].line),
              std::tie(diags[i].file, diags[i].line));
  }
}

// ---- Fixture suite: every seeded violation flagged with the expected rule
// id and severity, and the clean fixture stays clean. ------------------------

struct FixtureExpectation {
  const char* file;
  std::string_view rule;
  Severity severity;
};

TEST(LintFixtures, SeededViolationsAreFlagged) {
  const FixtureExpectation expectations[] = {
      {"duplicate_template.java", kRuleDuplicateTemplate, Severity::kError},
      {"stage_without_log_points.cc", kRuleStageWithoutLogPoints,
       Severity::kWarning},
      {"dynamic_only.java", kRuleDynamicOnlyTemplate, Severity::kError},
      {"outside_stage.cc", kRuleLogPointOutsideStage, Severity::kWarning},
      {"unmarked_dequeue.java", kRuleUnmarkedDequeueSite, Severity::kNote},
      {"fl007_unreachable.java", kRuleUnreachableLogPoint, Severity::kError},
      {"fl008_blind_branch.java", kRuleBranchWithoutLogCoverage,
       Severity::kWarning},
      {"fl009_error_only.java", kRuleErrorPathOnlyLogging, Severity::kWarning},
      {"fl010_loop_carried.java", kRuleLoopCarriedLogPoint, Severity::kNote},
  };
  for (const auto& expect : expectations) {
    const std::string path =
        std::string(SAAD_LINT_FIXTURE_DIR "/") + expect.file;
    const auto run = run_lint({path}, nullptr, nullptr);
    ASSERT_TRUE(run.errors.empty()) << path;
    const auto* d = find_diag(run.fresh, expect.rule);
    ASSERT_NE(d, nullptr) << path << " should trigger " << expect.rule;
    EXPECT_EQ(d->severity, expect.severity) << path;
    EXPECT_EQ(d->file, path);
    EXPECT_GT(d->line, 0) << path;
  }
}

TEST(LintFixtures, CleanFixtureHasNoFindings) {
  const auto run =
      run_lint({SAAD_LINT_FIXTURE_DIR "/clean.java"}, nullptr, nullptr);
  ASSERT_TRUE(run.errors.empty());
  EXPECT_TRUE(run.fresh.empty())
      << render_text(run) << "clean.java must stay clean";
}

TEST(LintFixtures, FlowCleanFixtureHasNoFindings) {
  const auto run =
      run_lint({SAAD_LINT_FIXTURE_DIR "/flow_clean.java"}, nullptr, nullptr);
  ASSERT_TRUE(run.errors.empty());
  EXPECT_TRUE(run.fresh.empty())
      << render_text(run) << "flow_clean.java must stay clean";
}

TEST(LintFixtures, DirectoryScanFindsEveryRuleOnce) {
  const auto run = run_lint({SAAD_LINT_FIXTURE_DIR}, nullptr, nullptr);
  ASSERT_TRUE(run.errors.empty());
  EXPECT_EQ(run.files.size(), 11u);
  EXPECT_EQ(count_rule(run.fresh, kRuleDuplicateTemplate), 1u);
  EXPECT_EQ(count_rule(run.fresh, kRuleDynamicOnlyTemplate), 1u);
  EXPECT_EQ(count_rule(run.fresh, kRuleLogPointOutsideStage), 1u);
  EXPECT_EQ(count_rule(run.fresh, kRuleUnmarkedDequeueSite), 1u);
  EXPECT_EQ(count_rule(run.fresh, kRuleStageWithoutLogPoints), 1u);
  EXPECT_EQ(count_rule(run.fresh, kRuleUnreachableLogPoint), 1u);
  EXPECT_EQ(count_rule(run.fresh, kRuleBranchWithoutLogCoverage), 1u);
  EXPECT_EQ(count_rule(run.fresh, kRuleErrorPathOnlyLogging), 1u);
  EXPECT_EQ(count_rule(run.fresh, kRuleLoopCarriedLogPoint), 1u);
}

}  // namespace
}  // namespace saad::lint
