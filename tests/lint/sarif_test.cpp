#include "lint/sarif.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string_view>

namespace saad::lint {
namespace {

// ---- Minimal strict JSON well-formedness parser ----------------------------
// Enough of RFC 8259 to reject anything structurally broken the emitters
// could plausibly produce (unbalanced braces, bad escapes, trailing commas,
// unquoted keys). Returns true iff `text` is exactly one valid JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') return ++pos_, true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<std::size_t>(i) >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    text_[pos_ + static_cast<std::size_t>(i)]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::vector<Diagnostic> sample_diagnostics() {
  Diagnostic a;
  a.rule_id = std::string(kRuleDuplicateTemplate);
  a.severity = Severity::kError;
  a.file = "src/x.java";
  a.line = 12;
  a.column = 5;
  a.message = "duplicate log template \"weird \\ chars\n and tabs\t\"";
  a.fixit = "rename it";
  a.content_key = "weird \\ chars\n and tabs\t";

  Diagnostic b;
  b.rule_id = std::string(kRuleUnmarkedDequeueSite);
  b.severity = Severity::kNote;
  b.file = "src/y.cc";
  b.line = 3;
  b.message = "dequeue";
  b.content_key = "q.take()";
  return {a, b};
}

TEST(JsonChecker, SanityOnHandWrittenCases) {
  EXPECT_TRUE(JsonChecker(R"({"a": [1, 2.5, -3e4], "b": {"c": null}})").valid());
  EXPECT_TRUE(JsonChecker(R"(["é", "\n", true, false])").valid());
  EXPECT_FALSE(JsonChecker(R"({"a": 1,})").valid());   // trailing comma
  EXPECT_FALSE(JsonChecker(R"({"a" 1})").valid());     // missing colon
  EXPECT_FALSE(JsonChecker(R"({"a": "unterminated})").valid());
  EXPECT_FALSE(JsonChecker(R"([1, 2)").valid());       // unbalanced
  EXPECT_FALSE(JsonChecker("{\"a\": \"bad \\x escape\"}").valid());
  EXPECT_FALSE(JsonChecker(R"({"a": 1} trailing)").valid());
}

TEST(Sarif, JsonOutputIsWellFormed) {
  EXPECT_TRUE(JsonChecker(to_json(sample_diagnostics())).valid());
  EXPECT_TRUE(JsonChecker(to_json({})).valid());
}

TEST(Sarif, JsonCarriesEveryField) {
  const auto json = to_json(sample_diagnostics());
  EXPECT_NE(json.find("\"rule\":\"SAAD-LP001\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":12"), std::string::npos);
  EXPECT_NE(json.find("\"fixit\":\"rename it\""), std::string::npos);
}

TEST(Sarif, SarifOutputIsWellFormedJson) {
  EXPECT_TRUE(JsonChecker(to_sarif(sample_diagnostics())).valid());
  EXPECT_TRUE(JsonChecker(to_sarif({})).valid());
}

TEST(Sarif, SarifHasRequiredSchemaElements) {
  const auto sarif = to_sarif(sample_diagnostics());
  // Top-level sarifLog requirements (§3.13): version + runs.
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"runs\""), std::string::npos);
  // run.tool.driver with the full rule catalog.
  EXPECT_NE(sarif.find("\"name\": \"saad_lint\""), std::string::npos);
  for (const auto& rule : rule_catalog())
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(rule.id) + "\""),
              std::string::npos)
        << rule.id;
  // results with level, message.text and a physical location.
  EXPECT_NE(sarif.find("\"ruleId\": \"SAAD-LP001\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/x.java\""), std::string::npos);
  EXPECT_NE(sarif.find("partialFingerprints"), std::string::npos);
}

TEST(Sarif, ControlCharactersAreEscaped) {
  Diagnostic d;
  d.rule_id = "SAAD-LP001";
  d.file = "f.cc";
  d.line = 1;
  d.message = std::string("ctl:\x01 done", 10);
  const auto json = to_json({d});
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
}

}  // namespace
}  // namespace saad::lint
