#include "core/tracker.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/log_registry.h"
#include "core/logger.h"

namespace saad::core {
namespace {

struct TrackerFixture : ::testing::Test {
  ManualClock clock;
  std::vector<Synopsis> emitted;
  TaskExecutionTracker tracker{4, &clock,
                               [this](const Synopsis& s) { emitted.push_back(s); }};
};

TEST_F(TrackerFixture, ExplicitTaskLifecycle) {
  clock.set(1000);
  auto task = tracker.begin_task(7);
  clock.set(1500);
  task->on_log(3, clock.now());
  clock.set(2200);
  task->on_log(3, clock.now());
  task->on_log(5, clock.now());
  tracker.end_task(std::move(task));

  ASSERT_EQ(emitted.size(), 1u);
  const Synopsis& s = emitted[0];
  EXPECT_EQ(s.host, 4);
  EXPECT_EQ(s.stage, 7);
  EXPECT_EQ(s.start, 1000);
  EXPECT_EQ(s.duration, 1200);  // last log at 2200
  ASSERT_EQ(s.log_points.size(), 2u);
  EXPECT_EQ(s.log_points[0], (LogPointCount{3, 2}));
  EXPECT_EQ(s.log_points[1], (LogPointCount{5, 1}));
}

TEST_F(TrackerFixture, TaskWithNoLogsHasZeroDuration) {
  auto task = tracker.begin_task(1);
  clock.advance(5000);
  tracker.end_task(std::move(task));
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].duration, 0);
  EXPECT_TRUE(emitted[0].log_points.empty());
}

TEST_F(TrackerFixture, UidsAreUniqueAndIncreasing) {
  auto a = tracker.begin_task(1);
  auto b = tracker.begin_task(1);
  EXPECT_NE(a->uid(), b->uid());
  tracker.end_task(std::move(a));
  tracker.end_task(std::move(b));
  EXPECT_EQ(tracker.tasks_completed(), 2u);
}

TEST_F(TrackerFixture, BindingRoutesLoggerCalls) {
  LogRegistry reg;
  const StageId st = reg.register_stage("S");
  const LogPointId p = reg.register_log_point(st, Level::kInfo, "hello");
  NullSink sink;
  Logger logger(&reg, &sink, Level::kInfo);
  logger.set_tracker(&tracker);

  auto task = tracker.begin_task(st);
  {
    TaskBinding bind(tracker, task.get());
    logger.log(p, "hello world");
  }
  tracker.end_task(std::move(task));
  ASSERT_EQ(emitted.size(), 1u);
  ASSERT_EQ(emitted[0].log_points.size(), 1u);
  EXPECT_EQ(emitted[0].log_points[0].point, p);
}

TEST_F(TrackerFixture, UnboundLogsAreCountedNotAttributed) {
  tracker.on_log(9);
  EXPECT_EQ(tracker.unattributed_logs(), 1u);
  EXPECT_TRUE(emitted.empty());
}

TEST_F(TrackerFixture, SetContextClosesPreviousTask) {
  // Producer-consumer inference: a thread starting task N+1 terminates task N.
  tracker.set_context(1);
  tracker.on_log(10);
  tracker.set_context(1);  // closes the first task
  tracker.on_log(11);
  tracker.end_context();

  ASSERT_EQ(emitted.size(), 2u);
  EXPECT_EQ(emitted[0].log_points[0].point, 10);
  EXPECT_EQ(emitted[1].log_points[0].point, 11);
}

TEST_F(TrackerFixture, EndContextIsIdempotent) {
  tracker.set_context(2);
  tracker.end_context();
  tracker.end_context();
  EXPECT_EQ(emitted.size(), 1u);
}

TEST_F(TrackerFixture, ThreadExitFlushesPendingTask) {
  // Dispatcher-worker inference: worker thread dies -> synopsis emitted
  // (the paper's finalizer trick; here, thread_local RAII).
  std::thread worker([this] {
    tracker.set_context(3);
    tracker.on_log(1);
    // no end_context: the thread exits with an open task
  });
  worker.join();
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].stage, 3);
}

TEST_F(TrackerFixture, ConcurrentThreadsProduceAllSynopses) {
  constexpr int kThreads = 8;
  constexpr int kTasksPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this] {
      for (int i = 0; i < kTasksPerThread; ++i) {
        tracker.set_context(1);
        tracker.on_log(5);
        tracker.end_context();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(emitted.size(),
            static_cast<std::size_t>(kThreads * kTasksPerThread));
  EXPECT_EQ(tracker.tasks_completed(),
            static_cast<std::uint64_t>(kThreads * kTasksPerThread));
}

TEST_F(TrackerFixture, LogPointCountsAccumulate) {
  auto task = tracker.begin_task(1);
  for (int i = 0; i < 57; ++i) task->on_log(2, clock.now());
  tracker.end_task(std::move(task));
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].log_points[0].count, 57u);
}

}  // namespace
}  // namespace saad::core
