#include "core/source_scan.h"

#include <gtest/gtest.h>

namespace saad::core {
namespace {

constexpr const char* kJavaSource = R"java(
package org.apache.hadoop.hdfs;

class DataXceiver implements Runnable {
  public void run() {
    LOG.info("Receiving block blk_" + blockId);
    while ((pkt = getNextPacket()) != null) {
      log.debug("Receiving one packet for blk_" + blockId);
      if (pkt.size() == 0) {
        log.warn("Receiving empty packet for blk_" + blockId);
        continue;
      }
      log.debug("WriteTo blockfile of size " + pkt.size());
    }
    LOG.info("Closing down.");
  }
}

class Handler {
  void serve() {
    Call call = queue.take();   // consumer stage begins here
    // log.debug("this one is commented out");
    dispatch(call);
  }
}
)java";

TEST(SourceScan, FindsRunnableStages) {
  const auto result = scan_source(kJavaSource, "DataXceiver.java");
  ASSERT_EQ(result.stages.size(), 1u);
  EXPECT_EQ(result.stages[0].name, "DataXceiver");
  EXPECT_FALSE(result.stages[0].explicit_marker);
  EXPECT_EQ(result.stages[0].file, "DataXceiver.java");
}

TEST(SourceScan, FindsLogPointsWithLevelsAndTemplates) {
  const auto result = scan_source(kJavaSource, "DataXceiver.java");
  ASSERT_EQ(result.log_points.size(), 5u);
  EXPECT_EQ(result.log_points[0].level, "info");
  EXPECT_EQ(result.log_points[0].template_text, "Receiving block blk_");
  EXPECT_EQ(result.log_points[1].level, "debug");
  EXPECT_EQ(result.log_points[2].level, "warn");
  EXPECT_EQ(result.log_points[4].template_text, "Closing down.");
  // Attributed to the enclosing class.
  EXPECT_EQ(result.log_points[0].stage, "DataXceiver");
}

TEST(SourceScan, SkipsCommentedStatements) {
  const auto result = scan_source(kJavaSource, "f.java");
  for (const auto& point : result.log_points)
    EXPECT_EQ(point.template_text.find("commented"), std::string::npos);
}

TEST(SourceScan, PresentsDequeueSitesForManualInspection) {
  const auto result = scan_source(kJavaSource, "f.java");
  ASSERT_EQ(result.dequeue_sites.size(), 1u);
  EXPECT_NE(result.dequeue_sites[0].text.find("queue.take()"),
            std::string::npos);
}

TEST(SourceScan, ExplicitStageMarker) {
  const auto result = scan_source(
      "void setup() { SAAD_STAGE(\"CommitLog\"); }", "x.cc");
  ASSERT_EQ(result.stages.size(), 1u);
  EXPECT_EQ(result.stages[0].name, "CommitLog");
  EXPECT_TRUE(result.stages[0].explicit_marker);
}

TEST(SourceScan, RequiresLogReceiver) {
  // `.info(` on a non-logger receiver must not be picked up.
  const auto result =
      scan_source("metadata.info(\"not a log statement\");", "x.cc");
  EXPECT_TRUE(result.log_points.empty());
}

TEST(SourceScan, HandlesEscapedQuotes) {
  const auto result =
      scan_source("log.info(\"quoted \\\"name\\\" here\");", "x.cc");
  ASSERT_EQ(result.log_points.size(), 1u);
  EXPECT_EQ(result.log_points[0].template_text, "quoted \"name\" here");
}

TEST(SourceScan, MergeAccumulates) {
  ScanResult a = scan_source(kJavaSource, "a.java");
  ScanResult b = scan_source(kJavaSource, "b.java");
  const auto stages = a.stages.size();
  merge(a, std::move(b));
  EXPECT_EQ(a.stages.size(), 2 * stages);
}

TEST(SourceScan, GeneratedRegistrationCompilesLogically) {
  const auto result = scan_source(kJavaSource, "DataXceiver.java");
  const auto code = generate_registration(result);
  // Structural checks: struct members + registration calls per discovery.
  EXPECT_NE(code.find("struct Stages"), std::string::npos);
  EXPECT_NE(code.find("struct LogPoints"), std::string::npos);
  EXPECT_NE(code.find("register_stage(\"DataXceiver\")"), std::string::npos);
  EXPECT_NE(code.find("register_log_point(stages.dataxceiver"),
            std::string::npos);
  EXPECT_NE(code.find("Level::kWarn"), std::string::npos);
  EXPECT_NE(code.find("\"Closing down.\""), std::string::npos);
  // Every template becomes exactly one registration call.
  std::size_t count = 0, pos = 0;
  while ((pos = code.find("register_log_point(", pos)) != std::string::npos) {
    count++;
    pos++;
  }
  EXPECT_EQ(count, result.log_points.size());
}

TEST(SourceScan, EmptySourceYieldsNothing) {
  const auto result = scan_source("", "empty.cc");
  EXPECT_TRUE(result.stages.empty());
  EXPECT_TRUE(result.log_points.empty());
  EXPECT_TRUE(result.dequeue_sites.empty());
}

// ---- Span-aware scanning edge cases ----------------------------------------

TEST(SourceScan, MultiLineLogStatement) {
  const auto result = scan_source(
      "class W implements Runnable {\n"
      "  public void run() {\n"
      "    LOG.info(\n"
      "        \"spread over lines\",\n"
      "        details);\n"
      "  }\n"
      "}\n",
      "w.java");
  ASSERT_EQ(result.log_points.size(), 1u);
  EXPECT_EQ(result.log_points[0].template_text, "spread over lines");
  EXPECT_EQ(result.log_points[0].line, 3);
  EXPECT_EQ(result.log_points[0].end_line, 5);
  EXPECT_EQ(result.log_points[0].stage, "W");
}

TEST(SourceScan, AdjacentStringLiteralsConcatenate) {
  const auto result = scan_source(
      "log.warn(\"part one \"\n"
      "         \"part two\");",
      "x.cc");
  ASSERT_EQ(result.log_points.size(), 1u);
  EXPECT_EQ(result.log_points[0].template_text, "part one part two");
}

TEST(SourceScan, DynamicSuffixDoesNotExtendTemplate) {
  const auto result =
      scan_source("log.info(\"prefix \" + count + \" suffix\");", "x.cc");
  ASSERT_EQ(result.log_points.size(), 1u);
  EXPECT_EQ(result.log_points[0].template_text, "prefix ");
}

TEST(SourceScan, DynamicOnlyCallIsRecordedAndFlagged) {
  const auto result = scan_source("log.info(status());", "x.cc");
  ASSERT_EQ(result.log_points.size(), 1u);
  EXPECT_TRUE(result.log_points[0].dynamic_only);
  EXPECT_TRUE(result.log_points[0].template_text.empty());
}

TEST(SourceScan, IgnoresMatchesInsideComments) {
  const auto result = scan_source(
      "// log.info(\"line comment\");\n"
      "/* log.warn(\"block comment\");\n"
      "   SAAD_STAGE(\"CommentedStage\")\n"
      "   queue.take(); */\n"
      "/** log.error(\"javadoc\"); */\n",
      "c.cc");
  EXPECT_TRUE(result.log_points.empty());
  EXPECT_TRUE(result.stages.empty());
  EXPECT_TRUE(result.dequeue_sites.empty());
}

TEST(SourceScan, IgnoresMatchesInsideStringLiterals) {
  const auto result = scan_source(
      "String s = \"log.info(\\\"fake\\\") and queue.take()\";\n"
      "String t = \"SAAD_STAGE(\\\"NotReal\\\")\";\n",
      "s.java");
  EXPECT_TRUE(result.log_points.empty());
  EXPECT_TRUE(result.stages.empty());
  EXPECT_TRUE(result.dequeue_sites.empty());
}

TEST(SourceScan, StageMarkerWithUnusualWhitespace) {
  const auto result = scan_source(
      "void a() { SAAD_STAGE   (   \"Spaced\"   ); }\n"
      "void b() { SAAD_STAGE(\n"
      "    \"Wrapped\"); }\n"
      "void c() { saad_stage(\"lowercase\"); }\n",
      "x.cc");
  ASSERT_EQ(result.stages.size(), 3u);
  EXPECT_EQ(result.stages[0].name, "Spaced");
  EXPECT_EQ(result.stages[1].name, "Wrapped");
  EXPECT_EQ(result.stages[2].name, "lowercase");
  for (const auto& stage : result.stages) EXPECT_TRUE(stage.explicit_marker);
}

TEST(SourceScan, ArrowReceiverAndColumns) {
  const auto result = scan_source("  logger->error(\"disk failed\");", "a.cc");
  ASSERT_EQ(result.log_points.size(), 1u);
  EXPECT_EQ(result.log_points[0].level, "error");
  EXPECT_EQ(result.log_points[0].line, 1);
  EXPECT_EQ(result.log_points[0].column, 3);  // "logger" starts at column 3
}

TEST(SourceScan, StageAttributionEndsWithClassBody) {
  const auto result = scan_source(
      "class Inner implements Runnable {\n"
      "  public void run() { LOG.info(\"inside\"); }\n"
      "}\n"
      "void free() { LOG.info(\"outside\"); }\n",
      "x.java");
  ASSERT_EQ(result.log_points.size(), 2u);
  EXPECT_EQ(result.log_points[0].stage, "Inner");
  EXPECT_EQ(result.log_points[1].stage, "");  // class scope closed
}

TEST(SourceScan, ForwardDeclarationDoesNotOpenScope) {
  const auto result = scan_source(
      "class Fwd;\n"
      "void f() { log.info(\"not in Fwd\"); }\n",
      "x.cc");
  ASSERT_EQ(result.log_points.size(), 1u);
  EXPECT_EQ(result.log_points[0].stage, "");
}

TEST(SourceScan, DequeueSiteWithWhitespaceBeforeParen) {
  const auto result = scan_source("Call c = queue.take ();", "x.java");
  ASSERT_EQ(result.dequeue_sites.size(), 1u);
  EXPECT_EQ(result.dequeue_sites[0].column, 15);  // the '.' before take
}

// ---- Regressions surfaced by the stage-flow CFG builder --------------------

TEST(SourceScan, TemplateParameterIsNotAClass) {
  // `class T` / `class U = X` inside template parameters must not open a
  // stage scope — the log point below belongs to the real enclosing struct.
  const auto result = scan_source(
      "template <class T, class U = T, int N = 3>\n"
      "struct RingBuffer {\n"
      "  void run() { log.info(\"ring buffer drained one slot\"); }\n"
      "};\n",
      "x.cc");
  ASSERT_EQ(result.stages.size(), 1u);
  EXPECT_EQ(result.stages[0].name, "RingBuffer");
  ASSERT_EQ(result.log_points.size(), 1u);
  EXPECT_EQ(result.log_points[0].stage, "RingBuffer");
}

TEST(SourceScan, StructOpensAStageScope) {
  const auto result = scan_source(
      "struct Compactor {\n"
      "  void run() { log.info(\"compaction pass\"); }\n"
      "};\n",
      "x.cc");
  ASSERT_EQ(result.stages.size(), 1u);
  EXPECT_EQ(result.stages[0].name, "Compactor");
  ASSERT_EQ(result.log_points.size(), 1u);
  EXPECT_EQ(result.log_points[0].stage, "Compactor");
}

TEST(SourceScan, LambdaBracesDoNotBreakAttribution) {
  // The lambda body nests one brace deeper than the class body; its log
  // point still belongs to the class, and the class scope survives past the
  // lambda's closing brace.
  const auto result = scan_source(
      "class Pool {\n"
      "  void run() {\n"
      "    auto flush = [&]() { log.info(\"pool flushed one shard\"); };\n"
      "    flush();\n"
      "    log.info(\"pool pass done\");\n"
      "  }\n"
      "};\n"
      "void free_fn() { log.info(\"outside pool\"); }\n",
      "x.cc");
  ASSERT_EQ(result.log_points.size(), 3u);
  EXPECT_EQ(result.log_points[0].stage, "Pool");
  EXPECT_EQ(result.log_points[1].stage, "Pool");
  EXPECT_EQ(result.log_points[2].stage, "");
}

TEST(SourceScan, SwitchCasesKeepAttributionAndOrder) {
  const auto result = scan_source(
      "class Router {\n"
      "  void run() {\n"
      "    switch (kind) {\n"
      "      case READ: log.debug(\"read op\"); break;\n"
      "      case WRITE: { log.debug(\"write op\"); break; }\n"
      "      default: log.warn(\"unknown op\");\n"
      "    }\n"
      "    log.info(\"routed one op\");\n"
      "  }\n"
      "};\n",
      "x.cc");
  ASSERT_EQ(result.log_points.size(), 4u);
  for (const auto& point : result.log_points)
    EXPECT_EQ(point.stage, "Router");
  EXPECT_EQ(result.log_points[2].level, "warn");
  EXPECT_EQ(result.log_points[3].template_text, "routed one op");
}

TEST(SourceScan, ElseIfChainSpansStayInOrder) {
  // An else-if chain with a multi-line call: every point attributed, lines
  // strictly increasing, and the wrapped call's span covers both lines.
  const auto result = scan_source(
      "class Triage {\n"
      "  void run() {\n"
      "    if (a) {\n"
      "      log.info(\"fast path\");\n"
      "    } else if (b) {\n"
      "      log.info(\"slow path \" +\n"
      "               detail());\n"
      "    } else {\n"
      "      log.warn(\"fallback path\");\n"
      "    }\n"
      "  }\n"
      "};\n",
      "x.cc");
  ASSERT_EQ(result.log_points.size(), 3u);
  EXPECT_LT(result.log_points[0].line, result.log_points[1].line);
  EXPECT_LT(result.log_points[1].line, result.log_points[2].line);
  EXPECT_EQ(result.log_points[1].line, 6);
  EXPECT_EQ(result.log_points[1].end_line, 7);
  for (const auto& point : result.log_points)
    EXPECT_EQ(point.stage, "Triage");
}

}  // namespace
}  // namespace saad::core
