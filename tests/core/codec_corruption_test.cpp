// Corruption / fuzz suite for every binary codec: varint, synopsis,
// trace v1, trace v2, and the model image. The contract under test is
// uniform: random byte mutations and truncations must decode to a clean
// error (or skip, for framed traces) — never crash, never OOM, never
// fabricate records. Runs under the asan preset in CI (ctest -L corruption).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>

#include "common/crc32c.h"
#include "common/rng.h"
#include "core/model.h"
#include "core/trace_io.h"
#include "core/varint.h"
#include "testutil/temp_dir.h"

namespace saad::core {
namespace {

namespace fs = std::filesystem;

std::vector<Synopsis> sample_trace(std::size_t n, std::uint64_t seed) {
  saad::Rng rng(seed);
  std::vector<Synopsis> trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Synopsis s;
    s.host = static_cast<HostId>(rng.next_below(4));
    s.stage = static_cast<StageId>(rng.next_below(8));
    s.uid = i;
    s.start = static_cast<UsTime>(rng.next_below(minutes(5)));
    s.duration = static_cast<UsTime>(rng.next_below(sec(1)));
    LogPointId prev = 0;
    const std::size_t points = 1 + rng.next_below(5);
    for (std::size_t p = 0; p < points; ++p) {
      prev = static_cast<LogPointId>(prev + 1 + rng.next_below(9));
      s.log_points.push_back(
          {prev, static_cast<std::uint32_t>(1 + rng.next_below(9))});
    }
    trace.push_back(std::move(s));
  }
  return trace;
}

void mutate(std::vector<std::uint8_t>& bytes, saad::Rng& rng) {
  if (bytes.empty()) return;
  const std::size_t flips = 1 + rng.next_below(4);
  for (std::size_t f = 0; f < flips; ++f)
    bytes[rng.next_below(bytes.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
}

// ---- crc32c ----------------------------------------------------------------

TEST(Crc32c, KnownAnswerAndChaining) {
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  // The canonical CRC32C check value (iSCSI test vector).
  EXPECT_EQ(crc32c(digits), 0xE3069283u);
  EXPECT_EQ(crc32c({}), 0u);
  // Chained halves equal the one-shot sum.
  const auto first = crc32c(std::span(digits, 4));
  EXPECT_EQ(crc32c(std::span(digits + 4, 5), first), crc32c(digits));
  // Any single-bit flip changes the sum.
  auto copy = std::vector<std::uint8_t>(digits, digits + sizeof(digits));
  copy[3] ^= 0x10;
  EXPECT_NE(crc32c(copy), crc32c(digits));
}

// ---- varint ----------------------------------------------------------------

TEST(VarintCorruption, TenthByteOverflowRejected) {
  // 9 continuation bytes leave one bit of the u64; a 10th byte above 1
  // encodes bits 65+ which the seed decoder silently dropped.
  std::vector<std::uint8_t> overflow(9, 0xFF);
  overflow.push_back(0x7F);
  std::span<const std::uint8_t> in(overflow);
  std::uint64_t v = 0;
  EXPECT_FALSE(get_varint(in, v));

  std::vector<std::uint8_t> max_ok(9, 0xFF);
  max_ok.push_back(0x01);
  in = max_ok;
  ASSERT_TRUE(get_varint(in, v));
  EXPECT_EQ(v, ~0ull);
  EXPECT_TRUE(in.empty());

  // An 11th byte (continuation set on the 10th) is also malformed.
  std::vector<std::uint8_t> eleven(10, 0xFF);
  eleven.push_back(0x00);
  in = eleven;
  EXPECT_FALSE(get_varint(in, v));
}

TEST(VarintCorruption, EdgeValuesRoundTrip) {
  for (const std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, (1ull << 32) - 1,
        1ull << 32, (1ull << 63) - 1, 1ull << 63, ~0ull}) {
    std::vector<std::uint8_t> buf;
    put_varint(v, buf);
    EXPECT_EQ(buf.size(), varint_size(v));
    std::span<const std::uint8_t> in(buf);
    std::uint64_t decoded = 0;
    ASSERT_TRUE(get_varint(in, decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(in.empty());
    // Every strict prefix is truncated input.
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
      std::span<const std::uint8_t> prefix(buf.data(), cut);
      EXPECT_FALSE(get_varint(prefix, decoded));
    }
  }
}

TEST(VarintCorruption, RandomBytesNeverCrash) {
  saad::Rng rng(21);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> buf(rng.next_below(16));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
    std::span<const std::uint8_t> in(buf);
    std::uint64_t v = 0;
    if (get_varint(in, v)) {
      // Whatever decoded must re-encode to at most the consumed length
      // (overlong-but-in-range encodings are accepted).
      EXPECT_LE(varint_size(v), buf.size() - in.size());
    }
  }
}

// ---- synopsis --------------------------------------------------------------

TEST(SynopsisCorruption, MutatedRecordsDecodeToErrorOrValidRecord) {
  saad::Rng rng(22);
  const auto originals = sample_trace(50, 22);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> buf;
    encode_synopsis(originals[trial % originals.size()], buf);
    mutate(buf, rng);
    std::span<const std::uint8_t> in(buf);
    Synopsis s;
    if (decode_synopsis(in, s)) {
      // A successful decode must re-encode without crashing and within the
      // codec's own bounds (counts and ids were range-checked).
      std::vector<std::uint8_t> rebuf;
      encode_synopsis(s, rebuf);
      EXPECT_LE(s.log_points.size(), 0x10000u);
    }
  }
}

TEST(SynopsisCorruption, TruncationsAlwaysFail) {
  const auto originals = sample_trace(20, 23);
  for (const auto& s : originals) {
    std::vector<std::uint8_t> buf;
    encode_synopsis(s, buf);
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
      std::span<const std::uint8_t> in(buf.data(), cut);
      Synopsis out;
      EXPECT_FALSE(decode_synopsis(in, out));
    }
  }
}

// ---- trace v1 --------------------------------------------------------------

TEST(TraceCorruption, V1MutationsNeverCrashAndNeverReject) {
  saad::Rng rng(24);
  const auto trace = sample_trace(40, 24);
  const auto pristine = encode_trace(trace);
  for (int trial = 0; trial < 500; ++trial) {
    auto bytes = pristine;
    mutate(bytes, rng);
    TraceStats stats;
    const auto decoded = decode_trace(bytes, &stats);
    if (decoded.has_value()) {
      // Magic intact: some prefix (possibly empty) was recovered.
      EXPECT_LE(stats.bytes_discarded, bytes.size());
    }
  }
}

// ---- trace v2 --------------------------------------------------------------

class TraceV2Corruption : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest -j runs each TEST_F as its own process against the shared temp
    // dir, so the path must be unique per test or the two fixtures race on
    // it; TempDir bakes suite/test/pid into the directory name.
    path_ = tmp_.path("fuzz_v2.trc");
    trace_ = sample_trace(120, 25);
    TraceWriter::Options options;
    options.block_bytes = 512;
    options.atomic_finalize = false;
    TraceWriter writer(path_, options);
    for (const auto& s : trace_) ASSERT_TRUE(writer.append(s));
    ASSERT_TRUE(writer.finalize());
    pristine_ = read(path_);
    for (const auto& s : trace_) {
      std::vector<std::uint8_t> buf;
      encode_synopsis(s, buf);
      encodings_.insert(buf);
    }
  }
  std::vector<std::uint8_t> read(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(f)),
                                     std::istreambuf_iterator<char>());
  }
  void write(std::span<const std::uint8_t> bytes) {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  }

  // True iff `s` is bit-identical to one of the written synopses.
  bool is_genuine(const Synopsis& s) const {
    std::vector<std::uint8_t> buf;
    encode_synopsis(s, buf);
    return encodings_.count(buf) > 0;
  }

  testutil::TempDir tmp_;
  std::string path_;
  std::vector<Synopsis> trace_;
  std::vector<std::uint8_t> pristine_;
  std::set<std::vector<std::uint8_t>> encodings_;
};

TEST_F(TraceV2Corruption, MutationsNeverCrashOrFabricateRecords) {
  saad::Rng rng(26);
  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = pristine_;
    mutate(bytes, rng);
    write(bytes);
    TraceReader reader(path_);
    Synopsis s;
    std::size_t recovered = 0;
    while (reader.next(s)) {
      // CRC32C gates every block: damage is skipped, so whatever comes
      // through is a record we actually wrote.
      ASSERT_TRUE(is_genuine(s)) << "trial " << trial;
      ++recovered;
    }
    EXPECT_LE(recovered, trace_.size());
  }
}

TEST_F(TraceV2Corruption, EveryTruncationRecoversOnlyGenuineRecords) {
  for (std::size_t cut = 0; cut <= pristine_.size();
       cut += 1 + cut % 13) {  // irregular stride over all offsets
    write(std::span(pristine_.data(), cut));
    TraceReader reader(path_);
    if (cut < 8) {
      EXPECT_FALSE(reader.ok()) << "cut=" << cut;
      continue;
    }
    Synopsis s;
    std::size_t i = 0;
    while (reader.next(s)) {
      ASSERT_LT(i, trace_.size());
      // Truncation must yield an exact prefix, in order.
      ASSERT_EQ(s, trace_[i]) << "cut=" << cut;
      ++i;
    }
  }
}

// ---- model -----------------------------------------------------------------

std::vector<Synopsis> model_trace(std::size_t n) {
  saad::Rng rng(27);
  std::vector<Synopsis> trace;
  for (std::size_t i = 0; i < n; ++i) {
    Synopsis s;
    s.stage = static_cast<StageId>(rng.next_below(3));
    s.duration = static_cast<UsTime>(rng.lognormal_median(ms(10), 0.2));
    s.log_points = rng.chance(0.01)
                       ? std::vector<LogPointCount>{{1, 1}, {3, 1}}
                       : std::vector<LogPointCount>{{1, 1}, {2, 2}};
    trace.push_back(std::move(s));
  }
  return trace;
}

TEST(ModelCorruption, MutationsNeverCrash) {
  saad::Rng rng(28);
  const OutlierModel model = OutlierModel::train(model_trace(20000));
  std::vector<std::uint8_t> pristine;
  model.save(pristine);
  ASSERT_TRUE(OutlierModel::load(pristine).has_value());
  for (int trial = 0; trial < 500; ++trial) {
    auto bytes = pristine;
    mutate(bytes, rng);
    (void)OutlierModel::load(bytes);  // error or valid — never crash
  }
}

// Hand-built minimal model image following the documented layout, so a
// single field can be poisoned precisely.
std::vector<std::uint8_t> craft_model(std::int64_t duration_threshold) {
  // resize+memcpy instead of insert(): GCC 12's -Wstringop-overflow
  // false-positives on range-insert into an empty vector.
  const char magic[8] = {'S', 'A', 'A', 'D', 'M', 'D', 'L', '1'};
  std::vector<std::uint8_t> out(sizeof(magic));
  std::memcpy(out.data(), magic, sizeof(magic));
  put_double(0.01, out);   // flow_share_threshold
  put_double(0.99, out);   // duration_quantile
  put_varint(5, out);      // kfold_k
  put_double(2.0, out);    // unstable_factor
  put_varint(50, out);     // min_signature_samples
  put_varint(100, out);    // trained_tasks
  put_varint(1, out);      // num_stages
  put_varint(3, out);      //   stage_id
  put_varint(100, out);    //   task_count
  put_double(0.0, out);    //   train_flow_outlier_rate
  put_varint(1, out);      //   num_signatures
  put_varint(1, out);      //     point count
  put_varint(4, out);      //     delta-encoded point
  put_varint(100, out);    //     task_count
  put_double(1.0, out);    //     share
  put_varint(3, out);      //     flags
  put_varint(zigzag(duration_threshold), out);
  put_double(0.0, out);    //     train_perf_outlier_rate
  return out;
}

TEST(ModelCorruption, NegativeDurationThresholdRejected) {
  // Sanity: the crafted image with a sane threshold loads...
  const auto valid = craft_model(ms(5));
  ASSERT_TRUE(OutlierModel::load(valid).has_value());
  // ...and the same image with a negative threshold is corruption.
  const auto poisoned = craft_model(-ms(5));
  EXPECT_FALSE(OutlierModel::load(poisoned).has_value());
}

TEST(ModelCorruption, TrailingGarbageRejected) {
  auto bytes = craft_model(ms(5));
  bytes.push_back(0x00);
  EXPECT_FALSE(OutlierModel::load(bytes).has_value());
}

}  // namespace
}  // namespace saad::core
