#include "core/detector.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace saad::core {
namespace {

Synopsis make_synopsis(StageId stage, std::vector<LogPointId> points,
                       UsTime start, UsTime duration, HostId host = 0) {
  Synopsis s;
  s.host = host;
  s.stage = stage;
  s.start = start;
  s.duration = duration;
  std::sort(points.begin(), points.end());
  for (auto p : points) {
    if (!s.log_points.empty() && s.log_points.back().point == p) {
      s.log_points.back().count++;
    } else {
      s.log_points.push_back({p, 1});
    }
  }
  return s;
}

struct DetectorFixture : ::testing::Test {
  OutlierModel model;
  saad::Rng rng{42};

  void SetUp() override {
    std::vector<Synopsis> trace;
    // Stage 0: common flow {1,2,4}, rare-but-known flow {1,2,3,4} (~0.5%),
    // durations lognormal around 10ms.
    for (int i = 0; i < 40000; ++i) {
      const bool rare = rng.next_double() < 0.005;
      const UsTime d = static_cast<UsTime>(rng.lognormal_median(ms(10), 0.15));
      trace.push_back(make_synopsis(
          0, rare ? std::vector<LogPointId>{1, 2, 3, 4}
                  : std::vector<LogPointId>{1, 2, 4},
          0, d));
    }
    model = OutlierModel::train(trace);
  }

  /// Fills one window with `n` normal tasks starting in window `w`.
  void add_normal(AnomalyDetector& det, std::size_t w, int n,
                  HostId host = 0) {
    for (int i = 0; i < n; ++i) {
      const UsTime start = static_cast<UsTime>(w) * det.config().window +
                           static_cast<UsTime>(i);
      const UsTime d = static_cast<UsTime>(rng.lognormal_median(ms(10), 0.15));
      det.ingest(make_synopsis(0, {1, 2, 4}, start, d, host));
    }
  }
};

TEST_F(DetectorFixture, QuietWindowProducesNoAnomalies) {
  AnomalyDetector det(&model);
  add_normal(det, 0, 500);
  const auto anomalies = det.advance_to(minutes(1));
  EXPECT_TRUE(anomalies.empty());
}

TEST_F(DetectorFixture, NewSignatureRaisesImmediateFlowAnomaly) {
  AnomalyDetector det(&model);
  add_normal(det, 0, 500);
  det.ingest(make_synopsis(0, {1, 2}, ms(1), ms(1)));  // premature exit flow
  const auto anomalies = det.advance_to(minutes(1));
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, AnomalyKind::kFlow);
  EXPECT_TRUE(anomalies[0].due_to_new_signature);
  EXPECT_EQ(anomalies[0].example_signature, Signature({1, 2}));
}

TEST_F(DetectorFixture, SurgeOfRareKnownSignatureRaisesFlowAnomaly) {
  AnomalyDetector det(&model);
  add_normal(det, 0, 500);
  // 20% of the window uses the rare-but-known flow vs ~0.5% in training.
  for (int i = 0; i < 125; ++i)
    det.ingest(make_synopsis(0, {1, 2, 3, 4}, ms(2) + i, ms(10)));
  const auto anomalies = det.advance_to(minutes(1));
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, AnomalyKind::kFlow);
  EXPECT_FALSE(anomalies[0].due_to_new_signature);
  EXPECT_LT(anomalies[0].p_value, 0.001);
}

TEST_F(DetectorFixture, BaselineRateOfRareSignatureDoesNotAlarm) {
  AnomalyDetector det(&model);
  add_normal(det, 0, 2000);
  // ~0.5% rare flow, same as training: no flow anomaly.
  for (int i = 0; i < 10; ++i)
    det.ingest(make_synopsis(0, {1, 2, 3, 4}, ms(3) + i, ms(10)));
  const auto anomalies = det.advance_to(minutes(1));
  EXPECT_TRUE(anomalies.empty());
}

TEST_F(DetectorFixture, SlowdownRaisesPerformanceAnomaly) {
  AnomalyDetector det(&model);
  add_normal(det, 0, 300);
  // 100 tasks at 3x the normal duration: way past the p99 threshold.
  for (int i = 0; i < 100; ++i)
    det.ingest(make_synopsis(0, {1, 2, 4}, ms(5) + i, ms(30)));
  const auto anomalies = det.advance_to(minutes(1));
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, AnomalyKind::kPerformance);
  EXPECT_LT(anomalies[0].p_value, 0.001);
  EXPECT_EQ(anomalies[0].example_signature, Signature({1, 2, 4}));
}

TEST_F(DetectorFixture, AnomaliesAreLocalizedPerHost) {
  AnomalyDetector det(&model);
  add_normal(det, 0, 400, /*host=*/1);
  add_normal(det, 0, 400, /*host=*/2);
  for (int i = 0; i < 100; ++i)
    det.ingest(make_synopsis(0, {1, 2, 4}, ms(5) + i, ms(30), /*host=*/2));
  const auto anomalies = det.advance_to(minutes(1));
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].host, 2);
}

TEST_F(DetectorFixture, WindowsCloseInOrderWithTimestamps) {
  AnomalyDetector det(&model);
  add_normal(det, 0, 100);
  add_normal(det, 1, 100);
  det.ingest(make_synopsis(0, {1, 2}, minutes(1) + ms(1), ms(1)));
  EXPECT_TRUE(det.advance_to(minutes(1)).empty());  // window 0 quiet
  const auto anomalies = det.advance_to(minutes(2));
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].window, 1u);
  EXPECT_EQ(anomalies[0].window_start, minutes(1));
}

TEST_F(DetectorFixture, AdvanceToPartialWindowProducesNothing) {
  AnomalyDetector det(&model);
  det.ingest(make_synopsis(0, {1, 2}, ms(1), ms(1)));
  EXPECT_TRUE(det.advance_to(sec(30)).empty());  // window still open
  const auto anomalies = det.finish();
  ASSERT_EQ(anomalies.size(), 1u);
}

TEST_F(DetectorFixture, LateSynopsisLandsInOldestOpenWindow) {
  AnomalyDetector det(&model);
  add_normal(det, 0, 50);
  (void)det.advance_to(minutes(1));  // window 0 closed
  // A task that *started* in window 0 but finished late must still count —
  // it is attributed to the oldest open window rather than dropped.
  det.ingest(make_synopsis(0, {1, 2}, ms(5), ms(100)));
  const auto anomalies = det.advance_to(minutes(2));
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].window, 1u);
}

TEST_F(DetectorFixture, DisablingNewSignatureRule) {
  DetectorConfig config;
  config.new_signature_is_anomaly = false;
  AnomalyDetector det(&model, config);
  add_normal(det, 0, 5000);
  det.ingest(make_synopsis(0, {1, 2}, ms(1), ms(1)));
  // One new signature among 5001 tasks: the proportion test does not fire
  // at this rate and the categorical rule is off.
  const auto anomalies = det.advance_to(minutes(1));
  EXPECT_TRUE(anomalies.empty());
}

TEST_F(DetectorFixture, FlowAndPerfAnomaliesCanCoexist) {
  AnomalyDetector det(&model);
  add_normal(det, 0, 300);
  for (int i = 0; i < 80; ++i)
    det.ingest(make_synopsis(0, {1, 2}, ms(2) + i, ms(1)));  // new flow
  for (int i = 0; i < 80; ++i)
    det.ingest(make_synopsis(0, {1, 2, 4}, ms(5) + i, ms(40)));  // slow
  const auto anomalies = det.advance_to(minutes(1));
  ASSERT_EQ(anomalies.size(), 2u);
  EXPECT_NE(anomalies[0].kind, anomalies[1].kind);
}

TEST_F(DetectorFixture, IngestedCountTracksSynopses) {
  AnomalyDetector det(&model);
  add_normal(det, 0, 42);
  EXPECT_EQ(det.ingested(), 42u);
}

}  // namespace
}  // namespace saad::core
