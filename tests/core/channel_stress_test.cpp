// Concurrency stress for the sharded synopsis channel and the analyzer
// pool. These run in the dedicated `saad_stress_tests` target (ctest label
// "stress") so they can be cranked up under -fsanitize=thread without
// slowing the plain unit suite.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "core/analyzer_pool.h"
#include "core/channel.h"

namespace saad::core {
namespace {

Synopsis sample(HostId host, TaskUid uid) {
  Synopsis s;
  s.host = host;
  s.stage = static_cast<StageId>(1 + uid % 7);
  s.uid = uid;
  s.start = static_cast<UsTime>(uid);
  s.log_points = {{1, 1}, {static_cast<LogPointId>(2 + uid % 5), 3}};
  return s;
}

TEST(ChannelStress, ProducersAgainstConcurrentDrainer) {
  constexpr int kProducers = 8;
  constexpr TaskUid kPerProducer = 10000;
  SynopsisChannel channel;

  std::uint64_t expected_bytes = 0;
  for (int t = 0; t < kProducers; ++t)
    for (TaskUid i = 0; i < kPerProducer; ++i)
      expected_bytes += encoded_size(
          sample(static_cast<HostId>(t), t * kPerProducer + i));

  std::atomic<int> running{kProducers};
  std::vector<Synopsis> drained;
  std::thread drainer([&] {
    // Keep draining while producers run; one final drain after they stop.
    while (running.load(std::memory_order_acquire) > 0) {
      channel.drain(drained);
      std::this_thread::yield();
    }
    channel.drain(drained);
  });

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&channel, &running, t] {
      auto handle = channel.producer();
      for (TaskUid i = 0; i < kPerProducer; ++i) {
        handle.push(sample(static_cast<HostId>(t), t * kPerProducer + i));
      }
      handle.flush();
      running.fetch_sub(1, std::memory_order_release);
    });
  }
  for (auto& p : producers) p.join();
  drainer.join();

  // No loss, no duplication.
  ASSERT_EQ(drained.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  std::set<TaskUid> uids;
  for (const auto& s : drained) uids.insert(s.uid);
  EXPECT_EQ(uids.size(), drained.size()) << "duplicated synopses";
  EXPECT_EQ(*uids.begin(), 0u);
  EXPECT_EQ(*uids.rbegin(), kProducers * kPerProducer - 1);

  // Wire accounting is exact once all producers have flushed.
  EXPECT_EQ(channel.pushed(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(channel.encoded_bytes(), expected_bytes);
}

TEST(ChannelStress, PerProducerOrderSurvivesConcurrency) {
  constexpr int kProducers = 4;
  constexpr TaskUid kPerProducer = 5000;
  SynopsisChannel channel;
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&channel, t] {
      // Direct push path: thread-hashed shard, strict per-thread FIFO.
      for (TaskUid i = 0; i < kPerProducer; ++i)
        channel.push(sample(static_cast<HostId>(t), t * kPerProducer + i));
    });
  }
  for (auto& p : producers) p.join();
  std::vector<Synopsis> out;
  channel.drain(out);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kProducers) * kPerProducer);
  std::vector<TaskUid> last(kProducers, 0);
  std::vector<bool> seen(kProducers, false);
  for (const auto& s : out) {
    const auto producer = static_cast<std::size_t>(s.uid / kPerProducer);
    if (seen[producer]) {
      EXPECT_LT(last[producer], s.uid);
    }
    seen[producer] = true;
    last[producer] = s.uid;
  }
}

TEST(ChannelStress, MixedBatchedAndDirectProducers) {
  constexpr TaskUid kEach = 8000;
  SynopsisChannel channel;
  std::thread batched([&channel] {
    auto handle = channel.producer();
    for (TaskUid i = 0; i < kEach; ++i) handle.push(sample(0, i));
  });
  std::thread direct([&channel] {
    for (TaskUid i = kEach; i < 2 * kEach; ++i) channel.push(sample(1, i));
  });
  batched.join();
  direct.join();
  std::vector<Synopsis> out;
  channel.drain(out);
  EXPECT_EQ(out.size(), 2 * kEach);
  EXPECT_EQ(channel.pushed(), 2 * kEach);
}

TEST(AnalyzerPoolStress, IngestAdvanceChurn) {
  // Exercise the worker fan-out under tsan: a trained-empty model makes
  // every synopsis a new-signature flow outlier, maximizing per-window work.
  const OutlierModel model = OutlierModel::train({});
  DetectorConfig config;
  config.window = sec(1);
  config.analyzer_threads = 8;
  AnalyzerPool pool(&model, config);
  EXPECT_EQ(pool.threads(), 8u);

  constexpr TaskUid kTotal = 40000;
  std::size_t anomalies = 0;
  for (TaskUid i = 0; i < kTotal; ++i) {
    Synopsis s = sample(static_cast<HostId>(i % 16), i);
    s.start = static_cast<UsTime>(i) * 100;  // 10k tasks per virtual second
    pool.ingest(s);
    if (i % 5000 == 4999)
      anomalies += pool.advance_to(s.start).size();
  }
  anomalies += pool.finish().size();
  EXPECT_EQ(pool.ingested(), kTotal);
  EXPECT_GT(anomalies, 0u);
}

}  // namespace
}  // namespace saad::core
