#include "core/report_json.h"

#include <gtest/gtest.h>

#include "../obs/json_checker.h"
#include "obs/exposition.h"
#include "obs/metrics.h"

namespace saad::core {
namespace {

struct JsonFixture : ::testing::Test {
  LogRegistry registry;
  StageId stage = kInvalidStage;
  LogPointId lp = 0;

  void SetUp() override {
    stage = registry.register_stage("Table");
    lp = registry.register_log_point(stage, Level::kDebug,
                                     "text with \"quotes\" and \\slash");
  }

  Anomaly anomaly() const {
    Anomaly a;
    a.window = 31;
    a.window_start = minutes(31);
    a.host = 4;
    a.stage = stage;
    a.kind = AnomalyKind::kFlow;
    a.due_to_new_signature = true;
    a.p_value = 0.00025;
    a.proportion = 0.1;
    a.train_proportion = 0.001;
    a.n = 120;
    a.outliers = 12;
    a.example_signature = Signature({lp});
    return a;
  }
};

TEST_F(JsonFixture, AnomalyFieldsArePresent) {
  const auto json = to_json(anomaly(), registry);
  EXPECT_NE(json.find("\"window\":31"), std::string::npos);
  EXPECT_NE(json.find("\"host\":4"), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"Table\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"flow\""), std::string::npos);
  EXPECT_NE(json.find("\"new_signature\":true"), std::string::npos);
  EXPECT_NE(json.find("\"outliers\":12"), std::string::npos);
  EXPECT_NE(json.find("\"signature\":[0]"), std::string::npos);
}

TEST_F(JsonFixture, EscapingIsConformant) {
  const auto json = to_json(anomaly(), registry);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\slash"), std::string::npos);
  EXPECT_EQ(json_escape("line\nbreak\tand\x01" "ctrl"),
            "line\\nbreak\\tand\\u0001ctrl");
}

TEST_F(JsonFixture, BatchAndIncidentWrappers) {
  const std::vector<Anomaly> batch = {anomaly(), anomaly()};
  const auto json = to_json(batch, registry);
  EXPECT_EQ(json.rfind("{\"anomalies\":[", 0), 0u);
  // Two objects: exactly one separating comma between closing/opening braces.
  EXPECT_NE(json.find("},{"), std::string::npos);

  const auto incidents = group_incidents(batch);
  const auto ijson = to_json(incidents, registry);
  EXPECT_EQ(ijson.rfind("{\"incidents\":[", 0), 0u);
  EXPECT_NE(ijson.find("\"first_window\":31"), std::string::npos);
  EXPECT_NE(ijson.find("\"windows_flagged\":2"), std::string::npos);
}

TEST_F(JsonFixture, PerformanceKindAndUnknownStage) {
  Anomaly a = anomaly();
  a.kind = AnomalyKind::kPerformance;
  a.stage = 99;
  const auto json = to_json(a, registry);
  EXPECT_NE(json.find("\"kind\":\"performance\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"stage#99\""), std::string::npos);
}

TEST_F(JsonFixture, StructurallyBalanced) {
  // Cheap well-formedness check: balanced braces/brackets, even quote count
  // (escaped quotes excluded).
  const auto json = to_json(std::vector<Anomaly>{anomaly()}, registry);
  int braces = 0, brackets = 0, quotes = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    const bool escaped = i > 0 && json[i - 1] == '\\';
    if (c == '{') braces++;
    if (c == '}') braces--;
    if (c == '[') brackets++;
    if (c == ']') brackets--;
    if (c == '"' && !escaped) quotes++;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(quotes % 2, 0);
}

TEST_F(JsonFixture, TelemetryEmbeddingGolden) {
  obs::MetricsRegistry telemetry;
  obs::Counter& c = telemetry.counter("saad_test_report_total", "Report ops.");
  c.inc(5);

  JsonReportOptions options;
  options.telemetry = &telemetry;
  const std::vector<Anomaly> batch = {anomaly()};
  const auto json = to_json(batch, registry, options);

  EXPECT_TRUE(saad::testing::JsonChecker(json).valid()) << json;
  // Schema-versioned snapshot rides next to the verdicts.
  EXPECT_NE(json.find("\"telemetry\":{\"schema_version\":1,"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"saad_test_report_total\""),
            std::string::npos);
  if (obs::kMetricsEnabled) {
    EXPECT_NE(json.find("\"value\":5"), std::string::npos);
  }
  // The embedded object is exactly render_json()'s output.
  const auto pos = json.find("\"telemetry\":");
  ASSERT_NE(pos, std::string::npos);
  const std::string embedded = json.substr(pos + 12, json.size() - pos - 13);
  EXPECT_EQ(embedded, obs::render_json(telemetry));

  const auto incidents_json =
      to_json(group_incidents(batch), registry, options);
  EXPECT_TRUE(saad::testing::JsonChecker(incidents_json).valid())
      << incidents_json;
  EXPECT_NE(incidents_json.find("\"telemetry\":"), std::string::npos);
}

TEST_F(JsonFixture, TelemetryAbsentByDefault) {
  const auto json = to_json(std::vector<Anomaly>{anomaly()}, registry);
  EXPECT_EQ(json.find("\"telemetry\""), std::string::npos);
  EXPECT_TRUE(saad::testing::JsonChecker(json).valid()) << json;
}

}  // namespace
}  // namespace saad::core
