#include "core/logger.h"

#include <gtest/gtest.h>

#include "core/tracker.h"

namespace saad::core {
namespace {

struct LoggerFixture : ::testing::Test {
  LogRegistry registry;
  StageId stage = kInvalidStage;
  LogPointId lp_debug = 0, lp_info = 0, lp_error = 0;

  void SetUp() override {
    stage = registry.register_stage("S");
    lp_debug = registry.register_log_point(stage, Level::kDebug, "dbg %");
    lp_info = registry.register_log_point(stage, Level::kInfo, "inf %");
    lp_error = registry.register_log_point(stage, Level::kError, "err %");
  }
};

TEST_F(LoggerFixture, ThresholdFiltersSinkWrites) {
  CountingSink sink;
  Logger logger(&registry, &sink, Level::kInfo);
  logger.log(lp_debug, "below threshold");
  logger.log(lp_info, "at threshold");
  logger.log(lp_error, "above threshold");
  EXPECT_EQ(sink.messages(Level::kDebug), 0u);
  EXPECT_EQ(sink.messages(Level::kInfo), 1u);
  EXPECT_EQ(sink.messages(Level::kError), 1u);
  EXPECT_EQ(sink.total_messages(), 2u);
}

TEST_F(LoggerFixture, WritesPredicateMatchesThreshold) {
  CountingSink sink;
  Logger logger(&registry, &sink, Level::kInfo);
  EXPECT_FALSE(logger.writes(Level::kDebug));
  EXPECT_TRUE(logger.writes(Level::kInfo));
  EXPECT_TRUE(logger.writes(Level::kError));
  logger.set_threshold(Level::kDebug);
  EXPECT_TRUE(logger.writes(Level::kDebug));
}

TEST_F(LoggerFixture, TracepointFiresEvenWhenTextIsFiltered) {
  // The paper's core trick: a DEBUG statement that writes nothing still
  // reaches the tracker.
  CountingSink sink;
  Logger logger(&registry, &sink, Level::kError);
  ManualClock clock;
  std::vector<Synopsis> emitted;
  TaskExecutionTracker tracker(
      0, &clock, [&](const Synopsis& s) { emitted.push_back(s); });
  logger.set_tracker(&tracker);

  auto task = tracker.begin_task(stage);
  {
    TaskBinding bind(tracker, task.get());
    logger.log(lp_debug);
    logger.log(lp_info);
  }
  tracker.end_task(std::move(task));

  EXPECT_EQ(sink.total_messages(), 0u);  // nothing written
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].log_points.size(), 2u);  // both tracepoints recorded
}

TEST_F(LoggerFixture, NullTrackerIsPlainLogging) {
  CountingSink sink;
  Logger logger(&registry, &sink, Level::kDebug);
  EXPECT_EQ(logger.tracker(), nullptr);
  logger.log(lp_debug, "x");
  EXPECT_EQ(sink.total_messages(), 1u);
}

TEST_F(LoggerFixture, CountingSinkCountsBytesWithNewline) {
  CountingSink sink;
  Logger logger(&registry, &sink, Level::kDebug);
  logger.log(lp_info, "12345");
  EXPECT_EQ(sink.bytes(Level::kInfo), 6u);  // payload + newline
  EXPECT_EQ(sink.total_bytes(), 6u);
}

TEST_F(LoggerFixture, MemorySinkRetainsLines) {
  MemorySink sink;
  Logger logger(&registry, &sink, Level::kDebug);
  logger.log(lp_info, "hello");
  logger.log(lp_error, "boom");
  ASSERT_EQ(sink.lines().size(), 2u);
  EXPECT_EQ(sink.lines()[0].text, "hello");
  EXPECT_EQ(sink.lines()[1].level, Level::kError);
  EXPECT_EQ(sink.lines()[1].point, lp_error);
  sink.clear();
  EXPECT_TRUE(sink.lines().empty());
  EXPECT_EQ(sink.total_bytes(), 0u);
}

}  // namespace
}  // namespace saad::core
