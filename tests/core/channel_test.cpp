#include "core/channel.h"

#include <gtest/gtest.h>

#include <thread>

namespace saad::core {
namespace {

Synopsis sample(TaskUid uid) {
  Synopsis s;
  s.stage = 1;
  s.uid = uid;
  s.log_points = {{1, 1}, {2, 3}};
  return s;
}

TEST(SynopsisChannel, PushDrainPreservesOrder) {
  SynopsisChannel channel;
  for (TaskUid uid = 1; uid <= 5; ++uid) channel.push(sample(uid));
  std::vector<Synopsis> out;
  channel.drain(out);
  ASSERT_EQ(out.size(), 5u);
  for (TaskUid uid = 1; uid <= 5; ++uid) EXPECT_EQ(out[uid - 1].uid, uid);
}

TEST(SynopsisChannel, DrainAppendsAndEmpties) {
  SynopsisChannel channel;
  channel.push(sample(1));
  std::vector<Synopsis> out;
  out.push_back(sample(99));
  channel.drain(out);
  EXPECT_EQ(out.size(), 2u);
  channel.drain(out);  // nothing left
  EXPECT_EQ(out.size(), 2u);
}

TEST(SynopsisChannel, CountsPushedAndBytes) {
  SynopsisChannel channel;
  EXPECT_EQ(channel.pushed(), 0u);
  EXPECT_EQ(channel.encoded_bytes(), 0u);
  channel.push(sample(1));
  channel.push(sample(2));
  EXPECT_EQ(channel.pushed(), 2u);
  EXPECT_EQ(channel.encoded_bytes(), 2 * encoded_size(sample(1)));
  // Counters survive draining (lifetime totals, used by Fig. 8).
  std::vector<Synopsis> out;
  channel.drain(out);
  EXPECT_EQ(channel.pushed(), 2u);
}

TEST(SynopsisChannel, ConcurrentProducersLoseNothing) {
  SynopsisChannel channel;
  constexpr int kThreads = 8, kPerThread = 2000;
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&channel, t] {
      for (int i = 0; i < kPerThread; ++i) {
        channel.push(sample(static_cast<TaskUid>(t * kPerThread + i)));
      }
    });
  }
  for (auto& p : producers) p.join();
  std::vector<Synopsis> out;
  channel.drain(out);
  EXPECT_EQ(out.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(channel.pushed(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace saad::core
