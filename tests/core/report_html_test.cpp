#include "core/report_html.h"

#include <gtest/gtest.h>

namespace saad::core {
namespace {

struct HtmlFixture : ::testing::Test {
  LogRegistry registry;
  StageId stage = kInvalidStage;
  LogPointId lp = 0;

  void SetUp() override {
    stage = registry.register_stage("Table");
    lp = registry.register_log_point(
        stage, Level::kDebug, "value with <markup> & \"quotes\"");
  }

  Anomaly anomaly(std::size_t window, AnomalyKind kind,
                  bool fresh = false) const {
    Anomaly a;
    a.window = window;
    a.window_start = static_cast<UsTime>(window) * kUsPerMin;
    a.host = 4;
    a.stage = stage;
    a.kind = kind;
    a.due_to_new_signature = fresh;
    a.example_signature = Signature({lp});
    a.n = 100;
    a.outliers = 12;
    return a;
  }
};

TEST_F(HtmlFixture, ProducesSelfContainedDocument) {
  const auto html = render_html_report(
      {anomaly(3, AnomalyKind::kFlow), anomaly(5, AnomalyKind::kPerformance)},
      registry, {.title = "test report", .num_windows = 10});
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(html.find("test report"), std::string::npos);
  EXPECT_NE(html.find("Table(4)"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  // No external references: self-contained page.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("src="), std::string::npos);
}

TEST_F(HtmlFixture, EscapesTemplateMarkup) {
  const auto html =
      render_html_report({anomaly(0, AnomalyKind::kFlow)}, registry,
                         {.num_windows = 4});
  EXPECT_EQ(html.find("<markup>"), std::string::npos);
  EXPECT_NE(html.find("&lt;markup&gt;"), std::string::npos);
  EXPECT_NE(html.find("&quot;quotes&quot;"), std::string::npos);
}

TEST_F(HtmlFixture, MarksCellClassesByKind) {
  const auto html = render_html_report(
      {anomaly(1, AnomalyKind::kFlow), anomaly(2, AnomalyKind::kPerformance),
       anomaly(3, AnomalyKind::kFlow, /*fresh=*/true)},
      registry, {.num_windows = 6});
  EXPECT_NE(html.find("class=\"flow\""), std::string::npos);
  EXPECT_NE(html.find("class=\"perf\""), std::string::npos);
  EXPECT_NE(html.find("class=\"newsig\""), std::string::npos);
}

TEST_F(HtmlFixture, FlowWinsSharedCell) {
  const auto html = render_html_report(
      {anomaly(2, AnomalyKind::kPerformance), anomaly(2, AnomalyKind::kFlow)},
      registry, {.num_windows = 4});
  // The timeline grid cell for window 2 is rendered with the flow class.
  const auto grid_begin = html.find("<table class=\"grid\">");
  ASSERT_NE(grid_begin, std::string::npos);
  const auto grid_end = html.find("</table>", grid_begin);
  const std::string grid = html.substr(grid_begin, grid_end - grid_begin);
  EXPECT_NE(grid.find("class=\"flow\""), std::string::npos);
  EXPECT_EQ(grid.find("class=\"perf\""), std::string::npos);
}

TEST_F(HtmlFixture, CapsDetailSections) {
  std::vector<Anomaly> many;
  for (std::size_t i = 0; i < 30; ++i)
    many.push_back(anomaly(i % 10, AnomalyKind::kFlow));
  const auto html = render_html_report(
      many, registry, {.num_windows = 10, .max_details = 5});
  EXPECT_NE(html.find("25 more anomalies omitted"), std::string::npos);
}

TEST_F(HtmlFixture, EmptyReportStillRenders) {
  const auto html = render_html_report({}, registry, {.num_windows = 5});
  EXPECT_NE(html.find("0 anomalies"), std::string::npos);
}

}  // namespace
}  // namespace saad::core
