// Property-style sweeps over the detector's statistical knobs (TEST_P):
// invariants that must hold for ANY sane configuration, verified across a
// grid of window sizes, alphas and fault magnitudes on synthetic streams.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/detector.h"

namespace saad::core {
namespace {

Synopsis task(StageId stage, std::vector<LogPointId> points, UsTime start,
              UsTime duration) {
  Synopsis s;
  s.stage = stage;
  s.start = start;
  s.duration = duration;
  std::sort(points.begin(), points.end());
  for (auto p : points) {
    if (!s.log_points.empty() && s.log_points.back().point == p) {
      s.log_points.back().count++;
    } else {
      s.log_points.push_back({p, 1});
    }
  }
  return s;
}

/// Fault-free stream: one common flow, lognormal durations, fixed rate.
std::vector<Synopsis> stream(std::size_t n, UsTime span, std::uint64_t seed,
                             double slow_fraction = 0.0,
                             double slow_factor = 1.0) {
  saad::Rng rng(seed);
  std::vector<Synopsis> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const UsTime start = static_cast<UsTime>(
        (static_cast<double>(i) / static_cast<double>(n)) *
        static_cast<double>(span));
    double d = rng.lognormal_median(ms(10), 0.2);
    if (rng.chance(slow_fraction)) d *= slow_factor;
    out.push_back(task(0, {1, 2, 3}, start, static_cast<UsTime>(d)));
  }
  return out;
}

class WindowSweep : public ::testing::TestWithParam<UsTime> {};

TEST_P(WindowSweep, QuietStreamIsQuietAtEveryWindowSize) {
  const OutlierModel model =
      OutlierModel::train(stream(60000, minutes(10), 1));
  DetectorConfig config;
  config.window = GetParam();
  AnomalyDetector detector(&model, config);
  for (const auto& s : stream(30000, minutes(5), 2)) detector.ingest(s);
  EXPECT_TRUE(detector.finish().empty())
      << "window=" << to_sec(GetParam()) << "s";
}

TEST_P(WindowSweep, StrongSlowdownIsCaughtAtEveryWindowSize) {
  const OutlierModel model =
      OutlierModel::train(stream(60000, minutes(10), 3));
  DetectorConfig config;
  config.window = GetParam();
  AnomalyDetector detector(&model, config);
  // Half the tasks run 5x slower: decisive at any window size.
  for (const auto& s : stream(30000, minutes(5), 4, 0.5, 5.0))
    detector.ingest(s);
  const auto anomalies = detector.finish();
  ASSERT_FALSE(anomalies.empty());
  for (const auto& a : anomalies)
    EXPECT_EQ(a.kind, AnomalyKind::kPerformance);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(sec(10), sec(30), kUsPerMin,
                                           minutes(5)));

class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, TighterAlphaNeverFlagsMoreThanLooser) {
  const OutlierModel model =
      OutlierModel::train(stream(60000, minutes(10), 5));
  // A borderline fault: 3% of tasks run 3x slower.
  const auto faulty = stream(30000, minutes(5), 6, 0.03, 3.0);

  const double alpha = GetParam();
  DetectorConfig tight;
  tight.alpha = alpha;
  DetectorConfig loose;
  loose.alpha = alpha * 10;

  AnomalyDetector a(&model, tight), b(&model, loose);
  for (const auto& s : faulty) {
    a.ingest(s);
    b.ingest(s);
  }
  EXPECT_LE(a.finish().size(), b.finish().size()) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         ::testing::Values(1e-5, 1e-4, 1e-3, 1e-2));

class MagnitudeSweep : public ::testing::TestWithParam<double> {};

TEST_P(MagnitudeSweep, AnomalyCountGrowsWithFaultMagnitude) {
  const OutlierModel model =
      OutlierModel::train(stream(60000, minutes(10), 7));
  auto count = [&](double slow_fraction) {
    AnomalyDetector detector(&model);
    for (const auto& s :
         stream(30000, minutes(5), 8, slow_fraction, GetParam()))
      detector.ingest(s);
    return detector.finish().size();
  };
  // More affected tasks -> at least as many flagged windows.
  EXPECT_LE(count(0.0), count(0.2));
  EXPECT_LE(count(0.2), count(0.8));
}

INSTANTIATE_TEST_SUITE_P(Factors, MagnitudeSweep,
                         ::testing::Values(3.0, 5.0, 10.0));

TEST(DetectorProperty, IngestOrderWithinWindowDoesNotMatter) {
  const OutlierModel model =
      OutlierModel::train(stream(60000, minutes(10), 9));
  auto faulty = stream(5000, kUsPerMin - 1, 10, 0.5, 5.0);

  AnomalyDetector forward(&model), backward(&model);
  for (const auto& s : faulty) forward.ingest(s);
  for (auto it = faulty.rbegin(); it != faulty.rend(); ++it)
    backward.ingest(*it);
  const auto a = forward.finish();
  const auto b = backward.finish();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].outliers, b[i].outliers);
    EXPECT_DOUBLE_EQ(a[i].p_value, b[i].p_value);
  }
}

TEST(DetectorProperty, SplitStreamEqualsWholeStream) {
  // Feeding the same synopses through poll-sized batches must produce the
  // same anomalies as one big batch (streaming == offline).
  const OutlierModel model =
      OutlierModel::train(stream(60000, minutes(10), 11));
  const auto faulty = stream(20000, minutes(4), 12, 0.5, 5.0);

  AnomalyDetector whole(&model);
  for (const auto& s : faulty) whole.ingest(s);
  const auto expected = whole.finish();

  AnomalyDetector chunked(&model);
  std::vector<Anomaly> got;
  for (std::size_t i = 0; i < faulty.size(); ++i) {
    chunked.ingest(faulty[i]);
    if (i % 1000 == 999) {
      const auto batch = chunked.advance_to(faulty[i].start);
      got.insert(got.end(), batch.begin(), batch.end());
    }
  }
  const auto tail = chunked.finish();
  got.insert(got.end(), tail.begin(), tail.end());

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].window, expected[i].window);
    EXPECT_EQ(got[i].kind, expected[i].kind);
    EXPECT_EQ(got[i].outliers, expected[i].outliers);
  }
}

}  // namespace
}  // namespace saad::core
