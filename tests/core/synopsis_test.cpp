#include "core/synopsis.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace saad::core {
namespace {

Synopsis sample_synopsis() {
  Synopsis s;
  s.host = 3;
  s.stage = 12;
  s.uid = 123456789;
  s.start = 42'000'000;
  s.duration = 10'500;
  s.log_points = {{1, 1}, {2, 57}, {9, 1}, {100, 3}};
  return s;
}

TEST(Synopsis, RoundTripPreservesEverything) {
  const Synopsis original = sample_synopsis();
  std::vector<std::uint8_t> buf;
  const std::size_t written = encode_synopsis(original, buf);
  EXPECT_EQ(written, buf.size());
  EXPECT_EQ(written, encoded_size(original));

  std::span<const std::uint8_t> in(buf);
  Synopsis decoded;
  ASSERT_TRUE(decode_synopsis(in, decoded));
  EXPECT_EQ(decoded, original);
  EXPECT_TRUE(in.empty());
}

TEST(Synopsis, TypicalSizeIsTensOfBytes) {
  // Paper: synopses average ~48 bytes. A typical task (5 distinct points,
  // small counts) must encode well under 64 bytes.
  const Synopsis s = sample_synopsis();
  EXPECT_LT(encoded_size(s), 64u);
  EXPECT_GT(encoded_size(s), 8u);
}

TEST(Synopsis, EmptyLogPoints) {
  Synopsis s;
  s.host = 0;
  s.stage = 1;
  s.uid = 7;
  std::vector<std::uint8_t> buf;
  encode_synopsis(s, buf);
  std::span<const std::uint8_t> in(buf);
  Synopsis out;
  ASSERT_TRUE(decode_synopsis(in, out));
  EXPECT_EQ(out, s);
}

TEST(Synopsis, NegativeDurationSurvivesZigzag) {
  Synopsis s = sample_synopsis();
  s.duration = -250;
  std::vector<std::uint8_t> buf;
  encode_synopsis(s, buf);
  std::span<const std::uint8_t> in(buf);
  Synopsis out;
  ASSERT_TRUE(decode_synopsis(in, out));
  EXPECT_EQ(out.duration, -250);
}

TEST(Synopsis, MultipleRecordsStreamBackToBack) {
  std::vector<std::uint8_t> buf;
  Synopsis a = sample_synopsis();
  Synopsis b = sample_synopsis();
  b.uid = 999;
  b.log_points = {{4, 2}};
  encode_synopsis(a, buf);
  encode_synopsis(b, buf);

  std::span<const std::uint8_t> in(buf);
  Synopsis out1, out2;
  ASSERT_TRUE(decode_synopsis(in, out1));
  ASSERT_TRUE(decode_synopsis(in, out2));
  EXPECT_EQ(out1, a);
  EXPECT_EQ(out2, b);
  EXPECT_TRUE(in.empty());
}

TEST(Synopsis, TruncatedInputFailsCleanly) {
  std::vector<std::uint8_t> buf;
  encode_synopsis(sample_synopsis(), buf);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    std::span<const std::uint8_t> in(buf.data(), cut);
    Synopsis out;
    EXPECT_FALSE(decode_synopsis(in, out)) << "cut=" << cut;
  }
}

TEST(Synopsis, GarbageInputDoesNotCrash) {
  saad::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    std::span<const std::uint8_t> in(junk);
    Synopsis out;
    decode_synopsis(in, out);  // must not crash; result value irrelevant
  }
}

TEST(Synopsis, RandomRoundTripProperty) {
  saad::Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    Synopsis s;
    s.host = static_cast<HostId>(rng.next_below(16));
    s.stage = static_cast<StageId>(rng.next_below(100));
    s.uid = rng.next_u64() >> 1;
    s.start = static_cast<UsTime>(rng.next_below(1'000'000'000));
    s.duration = static_cast<UsTime>(rng.next_below(100'000'000));
    const std::size_t n = rng.next_below(20);
    LogPointId prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      prev = static_cast<LogPointId>(prev + 1 + rng.next_below(50));
      s.log_points.push_back(
          {prev, static_cast<std::uint32_t>(1 + rng.next_below(1000))});
    }
    std::vector<std::uint8_t> buf;
    encode_synopsis(s, buf);
    std::span<const std::uint8_t> in(buf);
    Synopsis out;
    ASSERT_TRUE(decode_synopsis(in, out));
    ASSERT_EQ(out, s);
  }
}

}  // namespace
}  // namespace saad::core
