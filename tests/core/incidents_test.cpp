#include "core/incidents.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace saad::core {
namespace {

Anomaly anomaly(std::size_t window, HostId host, StageId stage,
                AnomalyKind kind, double p = 0.0001, bool fresh = false) {
  Anomaly a;
  a.window = window;
  a.host = host;
  a.stage = stage;
  a.kind = kind;
  a.p_value = p;
  a.due_to_new_signature = fresh;
  a.example_signature = Signature({static_cast<LogPointId>(window)});
  return a;
}

TEST(Incidents, ContiguousWindowsFormOneIncident) {
  const auto incidents = group_incidents(
      {anomaly(10, 4, 1, AnomalyKind::kFlow),
       anomaly(11, 4, 1, AnomalyKind::kFlow),
       anomaly(12, 4, 1, AnomalyKind::kFlow)});
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].first_window, 10u);
  EXPECT_EQ(incidents[0].last_window, 12u);
  EXPECT_EQ(incidents[0].windows, 3u);
  EXPECT_EQ(incidents[0].span(), 3u);
}

TEST(Incidents, GapToleranceBridgesSmallHoles) {
  // Windows 10, 12 with max_gap 1: one incident; with max_gap 0: two.
  const std::vector<Anomaly> anomalies = {
      anomaly(10, 4, 1, AnomalyKind::kFlow),
      anomaly(12, 4, 1, AnomalyKind::kFlow)};
  EXPECT_EQ(group_incidents(anomalies, 1).size(), 1u);
  EXPECT_EQ(group_incidents(anomalies, 0).size(), 2u);
}

TEST(Incidents, DistinctIdentitiesStaySeparate) {
  const auto incidents = group_incidents(
      {anomaly(5, 1, 1, AnomalyKind::kFlow),
       anomaly(5, 2, 1, AnomalyKind::kFlow),          // other host
       anomaly(5, 1, 2, AnomalyKind::kFlow),          // other stage
       anomaly(5, 1, 1, AnomalyKind::kPerformance)});  // other kind
  EXPECT_EQ(incidents.size(), 4u);
}

TEST(Incidents, OrderIndependentAndSorted) {
  const auto incidents = group_incidents(
      {anomaly(30, 2, 1, AnomalyKind::kFlow),
       anomaly(10, 1, 1, AnomalyKind::kFlow),
       anomaly(31, 2, 1, AnomalyKind::kFlow),
       anomaly(11, 1, 1, AnomalyKind::kFlow)});
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_EQ(incidents[0].first_window, 10u);
  EXPECT_EQ(incidents[1].first_window, 30u);
}

TEST(Incidents, TracksMostSignificantAnomaly) {
  const auto incidents = group_incidents(
      {anomaly(10, 4, 1, AnomalyKind::kFlow, 1e-3),
       anomaly(11, 4, 1, AnomalyKind::kFlow, 1e-9),
       anomaly(12, 4, 1, AnomalyKind::kFlow, 1e-5, /*fresh=*/true)});
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_DOUBLE_EQ(incidents[0].min_p_value, 1e-9);
  EXPECT_TRUE(incidents[0].any_new_signature);
  EXPECT_EQ(incidents[0].example_signature, Signature({11}));
}

TEST(Incidents, EmptyInputEmptyOutput) {
  EXPECT_TRUE(group_incidents({}).empty());
}

TEST(Incidents, DescribeIsReadable) {
  LogRegistry registry;
  const auto stage = registry.register_stage("Table");
  auto a = anomaly(30, 4, stage, AnomalyKind::kFlow, 1e-7, true);
  const auto incidents = group_incidents({a});
  const auto text = describe(incidents[0], registry);
  EXPECT_NE(text.find("Table(4)"), std::string::npos);
  EXPECT_NE(text.find("FLOW"), std::string::npos);
  EXPECT_NE(text.find("new signature"), std::string::npos);
  EXPECT_NE(text.find("windows 30-30"), std::string::npos);
}

TEST(BonferroniExtension, ReducesBorderlineRejections) {
  // One stage tested alongside many others: the corrected alpha is stricter.
  // Build a model with 50 stages, then a window where every stage shows a
  // borderline outlier excess.
  std::vector<Synopsis> trace;
  saad::Rng rng(1);
  for (int stage = 0; stage < 50; ++stage) {
    for (int i = 0; i < 4000; ++i) {
      Synopsis s;
      s.stage = static_cast<StageId>(stage);
      s.duration = static_cast<UsTime>(rng.lognormal_median(ms(10), 0.2));
      s.log_points = {{1, 1}, {2, 1}};
      trace.push_back(std::move(s));
    }
  }
  const OutlierModel model = OutlierModel::train(trace);

  auto run = [&](bool bonferroni) {
    DetectorConfig config;
    config.bonferroni = bonferroni;
    AnomalyDetector detector(&model, config);
    saad::Rng rng2(2);
    for (int stage = 0; stage < 50; ++stage) {
      for (int i = 0; i < 2000; ++i) {
        Synopsis s;
        s.stage = static_cast<StageId>(stage);
        s.start = i;
        // Slightly elevated tail: ~2% of tasks 2.5x slower (borderline).
        double d = rng2.lognormal_median(ms(10), 0.2);
        if (rng2.chance(0.02)) d *= 2.5;
        s.duration = static_cast<UsTime>(d);
        s.log_points = {{1, 1}, {2, 1}};
        detector.ingest(s);
      }
    }
    return detector.finish().size();
  };
  const auto flat = run(false);
  const auto corrected = run(true);
  EXPECT_GT(flat, 0u);  // borderline excess fires at flat alpha somewhere
  EXPECT_LT(corrected, flat);
}

}  // namespace
}  // namespace saad::core
