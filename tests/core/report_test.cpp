#include "core/report.h"

#include <gtest/gtest.h>

namespace saad::core {
namespace {

struct ReportFixture : ::testing::Test {
  LogRegistry registry;
  StageId stage = kInvalidStage;
  LogPointId l1 = 0, l2 = 0, l3 = 0, l4 = 0;

  void SetUp() override {
    stage = registry.register_stage("Table");
    l1 = registry.register_log_point(
        stage, Level::kDebug,
        "MemTable is already frozen; another thread must be flushing it");
    l2 = registry.register_log_point(stage, Level::kDebug,
                                     "Start applying update to MemTable");
    l3 = registry.register_log_point(stage, Level::kDebug,
                                     "Applying mutation of row");
    l4 = registry.register_log_point(stage, Level::kDebug,
                                     "Applied mutation. Sending response");
  }
};

TEST_F(ReportFixture, StageHostLabel) {
  EXPECT_EQ(stage_host_label(registry, stage, 4), "Table(4)");
  EXPECT_EQ(stage_host_label(registry, 77, 1), "stage#77(1)");
}

TEST_F(ReportFixture, DescribeFlowAnomaly) {
  Anomaly a;
  a.window_start = minutes(31);
  a.host = 4;
  a.stage = stage;
  a.kind = AnomalyKind::kFlow;
  a.due_to_new_signature = true;
  a.example_signature = Signature({l1});
  a.n = 120;
  a.outliers = 14;
  const std::string text = describe(a, registry);
  EXPECT_NE(text.find("FLOW"), std::string::npos);
  EXPECT_NE(text.find("Table(4)"), std::string::npos);
  EXPECT_NE(text.find("new signature"), std::string::npos);
  EXPECT_NE(text.find("min 31"), std::string::npos);
}

TEST_F(ReportFixture, DescribePerfAnomaly) {
  Anomaly a;
  a.kind = AnomalyKind::kPerformance;
  a.stage = stage;
  const std::string text = describe(a, registry);
  EXPECT_NE(text.find("PERF"), std::string::npos);
}

TEST_F(ReportFixture, SignatureTemplates) {
  const auto templates = signature_templates(Signature({l1, l3}), registry);
  ASSERT_EQ(templates.size(), 2u);
  EXPECT_NE(templates[0].find("frozen"), std::string::npos);
  EXPECT_NE(templates[1].find("mutation of row"), std::string::npos);
}

TEST_F(ReportFixture, SignatureTemplatesUnknownPoint) {
  const auto templates = signature_templates(Signature({999}), registry);
  ASSERT_EQ(templates.size(), 1u);
  EXPECT_NE(templates[0].find("unknown"), std::string::npos);
}

TEST_F(ReportFixture, SignatureComparisonReproducesTable1Shape) {
  // Paper Table 1: normal flow hits all four statements; the anomalous
  // (frozen MemTable) flow hits only the first.
  const Signature normal({l1, l2, l3, l4});
  const Signature anomalous({l1});
  const std::string table = signature_comparison(normal, anomalous, registry);
  EXPECT_NE(table.find("frozen"), std::string::npos);
  EXPECT_NE(table.find("Applied mutation"), std::string::npos);
  // The frozen row is marked in both columns; the rest only in Normal.
  const auto frozen_row_pos = table.find("frozen");
  const auto line_end = table.find('\n', frozen_row_pos);
  const std::string frozen_row = table.substr(frozen_row_pos, line_end - frozen_row_pos);
  EXPECT_NE(frozen_row.find('x'), std::string::npos);
}

TEST_F(ReportFixture, TimelineChartFromAnomalies) {
  std::vector<Anomaly> anomalies;
  Anomaly f;
  f.window = 10;
  f.host = 4;
  f.stage = stage;
  f.kind = AnomalyKind::kFlow;
  anomalies.push_back(f);
  Anomaly p = f;
  p.window = 12;
  p.kind = AnomalyKind::kPerformance;
  anomalies.push_back(p);
  Anomaly n = f;
  n.window = 14;
  n.due_to_new_signature = true;
  anomalies.push_back(n);

  const auto chart = anomaly_timeline(anomalies, registry, 20, "Fig");
  const std::string s = chart.to_string();
  const auto row_pos = s.find("Table(4) |");
  ASSERT_NE(row_pos, std::string::npos);
  const std::string row = s.substr(row_pos + 10, 20);
  EXPECT_EQ(row[10], 'F');
  EXPECT_EQ(row[12], 'P');
  EXPECT_EQ(row[14], 'N');
}

}  // namespace
}  // namespace saad::core
