// Determinism golden test for the parallel analyzer (analyzer_pool.h): the
// same trace analyzed with 1, 2, and 8 threads must yield *byte-identical*
// anomaly lists — same anomalies, same order, same p-values to the last bit.
#include "core/analyzer_pool.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "core/log_registry.h"
#include "core/monitor.h"

namespace saad::core {
namespace {

/// Full-precision serialization: any drift in value, order, or count shows
/// up as a string diff.
std::string dump(const std::vector<Anomaly>& anomalies) {
  std::string out;
  char line[256];
  for (const auto& a : anomalies) {
    std::snprintf(line, sizeof line,
                  "w=%zu ws=%lld h=%u s=%u k=%d new=%d p=%.17g prop=%.17g "
                  "train=%.17g n=%llu out=%llu sig=%s\n",
                  a.window, static_cast<long long>(a.window_start), a.host,
                  a.stage, static_cast<int>(a.kind),
                  a.due_to_new_signature ? 1 : 0, a.p_value, a.proportion,
                  a.train_proportion,
                  static_cast<unsigned long long>(a.n),
                  static_cast<unsigned long long>(a.outliers),
                  a.example_signature.to_string().c_str());
    out += line;
  }
  return out;
}

Synopsis make(Rng& rng, UsTime start, double rare_rate, double slow_rate) {
  constexpr StageId kStages = 12;
  constexpr HostId kHosts = 6;
  Synopsis s;
  s.stage = static_cast<StageId>(rng.next_below(kStages));
  s.host = static_cast<HostId>(rng.next_below(kHosts));
  s.start = start;
  const auto base = static_cast<LogPointId>(s.stage * 8);
  s.log_points.push_back({base, 1});
  const auto variant = rng.next_below(3);
  for (std::uint64_t v = 0; v <= variant; ++v)
    s.log_points.push_back({static_cast<LogPointId>(base + 1 + v), 2});
  if (rng.next_double() < rare_rate)  // rare flow
    s.log_points.push_back({static_cast<LogPointId>(base + 7), 1});
  s.duration = 1000 + static_cast<UsTime>(rng.next_below(3000));
  if (rng.next_double() < slow_rate) s.duration *= 40;  // stretched duration
  return s;
}

std::vector<Synopsis> make_trace(std::uint64_t seed, std::size_t count,
                                 double rare_rate, double slow_rate) {
  Rng rng(seed);
  std::vector<Synopsis> trace;
  trace.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    trace.push_back(
        make(rng, static_cast<UsTime>(i) * 700, rare_rate, slow_rate));
  return trace;
}

struct PoolResult {
  std::string mid, tail;
};

/// Replays `stream` with a mid-stream advance_to plus a finish, the way
/// Monitor::poll drives it.
PoolResult run_pool(const OutlierModel& model, std::size_t threads,
                    const std::vector<Synopsis>& stream) {
  DetectorConfig config;
  config.window = sec(5);
  config.analyzer_threads = threads;
  AnalyzerPool pool(&model, config);
  const std::size_t half = stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i) pool.ingest(stream[i]);
  PoolResult result;
  result.mid = dump(pool.advance_to(stream[half].start));
  for (std::size_t i = half; i < stream.size(); ++i) pool.ingest(stream[i]);
  result.tail = dump(pool.finish());
  return result;
}

TEST(AnalyzerPool, ThreadCountDoesNotChangeVerdicts) {
  const auto training = make_trace(11, 30000, 0.002, 0.005);
  const auto model = OutlierModel::train(training);
  // Elevated rare-signature and stretched-duration rates: both the flow and
  // the performance tests fire.
  const auto stream = make_trace(12, 30000, 0.05, 0.08);

  // Baseline: the bare serial detector, driven identically.
  DetectorConfig config;
  config.window = sec(5);
  AnomalyDetector detector(&model, config);
  const std::size_t half = stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i) detector.ingest(stream[i]);
  const std::string serial_mid = dump(detector.advance_to(stream[half].start));
  for (std::size_t i = half; i < stream.size(); ++i) detector.ingest(stream[i]);
  const std::string serial_tail = dump(detector.finish());
  ASSERT_FALSE(serial_tail.empty()) << "workload produced no anomalies — "
                                       "the golden comparison is vacuous";

  for (std::size_t threads : {1u, 2u, 8u}) {
    const PoolResult result = run_pool(model, threads, stream);
    EXPECT_EQ(result.mid, serial_mid) << "threads=" << threads;
    EXPECT_EQ(result.tail, serial_tail) << "threads=" << threads;
  }
}

TEST(AnalyzerPool, SerialFallbacks) {
  const auto model = OutlierModel::train({});
  DetectorConfig config;
  config.analyzer_threads = 4;
  config.bonferroni = true;  // whole-window test count: unsupported in
                             // parallel, must fall back (analyzer_pool.h)
  AnalyzerPool pool(&model, config);
  EXPECT_EQ(pool.threads(), 1u);

  DetectorConfig serial;
  serial.analyzer_threads = 1;
  AnalyzerPool inline_pool(&model, serial);
  EXPECT_EQ(inline_pool.threads(), 1u);
}

TEST(AnalyzerPool, HardwareConcurrencyDefault) {
  const auto model = OutlierModel::train({});
  DetectorConfig config;
  config.analyzer_threads = 0;  // one per hardware thread
  AnalyzerPool pool(&model, config);
  EXPECT_GE(pool.threads(), 1u);
}

// ---- End-to-end through Monitor -------------------------------------------

struct PoolMonitorFixture : ::testing::Test {
  LogRegistry registry;
  StageId stage_a = kInvalidStage, stage_b = kInvalidStage;
  LogPointId a1 = 0, a2 = 0, a_rare = 0, b1 = 0, b2 = 0;

  void SetUp() override {
    stage_a = registry.register_stage("Handler");
    a1 = registry.register_log_point(stage_a, Level::kDebug, "recv");
    a2 = registry.register_log_point(stage_a, Level::kDebug, "done");
    a_rare = registry.register_log_point(stage_a, Level::kWarn, "retry");
    stage_b = registry.register_stage("Flusher");
    b1 = registry.register_log_point(stage_b, Level::kDebug, "flush-begin");
    b2 = registry.register_log_point(stage_b, Level::kDebug, "flush-end");
  }

  /// Fixed-seed schedule across two stages and four hosts; `faulty` adds
  /// rare signatures and stretched durations in the back half.
  void run_schedule(Monitor& monitor, ManualClock& clock, std::uint64_t seed,
                    bool faulty, int tasks) {
    Rng rng(seed);
    for (int i = 0; i < tasks; ++i) {
      const bool second_half = i > tasks / 2;
      const auto host = static_cast<HostId>(rng.next_below(4));
      auto& tracker = monitor.tracker(host);
      if (rng.next_double() < 0.7) {
        auto task = tracker.begin_task(stage_a);
        task->on_log(a1, clock.now());
        if (faulty && second_half && rng.next_double() < 0.2)
          task->on_log(a_rare, clock.now());
        clock.advance(ms(2 + static_cast<std::int64_t>(rng.next_below(5))));
        task->on_log(a2, clock.now());
        tracker.end_task(std::move(task));
      } else {
        auto task = tracker.begin_task(stage_b);
        task->on_log(b1, clock.now());
        UsTime d = ms(4 + static_cast<std::int64_t>(rng.next_below(4)));
        if (faulty && second_half && rng.next_double() < 0.3) d *= 30;
        clock.advance(d);
        task->on_log(b2, clock.now());
        tracker.end_task(std::move(task));
      }
      clock.advance(ms(1));
    }
  }

  /// Trains, arms with `threads`, replays the same faulty schedule, polling
  /// every so often, and returns the full anomaly dump.
  std::string run_detection(std::size_t threads) {
    ManualClock clock;
    Monitor monitor(&registry, &clock);
    monitor.start_training();
    run_schedule(monitor, clock, /*seed=*/77, /*faulty=*/false, 4000);
    monitor.train();

    DetectorConfig config;
    config.window = sec(10);
    config.analyzer_threads = threads;

    std::string out;
    ManualClock detect_clock;  // fresh timeline: identical across runs
    Monitor detect(&registry, &detect_clock);
    detect.set_model(*monitor.model());
    detect.arm(config);
    for (int chunk = 0; chunk < 8; ++chunk) {
      run_schedule(detect, detect_clock, /*seed=*/900 + chunk,
                   /*faulty=*/true, 500);
      out += dump(detect.poll(detect_clock.now()));
    }
    out += dump(detect.finish());
    return out;
  }
};

TEST_F(PoolMonitorFixture, MonitorOutputIdenticalAcrossThreadCounts) {
  const std::string serial = run_detection(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(run_detection(2), serial);
  EXPECT_EQ(run_detection(8), serial);
}

}  // namespace
}  // namespace saad::core
