#include "core/log_registry.h"

#include <gtest/gtest.h>

namespace saad::core {
namespace {

TEST(LogRegistry, RegistersStagesWithDenseIds) {
  LogRegistry reg;
  const StageId a = reg.register_stage("DataXceiver");
  const StageId b = reg.register_stage("PacketResponder");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(reg.num_stages(), 2u);
  EXPECT_EQ(reg.stage(a).name, "DataXceiver");
  EXPECT_EQ(reg.stage(b).name, "PacketResponder");
}

TEST(LogRegistry, RegistersLogPointsWithMetadata) {
  LogRegistry reg;
  const StageId s = reg.register_stage("Foo");
  const LogPointId p = reg.register_log_point(s, Level::kDebug,
                                              "Receiving block blk_%",
                                              "dataxceiver.cc", 42);
  const auto& info = reg.log_point(p);
  EXPECT_EQ(info.stage, s);
  EXPECT_EQ(info.level, Level::kDebug);
  EXPECT_EQ(info.template_text, "Receiving block blk_%");
  EXPECT_EQ(info.file, "dataxceiver.cc");
  EXPECT_EQ(info.line, 42);
}

TEST(LogRegistry, FindStageByName) {
  LogRegistry reg;
  reg.register_stage("A");
  const StageId b = reg.register_stage("B");
  EXPECT_EQ(reg.find_stage("B"), b);
  EXPECT_EQ(reg.find_stage("missing"), kInvalidStage);
}

TEST(LogRegistry, LogPointsOfStage) {
  LogRegistry reg;
  const StageId a = reg.register_stage("A");
  const StageId b = reg.register_stage("B");
  const LogPointId p1 = reg.register_log_point(a, Level::kInfo, "x");
  reg.register_log_point(b, Level::kInfo, "y");
  const LogPointId p3 = reg.register_log_point(a, Level::kDebug, "z");
  const auto points = reg.log_points_of(a);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0], p1);
  EXPECT_EQ(points[1], p3);
}

TEST(LogRegistry, LevelNames) {
  EXPECT_EQ(level_name(Level::kDebug), "DEBUG");
  EXPECT_EQ(level_name(Level::kInfo), "INFO");
  EXPECT_EQ(level_name(Level::kWarn), "WARN");
  EXPECT_EQ(level_name(Level::kError), "ERROR");
}

TEST(LogRegistry, LevelOrdering) {
  EXPECT_LT(Level::kDebug, Level::kInfo);
  EXPECT_LT(Level::kInfo, Level::kWarn);
  EXPECT_LT(Level::kWarn, Level::kError);
}

}  // namespace
}  // namespace saad::core
