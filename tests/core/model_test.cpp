#include "core/model.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace saad::core {
namespace {

Synopsis make_synopsis(StageId stage, std::vector<LogPointId> points,
                       UsTime duration, HostId host = 0) {
  Synopsis s;
  s.host = host;
  s.stage = stage;
  s.duration = duration;
  LogPointId prev = 0;
  std::sort(points.begin(), points.end());
  for (auto p : points) {
    if (!s.log_points.empty() && s.log_points.back().point == p) {
      s.log_points.back().count++;
    } else {
      s.log_points.push_back({p, 1});
    }
    prev = p;
  }
  (void)prev;
  return s;
}

/// A training trace mimicking Fig. 4: 99% normal flow at ~10ms, ~1% slow,
/// 0.1% rare flow with an extra log point.
std::vector<Synopsis> figure4_trace(std::size_t n, saad::Rng& rng) {
  std::vector<Synopsis> trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double dice = rng.next_double();
    if (dice < 0.001) {
      trace.push_back(make_synopsis(0, {1, 2, 3, 4, 5},
                                    static_cast<UsTime>(ms(10))));
    } else {
      const UsTime d =
          static_cast<UsTime>(rng.lognormal_median(ms(10), 0.15));
      trace.push_back(make_synopsis(0, {1, 2, 4, 5}, d));
    }
  }
  return trace;
}

TEST(OutlierModel, RareSignatureIsFlowOutlier) {
  saad::Rng rng(1);
  const auto trace = figure4_trace(20000, rng);
  const OutlierModel model = OutlierModel::train(trace);

  const StageModel* sm = model.stage_model(0);
  ASSERT_NE(sm, nullptr);
  const auto rare = sm->signatures.find(Signature({1, 2, 3, 4, 5}));
  const auto common = sm->signatures.find(Signature({1, 2, 4, 5}));
  ASSERT_NE(rare, sm->signatures.end());
  ASSERT_NE(common, sm->signatures.end());
  EXPECT_TRUE(rare->second.flow_outlier);
  EXPECT_FALSE(common->second.flow_outlier);
  EXPECT_NEAR(sm->train_flow_outlier_rate, 0.001, 0.002);
}

TEST(OutlierModel, DurationThresholdNearTrainedQuantile) {
  saad::Rng rng(2);
  const auto trace = figure4_trace(20000, rng);
  const OutlierModel model = OutlierModel::train(trace);
  const StageModel* sm = model.stage_model(0);
  const auto common = sm->signatures.find(Signature({1, 2, 4, 5}));
  ASSERT_NE(common, sm->signatures.end());
  EXPECT_TRUE(common->second.perf_applicable);
  // p99 of lognormal(median 10ms, sigma .15) ~ 10ms * exp(2.326*.15) ~ 14.2ms.
  EXPECT_NEAR(to_ms(common->second.duration_threshold), 14.2, 1.5);
  EXPECT_NEAR(common->second.train_perf_outlier_rate, 0.01, 0.005);
}

TEST(OutlierModel, ClassifyNormalTask) {
  saad::Rng rng(3);
  const OutlierModel model = OutlierModel::train(figure4_trace(20000, rng));
  Feature f;
  f.stage = 0;
  f.signature = Signature({1, 2, 4, 5});
  f.duration = ms(10);
  const auto c = model.classify(f);
  EXPECT_TRUE(c.known_stage);
  EXPECT_FALSE(c.new_signature);
  EXPECT_FALSE(c.flow_outlier);
  EXPECT_TRUE(c.perf_applicable);
  EXPECT_FALSE(c.perf_outlier);
}

TEST(OutlierModel, ClassifySlowTaskAsPerfOutlier) {
  saad::Rng rng(4);
  const OutlierModel model = OutlierModel::train(figure4_trace(20000, rng));
  Feature f;
  f.stage = 0;
  f.signature = Signature({1, 2, 4, 5});
  f.duration = ms(40);
  const auto c = model.classify(f);
  EXPECT_TRUE(c.perf_outlier);
  EXPECT_FALSE(c.flow_outlier);
}

TEST(OutlierModel, ClassifyNewSignature) {
  saad::Rng rng(5);
  const OutlierModel model = OutlierModel::train(figure4_trace(5000, rng));
  Feature f;
  f.stage = 0;
  f.signature = Signature({1, 2});  // premature termination flow
  const auto c = model.classify(f);
  EXPECT_TRUE(c.known_stage);
  EXPECT_TRUE(c.new_signature);
  EXPECT_TRUE(c.flow_outlier);
}

TEST(OutlierModel, ClassifyUnknownStage) {
  saad::Rng rng(6);
  const OutlierModel model = OutlierModel::train(figure4_trace(1000, rng));
  Feature f;
  f.stage = 99;
  const auto c = model.classify(f);
  EXPECT_FALSE(c.known_stage);
  EXPECT_TRUE(c.new_signature);
  EXPECT_TRUE(c.flow_outlier);
}

TEST(OutlierModel, SmallSignatureGroupsNotPerfApplicable) {
  // The rare signature (~0.1% of 20k = ~20 tasks) is below
  // min_signature_samples=50: no duration threshold for it.
  saad::Rng rng(7);
  const OutlierModel model = OutlierModel::train(figure4_trace(20000, rng));
  Feature f;
  f.stage = 0;
  f.signature = Signature({1, 2, 3, 4, 5});
  f.duration = sec(100);
  const auto c = model.classify(f);
  EXPECT_FALSE(c.perf_applicable);
  EXPECT_FALSE(c.perf_outlier);
}

TEST(OutlierModel, UnstableDurationsExcludedByKFold) {
  // Signature whose duration distribution shifts regime during training
  // (first 850 tasks ~1ms, last 150 ~5s): the cross-validated filter must
  // exclude it from performance detection.
  saad::Rng rng(8);
  std::vector<Synopsis> trace;
  for (int i = 0; i < 1000; ++i) {
    const UsTime d = (i >= 850) ? sec(5) + static_cast<UsTime>(rng.uniform(0, 1e6))
                                : ms(1);
    trace.push_back(make_synopsis(1, {1, 2}, d));
  }
  const OutlierModel model = OutlierModel::train(trace);
  const auto* sm = model.stage_model(1);
  const auto it = sm->signatures.find(Signature({1, 2}));
  ASSERT_NE(it, sm->signatures.end());
  EXPECT_FALSE(it->second.perf_applicable);
}

TEST(OutlierModel, FlowShareThresholdConfigurable) {
  std::vector<Synopsis> trace;
  // 90% sig A, 10% sig B.
  for (int i = 0; i < 900; ++i) trace.push_back(make_synopsis(0, {1}, ms(1)));
  for (int i = 0; i < 100; ++i) trace.push_back(make_synopsis(0, {2}, ms(1)));

  TrainingConfig strict;
  strict.flow_share_threshold = 0.2;  // anything under 20% share is rare
  const OutlierModel m1 = OutlierModel::train(trace, strict);
  EXPECT_TRUE(
      m1.stage_model(0)->signatures.at(Signature({2})).flow_outlier);

  TrainingConfig loose;
  loose.flow_share_threshold = 0.05;
  const OutlierModel m2 = OutlierModel::train(trace, loose);
  EXPECT_FALSE(
      m2.stage_model(0)->signatures.at(Signature({2})).flow_outlier);
}

TEST(OutlierModel, PoolsHostsIntoOneStageModel) {
  std::vector<Synopsis> trace;
  for (int host = 0; host < 4; ++host)
    for (int i = 0; i < 100; ++i)
      trace.push_back(
          make_synopsis(0, {1}, ms(1), static_cast<HostId>(host)));
  const OutlierModel model = OutlierModel::train(trace);
  EXPECT_EQ(model.num_stages(), 1u);
  EXPECT_EQ(model.stage_model(0)->task_count, 400u);
  EXPECT_EQ(model.trained_tasks(), 400u);
}

TEST(OutlierModel, EmptyTraceYieldsEmptyModel) {
  const OutlierModel model = OutlierModel::train({});
  EXPECT_EQ(model.num_stages(), 0u);
  EXPECT_EQ(model.stage_model(0), nullptr);
}

}  // namespace
}  // namespace saad::core
