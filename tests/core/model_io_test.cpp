#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/model.h"

namespace saad::core {
namespace {

std::vector<Synopsis> sample_trace(std::size_t n, saad::Rng& rng) {
  std::vector<Synopsis> trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Synopsis s;
    s.stage = static_cast<StageId>(rng.next_below(3));
    s.duration = static_cast<UsTime>(rng.lognormal_median(ms(10), 0.2));
    const bool rare = rng.chance(0.005);
    s.log_points = rare ? std::vector<LogPointCount>{{1, 1}, {2, 1}, {3, 1}}
                        : std::vector<LogPointCount>{{1, 1}, {2, 5}, {4, 1}};
    trace.push_back(std::move(s));
  }
  return trace;
}

TEST(ModelIo, RoundTripPreservesClassification) {
  saad::Rng rng(1);
  const auto trace = sample_trace(30000, rng);
  const OutlierModel original = OutlierModel::train(trace);

  std::vector<std::uint8_t> bytes;
  original.save(bytes);
  EXPECT_GT(bytes.size(), 16u);

  const auto loaded = OutlierModel::load(bytes);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_stages(), original.num_stages());
  EXPECT_EQ(loaded->trained_tasks(), original.trained_tasks());

  // Every training task classifies identically under both models.
  saad::Rng rng2(2);
  for (const auto& synopsis : sample_trace(2000, rng2)) {
    const Feature f = make_feature(synopsis);
    const auto a = original.classify(f);
    const auto b = loaded->classify(f);
    ASSERT_EQ(a.known_stage, b.known_stage);
    ASSERT_EQ(a.new_signature, b.new_signature);
    ASSERT_EQ(a.flow_outlier, b.flow_outlier);
    ASSERT_EQ(a.perf_applicable, b.perf_applicable);
    ASSERT_EQ(a.perf_outlier, b.perf_outlier);
  }
}

TEST(ModelIo, RoundTripPreservesConfigAndStats) {
  saad::Rng rng(3);
  TrainingConfig config;
  config.flow_share_threshold = 0.02;
  config.duration_quantile = 0.95;
  config.kfold_k = 7;
  config.unstable_factor = 3.5;
  config.min_signature_samples = 123;
  const OutlierModel original =
      OutlierModel::train(sample_trace(10000, rng), config);

  std::vector<std::uint8_t> bytes;
  original.save(bytes);
  const auto loaded = OutlierModel::load(bytes);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->config().flow_share_threshold, 0.02);
  EXPECT_DOUBLE_EQ(loaded->config().duration_quantile, 0.95);
  EXPECT_EQ(loaded->config().kfold_k, 7u);
  EXPECT_DOUBLE_EQ(loaded->config().unstable_factor, 3.5);
  EXPECT_EQ(loaded->config().min_signature_samples, 123u);

  const auto* sm = loaded->stage_model(0);
  const auto* sm_orig = original.stage_model(0);
  ASSERT_NE(sm, nullptr);
  ASSERT_NE(sm_orig, nullptr);
  EXPECT_EQ(sm->task_count, sm_orig->task_count);
  EXPECT_DOUBLE_EQ(sm->train_flow_outlier_rate,
                   sm_orig->train_flow_outlier_rate);
  EXPECT_EQ(sm->signatures.size(), sm_orig->signatures.size());
  for (const auto& [sig, ss] : sm_orig->signatures) {
    const auto it = sm->signatures.find(sig);
    ASSERT_NE(it, sm->signatures.end());
    EXPECT_EQ(it->second.task_count, ss.task_count);
    EXPECT_EQ(it->second.duration_threshold, ss.duration_threshold);
    EXPECT_DOUBLE_EQ(it->second.train_perf_outlier_rate,
                     ss.train_perf_outlier_rate);
  }
}

TEST(ModelIo, EmptyModelRoundTrips) {
  const OutlierModel empty = OutlierModel::train({});
  std::vector<std::uint8_t> bytes;
  empty.save(bytes);
  const auto loaded = OutlierModel::load(bytes);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_stages(), 0u);
}

TEST(ModelIo, RejectsBadMagic) {
  std::vector<std::uint8_t> junk = {'n', 'o', 't', 'a', 'm', 'o', 'd', 'l'};
  EXPECT_FALSE(OutlierModel::load(junk).has_value());
  EXPECT_FALSE(OutlierModel::load({}).has_value());
}

TEST(ModelIo, RejectsTruncation) {
  saad::Rng rng(4);
  const OutlierModel model = OutlierModel::train(sample_trace(5000, rng));
  std::vector<std::uint8_t> bytes;
  model.save(bytes);
  // Any strict prefix must fail to parse (never crash).
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_FALSE(OutlierModel::load(prefix).has_value()) << "cut=" << cut;
  }
}

TEST(ModelIo, RejectsTrailingGarbage) {
  saad::Rng rng(6);
  const OutlierModel model = OutlierModel::train(sample_trace(5000, rng));
  std::vector<std::uint8_t> bytes;
  model.save(bytes);
  ASSERT_TRUE(OutlierModel::load(bytes).has_value());
  // A single appended byte means the input is not a model image.
  for (const std::uint8_t extra : {0x00, 0x01, 0xFF}) {
    auto padded = bytes;
    padded.push_back(extra);
    EXPECT_FALSE(OutlierModel::load(padded).has_value());
  }
  // Nor is a model concatenated with itself.
  auto doubled = bytes;
  doubled.insert(doubled.end(), bytes.begin(), bytes.end());
  EXPECT_FALSE(OutlierModel::load(doubled).has_value());
}

TEST(ModelIo, FuzzGarbageDoesNotCrash) {
  saad::Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> junk(8 + rng.next_below(128));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    // Sometimes start with the real magic so deeper paths get fuzzed too.
    if (trial % 3 == 0) {
      const char magic[8] = {'S', 'A', 'A', 'D', 'M', 'D', 'L', '1'};
      std::copy(magic, magic + 8, junk.begin());
    }
    (void)OutlierModel::load(junk);
  }
}

}  // namespace
}  // namespace saad::core
