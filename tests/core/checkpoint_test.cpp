// Warm-restart checkpoint suite (core/checkpoint.h):
//  * codec round-trips, and strict all-or-nothing rejection of every
//    truncation and every byte-level corruption of an encoded checkpoint;
//  * CheckpointDir newest-valid fallback — a torn newest file falls back to
//    the previous checkpoint, counted in saad_checkpoint_corrupt_total;
//  * detector/pool state canonicality: the same stream saved at any thread
//    count encodes identical bytes, and save -> crash -> restore -> continue
//    produces verdicts byte-identical to an uninterrupted run;
//  * hot model swaps apply exactly at a window boundary, deterministically
//    across thread counts.
#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/analyzer_pool.h"
#include "core/log_registry.h"
#include "core/monitor.h"
#include "obs/metrics.h"
#include "testutil/temp_dir.h"

namespace saad::core {
namespace {

// ---- Shared fixtures ------------------------------------------------------

std::string dump(const std::vector<Anomaly>& anomalies) {
  std::string out;
  char line[256];
  for (const auto& a : anomalies) {
    std::snprintf(line, sizeof line,
                  "w=%zu ws=%lld h=%u s=%u k=%d new=%d p=%.17g prop=%.17g "
                  "train=%.17g n=%llu out=%llu sig=%s\n",
                  a.window, static_cast<long long>(a.window_start), a.host,
                  a.stage, static_cast<int>(a.kind),
                  a.due_to_new_signature ? 1 : 0, a.p_value, a.proportion,
                  a.train_proportion, static_cast<unsigned long long>(a.n),
                  static_cast<unsigned long long>(a.outliers),
                  a.example_signature.to_string().c_str());
    out += line;
  }
  return out;
}

Synopsis make(Rng& rng, UsTime start, double rare_rate, double slow_rate) {
  constexpr StageId kStages = 12;
  constexpr HostId kHosts = 6;
  Synopsis s;
  s.stage = static_cast<StageId>(rng.next_below(kStages));
  s.host = static_cast<HostId>(rng.next_below(kHosts));
  s.start = start;
  const auto base = static_cast<LogPointId>(s.stage * 8);
  s.log_points.push_back({base, 1});
  const auto variant = rng.next_below(3);
  for (std::uint64_t v = 0; v <= variant; ++v)
    s.log_points.push_back({static_cast<LogPointId>(base + 1 + v), 2});
  if (rng.next_double() < rare_rate)
    s.log_points.push_back({static_cast<LogPointId>(base + 7), 1});
  s.duration = 1000 + static_cast<UsTime>(rng.next_below(3000));
  if (rng.next_double() < slow_rate) s.duration *= 40;
  return s;
}

std::vector<Synopsis> make_trace(std::uint64_t seed, std::size_t count,
                                 double rare_rate, double slow_rate) {
  Rng rng(seed);
  std::vector<Synopsis> trace;
  trace.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    trace.push_back(
        make(rng, static_cast<UsTime>(i) * 700, rare_rate, slow_rate));
  return trace;
}

std::vector<Anomaly> sample_anomalies() {
  std::vector<Anomaly> anomalies;
  Anomaly a;
  a.window = 7;
  a.window_start = sec(420);
  a.host = 3;
  a.stage = 11;
  a.kind = AnomalyKind::kFlow;
  a.due_to_new_signature = true;
  a.p_value = 0.00012345678901234567;
  a.proportion = 0.25;
  a.train_proportion = 0.001953125;
  a.n = 1024;
  a.outliers = 256;
  a.example_signature = Signature(std::vector<LogPointId>{88, 89, 95});
  anomalies.push_back(a);
  Anomaly b;
  b.window = 9;
  b.window_start = sec(540);
  b.host = 0;
  b.stage = 2;
  b.kind = AnomalyKind::kPerformance;
  b.p_value = 1.0;
  b.n = 17;
  anomalies.push_back(b);  // empty example signature is representable
  return anomalies;
}

Checkpoint sample_checkpoint() {
  Checkpoint c;
  c.sequence = 42;
  c.model_epoch = 3;
  c.window = sec(60);
  c.threads = 4;
  c.ingested = 123456;
  c.published = 123460;
  c.acked = 123456;
  const auto model = OutlierModel::train(make_trace(5, 2000, 0.002, 0.005));
  model.save(c.model);
  LogRegistry registry;
  const auto stage = registry.register_stage("Handler");
  registry.register_log_point(stage, Level::kInfo, "hello");
  registry.save(c.registry);
  AnomalyDetector detector(&model, {});
  for (const auto& s : make_trace(6, 500, 0.01, 0.01)) detector.ingest(s);
  detector.save_state(c.analyzer);
  c.anomalies = sample_anomalies();
  return c;
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good());
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(f)),
                                   std::istreambuf_iterator<char>());
}

// ---- Codec ----------------------------------------------------------------

TEST(CheckpointCodec, AnomalyListRoundTrips) {
  const auto anomalies = sample_anomalies();
  std::vector<std::uint8_t> bytes;
  encode_anomalies(anomalies, bytes);
  std::vector<Anomaly> decoded;
  ASSERT_TRUE(decode_anomalies(bytes, decoded));
  EXPECT_EQ(dump(decoded), dump(anomalies));

  std::vector<Anomaly> none;
  std::vector<std::uint8_t> empty_bytes;
  encode_anomalies(none, empty_bytes);
  ASSERT_TRUE(decode_anomalies(empty_bytes, decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(CheckpointCodec, CheckpointRoundTrips) {
  const Checkpoint c = sample_checkpoint();
  std::vector<std::uint8_t> bytes;
  encode_checkpoint(c, bytes);
  const auto decoded = decode_checkpoint(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sequence, c.sequence);
  EXPECT_EQ(decoded->model_epoch, c.model_epoch);
  EXPECT_EQ(decoded->window, c.window);
  EXPECT_EQ(decoded->threads, c.threads);
  EXPECT_EQ(decoded->ingested, c.ingested);
  EXPECT_EQ(decoded->published, c.published);
  EXPECT_EQ(decoded->acked, c.acked);
  EXPECT_EQ(decoded->model, c.model);
  EXPECT_EQ(decoded->registry, c.registry);
  EXPECT_EQ(decoded->analyzer, c.analyzer);
  EXPECT_EQ(dump(decoded->anomalies), dump(c.anomalies));
}

TEST(CheckpointCodec, EveryTruncationIsRejected) {
  // All-or-nothing validation: a prefix cut at *any* byte — mid-magic,
  // mid-header, mid-payload, or right before the end marker — must decode
  // to nullopt, never to a partial checkpoint.
  const Checkpoint c = sample_checkpoint();
  std::vector<std::uint8_t> bytes;
  encode_checkpoint(c, bytes);
  ASSERT_TRUE(decode_checkpoint(bytes).has_value());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_FALSE(decode_checkpoint(prefix).has_value()) << "cut=" << cut;
  }
}

TEST(CheckpointCodec, EveryByteCorruptionIsRejected) {
  // CRC32C catches any single corrupted byte in any section (and the magic
  // check catches the prologue).
  const Checkpoint c = sample_checkpoint();
  std::vector<std::uint8_t> bytes;
  encode_checkpoint(c, bytes);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto mutated = bytes;
    mutated[i] ^= 0xFF;
    EXPECT_FALSE(decode_checkpoint(mutated).has_value()) << "byte=" << i;
  }
}

TEST(CheckpointCodec, TrailingBytesAreRejected) {
  const Checkpoint c = sample_checkpoint();
  std::vector<std::uint8_t> bytes;
  encode_checkpoint(c, bytes);
  bytes.push_back(0);
  EXPECT_FALSE(decode_checkpoint(bytes).has_value());
}

// ---- CheckpointDir --------------------------------------------------------

TEST(CheckpointDir, WriteLoadAndPrune) {
  testutil::TempDir tmp;
  CheckpointDir dir(tmp.path("ckpts"));
  ASSERT_TRUE(dir.ensure());
  EXPECT_EQ(dir.max_sequence(), 0u);
  EXPECT_FALSE(dir.load_latest().has_value());

  Checkpoint c = sample_checkpoint();
  for (std::uint64_t seq = 1; seq <= 6; ++seq) {
    c.sequence = seq;
    c.ingested = seq * 100;
    ASSERT_TRUE(dir.write(c, /*keep=*/4));
  }
  EXPECT_EQ(dir.max_sequence(), 6u);
  const auto latest = dir.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->sequence, 6u);
  EXPECT_EQ(latest->ingested, 600u);
  // Retention kept exactly the 4 newest.
  for (std::uint64_t seq = 1; seq <= 6; ++seq) {
    const bool expect_present = seq >= 3;
    EXPECT_EQ(std::ifstream(dir.path_for(seq)).good(), expect_present)
        << "seq=" << seq;
  }
}

TEST(CheckpointDir, TornNewestFallsBackToPreviousLoudly) {
  testutil::TempDir tmp;
  CheckpointDir dir(tmp.path("ckpts"));
  ASSERT_TRUE(dir.ensure());

  Checkpoint c = sample_checkpoint();
  c.sequence = 1;
  c.ingested = 1000;
  ASSERT_TRUE(dir.write(c));
  c.sequence = 2;
  c.ingested = 2000;
  ASSERT_TRUE(dir.write(c));
  const auto intact = read_bytes(dir.path_for(2));
  ASSERT_FALSE(intact.empty());

  auto& corrupt_total = obs::MetricsRegistry::global().counter(
      "saad_checkpoint_corrupt_total",
      "Checkpoint candidates rejected as torn or corrupt during "
      "newest-valid fallback.");

  // Tear the newest file at a spread of boundaries (empty file, mid-magic,
  // mid-section-header, mid-payload, just short of the end marker): every
  // tear falls back to checkpoint 1 and counts exactly one corrupt skip.
  for (std::size_t cut = 0; cut < intact.size();
       cut += (cut < 32 ? 1 : 7)) {
    write_bytes(dir.path_for(2),
                {intact.begin(),
                 intact.begin() + static_cast<std::ptrdiff_t>(cut)});
    const std::uint64_t before = corrupt_total.value();
    std::size_t skipped = 0;
    const auto fallback = dir.load_latest(&skipped);
    ASSERT_TRUE(fallback.has_value()) << "cut=" << cut;
    EXPECT_EQ(fallback->sequence, 1u) << "cut=" << cut;
    EXPECT_EQ(fallback->ingested, 1000u) << "cut=" << cut;
    EXPECT_EQ(skipped, 1u) << "cut=" << cut;
    if (obs::kMetricsEnabled) {
      EXPECT_EQ(corrupt_total.value(), before + 1) << "cut=" << cut;
    }
  }

  // Restore the intact file: no skip, newest wins again.
  write_bytes(dir.path_for(2), intact);
  std::size_t skipped = 0;
  const auto latest = dir.load_latest(&skipped);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->sequence, 2u);
  EXPECT_EQ(skipped, 0u);

  // Both torn: nothing to restore, both counted.
  write_bytes(dir.path_for(1), {intact.begin(), intact.begin() + 3});
  write_bytes(dir.path_for(2), {});
  EXPECT_FALSE(dir.load_latest(&skipped).has_value());
  EXPECT_EQ(skipped, 2u);
  // max_sequence still sees the (torn) files: resume numbering never reuses
  // a sequence, even one whose file failed validation.
  EXPECT_EQ(dir.max_sequence(), 2u);
}

// ---- Detector / pool state ------------------------------------------------

TEST(DetectorState, SaveRestoreRoundTripsCanonically) {
  const auto model = OutlierModel::train(make_trace(11, 20000, 0.002, 0.005));
  const auto stream = make_trace(12, 8000, 0.05, 0.08);
  DetectorConfig config;
  config.window = sec(5);

  AnomalyDetector original(&model, config);
  for (const auto& s : stream) original.ingest(s);
  std::vector<std::uint8_t> saved;
  original.save_state(saved);

  AnomalyDetector restored(&model, config);
  ASSERT_TRUE(restored.restore_state(saved));
  std::vector<std::uint8_t> resaved;
  restored.save_state(resaved);
  EXPECT_EQ(resaved, saved);  // canonical: equal state -> equal bytes

  EXPECT_EQ(dump(restored.finish()), dump(original.finish()));
}

TEST(DetectorState, MalformedInputLeavesDetectorUnchanged) {
  const auto model = OutlierModel::train({});
  AnomalyDetector detector(&model, {});
  for (const auto& s : make_trace(3, 200, 0.01, 0.01)) detector.ingest(s);
  std::vector<std::uint8_t> saved;
  detector.save_state(saved);

  for (std::size_t cut = 0; cut + 1 < saved.size(); cut += 3) {
    AnomalyDetector victim(&model, {});
    const std::span<const std::uint8_t> prefix(saved.data(), cut);
    if (victim.restore_state(prefix)) continue;  // a valid shorter encoding
    std::vector<std::uint8_t> untouched;
    victim.save_state(untouched);
    AnomalyDetector fresh(&model, {});
    std::vector<std::uint8_t> fresh_bytes;
    fresh.save_state(fresh_bytes);
    EXPECT_EQ(untouched, fresh_bytes) << "cut=" << cut;
  }
}

TEST(PoolState, BytesIdenticalAcrossThreadCounts) {
  const auto model = OutlierModel::train(make_trace(11, 20000, 0.002, 0.005));
  const auto stream = make_trace(12, 8000, 0.05, 0.08);
  DetectorConfig config;
  config.window = sec(5);

  std::vector<std::uint8_t> serial_bytes;
  {
    config.analyzer_threads = 1;
    AnalyzerPool pool(&model, config);
    for (const auto& s : stream) pool.ingest(s);
    pool.save_state(serial_bytes);
  }
  for (std::size_t threads : {2u, 4u}) {
    config.analyzer_threads = threads;
    AnalyzerPool pool(&model, config);
    for (const auto& s : stream) pool.ingest(s);
    std::vector<std::uint8_t> bytes;
    pool.save_state(bytes);
    EXPECT_EQ(bytes, serial_bytes) << "threads=" << threads;
  }
}

TEST(PoolState, ResumeMatchesUninterruptedAcrossThreadCounts) {
  const auto model = OutlierModel::train(make_trace(11, 20000, 0.002, 0.005));
  const auto stream = make_trace(12, 12000, 0.05, 0.08);
  const std::size_t half = stream.size() / 2;
  DetectorConfig config;
  // The 8.4s stream spans four 2s windows, so the mid-stream barrier at
  // ~4.2s has already closed two of them — the checkpoint carries a real
  // close cursor, not just open tallies.
  config.window = sec(2);

  // Golden: one uninterrupted run with a mid-stream close barrier.
  config.analyzer_threads = 1;
  std::string golden;
  {
    AnalyzerPool pool(&model, config);
    for (std::size_t i = 0; i < half; ++i) pool.ingest(stream[i]);
    golden += dump(pool.advance_to(stream[half].start));
    for (std::size_t i = half; i < stream.size(); ++i) pool.ingest(stream[i]);
    golden += dump(pool.finish());
  }
  ASSERT_FALSE(golden.empty());

  // Crash after the mid-stream barrier, restore under a different thread
  // count, continue: the combined verdicts must be byte-identical.
  for (const auto& [save_threads, resume_threads] :
       {std::pair<std::size_t, std::size_t>{1, 4}, {4, 1}, {4, 2}}) {
    std::string combined;
    std::vector<std::uint8_t> saved;
    std::size_t resumed_next = 0;
    {
      config.analyzer_threads = save_threads;
      AnalyzerPool pool(&model, config);
      for (std::size_t i = 0; i < half; ++i) pool.ingest(stream[i]);
      combined += dump(pool.advance_to(stream[half].start));
      pool.save_state(saved);
      // SIGKILL here: the pool is dropped without finish().
    }
    {
      config.analyzer_threads = resume_threads;
      AnalyzerPool pool(&model, config);
      ASSERT_TRUE(pool.restore_state(saved));
      resumed_next = pool.restored_next_window();
      for (std::size_t i = half; i < stream.size(); ++i)
        pool.ingest(stream[i]);
      combined += dump(pool.finish());
    }
    EXPECT_EQ(combined, golden)
        << "save_threads=" << save_threads
        << " resume_threads=" << resume_threads;
    EXPECT_GT(resumed_next, 0u);  // mid-stream: some windows already closed
  }
}

TEST(PoolState, ModelSwapAppliesAtWindowBoundary) {
  const auto model_a =
      OutlierModel::train(make_trace(11, 20000, 0.002, 0.005));
  const auto model_b =
      OutlierModel::train(make_trace(21, 20000, 0.02, 0.03));
  const auto stream = make_trace(12, 12000, 0.05, 0.08);
  const std::size_t half = stream.size() / 2;
  DetectorConfig config;
  config.window = sec(5);

  auto run = [&](std::size_t threads) {
    config.analyzer_threads = threads;
    AnalyzerPool pool(&model_a, config);
    std::string out;
    for (std::size_t i = 0; i < half; ++i) pool.ingest(stream[i]);
    // Staged mid-stream: nothing changes until the next boundary.
    pool.swap_model(&model_b);
    EXPECT_EQ(pool.model_epoch(), 0u);
    out += dump(pool.advance_to(stream[half].start));
    EXPECT_EQ(pool.model_epoch(), 1u);  // applied at the barrier
    for (std::size_t i = half; i < stream.size(); ++i) pool.ingest(stream[i]);
    out += dump(pool.finish());
    EXPECT_EQ(pool.model_epoch(), 1u);  // no re-apply without a new stage
    return out;
  };

  const std::string serial = run(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(4), serial);

  // The swap is observable: the same stream without it verdicts differently
  // (model B was trained noisier, so post-swap windows test against
  // different baselines).
  config.analyzer_threads = 1;
  AnalyzerPool no_swap(&model_a, config);
  std::string unswapped;
  for (std::size_t i = 0; i < half; ++i) no_swap.ingest(stream[i]);
  unswapped += dump(no_swap.advance_to(stream[half].start));
  for (std::size_t i = half; i < stream.size(); ++i)
    no_swap.ingest(stream[i]);
  unswapped += dump(no_swap.finish());
  EXPECT_NE(unswapped, serial);
}

// ---- Monitor --------------------------------------------------------------

TEST(MonitorState, SaveRestoreResumesDetection) {
  LogRegistry registry;
  const auto stage = registry.register_stage("Handler");
  const auto lp_a = registry.register_log_point(stage, Level::kDebug, "recv");
  const auto lp_b = registry.register_log_point(stage, Level::kDebug, "done");
  const auto lp_rare =
      registry.register_log_point(stage, Level::kWarn, "retry");

  auto run_schedule = [&](Monitor& monitor, ManualClock& clock,
                          std::uint64_t seed, bool faulty, int tasks) {
    Rng rng(seed);
    for (int i = 0; i < tasks; ++i) {
      const auto host = static_cast<HostId>(rng.next_below(4));
      auto& tracker = monitor.tracker(host);
      auto task = tracker.begin_task(stage);
      task->on_log(lp_a, clock.now());
      if (faulty && rng.next_double() < 0.15) task->on_log(lp_rare, clock.now());
      UsTime d = ms(2 + static_cast<std::int64_t>(rng.next_below(5)));
      if (faulty && rng.next_double() < 0.2) d *= 30;
      clock.advance(d);
      task->on_log(lp_b, clock.now());
      tracker.end_task(std::move(task));
      clock.advance(ms(1));
    }
  };

  // Train, arm, run the first half, and poll once.
  ManualClock train_clock;
  Monitor trainer(&registry, &train_clock);
  trainer.start_training();
  run_schedule(trainer, train_clock, 77, /*faulty=*/false, 4000);
  trainer.train();

  DetectorConfig config;
  config.window = sec(10);

  ManualClock clock_a;
  Monitor a(&registry, &clock_a);
  a.set_model(*trainer.model());
  a.arm(config);
  std::string head;
  run_schedule(a, clock_a, 900, /*faulty=*/true, 1500);
  head += dump(a.poll(clock_a.now()));
  std::vector<std::uint8_t> saved;
  ASSERT_TRUE(a.save_state(saved));
  const UsTime snapshot_now = clock_a.now();

  // Continue A to the end — the golden tail.
  run_schedule(a, clock_a, 901, /*faulty=*/true, 1500);
  std::string tail_a = dump(a.poll(clock_a.now()));
  tail_a += dump(a.finish());

  // B restores the snapshot, starts its clock at the snapshot time, and
  // replays the identical continuation schedule.
  ManualClock clock_b;
  clock_b.advance(snapshot_now);
  Monitor b(&registry, &clock_b);
  ASSERT_TRUE(b.restore_state(saved));
  std::string tail_b;
  run_schedule(b, clock_b, 901, /*faulty=*/true, 1500);
  tail_b += dump(b.poll(clock_b.now()));
  tail_b += dump(b.finish());

  EXPECT_EQ(tail_b, tail_a);
  ASSERT_FALSE((head + tail_a).empty());
}

}  // namespace
}  // namespace saad::core
