#include "core/monitor.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "core/log_registry.h"
#include "core/logger.h"
#include "core/trace_io.h"
#include "testutil/temp_dir.h"

namespace saad::core {
namespace {

struct MonitorFixture : ::testing::Test {
  LogRegistry registry;
  ManualClock clock;
  StageId stage = kInvalidStage;
  LogPointId lp_a = 0, lp_b = 0, lp_rare = 0;

  void SetUp() override {
    stage = registry.register_stage("Worker");
    lp_a = registry.register_log_point(stage, Level::kDebug, "begin");
    lp_b = registry.register_log_point(stage, Level::kDebug, "end");
    lp_rare = registry.register_log_point(stage, Level::kWarn, "oops");
  }

  void run_task(Monitor& monitor, bool rare, UsTime duration,
                HostId host = 0) {
    auto& tracker = monitor.tracker(host);
    auto task = tracker.begin_task(stage);
    task->on_log(lp_a, clock.now());
    if (rare) task->on_log(lp_rare, clock.now());
    clock.advance(duration);
    task->on_log(lp_b, clock.now());
    clock.advance(ms(1));  // spread start times
    tracker.end_task(std::move(task));
  }
};

TEST_F(MonitorFixture, EndToEndTrainingAndDetection) {
  Monitor monitor(&registry, &clock);
  monitor.start_training();
  for (int i = 0; i < 2000; ++i) run_task(monitor, false, ms(5));
  monitor.train();
  ASSERT_EQ(monitor.training_trace().size(), 2000u);
  ASSERT_NE(monitor.model(), nullptr);

  monitor.arm();
  for (int i = 0; i < 100; ++i) run_task(monitor, false, ms(5));
  for (int i = 0; i < 30; ++i) run_task(monitor, true, ms(5));
  clock.advance(minutes(2));
  const auto anomalies = monitor.poll(clock.now());
  ASSERT_FALSE(anomalies.empty());
  EXPECT_EQ(anomalies[0].kind, AnomalyKind::kFlow);
  EXPECT_TRUE(anomalies[0].due_to_new_signature);
}

TEST_F(MonitorFixture, QuietDetectionWindowIsClean) {
  Monitor monitor(&registry, &clock);
  monitor.start_training();
  for (int i = 0; i < 2000; ++i) run_task(monitor, false, ms(5));
  monitor.train();
  monitor.arm();
  for (int i = 0; i < 500; ++i) run_task(monitor, false, ms(5));
  clock.advance(minutes(2));
  EXPECT_TRUE(monitor.poll(clock.now()).empty());
}

TEST_F(MonitorFixture, TrackerIsStablePerHost) {
  Monitor monitor(&registry, &clock);
  auto& t0 = monitor.tracker(0);
  auto& t5 = monitor.tracker(5);
  EXPECT_EQ(&t0, &monitor.tracker(0));
  EXPECT_EQ(&t5, &monitor.tracker(5));
  EXPECT_NE(&t0, &t5);
  EXPECT_EQ(t0.host(), 0);
  EXPECT_EQ(t5.host(), 5);
}

TEST_F(MonitorFixture, TrainWithoutStartTrainingThrows) {
  Monitor monitor(&registry, &clock);
  EXPECT_THROW(monitor.train(), std::logic_error);
}

TEST_F(MonitorFixture, ArmWithoutModelThrows) {
  Monitor monitor(&registry, &clock);
  EXPECT_THROW(monitor.arm(), std::logic_error);
}

TEST_F(MonitorFixture, StartTrainingDiscardsStaleSynopses) {
  Monitor monitor(&registry, &clock);
  run_task(monitor, false, ms(5));  // before training formally starts
  monitor.start_training();
  run_task(monitor, false, ms(5));
  monitor.train();
  EXPECT_EQ(monitor.training_trace().size(), 1u);
}

TEST_F(MonitorFixture, PollDuringTrainingAccumulatesTrace) {
  Monitor monitor(&registry, &clock);
  monitor.start_training();
  run_task(monitor, false, ms(5));
  EXPECT_TRUE(monitor.poll(clock.now()).empty());
  run_task(monitor, false, ms(5));
  monitor.train();
  EXPECT_EQ(monitor.training_trace().size(), 2u);
}

TEST_F(MonitorFixture, FinishClosesOpenWindows) {
  Monitor monitor(&registry, &clock);
  monitor.start_training();
  for (int i = 0; i < 1000; ++i) run_task(monitor, false, ms(5));
  monitor.train();
  monitor.arm();
  run_task(monitor, true, ms(5));  // new signature in a still-open window
  const auto anomalies = monitor.finish();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_TRUE(anomalies[0].due_to_new_signature);
}

TEST_F(MonitorFixture, ChannelCountsBytes) {
  Monitor monitor(&registry, &clock);
  monitor.start_training();
  for (int i = 0; i < 10; ++i) run_task(monitor, false, ms(5));
  EXPECT_EQ(monitor.channel().pushed(), 10u);
  EXPECT_GT(monitor.channel().encoded_bytes(), 0u);
}

// ---- Pinned edge-case behavior (documented in monitor.h) -------------------

TEST_F(MonitorFixture, PollBeforeArmReturnsEmptyAndDiscards) {
  Monitor monitor(&registry, &clock);
  run_task(monitor, false, ms(5));
  // Idle poll: no detection, no training capture — the synopsis is drained
  // and discarded (same policy arm() applies between training and arming).
  EXPECT_TRUE(monitor.poll(clock.now()).empty());
  EXPECT_EQ(monitor.channel().pushed(), 1u);  // lifetime counter unaffected
  monitor.start_training();
  run_task(monitor, false, ms(5));
  monitor.train();
  // Only the post-start task made it into the trace.
  EXPECT_EQ(monitor.training_trace().size(), 1u);
}

TEST_F(MonitorFixture, TrainOnEmptyTraceYieldsEmptyLoudModel) {
  Monitor monitor(&registry, &clock);
  monitor.start_training();
  monitor.train();  // zero tasks observed: valid, not an error
  ASSERT_NE(monitor.model(), nullptr);
  EXPECT_EQ(monitor.model()->trained_tasks(), 0u);
  EXPECT_EQ(monitor.model()->num_stages(), 0u);
  // Against an empty model every stage is unknown, so detection is loud:
  // each task raises a new-signature flow anomaly rather than being ignored.
  monitor.arm();
  run_task(monitor, false, ms(5));
  const auto anomalies = monitor.finish();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, AnomalyKind::kFlow);
  EXPECT_TRUE(anomalies[0].due_to_new_signature);
}

TEST_F(MonitorFixture, FinishTwiceSecondCallIsEmpty) {
  Monitor monitor(&registry, &clock);
  monitor.start_training();
  for (int i = 0; i < 1000; ++i) run_task(monitor, false, ms(5));
  monitor.train();
  monitor.arm();
  run_task(monitor, true, ms(5));
  EXPECT_FALSE(monitor.finish().empty());
  // All windows were closed by the first call; with no new synopses the
  // second finish() has nothing to report (and must not throw or re-emit).
  EXPECT_TRUE(monitor.finish().empty());
  EXPECT_TRUE(monitor.armed());  // finish() does not disarm
}

TEST_F(MonitorFixture, FinishBeforeArmReturnsEmpty) {
  Monitor monitor(&registry, &clock);
  EXPECT_TRUE(monitor.finish().empty());
}

TEST_F(MonitorFixture, MultiThreadedArmMatchesSerialVerdicts) {
  Monitor monitor(&registry, &clock);
  monitor.start_training();
  for (int i = 0; i < 1500; ++i) run_task(monitor, false, ms(5));
  monitor.train();
  DetectorConfig config;
  config.analyzer_threads = 4;
  monitor.arm(config);
  for (int i = 0; i < 100; ++i) run_task(monitor, false, ms(5));
  for (int i = 0; i < 30; ++i) run_task(monitor, true, ms(5));
  clock.advance(minutes(2));
  const auto anomalies = monitor.poll(clock.now());
  ASSERT_FALSE(anomalies.empty());
  EXPECT_EQ(anomalies[0].kind, AnomalyKind::kFlow);
  EXPECT_TRUE(anomalies[0].due_to_new_signature);
}

TEST_F(MonitorFixture, RecordingStreamsSynopsesToDisk) {
  const auto path = testutil::scratch_path("monitor_rec.trc");
  Monitor monitor(&registry, &clock);
  TraceWriter::Options options;
  options.block_bytes = 256;  // several blocks for 200 tasks
  TraceWriter writer(path, options);
  monitor.start_recording(&writer);
  for (int i = 0; i < 200; ++i) run_task(monitor, false, ms(5));
  monitor.poll(clock.now());
  EXPECT_TRUE(monitor.stop_recording());
  ASSERT_TRUE(writer.finalize());
  EXPECT_EQ(writer.synopses_written(), 200u);
  // Recording spills to disk instead of RAM.
  EXPECT_TRUE(monitor.training_trace().empty());

  TraceStats stats;
  const auto loaded = read_trace_file(path, &stats);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 200u);
  EXPECT_EQ(stats.version, 2);
  EXPECT_GT(stats.blocks_total, 1u);
  for (const auto& s : *loaded) EXPECT_EQ(s.stage, stage);

  // The spilled trace round-trips into training, closing the loop:
  // record -> file -> train.
  Monitor trainer(&registry, &clock);
  trainer.set_model(OutlierModel::train(*loaded));
  trainer.arm();
  run_task(trainer, true, ms(5));
  clock.advance(minutes(2));
  EXPECT_FALSE(trainer.poll(clock.now()).empty());
  std::filesystem::remove(path);
}

TEST_F(MonitorFixture, StopRecordingWithoutStartThrows) {
  Monitor monitor(&registry, &clock);
  EXPECT_THROW(monitor.stop_recording(), std::logic_error);
}

TEST_F(MonitorFixture, SetModelAllowsExternallyTrainedModel) {
  Monitor trainer(&registry, &clock);
  trainer.start_training();
  for (int i = 0; i < 1000; ++i) run_task(trainer, false, ms(5));
  trainer.train();

  Monitor fresh(&registry, &clock);
  fresh.set_model(*trainer.model());
  fresh.arm();
  run_task(fresh, true, ms(5));
  clock.advance(minutes(2));
  EXPECT_FALSE(fresh.poll(clock.now()).empty());
}

}  // namespace
}  // namespace saad::core
