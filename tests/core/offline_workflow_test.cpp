// Integration: the full offline workflow through the public API —
// record (monitor capture) -> trace file -> train -> model file -> load ->
// detect -> incident grouping -> HTML report. What tools/saad_offline does,
// exercised in-process.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "core/saad.h"
#include "testutil/temp_dir.h"

namespace saad::core {
namespace {

struct OfflineWorkflow : ::testing::Test {
  LogRegistry registry;
  ManualClock clock;
  StageId stage = kInvalidStage;
  LogPointId lp_a = 0, lp_b = 0, lp_bug = 0;

  void SetUp() override {
    stage = registry.register_stage("Pipeline");
    lp_a = registry.register_log_point(stage, Level::kDebug, "step a");
    lp_b = registry.register_log_point(stage, Level::kDebug, "step b");
    lp_bug = registry.register_log_point(stage, Level::kWarn, "bug branch");
  }

  std::vector<Synopsis> record(std::size_t n, double bug_rate,
                               std::uint64_t seed) {
    Monitor monitor(&registry, &clock);
    monitor.start_training();
    auto& tracker = monitor.tracker(0);
    saad::Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      auto task = tracker.begin_task(stage);
      task->on_log(lp_a, clock.now());
      if (rng.chance(bug_rate)) task->on_log(lp_bug, clock.now());
      clock.advance(static_cast<UsTime>(rng.lognormal_median(ms(5), 0.2)));
      task->on_log(lp_b, clock.now());
      tracker.end_task(std::move(task));
      clock.advance(ms(2));
    }
    monitor.poll(clock.now());
    return monitor.training_trace();
  }
};

TEST_F(OfflineWorkflow, EndToEndThroughFiles) {
  const testutil::TempDir tmp;  // unique per test: safe under `ctest -j`
  const auto trace_path = tmp.path("clean.trc");
  const auto model_path = tmp.path("model.bin");
  const auto registry_path = tmp.path("registry.bin");

  // 1. Record a clean trace and persist everything.
  const auto clean = record(20000, 0.0, 1);
  ASSERT_TRUE(write_trace_file(trace_path, clean));
  std::vector<std::uint8_t> registry_bytes;
  registry.save(registry_bytes);

  // 2. Train from the file; persist the model.
  const auto loaded_trace = read_trace_file(trace_path);
  ASSERT_TRUE(loaded_trace.has_value());
  const auto model = OutlierModel::train(*loaded_trace);
  std::vector<std::uint8_t> model_bytes;
  model.save(model_bytes);
  {
    std::ofstream f(model_path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(model_bytes.data()),
            static_cast<std::streamsize>(model_bytes.size()));
  }

  // 3. In a "different process": load registry + model, detect on a buggy
  // trace.
  LogRegistry registry2;
  ASSERT_TRUE(registry2.load(registry_bytes));
  EXPECT_EQ(registry2.stage(stage).name, "Pipeline");
  std::ifstream f(model_path, std::ios::binary);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  const auto model2 = OutlierModel::load(bytes);
  ASSERT_TRUE(model2.has_value());

  const auto buggy = record(20000, 0.05, 2);
  AnomalyDetector detector(&*model2);
  for (const auto& s : buggy) detector.ingest(s);
  const auto anomalies = detector.finish();
  ASSERT_FALSE(anomalies.empty());
  EXPECT_TRUE(anomalies[0].due_to_new_signature);

  // 4. Incident grouping + HTML report against the reloaded registry.
  const auto incidents = group_incidents(anomalies);
  ASSERT_FALSE(incidents.empty());
  const auto text = describe(incidents[0], registry2);
  EXPECT_NE(text.find("Pipeline(0)"), std::string::npos);

  const auto html = render_html_report(anomalies, registry2);
  EXPECT_NE(html.find("bug branch"), std::string::npos);
}

TEST_F(OfflineWorkflow, CleanTraceAgainstOwnModelIsQuiet) {
  const auto clean = record(20000, 0.0, 3);
  const auto model = OutlierModel::train(clean);
  const auto fresh = record(20000, 0.0, 4);
  AnomalyDetector detector(&model);
  for (const auto& s : fresh) detector.ingest(s);
  EXPECT_TRUE(detector.finish().empty());
}

TEST_F(OfflineWorkflow, RegistryRoundTripPreservesDictionary) {
  std::vector<std::uint8_t> bytes;
  registry.save(bytes);
  LogRegistry copy;
  ASSERT_TRUE(copy.load(bytes));
  EXPECT_EQ(copy.num_stages(), registry.num_stages());
  EXPECT_EQ(copy.num_log_points(), registry.num_log_points());
  EXPECT_EQ(copy.log_point(lp_bug).template_text, "bug branch");
  EXPECT_EQ(copy.log_point(lp_bug).level, Level::kWarn);
  EXPECT_EQ(copy.find_stage("Pipeline"), stage);
}

TEST_F(OfflineWorkflow, RegistryLoadRejectsGarbage) {
  LogRegistry copy;
  EXPECT_FALSE(copy.load({}));
  std::vector<std::uint8_t> junk = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_FALSE(copy.load(junk));
}

}  // namespace
}  // namespace saad::core
