#include "core/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.h"

namespace saad::core {
namespace {

std::vector<Synopsis> sample_trace(std::size_t n) {
  saad::Rng rng(11);
  std::vector<Synopsis> trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Synopsis s;
    s.host = static_cast<HostId>(rng.next_below(4));
    s.stage = static_cast<StageId>(rng.next_below(12));
    s.uid = i + 1;
    s.start = static_cast<UsTime>(rng.next_below(minutes(30)));
    s.duration = static_cast<UsTime>(rng.next_below(sec(1)));
    LogPointId prev = 0;
    const std::size_t points = 1 + rng.next_below(6);
    for (std::size_t p = 0; p < points; ++p) {
      prev = static_cast<LogPointId>(prev + 1 + rng.next_below(10));
      s.log_points.push_back(
          {prev, static_cast<std::uint32_t>(1 + rng.next_below(20))});
    }
    trace.push_back(std::move(s));
  }
  return trace;
}

TEST(TraceIo, EncodeDecodeRoundTrip) {
  const auto trace = sample_trace(500);
  const auto bytes = encode_trace(trace);
  const auto decoded = decode_trace(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i)
    ASSERT_EQ((*decoded)[i], trace[i]) << "record " << i;
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  const auto bytes = encode_trace({});
  const auto decoded = decode_trace(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(TraceIo, RejectsBadMagic) {
  std::vector<std::uint8_t> junk = {'b', 'o', 'g', 'u', 's', '!', '!', '!'};
  EXPECT_FALSE(decode_trace(junk).has_value());
  EXPECT_FALSE(decode_trace({}).has_value());
}

TEST(TraceIo, RejectsTruncatedRecord) {
  auto bytes = encode_trace(sample_trace(10));
  bytes.resize(bytes.size() - 3);  // chop mid-record
  EXPECT_FALSE(decode_trace(bytes).has_value());
}

TEST(TraceIo, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "saad_trace_test.trc")
          .string();
  const auto trace = sample_trace(200);
  ASSERT_TRUE(write_trace_file(path, trace));
  const auto loaded = read_trace_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, trace);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileReturnsNullopt) {
  EXPECT_FALSE(read_trace_file("/nonexistent/dir/trace.trc").has_value());
}

TEST(TraceIo, EncodedSizeIsCompact) {
  // Paper: ~48 bytes per synopsis. Header + records must stay in that realm.
  const auto trace = sample_trace(1000);
  const auto bytes = encode_trace(trace);
  EXPECT_LT(bytes.size() / trace.size(), 64u);
}

}  // namespace
}  // namespace saad::core
