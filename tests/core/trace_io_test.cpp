#include "core/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "testutil/temp_dir.h"

namespace saad::core {
namespace {

namespace fs = std::filesystem;

std::vector<Synopsis> sample_trace(std::size_t n) {
  saad::Rng rng(11);
  std::vector<Synopsis> trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Synopsis s;
    s.host = static_cast<HostId>(rng.next_below(4));
    s.stage = static_cast<StageId>(rng.next_below(12));
    s.uid = i + 1;
    s.start = static_cast<UsTime>(rng.next_below(minutes(30)));
    s.duration = static_cast<UsTime>(rng.next_below(sec(1)));
    LogPointId prev = 0;
    const std::size_t points = 1 + rng.next_below(6);
    for (std::size_t p = 0; p < points; ++p) {
      prev = static_cast<LogPointId>(prev + 1 + rng.next_below(10));
      s.log_points.push_back(
          {prev, static_cast<std::uint32_t>(1 + rng.next_below(20))});
    }
    trace.push_back(std::move(s));
  }
  return trace;
}

std::string temp_path(const char* name) {
  // Process-unique scratch dir: ctest -j runs each test as its own process,
  // so literal names under the shared temp root would race across suites.
  return testutil::scratch_path(name);
}

void write_bytes(const std::string& path,
                 std::span<const std::uint8_t> bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good());
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(f)),
                                   std::istreambuf_iterator<char>());
}

std::vector<Synopsis> drain(TraceReader& reader) {
  std::vector<Synopsis> out;
  Synopsis s;
  while (reader.next(s)) out.push_back(std::move(s));
  return out;
}

// ---- v1 buffer codec -------------------------------------------------------

TEST(TraceIo, EncodeDecodeRoundTrip) {
  const auto trace = sample_trace(500);
  const auto bytes = encode_trace(trace);
  TraceStats stats;
  const auto decoded = decode_trace(bytes, &stats);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i)
    ASSERT_EQ((*decoded)[i], trace[i]) << "record " << i;
  EXPECT_EQ(stats.version, 1);
  EXPECT_EQ(stats.synopses, trace.size());
  EXPECT_EQ(stats.bytes_discarded, 0u);
  EXPECT_FALSE(stats.truncated_tail);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  const auto bytes = encode_trace({});
  const auto decoded = decode_trace(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(TraceIo, RejectsBadMagic) {
  std::vector<std::uint8_t> junk = {'b', 'o', 'g', 'u', 's', '!', '!', '!'};
  EXPECT_FALSE(decode_trace(junk).has_value());
  EXPECT_FALSE(decode_trace({}).has_value());
}

TEST(TraceIo, TruncatedV1RecoversCompleteRecordPrefix) {
  const auto trace = sample_trace(10);
  auto bytes = encode_trace(trace);
  bytes.resize(bytes.size() - 3);  // chop mid-record
  TraceStats stats;
  const auto decoded = decode_trace(bytes, &stats);
  ASSERT_TRUE(decoded.has_value());
  // Every record before the torn one is recovered bit-identically.
  ASSERT_GE(decoded->size(), 9u);
  for (std::size_t i = 0; i < 9; ++i)
    ASSERT_EQ((*decoded)[i], trace[i]) << "record " << i;
  EXPECT_TRUE(stats.truncated_tail);
  EXPECT_GT(stats.bytes_discarded, 0u);
}

TEST(TraceIo, V1EveryTruncationPointRecoversAPrefix) {
  const auto trace = sample_trace(20);
  const auto bytes = encode_trace(trace);
  for (std::size_t cut = 8; cut < bytes.size(); ++cut) {
    TraceStats stats;
    const auto decoded =
        decode_trace(std::span(bytes.data(), cut), &stats);
    ASSERT_TRUE(decoded.has_value()) << "cut=" << cut;
    ASSERT_LE(decoded->size(), trace.size());
    // Recovered records must be a bit-identical prefix unless the cut
    // landed exactly on a record boundary mid-way (then there is no tail).
    for (std::size_t i = 0; i < decoded->size() && i < trace.size(); ++i)
      ASSERT_EQ((*decoded)[i], trace[i]) << "cut=" << cut << " record " << i;
  }
}

// ---- v2 writer/reader ------------------------------------------------------

TEST(TraceV2, WriterReaderRoundTripAcrossManyBlocks) {
  const auto path = temp_path("saad_v2_roundtrip.trc");
  const auto trace = sample_trace(500);
  TraceWriter::Options options;
  options.block_bytes = 1024;  // force many blocks
  {
    TraceWriter writer(path, options);
    ASSERT_TRUE(writer.ok());
    for (const auto& s : trace) ASSERT_TRUE(writer.append(s));
    ASSERT_TRUE(writer.finalize());
    EXPECT_EQ(writer.synopses_written(), trace.size());
    EXPECT_GT(writer.blocks_written(), 5u);
    EXPECT_EQ(writer.bytes_written(), fs::file_size(path));
  }
  TraceReader reader(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.version(), 2);
  const auto loaded = drain(reader);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i)
    ASSERT_EQ(loaded[i], trace[i]) << "record " << i;
  EXPECT_EQ(reader.stats().blocks_corrupt, 0u);
  EXPECT_EQ(reader.stats().bytes_discarded, 0u);
  EXPECT_FALSE(reader.stats().truncated_tail);
  // O(one block) memory: the reader never buffered more than one framed
  // block (payload cap + one oversized record + 16-byte header).
  EXPECT_LT(reader.max_buffered_bytes(), 2 * options.block_bytes);
  fs::remove(path);
}

TEST(TraceV2, TornTailRecoversEveryFlushedBlock) {
  const auto path = temp_path("saad_v2_torn.trc");
  const auto trace = sample_trace(200);
  // Record the (byte offset, records so far) boundary after every flush so
  // each truncation point has an exact expected recovery.
  std::vector<std::pair<std::uint64_t, std::size_t>> boundaries;
  {
    TraceWriter::Options options;
    options.block_bytes = 1 << 20;  // seal blocks only via flush()
    options.atomic_finalize = false;
    TraceWriter writer(path, options);
    ASSERT_TRUE(writer.ok());
    boundaries.emplace_back(writer.bytes_written(), 0);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      ASSERT_TRUE(writer.append(trace[i]));
      if ((i + 1) % 10 == 0) {
        ASSERT_TRUE(writer.flush());
        boundaries.emplace_back(writer.bytes_written(), i + 1);
      }
    }
    ASSERT_TRUE(writer.finalize());
  }
  const auto bytes = read_bytes(path);
  ASSERT_EQ(bytes.size(), boundaries.back().first);

  const auto torn = temp_path("saad_v2_torn_cut.trc");
  for (std::size_t cut = 8; cut <= bytes.size(); cut += 7) {
    write_bytes(torn, std::span(bytes.data(), cut));
    // Every fully-flushed block before the cut must come back bit-identical.
    std::size_t expected = 0;
    for (const auto& [offset, records] : boundaries)
      if (offset <= cut) expected = records;
    TraceReader reader(torn);
    ASSERT_TRUE(reader.ok()) << "cut=" << cut;
    const auto recovered = drain(reader);
    ASSERT_EQ(recovered.size(), expected) << "cut=" << cut;
    for (std::size_t i = 0; i < expected; ++i)
      ASSERT_EQ(recovered[i], trace[i]) << "cut=" << cut << " record " << i;
    EXPECT_EQ(reader.stats().blocks_corrupt, 0u) << "cut=" << cut;
  }
  fs::remove(path);
  fs::remove(torn);
}

TEST(TraceV2, CorruptBlockIsSkippedAndCounted) {
  const auto path = temp_path("saad_v2_corrupt.trc");
  const auto trace = sample_trace(30);
  std::vector<std::uint64_t> block_starts;
  {
    TraceWriter::Options options;
    options.block_bytes = 1 << 20;
    options.atomic_finalize = false;
    TraceWriter writer(path, options);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      block_starts.push_back(writer.bytes_written());
      ASSERT_TRUE(writer.append(trace[i]));
      if ((i + 1) % 10 == 0) {
        ASSERT_TRUE(writer.flush());
      }
    }
    ASSERT_TRUE(writer.finalize());
  }
  auto bytes = read_bytes(path);
  // Flip one payload byte inside the middle block (header is 16 bytes).
  bytes[block_starts[10] + 16 + 5] ^= 0xFF;
  write_bytes(path, bytes);

  TraceReader reader(path);
  const auto recovered = drain(reader);
  ASSERT_EQ(recovered.size(), 20u);  // blocks 0 and 2 survive
  for (std::size_t i = 0; i < 10; ++i) ASSERT_EQ(recovered[i], trace[i]);
  for (std::size_t i = 10; i < 20; ++i)
    ASSERT_EQ(recovered[i], trace[i + 10]) << "record " << i;
  EXPECT_EQ(reader.stats().blocks_total, 3u);
  EXPECT_EQ(reader.stats().blocks_corrupt, 1u);
  EXPECT_GT(reader.stats().bytes_discarded, 0u);
  EXPECT_FALSE(reader.stats().truncated_tail);
  fs::remove(path);
}

TEST(TraceV2, ResyncsAfterCorruptLengthField) {
  const auto path = temp_path("saad_v2_badlen.trc");
  const auto trace = sample_trace(30);
  std::vector<std::uint64_t> block_starts;
  {
    TraceWriter::Options options;
    options.block_bytes = 1 << 20;
    options.atomic_finalize = false;
    TraceWriter writer(path, options);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      block_starts.push_back(writer.bytes_written());
      ASSERT_TRUE(writer.append(trace[i]));
      if ((i + 1) % 10 == 0) {
        ASSERT_TRUE(writer.flush());
      }
    }
    ASSERT_TRUE(writer.finalize());
  }
  auto bytes = read_bytes(path);
  // Blow up the middle block's length field: the reader must not trust it
  // and instead rescan for the next block marker.
  for (int i = 0; i < 4; ++i) bytes[block_starts[10] + 4 + i] = 0xFF;
  write_bytes(path, bytes);

  TraceReader reader(path);
  const auto recovered = drain(reader);
  ASSERT_EQ(recovered.size(), 20u);
  for (std::size_t i = 0; i < 10; ++i) ASSERT_EQ(recovered[i], trace[i]);
  for (std::size_t i = 10; i < 20; ++i) ASSERT_EQ(recovered[i], trace[i + 10]);
  EXPECT_GE(reader.stats().blocks_corrupt, 1u);
  fs::remove(path);
}

TEST(TraceV2, AtomicFinalizePublishesOnlyOnSuccess) {
  const auto path = temp_path("saad_v2_atomic.trc");
  const auto tmp = path + ".tmp";
  fs::remove(path);
  const auto trace = sample_trace(50);
  {
    TraceWriter writer(path);
    for (const auto& s : trace) ASSERT_TRUE(writer.append(s));
    ASSERT_TRUE(writer.flush());
    // Mid-stream: the final path must not exist yet.
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::exists(tmp));
    ASSERT_TRUE(writer.finalize());
  }
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(tmp));
  const auto loaded = read_trace_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, trace);
  fs::remove(path);
}

TEST(TraceV2, CrashBeforeFinalizeLeavesPreviousTraceAndRecoverableTmp) {
  const auto path = temp_path("saad_v2_crash.trc");
  const auto tmp = path + ".tmp";
  const auto old_trace = sample_trace(20);
  ASSERT_TRUE(write_trace_file(path, old_trace));

  const auto new_trace = sample_trace(40);
  {
    TraceWriter writer(path);
    for (const auto& s : new_trace) ASSERT_TRUE(writer.append(s));
    ASSERT_TRUE(writer.flush());
    // Writer destroyed without finalize(): models a crash.
  }
  // The previous good trace is untouched...
  const auto still_old = read_trace_file(path);
  ASSERT_TRUE(still_old.has_value());
  EXPECT_EQ(*still_old, old_trace);
  // ...and every flushed block of the torn run is recoverable from the tmp.
  TraceReader reader(tmp);
  ASSERT_TRUE(reader.ok());
  const auto recovered = drain(reader);
  EXPECT_EQ(recovered, new_trace);
  fs::remove(path);
  fs::remove(tmp);
}

// ---- file entry points -----------------------------------------------------

TEST(TraceIo, FileRoundTrip) {
  const auto path = temp_path("saad_trace_test.trc");
  const auto trace = sample_trace(200);
  ASSERT_TRUE(write_trace_file(path, trace));
  TraceStats stats;
  const auto loaded = read_trace_file(path, &stats);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, trace);
  EXPECT_EQ(stats.version, 2);  // files are written framed
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(TraceIo, V1FilesWrittenBySeedCodeStillLoad) {
  const auto path = temp_path("saad_trace_v1.trc");
  const auto trace = sample_trace(100);
  write_bytes(path, encode_trace(trace));  // raw v1 image, as the seed wrote
  TraceStats stats;
  const auto loaded = read_trace_file(path, &stats);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, trace);
  EXPECT_EQ(stats.version, 1);
  EXPECT_EQ(stats.bytes_discarded, 0u);
  std::remove(path.c_str());
}

TEST(TraceIo, TornV1FileRecoversPrefix) {
  const auto path = temp_path("saad_trace_v1_torn.trc");
  const auto trace = sample_trace(100);
  auto bytes = encode_trace(trace);
  bytes.resize(bytes.size() - 4);
  write_bytes(path, bytes);
  TraceStats stats;
  const auto loaded = read_trace_file(path, &stats);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_GE(loaded->size(), 99u);
  for (std::size_t i = 0; i < 99; ++i) ASSERT_EQ((*loaded)[i], trace[i]);
  EXPECT_TRUE(stats.truncated_tail);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileReturnsNullopt) {
  EXPECT_FALSE(read_trace_file("/nonexistent/dir/trace.trc").has_value());
}

TEST(TraceIo, WriteToUnwritablePathFailsCleanly) {
  EXPECT_FALSE(write_trace_file("/nonexistent/dir/trace.trc",
                                sample_trace(3)));
}

TEST(TraceIo, EncodedSizeIsCompact) {
  // Paper: ~48 bytes per synopsis. v2 framing (16-byte header per 64 KB
  // block) must not change that realm.
  const auto path = temp_path("saad_trace_compact.trc");
  const auto trace = sample_trace(1000);
  ASSERT_TRUE(write_trace_file(path, trace));
  EXPECT_LT(fs::file_size(path) / trace.size(), 64u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace saad::core
