// Property tests for the tracker: for ANY random sequence of log-point hits,
// the emitted synopsis must be the exact multiset of hits (sorted, merged)
// with the duration equal to the last-hit offset — across explicit-context,
// thread-local, and interleaved-task usage.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/tracker.h"

namespace saad::core {
namespace {

class TrackerRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrackerRandomized, SynopsisIsTheExactHitMultiset) {
  ManualClock clock;
  std::vector<Synopsis> emitted;
  TaskExecutionTracker tracker(
      1, &clock, [&](const Synopsis& s) { emitted.push_back(s); });

  saad::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    clock.set(static_cast<UsTime>(rng.next_below(minutes(100))));
    const UsTime start = clock.now();
    auto task = tracker.begin_task(static_cast<StageId>(rng.next_below(8)));

    std::map<LogPointId, std::uint32_t> expected;
    UsTime last = start;
    const std::size_t hits = rng.next_below(40);
    for (std::size_t h = 0; h < hits; ++h) {
      const auto point = static_cast<LogPointId>(rng.next_below(12));
      clock.advance(static_cast<UsTime>(rng.next_below(1000)));
      last = clock.now();
      task->on_log(point, clock.now());
      expected[point]++;
    }
    tracker.end_task(std::move(task));

    ASSERT_EQ(emitted.size(), static_cast<std::size_t>(trial + 1));
    const Synopsis& s = emitted.back();
    ASSERT_EQ(s.log_points.size(), expected.size());
    LogPointId prev = 0;
    bool first = true;
    for (const auto& lp : s.log_points) {
      // Sorted strictly ascending, counts exact.
      if (!first) {
        ASSERT_GT(lp.point, prev);
      }
      prev = lp.point;
      first = false;
      ASSERT_EQ(lp.count, expected.at(lp.point));
    }
    ASSERT_EQ(s.start, start);
    ASSERT_EQ(s.duration, hits == 0 ? 0 : last - start);
  }
}

TEST_P(TrackerRandomized, InterleavedExplicitTasksDoNotCrossContaminate) {
  ManualClock clock;
  std::vector<Synopsis> emitted;
  TaskExecutionTracker tracker(
      0, &clock, [&](const Synopsis& s) { emitted.push_back(s); });

  saad::Rng rng(GetParam() ^ 0xFACE);
  // Run 8 logical tasks concurrently, binding each around its own hits —
  // exactly what the simulator does with coroutines.
  std::vector<std::unique_ptr<TaskContext>> tasks;
  std::vector<std::map<LogPointId, std::uint32_t>> expected(8);
  for (int t = 0; t < 8; ++t)
    tasks.push_back(tracker.begin_task(static_cast<StageId>(t)));
  for (int step = 0; step < 2000; ++step) {
    const auto t = static_cast<std::size_t>(rng.next_below(8));
    const auto point = static_cast<LogPointId>(rng.next_below(20));
    clock.advance(10);
    {
      TaskBinding bind(tracker, tasks[t].get());
      tracker.on_log(point);
    }
    expected[t][point]++;
  }
  for (auto& task : tasks) tracker.end_task(std::move(task));

  ASSERT_EQ(emitted.size(), 8u);
  for (const auto& s : emitted) {
    const auto& want = expected[s.stage];
    ASSERT_EQ(s.log_points.size(), want.size()) << "task " << s.stage;
    for (const auto& lp : s.log_points)
      ASSERT_EQ(lp.count, want.at(lp.point)) << "task " << s.stage;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerRandomized,
                         ::testing::Values(1, 7, 42, 1234));

TEST(TrackerEncodeProperty, EveryEmittedSynopsisSurvivesTheWire) {
  ManualClock clock;
  std::vector<Synopsis> emitted;
  TaskExecutionTracker tracker(
      3, &clock, [&](const Synopsis& s) { emitted.push_back(s); });
  saad::Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    auto task = tracker.begin_task(static_cast<StageId>(rng.next_below(4)));
    const std::size_t hits = rng.next_below(30);
    for (std::size_t h = 0; h < hits; ++h) {
      clock.advance(static_cast<UsTime>(rng.next_below(500)));
      task->on_log(static_cast<LogPointId>(rng.next_below(200)), clock.now());
    }
    tracker.end_task(std::move(task));
  }
  std::vector<std::uint8_t> wire;
  for (const auto& s : emitted) encode_synopsis(s, wire);
  std::span<const std::uint8_t> in(wire);
  for (const auto& s : emitted) {
    Synopsis out;
    ASSERT_TRUE(decode_synopsis(in, out));
    ASSERT_EQ(out, s);
  }
  EXPECT_TRUE(in.empty());
}

}  // namespace
}  // namespace saad::core
