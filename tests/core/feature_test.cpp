#include "core/feature.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace saad::core {
namespace {

TEST(Signature, FromSynopsisKeepsDistinctPointsOnly) {
  Synopsis s;
  s.log_points = {{1, 1}, {2, 57}, {9, 3}};
  const Signature sig = Signature::from(s);
  EXPECT_EQ(sig.points(), (std::vector<LogPointId>{1, 2, 9}));
}

TEST(Signature, ConstructorSortsAndDeduplicates) {
  const Signature sig({9, 1, 9, 2, 1});
  EXPECT_EQ(sig.points(), (std::vector<LogPointId>{1, 2, 9}));
  EXPECT_EQ(sig.size(), 3u);
}

TEST(Signature, EqualityIsSetEquality) {
  EXPECT_EQ(Signature({1, 2, 3}), Signature({3, 2, 1}));
  EXPECT_NE(Signature({1, 2}), Signature({1, 2, 3}));
  // "The slightest difference in signature" distinguishes flows.
  EXPECT_NE(Signature({1, 2, 4}), Signature({1, 2, 3}));
}

TEST(Signature, FrequencyDoesNotAffectSignature) {
  // A task hitting L2 once and a task hitting L2 500 times have the same
  // signature (set semantics, paper §3.3.1).
  Synopsis once, many;
  once.log_points = {{1, 1}, {2, 1}};
  many.log_points = {{1, 1}, {2, 500}};
  EXPECT_EQ(Signature::from(once), Signature::from(many));
}

TEST(Signature, Contains) {
  const Signature sig({3, 5, 7});
  EXPECT_TRUE(sig.contains(5));
  EXPECT_FALSE(sig.contains(4));
  EXPECT_FALSE(Signature().contains(0));
}

TEST(Signature, ToString) {
  EXPECT_EQ(Signature({2, 1}).to_string(), "{1,2}");
  EXPECT_EQ(Signature().to_string(), "{}");
}

TEST(Signature, HashConsistentWithEquality) {
  SignatureHash h;
  EXPECT_EQ(h(Signature({1, 2, 3})), h(Signature({3, 1, 2})));
  std::unordered_set<Signature, SignatureHash> set;
  set.insert(Signature({1, 2}));
  set.insert(Signature({2, 1}));
  EXPECT_EQ(set.size(), 1u);
}

TEST(Signature, Ordering) {
  EXPECT_LT(Signature({1}), Signature({2}));
  EXPECT_LT(Signature({1}), Signature({1, 2}));
}

TEST(Feature, MakeFeatureCopiesFields) {
  Synopsis s;
  s.host = 2;
  s.stage = 5;
  s.uid = 77;
  s.start = 1000;
  s.duration = 333;
  s.log_points = {{4, 9}};
  const Feature f = make_feature(s);
  EXPECT_EQ(f.host, 2);
  EXPECT_EQ(f.stage, 5);
  EXPECT_EQ(f.uid, 77u);
  EXPECT_EQ(f.start, 1000);
  EXPECT_EQ(f.duration, 333);
  EXPECT_EQ(f.signature, Signature({4}));
}

}  // namespace
}  // namespace saad::core
