// Conformance-checker fixture: one stage, one covered if/else, so the
// feasible signatures are exactly {mix start, mix left} and
// {mix start, mix right}. The helper tool writes registry/model files that
// agree (good), miss one path (coverage gap), or claim both arms at once
// (statically impossible drift).
class Mixer implements Runnable {
  public void run() {
    LOG.info("mix start");
    if (useLeft) {
      LOG.info("mix left");
    } else {
      LOG.info("mix right");
    }
  }
}
