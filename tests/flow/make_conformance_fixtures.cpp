// Writes the registry and model files the conformance CLI tests feed to
// `saad_lint --model=... --registry=...` against
// tests/flow/fixtures/conformance_stage.java:
//
//   conf.reg        registry: stage Mixer, points "mix start"/"mix left"/
//                   "mix right" (templates match the fixture exactly, so
//                   SAAD-RG006 stays quiet)
//   conf_good.mdl   trained on both feasible signatures — clean, exit 0
//   conf_gap.mdl    trained on {start,left} only — coverage gap warning
//   conf_drift.mdl  trained on {start,left,right} — statically impossible,
//                   exit 1
//
//   make_conformance_fixtures <output-dir>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/log_registry.h"
#include "core/model.h"
#include "core/synopsis.h"

namespace {

using namespace saad;

bool write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

bool write_model(const std::string& path,
                 core::StageId stage,
                 const std::vector<std::vector<core::LogPointId>>& sigs) {
  std::vector<core::Synopsis> trace;
  core::TaskUid uid = 0;
  for (const auto& sig : sigs) {
    for (int i = 0; i < 100; ++i) {
      core::Synopsis s;
      s.stage = stage;
      s.uid = uid++;
      s.duration = 100 + i;
      for (const auto p : sig) s.log_points.push_back({p, 1});
      trace.push_back(std::move(s));
    }
  }
  const auto model = core::OutlierModel::train(trace);
  std::vector<std::uint8_t> bytes;
  model.save(bytes);
  return write_bytes(path, bytes);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_conformance_fixtures <output-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];

  core::LogRegistry registry;
  const auto stage = registry.register_stage("Mixer");
  const auto start =
      registry.register_log_point(stage, core::Level::kInfo, "mix start");
  const auto left =
      registry.register_log_point(stage, core::Level::kInfo, "mix left");
  const auto right =
      registry.register_log_point(stage, core::Level::kInfo, "mix right");

  std::vector<std::uint8_t> reg_bytes;
  registry.save(reg_bytes);
  const bool ok =
      write_bytes(dir + "/conf.reg", reg_bytes) &&
      write_model(dir + "/conf_good.mdl", stage,
                  {{start, left}, {start, right}}) &&
      write_model(dir + "/conf_gap.mdl", stage, {{start, left}}) &&
      write_model(dir + "/conf_drift.mdl", stage, {{start, left, right}});
  if (!ok) {
    std::fprintf(stderr, "cannot write fixtures under %s\n", dir.c_str());
    return 1;
  }
  return 0;
}
