// Stage-flow layer tests: CFG construction and facts, feasible-signature
// enumeration, static×dynamic conformance, and graph-artifact determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/log_registry.h"
#include "core/model.h"
#include "core/source_scan.h"
#include "flow/cfg.h"
#include "flow/conformance.h"
#include "flow/graph_export.h"
#include "flow/signatures.h"

namespace saad::flow {
namespace {

std::vector<StageFlow> flows_of(std::string_view source) {
  const auto scan = core::scan_source(source, "t.java");
  return build_stage_flows(source, "t.java", scan);
}

/// Index into flow.points of the point whose template contains `needle`.
int point_index(const StageFlow& flow, std::string_view needle) {
  for (std::size_t i = 0; i < flow.points.size(); ++i)
    if (flow.points[i].template_text.find(needle) != std::string::npos)
      return static_cast<int>(i);
  return -1;
}

/// CFG node holding the point whose template contains `needle`.
int node_of(const StageFlow& flow, std::string_view needle) {
  const int idx = point_index(flow, needle);
  return idx < 0 ? -1 : flow.points[static_cast<std::size_t>(idx)].node;
}

bool has_edge(const StageFlow& flow, int from, int to, EdgeKind kind) {
  return std::any_of(flow.edges.begin(), flow.edges.end(),
                     [&](const FlowEdge& e) {
                       return e.from == from && e.to == to && e.kind == kind;
                     });
}

/// Feasible signatures as sets of template substrings, for readable asserts.
std::set<std::set<std::string>> signature_names(const StageFlow& flow) {
  const auto feasible = enumerate_signatures(flow);
  std::set<std::set<std::string>> out;
  for (const auto& sig : feasible.signatures) {
    std::set<std::string> names;
    for (const int idx : sig)
      names.insert(flow.points[static_cast<std::size_t>(idx)].template_text);
    out.insert(std::move(names));
  }
  return out;
}

// ---- CFG construction and facts --------------------------------------------

TEST(StageFlowCfg, LinearBodyIsAReachableChain) {
  const auto flows = flows_of(R"(
class Worker implements Runnable {
  public void run() {
    LOG.info("step one");
    prepare();
    LOG.info("step two");
  }
}
)");
  ASSERT_EQ(flows.size(), 1u);
  const auto& flow = flows[0];
  EXPECT_EQ(flow.stage, "Worker");
  EXPECT_FALSE(flow.explicit_marker);
  ASSERT_EQ(flow.points.size(), 2u);
  for (std::size_t n = 0; n < flow.nodes.size(); ++n)
    EXPECT_TRUE(flow.reachable[n]) << "node " << n;
  EXPECT_TRUE(flow.branches.empty());
  EXPECT_TRUE(flow.loops.empty());
}

TEST(StageFlowCfg, IfElseRecordsBothAlternatives) {
  const auto flows = flows_of(R"(
class Router implements Runnable {
  public void run() {
    if (local) {
      LOG.info("route local");
    } else {
      LOG.info("route remote");
    }
  }
}
)");
  ASSERT_EQ(flows.size(), 1u);
  const auto& flow = flows[0];
  ASSERT_EQ(flow.branches.size(), 1u);
  const auto& branch = flow.branches[0];
  EXPECT_FALSE(branch.implicit_alternative);
  ASSERT_EQ(branch.alternatives.size(), 2u);
  EXPECT_TRUE(has_edge(flow, branch.cond_node, branch.alternatives[0].entry,
                       EdgeKind::kTrue));
  EXPECT_TRUE(has_edge(flow, branch.cond_node, branch.alternatives[1].entry,
                       EdgeKind::kFalse));
}

TEST(StageFlowCfg, IfWithoutElseHasImplicitAlternative) {
  const auto flows = flows_of(R"(
class Filter implements Runnable {
  public void run() {
    if (skip) { LOG.debug("filter skips one"); }
    LOG.info("filter done");
  }
}
)");
  ASSERT_EQ(flows.size(), 1u);
  ASSERT_EQ(flows[0].branches.size(), 1u);
  EXPECT_TRUE(flows[0].branches[0].implicit_alternative);
  ASSERT_EQ(flows[0].branches[0].alternatives.size(), 1u);
}

TEST(StageFlowCfg, CodeAfterReturnIsUnreachable) {
  const auto flows = flows_of(R"(
class Early implements Runnable {
  public void run() {
    LOG.info("early live");
    return;
    LOG.info("early dead");
  }
}
)");
  ASSERT_EQ(flows.size(), 1u);
  const auto& flow = flows[0];
  const int live = node_of(flow, "early live");
  const int dead = node_of(flow, "early dead");
  ASSERT_GE(live, 0);
  ASSERT_GE(dead, 0);
  EXPECT_TRUE(flow.reachable[static_cast<std::size_t>(live)]);
  EXPECT_FALSE(flow.reachable[static_cast<std::size_t>(dead)]);
}

TEST(StageFlowCfg, WhileLoopHasBackEdgeAndInLoopFact) {
  const auto flows = flows_of(R"(
class Drainer implements Runnable {
  public void run() {
    LOG.info("drain begin");
    while (more()) {
      LOG.debug("drain one item");
    }
    LOG.info("drain end");
  }
}
)");
  ASSERT_EQ(flows.size(), 1u);
  const auto& flow = flows[0];
  ASSERT_EQ(flow.loops.size(), 1u);
  EXPECT_TRUE(std::any_of(flow.edges.begin(), flow.edges.end(),
                          [](const FlowEdge& e) {
                            return e.kind == EdgeKind::kBack;
                          }));
  const int body = node_of(flow, "drain one item");
  const int outside = node_of(flow, "drain end");
  ASSERT_GE(body, 0);
  ASSERT_GE(outside, 0);
  EXPECT_TRUE(flow.in_loop[static_cast<std::size_t>(body)]);
  EXPECT_FALSE(flow.in_loop[static_cast<std::size_t>(outside)]);
}

TEST(StageFlowCfg, CatchHandlerIsErrorOnly) {
  const auto flows = flows_of(R"(
class Flusher implements Runnable {
  public void run() {
    LOG.info("flush begin");
    try {
      flushAll();
    } catch (IOException e) {
      LOG.error("flush failed");
    }
  }
}
)");
  ASSERT_EQ(flows.size(), 1u);
  const auto& flow = flows[0];
  const int normal = node_of(flow, "flush begin");
  const int handler = node_of(flow, "flush failed");
  ASSERT_GE(normal, 0);
  ASSERT_GE(handler, 0);
  EXPECT_FALSE(flow.error_only[static_cast<std::size_t>(normal)]);
  EXPECT_TRUE(flow.error_only[static_cast<std::size_t>(handler)]);
  EXPECT_TRUE(flow.nodes[static_cast<std::size_t>(handler)].in_catch);
}

TEST(StageFlowCfg, DiamondJoinIsDominatedByCondition) {
  const auto flows = flows_of(R"(
class Diamond implements Runnable {
  public void run() {
    if (a) { LOG.info("left arm"); } else { LOG.info("right arm"); }
    LOG.info("join point");
  }
}
)");
  ASSERT_EQ(flows.size(), 1u);
  const auto& flow = flows[0];
  const int cond = flow.branches.at(0).cond_node;
  const int join = node_of(flow, "join point");
  const int left = node_of(flow, "left arm");
  ASSERT_GE(join, 0);
  // Neither arm dominates the join; the condition does.
  EXPECT_EQ(flow.idom[static_cast<std::size_t>(join)], cond);
  EXPECT_EQ(flow.idom[static_cast<std::size_t>(left)], cond);
}

TEST(StageFlowCfg, SwitchArmsDispatchViaCaseEdges) {
  const auto flows = flows_of(R"(
class Dispatcher implements Runnable {
  public void run() {
    switch (op) {
      case READ:
        LOG.debug("dispatch read");
        break;
      default:
        LOG.debug("dispatch other");
        break;
    }
  }
}
)");
  ASSERT_EQ(flows.size(), 1u);
  const auto& flow = flows[0];
  ASSERT_EQ(flow.branches.size(), 1u);
  EXPECT_EQ(flow.branches[0].alternatives.size(), 2u);
  EXPECT_FALSE(flow.branches[0].implicit_alternative);  // default: present
  EXPECT_TRUE(std::any_of(flow.edges.begin(), flow.edges.end(),
                          [](const FlowEdge& e) {
                            return e.kind == EdgeKind::kCase;
                          }));
}

TEST(StageFlowCfg, ExplicitMarkerOpensItsOwnRegion) {
  const auto flows = flows_of(R"(
void consume() {
  while (running) {
    SAAD_STAGE("Consumer");
    Item item = queue.take();
    log.info("consumer handled one item");
  }
}
)");
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].stage, "Consumer");
  EXPECT_TRUE(flows[0].explicit_marker);
  ASSERT_EQ(flows[0].points.size(), 1u);
}

// ---- Feasible signatures ---------------------------------------------------

TEST(FeasibleSignatures, DiamondYieldsExactlyTwoSignatures) {
  const auto flows = flows_of(R"(
class Mixer implements Runnable {
  public void run() {
    LOG.info("mix start");
    if (useLeft) { LOG.info("mix left"); } else { LOG.info("mix right"); }
  }
}
)");
  ASSERT_EQ(flows.size(), 1u);
  const auto feasible = enumerate_signatures(flows[0]);
  EXPECT_TRUE(feasible.exact);
  EXPECT_EQ(signature_names(flows[0]),
            (std::set<std::set<std::string>>{{"mix start", "mix left"},
                                             {"mix start", "mix right"}}));
}

TEST(FeasibleSignatures, IfWithoutElseYieldsWithAndWithout) {
  const auto flows = flows_of(R"(
class Opt implements Runnable {
  public void run() {
    LOG.info("opt base");
    if (verbose) { LOG.debug("opt extra"); }
  }
}
)");
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(signature_names(flows[0]),
            (std::set<std::set<std::string>>{{"opt base"},
                                             {"opt base", "opt extra"}}));
}

TEST(FeasibleSignatures, LoopPointIsUnbounded) {
  const auto flows = flows_of(R"(
class Scanner implements Runnable {
  public void run() {
    LOG.info("scan begin");
    while (more()) { LOG.debug("scan one row"); }
  }
}
)");
  ASSERT_EQ(flows.size(), 1u);
  const auto& flow = flows[0];
  const auto feasible = enumerate_signatures(flow);
  EXPECT_TRUE(feasible.exact);
  const int begin_idx = point_index(flow, "scan begin");
  const int row_idx = point_index(flow, "scan one row");
  ASSERT_GE(begin_idx, 0);
  ASSERT_GE(row_idx, 0);
  EXPECT_FALSE(feasible.unbounded[static_cast<std::size_t>(begin_idx)]);
  EXPECT_TRUE(feasible.unbounded[static_cast<std::size_t>(row_idx)]);
  // Zero or more iterations: the loop point is optional.
  EXPECT_EQ(signature_names(flow),
            (std::set<std::set<std::string>>{{"scan begin"},
                                             {"scan begin", "scan one row"}}));
}

TEST(FeasibleSignatures, UnreachablePointJoinsNoSignature) {
  const auto flows = flows_of(R"(
class Dead implements Runnable {
  public void run() {
    LOG.info("dead live");
    return;
    LOG.info("dead never");
  }
}
)");
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(signature_names(flows[0]),
            (std::set<std::set<std::string>>{{"dead live"}}));
}

// ---- Conformance -----------------------------------------------------------

constexpr std::string_view kMixerSource = R"(
class Mixer implements Runnable {
  public void run() {
    LOG.info("mix start");
    if (useLeft) { LOG.info("mix left"); } else { LOG.info("mix right"); }
  }
}
)";

struct MixerWorld {
  core::LogRegistry registry;
  core::StageId stage = core::kInvalidStage;
  core::LogPointId start = core::kInvalidLogPoint;
  core::LogPointId left = core::kInvalidLogPoint;
  core::LogPointId right = core::kInvalidLogPoint;
  std::vector<StageFlow> flows;
};

void init_mixer(MixerWorld& w) {
  w.stage = w.registry.register_stage("Mixer");
  w.start = w.registry.register_log_point(w.stage, core::Level::kInfo,
                                          "mix start");
  w.left = w.registry.register_log_point(w.stage, core::Level::kInfo,
                                         "mix left");
  w.right = w.registry.register_log_point(w.stage, core::Level::kInfo,
                                          "mix right");
  const auto scan = core::scan_source(kMixerSource, "mixer.java");
  w.flows = build_stage_flows(kMixerSource, "mixer.java", scan);
}

core::Synopsis synopsis_of(const MixerWorld& w,
                           const std::vector<core::LogPointId>& points,
                           core::TaskUid uid) {
  core::Synopsis s;
  s.stage = w.stage;
  s.uid = uid;
  s.duration = 100;
  for (const auto p : points) s.log_points.push_back({p, 1});
  std::sort(s.log_points.begin(), s.log_points.end(),
            [](const auto& a, const auto& b) { return a.point < b.point; });
  return s;
}

core::OutlierModel train_on(
    const MixerWorld& w,
    const std::vector<std::vector<core::LogPointId>>& signatures) {
  std::vector<core::Synopsis> trace;
  core::TaskUid uid = 0;
  for (const auto& sig : signatures)
    for (int i = 0; i < 100; ++i) trace.push_back(synopsis_of(w, sig, uid++));
  return core::OutlierModel::train(trace);
}

TEST(Conformance, FullyTrainedStageIsClean) {
  MixerWorld w;
  init_mixer(w);
  const auto model = train_on(
      w, {{w.start, w.left}, {w.start, w.right}});
  const auto report = check_conformance(w.flows, w.registry, model, nullptr);
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_TRUE(report.stages[0].checked);
  EXPECT_EQ(report.stages[0].feasible, 2u);
  EXPECT_EQ(report.stages[0].covered, 2u);
  EXPECT_EQ(report.impossible_total, 0u);
  EXPECT_EQ(report.uncovered_total, 0u);
}

TEST(Conformance, ImpossibleTrainedSignatureIsDrift) {
  MixerWorld w;
  init_mixer(w);
  // Both arms in one task is statically impossible: the branches exclude
  // each other.
  const auto model = train_on(w, {{w.start, w.left, w.right}});
  const auto report = check_conformance(w.flows, w.registry, model, nullptr);
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_TRUE(report.stages[0].checked);
  EXPECT_EQ(report.impossible_total, 1u);
  ASSERT_EQ(report.stages[0].impossible.size(), 1u);
  const auto rendered = render_conformance(report);
  EXPECT_NE(rendered.find("statically impossible"), std::string::npos);
}

TEST(Conformance, UntrainedFeasibleSignatureIsCoverageGap) {
  MixerWorld w;
  init_mixer(w);
  const auto model = train_on(w, {{w.start, w.left}});
  const auto report = check_conformance(w.flows, w.registry, model, nullptr);
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_TRUE(report.stages[0].checked);
  EXPECT_EQ(report.impossible_total, 0u);
  EXPECT_EQ(report.uncovered_total, 1u);
  const auto rendered = render_conformance(report);
  EXPECT_NE(rendered.find("never trained"), std::string::npos);
  EXPECT_NE(rendered.find("mix right"), std::string::npos);
}

TEST(Conformance, TraceSignaturesCountAsObserved) {
  MixerWorld w;
  init_mixer(w);
  const auto model = train_on(w, {{w.start, w.left}});
  const std::vector<core::Synopsis> trace = {
      synopsis_of(w, {w.start, w.right}, 999)};
  const auto report = check_conformance(w.flows, w.registry, model, &trace);
  EXPECT_EQ(report.uncovered_total, 0u);
  EXPECT_EQ(report.impossible_total, 0u);
}

TEST(Conformance, UnscannedRegistryPointSkipsTheStage) {
  MixerWorld w;
  init_mixer(w);
  w.registry.register_log_point(w.stage, core::Level::kInfo,
                                "removed from source");
  const auto model = train_on(w, {{w.start, w.left}});
  const auto report = check_conformance(w.flows, w.registry, model, nullptr);
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_FALSE(report.stages[0].checked);
  EXPECT_EQ(report.stages[0].skip_reason,
            "registry log points missing from the scan");
  EXPECT_EQ(report.impossible_total, 0u);
}

TEST(Conformance, StageWithoutScannedRegionIsSkipped) {
  MixerWorld w;
  init_mixer(w);
  const auto model = train_on(w, {{w.start, w.left}});
  const std::vector<StageFlow> no_flows;
  const auto report = check_conformance(no_flows, w.registry, model, nullptr);
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_FALSE(report.stages[0].checked);
  EXPECT_EQ(report.stages[0].skip_reason, "no scanned stage region");
}

// ---- Graph artifacts -------------------------------------------------------

TEST(GraphExport, DotIsDeterministicAndLabelled) {
  const auto flows = flows_of(std::string(kMixerSource));
  const auto dot = to_dot(flows);
  EXPECT_EQ(dot, to_dot(flows)) << "DOT output must be byte-stable";
  EXPECT_NE(dot.find("digraph saad_stage_flow"), std::string::npos);
  EXPECT_NE(dot.find("Mixer"), std::string::npos);
  EXPECT_NE(dot.find("mix left"), std::string::npos);
}

TEST(GraphExport, JsonIsDeterministicAndCarriesFacts) {
  const auto flows = flows_of(R"(
class Dead implements Runnable {
  public void run() {
    LOG.info("dead live");
    return;
    LOG.info("dead never");
  }
}
)");
  const auto json = to_json(flows);
  EXPECT_EQ(json, to_json(flows)) << "JSON output must be byte-stable";
  EXPECT_NE(json.find("\"stage\""), std::string::npos);
  EXPECT_NE(json.find("\"reachable\": false"), std::string::npos);
}

}  // namespace
}  // namespace saad::flow
