#include "faults/fault_plane.h"

#include <gtest/gtest.h>

namespace saad::faults {
namespace {

TEST(FaultPlane, NoFaultsNoEffect) {
  FaultPlane plane;
  Rng rng(1);
  const auto out = plane.apply(0, Activity::kWalAppend, 0, rng);
  EXPECT_FALSE(out.error);
  EXPECT_EQ(out.extra_delay, 0);
  EXPECT_DOUBLE_EQ(plane.disk_slowdown(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(plane.cpu_slowdown(0, 0), 1.0);
  EXPECT_FALSE(plane.any_active(0));
}

TEST(FaultPlane, FullIntensityErrorAlwaysFires) {
  FaultPlane plane;
  FaultSpec spec;
  spec.host = 4;
  spec.activity = Activity::kWalAppend;
  spec.mode = FaultMode::kError;
  spec.intensity = 1.0;
  spec.from = minutes(30);
  spec.until = minutes(40);
  plane.add(spec);

  Rng rng(2);
  // Inside the window, on the right host & activity:
  EXPECT_TRUE(plane.apply(4, Activity::kWalAppend, minutes(35), rng).error);
  // Wrong host:
  EXPECT_FALSE(plane.apply(3, Activity::kWalAppend, minutes(35), rng).error);
  // Wrong activity:
  EXPECT_FALSE(plane.apply(4, Activity::kMemtableFlush, minutes(35), rng).error);
  // Outside the window:
  EXPECT_FALSE(plane.apply(4, Activity::kWalAppend, minutes(45), rng).error);
  EXPECT_FALSE(plane.apply(4, Activity::kWalAppend, minutes(29), rng).error);
}

TEST(FaultPlane, WindowBoundariesAreHalfOpen) {
  FaultPlane plane;
  FaultSpec spec;
  spec.intensity = 1.0;
  spec.from = 100;
  spec.until = 200;
  plane.add(spec);
  Rng rng(3);
  EXPECT_TRUE(plane.apply(0, Activity::kWalAppend, 100, rng).error);
  EXPECT_FALSE(plane.apply(0, Activity::kWalAppend, 200, rng).error);
}

TEST(FaultPlane, LowIntensityAffectsRoughlyOnePercent) {
  FaultPlane plane;
  FaultSpec spec;
  spec.mode = FaultMode::kError;
  spec.intensity = 0.01;  // the paper's low-intensity fault
  spec.until = minutes(60);
  plane.add(spec);

  Rng rng(4);
  int errors = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (plane.apply(0, Activity::kWalAppend, 1, rng).error) ++errors;
  EXPECT_NEAR(errors / static_cast<double>(n), 0.01, 0.003);
}

TEST(FaultPlane, DelayFaultAddsConfiguredDelay) {
  FaultPlane plane;
  FaultSpec spec;
  spec.mode = FaultMode::kDelay;
  spec.delay = ms(100);
  spec.intensity = 1.0;
  spec.until = sec(1);
  plane.add(spec);
  Rng rng(5);
  const auto out = plane.apply(0, Activity::kWalAppend, 0, rng);
  EXPECT_FALSE(out.error);
  EXPECT_EQ(out.extra_delay, ms(100));
}

TEST(FaultPlane, OverlappingDelaysAccumulate) {
  FaultPlane plane;
  FaultSpec spec;
  spec.mode = FaultMode::kDelay;
  spec.delay = ms(50);
  spec.intensity = 1.0;
  spec.until = sec(1);
  plane.add(spec);
  plane.add(spec);
  Rng rng(6);
  EXPECT_EQ(plane.apply(0, Activity::kWalAppend, 0, rng).extra_delay, ms(100));
}

TEST(FaultPlane, AnyHostWildcardMatchesAllHosts) {
  FaultPlane plane;
  FaultSpec spec;
  spec.host = kAnyHost;
  spec.intensity = 1.0;
  spec.until = sec(1);
  plane.add(spec);
  Rng rng(7);
  for (std::uint16_t host = 0; host < 8; ++host)
    EXPECT_TRUE(plane.apply(host, Activity::kWalAppend, 0, rng).error);
}

TEST(FaultPlane, HogSlowdownScalesWithProcesses) {
  FaultPlane plane;
  HogSpec hog;
  hog.from = minutes(8);
  hog.until = minutes(16);
  hog.processes = 4;
  plane.add_hog(hog);

  EXPECT_EQ(plane.hog_processes(0, minutes(10)), 4);
  EXPECT_EQ(plane.hog_processes(0, minutes(20)), 0);
  EXPECT_DOUBLE_EQ(plane.disk_slowdown(0, minutes(10)), 1.6);
  EXPECT_DOUBLE_EQ(plane.disk_slowdown(0, minutes(20)), 1.0);
  // Cycle theft from the dd processes beyond the first: 1 + 0.15 * (4-1).
  EXPECT_DOUBLE_EQ(plane.cpu_slowdown(0, minutes(10)), 1.45);
}

TEST(FaultPlane, SchedulerShieldsServerFromFewWriters) {
  // One or two dd processes do not slow the server's small synchronous
  // requests — only CPU theft shows (the paper's medium-intensity story).
  FaultPlane plane;
  HogSpec hog;
  hog.until = sec(10);
  hog.processes = 2;
  plane.add_hog(hog);
  EXPECT_DOUBLE_EQ(plane.disk_slowdown(0, 1), 1.0);
  EXPECT_GT(plane.cpu_slowdown(0, 1), 1.0);
}

TEST(FaultPlane, MultipleHogsStack) {
  FaultPlane plane;
  HogSpec hog;
  hog.until = sec(10);
  hog.processes = 2;
  plane.add_hog(hog);
  plane.add_hog(hog);
  EXPECT_EQ(plane.hog_processes(0, 1), 4);
  EXPECT_DOUBLE_EQ(plane.disk_slowdown(0, 1), 1.6);
}

TEST(FaultPlane, AnyActiveDetectsWindows) {
  FaultPlane plane;
  FaultSpec spec;
  spec.from = 100;
  spec.until = 200;
  plane.add(spec);
  EXPECT_FALSE(plane.any_active(50));
  EXPECT_TRUE(plane.any_active(150));
  EXPECT_FALSE(plane.any_active(250));
}

TEST(FaultPlane, ClearRemovesEverything) {
  FaultPlane plane;
  FaultSpec spec;
  spec.intensity = 1.0;
  spec.until = sec(1);
  plane.add(spec);
  HogSpec hog;
  hog.until = sec(1);
  plane.add_hog(hog);
  plane.clear();
  Rng rng(8);
  EXPECT_FALSE(plane.apply(0, Activity::kWalAppend, 0, rng).error);
  EXPECT_DOUBLE_EQ(plane.disk_slowdown(0, 0), 1.0);
}

TEST(FaultPlane, ActivityNames) {
  EXPECT_STREQ(activity_name(Activity::kWalAppend), "wal-append");
  EXPECT_STREQ(activity_name(Activity::kMemtableFlush), "memtable-flush");
  EXPECT_STREQ(activity_name(Activity::kNetwork), "network");
}

}  // namespace
}  // namespace saad::faults
