// Quickstart: instrument a real multithreaded staged server with SAAD in
// ~100 lines.
//
//   1. Register stages and log points (the "static pre-processing pass").
//   2. Put the task execution tracker between your code and the logger.
//   3. Mark stage beginnings with set_context(); log normally.
//   4. Train on a fault-free run, arm the detector, keep polling.
//
// The server below is a producer-consumer thread pool whose tasks usually
// run the flow [started, validated, committed]; after training we flip a
// "bug" that makes some tasks skip validation and abort — SAAD flags the
// never-seen signature immediately.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/saad.h"

using namespace saad;

int main() {
  // --- 1. The log template dictionary -----------------------------------
  core::LogRegistry registry;
  const auto stage = registry.register_stage("OrderProcessor");
  const auto lp_started =
      registry.register_log_point(stage, core::Level::kDebug,
                                  "processing order %");
  const auto lp_validated =
      registry.register_log_point(stage, core::Level::kDebug,
                                  "order % validated");
  const auto lp_aborted = registry.register_log_point(
      stage, core::Level::kInfo, "order % aborted, queued for retry");
  const auto lp_committed =
      registry.register_log_point(stage, core::Level::kDebug,
                                  "order % committed");

  // --- 2. Monitor + logger wiring ----------------------------------------
  RealClock clock;
  core::Monitor monitor(&registry, &clock);
  core::NullSink sink;  // INFO text would go to a file appender here
  core::Logger logger(&registry, &sink, core::Level::kInfo);
  logger.set_tracker(&monitor.tracker(/*host=*/0));

  // --- 3. The instrumented server -----------------------------------------
  std::atomic<bool> stop{false};
  std::atomic<bool> buggy{false};
  std::atomic<std::uint64_t> next_order{0};

  auto worker = [&] {
    auto& tracker = monitor.tracker(0);
    while (!stop.load(std::memory_order_relaxed)) {
      tracker.set_context(stage);  // a new task begins
      const auto order = next_order.fetch_add(1);
      logger.log(lp_started);
      // pretend to work
      volatile std::uint64_t h = order;
      for (int i = 0; i < 2000; ++i) h = h * 1099511628211ull + 3;
      if (buggy.load(std::memory_order_relaxed) && order % 7 == 0) {
        // the injected bug: premature termination, no validation/commit
        logger.log(lp_aborted);
        continue;
      }
      logger.log(lp_validated);
      logger.log(lp_committed);
    }
    tracker.end_context();
  };

  auto run_for = [&](int ms_duration) {
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t) pool.emplace_back(worker);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms_duration));
    stop.store(true);
    for (auto& t : pool) t.join();
    stop.store(false);
  };

  // --- 4. Train, arm, detect ------------------------------------------------
  std::printf("training on a fault-free run...\n");
  monitor.start_training();
  run_for(400);
  monitor.train();
  std::printf("  %zu task synopses, %zu stage model(s)\n",
              monitor.training_trace().size(), monitor.model()->num_stages());

  core::DetectorConfig config;
  config.window = ms(100);  // tiny windows for a tiny demo
  monitor.arm(config);

  std::printf("running with the bug enabled...\n");
  buggy.store(true);
  run_for(400);

  const auto anomalies = monitor.finish();
  std::printf("detected %zu anomalies:\n", anomalies.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(anomalies.size(), 5); ++i)
    std::printf("  %s\n", core::describe(anomalies[i], registry).c_str());
  if (!anomalies.empty()) {
    std::printf("\nanomalous flow, as the operator sees it:\n");
    for (const auto& text :
         core::signature_templates(anomalies[0].example_signature, registry))
      std::printf("  - %s\n", text.c_str());
  }
  return anomalies.empty() ? 1 : 0;
}
