// The paper's motivating example (§2, Fig. 2-4): HDFS write pipelines.
//
// Drives block writes through a simulated 3-way DataXceiver/PacketResponder
// replication pipeline and shows what SAAD's tracker sees: the dominant
// signature [L1, L2, L4, L5], the rare empty-packet flow containing L3, and
// the duration distribution that separates normal from slow tasks — the
// exact structure of Fig. 4.
#include <algorithm>
#include <cstdio>
#include <map>

#include "core/saad.h"
#include "systems/hdfs/hdfs.h"

using namespace saad;

int main() {
  sim::Engine engine;
  core::LogRegistry registry;
  core::NullSink sink;
  faults::FaultPlane plane;
  core::Monitor monitor(&registry, &engine.clock());

  systems::HdfsOptions options;
  options.empty_packet_chance = 0.02;  // make Fig. 4's rare branch visible
  systems::MiniHdfs hdfs(&engine, &registry, &monitor, &sink,
                         core::Level::kInfo, &plane, options, /*seed=*/3);
  hdfs.start();
  monitor.start_training();

  // A client writing 4-packet blocks, one every ~20 ms (Fig. 2's client).
  auto client = [&]() -> sim::Process {
    for (std::uint64_t block = 0; block < 3000; ++block) {
      (void)co_await hdfs.write_block(block, 64 * 1024);
      co_await engine.delay(ms(20));
    }
  };
  client();
  engine.run_until(minutes(2));
  monitor.poll(engine.now());

  // Group DataXceiver tasks by signature, like Fig. 4.
  const auto dx = hdfs.stages().data_xceiver;
  std::map<core::Signature, std::vector<UsTime>> groups;
  std::uint64_t total = 0;
  for (const auto& s : monitor.training_trace()) {
    if (s.stage != dx) continue;
    groups[core::Signature::from(s)].push_back(s.duration);
    total++;
  }

  std::printf("=== DataXceiver task flows (cf. Fig. 4) ===\n\n");
  for (auto& [sig, durations] : groups) {
    std::sort(durations.begin(), durations.end());
    const double share =
        100.0 * static_cast<double>(durations.size()) / static_cast<double>(total);
    std::printf("signature %-14s %6.2f%% of tasks, median %.1f ms, p99 %.1f ms\n",
                sig.to_string().c_str(), share,
                to_ms(durations[durations.size() / 2]),
                to_ms(durations[durations.size() * 99 / 100]));
    for (const auto& text : core::signature_templates(sig, registry))
      std::printf("    %s\n", text.c_str());
  }

  std::printf("\nLike the paper's example: one flow dominates, the "
              "empty-packet flow (with\n'Receiving empty packet') is rare, "
              "and task durations are tightly clustered —\nthe raw material "
              "for SAAD's per-stage outlier statistics.\n");
  return 0;
}
