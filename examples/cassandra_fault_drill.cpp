// Fault drill on the simulated Cassandra cluster: reproduce the paper's
// headline anecdote (§5.4.1) end to end.
//
// A WAL-append error fault is injected on one node. A grep-for-ERROR monitor
// sees (almost) nothing — the node silently stops applying writes behind a
// stuck lock. SAAD flags the never-seen "MemTable is already frozen" flow in
// the Table stage within a detection window, names the stage and host, and
// hands the operator the two flows side by side (Table 1).
#include <cstdio>

#include "baseline/error_monitor.h"
#include "core/saad.h"
#include "systems/cassandra/cassandra.h"
#include "workload/ycsb.h"

using namespace saad;

int main() {
  sim::Engine engine;
  core::LogRegistry registry;
  faults::FaultPlane plane;
  core::Monitor monitor(&registry, &engine.clock());
  core::NullSink null_sink;
  baseline::ErrorLogMonitor error_monitor(&engine.clock(), &null_sink);

  systems::MiniCassandra cassandra(&engine, &registry, &monitor,
                                   &error_monitor, core::Level::kInfo, &plane,
                                   systems::CassandraOptions{}, /*seed=*/9);
  workload::YcsbOptions wl;
  wl.clients = 8;
  wl.think_mean = ms(10);
  wl.read_proportion = 0.2;
  wl.key_space = 20000;
  workload::YcsbDriver ycsb(&engine, &cassandra, wl, /*seed=*/5);

  cassandra.preload(20000, 100);
  cassandra.start();
  ycsb.start(minutes(30));

  std::printf("warming up and training on fault-free traffic...\n");
  engine.run_until(minutes(2));
  monitor.start_training();
  engine.run_until(minutes(6));
  monitor.train();
  monitor.arm();

  std::printf("injecting: error on 100%% of WAL appends on host 2, minutes "
              "8-14\n\n");
  faults::FaultSpec fault;
  fault.host = 2;
  fault.activity = faults::Activity::kWalAppend;
  fault.mode = faults::FaultMode::kError;
  fault.intensity = 1.0;
  fault.from = minutes(8);
  fault.until = minutes(14);
  plane.add(fault);

  engine.run_until(minutes(14));
  const auto anomalies = monitor.poll(engine.now());

  std::printf("error-log baseline saw %zu ERROR lines during the fault.\n",
              error_monitor.total_alerts());
  std::printf("SAAD raised %zu anomalies; the ones on the faulted host:\n",
              anomalies.size());
  const core::Anomaly* frozen_flow = nullptr;
  for (const auto& a : anomalies) {
    if (a.host != 2) continue;
    std::printf("  %s\n", core::describe(a, registry).c_str());
    // Prefer the frozen-MemTable flow (the Table 1 story); fall back to any
    // Table-stage flow anomaly (e.g. the pre-wedge premature terminations).
    if (a.stage == cassandra.stages().table &&
        a.kind == core::AnomalyKind::kFlow) {
      const bool has_frozen =
          a.example_signature.contains(cassandra.points().tbl_frozen);
      if (frozen_flow == nullptr ||
          (has_frozen && !frozen_flow->example_signature.contains(
                             cassandra.points().tbl_frozen))) {
        frozen_flow = &a;
      }
    }
  }

  if (frozen_flow != nullptr) {
    std::printf("\nroot-cause view (cf. the paper's Table 1): the anomalous "
                "flow never gets past\nthe frozen-MemTable check — the lock "
                "holder is stuck on the failed WAL:\n\n");
    const auto& lp = cassandra.points();
    const core::Signature normal({lp.tbl_start, lp.tbl_apply, lp.tbl_done});
    std::printf("%s\n",
                core::signature_comparison(normal,
                                           frozen_flow->example_signature,
                                           registry)
                    .c_str());
  }
  std::printf("node state: host 2 is %s\n",
              cassandra.node_wedged(2) ? "wedged (fault-masked: no errors, "
                                         "no writes applied)"
                                       : "healthy");
  return frozen_flow == nullptr ? 1 : 0;
}
