// Live monitoring loop (the Fig. 5 deployment shape): the analyzer polls the
// synopsis stream once per minute and reports anomalies as their windows
// close — while an HBase-on-HDFS cluster degrades under a growing disk hog.
//
// Demonstrates the streaming half of the API: Monitor::poll() is cheap
// enough to sit on a timer next to the cluster.
#include <cstdio>

#include "core/saad.h"
#include "systems/hbase/hbase.h"
#include "workload/ycsb.h"

using namespace saad;

int main() {
  sim::Engine engine;
  core::LogRegistry registry;
  core::NullSink sink;
  faults::FaultPlane plane;
  core::Monitor monitor(&registry, &engine.clock());

  systems::MiniHdfs hdfs(&engine, &registry, &monitor, &sink,
                         core::Level::kInfo, &plane, systems::HdfsOptions{},
                         /*seed=*/21);
  systems::MiniHBase hbase(&engine, &registry, &monitor, &sink,
                           core::Level::kInfo, &plane, &hdfs,
                           systems::HBaseOptions{}, /*seed=*/22);
  workload::YcsbOptions wl;
  wl.clients = 8;
  wl.think_mean = ms(10);
  wl.read_proportion = 0.2;
  wl.key_space = 20000;
  workload::YcsbDriver ycsb(&engine, &hbase, wl, /*seed=*/23);

  hbase.preload(20000, 100);
  hdfs.start();
  hbase.start();
  ycsb.start(minutes(22));

  engine.run_until(minutes(2));
  monitor.start_training();
  engine.run_until(minutes(6));
  monitor.train();
  monitor.arm();
  std::printf("[min  6] model trained (%zu synopses); monitoring...\n",
              monitor.training_trace().size());

  // The incident: dd processes pile up on every host from minute 10.
  for (int step = 0; step < 3; ++step) {
    faults::HogSpec hog;
    hog.host = faults::kAnyHost;
    hog.from = minutes(10 + 4 * step);
    hog.until = minutes(22);
    hog.processes = step == 0 ? 1 : (step == 1 ? 1 : 2);  // 1 -> 2 -> 4 total
    plane.add_hog(hog);
  }

  // The live loop: one poll per virtual minute.
  for (int minute = 7; minute <= 21; ++minute) {
    engine.run_until(minutes(minute));
    const auto anomalies = monitor.poll(engine.now());
    if (anomalies.empty()) {
      std::printf("[min %2d] ok\n", minute);
      continue;
    }
    std::printf("[min %2d] %zu anomalies:\n", minute, anomalies.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(anomalies.size(), 4);
         ++i) {
      std::printf("         %s\n",
                  core::describe(anomalies[i], registry).c_str());
    }
    if (anomalies.size() > 4)
      std::printf("         ... and %zu more\n", anomalies.size() - 4);
  }

  std::printf("\nescalation played out: quiet at 1 dd process, RPC-call "
              "slowdowns at 2, broad\nflow+performance anomalies at 4 — the "
              "operator watches stages light up host by\nhost as the hog "
              "grows.\n");
  return 0;
}
