// Stage-flow graphs: statement-level control-flow graphs over the scanner's
// span-aware ScanResult.
//
// SAAD's flow-anomaly rule fires whenever a never-seen-in-training signature
// appears, so every statically reachable log-point path that training never
// exercised is a latent false positive, and every trained signature the
// source can no longer produce is instrumentation drift. The purely lexical
// scan cannot see either; this layer can. For every stage body the scanner
// reports (a `run()` method or the block tail after a SAAD_STAGE marker) we
// parse statements — branches, loops, early return/break/continue/throw,
// switch fallthrough, try/catch — into a CFG whose nodes carry the stage's
// log points, then compute reachability, immediate dominators, loop
// membership, and error-path facts. flow/signatures.h enumerates the
// statically feasible log-point signatures on top; flow/conformance.h
// checks them against a trained model or a recorded trace.
//
// Lambda and anonymous-class bodies are opaque: their statements fold into
// the CFG node of the statement that defines them (conservative — the code
// may run where it is written), except that a nested `run()` body is its
// own stage region and its log points belong to that inner region only.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/source_scan.h"

namespace saad::flow {

enum class EdgeKind : std::uint8_t {
  kNext = 0,  // sequential fallthrough
  kTrue,      // condition holds (branch / loop entry)
  kFalse,     // condition fails (implicit else / loop exit / no matching case)
  kBack,      // loop back edge
  kBreak,
  kContinue,
  kReturn,    // early return to the stage exit
  kThrow,     // exception edge (to the innermost catch, else the stage exit)
  kCase,      // switch dispatch to one arm
};

std::string_view edge_kind_name(EdgeKind kind);

struct FlowEdge {
  int from = 0;
  int to = 0;
  EdgeKind kind = EdgeKind::kNext;
};

struct FlowNode {
  int id = 0;
  int line = 0;      // first source line the node covers (0 = synthetic)
  int end_line = 0;  // last covered line
  std::vector<int> points;  // indices into StageFlow::points, source order
  bool in_catch = false;    // node lives inside a catch handler
};

/// One scanned log point placed in a stage CFG.
struct FlowPoint {
  int node = -1;  // CFG node whose statement contains the call
  std::string template_text;
  std::string level;
  std::string file;
  int line = 0;
  int column = 0;
  bool dynamic_only = false;
};

/// A branch construct with explicit alternatives (if/else, switch arms) —
/// the raw material for the blind-path rule: an alternative with no log
/// point collapses signature discriminability with its covered siblings.
struct FlowBranch {
  int cond_node = 0;  // node evaluating the condition / switch head
  int line = 0;
  bool implicit_alternative = false;  // if-without-else, switch-without-default
  struct Alternative {
    int entry = 0;
    int line = 0;
    std::vector<int> nodes;  // every node of the alternative, nested included
  };
  std::vector<Alternative> alternatives;
};

/// A loop construct (while/do/for). Log points inside contribute an
/// unbounded per-task count to the synopsis.
struct FlowLoop {
  int header = 0;  // node the back edge returns to
  int line = 0;
  std::vector<int> nodes;  // body nodes, header included, nested included
};

struct StageFlow {
  std::string stage;  // stage name the region belongs to
  std::string file;
  int line = 0;                  // stage beginning (run() or marker)
  bool explicit_marker = false;  // SAAD_STAGE vs inferred from run()
  std::size_t region_begin = 0;  // byte span of the stage body in the file
  std::size_t region_end = 0;

  int entry = 0;  // synthetic entry node id
  int exit = 0;   // synthetic exit node id
  std::vector<FlowNode> nodes;
  std::vector<FlowEdge> edges;
  std::vector<FlowPoint> points;
  std::vector<FlowBranch> branches;
  std::vector<FlowLoop> loops;

  // ---- Facts, computed by analyze() -----------------------------------------
  std::vector<char> reachable;   // from the entry node
  std::vector<int> idom;         // immediate dominator; -1 for entry/unreachable
  std::vector<char> in_loop;     // node belongs to some FlowLoop
  std::vector<char> error_only;  // reachable only via throw edges, unable to
                                 // reach the exit without throwing, or inside
                                 // a catch handler
};

/// Builds one CFG per stage body the scanner found in this file, in source
/// order, and runs analyze() on each. Log points attach to the innermost
/// enclosing stage region. `scan` must be the scan of exactly this source.
std::vector<StageFlow> build_stage_flows(std::string_view source,
                                         const std::string& file_name,
                                         const core::ScanResult& scan);

/// Computes the facts block (reachable/idom/in_loop/error_only) in place.
/// build_stage_flows already calls this; exposed for tests and for graphs
/// assembled by hand.
void analyze(StageFlow& graph);

/// Adjacency helpers (edge order preserved).
std::vector<std::vector<int>> successors(const StageFlow& graph);
std::vector<std::vector<int>> predecessors(const StageFlow& graph);

}  // namespace saad::flow
