#include "flow/cfg.h"

#include <algorithm>
#include <deque>
#include <set>

#include "core/source_lex.h"

namespace saad::flow {

namespace {

using core::is_ident_char;
using core::LineIndex;
using core::match_brace;
using core::match_paren;
using core::skip_ws;
using core::word_at;

// ---- Stage-region discovery -------------------------------------------------

struct Region {
  std::size_t stage_index = 0;  // into ScanResult::stages
  std::size_t begin = 0;        // first statement byte of the body
  std::size_t end = 0;          // one past the last statement byte
};

struct PointSite {
  std::size_t scan_index = 0;  // into ScanResult::log_points
  std::size_t offset = 0;      // byte offset of the receiver
  int owner = -1;              // region index owning the point (-1 = none)
};

std::size_t offset_of(const LineIndex& lines, int line, int column) {
  const std::size_t base = lines.offset_of_line(line);
  if (base == std::string_view::npos) return std::string_view::npos;
  return base + static_cast<std::size_t>(column > 0 ? column - 1 : 0);
}

/// Body region of a run()-inferred stage: the braces of the run() method.
bool run_body_region(std::string_view code, std::size_t at, Region* region) {
  // `at` points at the `void` keyword.
  std::size_t p = skip_ws(code, at + 4);
  if (!word_at(code, p, "run")) return false;
  p = skip_ws(code, p + 3);
  if (p >= code.size() || code[p] != '(') return false;
  const std::size_t close = match_paren(code, p);
  if (close == std::string_view::npos) return false;
  p = skip_ws(code, close);
  // Java `throws` clauses sit between the parameter list and the body.
  while (p < code.size() && is_ident_char(code[p])) {
    while (p < code.size() && is_ident_char(code[p])) ++p;
    p = skip_ws(code, p);
    if (p < code.size() && code[p] == ',') p = skip_ws(code, p + 1);
  }
  if (p >= code.size() || code[p] != '{') return false;
  const std::size_t body_close = match_brace(code, p);
  if (body_close == std::string_view::npos) return false;
  region->begin = p + 1;
  region->end = body_close - 1;
  return true;
}

/// Body region of a SAAD_STAGE marker: from just past the marker statement
/// to the end of the innermost enclosing brace block.
bool marker_region(std::string_view code, std::size_t at, Region* region) {
  std::size_t p = skip_ws(code, at + 10);
  if (p >= code.size() || code[p] != '(') return false;
  const std::size_t close = match_paren(code, p);
  if (close == std::string_view::npos) return false;
  std::size_t begin = skip_ws(code, close);
  if (begin < code.size() && code[begin] == ';') begin = skip_ws(code, begin + 1);

  // Innermost '{' enclosing the marker.
  std::vector<std::size_t> stack;
  std::size_t open = std::string_view::npos, block_end = std::string_view::npos;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '{') {
      stack.push_back(i);
    } else if (code[i] == '}') {
      if (stack.empty()) continue;
      const std::size_t o = stack.back();
      stack.pop_back();
      if (o < at && i > at && (open == std::string_view::npos || o > open)) {
        open = o;
        block_end = i;
      }
    }
  }
  if (block_end == std::string_view::npos || begin > block_end) return false;
  region->begin = begin;
  region->end = block_end;
  return true;
}

// ---- CFG construction -------------------------------------------------------

class Builder {
 public:
  Builder(std::string_view source, std::string_view code,
          const LineIndex& lines, StageFlow& graph,
          const core::ScanResult& scan, const std::vector<PointSite>& sites,
          int region_index)
      : source_(source),
        code_(code),
        lines_(lines),
        g_(graph),
        scan_(scan),
        sites_(sites),
        region_index_(region_index) {}

  void build() {
    g_.entry = new_node();
    g_.exit = new_node();
    int cur = g_.entry;
    parse_seq(g_.region_begin, g_.region_end, cur);
    edge(cur, g_.exit, EdgeKind::kNext);
  }

 private:
  int new_node() {
    FlowNode node;
    node.id = static_cast<int>(g_.nodes.size());
    node.in_catch = catch_depth_ > 0;
    g_.nodes.push_back(std::move(node));
    return g_.nodes.back().id;
  }

  void edge(int from, int to, EdgeKind kind) {
    if (from < 0 || to < 0) return;
    g_.edges.push_back({from, to, kind});
  }

  /// After diverging control flow (return/break/...), the next statement
  /// starts a fresh node with no incoming edges — unreachable by
  /// construction, which is exactly what SAAD-FL007 looks for.
  int ensure(int& cur) {
    if (cur < 0) cur = new_node();
    return cur;
  }

  void touch_lines(int node, std::size_t s, std::size_t e) {
    if (node < 0 || s >= e) return;
    auto& n = g_.nodes[static_cast<std::size_t>(node)];
    const int first = lines_.line(s);
    const int last = lines_.line(e > 0 ? e - 1 : 0);
    if (n.line == 0 || first < n.line) n.line = first;
    if (last > n.end_line) n.end_line = last;
  }

  /// Attaches every log point owned by this region whose receiver offset
  /// falls inside [s, e) to `node`.
  void attach_points(int node, std::size_t s, std::size_t e) {
    if (node < 0) return;
    for (const auto& site : sites_) {
      if (site.owner != region_index_) continue;
      if (site.offset < s || site.offset >= e) continue;
      if (claimed_.count(site.scan_index)) continue;
      claimed_.insert(site.scan_index);
      const auto& p = scan_.log_points[site.scan_index];
      FlowPoint fp;
      fp.node = node;
      fp.template_text = p.template_text;
      fp.level = p.level;
      fp.file = p.file;
      fp.line = p.line;
      fp.column = p.column;
      fp.dynamic_only = p.dynamic_only;
      g_.nodes[static_cast<std::size_t>(node)].points.push_back(
          static_cast<int>(g_.points.size()));
      g_.points.push_back(std::move(fp));
    }
  }

  /// End of a simple statement starting at `pos`: past the ';' that closes
  /// it at bracket depth zero, or at an unconsumed '}' / block end. A '{'
  /// opening mid-statement (lambda, anonymous class, array initializer) is
  /// skipped opaquely; if nothing follows the closed brace group, the
  /// statement ends there.
  std::size_t simple_stmt_end(std::size_t pos, std::size_t end) const {
    int paren = 0, bracket = 0;
    std::size_t i = pos;
    while (i < end) {
      const char c = code_[i];
      if (c == '(') ++paren;
      if (c == ')') --paren;
      if (c == '[') ++bracket;
      if (c == ']') --bracket;
      if (c == '{' && paren == 0 && bracket == 0) {
        const std::size_t close = match_brace(code_, i);
        if (close == std::string_view::npos || close > end) return end;
        const std::size_t next = skip_ws(code_, close);
        if (next < end && code_[next] == ';') return next + 1;
        return close;  // `synchronized (x) { ... }`-style: brace ends it
      }
      if (c == ';' && paren <= 0 && bracket <= 0) return i + 1;
      if (c == '}' && paren <= 0 && bracket <= 0) return i;  // block ends
      ++i;
    }
    return end;
  }

  /// Consumes `case <expr>:` / `default:`; returns past the label colon.
  /// Stops at the first ':' that is not part of a '::' scope operator.
  std::size_t consume_label(std::size_t pos, std::size_t end) const {
    std::size_t i = pos;
    while (i < end) {
      if (code_[i] == ':') {
        const bool scope = (i + 1 < end && code_[i + 1] == ':') ||
                           (i > pos && code_[i - 1] == ':');
        if (!scope) return i + 1;
      }
      if (code_[i] == ';' || code_[i] == '{' || code_[i] == '}') return i;
      ++i;
    }
    return end;
  }

  bool at_word(std::size_t pos, std::string_view word) const {
    return word_at(code_, pos, word);
  }

  /// Parses statements until `end`; `cur` tracks the open node (-1 after a
  /// divergence).
  std::size_t parse_seq(std::size_t pos, std::size_t end, int& cur) {
    pos = skip_ws(code_, pos);
    while (pos < end) {
      if (code_[pos] == '}') break;  // malformed region guard
      pos = parse_stmt(pos, end, cur);
      pos = skip_ws(code_, pos);
    }
    return pos;
  }

  /// Parses exactly one statement starting at `pos` (not whitespace).
  std::size_t parse_stmt(std::size_t pos, std::size_t end, int& cur) {
    const char c = code_[pos];

    // Preprocessor directives span to end of line (with continuations).
    if (c == '#') {
      std::size_t i = pos;
      while (i < end && code_[i] != '\n') {
        if (code_[i] == '\\' && i + 1 < end && code_[i + 1] == '\n') ++i;
        ++i;
      }
      return i;
    }

    if (c == '{') {
      std::size_t close = match_brace(code_, pos);
      if (close == std::string_view::npos || close > end) close = end + 1;
      parse_seq(pos + 1, close - 1, cur);
      return std::min(close, end);
    }

    if (at_word(pos, "if")) return parse_if(pos, end, cur);
    if (at_word(pos, "while")) return parse_while(pos, end, cur);
    if (at_word(pos, "do")) return parse_do(pos, end, cur);
    if (at_word(pos, "for")) return parse_for(pos, end, cur);
    if (at_word(pos, "switch")) return parse_switch(pos, end, cur);
    if (at_word(pos, "try")) return parse_try(pos, end, cur);

    if (at_word(pos, "return") || at_word(pos, "throw")) {
      const bool is_throw = code_[pos] == 't';
      const std::size_t stop = simple_stmt_end(pos, end);
      const int node = ensure(cur);
      attach_points(node, pos, stop);
      touch_lines(node, pos, stop);
      if (is_throw) {
        if (!catch_targets_.empty() && !catch_targets_.back().empty()) {
          for (int target : catch_targets_.back())
            edge(node, target, EdgeKind::kThrow);
        } else {
          edge(node, g_.exit, EdgeKind::kThrow);
        }
      } else {
        edge(node, g_.exit, EdgeKind::kReturn);
      }
      cur = -1;
      return stop;
    }

    if (at_word(pos, "break")) {
      const int node = ensure(cur);
      touch_lines(node, pos, pos + 5);
      edge(node, break_targets_.empty() ? g_.exit : break_targets_.back(),
           EdgeKind::kBreak);
      cur = -1;
      return simple_stmt_end(pos, end);
    }

    if (at_word(pos, "continue")) {
      const int node = ensure(cur);
      touch_lines(node, pos, pos + 8);
      edge(node, continue_targets_.empty() ? g_.exit : continue_targets_.back(),
           EdgeKind::kContinue);
      cur = -1;
      return simple_stmt_end(pos, end);
    }

    // Stray labels outside a switch body: consume and continue.
    if (at_word(pos, "case") || at_word(pos, "default")) {
      const std::size_t after = consume_label(pos, end);
      if (after > pos && code_[after - 1] == ':') return after;
      // `default` as an identifier (e.g. `default:` absent): fall through.
    }

    // Simple statement (declarations, calls, assignments, lambdas, ...).
    const std::size_t stop = simple_stmt_end(pos, end);
    const int node = ensure(cur);
    attach_points(node, pos, stop);
    touch_lines(node, pos, stop);
    return stop;
  }

  std::size_t parse_if(std::size_t pos, std::size_t end, int& cur) {
    std::size_t paren = skip_ws(code_, pos + 2);
    // C++ `if constexpr (...)`.
    if (at_word(paren, "constexpr")) paren = skip_ws(code_, paren + 9);
    if (paren >= end || code_[paren] != '(') {
      const std::size_t stop = simple_stmt_end(pos, end);
      attach_points(ensure(cur), pos, stop);
      return stop;
    }
    std::size_t close = match_paren(code_, paren);
    if (close == std::string_view::npos || close > end) close = end;
    const int cond = ensure(cur);
    attach_points(cond, paren, close);
    touch_lines(cond, pos, close);

    FlowBranch branch;
    branch.cond_node = cond;
    branch.line = lines_.line(pos);

    const int then_entry = new_node();
    edge(cond, then_entry, EdgeKind::kTrue);
    FlowBranch::Alternative then_alt;
    then_alt.entry = then_entry;
    std::size_t p = skip_ws(code_, close);
    then_alt.line = p < end ? lines_.line(p) : branch.line;
    const std::size_t then_mark = g_.nodes.size() - 1;  // include entry
    int then_cur = then_entry;
    p = p < end ? parse_stmt(p, end, then_cur) : end;
    for (std::size_t n = then_mark; n < g_.nodes.size(); ++n)
      then_alt.nodes.push_back(static_cast<int>(n));
    branch.alternatives.push_back(std::move(then_alt));

    std::size_t after_then = skip_ws(code_, p);
    if (after_then < end && at_word(after_then, "else")) {
      const int else_entry = new_node();
      edge(cond, else_entry, EdgeKind::kFalse);
      FlowBranch::Alternative else_alt;
      else_alt.entry = else_entry;
      std::size_t q = skip_ws(code_, after_then + 4);
      else_alt.line = q < end ? lines_.line(q) : branch.line;
      const std::size_t else_mark = g_.nodes.size() - 1;
      int else_cur = else_entry;
      q = q < end ? parse_stmt(q, end, else_cur) : end;
      for (std::size_t n = else_mark; n < g_.nodes.size(); ++n)
        else_alt.nodes.push_back(static_cast<int>(n));
      branch.alternatives.push_back(std::move(else_alt));

      const int join = new_node();
      edge(then_cur, join, EdgeKind::kNext);
      edge(else_cur, join, EdgeKind::kNext);
      cur = join;
      g_.branches.push_back(std::move(branch));
      return q;
    }

    branch.implicit_alternative = true;
    const int join = new_node();
    edge(cond, join, EdgeKind::kFalse);
    edge(then_cur, join, EdgeKind::kNext);
    cur = join;
    g_.branches.push_back(std::move(branch));
    return p;
  }

  std::size_t parse_while(std::size_t pos, std::size_t end, int& cur) {
    std::size_t paren = skip_ws(code_, pos + 5);
    if (paren >= end || code_[paren] != '(') {
      const std::size_t stop = simple_stmt_end(pos, end);
      attach_points(ensure(cur), pos, stop);
      return stop;
    }
    std::size_t close = match_paren(code_, paren);
    if (close == std::string_view::npos || close > end) close = end;

    const int header = new_node();
    edge(cur, header, EdgeKind::kNext);
    attach_points(header, paren, close);
    touch_lines(header, pos, close);
    const int after = new_node();
    const int body_entry = new_node();
    edge(header, body_entry, EdgeKind::kTrue);

    FlowLoop loop;
    loop.header = header;
    loop.line = lines_.line(pos);
    const std::size_t body_mark = g_.nodes.size() - 1;  // include body entry

    break_targets_.push_back(after);
    continue_targets_.push_back(header);
    int body_cur = body_entry;
    std::size_t p = skip_ws(code_, close);
    p = p < end ? parse_stmt(p, end, body_cur) : end;
    continue_targets_.pop_back();
    break_targets_.pop_back();

    edge(body_cur, header, EdgeKind::kBack);
    edge(header, after, EdgeKind::kFalse);
    loop.nodes.push_back(header);
    for (std::size_t n = body_mark; n < g_.nodes.size(); ++n)
      loop.nodes.push_back(static_cast<int>(n));
    g_.loops.push_back(std::move(loop));
    cur = after;
    return p;
  }

  std::size_t parse_for(std::size_t pos, std::size_t end, int& cur) {
    std::size_t paren = skip_ws(code_, pos + 3);
    if (paren >= end || code_[paren] != '(') {
      const std::size_t stop = simple_stmt_end(pos, end);
      attach_points(ensure(cur), pos, stop);
      return stop;
    }
    std::size_t close = match_paren(code_, paren);
    if (close == std::string_view::npos || close > end) close = end;

    // init/cond/step (or the whole range clause) lump into the header node.
    const int header = new_node();
    edge(cur, header, EdgeKind::kNext);
    attach_points(header, paren, close);
    touch_lines(header, pos, close);
    const int after = new_node();
    const int body_entry = new_node();
    edge(header, body_entry, EdgeKind::kTrue);

    FlowLoop loop;
    loop.header = header;
    loop.line = lines_.line(pos);
    const std::size_t body_mark = g_.nodes.size() - 1;

    break_targets_.push_back(after);
    continue_targets_.push_back(header);
    int body_cur = body_entry;
    std::size_t p = skip_ws(code_, close);
    p = p < end ? parse_stmt(p, end, body_cur) : end;
    continue_targets_.pop_back();
    break_targets_.pop_back();

    edge(body_cur, header, EdgeKind::kBack);
    edge(header, after, EdgeKind::kFalse);
    loop.nodes.push_back(header);
    for (std::size_t n = body_mark; n < g_.nodes.size(); ++n)
      loop.nodes.push_back(static_cast<int>(n));
    g_.loops.push_back(std::move(loop));
    cur = after;
    return p;
  }

  std::size_t parse_do(std::size_t pos, std::size_t end, int& cur) {
    const int body_entry = new_node();
    edge(cur, body_entry, EdgeKind::kNext);
    const int after = new_node();
    const int cond = new_node();

    FlowLoop loop;
    loop.header = body_entry;
    loop.line = lines_.line(pos);
    const std::size_t body_mark = g_.nodes.size();

    break_targets_.push_back(after);
    continue_targets_.push_back(cond);
    int body_cur = body_entry;
    std::size_t p = skip_ws(code_, pos + 2);
    p = p < end ? parse_stmt(p, end, body_cur) : end;
    continue_targets_.pop_back();
    break_targets_.pop_back();

    edge(body_cur, cond, EdgeKind::kNext);
    p = skip_ws(code_, p);
    if (p < end && at_word(p, "while")) {
      std::size_t paren = skip_ws(code_, p + 5);
      if (paren < end && code_[paren] == '(') {
        std::size_t close = match_paren(code_, paren);
        if (close == std::string_view::npos || close > end) close = end;
        attach_points(cond, paren, close);
        touch_lines(cond, p, close);
        p = skip_ws(code_, close);
      }
      if (p < end && code_[p] == ';') ++p;
    }
    edge(cond, body_entry, EdgeKind::kBack);
    edge(cond, after, EdgeKind::kFalse);

    loop.nodes.push_back(body_entry);
    loop.nodes.push_back(cond);
    for (std::size_t n = body_mark; n < g_.nodes.size(); ++n)
      loop.nodes.push_back(static_cast<int>(n));
    g_.loops.push_back(std::move(loop));
    cur = after;
    return p;
  }

  std::size_t parse_switch(std::size_t pos, std::size_t end, int& cur) {
    std::size_t paren = skip_ws(code_, pos + 6);
    if (paren >= end || code_[paren] != '(') {
      const std::size_t stop = simple_stmt_end(pos, end);
      attach_points(ensure(cur), pos, stop);
      return stop;
    }
    std::size_t close = match_paren(code_, paren);
    if (close == std::string_view::npos || close > end) close = end;
    const int head = ensure(cur);
    attach_points(head, paren, close);
    touch_lines(head, pos, close);

    std::size_t open = skip_ws(code_, close);
    if (open >= end || code_[open] != '{') {
      cur = head;
      return open;
    }
    std::size_t body_close = match_brace(code_, open);
    if (body_close == std::string_view::npos || body_close > end)
      body_close = end + 1;
    const std::size_t body_end = std::min(body_close - 1, end);

    const int after = new_node();
    break_targets_.push_back(after);

    FlowBranch branch;
    branch.cond_node = head;
    branch.line = lines_.line(pos);
    bool has_default = false;

    int arm_cur = -1;
    FlowBranch::Alternative* arm = nullptr;
    std::size_t arm_mark = 0;
    auto finish_arm = [&] {
      if (arm == nullptr) return;
      for (std::size_t n = arm_mark; n < g_.nodes.size(); ++n)
        arm->nodes.push_back(static_cast<int>(n));
      arm = nullptr;
    };

    std::size_t p = skip_ws(code_, open + 1);
    while (p < body_end) {
      if (at_word(p, "case") || at_word(p, "default")) {
        has_default = has_default || at_word(p, "default");
        const std::size_t label_line = p;
        p = consume_label(p, body_end);
        finish_arm();
        const int arm_entry = new_node();
        edge(head, arm_entry, EdgeKind::kCase);
        if (arm_cur >= 0) edge(arm_cur, arm_entry, EdgeKind::kNext);  // fallthrough
        branch.alternatives.emplace_back();
        arm = &branch.alternatives.back();
        arm->entry = arm_entry;
        arm->line = lines_.line(label_line);
        arm_mark = g_.nodes.size() - 1;  // include the arm entry
        arm_cur = arm_entry;
        p = skip_ws(code_, p);
        continue;
      }
      if (code_[p] == '}') break;
      if (arm_cur < 0 && arm == nullptr) {
        // Statements before the first label: dead by construction.
        int dead = -1;
        p = parse_stmt(p, body_end, dead);
      } else {
        p = parse_stmt(p, body_end, arm_cur);
      }
      p = skip_ws(code_, p);
    }
    finish_arm();
    break_targets_.pop_back();

    edge(arm_cur, after, EdgeKind::kNext);
    branch.implicit_alternative = !has_default;
    if (!has_default) edge(head, after, EdgeKind::kFalse);
    if (!branch.alternatives.empty()) g_.branches.push_back(std::move(branch));
    cur = after;
    return std::min(body_close, end);
  }

  std::size_t parse_try(std::size_t pos, std::size_t end, int& cur) {
    std::size_t open = skip_ws(code_, pos + 3);
    // Java try-with-resources: `try (Resource r = ...) {`.
    if (open < end && code_[open] == '(') {
      const std::size_t close = match_paren(code_, open);
      if (close == std::string_view::npos || close > end) {
        const std::size_t stop = simple_stmt_end(pos, end);
        attach_points(ensure(cur), pos, stop);
        return stop;
      }
      open = skip_ws(code_, close);
    }
    if (open >= end || code_[open] != '{') {
      const std::size_t stop = simple_stmt_end(pos, end);
      attach_points(ensure(cur), pos, stop);
      return stop;
    }
    std::size_t body_close = match_brace(code_, open);
    if (body_close == std::string_view::npos || body_close > end)
      body_close = end + 1;

    // Pre-scan the catch/finally clauses so throw targets exist while the
    // try body is parsed.
    struct Clause {
      std::size_t body_begin = 0, body_end = 0;
      int entry = -1;
    };
    std::vector<Clause> catches;
    Clause finally_clause;
    bool has_finally = false;
    std::size_t p = skip_ws(code_, std::min(body_close, end));
    while (p < end && (at_word(p, "catch") || at_word(p, "finally"))) {
      const bool is_finally = at_word(p, "finally");
      std::size_t q = skip_ws(code_, p + (is_finally ? 7 : 5));
      if (!is_finally) {
        if (q >= end || code_[q] != '(') break;
        const std::size_t cparen = match_paren(code_, q);
        if (cparen == std::string_view::npos || cparen > end) break;
        q = skip_ws(code_, cparen);
      }
      if (q >= end || code_[q] != '{') break;
      std::size_t bclose = match_brace(code_, q);
      if (bclose == std::string_view::npos || bclose > end) bclose = end + 1;
      Clause clause;
      clause.body_begin = q + 1;
      clause.body_end = std::min(bclose - 1, end);
      if (is_finally) {
        finally_clause = clause;
        has_finally = true;
        p = skip_ws(code_, std::min(bclose, end));
        break;  // finally is last
      }
      catches.push_back(clause);
      p = skip_ws(code_, std::min(bclose, end));
    }
    const std::size_t stmt_end = p;

    std::vector<int> catch_entries;
    for (auto& clause : catches) {
      clause.entry = new_node();
      g_.nodes[static_cast<std::size_t>(clause.entry)].in_catch = true;
      catch_entries.push_back(clause.entry);
    }
    const int join = new_node();

    const int try_entry = new_node();
    edge(cur, try_entry, EdgeKind::kNext);
    const std::size_t try_mark = g_.nodes.size() - 1;  // include try entry
    if (!catch_entries.empty()) catch_targets_.push_back(catch_entries);
    int try_cur = try_entry;
    parse_seq(open + 1, std::min(body_close, end) - 1, try_cur);
    if (!catch_entries.empty()) catch_targets_.pop_back();
    const std::size_t try_nodes_end = g_.nodes.size();

    // Any statement in the try body may throw into any handler.
    for (int target : catch_entries) {
      for (std::size_t n = try_mark; n < try_nodes_end; ++n)
        edge(static_cast<int>(n), target, EdgeKind::kThrow);
    }
    edge(try_cur, join, EdgeKind::kNext);

    for (const auto& clause : catches) {
      ++catch_depth_;
      int handler_cur = clause.entry;
      touch_lines(clause.entry, clause.body_begin, clause.body_begin + 1);
      parse_seq(clause.body_begin, clause.body_end, handler_cur);
      --catch_depth_;
      edge(handler_cur, join, EdgeKind::kNext);
    }

    cur = join;
    if (has_finally)
      parse_seq(finally_clause.body_begin, finally_clause.body_end, cur);
    return stmt_end;
  }

  std::string_view source_;
  std::string_view code_;
  const LineIndex& lines_;
  StageFlow& g_;
  const core::ScanResult& scan_;
  const std::vector<PointSite>& sites_;
  int region_index_;

  std::vector<int> break_targets_;
  std::vector<int> continue_targets_;
  std::vector<std::vector<int>> catch_targets_;
  int catch_depth_ = 0;
  std::set<std::size_t> claimed_;
};

}  // namespace

std::string_view edge_kind_name(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kNext:
      return "next";
    case EdgeKind::kTrue:
      return "true";
    case EdgeKind::kFalse:
      return "false";
    case EdgeKind::kBack:
      return "back";
    case EdgeKind::kBreak:
      return "break";
    case EdgeKind::kContinue:
      return "continue";
    case EdgeKind::kReturn:
      return "return";
    case EdgeKind::kThrow:
      return "throw";
    case EdgeKind::kCase:
      return "case";
  }
  return "next";
}

std::vector<std::vector<int>> successors(const StageFlow& graph) {
  std::vector<std::vector<int>> out(graph.nodes.size());
  for (const auto& e : graph.edges)
    out[static_cast<std::size_t>(e.from)].push_back(e.to);
  return out;
}

std::vector<std::vector<int>> predecessors(const StageFlow& graph) {
  std::vector<std::vector<int>> out(graph.nodes.size());
  for (const auto& e : graph.edges)
    out[static_cast<std::size_t>(e.to)].push_back(e.from);
  return out;
}

namespace {

std::vector<char> reach_from(const StageFlow& g, int start,
                             const std::vector<std::vector<int>>& adj) {
  std::vector<char> seen(g.nodes.size(), 0);
  if (start < 0 || static_cast<std::size_t>(start) >= g.nodes.size())
    return seen;
  std::deque<int> queue = {start};
  seen[static_cast<std::size_t>(start)] = 1;
  while (!queue.empty()) {
    const int n = queue.front();
    queue.pop_front();
    for (int next : adj[static_cast<std::size_t>(n)]) {
      if (seen[static_cast<std::size_t>(next)]) continue;
      seen[static_cast<std::size_t>(next)] = 1;
      queue.push_back(next);
    }
  }
  return seen;
}

}  // namespace

void analyze(StageFlow& g) {
  const std::size_t n = g.nodes.size();
  const auto succ = successors(g);
  const auto pred = predecessors(g);

  // Reachability from entry over all edges.
  g.reachable = reach_from(g, g.entry, succ);

  // Immediate dominators (Cooper–Harvey–Kennedy) over reachable nodes in
  // reverse postorder.
  std::vector<int> rpo;
  {
    std::vector<char> mark(n, 0);
    std::vector<std::pair<int, std::size_t>> stack;
    if (!g.nodes.empty()) {
      stack.emplace_back(g.entry, 0);
      mark[static_cast<std::size_t>(g.entry)] = 1;
    }
    std::vector<int> postorder;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      if (next < succ[static_cast<std::size_t>(node)].size()) {
        const int s = succ[static_cast<std::size_t>(node)][next++];
        if (!mark[static_cast<std::size_t>(s)]) {
          mark[static_cast<std::size_t>(s)] = 1;
          stack.emplace_back(s, 0);
        }
      } else {
        postorder.push_back(node);
        stack.pop_back();
      }
    }
    rpo.assign(postorder.rbegin(), postorder.rend());
  }
  std::vector<int> rpo_index(n, -1);
  for (std::size_t i = 0; i < rpo.size(); ++i)
    rpo_index[static_cast<std::size_t>(rpo[i])] = static_cast<int>(i);

  g.idom.assign(n, -1);
  if (!rpo.empty()) {
    g.idom[static_cast<std::size_t>(g.entry)] = g.entry;
    auto intersect = [&](int a, int b) {
      while (a != b) {
        while (rpo_index[static_cast<std::size_t>(a)] >
               rpo_index[static_cast<std::size_t>(b)])
          a = g.idom[static_cast<std::size_t>(a)];
        while (rpo_index[static_cast<std::size_t>(b)] >
               rpo_index[static_cast<std::size_t>(a)])
          b = g.idom[static_cast<std::size_t>(b)];
      }
      return a;
    };
    bool changed = true;
    while (changed) {
      changed = false;
      for (int node : rpo) {
        if (node == g.entry) continue;
        int new_idom = -1;
        for (int p : pred[static_cast<std::size_t>(node)]) {
          if (g.idom[static_cast<std::size_t>(p)] < 0) continue;
          new_idom = new_idom < 0 ? p : intersect(new_idom, p);
        }
        if (new_idom >= 0 && g.idom[static_cast<std::size_t>(node)] != new_idom) {
          g.idom[static_cast<std::size_t>(node)] = new_idom;
          changed = true;
        }
      }
    }
    g.idom[static_cast<std::size_t>(g.entry)] = -1;  // root convention
  }

  // Loop membership from the recorded loop constructs.
  g.in_loop.assign(n, 0);
  for (const auto& loop : g.loops)
    for (int node : loop.nodes)
      if (node >= 0 && static_cast<std::size_t>(node) < n)
        g.in_loop[static_cast<std::size_t>(node)] = 1;

  // Error-path facts. A node is error-only when it is reachable, can reach
  // the exit at all, and either (a) sits in a catch handler, (b) is only
  // reachable by traversing a throw edge, or (c) cannot reach the exit
  // without traversing one. Nodes that cannot reach the exit at all (a
  // nonterminating service loop) are not error paths.
  std::vector<std::vector<int>> succ_nothrow(n), pred_nothrow(n);
  for (const auto& e : g.edges) {
    if (e.kind == EdgeKind::kThrow) continue;
    succ_nothrow[static_cast<std::size_t>(e.from)].push_back(e.to);
    pred_nothrow[static_cast<std::size_t>(e.to)].push_back(e.from);
  }
  const auto fwd_normal = reach_from(g, g.entry, succ_nothrow);
  const auto bwd_normal = reach_from(g, g.exit, pred_nothrow);
  const auto bwd_any = reach_from(g, g.exit, pred);
  g.error_only.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!g.reachable[i] || !bwd_any[i]) continue;
    if (g.nodes[i].in_catch || !fwd_normal[i] || !bwd_normal[i])
      g.error_only[i] = 1;
  }
}

std::vector<StageFlow> build_stage_flows(std::string_view source,
                                         const std::string& file_name,
                                         const core::ScanResult& scan) {
  std::vector<StageFlow> flows;
  const std::string code = core::mask_comments_and_strings(source);
  const LineIndex lines(source);

  // Stage body regions, in scanner order.
  std::vector<Region> regions;
  for (std::size_t s = 0; s < scan.stages.size(); ++s) {
    const auto& stage = scan.stages[s];
    if (stage.file != file_name) continue;
    const std::size_t at = offset_of(lines, stage.line, stage.column);
    if (at == std::string_view::npos || at >= code.size()) continue;
    Region region;
    region.stage_index = s;
    const bool ok = stage.explicit_marker ? marker_region(code, at, &region)
                                          : run_body_region(code, at, &region);
    if (ok && region.begin < region.end) regions.push_back(region);
  }

  // Each log point belongs to the innermost (smallest) region containing it.
  std::vector<PointSite> sites;
  for (std::size_t i = 0; i < scan.log_points.size(); ++i) {
    const auto& p = scan.log_points[i];
    if (p.file != file_name) continue;
    PointSite site;
    site.scan_index = i;
    site.offset = offset_of(lines, p.line, p.column);
    if (site.offset == std::string_view::npos) continue;
    std::size_t best_span = 0;
    for (std::size_t r = 0; r < regions.size(); ++r) {
      if (site.offset < regions[r].begin || site.offset >= regions[r].end)
        continue;
      const std::size_t span = regions[r].end - regions[r].begin;
      if (site.owner < 0 || span < best_span) {
        site.owner = static_cast<int>(r);
        best_span = span;
      }
    }
    sites.push_back(site);
  }

  for (std::size_t r = 0; r < regions.size(); ++r) {
    const auto& stage = scan.stages[regions[r].stage_index];
    StageFlow g;
    g.stage = stage.name;
    g.file = file_name;
    g.line = stage.line;
    g.explicit_marker = stage.explicit_marker;
    g.region_begin = regions[r].begin;
    g.region_end = regions[r].end;
    Builder builder(source, code, lines, g, scan, sites, static_cast<int>(r));
    builder.build();
    analyze(g);
    flows.push_back(std::move(g));
  }
  return flows;
}

}  // namespace saad::flow
