#include "flow/conformance.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "core/feature.h"
#include "flow/signatures.h"

namespace saad::flow {

namespace {

constexpr std::size_t kMaxCombinedSignatures = 4096;
constexpr std::size_t kMaxRendered = 5;  // per stage, per kind

using PointSet = std::set<core::LogPointId>;

std::string render_signature(const core::LogRegistry& registry,
                             const PointSet& points) {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const core::LogPointId p : points) {
    if (!first) out << ", ";
    first = false;
    std::string text = registry.log_point(p).template_text;
    if (text.size() > 32) text = text.substr(0, 29) + "...";
    out << p << ":\"" << text << '"';
  }
  out << '}';
  return out.str();
}

/// Feasible signatures of one stage as registry point sets. Stages may span
/// several regions (several run() bodies or markers registering the same
/// name); a task can cross any of them, so the combined universe is closed
/// under union across regions — overgeneration is safe, undergeneration
/// would produce false "impossible" verdicts.
bool combine_regions(const std::vector<std::vector<PointSet>>& per_region,
                     std::set<PointSet>* out) {
  std::set<PointSet> combined;
  for (const auto& region : per_region) {
    for (const auto& sig : region) combined.insert(sig);
  }
  // With a single region (the common case) the per-path sets are already the
  // exact universe. Across regions, close under pairwise union to fixpoint.
  if (per_region.size() > 1) {
    bool grew = true;
    while (grew) {
      grew = false;
      std::vector<PointSet> snapshot(combined.begin(), combined.end());
      for (std::size_t a = 0; a < snapshot.size() && !grew; ++a) {
        for (std::size_t b = a + 1; b < snapshot.size(); ++b) {
          PointSet merged = snapshot[a];
          merged.insert(snapshot[b].begin(), snapshot[b].end());
          if (combined.insert(merged).second) {
            if (combined.size() > kMaxCombinedSignatures) return false;
            grew = true;
            break;
          }
        }
      }
    }
  }
  *out = std::move(combined);
  return true;
}

}  // namespace

ConformanceReport check_conformance(const std::vector<StageFlow>& flows,
                                    const core::LogRegistry& registry,
                                    const core::OutlierModel& model,
                                    const std::vector<core::Synopsis>* trace) {
  ConformanceReport report;

  // Observed signatures per stage id: trained ones plus any traced ones.
  std::map<core::StageId, std::set<PointSet>> observed;
  for (std::size_t s = 0; s < registry.num_stages(); ++s) {
    const auto stage_id = static_cast<core::StageId>(s);
    const auto* sm = model.stage_model(stage_id);
    if (sm == nullptr) continue;
    auto& sigs = observed[stage_id];
    for (const auto& [sig, stats] : sm->signatures)
      sigs.insert(PointSet(sig.points().begin(), sig.points().end()));
  }
  if (trace != nullptr) {
    for (const auto& synopsis : *trace) {
      const auto sig = core::Signature::from(synopsis);
      observed[synopsis.stage].insert(
          PointSet(sig.points().begin(), sig.points().end()));
    }
  }

  for (const auto& [stage_id, observed_sigs] : observed) {
    StageConformance sc;
    if (static_cast<std::size_t>(stage_id) >= registry.num_stages()) continue;
    sc.stage = registry.stage(stage_id).name;

    // Collect this stage's flow regions and map registry points to flow
    // points by template text.
    std::vector<const StageFlow*> regions;
    for (const auto& flow : flows)
      if (flow.stage == sc.stage) regions.push_back(&flow);
    if (regions.empty()) {
      sc.skip_reason = "no scanned stage region";
      report.stages_skipped++;
      sc.checked = false;
      report.stages.push_back(std::move(sc));
      continue;
    }

    // template text -> registry point id (of this stage only)
    std::map<std::string, core::LogPointId> by_template;
    bool ambiguous = false;
    for (const core::LogPointId p : registry.log_points_of(stage_id)) {
      const auto& info = registry.log_point(p);
      if (info.template_text.empty()) continue;
      if (!by_template.emplace(info.template_text, p).second) ambiguous = true;
    }
    if (ambiguous) {
      sc.skip_reason = "duplicate template text within the stage";
      report.stages_skipped++;
      report.stages.push_back(std::move(sc));
      continue;
    }

    // Per region: flow point index -> registry id, then feasible point sets.
    bool exact = true;
    std::set<core::LogPointId> mapped_ids;
    std::vector<std::vector<PointSet>> per_region;
    for (const StageFlow* flow : regions) {
      const FeasibleSignatures feasible = enumerate_signatures(*flow);
      exact = exact && feasible.exact;
      std::vector<core::LogPointId> point_map(flow->points.size(),
                                              core::kInvalidLogPoint);
      for (std::size_t i = 0; i < flow->points.size(); ++i) {
        const auto it = by_template.find(flow->points[i].template_text);
        if (it == by_template.end()) continue;
        point_map[i] = it->second;
        mapped_ids.insert(it->second);
      }
      std::vector<PointSet> sets;
      for (const auto& signature : feasible.signatures) {
        PointSet set;
        for (const int idx : signature) {
          const auto id = point_map[static_cast<std::size_t>(idx)];
          if (id != core::kInvalidLogPoint) set.insert(id);
        }
        sets.push_back(std::move(set));
      }
      per_region.push_back(std::move(sets));
    }

    // Judge only when the stage is fully mapped and exactly enumerated.
    const auto registry_points = registry.log_points_of(stage_id);
    const bool fully_mapped =
        std::all_of(registry_points.begin(), registry_points.end(),
                    [&](core::LogPointId p) {
                      return registry.log_point(p).template_text.empty() ||
                             mapped_ids.count(p) > 0;
                    });
    if (!fully_mapped) {
      sc.skip_reason = "registry log points missing from the scan";
      report.stages_skipped++;
      report.stages.push_back(std::move(sc));
      continue;
    }
    std::set<PointSet> feasible_sets;
    if (!exact || !combine_regions(per_region, &feasible_sets)) {
      sc.skip_reason = "signature enumeration not exact";
      report.stages_skipped++;
      report.stages.push_back(std::move(sc));
      continue;
    }

    sc.checked = true;
    sc.observed = observed_sigs.size();
    for (const auto& set : feasible_sets)
      if (!set.empty()) sc.feasible++;

    for (const auto& sig : observed_sigs) {
      // A signature with an unmappable point (dynamic-only template) cannot
      // be judged; fully_mapped guarantees these are the only such points.
      const bool judgeable =
          std::all_of(sig.begin(), sig.end(), [&](core::LogPointId p) {
            return mapped_ids.count(p) > 0;
          });
      if (!judgeable) continue;
      if (feasible_sets.count(sig)) continue;
      report.impossible_total++;
      if (sc.impossible.size() < kMaxRendered)
        sc.impossible.push_back(render_signature(registry, sig));
      else if (sc.impossible.size() == kMaxRendered)
        sc.impossible.push_back("...");
    }
    for (const auto& set : feasible_sets) {
      if (set.empty()) continue;
      if (observed_sigs.count(set)) {
        sc.covered++;
        continue;
      }
      report.uncovered_total++;
      if (sc.uncovered.size() < kMaxRendered)
        sc.uncovered.push_back(render_signature(registry, set));
      else if (sc.uncovered.size() == kMaxRendered)
        sc.uncovered.push_back("...");
    }
    report.stages_checked++;
    report.stages.push_back(std::move(sc));
  }

  std::sort(report.stages.begin(), report.stages.end(),
            [](const StageConformance& a, const StageConformance& b) {
              return a.stage < b.stage;
            });
  return report;
}

std::string render_conformance(const ConformanceReport& report) {
  std::ostringstream out;
  out << "conformance: " << report.stages_checked << " stage(s) checked, "
      << report.stages_skipped << " skipped, " << report.impossible_total
      << " statically impossible signature(s), " << report.uncovered_total
      << " coverage gap(s)\n";
  for (const auto& sc : report.stages) {
    if (!sc.checked) {
      out << "  stage \"" << sc.stage << "\": skipped (" << sc.skip_reason
          << ")\n";
      continue;
    }
    out << "  stage \"" << sc.stage << "\": " << sc.feasible
        << " feasible signature(s), " << sc.observed << " observed, "
        << sc.covered << " covered\n";
    for (const auto& sig : sc.impossible)
      out << "    error: trained signature is statically impossible: " << sig
          << "\n";
    for (const auto& sig : sc.uncovered)
      out << "    warning: feasible signature never trained: " << sig << "\n";
  }
  return out.str();
}

}  // namespace saad::flow
