#include "flow/graph_export.h"

#include <cstdio>
#include <sstream>

namespace saad::flow {

namespace {

std::string dot_escape(std::string_view text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string truncate(std::string text, std::size_t limit) {
  if (text.size() > limit) {
    text.resize(limit - 3);
    text += "...";
  }
  return text;
}

}  // namespace

std::string to_dot(const std::vector<StageFlow>& flows) {
  std::ostringstream out;
  out << "digraph saad_stage_flow {\n"
      << "  rankdir=TB;\n"
      << "  node [shape=box, fontsize=10];\n";
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const StageFlow& g = flows[f];
    out << "  subgraph cluster_" << f << " {\n"
        << "    label=\"" << dot_escape(g.stage) << " (" << dot_escape(g.file)
        << ":" << g.line << ")\";\n";
    for (const FlowNode& node : g.nodes) {
      out << "    n" << f << "_" << node.id << " [label=\"";
      if (node.id == g.entry) {
        out << "entry";
      } else if (node.id == g.exit) {
        out << "exit";
      } else if (node.line > 0) {
        out << "L" << node.line;
        if (node.end_line > node.line) out << "-" << node.end_line;
      } else {
        out << "n" << node.id;
      }
      for (const int p : node.points) {
        out << "\\nlp: "
            << dot_escape(truncate(
                   g.points[static_cast<std::size_t>(p)].template_text, 32));
      }
      out << "\"";
      const auto idx = static_cast<std::size_t>(node.id);
      if (idx < g.reachable.size() && !g.reachable[idx])
        out << ", style=dashed, color=red";
      else if (node.id == g.entry || node.id == g.exit)
        out << ", style=rounded";
      else if (idx < g.error_only.size() && g.error_only[idx])
        out << ", color=orange";
      out << "];\n";
    }
    for (const FlowEdge& e : g.edges) {
      out << "    n" << f << "_" << e.from << " -> n" << f << "_" << e.to;
      if (e.kind != EdgeKind::kNext)
        out << " [label=\"" << edge_kind_name(e.kind) << "\""
            << (e.kind == EdgeKind::kBack ? ", style=dotted" : "") << "]";
      out << ";\n";
    }
    out << "  }\n";
  }
  out << "}\n";
  return out.str();
}

std::string to_json(const std::vector<StageFlow>& flows) {
  std::ostringstream out;
  out << "{\n  \"stages\": [\n";
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const StageFlow& g = flows[f];
    out << "    {\n"
        << "      \"stage\": \"" << json_escape(g.stage) << "\",\n"
        << "      \"file\": \"" << json_escape(g.file) << "\",\n"
        << "      \"line\": " << g.line << ",\n"
        << "      \"explicit_marker\": " << (g.explicit_marker ? "true" : "false")
        << ",\n"
        << "      \"entry\": " << g.entry << ",\n"
        << "      \"exit\": " << g.exit << ",\n";
    out << "      \"nodes\": [";
    for (std::size_t n = 0; n < g.nodes.size(); ++n) {
      const FlowNode& node = g.nodes[n];
      out << (n ? ", " : "") << "{\"id\": " << node.id
          << ", \"line\": " << node.line << ", \"end_line\": " << node.end_line
          << ", \"in_catch\": " << (node.in_catch ? "true" : "false")
          << ", \"reachable\": "
          << (n < g.reachable.size() && g.reachable[n] ? "true" : "false")
          << ", \"in_loop\": "
          << (n < g.in_loop.size() && g.in_loop[n] ? "true" : "false")
          << ", \"error_only\": "
          << (n < g.error_only.size() && g.error_only[n] ? "true" : "false")
          << ", \"idom\": " << (n < g.idom.size() ? g.idom[n] : -1) << "}";
    }
    out << "],\n";
    out << "      \"edges\": [";
    for (std::size_t e = 0; e < g.edges.size(); ++e) {
      out << (e ? ", " : "") << "{\"from\": " << g.edges[e].from
          << ", \"to\": " << g.edges[e].to << ", \"kind\": \""
          << edge_kind_name(g.edges[e].kind) << "\"}";
    }
    out << "],\n";
    out << "      \"points\": [";
    for (std::size_t p = 0; p < g.points.size(); ++p) {
      const FlowPoint& point = g.points[p];
      out << (p ? ", " : "") << "{\"node\": " << point.node << ", \"level\": \""
          << json_escape(point.level) << "\", \"template\": \""
          << json_escape(point.template_text) << "\", \"line\": " << point.line
          << "}";
    }
    out << "]\n    }" << (f + 1 < flows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace saad::flow
