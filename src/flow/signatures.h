// Statically feasible log-point signatures of a stage CFG.
//
// A SAAD signature is the set of distinct log points a task emitted while
// crossing a stage. Statically, every entry→exit path through the stage CFG
// induces one signature: the union of the log points on its nodes. Loops
// multiply executions, not distinct points, so a loop contributes by letting
// any subset-closure of its iteration paths join the signature of the
// surrounding path — point sets only ever grow.
//
// Enumeration is exact for the CFGs the scanner produces in practice and
// degrades explicitly: when a cap trips (node count, point count, path or
// set explosion) `exact` turns false and callers must not treat the result
// as a complete universe. Conformance only reports "statically impossible"
// against exact enumerations.
#pragma once

#include <vector>

#include "flow/cfg.h"

namespace saad::flow {

struct FeasibleSignatures {
  /// Distinct feasible signatures; each is a sorted list of indices into
  /// StageFlow::points. Deduplicated, lexicographically ordered.
  std::vector<std::vector<int>> signatures;

  /// Per StageFlow::points entry: the point sits in a loop, so its per-task
  /// count in a synopsis is statically unbounded.
  std::vector<char> unbounded;

  /// True when the signature list is the complete statically feasible set.
  /// False when an enumeration cap tripped; the list is then a subset.
  bool exact = true;
};

/// Enumerates the feasible signatures of one analyzed stage CFG.
FeasibleSignatures enumerate_signatures(const StageFlow& flow);

}  // namespace saad::flow
