#include "flow/signatures.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <set>

namespace saad::flow {

namespace {

constexpr std::size_t kMaxNodes = 256;
constexpr std::size_t kMaxPoints = 64;
constexpr std::size_t kMaxBasePaths = 2048;
constexpr std::size_t kMaxIterationsPerLoop = 256;
constexpr std::size_t kMaxClosedSets = 4096;

/// Fixed 256-bit node set — cheap to hash, copy, and union.
struct NodeSet {
  std::array<std::uint64_t, kMaxNodes / 64> w{};

  void add(int node) {
    w[static_cast<std::size_t>(node) / 64] |=
        std::uint64_t{1} << (static_cast<std::size_t>(node) % 64);
  }
  bool has(int node) const {
    return (w[static_cast<std::size_t>(node) / 64] >>
            (static_cast<std::size_t>(node) % 64)) &
           1;
  }
  NodeSet united(const NodeSet& other) const {
    NodeSet out = *this;
    for (std::size_t i = 0; i < w.size(); ++i) out.w[i] |= other.w[i];
    return out;
  }
  bool operator<(const NodeSet& other) const { return w < other.w; }
  bool operator==(const NodeSet& other) const { return w == other.w; }
};

/// Recursive enumeration of simple paths over the acyclic skeleton
/// (back/continue edges removed), recording one node-set per path.
class PathWalker {
 public:
  PathWalker(const std::vector<std::vector<int>>& succ, int target,
             std::size_t cap)
      : succ_(succ), target_(target), cap_(cap) {}

  /// Starts at `from`; records the node-set of every path reaching a node
  /// satisfying `terminal` (target_ when no terminal set given).
  bool walk(int from, std::vector<NodeSet>* out) {
    NodeSet current;
    current.add(from);
    complete_ = true;
    dfs(from, current, out);
    return complete_;
  }

  /// Restricts traversal to `allowed` nodes and terminates on `terminals`
  /// (records the path when hitting one) instead of target_.
  void restrict(const std::vector<char>* allowed,
                const std::set<int>* terminals) {
    allowed_ = allowed;
    terminals_ = terminals;
  }

 private:
  void dfs(int node, NodeSet& current, std::vector<NodeSet>* out) {
    if (out->size() >= cap_) {
      complete_ = false;
      return;
    }
    const bool is_terminal =
        terminals_ != nullptr ? terminals_->count(node) > 0 : node == target_;
    if (is_terminal) {
      out->push_back(current);
      if (terminals_ != nullptr) return;  // iteration paths end here
      return;  // exit has no successors worth following
    }
    for (int next : succ_[static_cast<std::size_t>(node)]) {
      if (current.has(next)) continue;
      if (allowed_ != nullptr &&
          !(*allowed_)[static_cast<std::size_t>(next)]) {
        continue;
      }
      NodeSet saved = current;
      current.add(next);
      dfs(next, current, out);
      current = saved;
      if (!complete_) return;
    }
  }

  const std::vector<std::vector<int>>& succ_;
  int target_;
  std::size_t cap_;
  const std::vector<char>* allowed_ = nullptr;
  const std::set<int>* terminals_ = nullptr;
  bool complete_ = true;
};

}  // namespace

FeasibleSignatures enumerate_signatures(const StageFlow& g) {
  FeasibleSignatures result;
  result.unbounded.assign(g.points.size(), 0);
  for (std::size_t p = 0; p < g.points.size(); ++p) {
    const int node = g.points[p].node;
    if (node >= 0 && static_cast<std::size_t>(node) < g.in_loop.size() &&
        g.in_loop[static_cast<std::size_t>(node)]) {
      result.unbounded[p] = 1;
    }
  }

  // Cap guards: degrade to the single all-reachable-points signature.
  auto fallback = [&] {
    result.exact = false;
    std::vector<int> all;
    for (std::size_t p = 0; p < g.points.size(); ++p) {
      const int node = g.points[p].node;
      if (node >= 0 && static_cast<std::size_t>(node) < g.reachable.size() &&
          g.reachable[static_cast<std::size_t>(node)]) {
        all.push_back(static_cast<int>(p));
      }
    }
    result.signatures.clear();
    result.signatures.push_back(std::move(all));
    return result;
  };
  if (g.nodes.size() > kMaxNodes || g.points.size() > kMaxPoints)
    return fallback();

  // Skeleton successors (no back/continue edges) for path enumeration.
  std::vector<std::vector<int>> succ(g.nodes.size());
  for (const auto& e : g.edges) {
    if (e.kind == EdgeKind::kBack || e.kind == EdgeKind::kContinue) continue;
    succ[static_cast<std::size_t>(e.from)].push_back(e.to);
  }
  for (auto& s : succ) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }

  std::vector<NodeSet> paths;
  {
    PathWalker walker(succ, g.exit, kMaxBasePaths);
    if (!walker.walk(g.entry, &paths)) return fallback();
  }

  // Per-loop iteration node-sets: header → a back-edge source (one full
  // iteration) or → a continue site (partial iteration, plus the continue
  // target so a do-while condition node is not lost).
  struct LoopIterations {
    int header;
    std::vector<NodeSet> sets;
  };
  std::vector<LoopIterations> loop_iters;
  for (const auto& loop : g.loops) {
    std::vector<char> allowed(g.nodes.size(), 0);
    for (int node : loop.nodes)
      if (node >= 0 && static_cast<std::size_t>(node) < g.nodes.size())
        allowed[static_cast<std::size_t>(node)] = 1;

    std::set<int> terminals;
    std::vector<std::pair<int, int>> continue_sites;  // (source, target)
    for (const auto& e : g.edges) {
      if (e.kind == EdgeKind::kBack && e.to == loop.header &&
          allowed[static_cast<std::size_t>(e.from)]) {
        terminals.insert(e.from);
      }
      if (e.kind == EdgeKind::kContinue &&
          allowed[static_cast<std::size_t>(e.from)] &&
          allowed[static_cast<std::size_t>(e.to)]) {
        terminals.insert(e.from);
        continue_sites.emplace_back(e.from, e.to);
      }
    }
    if (terminals.empty()) continue;

    LoopIterations iters;
    iters.header = loop.header;
    PathWalker walker(succ, -1, kMaxIterationsPerLoop);
    walker.restrict(&allowed, &terminals);
    if (!walker.walk(loop.header, &iters.sets)) return fallback();
    for (auto& set : iters.sets) {
      for (const auto& [source, target] : continue_sites)
        if (set.has(source)) set.add(target);
    }
    loop_iters.push_back(std::move(iters));
  }

  // Closure: a loop whose header lies on a path may splice any of its
  // iteration sets into that path's node-set, repeatedly.
  std::set<NodeSet> closed(paths.begin(), paths.end());
  std::vector<NodeSet> worklist(closed.begin(), closed.end());
  while (!worklist.empty()) {
    const NodeSet set = worklist.back();
    worklist.pop_back();
    for (const auto& iters : loop_iters) {
      if (!set.has(iters.header)) continue;
      for (const auto& iteration : iters.sets) {
        NodeSet bigger = set.united(iteration);
        if (closed.count(bigger)) continue;
        if (closed.size() >= kMaxClosedSets) return fallback();
        closed.insert(bigger);
        worklist.push_back(bigger);
      }
    }
  }

  // Project node-sets onto point masks and dedupe.
  std::set<std::uint64_t> masks;
  for (const auto& set : closed) {
    std::uint64_t mask = 0;
    for (std::size_t p = 0; p < g.points.size(); ++p) {
      const int node = g.points[p].node;
      if (node >= 0 && set.has(node)) mask |= std::uint64_t{1} << p;
    }
    masks.insert(mask);
  }
  for (const std::uint64_t mask : masks) {
    std::vector<int> signature;
    for (std::size_t p = 0; p < g.points.size(); ++p)
      if ((mask >> p) & 1) signature.push_back(static_cast<int>(p));
    result.signatures.push_back(std::move(signature));
  }
  std::sort(result.signatures.begin(), result.signatures.end());
  return result;
}

}  // namespace saad::flow
