// Stage-flow graph artifacts (saad_lint --emit-graph).
//
// Deterministic renderings of the CFGs the flow layer builds: Graphviz DOT
// for humans (one cluster per stage region, edge kinds labelled, log points
// listed inside their node) and JSON for tooling (nodes, edges, points, and
// the analyze() facts). Output depends only on the input flows — byte-stable
// across runs, so goldens can diff it.
#pragma once

#include <string>
#include <vector>

#include "flow/cfg.h"

namespace saad::flow {

std::string to_dot(const std::vector<StageFlow>& flows);
std::string to_json(const std::vector<StageFlow>& flows);

}  // namespace saad::flow
