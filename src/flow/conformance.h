// Static×dynamic signature conformance (saad_lint --model / --trace).
//
// The trained OutlierModel and the stage-flow CFGs describe the same thing
// from two sides: the signatures tasks *did* produce and the signatures the
// source *can* produce. Disagreements are actionable:
//
//  * a trained signature that is statically impossible means the source has
//    drifted since training — the model is stale and its flow-anomaly
//    verdicts untrustworthy (error);
//  * a statically feasible signature absent from training is a latent false
//    positive — the first production task to take that path will be flagged
//    as a flow anomaly (warning, with per-stage counts).
//
// Mapping is conservative: registry log points are matched to scanned flow
// points by exact template text, and a stage is only judged when every one
// of its registry points maps and its signature enumeration is exact.
// Everything else is reported as skipped, never guessed.
#pragma once

#include <string>
#include <vector>

#include "core/log_registry.h"
#include "core/model.h"
#include "core/synopsis.h"
#include "flow/cfg.h"

namespace saad::flow {

struct StageConformance {
  std::string stage;
  bool checked = false;      // mapping complete and enumeration exact
  std::string skip_reason;   // set when !checked
  std::size_t feasible = 0;  // distinct feasible signatures (non-empty)
  std::size_t observed = 0;  // trained/traced signatures judged
  std::size_t covered = 0;   // feasible signatures seen in training
  std::vector<std::string> impossible;  // rendered drifted signatures
  std::vector<std::string> uncovered;   // rendered untrained signatures
};

struct ConformanceReport {
  std::vector<StageConformance> stages;
  std::size_t stages_checked = 0;
  std::size_t stages_skipped = 0;
  std::size_t impossible_total = 0;  // > 0 ⇒ drift, exit 1
  std::size_t uncovered_total = 0;   // coverage gaps, warning only
};

/// Checks every stage the model (and optional trace) knows against the
/// stage-flow CFGs. `trace` adds observed signatures to the trained ones;
/// pass nullptr when no trace is given.
ConformanceReport check_conformance(const std::vector<StageFlow>& flows,
                                    const core::LogRegistry& registry,
                                    const core::OutlierModel& model,
                                    const std::vector<core::Synopsis>* trace);

/// Human-readable multi-line report, stable ordering.
std::string render_conformance(const ConformanceReport& report);

}  // namespace saad::flow
