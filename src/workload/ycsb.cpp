#include "workload/ycsb.h"

namespace saad::workload {

YcsbDriver::YcsbDriver(sim::Engine* engine, KvService* service,
                       YcsbOptions options, std::uint64_t seed)
    : engine_(engine), service_(service), options_(options), rng_(seed),
      zipf_(options.key_space, options.zipfian_theta) {}

std::string YcsbDriver::key_name(std::uint64_t k) {
  return "user" + std::to_string(k);
}

void YcsbDriver::start(UsTime until) {
  for (int i = 0; i < options_.clients; ++i) client(i, until);
}

double YcsbDriver::mean_rate(std::size_t from_window,
                             std::size_t to_window) const {
  if (from_window >= to_window) return 0.0;
  double sum = 0.0;
  for (std::size_t w = from_window; w < to_window; ++w)
    sum += stats_.ops.rate_in(w);
  return sum / static_cast<double>(to_window - from_window);
}

sim::Process YcsbDriver::client(int id, UsTime until) {
  Rng rng = rng_.split();
  // Stagger client start so the closed loop does not phase-lock.
  co_await engine_->delay(static_cast<UsTime>(rng.next_below(
      static_cast<std::uint64_t>(options_.think_mean) + 1)));
  int batched = 0;
  (void)id;
  while (engine_->now() < until) {
    const std::string key = key_name(zipf_.next(rng));
    const UsTime begin = engine_->now();
    double read_proportion = options_.read_proportion;
    for (const auto& override_spec : options_.mix_overrides) {
      if (begin >= override_spec.from && begin < override_spec.until)
        read_proportion = override_spec.read_proportion;
    }
    if (rng.chance(read_proportion)) {
      const auto value = co_await service_->get(key);
      (void)value;  // a miss is not a failure: the key may never be written
      stats_.read_latency.record(engine_->now() - begin);
      stats_.ops.record(begin);
    } else {
      bool ok = true;
      if (options_.put_batch_size > 1 &&
          ++batched % options_.put_batch_size != 0) {
        // Quirk: buffered client-side, acknowledged instantly, never sent.
      } else {
        ok = co_await service_->put(key,
                                    std::string(options_.record_bytes, 'v'));
        stats_.server_puts.record(begin);
      }
      if (!ok) stats_.failures++;
      stats_.write_latency.record(engine_->now() - begin);
      stats_.ops.record(begin);
    }
    co_await engine_->delay(
        static_cast<UsTime>(rng.exponential(static_cast<double>(
            options_.think_mean))));
  }
}

}  // namespace saad::workload
