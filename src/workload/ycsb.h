// YCSB-like closed-loop workload generator (paper §5.2): N emulated clients
// issue a read/write mix over a zipfian-skewed key space against any storage
// service, recording throughput per 10-second window and latency.
//
// The paper uses YCSB 0.1.4 with 100 clients and a write-intensive mix. That
// YCSB version's client-side put-batching misconfiguration (§5.5,
// high-intensity-2) is reproduced behind `put_batch_size`: with a batch size
// of B, only every B-th put reaches the server — the rest complete in the
// client's buffer, inflating apparent write throughput and starving the
// server's log-sync path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace saad::workload {

/// Anything that can serve keyed reads and writes in the simulation.
class KvService {
 public:
  virtual ~KvService() = default;
  virtual sim::Task<bool> put(std::string key, std::string value) = 0;
  virtual sim::Task<std::optional<std::string>> get(std::string key) = 0;
};

struct YcsbOptions {
  int clients = 100;
  double read_proportion = 0.2;  // write-intensive, as in the paper
  std::uint64_t key_space = 100000;
  double zipfian_theta = 0.99;
  std::size_t record_bytes = 100;
  /// Mean client think time between operations (closed loop).
  UsTime think_mean = ms(2);
  /// 1 = faithful clients; B > 1 = the YCSB 0.1.4 put-batching quirk.
  int put_batch_size = 1;

  /// Scheduled read/write-mix changes. Used by the Fig. 10 bench to emulate
  /// the put-batching backlog of the paper's high-intensity-2 window: client
  /// writes pile up client-side, so the server sees mostly reads.
  struct MixOverride {
    UsTime from = 0;
    UsTime until = 0;
    double read_proportion = 0.2;
  };
  std::vector<MixOverride> mix_overrides;
};

struct YcsbStats {
  WindowedCounter ops{sec(10)};       // completed operations (client view)
  WindowedCounter server_puts{sec(10)};  // puts actually sent to the server
  Histogram read_latency;
  Histogram write_latency;
  std::uint64_t failures = 0;
};

class YcsbDriver {
 public:
  YcsbDriver(sim::Engine* engine, KvService* service, YcsbOptions options,
             std::uint64_t seed);

  /// Spawn the client processes; they stop issuing new operations at `until`.
  void start(UsTime until);

  const YcsbStats& stats() const { return stats_; }

  /// Mutable: benches adjust mix_overrides after construction (clients read
  /// the options on every operation).
  YcsbOptions& options() { return options_; }

  /// Mean throughput (ops/s) over windows [from_window, to_window).
  double mean_rate(std::size_t from_window, std::size_t to_window) const;

  static std::string key_name(std::uint64_t k);

 private:
  sim::Process client(int id, UsTime until);

  sim::Engine* engine_;
  KvService* service_;
  YcsbOptions options_;
  Rng rng_;
  Zipfian zipf_;
  YcsbStats stats_;
};

}  // namespace saad::workload
