#include "baseline/log_renderer.h"

#include <cstdio>

namespace saad::baseline {

std::string render_line(const core::LogRegistry& registry,
                        core::LogPointId point, UsTime at,
                        std::string_view message) {
  const auto& info = registry.log_point(point);
  const auto& stage = registry.stage(info.stage);

  const long long total_ms = at / kUsPerMs;
  const long long h = total_ms / 3600000;
  const long long m = (total_ms / 60000) % 60;
  const long long s = (total_ms / 1000) % 60;
  const long long millis = total_ms % 1000;

  char prefix[96];
  std::snprintf(prefix, sizeof(prefix),
                "2014-12-08 %02lld:%02lld:%02lld,%03lld %-5s %s: ", h, m, s,
                millis,
                std::string(core::level_name(info.level)).c_str(),
                stage.name.c_str());
  std::string line(prefix);
  if (message.empty()) {
    line += info.template_text;  // tracepoint-only call: static text
  } else {
    line.append(message.data(), message.size());
  }
  return line;
}

void RenderingSink::write(core::Level level, core::LogPointId point,
                          std::string_view message) {
  const std::string line =
      render_line(*registry_, point, clock_->now(), message);
  inner_->write(level, point, line);
}

}  // namespace saad::baseline
