// Renders full log-file lines the way a log4j file appender would:
//
//   2014-12-08 10:00:00,123 DEBUG DataXceiver: Receiving block blk_42
//
// Used by the volume study (Fig. 8: DEBUG text vs synopses) and to produce
// the corpus the text-mining baseline (§5.3.3) parses back.
#pragma once

#include <string>

#include "common/clock.h"
#include "core/log_registry.h"
#include "core/logger.h"

namespace saad::baseline {

/// One rendered line (no trailing newline). `at` is virtual time since the
/// experiment epoch; it is formatted as a log4j-style timestamp.
std::string render_line(const core::LogRegistry& registry,
                        core::LogPointId point, UsTime at,
                        std::string_view message);

/// A LogSink decorator that renders and forwards full lines (with timestamp,
/// level and stage prefix) to an inner sink — the "file appender" of the
/// simulated servers. The inner sink sees realistic log-file bytes.
class RenderingSink final : public core::LogSink {
 public:
  RenderingSink(const core::LogRegistry* registry, const Clock* clock,
                core::LogSink* inner)
      : registry_(registry), clock_(clock), inner_(inner) {}

  void write(core::Level level, core::LogPointId point,
             std::string_view message) override;

 private:
  const core::LogRegistry* registry_;
  const Clock* clock_;
  core::LogSink* inner_;
};

}  // namespace saad::baseline
