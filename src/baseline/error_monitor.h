// Error-log alerting baseline (paper §5.4): "common log monitoring alert
// systems, where the system alerts the user when an error log is generated."
//
// A LogSink decorator that records WARN/ERROR lines into time windows; the
// Fig. 9 benches overlay these alerts on SAAD's anomaly timeline to show the
// faults that error-grep misses entirely (the frozen-MemTable wedge produces
// exactly one non-error line until the node is already dying).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "core/logger.h"

namespace saad::baseline {

class ErrorLogMonitor final : public core::LogSink {
 public:
  struct Alert {
    UsTime at;
    core::Level level;
    core::LogPointId point;
    std::string line;
  };

  /// Forwards everything to `inner` (may be null to drop text), recording
  /// alerts for lines at or above `alert_level`.
  ErrorLogMonitor(const Clock* clock, core::LogSink* inner,
                  core::Level alert_level = core::Level::kError,
                  UsTime window = kUsPerMin)
      : clock_(clock), inner_(inner), alert_level_(alert_level),
        alerts_per_window_(window) {}

  void write(core::Level level, core::LogPointId point,
             std::string_view message) override;

  const std::vector<Alert>& alerts() const { return alerts_; }
  const WindowedCounter& alerts_per_window() const {
    return alerts_per_window_;
  }
  std::uint64_t total_alerts() const { return alerts_.size(); }

 private:
  const Clock* clock_;
  core::LogSink* inner_;
  core::Level alert_level_;
  std::vector<Alert> alerts_;
  WindowedCounter alerts_per_window_;
};

}  // namespace saad::baseline
