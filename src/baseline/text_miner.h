// Text-mining baseline (paper §5.3.3): the conventional log-analytics
// pipeline that SAAD's synopses replace. It reverse-matches rendered log
// lines to their originating statements with regular expressions built from
// the source templates (the approach of Xu et al., SOSP'09), then aggregates
// per-template counts.
//
// This is deliberately the expensive way to recover what SAAD gets for free:
// the benchmark compares its wall-clock cost against the analyzer's
// streaming cost on the same workload.
#pragma once

#include <cstdint>
#include <regex>
#include <string>
#include <string_view>
#include <vector>

#include "core/log_registry.h"

namespace saad::baseline {

class TextMiner {
 public:
  /// Compiles one regex per log template in the registry. `%` in templates
  /// matches any token sequence.
  explicit TextMiner(const core::LogRegistry& registry);

  /// Matches one rendered line (without the timestamp/level prefix, or with:
  /// the regexes are unanchored at the front) to a log point.
  /// Returns kInvalidLogPoint when nothing matches.
  core::LogPointId match(std::string_view line) const;

  /// Runs the full mining job over a corpus: per-template message counts.
  /// This is the CPU-heavy phase the paper runs as a MapReduce job.
  std::vector<std::uint64_t> mine(const std::vector<std::string>& lines) const;

  std::size_t num_templates() const { return regexes_.size(); }

 private:
  std::vector<std::pair<std::regex, core::LogPointId>> regexes_;
};

}  // namespace saad::baseline
