#include "baseline/text_miner.h"

namespace saad::baseline {

namespace {

/// Escape regex metacharacters in the template's static text and turn each
/// '%' placeholder into a non-greedy wildcard.
std::string template_to_pattern(const std::string& text) {
  std::string pattern = ".*";  // skip the timestamp/level/stage prefix
  for (char c : text) {
    switch (c) {
      case '%':
        pattern += ".*?";
        break;
      case '\\':
      case '^':
      case '$':
      case '.':
      case '|':
      case '?':
      case '*':
      case '+':
      case '(':
      case ')':
      case '[':
      case ']':
      case '{':
      case '}':
        pattern += '\\';
        [[fallthrough]];
      default:
        pattern += c;
    }
  }
  pattern += ".*";
  return pattern;
}

}  // namespace

TextMiner::TextMiner(const core::LogRegistry& registry) {
  const std::size_t n = registry.num_log_points();
  regexes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<core::LogPointId>(i);
    regexes_.emplace_back(
        std::regex(template_to_pattern(registry.log_point(id).template_text),
                   std::regex::optimize),
        id);
  }
}

core::LogPointId TextMiner::match(std::string_view line) const {
  // Linear scan over templates, exactly like the reverse-matching MapReduce
  // job: every line is tried against the template set until one fits.
  for (const auto& [regex, id] : regexes_) {
    if (std::regex_match(line.begin(), line.end(), regex)) return id;
  }
  return core::kInvalidLogPoint;
}

std::vector<std::uint64_t> TextMiner::mine(
    const std::vector<std::string>& lines) const {
  std::vector<std::uint64_t> counts(regexes_.size() + 1, 0);
  for (const auto& line : lines) {
    const auto id = match(line);
    if (id == core::kInvalidLogPoint) {
      counts.back()++;  // unmatched bucket
    } else {
      counts[id]++;
    }
  }
  return counts;
}

}  // namespace saad::baseline
