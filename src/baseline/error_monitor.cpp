#include "baseline/error_monitor.h"

namespace saad::baseline {

void ErrorLogMonitor::write(core::Level level, core::LogPointId point,
                            std::string_view message) {
  if (level >= alert_level_) {
    alerts_.push_back(
        Alert{clock_->now(), level, point, std::string(message)});
    alerts_per_window_.record(std::max<UsTime>(clock_->now(), 0));
  }
  if (inner_ != nullptr) inner_->write(level, point, message);
}

}  // namespace saad::baseline
