#include "baseline/pca_detector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/descriptive.h"

namespace saad::baseline {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm(const std::vector<double>& v) { return std::sqrt(dot(v, v)); }

/// Leading eigenvector of cov(X) by power iteration; X is centered,
/// row-major. Returns the explained variance (eigenvalue) via `lambda`.
std::vector<double> leading_component(const std::vector<std::vector<double>>& x,
                                      int iterations, double* lambda) {
  const std::size_t d = x.empty() ? 0 : x[0].size();
  // Deterministic start vector with energy in every coordinate.
  std::vector<double> v(d);
  for (std::size_t i = 0; i < d; ++i)
    v[i] = 1.0 + 0.001 * static_cast<double>(i % 7);
  double len = norm(v);
  for (auto& c : v) c /= len;

  std::vector<double> next(d);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    // next = X^T (X v)
    for (const auto& row : x) {
      const double proj = dot(row, v);
      for (std::size_t i = 0; i < d; ++i) next[i] += proj * row[i];
    }
    len = norm(next);
    if (len < 1e-12) break;  // no variance left
    for (std::size_t i = 0; i < d; ++i) v[i] = next[i] / len;
  }
  if (lambda != nullptr) {
    *lambda = x.size() > 1 ? len / static_cast<double>(x.size() - 1) : 0.0;
  }
  return v;
}

}  // namespace

PcaDetector PcaDetector::train(const std::vector<std::vector<double>>& rows,
                               const Options& options) {
  assert(!rows.empty() && !rows[0].empty());
  const std::size_t d = rows[0].size();

  PcaDetector detector;
  detector.mean_.assign(d, 0.0);
  for (const auto& row : rows) {
    assert(row.size() == d);
    for (std::size_t i = 0; i < d; ++i) detector.mean_[i] += row[i];
  }
  for (auto& m : detector.mean_) m /= static_cast<double>(rows.size());

  // Centered working copy; deflated in place as components are extracted.
  std::vector<std::vector<double>> x = rows;
  double total_variance = 0.0;
  for (auto& row : x) {
    for (std::size_t i = 0; i < d; ++i) {
      row[i] -= detector.mean_[i];
      total_variance += row[i] * row[i];
    }
  }
  total_variance /= static_cast<double>(std::max<std::size_t>(rows.size() - 1, 1));

  double captured = 0.0;
  const std::size_t limit = std::min(options.max_components, d);
  while (detector.components_.size() < limit && total_variance > 0.0 &&
         captured / total_variance < options.variance_captured) {
    double lambda = 0.0;
    auto component = leading_component(x, options.power_iterations, &lambda);
    if (lambda <= 1e-12) break;
    captured += lambda;
    // Deflate: remove the component's contribution from every row.
    for (auto& row : x) {
      const double proj = dot(row, component);
      for (std::size_t i = 0; i < d; ++i) row[i] -= proj * component[i];
    }
    detector.components_.push_back(std::move(component));
  }

  // Threshold = quantile of the training SPE distribution.
  std::vector<double> spes;
  spes.reserve(rows.size());
  for (const auto& row : rows) spes.push_back(detector.spe(row));
  std::sort(spes.begin(), spes.end());
  detector.threshold_ =
      stats::percentile_sorted(spes, options.spe_quantile);
  return detector;
}

double PcaDetector::spe(const std::vector<double>& row) const {
  assert(row.size() == mean_.size());
  std::vector<double> residual(row.size());
  for (std::size_t i = 0; i < row.size(); ++i)
    residual[i] = row[i] - mean_[i];
  for (const auto& component : components_) {
    const double proj = dot(residual, component);
    for (std::size_t i = 0; i < residual.size(); ++i)
      residual[i] -= proj * component[i];
  }
  return dot(residual, residual);
}

std::vector<std::vector<double>> count_matrix(
    std::span<const core::Synopsis> trace, std::size_t num_points,
    UsTime window) {
  assert(window > 0);
  std::size_t num_windows = 0;
  for (const auto& s : trace) {
    const auto w =
        static_cast<std::size_t>(std::max<UsTime>(s.start, 0) / window);
    num_windows = std::max(num_windows, w + 1);
  }
  std::vector<std::vector<double>> matrix(
      num_windows, std::vector<double>(num_points, 0.0));
  for (const auto& s : trace) {
    const auto w =
        static_cast<std::size_t>(std::max<UsTime>(s.start, 0) / window);
    for (const auto& lp : s.log_points) {
      if (lp.point < num_points) matrix[w][lp.point] += lp.count;
    }
  }
  return matrix;
}

}  // namespace saad::baseline
