// PCA anomaly-detection baseline, after Xu et al. (SOSP'09) — the
// console-log mining approach the paper positions itself against (§6).
//
// Xu et al. parse console logs into per-window message-count vectors and
// flag windows whose residual after projection onto the principal subspace
// (the squared prediction error, "SPE" / Q-statistic) is abnormally large.
//
// This implementation consumes SAAD synopses (so both detectors see exactly
// the same information) but deliberately discards stage/task structure: one
// count vector per time window, like the original. The comparison bench
// shows the consequence — PCA can say *when* something is off, SAAD says
// when, where (stage + host) and *what* (the anomalous flow).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/synopsis.h"

namespace saad::baseline {

class PcaDetector {
 public:
  struct Options {
    /// Keep principal components until this fraction of variance is
    /// captured (Xu et al. use the dominant few components).
    double variance_captured = 0.95;
    std::size_t max_components = 10;
    /// SPE threshold = this quantile of the training windows' SPE.
    double spe_quantile = 0.995;
    int power_iterations = 200;
  };

  /// Trains on per-window count vectors (rows: windows, columns: features).
  /// Rows must be non-empty and uniform in width.
  static PcaDetector train(const std::vector<std::vector<double>>& rows,
                           const Options& options);
  static PcaDetector train(const std::vector<std::vector<double>>& rows) {
    return train(rows, Options{});
  }

  /// Squared prediction error of a fresh window against the trained
  /// principal subspace.
  double spe(const std::vector<double>& row) const;

  bool anomalous(const std::vector<double>& row) const {
    return spe(row) > threshold_;
  }

  std::size_t num_components() const { return components_.size(); }
  double threshold() const { return threshold_; }

 private:
  PcaDetector() = default;

  std::vector<double> mean_;
  std::vector<std::vector<double>> components_;  // orthonormal, row-major
  double threshold_ = 0.0;
};

/// Builds the per-window log-point count matrix Xu et al. mine from log text
/// — here derived losslessly from synopses. `num_points` fixes the feature
/// width; windows are indexed by synopsis start time.
std::vector<std::vector<double>> count_matrix(
    std::span<const core::Synopsis> trace, std::size_t num_points,
    UsTime window);

}  // namespace saad::baseline
