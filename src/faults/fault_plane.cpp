#include "faults/fault_plane.h"

#include <algorithm>

namespace saad::faults {

const char* activity_name(Activity a) {
  switch (a) {
    case Activity::kWalAppend:
      return "wal-append";
    case Activity::kMemtableFlush:
      return "memtable-flush";
    case Activity::kDiskRead:
      return "disk-read";
    case Activity::kDiskWrite:
      return "disk-write";
    case Activity::kNetwork:
      return "network";
  }
  return "?";
}

void FaultPlane::add(const FaultSpec& spec) { specs_.push_back(spec); }

void FaultPlane::add_hog(const HogSpec& spec) { hogs_.push_back(spec); }

void FaultPlane::clear() {
  specs_.clear();
  hogs_.clear();
}

Outcome FaultPlane::apply(std::uint16_t host, Activity activity, UsTime now,
                          Rng& rng) const {
  Outcome out;
  for (const auto& spec : specs_) {
    if (spec.activity != activity) continue;
    if (spec.host != kAnyHost && spec.host != host) continue;
    if (now < spec.from || now >= spec.until) continue;
    if (!rng.chance(spec.intensity)) continue;
    if (spec.mode == FaultMode::kError) {
      out.error = true;
    } else {
      out.extra_delay += spec.delay;
    }
  }
  return out;
}

int FaultPlane::hog_processes(std::uint16_t host, UsTime now) const {
  int procs = 0;
  for (const auto& hog : hogs_) {
    if (hog.host != kAnyHost && hog.host != host) continue;
    if (now < hog.from || now >= hog.until) continue;
    procs += hog.processes;
  }
  return procs;
}

double FaultPlane::disk_slowdown(std::uint16_t host, UsTime now) const {
  const int procs = hog_processes(host, now);
  // The scheduler keeps small synchronous requests ahead of one or two
  // streaming writers; beyond that the device saturates.
  return 1.0 + 0.3 * static_cast<double>(std::max(procs - 2, 0));
}

double FaultPlane::cpu_slowdown(std::uint16_t host, UsTime now) const {
  const int procs = hog_processes(host, now);
  // A single dd is absorbed by spare cores; additional ones steal cycles
  // and interrupt time from the server.
  return 1.0 + 0.15 * static_cast<double>(std::max(procs - 1, 0));
}

bool FaultPlane::any_active(UsTime now) const {
  for (const auto& spec : specs_)
    if (now >= spec.from && now < spec.until) return true;
  for (const auto& hog : hogs_)
    if (now >= hog.from && now < hog.until) return true;
  return false;
}

}  // namespace saad::faults
