// Fault injection plane: the reproduction's stand-in for the paper's
// Systemtap I/O fault injection (§5.4) and `dd` disk hogs (§5.5, Table 2).
//
// Simulated resources consult the plane on every operation. A fault spec
// names a host, an I/O activity, a mode (fail the request or stall it), an
// intensity (fraction of requests affected: the paper uses 1% and 100%), and
// an active window in virtual time.
//
// A disk hog is a separate mechanism: while active it multiplies disk service
// times on the host and adds jitter to CPU-bound work, emulating the
// bandwidth theft and interrupt pressure of `dd if=/dev/urandom`.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace saad::faults {

/// Host wildcard: the fault applies on every host.
inline constexpr std::uint16_t kAnyHost = 0xFFFF;

/// I/O activities that can be faulted (paper §5.4 "Failure Model").
enum class Activity : std::uint8_t {
  kWalAppend,      // appending an entry to the write-ahead log
  kMemtableFlush,  // writing a MemTable to disk as an SSTable
  kDiskRead,
  kDiskWrite,      // other disk writes (block files, compaction output)
  kNetwork,
};

const char* activity_name(Activity a);

enum class FaultMode : std::uint8_t { kError, kDelay };

struct FaultSpec {
  std::uint16_t host = kAnyHost;
  Activity activity = Activity::kWalAppend;
  FaultMode mode = FaultMode::kError;
  double intensity = 1.0;  // fraction of requests affected (0..1]
  UsTime delay = ms(100);  // added latency for kDelay (paper pauses 100 ms)
  UsTime from = 0;         // active window [from, until)
  UsTime until = 0;
};

struct HogSpec {
  std::uint16_t host = kAnyHost;
  UsTime from = 0;
  UsTime until = 0;
  /// Number of concurrent dd processes; service-time inflation grows with it.
  int processes = 1;
};

/// What the faulted operation should experience.
struct Outcome {
  bool error = false;
  UsTime extra_delay = 0;
};

class FaultPlane {
 public:
  void add(const FaultSpec& spec);
  void add_hog(const HogSpec& spec);
  void clear();

  /// Consulted by resources before completing an operation.
  Outcome apply(std::uint16_t host, Activity activity, UsTime now,
                Rng& rng) const;

  /// Number of dd processes active on `host` at `now` (the paper escalates
  /// 1 -> 2 -> 4). Simulated hosts use this to drive hog writeback bursts.
  int hog_processes(std::uint16_t host, UsTime now) const;

  /// Service-time multiplier for the server's (small, synchronous) disk
  /// requests. The I/O scheduler shields them from one or two streaming
  /// writers; past that the device saturates and everything slows.
  double disk_slowdown(std::uint16_t host, UsTime now) const;

  /// CPU service-time multiplier from active hogs (interrupt/cycle theft;
  /// dd against /dev/urandom burns kernel CPU).
  double cpu_slowdown(std::uint16_t host, UsTime now) const;

  bool any_active(UsTime now) const;

 private:
  std::vector<FaultSpec> specs_;
  std::vector<HogSpec> hogs_;
};

}  // namespace saad::faults
