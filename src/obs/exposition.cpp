#include "obs/exposition.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace saad::obs {

namespace {

// Prometheus text format: HELP escapes backslash and newline.
std::string escape_help(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

// Label values additionally escape the double quote.
std::string escape_label_value(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '"')
      out += "\\\"";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

/// `{l1="v1",l2="v2"}` or empty; `extra` appends one more pair (used for le).
std::string label_block(const Labels& labels, const std::string& extra_key = {},
                        const std::string& extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key + "=\"" + escape_label_value(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

std::string render_prometheus(const MetricsRegistry& registry) {
  std::ostringstream out;
  for (const auto& family : registry.snapshot()) {
    out << "# HELP " << family.name << ' ' << escape_help(family.help) << '\n';
    out << "# TYPE " << family.name << ' ' << to_string(family.type) << '\n';
    for (const auto& series : family.series) {
      switch (family.type) {
        case MetricType::kCounter:
          out << family.name << label_block(series.labels) << ' '
              << series.counter_value << '\n';
          break;
        case MetricType::kGauge:
          out << family.name << label_block(series.labels) << ' '
              << series.gauge_value << '\n';
          break;
        case MetricType::kHistogram: {
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < series.histogram.counts.size(); ++i) {
            cumulative += series.histogram.counts[i];
            const std::string le = i < family.bounds.size()
                                       ? std::to_string(family.bounds[i])
                                       : "+Inf";
            out << family.name << "_bucket"
                << label_block(series.labels, "le", le) << ' ' << cumulative
                << '\n';
          }
          out << family.name << "_sum" << label_block(series.labels) << ' '
              << series.histogram.sum << '\n';
          out << family.name << "_count" << label_block(series.labels) << ' '
              << series.histogram.count << '\n';
          break;
        }
      }
    }
  }
  return out.str();
}

std::string render_json(const MetricsRegistry& registry) {
  std::ostringstream out;
  out << "{\"schema_version\":" << kTelemetrySchemaVersion << ",\"families\":[";
  bool first_family = true;
  for (const auto& family : registry.snapshot()) {
    if (!first_family) out << ',';
    first_family = false;
    out << "{\"name\":\"" << json_escape(family.name) << "\",\"type\":\""
        << to_string(family.type) << "\",\"help\":\""
        << json_escape(family.help) << "\",\"series\":[";
    bool first_series = true;
    for (const auto& series : family.series) {
      if (!first_series) out << ',';
      first_series = false;
      out << "{\"labels\":{";
      bool first_label = true;
      for (const auto& [key, value] : series.labels) {
        if (!first_label) out << ',';
        first_label = false;
        out << '"' << json_escape(key) << "\":\"" << json_escape(value)
            << '"';
      }
      out << '}';
      switch (family.type) {
        case MetricType::kCounter:
          out << ",\"value\":" << series.counter_value;
          break;
        case MetricType::kGauge:
          out << ",\"value\":" << series.gauge_value;
          break;
        case MetricType::kHistogram: {
          out << ",\"count\":" << series.histogram.count
              << ",\"sum\":" << series.histogram.sum << ",\"buckets\":[";
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < series.histogram.counts.size(); ++i) {
            if (i) out << ',';
            cumulative += series.histogram.counts[i];
            out << "{\"le\":";
            if (i < family.bounds.size())
              out << family.bounds[i];
            else
              out << "\"+Inf\"";
            out << ",\"count\":" << cumulative << '}';
          }
          out << ']';
          break;
        }
      }
      out << '}';
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

bool write_prometheus_file(const MetricsRegistry& registry,
                           const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << render_prometheus(registry);
  return static_cast<bool>(file);
}

}  // namespace saad::obs
