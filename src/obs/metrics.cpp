#include "obs/metrics.h"

#include <cassert>
#include <cctype>
#include <stdexcept>

namespace saad::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_'))
    return false;
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_'))
      return false;
  }
  return true;
}

}  // namespace

const char* to_string(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)) {
  assert(!bounds_.empty());
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    assert(bounds_[i - 1] < bounds_[i]);
  for (auto& shard : shards_)
    shard = std::make_unique<Shard>(bounds_.size() + 1);
}

std::vector<std::int64_t> latency_bounds_us() {
  return {50,     100,    250,    500,     1000,    2500,    5000,
          10000,  25000,  50000,  100000,  250000,  500000,  1000000,
          2500000, 10000000};
}

std::vector<std::int64_t> size_bounds() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: instrumentation structs hold references from static
  // storage, and destruction order at exit must never invalidate them.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Family& MetricsRegistry::family_for(const std::string& name,
                                                     const std::string& help,
                                                     MetricType type) {
  if (!valid_metric_name(name))
    throw std::logic_error("invalid metric name '" + name + "'");
  for (auto& family : families_) {
    if (family.name != name) continue;
    if (family.type != type) {
      throw std::logic_error("metric '" + name + "' already registered as " +
                             to_string(family.type));
    }
    return family;
  }
  families_.push_back(Family{name, help, type, {}, {}});
  return families_.back();
}

MetricsRegistry::Series& MetricsRegistry::series_for(Family& family,
                                                     const Labels& labels) {
  for (auto& series : family.series)
    if (series.labels == labels) return series;
  family.series.push_back(Series{labels, nullptr, nullptr, nullptr});
  return family.series.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  std::lock_guard lock(mu_);
  Series& series = series_for(family_for(name, help, MetricType::kCounter),
                              labels);
  if (series.counter == nullptr)
    series.counter = std::unique_ptr<Counter>(new Counter());
  return *series.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  std::lock_guard lock(mu_);
  Series& series =
      series_for(family_for(name, help, MetricType::kGauge), labels);
  if (series.gauge == nullptr)
    series.gauge = std::unique_ptr<Gauge>(new Gauge());
  return *series.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<std::int64_t> bounds,
                                      const Labels& labels) {
  std::lock_guard lock(mu_);
  Family& family = family_for(name, help, MetricType::kHistogram);
  if (family.bounds.empty()) family.bounds = bounds;
  Series& series = series_for(family, labels);
  if (series.histogram == nullptr) {
    // All series of one family share the family's bounds (the first
    // registration wins), so the exposition's per-family bucket layout holds.
    series.histogram =
        std::unique_ptr<Histogram>(new Histogram(family.bounds));
  }
  return *series.histogram;
}

std::vector<MetricsRegistry::FamilySnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<FamilySnapshot> out;
  out.reserve(families_.size());
  for (const auto& family : families_) {
    FamilySnapshot fs;
    fs.name = family.name;
    fs.help = family.help;
    fs.type = family.type;
    fs.bounds = family.bounds;
    fs.series.reserve(family.series.size());
    for (const auto& series : family.series) {
      SeriesSnapshot ss;
      ss.labels = series.labels;
      if (series.counter) ss.counter_value = series.counter->value();
      if (series.gauge) ss.gauge_value = series.gauge->value();
      if (series.histogram) ss.histogram = series.histogram->snapshot();
      fs.series.push_back(std::move(ss));
    }
    out.push_back(std::move(fs));
  }
  return out;
}

void MetricsRegistry::reset_values() {
  std::lock_guard lock(mu_);
  for (auto& family : families_) {
    for (auto& series : family.series) {
      if (series.counter) series.counter->reset();
      if (series.gauge) series.gauge->reset();
      if (series.histogram) series.histogram->reset();
    }
  }
}

std::size_t MetricsRegistry::num_families() const {
  std::lock_guard lock(mu_);
  return families_.size();
}

}  // namespace saad::obs
