// Self-telemetry metrics for the SAAD pipeline itself (not the monitored
// servers): a lock-light registry of monotonic counters, gauges, and
// fixed-bucket histograms, scraped into Prometheus text or JSON by
// obs/exposition.h.
//
// Hot-path cost model: incrementing a Counter or observing into a Histogram
// is a single relaxed atomic add on a per-thread sharded cell (threads are
// round-robined over kCells cache-line-sized cells, so concurrent writers
// almost never touch the same line). Aggregation happens only on scrape,
// which sums the cells — scrapes may therefore see a value mid-update, which
// is the normal Prometheus consistency model. Registration (counter(),
// gauge(), histogram()) takes a mutex and allocates; do it once at setup and
// keep the returned reference, never per event.
//
// Compile-time escape hatch: configuring with -DSAAD_METRICS=OFF defines
// SAAD_METRICS_DISABLED, which turns every mutation (inc/add/sub/set/observe)
// into an empty inline function — call sites compile to nothing, and the
// exposition surfaces render the registered families with zero values.
// kMetricsEnabled lets tests and tools branch on the mode.
//
// Naming convention (enforced by assert in the registry):
// saad_<subsystem>_<name>[_<unit>][_total], e.g.
// saad_channel_enqueued_total, saad_detector_window_close_us. Label
// cardinality must stay small and bounded: label values are shard/worker
// indexes capped by the instrumentation (mod kMaxIndexedLabels), never ids
// from the monitored workload (hosts, stages, signatures).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace saad::obs {

#if defined(SAAD_METRICS_DISABLED)
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

/// Sorted-insignificant list of (key, value) pairs; kept as given.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Cap the instrumentation applies to indexed labels (shard="i", worker="i"):
/// indexes are taken mod this, so a pathological configuration can never
/// explode series cardinality.
inline constexpr std::size_t kMaxIndexedLabels = 16;

namespace internal {

inline constexpr std::size_t kCells = 8;

struct alignas(64) Cell {
  std::atomic<std::uint64_t> value{0};
};

/// Stable small integer per thread (registration order), used to spread
/// writers over cells. The first kCells threads get distinct cells.
inline std::size_t thread_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace internal

/// Monotonic counter. inc() is a relaxed add on a per-thread cell; value()
/// sums the cells.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) noexcept {
#if !defined(SAAD_METRICS_DISABLED)
    cells_[internal::thread_index() % internal::kCells].value.fetch_add(
        n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& cell : cells_)
      sum += cell.value.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() noexcept {
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<internal::Cell, internal::kCells> cells_{};
};

/// Up/down instantaneous value (queue depths, worker counts). A single
/// atomic: gauges are updated far less often than counters and need set().
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
#if !defined(SAAD_METRICS_DISABLED)
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(std::int64_t d) noexcept {
#if !defined(SAAD_METRICS_DISABLED)
    value_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  void sub(std::int64_t d) noexcept { add(-d); }

  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over int64 samples (latencies in us, batch sizes).
/// Bucket upper bounds are inclusive and strictly increasing; a final +Inf
/// bucket is implicit. observe() is one binary search over the (small, fixed)
/// bounds plus two relaxed adds on a per-thread shard.
class Histogram {
 public:
  struct Snapshot {
    std::vector<std::uint64_t> counts;  // per bound, last entry = +Inf bucket
    std::uint64_t count = 0;            // total observations
    std::int64_t sum = 0;               // sum of observed values
  };

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(std::int64_t v) noexcept {
#if !defined(SAAD_METRICS_DISABLED)
    std::size_t lo = 0, hi = bounds_.size();
    while (lo < hi) {  // first bound >= v; bounds_.size() means +Inf
      const std::size_t mid = (lo + hi) / 2;
      if (bounds_[mid] < v)
        lo = mid + 1;
      else
        hi = mid;
    }
    Shard& shard = *shards_[internal::thread_index() % internal::kCells];
    shard.counts[lo].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  const std::vector<std::int64_t>& bounds() const { return bounds_; }

  /// Per-bucket (non-cumulative) counts summed over shards. Exposition turns
  /// these into Prometheus's cumulative _bucket series.
  Snapshot snapshot() const {
    Snapshot snap;
    snap.counts.assign(bounds_.size() + 1, 0);
    for (const auto& shard : shards_) {
      for (std::size_t i = 0; i < snap.counts.size(); ++i)
        snap.counts[i] += shard->counts[i].load(std::memory_order_relaxed);
      snap.sum += shard->sum.load(std::memory_order_relaxed);
    }
    for (auto c : snap.counts) snap.count += c;
    return snap;
  }

  void reset() noexcept {
    for (auto& shard : shards_) {
      for (std::size_t i = 0; i <= bounds_.size(); ++i)
        shard->counts[i].store(0, std::memory_order_relaxed);
      shard->sum.store(0, std::memory_order_relaxed);
    }
  }

 private:
  friend class MetricsRegistry;

  struct Shard {
    explicit Shard(std::size_t n)
        : counts(std::make_unique<std::atomic<std::uint64_t>[]>(n)) {}
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;  // value-initialized
    alignas(64) std::atomic<std::int64_t> sum{0};
  };

  explicit Histogram(std::vector<std::int64_t> bounds);

  std::vector<std::int64_t> bounds_;
  std::array<std::unique_ptr<Shard>, internal::kCells> shards_;
};

/// Latency bounds (microseconds) shared by the pipeline's duration
/// histograms: 50us .. 10s, roughly x2.5 per step.
std::vector<std::int64_t> latency_bounds_us();

/// Size bounds for batch/count histograms: powers of two 1 .. 4096.
std::vector<std::int64_t> size_bounds();

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };
const char* to_string(MetricType type);

/// Owns metric families. counter()/gauge()/histogram() get-or-create: the
/// same (name, labels) always returns the same instance, so independent
/// components (and repeated constructions of the same component) accumulate
/// into one process-wide series — the Prometheus model. Requesting an
/// existing name with a different type throws std::logic_error.
///
/// Metric references stay valid for the registry's lifetime; global() never
/// dies (intentionally leaked) so references held in static instrumentation
/// structs are safe through shutdown.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default registry the pipeline instruments into.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<std::int64_t> bounds,
                       const Labels& labels = {});

  struct SeriesSnapshot {
    Labels labels;
    std::uint64_t counter_value = 0;  // type == kCounter
    std::int64_t gauge_value = 0;     // type == kGauge
    Histogram::Snapshot histogram;    // type == kHistogram
  };
  struct FamilySnapshot {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    std::vector<std::int64_t> bounds;  // histograms only
    std::vector<SeriesSnapshot> series;
  };

  /// Families in registration order, series in creation order.
  std::vector<FamilySnapshot> snapshot() const;

  /// Zeroes every value, keeping all registrations. For tests and for tools
  /// that want per-run deltas out of the process-wide registry.
  void reset_values();

  std::size_t num_families() const;

 private:
  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricType type;
    std::vector<std::int64_t> bounds;
    std::vector<Series> series;
  };

  Family& family_for(const std::string& name, const std::string& help,
                     MetricType type);
  Series& series_for(Family& family, const Labels& labels);

  mutable std::mutex mu_;
  std::vector<Family> families_;
};

}  // namespace saad::obs
