#include "obs/flight_recorder.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <ctime>

#include <unistd.h>

namespace saad::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kWindowOpen:
      return "window-open";
    case EventKind::kWindowClose:
      return "window-close";
    case EventKind::kShardStall:
      return "shard-stall";
    case EventKind::kCorruptBlock:
      return "corrupt-block";
    case EventKind::kTornTail:
      return "torn-tail";
    case EventKind::kModelReload:
      return "model-reload";
    case EventKind::kModeChange:
      return "mode-change";
    case EventKind::kWorkerStart:
      return "worker-start";
    case EventKind::kWorkerStop:
      return "worker-stop";
    case EventKind::kIoError:
      return "io-error";
    case EventKind::kCustom:
      return "event";
  }
  return "event";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::record(EventKind kind, const char* format, ...) {
  Event event;
  event.kind = kind;
  event.wall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  va_list args;
  va_start(args, format);
  std::vsnprintf(event.detail, sizeof(event.detail), format, args);
  va_end(args);

  std::lock_guard lock(mu_);
  event.seq = next_seq_++;
  ring_[(event.seq - 1) % ring_.size()] = event;
}

std::vector<FlightRecorder::Event> FlightRecorder::dump() const {
  std::lock_guard lock(mu_);
  std::vector<Event> out;
  const std::uint64_t total = next_seq_ - 1;
  std::uint64_t first = total > ring_.size() ? total - ring_.size() + 1 : 1;
  first = std::max(first, first_retained_);
  if (first > total) return out;
  out.reserve(total - first + 1);
  for (std::uint64_t seq = first; seq <= total; ++seq)
    out.push_back(ring_[(seq - 1) % ring_.size()]);
  return out;
}

void FlightRecorder::clear() {
  std::lock_guard lock(mu_);
  first_retained_ = next_seq_;
}

std::uint64_t FlightRecorder::recorded() const {
  std::lock_guard lock(mu_);
  return next_seq_ - 1;
}

std::string FlightRecorder::dump_text() const {
  const auto events = dump();
  std::string out;
  const std::uint64_t base = events.empty() ? 0 : events.front().wall_us;
  for (const auto& event : events) {
    char line[kDetailBytes + 64];
    std::snprintf(line, sizeof(line), "#%llu +%.6fs %s: %s\n",
                  static_cast<unsigned long long>(event.seq),
                  static_cast<double>(event.wall_us - base) / 1e6,
                  to_string(event.kind), event.detail);
    out += line;
  }
  return out;
}

namespace {

// write(2)-only helpers for the signal path: no locale, no allocation.
// write() may return short (pipes near capacity, sockets, EINTR), so every
// chunk loops until fully written — a dump must never be silently truncated
// mid-buffer. EAGAIN (the fd is non-blocking and full) backs off with
// nanosleep, which is async-signal-safe, for a bounded number of retries;
// any other error abandons the dump.
void write_all(int fd, const char* data, std::size_t n) {
  int eagain_retries = 1000;  // ~1s of 1ms backoffs, then give up
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (--eagain_retries < 0) return;
      timespec ts{0, 1000000};  // 1ms
      ::nanosleep(&ts, nullptr);
      continue;
    }
    return;  // closed pipe, bad fd, ...: nothing useful left to do
  }
}

void write_str(int fd, const char* s) {
  std::size_t n = 0;
  while (s[n] != '\0' && n < 4096) ++n;
  write_all(fd, s, n);
}

void write_u64(int fd, std::uint64_t v) {
  char buf[24];
  std::size_t i = sizeof(buf);
  do {
    buf[--i] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0 && i > 0);
  write_all(fd, buf + i, sizeof(buf) - i);
}

}  // namespace

void FlightRecorder::dump_to_fd(int fd) const noexcept {
  // Deliberately lock-free: this runs in a signal handler where the mutex
  // may be held by the crashed thread. Reads may be torn; every byte written
  // is still bounded and NUL-safe.
  const std::uint64_t total = next_seq_ - 1;
  const std::uint64_t count =
      total > ring_.size() ? static_cast<std::uint64_t>(ring_.size()) : total;
  write_str(fd, "-- saad flight recorder (");
  write_u64(fd, count);
  write_str(fd, " of ");
  write_u64(fd, total);
  write_str(fd, " events) --\n");
  const std::uint64_t first = total - count + 1;
  for (std::uint64_t seq = first; seq <= total; ++seq) {
    const Event& event = ring_[(seq - 1) % ring_.size()];
    write_str(fd, "#");
    write_u64(fd, event.seq);
    write_str(fd, " ");
    write_str(fd, obs::to_string(event.kind));
    write_str(fd, ": ");
    char detail[kDetailBytes];
    std::memcpy(detail, event.detail, sizeof(detail));
    detail[sizeof(detail) - 1] = '\0';
    write_str(fd, detail);
    write_str(fd, "\n");
  }
}

namespace {

void crash_handler(int sig) {
  write_str(2, "\nsaad: fatal signal, dumping flight recorder\n");
  FlightRecorder::global().dump_to_fd(2);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void install_crash_handler() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  for (int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT})
    std::signal(sig, crash_handler);
}

}  // namespace saad::obs
