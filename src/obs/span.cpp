#include "obs/span.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "obs/metrics.h"

namespace saad::obs {

namespace {

const char* kHopNames[kSpanHops] = {
    "ingest-decode", "channel-publish", "dequeue",
    "window-assign", "window-close",    "verdict-emit",
};

// Label values for the per-gap latency families: the gap from hop k to
// hop k+1.
const char* kGapLabels[kSpanHops - 1] = {
    "decode_to_publish", "publish_to_dequeue", "dequeue_to_assign",
    "assign_to_close",   "close_to_emit",
};

// Process-wide span telemetry; every SpanTracer accumulates into the same
// families (the Prometheus model, matching server/channel instrumentation).
struct SpanMetrics {
  Counter& batches;
  Counter& sampled;
  Counter& completed;
  Counter& abandoned;
  Counter& evicted;
  Gauge& open;
  Histogram* gap_us[kSpanHops - 1];
  Histogram& end_to_end_us;

  SpanMetrics()
      : batches(MetricsRegistry::global().counter(
            "saad_span_batches_total",
            "Synopsis batches considered for span sampling at decode.")),
        sampled(MetricsRegistry::global().counter(
            "saad_span_sampled_total", "Pipeline spans started (sampled).")),
        completed(MetricsRegistry::global().counter(
            "saad_span_completed_total",
            "Spans that reached the verdict-emit hop.")),
        abandoned(MetricsRegistry::global().counter(
            "saad_span_abandoned_total",
            "Spans lost before completion (batch shed, or open-span bound "
            "hit).")),
        evicted(MetricsRegistry::global().counter(
            "saad_span_evicted_total",
            "Completed spans overwritten in the bounded export ring.")),
        open(MetricsRegistry::global().gauge(
            "saad_span_open", "Spans waiting for downstream hops.")),
        end_to_end_us(MetricsRegistry::global().histogram(
            "saad_span_end_to_end_us",
            "Sampled batch latency from ingest-decode to verdict-emit.",
            latency_bounds_us())) {
    for (std::size_t i = 0; i + 1 < kSpanHops; ++i) {
      gap_us[i] = &MetricsRegistry::global().histogram(
          "saad_span_hop_us",
          "Per-hop latency of sampled pipeline spans (hop label names the "
          "gap).",
          latency_bounds_us(), {{"hop", kGapLabels[i]}});
    }
  }

  static SpanMetrics& get() {
    static SpanMetrics* metrics = new SpanMetrics();
    return *metrics;
  }
};

}  // namespace

const char* to_string(SpanHop hop) {
  const auto i = static_cast<std::size_t>(hop);
  return i < kSpanHops ? kHopNames[i] : "unknown";
}

void register_span_metrics() { SpanMetrics::get(); }

SpanTracer::SpanTracer() = default;

SpanTracer& SpanTracer::global() {
  static SpanTracer* tracer = new SpanTracer();
  return *tracer;
}

std::int64_t SpanTracer::now() const {
  if (options_.clock) return options_.clock();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SpanTracer::enable(Options options) {
  std::lock_guard lock(mu_);
  options_ = std::move(options);
  if (options_.sample_every == 0) options_.sample_every = 1;
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  if (options_.max_open == 0) options_.max_open = 1;
  batch_index_.store(0, std::memory_order_relaxed);
  next_id_ = 1;
  sampled_ = 0;
  completed_total_ = 0;
  abandoned_ = 0;
  open_.clear();
  open_count_.store(0, std::memory_order_relaxed);
  ring_.clear();
  SpanMetrics::get();  // families exist before the first scrape
  enabled_.store(true, std::memory_order_release);
}

void SpanTracer::disable() {
  enabled_.store(false, std::memory_order_release);
  std::lock_guard lock(mu_);
  open_.clear();
  open_count_.store(0, std::memory_order_relaxed);
  SpanMetrics::get().open.set(0);
}

void SpanTracer::reset() {
  std::lock_guard lock(mu_);
  batch_index_.store(0, std::memory_order_relaxed);
  next_id_ = 1;
  sampled_ = 0;
  completed_total_ = 0;
  abandoned_ = 0;
  open_.clear();
  open_count_.store(0, std::memory_order_relaxed);
  ring_.clear();
}

std::uint64_t SpanTracer::on_batch_decoded(std::uint64_t synopses) {
  if (!enabled()) return 0;
  auto& metrics = SpanMetrics::get();
  // Unsampled batches — at 1-in-64, nearly all of them — are decided on one
  // atomic increment; only a sampled batch pays for the lock. sample_every
  // and seed are immutable while enabled, so reading them unlocked is safe.
  const std::uint64_t index =
      batch_index_.fetch_add(1, std::memory_order_relaxed);
  metrics.batches.inc();
  if (index % options_.sample_every != options_.seed % options_.sample_every)
    return 0;

  std::lock_guard lock(mu_);
  if (open_.size() >= options_.max_open) {
    open_.erase(open_.begin());
    ++abandoned_;
    metrics.abandoned.inc();
  }
  Open open;
  open.span.id = next_id_++;
  open.span.batch_index = index;
  open.span.synopses = synopses;
  open.span.ts_us[static_cast<std::size_t>(SpanHop::kIngestDecode)] = now();
  open_.push_back(std::move(open));
  open_count_.store(open_.size(), std::memory_order_relaxed);
  ++sampled_;
  metrics.sampled.inc();
  metrics.open.set(static_cast<std::int64_t>(open_.size()));
  return open_.back().span.id;
}

void SpanTracer::on_published(std::uint64_t token, std::uint64_t position) {
  if (token == 0 || !enabled()) return;
  std::lock_guard lock(mu_);
  for (auto& open : open_) {
    if (open.span.id != token) continue;
    open.span.position = position;
    open.published = true;
    open.span.ts_us[static_cast<std::size_t>(SpanHop::kChannelPublish)] =
        now();
    return;
  }
}

void SpanTracer::on_shed(std::uint64_t token) {
  if (token == 0 || !enabled()) return;
  std::lock_guard lock(mu_);
  auto it = std::find_if(open_.begin(), open_.end(), [&](const Open& open) {
    return open.span.id == token;
  });
  if (it == open_.end()) return;
  open_.erase(it);
  open_count_.store(open_.size(), std::memory_order_relaxed);
  ++abandoned_;
  auto& metrics = SpanMetrics::get();
  metrics.abandoned.inc();
  metrics.open.set(static_cast<std::int64_t>(open_.size()));
}

void SpanTracer::stamp_from(std::uint64_t cumulative, SpanHop hop) {
  if (!enabled()) return;
  // No span is waiting: skip the lock. The publish that opens a span
  // happens-before the consumer drains its synopses (the channel's mutex
  // orders them), so a consumer hook that should stamp always sees a
  // non-zero count here.
  if (open_count_.load(std::memory_order_relaxed) == 0) return;
  std::lock_guard lock(mu_);
  const auto h = static_cast<std::size_t>(hop);
  bool completed_any = false;
  for (auto& open : open_) {
    if (!open.published || open.span.position > cumulative) continue;
    if (open.span.ts_us[h] != 0 || open.span.ts_us[h - 1] == 0) continue;
    open.span.ts_us[h] = now();
    if (hop == SpanHop::kVerdictEmit) completed_any = true;
  }
  if (!completed_any) return;
  auto done = std::stable_partition(
      open_.begin(), open_.end(), [](const Open& open) {
        return open.span
                   .ts_us[static_cast<std::size_t>(SpanHop::kVerdictEmit)] ==
               0;
      });
  std::vector<Open> finished(std::make_move_iterator(done),
                             std::make_move_iterator(open_.end()));
  open_.erase(done, open_.end());
  open_count_.store(open_.size(), std::memory_order_relaxed);
  for (auto& open : finished) complete_locked(std::move(open.span));
  SpanMetrics::get().open.set(static_cast<std::int64_t>(open_.size()));
}

void SpanTracer::on_dequeued(std::uint64_t cumulative) {
  stamp_from(cumulative, SpanHop::kDequeue);
}
void SpanTracer::on_assigned(std::uint64_t cumulative) {
  stamp_from(cumulative, SpanHop::kWindowAssign);
}
void SpanTracer::on_window_close(std::uint64_t cumulative) {
  stamp_from(cumulative, SpanHop::kWindowClose);
}
void SpanTracer::on_verdict_emit(std::uint64_t cumulative) {
  stamp_from(cumulative, SpanHop::kVerdictEmit);
}

void SpanTracer::complete_locked(PipelineSpan&& span) {
  auto& metrics = SpanMetrics::get();
  for (std::size_t i = 0; i + 1 < kSpanHops; ++i)
    metrics.gap_us[i]->observe(span.ts_us[i + 1] - span.ts_us[i]);
  metrics.end_to_end_us.observe(
      span.ts_us[static_cast<std::size_t>(SpanHop::kVerdictEmit)] -
      span.ts_us[static_cast<std::size_t>(SpanHop::kIngestDecode)]);
  metrics.completed.inc();
  ++completed_total_;
  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back(std::move(span));
    return;
  }
  // Ring is full: overwrite the oldest. completed_total_ keeps the lifetime
  // ordering, so (completed_total_ - 1) % capacity is the slot the span
  // would occupy in arrival order.
  metrics.evicted.inc();
  ring_[(completed_total_ - 1) % options_.ring_capacity] = std::move(span);
}

std::vector<PipelineSpan> SpanTracer::completed() const {
  std::lock_guard lock(mu_);
  if (ring_.size() < options_.ring_capacity || completed_total_ == 0)
    return ring_;  // not yet wrapped: already oldest-first
  std::vector<PipelineSpan> out;
  out.reserve(ring_.size());
  const std::size_t cap = options_.ring_capacity;
  const std::size_t head = completed_total_ % cap;  // oldest retained slot
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head + i) % cap]);
  return out;
}

std::uint64_t SpanTracer::batches() const {
  return batch_index_.load(std::memory_order_relaxed);
}
std::uint64_t SpanTracer::sampled() const {
  std::lock_guard lock(mu_);
  return sampled_;
}
std::uint64_t SpanTracer::completed_count() const {
  std::lock_guard lock(mu_);
  return completed_total_;
}
std::uint64_t SpanTracer::abandoned() const {
  std::lock_guard lock(mu_);
  return abandoned_;
}
std::uint64_t SpanTracer::sample_every() const {
  std::lock_guard lock(mu_);
  return options_.sample_every == 0 ? 1 : options_.sample_every;
}

std::string SpanTracer::chrome_trace_json() const {
  const auto spans = completed();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const auto& span : spans) {
    for (std::size_t h = 0; h < kSpanHops; ++h) {
      const std::int64_t ts = span.ts_us[h];
      const std::int64_t dur =
          h + 1 < kSpanHops ? span.ts_us[h + 1] - span.ts_us[h] : 0;
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"name\":\"%s\",\"cat\":\"saad\",\"ph\":\"X\",\"pid\":1,"
          "\"tid\":%" PRIu64 ",\"ts\":%" PRId64 ",\"dur\":%" PRId64
          ",\"args\":{\"batch\":%" PRIu64 ",\"synopses\":%" PRIu64
          ",\"position\":%" PRIu64 "}}",
          first ? "" : ",", kHopNames[h], span.id, ts, dur, span.batch_index,
          span.synopses, span.position);
      out += buf;
      first = false;
    }
  }
  out += "]}";
  return out;
}

bool SpanTracer::write_chrome_trace(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << chrome_trace_json() << "\n";
  return static_cast<bool>(file);
}

}  // namespace saad::obs
