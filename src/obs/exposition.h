// Exposition surfaces for the self-telemetry registry:
//
//  * render_prometheus(): Prometheus text format v0.0.4 — # HELP / # TYPE
//    per family, `name{label="value"} value` samples, histograms as the
//    conventional cumulative `_bucket{le=...}` + `_sum` + `_count` triple.
//    HELP text escapes `\` and newline; label values escape `\`, `"` and
//    newline, exactly as the format specifies.
//  * render_json(): a schema-versioned JSON snapshot of the same data,
//    embeddable into detection reports (see core/report_json.h):
//    {"schema_version":1,"families":[{"name":...,"type":...,"help":...,
//     "series":[{"labels":{...},"value":N}|{...,"count":N,"sum":N,
//     "buckets":[{"le":...,"count":N},...]}]}]}
//
// Both render from MetricsRegistry::snapshot(), so a scrape never blocks a
// hot-path increment for longer than the registry's registration mutex.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace saad::obs {

inline constexpr int kTelemetrySchemaVersion = 1;

std::string render_prometheus(const MetricsRegistry& registry);
std::string render_json(const MetricsRegistry& registry);

/// Writes render_prometheus(registry) to `path` (truncating). False on I/O
/// failure.
bool write_prometheus_file(const MetricsRegistry& registry,
                           const std::string& path);

}  // namespace saad::obs
