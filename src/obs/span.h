// Sampled end-to-end pipeline spans (Dapper-style, deterministic 1-in-N):
// a synopsis batch picked at ingest-decode is stamped at each hop it takes
// through the live serving pipeline —
//
//   ingest-decode -> channel-publish -> dequeue -> window-assign
//                 -> window-close -> verdict-emit
//
// — giving per-hop latency attribution for the exact path a synopsis travels
// from the wire to a verdict, without timing every batch.
//
// Sampling is deterministic: batch `i` (a lifetime 0-based index assigned at
// decode) is sampled iff i % sample_every == seed % sample_every, so the
// same seed and rate always pick the same batches — the property the
// determinism test pins (with an injected clock, two runs export
// byte-identical Chrome trace JSON).
//
// Hop-matching model: the decode and publish stamps are applied by the
// producer (server I/O) thread, which knows the batch it is handling and
// passes the span token along. Downstream, batches lose their identity in
// the channel, so the consumer-side hooks stamp by *stream position*: the
// server's publishes are FIFO through one channel producer, so the span for
// a batch published at cumulative position P gets its dequeue / assign /
// close / emit stamps the first time the consumer's cumulative count reaches
// P with the prior hop already stamped. Positions are in published-synopsis
// coordinates, so overload sheds (which happen before publish) never skew
// downstream matching — a shed sampled batch is abandoned and counted.
//
// Cost model: every hook self-gates on one relaxed atomic load when tracing
// is disabled (the default — `detect` and in-process tests never pay more
// than that). Enabled, hooks take a mutex per *batch* (not per synopsis);
// at the default 1-in-64 rate the open-span list is almost always empty or
// tiny. Completed spans land in a bounded ring (oldest evicted, counted) and
// export as Chrome trace-event JSON (Perfetto-loadable) via the admin
// plane's /spans and `serve --trace-out=`.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace saad::obs {

enum class SpanHop : std::uint8_t {
  kIngestDecode = 0,
  kChannelPublish = 1,
  kDequeue = 2,
  kWindowAssign = 3,
  kWindowClose = 4,
  kVerdictEmit = 5,
};
inline constexpr std::size_t kSpanHops = 6;
const char* to_string(SpanHop hop);

struct PipelineSpan {
  std::uint64_t id = 0;           // 1-based sampled-span sequence
  std::uint64_t batch_index = 0;  // lifetime batch number at decode
  std::uint64_t synopses = 0;     // synopses the batch carried
  std::uint64_t position = 0;     // cumulative published synopses incl. batch
  std::int64_t ts_us[kSpanHops] = {};  // stamp per hop; 0 = never reached
};

/// Registers every saad_span_* family (hop histograms, totals, gauges) so
/// snapshots expose them zero-valued even before tracing is enabled.
void register_span_metrics();

class SpanTracer {
 public:
  struct Options {
    /// Sample one batch in this many (1 = every batch).
    std::uint64_t sample_every = 64;
    /// Phase within the 1-in-N cycle; same seed + rate => same batches.
    std::uint64_t seed = 0;
    /// Completed spans retained for /spans and --trace-out.
    std::size_t ring_capacity = 1024;
    /// Spans still waiting for downstream hops; beyond this the oldest is
    /// abandoned (bounds memory if the pipeline stalls mid-stream).
    std::size_t max_open = 256;
    /// Injectable time source (us); defaults to the steady clock. Tests
    /// script it to make exports byte-reproducible.
    std::function<std::int64_t()> clock;
  };

  SpanTracer();  // constructed disabled
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Process-wide tracer the serving pipeline stamps into (leaked, like the
  /// global metrics registry). Disabled until enable() is called, so every
  /// non-serving path pays one relaxed load per hook.
  static SpanTracer& global();

  void enable(Options options);
  void disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // ---- Producer-side hooks (server I/O thread) -----------------------------

  /// A batch of `synopses` decoded off the wire. Returns a span token to
  /// carry alongside the batch: 0 = not sampled, otherwise the span id.
  std::uint64_t on_batch_decoded(std::uint64_t synopses);

  /// The token's batch is about to be published into the channel at
  /// cumulative published position `position` (total synopses published
  /// through and including this batch). Call with token 0 allowed (no-op).
  void on_published(std::uint64_t token, std::uint64_t position);

  /// The token's batch was shed before publish; its span is abandoned.
  void on_shed(std::uint64_t token);

  // ---- Consumer-side hooks (analyzer loop thread) --------------------------
  // Each stamps every open span whose position <= `cumulative` and whose
  // previous hop is already stamped. `cumulative` counts synopses the
  // consumer has drained (same coordinates as the publish position).

  void on_dequeued(std::uint64_t cumulative);
  void on_assigned(std::uint64_t cumulative);
  void on_window_close(std::uint64_t cumulative);
  void on_verdict_emit(std::uint64_t cumulative);

  // ---- Export --------------------------------------------------------------

  /// Completed spans, oldest first (at most ring_capacity).
  std::vector<PipelineSpan> completed() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}) of the completed
  /// spans: one "X" (complete) event per hop, ts/dur in microseconds,
  /// tid = span id. Loadable in Perfetto / chrome://tracing.
  std::string chrome_trace_json() const;

  /// Writes chrome_trace_json() to `path` (truncating). False on I/O error.
  bool write_chrome_trace(const std::string& path) const;

  std::uint64_t batches() const;    // batches seen at decode since enable()
  std::uint64_t sampled() const;    // spans started
  std::uint64_t completed_count() const;
  std::uint64_t abandoned() const;  // shed or open-overflowed spans
  std::uint64_t sample_every() const;

  /// Drops all state and counters (not the registered metric families).
  /// Tests only; enable() also resets.
  void reset();

 private:
  struct Open {
    PipelineSpan span;
    bool published = false;  // publish position known
  };

  void stamp_from(std::uint64_t cumulative, SpanHop hop);
  void complete_locked(PipelineSpan&& span);
  std::int64_t now() const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  Options options_;
  // Lock-free fast paths for the hot hooks: the lifetime batch counter is an
  // atomic so unsampled batches (the 63-in-64 case) never take the mutex in
  // on_batch_decoded, and the consumer hooks skip it entirely while no span
  // is open. Both are written under mu_ where consistency matters
  // (enable/reset, open-list mutation) and read relaxed on the hot path —
  // the channel's own synchronization orders a span's insertion before the
  // consumer can see the synopses it describes.
  std::atomic<std::uint64_t> batch_index_{0};  // next batch's index
  std::atomic<std::size_t> open_count_{0};     // == open_.size()
  std::uint64_t next_id_ = 1;
  std::uint64_t sampled_ = 0;
  std::uint64_t completed_total_ = 0;
  std::uint64_t abandoned_ = 0;
  std::vector<Open> open_;            // decode order
  std::vector<PipelineSpan> ring_;    // completed, ring-indexed by count
};

}  // namespace saad::obs
