// Pipeline flight recorder: a bounded ring buffer of recent, rare pipeline
// events (window open/close, corrupt-block skips, torn tails, model reloads,
// mode changes, worker lifecycle). Unlike metrics — aggregates with no
// ordering — the recorder answers "what just happened, in what order?" for
// post-mortems: dump it on demand (dump_text()) or automatically on a fatal
// signal (install_crash_handler()).
//
// Cost model: record() formats the detail string up front (snprintf into a
// fixed in-event buffer, no allocation) and takes a mutex for the ring slot.
// That is deliberately NOT a hot-path structure: events are per-window /
// per-incident, orders of magnitude rarer than per-synopsis metrics. The
// ring keeps the newest `capacity` events; older ones are overwritten and
// only the lifetime count remembers them.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace saad::obs {

enum class EventKind : std::uint8_t {
  kWindowOpen,
  kWindowClose,
  kShardStall,
  kCorruptBlock,
  kTornTail,
  kModelReload,
  kModeChange,
  kWorkerStart,
  kWorkerStop,
  kIoError,
  kCustom,
};
const char* to_string(EventKind kind);

class FlightRecorder {
 public:
  /// Room for "cassandra: skipped corrupt block 12345 (67890 bytes)"-sized
  /// details; longer messages are truncated, never allocated.
  static constexpr std::size_t kDetailBytes = 104;

  struct Event {
    std::uint64_t seq = 0;      // 1-based lifetime sequence number
    std::uint64_t wall_us = 0;  // wall clock at record(), us since epoch
    EventKind kind = EventKind::kCustom;
    char detail[kDetailBytes] = {};
  };

  explicit FlightRecorder(std::size_t capacity = 1024);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Process-wide recorder the pipeline records into (leaked, like the
  /// global metrics registry, so static users stay valid through exit).
  static FlightRecorder& global();

  /// printf-style detail; truncated to kDetailBytes - 1.
  void record(EventKind kind, const char* format, ...)
      __attribute__((format(printf, 3, 4)));

  /// Retained events, oldest first.
  std::vector<Event> dump() const;

  /// One line per retained event: "#seq +0.123456s kind: detail" (time is
  /// relative to the first retained event).
  std::string dump_text() const;

  /// Best-effort dump for crash context: no locks, no allocation, writes
  /// directly to `fd` with write(2). Torn concurrent records may render
  /// partially — acceptable in a signal handler.
  void dump_to_fd(int fd) const noexcept;

  /// Drops retained events; the lifetime count and sequence numbers keep
  /// counting, so post-clear events are still globally ordered.
  void clear();
  std::uint64_t recorded() const;  // lifetime count, including overwritten
  std::size_t capacity() const { return ring_.size(); }

 private:
  mutable std::mutex mu_;
  std::vector<Event> ring_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t first_retained_ = 1;  // advanced by clear()
};

/// Installs fatal-signal handlers (SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT)
/// that dump FlightRecorder::global() to stderr before re-raising with the
/// default action. Idempotent; call once from main().
void install_crash_handler();

}  // namespace saad::obs
