#include "stats/tests.h"

#include <algorithm>
#include <cmath>

#include "stats/special.h"

namespace saad::stats {

namespace {

ProportionTestResult exact_binomial(std::uint64_t successes, std::uint64_t n,
                                    double p0, double alpha) {
  ProportionTestResult r;
  r.p_value = binomial_upper_tail(successes, n, std::clamp(p0, 0.0, 1.0));
  r.statistic = static_cast<double>(successes);
  r.reject = r.p_value < alpha;
  return r;
}

}  // namespace

ProportionTestResult proportion_above(std::uint64_t successes, std::uint64_t n,
                                      double p0, double alpha,
                                      ProportionTestKind kind,
                                      std::uint64_t min_n) {
  ProportionTestResult r;
  if (n == 0) return r;
  const double phat = static_cast<double>(successes) / static_cast<double>(n);
  if (phat <= p0) return r;  // cannot reject "p <= p0" from below

  // p0 == 0 is categorical (any outlier contradicts H0); the t statistic's
  // standard error does not capture that, so use the exact tail.
  if (kind == ProportionTestKind::kExactBinomial || p0 <= 0.0 || n < min_n ||
      successes == 0 || successes == n) {
    return exact_binomial(successes, n, p0, alpha);
  }

  const double se =
      std::sqrt(phat * (1.0 - phat) / static_cast<double>(n));
  if (se <= 0.0) return exact_binomial(successes, n, p0, alpha);

  const double stat = (phat - p0) / se;
  r.statistic = stat;
  if (kind == ProportionTestKind::kTTest) {
    r.p_value = 1.0 - student_t_cdf(stat, static_cast<double>(n - 1));
  } else {
    r.p_value = 0.5 * std::erfc(stat / std::sqrt(2.0));
  }
  r.reject = r.p_value < alpha;
  return r;
}

}  // namespace saad::stats
