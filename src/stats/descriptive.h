// Descriptive statistics: streaming mean/variance (Welford) and exact
// percentiles over sample vectors. The SAAD training pass is deliberately
// limited to "counting and computing percentiles" (paper §4.2); this is that
// machinery.
#pragma once

#include <cstdint>
#include <vector>

namespace saad::stats {

/// Numerically stable streaming mean / variance.
class Welford {
 public:
  void add(double x);
  void merge(const Welford& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Exact percentile of a sample (nearest-rank with linear interpolation).
/// `q` in [0,1]. Sorts a copy; use percentile_sorted when already sorted.
/// Empty input returns quiet NaN (see percentile_sorted).
double percentile(std::vector<double> samples, double q);

/// Same, but requires `sorted` to be ascending. An empty sample has no
/// percentile: returns quiet NaN as an explicit sentinel — callers must
/// check std::isnan/std::isfinite rather than receive a silent 0.0 (which a
/// duration-threshold caller would read as "every task is an outlier").
double percentile_sorted(const std::vector<double>& sorted, double q);

}  // namespace saad::stats
