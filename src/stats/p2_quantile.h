// P² (piecewise-parabolic) streaming quantile estimator — Jain & Chlamtac,
// CACM 1985.
//
// Extension beyond the paper: SAAD's training buffers every synopsis in
// memory to compute exact per-signature duration percentiles (§4.2 reports
// up to 500 MB of buffering). P² tracks a quantile in O(1) memory (five
// markers), so the model can be trained fully streaming; the
// `ablation_tests` bench and the unit tests quantify the estimate's error
// against the exact percentile.
#pragma once

#include <cstdint>

namespace saad::stats {

class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.99 for the paper's performance threshold.
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate; exact until five samples have been seen.
  double value() const;

  std::uint64_t count() const { return count_; }

 private:
  double parabolic(int i, double d) const;
  double linear(int i, double d) const;

  double q_;
  std::uint64_t count_ = 0;
  double heights_[5] = {0, 0, 0, 0, 0};     // marker heights
  double positions_[5] = {1, 2, 3, 4, 5};   // actual marker positions
  double desired_[5] = {0, 0, 0, 0, 0};     // desired marker positions
  double increments_[5] = {0, 0, 0, 0, 0};  // desired-position increments
};

}  // namespace saad::stats
