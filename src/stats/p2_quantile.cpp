#include "stats/p2_quantile.h"

#include <algorithm>
#include <cassert>

namespace saad::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  assert(q > 0.0 && q < 1.0);
  desired_[0] = 1;
  desired_[1] = 1 + 2 * q;
  desired_[2] = 1 + 4 * q;
  desired_[3] = 3 + 2 * q;
  desired_[4] = 5;
  increments_[0] = 0;
  increments_[1] = q / 2;
  increments_[2] = q;
  increments_[3] = (1 + q) / 2;
  increments_[4] = 1;
}

double P2Quantile::parabolic(int i, double d) const {
  return heights_[i] +
         d / (positions_[i + 1] - positions_[i - 1]) *
             ((positions_[i] - positions_[i - 1] + d) *
                  (heights_[i + 1] - heights_[i]) /
                  (positions_[i + 1] - positions_[i]) +
              (positions_[i + 1] - positions_[i] - d) *
                  (heights_[i] - heights_[i - 1]) /
                  (positions_[i] - positions_[i - 1]));
}

double P2Quantile::linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    count_++;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }

  // Find the cell k containing x; clamp the extremes.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x < heights_[1]) {
    k = 0;
  } else if (x < heights_[2]) {
    k = 1;
  } else if (x < heights_[3]) {
    k = 2;
  } else if (x <= heights_[4]) {
    k = 3;
  } else {
    heights_[4] = x;
    k = 3;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust the three middle markers.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1 && positions_[i + 1] - positions_[i] > 1) ||
        (d <= -1 && positions_[i - 1] - positions_[i] < -1)) {
      const double step = d >= 0 ? 1.0 : -1.0;
      double candidate = parabolic(i, step);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = linear(i, step);
      }
      positions_[i] += step;
    }
  }
  count_++;
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact on the tiny sample: nearest-rank on a sorted copy.
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const auto rank = static_cast<std::uint64_t>(
        q_ * static_cast<double>(count_ - 1) + 0.5);
    return sorted[std::min<std::uint64_t>(rank, count_ - 1)];
  }
  return heights_[2];
}

}  // namespace saad::stats
