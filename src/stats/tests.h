// Hypothesis tests used by the SAAD analyzer (paper §3.3.3): one-sided,
// one-sample tests of H0 "observed outlier proportion <= training proportion"
// at significance level alpha = 0.001.
#pragma once

#include <cstdint>

namespace saad::stats {

/// Paper default significance level.
inline constexpr double kDefaultAlpha = 0.001;

enum class ProportionTestKind {
  kTTest,          // paper's choice: t statistic with df = n-1
  kZTest,          // normal approximation
  kExactBinomial,  // exact binomial upper tail under H0 p = p0
};

struct ProportionTestResult {
  bool reject = false;   // H0 rejected -> proportion significantly ABOVE p0
  double p_value = 1.0;  // one-sided
  double statistic = 0.0;
};

/// One-sided test of H0: p <= p0 against H1: p > p0, given `successes` out of
/// `n` trials. For kTTest / kZTest the statistic uses the sample proportion's
/// standard error sqrt(phat (1-phat) / n); degenerate cases (phat in {0,1},
/// n < min_n) fall back to the exact binomial tail so tiny windows cannot
/// produce spurious rejections.
ProportionTestResult proportion_above(
    std::uint64_t successes, std::uint64_t n, double p0,
    double alpha = kDefaultAlpha,
    ProportionTestKind kind = ProportionTestKind::kTTest,
    std::uint64_t min_n = 20);

}  // namespace saad::stats
