#include "stats/special.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace saad::stats {

namespace {

/// std::lgamma writes the process-global `signgam`, which is a data race
/// when the analyzer pool runs t-tests on several worker threads at once.
/// All our arguments are positive (gamma > 0), so the sign output is
/// irrelevant — use the reentrant lgamma_r where available.
double lgamma_threadsafe(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

/// Continued fraction for the incomplete beta function (modified Lentz).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  assert(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_bt = lgamma_threadsafe(a + b) - lgamma_threadsafe(a) -
                       lgamma_threadsafe(b) + a * std::log(x) +
                       b * std::log1p(-x);
  const double bt = std::exp(ln_bt);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return bt * betacf(a, b, x) / a;
  }
  return 1.0 - bt * betacf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double df) {
  assert(df > 0.0);
  if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
  const double x = df / (df + t * t);
  const double p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double binomial_upper_tail(std::uint64_t k, std::uint64_t n, double p) {
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;

  if (n > 100000) {
    // Normal approximation with continuity correction.
    const double mu = static_cast<double>(n) * p;
    const double sd = std::sqrt(static_cast<double>(n) * p * (1.0 - p));
    const double z = (static_cast<double>(k) - 0.5 - mu) / sd;
    return 0.5 * std::erfc(z / std::sqrt(2.0));
  }

  // Exact: sum pmf from k..n in log space.
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  double tail = 0.0;
  for (std::uint64_t i = k; i <= n; ++i) {
    const double log_pmf =
        lgamma_threadsafe(static_cast<double>(n) + 1.0) -
        lgamma_threadsafe(static_cast<double>(i) + 1.0) -
        lgamma_threadsafe(static_cast<double>(n - i) + 1.0) +
        static_cast<double>(i) * log_p + static_cast<double>(n - i) * log_q;
    tail += std::exp(log_pmf);
    if (std::exp(log_pmf) < 1e-18 && i > k) break;  // negligible remainder
  }
  return std::min(tail, 1.0);
}

}  // namespace saad::stats
