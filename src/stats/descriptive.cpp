#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace saad::stats {

void Welford::add(double x) {
  n_++;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Welford::merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
}

double Welford::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, q);
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  // No sample, no percentile: NaN is unmistakable at the call site, where
  // a silent 0.0 would become a threshold that flags everything.
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace saad::stats
