// k-fold cross-validation splitter used by the analyzer's stability filter
// (paper §3.3.2): signatures whose duration distribution cannot support a
// meaningful 99th-percentile threshold are discarded for performance-outlier
// detection.
#pragma once

#include <cstddef>
#include <vector>

namespace saad::stats {

/// Deterministically partitions indices [0, n) into k contiguous blocks.
/// Contiguous (time-ordered) blocks on purpose: for i.i.d. samples a trained
/// quantile generalizes to any held-out subset, so only *nonstationary*
/// duration distributions (drift, load regimes, periodic spikes) fail the
/// check — and those are exactly the flows the paper's filter must discard,
/// because no single threshold is meaningful for them.
std::vector<std::vector<std::size_t>> kfold_indices(std::size_t n,
                                                    std::size_t k);

struct KFoldStability {
  /// Mean held-out fraction of samples above the per-fold trained threshold.
  double mean_heldout_outlier_rate = 0.0;
  /// True when the signature supports the nominal quantile: held-out rate is
  /// no more than `unstable_factor` times the nominal tail mass.
  bool stable = true;
};

/// For each fold: train a `quantile` threshold on the other k-1 folds, count
/// the fraction of held-out samples strictly above it; average over folds.
/// With fewer than `k` samples (or k < 2) the check degenerates and the
/// signature is reported unstable (too little data to threshold).
KFoldStability kfold_quantile_stability(const std::vector<double>& samples,
                                        std::size_t k, double quantile,
                                        double unstable_factor);

}  // namespace saad::stats
