// Special functions needed for the analyzer's hypothesis tests:
// regularized incomplete beta -> Student-t CDF, and binomial tails.
// Implementations follow the continued-fraction expansion of Numerical
// Recipes (Lentz's method), re-derived from the published formulas.
#pragma once

#include <cstdint>

namespace saad::stats {

/// Regularized incomplete beta function I_x(a, b), a,b > 0, x in [0,1].
double incomplete_beta(double a, double b, double x);

/// CDF of Student's t distribution with `df` degrees of freedom.
double student_t_cdf(double t, double df);

/// Upper-tail probability P(X >= k) for X ~ Binomial(n, p).
/// Exact summation for small n, normal approximation above `n > 100000`.
double binomial_upper_tail(std::uint64_t k, std::uint64_t n, double p);

}  // namespace saad::stats
