#include "stats/kfold.h"

#include <algorithm>

#include "stats/descriptive.h"

namespace saad::stats {

std::vector<std::vector<std::size_t>> kfold_indices(std::size_t n,
                                                    std::size_t k) {
  const std::size_t num_folds = std::max<std::size_t>(k, 1);
  std::vector<std::vector<std::size_t>> folds(num_folds);
  for (std::size_t f = 0; f < num_folds; ++f) {
    const std::size_t begin = f * n / num_folds;
    const std::size_t end = (f + 1) * n / num_folds;
    folds[f].reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) folds[f].push_back(i);
  }
  return folds;
}

KFoldStability kfold_quantile_stability(const std::vector<double>& samples,
                                        std::size_t k, double quantile,
                                        double unstable_factor) {
  KFoldStability out;
  if (k < 2 || samples.size() < k) {
    out.stable = false;
    out.mean_heldout_outlier_rate = 1.0;
    return out;
  }
  const auto folds = kfold_indices(samples.size(), k);
  double rate_sum = 0.0;
  for (std::size_t f = 0; f < folds.size(); ++f) {
    std::vector<double> train;
    train.reserve(samples.size());
    for (std::size_t g = 0; g < folds.size(); ++g) {
      if (g == f) continue;
      for (auto idx : folds[g]) train.push_back(samples[idx]);
    }
    std::sort(train.begin(), train.end());
    const double threshold = percentile_sorted(train, quantile);
    std::size_t above = 0;
    for (auto idx : folds[f])
      if (samples[idx] > threshold) ++above;
    rate_sum +=
        static_cast<double>(above) / static_cast<double>(folds[f].size());
  }
  out.mean_heldout_outlier_rate = rate_sum / static_cast<double>(folds.size());
  const double nominal = 1.0 - quantile;
  out.stable = out.mean_heldout_outlier_rate <= unstable_factor * nominal;
  return out;
}

}  // namespace saad::stats
