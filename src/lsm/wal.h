// Write-ahead log (Cassandra calls it CommitLog): every update is appended
// and synced before it is acknowledged; entries are trimmed once the
// corresponding MemTable is flushed (paper §5.1).
#pragma once

#include <cstdint>

#include "sim/resource.h"

namespace saad::lsm {

class Wal {
 public:
  Wal(sim::Disk* disk, UsTime append_service)
      : disk_(disk), append_service_(append_service) {}

  /// Append + sync one entry of `bytes` payload. ok=false when the write
  /// I/O was error-faulted (Activity::kWalAppend).
  sim::Task<sim::IoResult> append(std::size_t bytes);

  /// Trim entries persisted by a completed MemTable flush.
  void trim(std::uint64_t bytes);

  std::uint64_t pending_bytes() const { return pending_bytes_; }
  std::uint64_t appended_entries() const { return appended_entries_; }
  std::uint64_t failed_appends() const { return failed_appends_; }

 private:
  sim::Disk* disk_;
  UsTime append_service_;
  std::uint64_t pending_bytes_ = 0;
  std::uint64_t appended_entries_ = 0;
  std::uint64_t failed_appends_ = 0;
};

}  // namespace saad::lsm
