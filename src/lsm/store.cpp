#include "lsm/store.h"

#include <algorithm>

namespace saad::lsm {

LsmStore::LsmStore(sim::Engine* engine, sim::Disk* disk,
                   const LsmOptions& options)
    : engine_(engine), disk_(disk), options_(options),
      wal_(disk, options.wal_append_service),
      active_(std::make_unique<MemTable>()) {}

sim::Task<sim::IoResult> LsmStore::wal_append(std::size_t bytes) {
  return wal_.append(bytes);
}

sim::Task<bool> LsmStore::bulk_io(faults::Activity activity,
                                  std::size_t bytes) {
  const std::size_t chunk = std::max<std::size_t>(options_.io_chunk_bytes, 1);
  const UsTime chunk_service = static_cast<UsTime>(
      options_.flush_service_per_kb *
      static_cast<UsTime>(std::max<std::size_t>(chunk / 1024, 1)));
  std::size_t remaining = std::max<std::size_t>(bytes, 1);
  while (remaining > 0) {
    const auto io = co_await disk_->io(activity, chunk_service);
    if (!io.ok) co_return false;
    remaining -= std::min(remaining, chunk);
  }
  co_return true;
}

bool LsmStore::apply(const std::string& key, std::string value) {
  return active_->put(key, std::move(value));
}

void LsmStore::preload(std::map<std::string, std::string> entries) {
  if (entries.empty()) return;
  sstables_.push_back(
      std::make_shared<SSTable>(next_sstable_id_++, std::move(entries)));
}

bool LsmStore::needs_flush() const {
  return active_->bytes() >= options_.memtable_flush_bytes &&
         !flush_in_progress_ && engine_->now() >= flush_backoff_until_;
}

sim::Task<bool> LsmStore::flush() {
  if (flush_in_progress_) co_return false;
  flush_in_progress_ = true;

  // Retry a previously failed flush first; otherwise rotate the active table.
  if (frozen_.empty()) {
    if (active_->empty()) {
      flush_in_progress_ = false;
      co_return true;  // nothing to do
    }
    active_->freeze();
    frozen_.push_back(std::move(active_));
    active_ = std::make_unique<MemTable>();
  }

  MemTable& victim = *frozen_.front();
  const std::size_t bytes = victim.bytes();
  if (!co_await bulk_io(faults::Activity::kMemtableFlush, bytes)) {
    // Frozen table stays buffered: memory pressure until a retry succeeds.
    flushes_failed_++;
    flush_backoff_until_ = engine_->now() + options_.flush_retry_backoff;
    flush_in_progress_ = false;
    co_return false;
  }

  sstables_.push_back(std::make_shared<SSTable>(
      next_sstable_id_++,
      std::map<std::string, std::string>(victim.contents().begin(),
                                         victim.contents().end())));
  frozen_.erase(frozen_.begin());
  wal_.trim(bytes);
  flushes_completed_++;
  flush_in_progress_ = false;
  co_return true;
}

bool LsmStore::needs_major_compaction() const {
  return sstables_.size() >= options_.major_compaction_tables &&
         !compaction_in_progress_;
}

sim::Task<bool> LsmStore::major_compact() {
  if (compaction_in_progress_ || sstables_.size() < 2) co_return false;
  compaction_in_progress_ = true;

  // Snapshot the current set; flushes may append new tables concurrently and
  // the snapshot keeps the inputs alive across awaits.
  const std::vector<std::shared_ptr<SSTable>> inputs = sstables_;
  for (const auto& table : inputs) {
    if (!co_await bulk_io(faults::Activity::kDiskRead, table->bytes())) {
      compaction_in_progress_ = false;
      co_return false;
    }
  }

  std::vector<const SSTable*> newest_first;
  for (std::size_t i = inputs.size(); i-- > 0;)
    newest_first.push_back(inputs[i].get());
  SSTable merged = SSTable::merge(next_sstable_id_++, newest_first);

  // Compaction output is a "write to SSTable": the same activity class the
  // paper's MemTable-flush faults target (Table 3), which is why those
  // faults also surface in the CompactionManager stage (Fig. 9b).
  if (!co_await bulk_io(faults::Activity::kMemtableFlush, merged.bytes())) {
    compaction_in_progress_ = false;
    co_return false;
  }

  sstables_.erase(sstables_.begin(),
                  sstables_.begin() + static_cast<std::ptrdiff_t>(inputs.size()));
  sstables_.insert(sstables_.begin(),
                   std::make_shared<SSTable>(std::move(merged)));
  compactions_completed_++;
  compaction_in_progress_ = false;
  co_return true;
}

sim::Task<LsmStore::GetResult> LsmStore::get(std::string key) {
  GetResult result;
  if (auto v = active_->get(key)) {
    result.value = std::move(v);
    co_return result;
  }
  for (auto it = frozen_.rbegin(); it != frozen_.rend(); ++it) {
    if (auto v = (*it)->get(key)) {
      result.value = std::move(v);
      co_return result;
    }
  }
  // Snapshot: compaction may replace the set while this reader awaits disk
  // probes; the snapshot pins the tables it is reading (open file handles).
  const std::vector<std::shared_ptr<SSTable>> snapshot = sstables_;
  for (std::size_t i = snapshot.size(); i-- > 0;) {
    const auto io = co_await disk_->io(faults::Activity::kDiskRead,
                                       options_.sstable_probe_service);
    result.sstables_probed++;
    if (!io.ok) co_return result;
    if (auto v = snapshot[i]->get(key)) {
      result.value = std::move(v);
      co_return result;
    }
  }
  co_return result;
}

std::size_t LsmStore::unflushed_bytes() const {
  std::size_t total = active_->bytes();
  for (const auto& m : frozen_) total += m->bytes();
  return total;
}

}  // namespace saad::lsm
