#include "lsm/sstable.h"

#include <algorithm>

namespace saad::lsm {

SSTable::SSTable(std::uint64_t id, std::map<std::string, std::string> entries)
    : id_(id) {
  data_.reserve(entries.size());
  for (auto& [k, v] : entries) {
    bytes_ += k.size() + v.size();
    data_.emplace_back(k, std::move(v));
  }
}

std::optional<std::string> SSTable::get(const std::string& key) const {
  const auto it = std::lower_bound(
      data_.begin(), data_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it == data_.end() || it->first != key) return std::nullopt;
  return it->second;
}

SSTable SSTable::merge(std::uint64_t new_id,
                       const std::vector<const SSTable*>& newest_first) {
  std::map<std::string, std::string> merged;
  // Insert newest first; try_emplace keeps the first (newest) value.
  for (const SSTable* table : newest_first) {
    for (const auto& [k, v] : table->data()) merged.try_emplace(k, v);
  }
  return SSTable(new_id, std::move(merged));
}

}  // namespace saad::lsm
