// Log-structured merge store: the shared storage engine of the simulated
// Cassandra and HBase nodes (paper §5.1). Pure mechanism — the *staged*
// behaviour (who flushes, what gets logged, how failures propagate to other
// tasks) lives in the system simulators, which is exactly where SAAD's
// signals come from.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lsm/memtable.h"
#include "lsm/sstable.h"
#include "lsm/wal.h"
#include "sim/resource.h"

namespace saad::lsm {

struct LsmOptions {
  std::size_t memtable_flush_bytes = 64 * 1024;  // flush trigger
  std::size_t major_compaction_tables = 4;       // SSTable count trigger
  UsTime wal_append_service = 250;               // us, base append+sync
  UsTime flush_service_per_kb = 150;             // us per KiB written
  UsTime sstable_probe_service = 350;            // us per SSTable probed
  UsTime flush_retry_backoff = sec(5);           // after a failed flush
  /// Bulk I/O (flush, compaction) is issued in requests of this size so the
  /// I/O scheduler can interleave foreground reads/appends — without this a
  /// multi-MB compaction would head-of-line-block the disk for hundreds of
  /// milliseconds, which real kernels do not allow.
  std::size_t io_chunk_bytes = 16 * 1024;
};

class LsmStore {
 public:
  LsmStore(sim::Engine* engine, sim::Disk* disk, const LsmOptions& options);

  // ---- Mutation path (callers own logging & locking) --------------------

  /// Append the mutation to the WAL. ok=false on an error-faulted write.
  sim::Task<sim::IoResult> wal_append(std::size_t bytes);

  /// Apply to the active MemTable; false when it is frozen.
  bool apply(const std::string& key, std::string value);

  bool memtable_frozen() const { return active_->frozen(); }

  /// True when the active MemTable is over the flush threshold, no flush is
  /// running, and the store is not backing off after a failed flush (failed
  /// attempts would otherwise retrigger at the write rate).
  bool needs_flush() const;

  // ---- Flush (minor compaction) -----------------------------------------

  /// Freeze the active MemTable (installing a fresh one) and write the
  /// frozen table to disk as an SSTable; on success the WAL is trimmed.
  /// On an error-faulted write the frozen table stays buffered in memory
  /// (memory pressure!) and the next flush() call retries it.
  /// Only one flush runs at a time; concurrent calls return false fast.
  sim::Task<bool> flush();

  bool flush_in_progress() const { return flush_in_progress_; }

  // ---- Major compaction ---------------------------------------------------

  bool needs_major_compaction() const;

  /// Read every SSTable, merge, write the result as one new SSTable.
  sim::Task<bool> major_compact();

  // ---- Read path ----------------------------------------------------------

  struct GetResult {
    std::optional<std::string> value;
    std::size_t sstables_probed = 0;  // disk probes charged
  };

  /// MemTables first (free), then SSTables newest-first, charging one disk
  /// probe per SSTable consulted.
  sim::Task<GetResult> get(std::string key);

  // ---- Bootstrap -------------------------------------------------------------

  /// Install a baseline dataset as one SSTable, bypassing simulated I/O —
  /// the equivalent of starting the node from a restored snapshot (the
  /// paper initializes Cassandra with a baseline data set before measuring).
  void preload(std::map<std::string, std::string> entries);

  // ---- Fault semantics ------------------------------------------------------

  /// Permanently freeze the active MemTable *without* installing a fresh one:
  /// the frozen-MemTable wedge of the paper's WAL-error experiment (§5.4.1).
  /// Every subsequent apply() fails and memtable_frozen() stays true.
  void wedge_active() { active_->freeze(); }

  // ---- Introspection ------------------------------------------------------

  Wal& wal() { return wal_; }
  std::size_t active_bytes() const { return active_->bytes(); }
  /// Active + frozen-but-unflushed bytes: the memory-pressure signal the
  /// GCInspector stage watches.
  std::size_t unflushed_bytes() const;
  std::size_t num_sstables() const { return sstables_.size(); }
  std::size_t frozen_backlog() const { return frozen_.size(); }
  std::uint64_t flushes_completed() const { return flushes_completed_; }
  std::uint64_t flushes_failed() const { return flushes_failed_; }
  std::uint64_t compactions_completed() const { return compactions_completed_; }

 private:
  /// Issue `bytes` of bulk I/O as a sequence of io_chunk_bytes requests;
  /// false as soon as a chunk is error-faulted.
  sim::Task<bool> bulk_io(faults::Activity activity, std::size_t bytes);

  sim::Engine* engine_;
  sim::Disk* disk_;
  LsmOptions options_;
  Wal wal_;
  std::unique_ptr<MemTable> active_;
  std::vector<std::unique_ptr<MemTable>> frozen_;  // oldest first
  // shared_ptr: in-flight readers and the compactor hold snapshots across
  // awaits, like real readers holding open file handles while files are
  // unlinked. Oldest first.
  std::vector<std::shared_ptr<SSTable>> sstables_;
  std::uint64_t next_sstable_id_ = 1;
  UsTime flush_backoff_until_ = 0;
  bool flush_in_progress_ = false;
  bool compaction_in_progress_ = false;
  std::uint64_t flushes_completed_ = 0;
  std::uint64_t flushes_failed_ = 0;
  std::uint64_t compactions_completed_ = 0;
};

}  // namespace saad::lsm
