// In-memory sorted write buffer (paper §5.1 "Storage Layout of HBase and
// Cassandra"): writes land in a MemTable; when it grows past a threshold it
// is frozen and flushed to disk as an SSTable.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace saad::lsm {

class MemTable {
 public:
  /// Inserts/overwrites; returns false when the table is frozen (a frozen
  /// MemTable is immutable — "another thread must be flushing it").
  bool put(const std::string& key, std::string value);

  std::optional<std::string> get(const std::string& key) const;

  /// Freezes the table for flushing; idempotent.
  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  std::size_t entries() const { return data_.size(); }
  std::size_t bytes() const { return bytes_; }
  bool empty() const { return data_.empty(); }

  const std::map<std::string, std::string>& contents() const { return data_; }

 private:
  std::map<std::string, std::string> data_;
  std::size_t bytes_ = 0;
  bool frozen_ = false;
};

}  // namespace saad::lsm
