#include "lsm/wal.h"

#include <algorithm>

namespace saad::lsm {

sim::Task<sim::IoResult> Wal::append(std::size_t bytes) {
  // Service time scales mildly with payload: a sync dominates, so use the
  // base cost plus a small per-byte term.
  const UsTime service =
      append_service_ + static_cast<UsTime>(bytes / 64);
  sim::IoResult result =
      co_await disk_->io(faults::Activity::kWalAppend, service);
  if (result.ok) {
    pending_bytes_ += bytes;
    appended_entries_++;
  } else {
    failed_appends_++;
  }
  co_return result;
}

void Wal::trim(std::uint64_t bytes) {
  pending_bytes_ -= std::min(pending_bytes_, bytes);
}

}  // namespace saad::lsm
