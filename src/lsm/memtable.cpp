#include "lsm/memtable.h"

namespace saad::lsm {

bool MemTable::put(const std::string& key, std::string value) {
  if (frozen_) return false;
  auto [it, inserted] = data_.try_emplace(key, std::move(value));
  if (inserted) {
    bytes_ += key.size() + it->second.size();
  } else {
    bytes_ -= it->second.size();
    it->second = std::move(value);
    bytes_ += it->second.size();
  }
  return true;
}

std::optional<std::string> MemTable::get(const std::string& key) const {
  const auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

}  // namespace saad::lsm
