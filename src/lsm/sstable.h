// Immutable sorted on-disk table. The simulated filesystem holds SSTables as
// in-memory objects; their *I/O cost* is charged through sim::Disk by the
// LsmStore operations that create and read them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace saad::lsm {

class SSTable {
 public:
  SSTable(std::uint64_t id, std::map<std::string, std::string> entries);

  std::uint64_t id() const { return id_; }
  std::size_t entries() const { return data_.size(); }
  std::size_t bytes() const { return bytes_; }

  std::optional<std::string> get(const std::string& key) const;

  /// Merge-sort several tables into one (newest value wins). `newest_first`
  /// must be ordered newest to oldest — major compaction's merge step.
  static SSTable merge(std::uint64_t new_id,
                       const std::vector<const SSTable*>& newest_first);

  const std::vector<std::pair<std::string, std::string>>& data() const {
    return data_;
  }

 private:
  std::uint64_t id_;
  std::vector<std::pair<std::string, std::string>> data_;  // sorted by key
  std::size_t bytes_ = 0;
};

}  // namespace saad::lsm
