// MiniHDFS: a simulated HDFS 1.0-style DataNode cluster with the staged
// architecture of the paper's motivating example (§2, Fig. 2-4) and the
// HBase/HDFS evaluation (§5.5, Fig. 10b).
//
// Stages per DataNode:
//  * DataXceiver      — dispatcher-worker; one task per block operation.
//    Write flow logs the paper's L1..L5 points: "Receiving block blk_",
//    "Receiving one packet" (per packet -> frequency in the synopsis),
//    rare "Receiving empty packet" branch (L3, ~0.1%), "WriteTo blockfile",
//    "Closing down".
//  * PacketResponder  — acks persisted packets back upstream (Fig. 2's P).
//  * Listener/Reader/Handler — the DN's IPC server plumbing (heartbeats,
//    block reports, recovery RPCs).
//  * RecoverBlocks    — block recovery; a second recovery request for a
//    block already in recovery is answered "already in recovery", which the
//    HBase client misreads (the premature-recovery-termination bug).
//  * DataTransfer     — replica copy during recovery.
//
// Blocks are written through a replication pipeline of `replication`
// DataNodes connected by packet queues, exactly Fig. 2's topology.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/monitor.h"
#include "sim/oneshot.h"
#include "sim/queue.h"
#include "systems/host.h"
#include "workload/ycsb.h"

namespace saad::systems {

struct HdfsOptions {
  int data_nodes = 4;
  int replication = 3;
  UsTime network_latency = 250;        // per packet hop
  UsTime packet_service = 150;         // us disk write per packet
  std::size_t packet_bytes = 16 * 1024;
  std::size_t max_packets_per_block = 32;  // event-count guard
  double empty_packet_chance = 0.01;  // Fig. 4's 0.1% L3 branch
  UsTime heartbeat_period = sec(3);    // drives the IPC server stages
  UsTime rpc_cpu = 50;
  /// Disk time for each of the two replica-copy reads during block
  /// recovery. Recovering a WAL block copies real data: baseline recovery is
  /// ~0.8 s, and disk hogs stretch it past an impatient client's retry
  /// budget (the §5.5 bug).
  UsTime recovery_copy_service = ms(500);
  UsTime pipeline_timeout = sec(2);      // writer gives up on the pipeline
};

struct HdfsStages {
  core::StageId data_xceiver, packet_responder, handler, listener, reader,
      recover_blocks, data_transfer;
};

struct HdfsLogPoints {
  // DataXceiver write flow (the paper's L1..L5) and read flow.
  core::LogPointId dx_recv_block, dx_recv_packet, dx_empty_packet, dx_write,
      dx_close;
  core::LogPointId dx_read_op, dx_sent_block;
  // PacketResponder.
  core::LogPointId pr_start, pr_ack, pr_done;
  // IPC plumbing.
  core::LogPointId li_accept, rd_parse, h_call, h_done;
  // Recovery.
  core::LogPointId rb_start, rb_already, rb_done;
  core::LogPointId dt_start, dt_done;
};

class MiniHdfs {
 public:
  enum class RecoverResult { kOk, kAlreadyInRecovery, kFailed };

  MiniHdfs(sim::Engine* engine, core::LogRegistry* registry,
           core::Monitor* monitor, core::LogSink* sink, core::Level threshold,
           const faults::FaultPlane* plane, const HdfsOptions& options,
           std::uint64_t seed);

  /// Launch per-DataNode IPC daemons. Call once.
  void start();

  /// Write `bytes` as one block through a `replication`-long DN pipeline.
  /// ok=false when the pipeline failed or timed out.
  sim::Task<bool> write_block(std::uint64_t block_id, std::size_t bytes);

  /// Read a block from its primary replica.
  sim::Task<bool> read_block(std::uint64_t block_id, std::size_t bytes);

  /// Ask the block's primary DN to recover it (the HBase WAL-recovery RPC).
  /// `client_timeout` is the caller's patience: a recovery still running at
  /// the deadline returns kFailed to the caller while the DN keeps going —
  /// the precondition of the premature-recovery-termination bug.
  sim::Task<RecoverResult> recover_block(std::uint64_t block_id,
                                         UsTime client_timeout = 0);

  const HdfsStages& stages() const { return stages_; }
  const HdfsLogPoints& points() const { return lp_; }
  const HdfsOptions& options() const { return options_; }

  int pipeline_node(std::uint64_t block_id, int position) const;
  std::uint64_t blocks_written() const { return blocks_written_; }
  std::uint64_t recoveries_started() const { return recoveries_started_; }
  std::uint64_t recovery_rejections() const { return recovery_rejections_; }

 private:
  struct Packet {
    std::uint32_t seq = 0;
    bool last = false;
    bool empty = false;
  };

  struct RpcRequest {
    enum class Kind { kHeartbeat, kRecover };
    Kind kind = Kind::kHeartbeat;
    std::uint64_t block_id = 0;
    std::shared_ptr<sim::OneShot> done;
    // Shared: the caller may time out and die before the recovery finishes.
    std::shared_ptr<RecoverResult> result;
  };

  struct DataNode {
    explicit DataNode(int index) : index(index) {}
    int index;
    std::unique_ptr<Host> host;
    std::unique_ptr<sim::SimQueue<RpcRequest>> rpc_queue;
    std::map<std::uint64_t, bool> recovering;  // block -> in recovery
    std::set<std::uint64_t> recovered;         // completed recoveries
  };

  sim::Process xceiver_write(DataNode& dn, std::uint64_t block_id,
                             std::shared_ptr<sim::SimQueue<Packet>> in,
                             std::shared_ptr<sim::SimQueue<Packet>> out,
                             std::shared_ptr<sim::OneShot> persisted);
  sim::Process responder(DataNode& dn, std::uint64_t block_id,
                         std::shared_ptr<sim::OneShot> my_persisted,
                         std::shared_ptr<sim::OneShot> downstream_acked,
                         std::shared_ptr<sim::OneShot> ack_upstream);
  sim::Process rpc_server(DataNode& dn);
  sim::Process heartbeat_daemon(DataNode& dn);
  sim::Process recovery_task(DataNode& dn, std::uint64_t block_id,
                             std::shared_ptr<sim::OneShot> done,
                             std::shared_ptr<RecoverResult> result);
  sim::Process transfer_task(DataNode& dn,
                             std::shared_ptr<sim::OneShot> done);

  sim::Engine* engine_;
  core::LogRegistry* registry_;
  const faults::FaultPlane* plane_;
  HdfsOptions options_;
  HdfsStages stages_{};
  HdfsLogPoints lp_{};
  Rng rng_;
  std::unique_ptr<sim::Network> network_;
  std::vector<std::unique_ptr<DataNode>> nodes_;
  std::uint64_t blocks_written_ = 0;
  std::uint64_t recoveries_started_ = 0;
  std::uint64_t recovery_rejections_ = 0;
  bool started_ = false;
};

}  // namespace saad::systems
