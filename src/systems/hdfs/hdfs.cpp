#include "systems/hdfs/hdfs.h"

#include <algorithm>
#include <cassert>

#include "core/stage_marker.h"

namespace saad::systems {

MiniHdfs::MiniHdfs(sim::Engine* engine, core::LogRegistry* registry,
                   core::Monitor* monitor, core::LogSink* sink,
                   core::Level threshold, const faults::FaultPlane* plane,
                   const HdfsOptions& options, std::uint64_t seed)
    : engine_(engine), registry_(registry), plane_(plane), options_(options),
      rng_(seed) {
  network_ = std::make_unique<sim::Network>(engine, plane, rng_.split(),
                                            options.network_latency);
  auto& reg = *registry_;
  stages_.data_xceiver = reg.register_stage("DataXceiver");
  stages_.packet_responder = reg.register_stage("PacketResponder");
  stages_.handler = reg.register_stage("Handler");
  stages_.listener = reg.register_stage("Listener");
  stages_.reader = reg.register_stage("Reader");
  stages_.recover_blocks = reg.register_stage("RecoverBlocks");
  stages_.data_transfer = reg.register_stage("DataTransfer");

  using L = core::Level;
  auto lp = [&](core::StageId s, L level, const char* text) {
    return reg.register_log_point(s, level, text, "hdfs.cc");
  };
  lp_.dx_recv_block =
      lp(stages_.data_xceiver, L::kDebug, "Receiving block blk_%");  // L1
  lp_.dx_recv_packet = lp(stages_.data_xceiver, L::kDebug,
                          "Receiving one packet for block blk_%");  // L2
  lp_.dx_empty_packet = lp(stages_.data_xceiver, L::kDebug,
                           "Receiving empty packet for block blk_%");  // L3
  lp_.dx_write =
      lp(stages_.data_xceiver, L::kDebug, "WriteTo blockfile of size %");  // L4
  lp_.dx_close = lp(stages_.data_xceiver, L::kDebug, "Closing down.");  // L5
  lp_.dx_read_op =
      lp(stages_.data_xceiver, L::kDebug, "opReadBlock blk_% received");
  lp_.dx_sent_block =
      lp(stages_.data_xceiver, L::kDebug, "Sent block blk_% to client");
  lp_.pr_start = lp(stages_.packet_responder, L::kDebug,
                    "PacketResponder blk_% initializing");
  lp_.pr_ack = lp(stages_.packet_responder, L::kDebug,
                  "PacketResponder blk_% acking packets");
  lp_.pr_done = lp(stages_.packet_responder, L::kDebug,
                   "PacketResponder blk_% terminating");
  lp_.li_accept =
      lp(stages_.listener, L::kDebug, "Listener accepted connection from %");
  lp_.rd_parse =
      lp(stages_.reader, L::kDebug, "Reader parsed RPC request of size %");
  lp_.h_call = lp(stages_.handler, L::kDebug, "IPC Handler: invoking call %");
  lp_.h_done = lp(stages_.handler, L::kDebug, "IPC Handler: responding to %");
  lp_.rb_start =
      lp(stages_.recover_blocks, L::kInfo, "Client calls recoverBlock(blk_%)");
  lp_.rb_already = lp(stages_.recover_blocks, L::kInfo,
                      "blk_% is already in recovery; rejecting request");
  lp_.rb_done =
      lp(stages_.recover_blocks, L::kInfo, "Recovery for blk_% complete");
  lp_.dt_start = lp(stages_.data_transfer, L::kDebug,
                    "Starting replica transfer for blk_%");
  lp_.dt_done = lp(stages_.data_transfer, L::kDebug,
                   "Replica transfer for blk_% complete");

  nodes_.reserve(options_.data_nodes);
  for (int i = 0; i < options_.data_nodes; ++i) {
    auto dn = std::make_unique<DataNode>(i);
    core::TaskExecutionTracker* tracker =
        monitor ? &monitor->tracker(static_cast<core::HostId>(i)) : nullptr;
    dn->host = std::make_unique<Host>(engine_, plane_, registry_, sink,
                                      threshold, tracker,
                                      static_cast<core::HostId>(i),
                                      rng_.split());
    dn->rpc_queue = std::make_unique<sim::SimQueue<RpcRequest>>(engine_);
    nodes_.push_back(std::move(dn));
  }
}

void MiniHdfs::start() {
  assert(!started_);
  started_ = true;
  for (auto& dn : nodes_) {
    dn->host->run_disk_hog_service();
    rpc_server(*dn);
    heartbeat_daemon(*dn);
  }
}

int MiniHdfs::pipeline_node(std::uint64_t block_id, int position) const {
  return static_cast<int>((block_id + static_cast<std::uint64_t>(position)) %
                          nodes_.size());
}

sim::Task<bool> MiniHdfs::write_block(std::uint64_t block_id,
                                      std::size_t bytes) {
  const int repl = std::min<int>(options_.replication,
                                 static_cast<int>(nodes_.size()));
  const std::size_t packets = std::clamp<std::size_t>(
      bytes / options_.packet_bytes, 1, options_.max_packets_per_block);

  // Build the pipeline: queues between hops, per-DN persisted/acked signals.
  std::vector<std::shared_ptr<sim::SimQueue<Packet>>> hops;
  std::vector<std::shared_ptr<sim::OneShot>> persisted, acked;
  for (int i = 0; i < repl; ++i) {
    hops.push_back(std::make_shared<sim::SimQueue<Packet>>(engine_));
    persisted.push_back(sim::OneShot::create(engine_));
    acked.push_back(sim::OneShot::create(engine_));
  }
  for (int i = 0; i < repl; ++i) {
    DataNode& dn = *nodes_[pipeline_node(block_id, i)];
    auto out = (i + 1 < repl) ? hops[i + 1] : nullptr;
    xceiver_write(dn, block_id, hops[i], out, persisted[i]);
    auto downstream = (i + 1 < repl) ? acked[i + 1] : nullptr;
    responder(dn, block_id, persisted[i], downstream, acked[i]);
  }

  // Stream the packets into the head of the pipeline.
  Rng rng = rng_.split();
  for (std::size_t seq = 0; seq < packets; ++seq) {
    co_await engine_->delay(options_.network_latency);
    Packet pkt;
    pkt.seq = static_cast<std::uint32_t>(seq);
    pkt.last = (seq + 1 == packets);
    pkt.empty = rng.chance(options_.empty_packet_chance);
    hops[0]->push(pkt);
  }

  const bool ok = co_await acked[0]->wait(options_.pipeline_timeout);
  if (ok) blocks_written_++;
  co_return ok;
}

sim::Process MiniHdfs::xceiver_write(
    DataNode& dn, std::uint64_t block_id,
    std::shared_ptr<sim::SimQueue<Packet>> in,
    std::shared_ptr<sim::SimQueue<Packet>> out,
    std::shared_ptr<sim::OneShot> persisted) {
  auto task = dn.host->begin(stages_.data_xceiver);
  task.log(lp_.dx_recv_block,
           [&] { return "Receiving block blk_" + std::to_string(block_id); });
  for (;;) {
    SAAD_STAGE("DataXceiver");
    const Packet pkt = co_await in->pop();
    task.log(lp_.dx_recv_packet, [&] {
      return "Receiving one packet for block blk_" + std::to_string(block_id);
    });
    if (pkt.empty) {
      task.log(lp_.dx_empty_packet, [&] {
        return "Receiving empty packet for block blk_" +
               std::to_string(block_id);
      });
      if (out) {
        co_await network_->transfer(static_cast<std::uint16_t>(dn.index));
        out->push(pkt);
      }
      if (pkt.last) break;
      continue;
    }
    const auto io = co_await dn.host->disk().io(faults::Activity::kDiskWrite,
                                                options_.packet_service);
    if (!io.ok) co_return;  // premature termination: no dx_close
    task.log(lp_.dx_write, [&] {
      return "WriteTo blockfile of size " +
             std::to_string(options_.packet_bytes);
    });
    if (out) {
      co_await network_->transfer(static_cast<std::uint16_t>(dn.index));
      out->push(pkt);
    }
    if (pkt.last) break;
  }
  persisted->fulfill();
  task.log(lp_.dx_close, "Closing down.");
}

sim::Process MiniHdfs::responder(DataNode& dn, std::uint64_t block_id,
                                 std::shared_ptr<sim::OneShot> my_persisted,
                                 std::shared_ptr<sim::OneShot> downstream_acked,
                                 std::shared_ptr<sim::OneShot> ack_upstream) {
  auto task = dn.host->begin(stages_.packet_responder);
  task.log(lp_.pr_start, [&] {
    return "PacketResponder blk_" + std::to_string(block_id) + " initializing";
  });
  if (downstream_acked != nullptr) {
    if (!co_await downstream_acked->wait(options_.pipeline_timeout)) {
      co_return;  // premature: downstream never acked
    }
  }
  if (!co_await my_persisted->wait(options_.pipeline_timeout)) {
    co_return;  // premature: local write never finished
  }
  task.log(lp_.pr_ack, [&] {
    return "PacketResponder blk_" + std::to_string(block_id) +
           " acking packets";
  });
  co_await network_->transfer(static_cast<std::uint16_t>(dn.index));
  ack_upstream->fulfill();
  task.log(lp_.pr_done, [&] {
    return "PacketResponder blk_" + std::to_string(block_id) + " terminating";
  });
}

sim::Task<bool> MiniHdfs::read_block(std::uint64_t block_id,
                                     std::size_t bytes) {
  DataNode& dn = *nodes_[pipeline_node(block_id, 0)];
  const std::size_t packets = std::clamp<std::size_t>(
      bytes / options_.packet_bytes, 1, options_.max_packets_per_block);
  auto task = dn.host->begin(stages_.data_xceiver);
  task.log(lp_.dx_read_op, [&] {
    return "opReadBlock blk_" + std::to_string(block_id) + " received";
  });
  for (std::size_t i = 0; i < packets; ++i) {
    const auto io = co_await dn.host->disk().io(faults::Activity::kDiskRead,
                                                options_.packet_service);
    if (!io.ok) co_return false;  // premature: no dx_sent_block
  }
  co_await network_->transfer(static_cast<std::uint16_t>(dn.index));
  task.log(lp_.dx_sent_block, [&] {
    return "Sent block blk_" + std::to_string(block_id) + " to client";
  });
  co_return true;
}

sim::Task<MiniHdfs::RecoverResult> MiniHdfs::recover_block(
    std::uint64_t block_id, UsTime client_timeout) {
  DataNode& dn = *nodes_[pipeline_node(block_id, 0)];
  RpcRequest req;
  req.kind = RpcRequest::Kind::kRecover;
  req.block_id = block_id;
  req.done = sim::OneShot::create(engine_);
  req.result = std::make_shared<RecoverResult>(RecoverResult::kFailed);
  auto done = req.done;
  auto result = req.result;
  co_await network_->transfer(static_cast<std::uint16_t>(dn.index));
  dn.rpc_queue->push(std::move(req));
  const UsTime patience =
      client_timeout > 0 ? client_timeout : options_.pipeline_timeout;
  if (!co_await done->wait(patience)) {
    co_return RecoverResult::kFailed;  // the DN keeps recovering regardless
  }
  co_return *result;
}

sim::Process MiniHdfs::rpc_server(DataNode& dn) {
  for (;;) {
    SAAD_STAGE("Listener");
    RpcRequest req = co_await dn.rpc_queue->pop();
    {
      auto task = dn.host->begin(stages_.listener);
      task.log(lp_.li_accept, "Listener accepted connection");
      co_await dn.host->compute(options_.rpc_cpu);
    }
    {
      auto task = dn.host->begin(stages_.reader);
      task.log(lp_.rd_parse, "Reader parsed RPC request");
      co_await dn.host->compute(options_.rpc_cpu);
    }
    {
      auto task = dn.host->begin(stages_.handler);
      task.log(lp_.h_call, "IPC Handler: invoking call");
      co_await dn.host->compute(options_.rpc_cpu * 2);
      task.log(lp_.h_done, "IPC Handler: responding");
    }
    if (req.kind == RpcRequest::Kind::kRecover) {
      recovery_task(dn, req.block_id, req.done, req.result);
    } else if (req.done) {
      req.done->fulfill();
    }
  }
}

sim::Process MiniHdfs::heartbeat_daemon(DataNode& dn) {
  for (;;) {
    co_await engine_->delay(options_.heartbeat_period);
    RpcRequest req;
    req.kind = RpcRequest::Kind::kHeartbeat;
    dn.rpc_queue->push(std::move(req));
  }
}

sim::Process MiniHdfs::recovery_task(DataNode& dn, std::uint64_t block_id,
                                     std::shared_ptr<sim::OneShot> done,
                                     std::shared_ptr<RecoverResult> result) {
  auto task = dn.host->begin(stages_.recover_blocks);
  task.log(lp_.rb_start, [&] {
    return "Client calls recoverBlock(blk_" + std::to_string(block_id) + ")";
  });
  recoveries_started_++;
  if (dn.recovered.contains(block_id)) {
    // Already recovered: confirm immediately (finalized replicas).
    task.log(lp_.rb_done, [&] {
      return "Recovery for blk_" + std::to_string(block_id) + " complete";
    });
    *result = RecoverResult::kOk;
    done->fulfill();
    co_return;
  }
  if (dn.recovering[block_id]) {
    // The bug's trigger: answered politely, misread by the HBase client.
    recovery_rejections_++;
    task.log(lp_.rb_already, [&] {
      return "blk_" + std::to_string(block_id) +
             " is already in recovery; rejecting request";
    });
    *result = RecoverResult::kAlreadyInRecovery;
    done->fulfill();
    co_return;
  }
  dn.recovering[block_id] = true;

  // Re-replicate from the next pipeline node: DataTransfer there, disk reads
  // here — recovery time inherits any disk hog on either host.
  DataNode& peer = *nodes_[pipeline_node(block_id, 1)];
  auto transfer_done = sim::OneShot::create(engine_);
  transfer_task(peer, transfer_done);
  const auto io = co_await dn.host->disk().io(faults::Activity::kDiskRead,
                                              options_.recovery_copy_service);
  (void)io;
  co_await transfer_done->wait(options_.pipeline_timeout * 4);
  task.log(lp_.rb_done, [&] {
    return "Recovery for blk_" + std::to_string(block_id) + " complete";
  });
  dn.recovering[block_id] = false;
  dn.recovered.insert(block_id);
  *result = RecoverResult::kOk;
  done->fulfill();
}

sim::Process MiniHdfs::transfer_task(DataNode& dn,
                                     std::shared_ptr<sim::OneShot> done) {
  auto task = dn.host->begin(stages_.data_transfer);
  task.log(lp_.dt_start, "Starting replica transfer");
  const auto io = co_await dn.host->disk().io(faults::Activity::kDiskRead,
                                              options_.recovery_copy_service);
  (void)io;
  co_await network_->transfer(static_cast<std::uint16_t>(dn.index));
  task.log(lp_.dt_done, "Replica transfer complete");
  done->fulfill();
}

}  // namespace saad::systems
