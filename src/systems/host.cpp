// host.h is header-only; this TU anchors the library target.
#include "systems/host.h"
