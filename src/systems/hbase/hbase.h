// MiniHBase: simulated HBase 0.92-style Regionservers running on MiniHdfs
// (paper §5.5, Fig. 10a). Each Regionserver is co-located with the DataNode
// of the same host id, exactly like the paper's testbed — so one SAAD
// tracker per host observes both.
//
// Stages per Regionserver:
//  * Listener / Connection     — RPC plumbing (periodic accept/read tasks).
//  * Call                      — RPC decode; distinct put/get flows (the
//    medium-intensity fault isolates slowed 'get' calls in this stage).
//  * Handler                   — executes puts/gets; also the 'log sync'
//    group-commit tasks that flush WAL edits to HDFS.
//  * DataStreamer / ResponseProcessor — the embedded HDFS client: stream
//    WAL-sync and MemStore-flush blocks into the DataNode pipeline, process
//    acks, and on ack timeout start WAL block recovery.
//  * LogRoller, SplitLogWorker, CompactionChecker, CompactionRequest,
//    OpenRegionHandler, PostOpenDeployTasksThread.
//
// The premature-recovery-termination bug (§5.5, high-intensity fault-1):
// when a DataNode is slow, a WAL sync ack times out and the Regionserver
// asks the DN to recover the WAL block. The DN's recovery is slow; the
// Regionserver's next request is answered "already in recovery", which it
// misreads as an exception and retries until its retry budget is exhausted —
// then it aborts. Surviving Regionservers split its logs and reopen its
// regions (the cluster-wide flow-outlier surge of Fig. 10).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lsm/memtable.h"
#include "systems/hdfs/hdfs.h"
#include "workload/ycsb.h"

namespace saad::systems {

struct HBaseOptions {
  int regionservers = 4;
  int regions = 16;
  std::size_t memstore_flush_bytes = 64 * 1024;
  int hfile_compact_threshold = 4;

  UsTime call_cpu = 50;
  UsTime handler_cpu = 70;
  UsTime sync_interval = ms(5);            // WAL group commit
  std::size_t wal_sync_bytes = 16 * 1024;  // one pipeline packet
  UsTime flusher_period = sec(1);
  UsTime compaction_check_period = sec(10);
  UsTime log_roll_period = sec(30);
  UsTime split_check_period = sec(5);
  UsTime connection_period = ms(500);

  /// ResponseProcessor ack patience before starting WAL recovery.
  UsTime ack_timeout = ms(900);
  /// Client-side patience per recoverBlock RPC (shorter than a slow DN's
  /// recovery — the bug's precondition).
  UsTime recover_rpc_timeout = ms(150);
  UsTime recovery_retry_delay = ms(650);
  int crash_recovery_retries = 4;
};

struct HBaseStages {
  core::StageId call, handler, open_region, post_open, log_roller,
      split_log_worker, compaction_checker, compaction_request, data_streamer,
      response_processor, listener, connection;
};

struct HBaseLogPoints {
  core::LogPointId li_accept, conn_read;
  core::LogPointId call_put, call_get, call_done;
  core::LogPointId h_put_start, h_edit, h_put_done;
  core::LogPointId h_sync_start, h_sync_done;  // the 'log sync' tasks
  core::LogPointId h_get_start, h_get_mem, h_get_hfile, h_get_done;
  core::LogPointId ds_stream, ds_flush_block, ds_done;
  core::LogPointId rp_ack, rp_timeout, rp_retry;
  core::LogPointId lr_roll_start, lr_roll_done;
  core::LogPointId slw_check, slw_acquire, slw_split, slw_done;
  core::LogPointId cc_check, cc_due, cc_major;
  core::LogPointId cr_start, cr_major, cr_done;
  core::LogPointId orh_open, orh_done, pod_start, pod_done;
  core::LogPointId rs_abort;
};

class MiniHBase : public workload::KvService {
 public:
  MiniHBase(sim::Engine* engine, core::LogRegistry* registry,
            core::Monitor* monitor, core::LogSink* sink, core::Level threshold,
            const faults::FaultPlane* plane, MiniHdfs* hdfs,
            const HBaseOptions& options, std::uint64_t seed);
  ~MiniHBase() override;

  void start();

  /// Baseline dataset (keys "user0".."user<n-1>"), bypassing simulated I/O.
  void preload(std::uint64_t keys, std::size_t value_bytes);

  sim::Task<bool> put(std::string key, std::string value) override;
  sim::Task<std::optional<std::string>> get(std::string key) override;

  /// Force a major compaction on every Regionserver at the next check — the
  /// legitimate-but-rare activity behind the paper's ~min-150 false positive.
  void trigger_major_compaction();

  const HBaseStages& stages() const { return stages_; }
  const HBaseLogPoints& points() const { return lp_; }

  int num_regionservers() const { return static_cast<int>(servers_.size()); }
  bool rs_crashed(int rs) const { return servers_[rs]->crashed; }
  std::uint64_t recoveries_attempted() const { return recoveries_attempted_; }
  std::uint64_t regions_reassigned() const { return regions_reassigned_; }

 private:
  struct RegionServer {
    explicit RegionServer(int index) : index(index) {}
    int index;
    std::unique_ptr<Host> host;
    lsm::MemTable memstore;
    std::map<std::string, std::string> flushed;  // data persisted in HFiles
    std::vector<std::uint64_t> hfile_blocks;     // oldest first
    std::vector<std::shared_ptr<sim::OneShot>> sync_waiters;
    std::uint64_t wal_block = 0;
    std::uint64_t next_block_seq = 1;
    int pending_split_work = 0;
    bool major_compaction_due = false;
    bool recovering = false;
    bool crashed = false;
    bool flush_in_progress = false;
  };

  int region_of(const std::string& key) const;
  RegionServer& owner_of(const std::string& key);
  std::uint64_t new_block_id(RegionServer& rs);
  void crash_rs(RegionServer& rs);

  sim::Process connection_daemon(RegionServer& rs);
  sim::Process sync_daemon(RegionServer& rs);
  sim::Process flusher_daemon(RegionServer& rs);
  sim::Process compaction_daemon(RegionServer& rs);
  sim::Process log_roller_daemon(RegionServer& rs);
  sim::Process split_log_daemon(RegionServer& rs);
  sim::Process recovery_loop(RegionServer& rs);
  sim::Process open_region_task(RegionServer& rs, int region);
  sim::Task<void> run_compaction(RegionServer& rs, bool major);

  sim::Engine* engine_;
  core::LogRegistry* registry_;
  const faults::FaultPlane* plane_;
  MiniHdfs* hdfs_;
  HBaseOptions options_;
  HBaseStages stages_{};
  HBaseLogPoints lp_{};
  Rng rng_;
  std::vector<std::unique_ptr<RegionServer>> servers_;
  std::vector<int> region_owner_;
  std::uint64_t recoveries_attempted_ = 0;
  std::uint64_t regions_reassigned_ = 0;
  bool started_ = false;
};

}  // namespace saad::systems
