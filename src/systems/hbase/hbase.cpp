#include "systems/hbase/hbase.h"

#include <cassert>

namespace saad::systems {

namespace {
std::uint64_t key_hash(const std::string& key) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

MiniHBase::MiniHBase(sim::Engine* engine, core::LogRegistry* registry,
                     core::Monitor* monitor, core::LogSink* sink,
                     core::Level threshold, const faults::FaultPlane* plane,
                     MiniHdfs* hdfs, const HBaseOptions& options,
                     std::uint64_t seed)
    : engine_(engine), registry_(registry), plane_(plane), hdfs_(hdfs),
      options_(options), rng_(seed) {
  auto& reg = *registry_;
  stages_.call = reg.register_stage("Call");
  stages_.handler = reg.register_stage("HBaseHandler");
  stages_.open_region = reg.register_stage("OpenRegionHandler");
  stages_.post_open = reg.register_stage("PostOpenDeployTasksThread");
  stages_.log_roller = reg.register_stage("LogRoller");
  stages_.split_log_worker = reg.register_stage("SplitLogWorker");
  stages_.compaction_checker = reg.register_stage("CompactionChecker");
  stages_.compaction_request = reg.register_stage("CompactionRequest");
  stages_.data_streamer = reg.register_stage("DataStreamer");
  stages_.response_processor = reg.register_stage("ResponseProcessor");
  stages_.listener = reg.register_stage("HBaseListener");
  stages_.connection = reg.register_stage("Connection");

  using L = core::Level;
  auto lp = [&](core::StageId s, L level, const char* text) {
    return reg.register_log_point(s, level, text, "hbase.cc");
  };
  lp_.li_accept = lp(stages_.listener, L::kDebug,
                     "Listener: accepted connection from %");
  lp_.conn_read = lp(stages_.connection, L::kDebug,
                     "Connection: read RPC bytes from %");
  lp_.call_put = lp(stages_.call, L::kDebug, "Call: multi put for region %");
  lp_.call_get = lp(stages_.call, L::kDebug, "Call: get for region %");
  lp_.call_done = lp(stages_.call, L::kDebug, "Call: queued for handler");
  lp_.h_put_start =
      lp(stages_.handler, L::kDebug, "Handler: applying put to region %");
  lp_.h_edit = lp(stages_.handler, L::kDebug,
                  "Handler: appended edit to memstore, % bytes");
  lp_.h_put_done = lp(stages_.handler, L::kDebug, "Handler: put durable");
  lp_.h_sync_start =
      lp(stages_.handler, L::kDebug, "Handler: log sync of % edits");
  lp_.h_sync_done = lp(stages_.handler, L::kDebug, "Handler: log sync done");
  lp_.h_get_start =
      lp(stages_.handler, L::kDebug, "Handler: get on region %");
  lp_.h_get_mem =
      lp(stages_.handler, L::kDebug, "Handler: memstore hit for %");
  lp_.h_get_hfile =
      lp(stages_.handler, L::kDebug, "Handler: reading HFile block for %");
  lp_.h_get_done = lp(stages_.handler, L::kDebug, "Handler: get complete");
  lp_.ds_stream = lp(stages_.data_streamer, L::kDebug,
                     "DataStreamer: streaming packet for block blk_%");
  lp_.ds_flush_block = lp(stages_.data_streamer, L::kInfo,
                          "DataStreamer: writing flushed HFile block blk_%");
  lp_.ds_done =
      lp(stages_.data_streamer, L::kDebug, "DataStreamer: stream closed");
  lp_.rp_ack = lp(stages_.response_processor, L::kDebug,
                  "ResponseProcessor: ack for block blk_%");
  lp_.rp_timeout = lp(stages_.response_processor, L::kWarn,
                      "ResponseProcessor: ack timeout for block blk_%");
  lp_.rp_retry = lp(stages_.response_processor, L::kWarn,
                    "Retrying recovery for block blk_% after exception");
  lp_.lr_roll_start =
      lp(stages_.log_roller, L::kInfo, "LogRoller: rolling hlog, % entries");
  lp_.lr_roll_done = lp(stages_.log_roller, L::kInfo, "LogRoller: roll done");
  lp_.slw_check = lp(stages_.split_log_worker, L::kDebug,
                     "SplitLogWorker: checking for log-split work");
  lp_.slw_acquire = lp(stages_.split_log_worker, L::kInfo,
                       "SplitLogWorker: acquired split task for %");
  lp_.slw_split = lp(stages_.split_log_worker, L::kInfo,
                     "SplitLogWorker: splitting hlog of dead server %");
  lp_.slw_done =
      lp(stages_.split_log_worker, L::kInfo, "SplitLogWorker: split done");
  lp_.cc_check = lp(stages_.compaction_checker, L::kDebug,
                    "CompactionChecker: region % store files checked");
  lp_.cc_due = lp(stages_.compaction_checker, L::kInfo,
                  "CompactionChecker: compaction requested for %");
  lp_.cc_major = lp(stages_.compaction_checker, L::kInfo,
                    "CompactionChecker: MAJOR compaction due for %");
  lp_.cr_start = lp(stages_.compaction_request, L::kInfo,
                    "CompactionRequest: starting compaction of % files");
  lp_.cr_major = lp(stages_.compaction_request, L::kInfo,
                    "CompactionRequest: major compaction of all store files");
  lp_.cr_done = lp(stages_.compaction_request, L::kInfo,
                   "CompactionRequest: completed, new file size %");
  lp_.orh_open = lp(stages_.open_region, L::kInfo,
                    "OpenRegionHandler: opening region %");
  lp_.orh_done = lp(stages_.open_region, L::kInfo,
                    "OpenRegionHandler: region % online");
  lp_.pod_start = lp(stages_.post_open, L::kDebug,
                     "PostOpenDeployTasks: updating meta for region %");
  lp_.pod_done = lp(stages_.post_open, L::kDebug,
                    "PostOpenDeployTasks: done for region %");
  lp_.rs_abort = lp(stages_.handler, L::kError,
                    "ABORTING region server %: WAL recovery retries exceeded");

  servers_.reserve(options_.regionservers);
  for (int i = 0; i < options_.regionservers; ++i) {
    auto rs = std::make_unique<RegionServer>(i);
    core::TaskExecutionTracker* tracker =
        monitor ? &monitor->tracker(static_cast<core::HostId>(i)) : nullptr;
    rs->host = std::make_unique<Host>(engine_, plane_, registry_, sink,
                                      threshold, tracker,
                                      static_cast<core::HostId>(i),
                                      rng_.split());
    rs->wal_block = new_block_id(*rs);
    servers_.push_back(std::move(rs));
  }
  region_owner_.resize(options_.regions);
  for (int r = 0; r < options_.regions; ++r)
    region_owner_[r] = r % options_.regionservers;
}

MiniHBase::~MiniHBase() = default;

void MiniHBase::start() {
  assert(!started_);
  started_ = true;
  for (auto& rs : servers_) {
    connection_daemon(*rs);
    sync_daemon(*rs);
    flusher_daemon(*rs);
    compaction_daemon(*rs);
    log_roller_daemon(*rs);
    split_log_daemon(*rs);
  }
}

void MiniHBase::preload(std::uint64_t keys, std::size_t value_bytes) {
  for (std::uint64_t k = 0; k < keys; ++k) {
    const std::string key = "user" + std::to_string(k);
    RegionServer& rs = *servers_[region_owner_[region_of(key)]];
    rs.flushed[key] = std::string(value_bytes, 'v');
  }
  for (auto& rs : servers_) {
    if (!rs->flushed.empty()) rs->hfile_blocks.push_back(new_block_id(*rs));
  }
}

int MiniHBase::region_of(const std::string& key) const {
  return static_cast<int>(key_hash(key) %
                          static_cast<std::uint64_t>(options_.regions));
}

MiniHBase::RegionServer& MiniHBase::owner_of(const std::string& key) {
  return *servers_[region_owner_[region_of(key)]];
}

std::uint64_t MiniHBase::new_block_id(RegionServer& rs) {
  // Block ids are congruent to the RS index mod the DN count, so a
  // Regionserver's blocks land on its co-located DataNode first — HBase's
  // write locality, and the reason RS i's WAL recovery shows up in
  // RecoverBlocks on DataNode i (Fig. 10b).
  const std::uint64_t seq = rs.next_block_seq++;
  return seq * static_cast<std::uint64_t>(options_.regionservers) +
         static_cast<std::uint64_t>(rs.index);
}

sim::Task<bool> MiniHBase::put(std::string key, std::string value) {
  RegionServer& rs = owner_of(key);
  if (rs.crashed) co_return false;
  {
    auto call = rs.host->begin(stages_.call);
    call.log(lp_.call_put, [&] {
      return "Call: multi put for region " + std::to_string(region_of(key));
    });
    co_await rs.host->compute(options_.call_cpu);
    call.log(lp_.call_done, "Call: queued for handler");
  }
  auto task = rs.host->begin(stages_.handler);
  task.log(lp_.h_put_start, [&] {
    return "Handler: applying put to region " + std::to_string(region_of(key));
  });
  if (rs.recovering) {
    // Persistence rule: no writes until the WAL block recovery is confirmed.
    co_return false;  // premature: {h_put_start} only
  }
  co_await rs.host->compute(options_.handler_cpu);
  rs.memstore.put(key, std::move(value));
  task.log(lp_.h_edit, [&] {
    return "Handler: appended edit to memstore, " +
           std::to_string(rs.memstore.bytes()) + " bytes";
  });
  auto synced = sim::OneShot::create(engine_);
  rs.sync_waiters.push_back(synced);
  // Group commit: wait for the WAL sync that covers this edit.
  co_await synced->wait(sec(5));
  task.log(lp_.h_put_done, "Handler: put durable");
  co_return true;
}

sim::Task<std::optional<std::string>> MiniHBase::get(std::string key) {
  RegionServer& rs = owner_of(key);
  if (rs.crashed) co_return std::nullopt;
  {
    auto call = rs.host->begin(stages_.call);
    call.log(lp_.call_get, [&] {
      return "Call: get for region " + std::to_string(region_of(key));
    });
    co_await rs.host->compute(options_.call_cpu);
    call.log(lp_.call_done, "Call: queued for handler");
  }
  auto task = rs.host->begin(stages_.handler);
  task.log(lp_.h_get_start, [&] {
    return "Handler: get on region " + std::to_string(region_of(key));
  });
  co_await rs.host->compute(options_.handler_cpu);
  if (auto v = rs.memstore.get(key)) {
    task.log(lp_.h_get_mem, [&] { return "Handler: memstore hit for " + key; });
    task.log(lp_.h_get_done, "Handler: get complete");
    co_return v;
  }
  const auto it = rs.flushed.find(key);
  if (it == rs.flushed.end()) {
    task.log(lp_.h_get_done, "Handler: get complete");
    co_return std::nullopt;  // bloom filters skip the disk for misses
  }
  task.log(lp_.h_get_hfile,
           [&] { return "Handler: reading HFile block for " + key; });
  const std::uint64_t block =
      rs.hfile_blocks.empty() ? new_block_id(rs) : rs.hfile_blocks.back();
  (void)co_await hdfs_->read_block(block, options_.wal_sync_bytes);
  task.log(lp_.h_get_done, "Handler: get complete");
  co_return it->second;
}

sim::Process MiniHBase::connection_daemon(RegionServer& rs) {
  for (;;) {
    co_await engine_->delay(options_.connection_period);
    if (rs.crashed) continue;
    {
      auto task = rs.host->begin(stages_.listener);
      task.log(lp_.li_accept, "Listener: accepted connection");
      co_await rs.host->compute(options_.call_cpu / 2);
    }
    {
      auto task = rs.host->begin(stages_.connection);
      task.log(lp_.conn_read, "Connection: read RPC bytes");
      co_await rs.host->compute(options_.call_cpu / 2);
    }
  }
}

sim::Process MiniHBase::sync_daemon(RegionServer& rs) {
  for (;;) {
    co_await engine_->delay(options_.sync_interval);
    if (rs.crashed || rs.recovering || rs.sync_waiters.empty()) continue;

    std::vector<std::shared_ptr<sim::OneShot>> batch;
    batch.swap(rs.sync_waiters);

    auto task = rs.host->begin(stages_.handler);  // the 'log sync' task
    task.log(lp_.h_sync_start, [&] {
      return "Handler: log sync of " + std::to_string(batch.size()) + " edits";
    });
    bool ok = false;
    const UsTime sync_begin = engine_->now();
    {
      auto ds = rs.host->begin(stages_.data_streamer);
      ds.log(lp_.ds_stream, [&] {
        return "DataStreamer: streaming packet for block blk_" +
               std::to_string(rs.wal_block);
      });
      ok = co_await hdfs_->write_block(rs.wal_block, options_.wal_sync_bytes);
      if (ok) ds.log(lp_.ds_done, "DataStreamer: stream closed");
    }
    // A sync slower than the client's ack patience is a timeout even if the
    // pipeline eventually persisted it — the HDFS client has already assumed
    // the pipeline is broken and will recover the block.
    if (ok && engine_->now() - sync_begin > options_.ack_timeout) ok = false;
    {
      auto rp = rs.host->begin(stages_.response_processor);
      if (ok) {
        rp.log(lp_.rp_ack, [&] {
          return "ResponseProcessor: ack for block blk_" +
                 std::to_string(rs.wal_block);
        });
      } else {
        rp.log(lp_.rp_timeout, [&] {
          return "ResponseProcessor: ack timeout for block blk_" +
                 std::to_string(rs.wal_block);
        });
        if (!rs.recovering) {
          rs.recovering = true;
          recovery_loop(rs);
        }
      }
    }
    task.log(lp_.h_sync_done, "Handler: log sync done");
    for (auto& waiter : batch) waiter->fulfill();
  }
}

sim::Process MiniHBase::recovery_loop(RegionServer& rs) {
  // The paper's bug: the DN's answer "already in recovery" is misread as an
  // exception, so the RS keeps re-requesting until it aborts.
  recoveries_attempted_++;
  int retries = 0;
  const std::uint64_t block = rs.wal_block;
  for (;;) {
    const auto result =
        co_await hdfs_->recover_block(block, options_.recover_rpc_timeout);
    if (rs.crashed) co_return;
    if (result == MiniHdfs::RecoverResult::kOk) {
      rs.recovering = false;
      rs.wal_block = new_block_id(rs);
      co_return;
    }
    retries++;
    {
      auto rp = rs.host->begin(stages_.response_processor);
      rp.log(lp_.rp_retry, [&] {
        return "Retrying recovery for block blk_" + std::to_string(block) +
               " after exception";
      });
    }
    if (retries >= options_.crash_recovery_retries) {
      crash_rs(rs);
      co_return;
    }
    co_await engine_->delay(options_.recovery_retry_delay);
  }
}

void MiniHBase::crash_rs(RegionServer& rs) {
  if (rs.crashed) return;
  {
    auto task = rs.host->begin(stages_.handler);
    task.log(lp_.rs_abort, [&] {
      return "ABORTING region server " + std::to_string(rs.index) +
             ": WAL recovery retries exceeded";
    });
  }
  rs.crashed = true;
  // Survivors split the dead server's logs and reopen its regions.
  for (auto& other : servers_) {
    if (!other->crashed) other->pending_split_work++;
  }
  for (int region = 0; region < options_.regions; ++region) {
    if (region_owner_[region] != rs.index) continue;
    for (int offset = 1; offset < options_.regionservers; ++offset) {
      const int candidate = (rs.index + offset) % options_.regionservers;
      if (!servers_[candidate]->crashed) {
        region_owner_[region] = candidate;
        regions_reassigned_++;
        open_region_task(*servers_[candidate], region);
        break;
      }
    }
  }
}

sim::Process MiniHBase::open_region_task(RegionServer& rs, int region) {
  {
    auto task = rs.host->begin(stages_.open_region);
    task.log(lp_.orh_open, [&] {
      return "OpenRegionHandler: opening region " + std::to_string(region);
    });
    co_await rs.host->compute(options_.handler_cpu * 4);
    (void)co_await hdfs_->read_block(new_block_id(rs), options_.wal_sync_bytes);
    task.log(lp_.orh_done, [&] {
      return "OpenRegionHandler: region " + std::to_string(region) + " online";
    });
  }
  {
    auto task = rs.host->begin(stages_.post_open);
    task.log(lp_.pod_start, [&] {
      return "PostOpenDeployTasks: updating meta for region " +
             std::to_string(region);
    });
    co_await rs.host->compute(options_.handler_cpu);
    task.log(lp_.pod_done, [&] {
      return "PostOpenDeployTasks: done for region " + std::to_string(region);
    });
  }
}

sim::Process MiniHBase::flusher_daemon(RegionServer& rs) {
  for (;;) {
    co_await engine_->delay(options_.flusher_period);
    if (rs.crashed || rs.flush_in_progress ||
        rs.memstore.bytes() < options_.memstore_flush_bytes) {
      continue;
    }
    rs.flush_in_progress = true;
    const std::uint64_t block = new_block_id(rs);
    const std::size_t bytes = rs.memstore.bytes();
    bool ok = false;
    {
      auto ds = rs.host->begin(stages_.data_streamer);
      ds.log(lp_.ds_flush_block, [&] {
        return "DataStreamer: writing flushed HFile block blk_" +
               std::to_string(block);
      });
      ok = co_await hdfs_->write_block(block, bytes);
      if (ok) ds.log(lp_.ds_done, "DataStreamer: stream closed");
    }
    {
      auto rp = rs.host->begin(stages_.response_processor);
      if (ok) {
        rp.log(lp_.rp_ack, [&] {
          return "ResponseProcessor: ack for block blk_" +
                 std::to_string(block);
        });
      } else {
        rp.log(lp_.rp_timeout, [&] {
          return "ResponseProcessor: ack timeout for block blk_" +
                 std::to_string(block);
        });
      }
    }
    if (ok) {
      for (auto& [k, v] : rs.memstore.contents()) rs.flushed[k] = v;
      rs.memstore = lsm::MemTable();
      rs.hfile_blocks.push_back(block);
    }
    rs.flush_in_progress = false;
  }
}

sim::Task<void> MiniHBase::run_compaction(RegionServer& rs, bool major) {
  auto task = rs.host->begin(stages_.compaction_request);
  task.log(lp_.cr_start, [&] {
    return "CompactionRequest: starting compaction of " +
           std::to_string(rs.hfile_blocks.size()) + " files";
  });
  if (major) {
    task.log(lp_.cr_major,
             "CompactionRequest: major compaction of all store files");
  }
  const std::vector<std::uint64_t> inputs = rs.hfile_blocks;
  for (const auto block : inputs) {
    (void)co_await hdfs_->read_block(block, options_.memstore_flush_bytes);
  }
  const std::uint64_t merged = new_block_id(rs);
  (void)co_await hdfs_->write_block(
      merged, options_.memstore_flush_bytes * inputs.size());
  rs.hfile_blocks.erase(
      rs.hfile_blocks.begin(),
      rs.hfile_blocks.begin() + static_cast<std::ptrdiff_t>(inputs.size()));
  rs.hfile_blocks.insert(rs.hfile_blocks.begin(), merged);
  task.log(lp_.cr_done, "CompactionRequest: completed");
}

sim::Process MiniHBase::compaction_daemon(RegionServer& rs) {
  for (;;) {
    co_await engine_->delay(options_.compaction_check_period);
    if (rs.crashed) continue;
    auto task = rs.host->begin(stages_.compaction_checker);
    task.log(lp_.cc_check, "CompactionChecker: store files checked");
    const bool minor_due =
        rs.hfile_blocks.size() >=
        static_cast<std::size_t>(options_.hfile_compact_threshold);
    const bool major_due = rs.major_compaction_due && rs.hfile_blocks.size() > 1;
    if (!minor_due && !major_due) continue;
    task.log(lp_.cc_due, "CompactionChecker: compaction requested");
    if (major_due) {
      task.log(lp_.cc_major, "CompactionChecker: MAJOR compaction due");
      rs.major_compaction_due = false;
    }
    co_await run_compaction(rs, major_due);
  }
}

sim::Process MiniHBase::log_roller_daemon(RegionServer& rs) {
  for (;;) {
    co_await engine_->delay(options_.log_roll_period);
    if (rs.crashed || rs.recovering) continue;
    auto task = rs.host->begin(stages_.log_roller);
    task.log(lp_.lr_roll_start, "LogRoller: rolling hlog");
    rs.wal_block = new_block_id(rs);
    (void)co_await hdfs_->write_block(rs.wal_block, options_.wal_sync_bytes);
    task.log(lp_.lr_roll_done, "LogRoller: roll done");
  }
}

sim::Process MiniHBase::split_log_daemon(RegionServer& rs) {
  for (;;) {
    co_await engine_->delay(options_.split_check_period);
    if (rs.crashed) continue;
    auto task = rs.host->begin(stages_.split_log_worker);
    task.log(lp_.slw_check, "SplitLogWorker: checking for log-split work");
    if (rs.pending_split_work == 0) continue;
    rs.pending_split_work--;
    task.log(lp_.slw_acquire, "SplitLogWorker: acquired split task");
    task.log(lp_.slw_split, "SplitLogWorker: splitting hlog of dead server");
    (void)co_await hdfs_->read_block(new_block_id(rs),
                                     options_.memstore_flush_bytes);
    (void)co_await hdfs_->write_block(new_block_id(rs),
                                      options_.wal_sync_bytes);
    task.log(lp_.slw_done, "SplitLogWorker: split done");
  }
}

void MiniHBase::trigger_major_compaction() {
  for (auto& rs : servers_) rs->major_compaction_due = true;
}

}  // namespace saad::systems
