// MiniCassandra: a deterministic simulated Cassandra 0.8-style cluster with
// the staged architecture SAAD instruments (paper §5.4, Fig. 9).
//
// Peer-to-peer nodes; each node runs the write path
//   StorageProxy (coordinator) -> {OutboundTcp -> IncomingTcp ->}
//   WorkerProcess -> Table (+ LogRecordAdder for the WAL append)
// over a shared-nothing LSM store (lsm::LsmStore), plus the daemons
//   Memtable (flusher), CommitLog (segment maintenance), CompactionManager,
//   GCInspector, CassandraDaemon (gossip), HintedHandOffManager,
// and the dispatcher-worker read stage LocalReadRunnable.
//
// Fault semantics reproduced from the paper:
//  * WAL-append error during a flush switch wedges the node: the stuck task
//    never releases the MemTable lock, subsequent mutations log only the
//    "MemTable is already frozen" point and terminate prematurely (Table 1),
//    writes buffer in memory until the node OOM-crashes (~a dozen ERROR
//    lines, then silence) — Fig. 9a.
//  * MemTable-flush errors leave frozen tables buffered (GC pressure,
//    lingering after the fault lifts) and also break compaction — Fig. 9b.
//  * Delay faults stretch WorkerProcess/StorageProxy (WAL) or
//    CommitLog/WorkerProcess (flush) durations — Fig. 9c/9d.
//  * Coordinators that time out on a replica write a hint to a random
//    healthy peer ("hinted hand-off"), whose WorkerProcess logs the
//    hint-store flow — the cross-node anomaly signature of Fig. 9a.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/monitor.h"
#include "lsm/store.h"
#include "sim/oneshot.h"
#include "sim/queue.h"
#include "systems/host.h"
#include "workload/ycsb.h"

namespace saad::systems {

struct CassandraOptions {
  int nodes = 4;
  int replication_factor = 2;
  int workers_per_node = 32;  // WorkerProcess pool size
  lsm::LsmOptions lsm;

  UsTime network_latency = 300;     // one-way, us
  UsTime rpc_cpu = 40;              // us, per-message CPU
  UsTime mutate_cpu = 80;           // us, applying one mutation
  UsTime write_timeout = ms(500);   // coordinator ack timeout -> hint
  UsTime read_timeout = ms(500);

  UsTime gossip_period = sec(1);
  UsTime gc_period = sec(10);
  UsTime commitlog_period = sec(2);
  UsTime compaction_check_period = sec(5);
  UsTime hint_replay_period = sec(10);
  UsTime flush_retry_delay = sec(5);

  std::size_t commitlog_segment_bytes = 8 * 1024;   // discard trigger
  std::size_t gc_pressure_bytes = 192 * 1024;       // heap-warning threshold
  std::size_t crash_buffered_bytes = 512 * 1024;     // wedged-node OOM point
  double outbound_reconnect_chance = 0.0005;        // rare-but-normal flow

  /// The frozen-MemTable wedge fires after this many *consecutive* WAL-append
  /// failures on a node: the commit-log executor exhausts its retries while
  /// holding the MemTable switch lock and blocks forever. At the paper's 1%
  /// fault intensity a run of this length is essentially impossible; at 100%
  /// it happens within tens of writes — reproducing why the low-intensity
  /// fault only causes rare flows while the high-intensity one wedges the
  /// node (Fig. 9a).
  int wedge_consecutive_wal_failures = 10;
};

/// Dense stage ids, registered once in the shared LogRegistry.
struct CassandraStages {
  core::StageId storage_proxy, cassandra_daemon, local_read, memtable,
      outbound_tcp, commit_log, gc_inspector, worker_process, table,
      log_record_adder, incoming_tcp, hinted_handoff, compaction_manager;
};

/// Log point ids (templates registered alongside).
struct CassandraLogPoints {
  // StorageProxy
  core::LogPointId sp_mutate, sp_done, sp_hint, sp_read, sp_read_timeout;
  // WorkerProcess
  core::LogPointId wp_start, wp_done, wp_hint;
  // Table (the Table-1 flow)
  core::LogPointId tbl_frozen, tbl_start, tbl_apply, tbl_done, tbl_flush;
  // LogRecordAdder
  core::LogPointId lra_add, lra_done;
  // Memtable (flusher)
  core::LogPointId mem_enqueue, mem_write, mem_done, mem_error;
  // CommitLog
  core::LogPointId cl_check, cl_discard;
  // CompactionManager
  core::LogPointId cm_check, cm_start, cm_done, cm_error;
  // GCInspector
  core::LogPointId gc_minor, gc_warn, gc_done;
  // CassandraDaemon
  core::LogPointId cd_gossip, cd_ok, cd_down, cd_oom;
  // LocalReadRunnable
  core::LogPointId lr_start, lr_disk, lr_done;
  // Tcp stages
  core::LogPointId out_send, out_reconnect, in_recv;
  // HintedHandOffManager
  core::LogPointId hh_start, hh_done, hh_timeout;
};

class MiniCassandra : public workload::KvService {
 public:
  /// `monitor` may be null (untracked run). Registers stages/log points into
  /// `registry` (shared across instances is fine: ids are instance-local).
  MiniCassandra(sim::Engine* engine, core::LogRegistry* registry,
                core::Monitor* monitor, core::LogSink* sink,
                core::Level threshold, const faults::FaultPlane* plane,
                const CassandraOptions& options, std::uint64_t seed);
  ~MiniCassandra() override;

  /// Launch per-node daemons. Call once before driving workload.
  void start();

  /// Install a baseline dataset (keys "user0".."user<n-1>") on the proper
  /// replicas, bypassing simulated I/O — the paper's "initialized with a
  /// baseline data set" step. Call before start().
  void preload(std::uint64_t keys, std::size_t value_bytes);

  // KvService — the YCSB driver's entry points.
  sim::Task<bool> put(std::string key, std::string value) override;
  sim::Task<std::optional<std::string>> get(std::string key) override;

  const CassandraStages& stages() const { return stages_; }
  const CassandraLogPoints& points() const { return lp_; }
  const CassandraOptions& options() const { return options_; }

  // Introspection for tests and benches.
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  bool node_wedged(int node) const { return nodes_[node]->wedged; }
  bool node_crashed(int node) const { return nodes_[node]->crashed; }
  lsm::LsmStore& store(int node) { return *nodes_[node]->store; }
  std::uint64_t hints_stored() const { return hints_stored_; }
  /// Bytes of writes buffered in memory on a wedged node (drives the OOM).
  std::size_t buffered_bytes(int node) const {
    return nodes_[node]->buffered_bytes;
  }
  std::uint64_t write_timeouts() const { return write_timeouts_; }

 private:
  struct Hint {
    int target_node;
    std::string key, value;
  };

  struct Message {
    enum class Kind { kMutation, kHintStore, kHintedMutation, kRead };
    Kind kind = Kind::kMutation;
    std::string key, value;
    std::shared_ptr<sim::OneShot> ack;                    // writes
    std::shared_ptr<std::optional<std::string>> result;   // reads
    int hint_target = -1;                                 // kHintStore
  };

  struct Node {
    explicit Node(int index) : index(index) {}
    int index;
    std::unique_ptr<Host> host;
    std::unique_ptr<lsm::LsmStore> store;
    std::unique_ptr<sim::SimQueue<Message>> worker_queue;
    std::unique_ptr<sim::SimQueue<std::shared_ptr<sim::OneShot>>> flush_queue;
    std::vector<Hint> hints;
    std::size_t buffered_bytes = 0;  // writes held in memory while wedged
    int consecutive_wal_failures = 0;
    bool wedged = false;
    bool crashing = false;  // OOM error sequence underway
    bool crashed = false;
    bool known_down = false;  // gossip-detected (only after a crash)
  };

  int replica_for(const std::string& key, int r) const;
  int pick_coordinator();
  int pick_healthy(int avoid) ;
  void enqueue_local(Node& node, Message msg);
  void store_hint(int target_node, const std::string& key,
                  const std::string& value);
  void maybe_crash(Node& node);

  // Stage coroutines.
  sim::Process send_remote(Node& from, Node& to, Message msg);
  sim::Process worker_loop(Node& node);
  sim::Task<bool> apply_mutation(Node& node, const Message& msg);
  sim::Process read_task(Node& node, Message msg);
  sim::Process memtable_loop(Node& node);
  sim::Process commitlog_daemon(Node& node);
  sim::Process compaction_daemon(Node& node);
  sim::Process gc_daemon(Node& node);
  sim::Process gossip_daemon(Node& node);
  sim::Process hint_daemon(Node& node);
  sim::Process crash_sequence(Node& node);

  sim::Engine* engine_;
  core::LogRegistry* registry_;
  const faults::FaultPlane* plane_;
  CassandraOptions options_;
  CassandraStages stages_{};
  CassandraLogPoints lp_{};
  Rng rng_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<sim::Gate> stuck_gate_;  // never opens: the wedge
  std::vector<std::unique_ptr<Node>> nodes_;
  int next_coordinator_ = 0;
  std::uint64_t hints_stored_ = 0;
  std::uint64_t write_timeouts_ = 0;
  bool started_ = false;
};

}  // namespace saad::systems
