#include "systems/cassandra/cassandra.h"

#include <cassert>

#include "core/stage_marker.h"

namespace saad::systems {

namespace {

/// FNV-1a — deterministic across platforms (std::hash is not guaranteed).
std::uint64_t key_hash(const std::string& key) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

MiniCassandra::MiniCassandra(sim::Engine* engine, core::LogRegistry* registry,
                             core::Monitor* monitor, core::LogSink* sink,
                             core::Level threshold,
                             const faults::FaultPlane* plane,
                             const CassandraOptions& options,
                             std::uint64_t seed)
    : engine_(engine), registry_(registry), plane_(plane), options_(options),
      rng_(seed) {
  network_ = std::make_unique<sim::Network>(engine, plane, rng_.split(),
                                            options.network_latency);
  stuck_gate_ = std::make_unique<sim::Gate>(engine, /*open=*/false);

  auto& reg = *registry_;
  stages_.storage_proxy = reg.register_stage("StorageProxy");
  stages_.cassandra_daemon = reg.register_stage("CassandraDaemon");
  stages_.local_read = reg.register_stage("LocalReadRunnable");
  stages_.memtable = reg.register_stage("Memtable");
  stages_.outbound_tcp = reg.register_stage("OutboundTcpConnection");
  stages_.commit_log = reg.register_stage("CommitLog");
  stages_.gc_inspector = reg.register_stage("GCInspector");
  stages_.worker_process = reg.register_stage("WorkerProcess");
  stages_.table = reg.register_stage("Table");
  stages_.log_record_adder = reg.register_stage("LogRecordAdder");
  stages_.incoming_tcp = reg.register_stage("IncomingTcpConnection");
  stages_.hinted_handoff = reg.register_stage("HintedHandOffManager");
  stages_.compaction_manager = reg.register_stage("CompactionManager");

  using L = core::Level;
  auto lp = [&](core::StageId s, L level, const char* text) {
    return reg.register_log_point(s, level, text, "cassandra.cc");
  };
  lp_.sp_mutate = lp(stages_.storage_proxy, L::kDebug,
                     "insert writing key % to replicas");
  lp_.sp_done = lp(stages_.storage_proxy, L::kDebug,
                   "Write completed, responding to client");
  lp_.sp_hint = lp(stages_.storage_proxy, L::kDebug,
                   "Adding hint for unresponsive endpoint /%");
  lp_.sp_read = lp(stages_.storage_proxy, L::kDebug,
                   "Reading data for key % from replica");
  lp_.sp_read_timeout = lp(stages_.storage_proxy, L::kWarn,
                           "Read timed out for key %");
  lp_.wp_start = lp(stages_.worker_process, L::kDebug,
                    "Executing row mutation for key %");
  lp_.wp_done = lp(stages_.worker_process, L::kDebug,
                   "Row mutation applied. Sending response");
  lp_.wp_hint = lp(stages_.worker_process, L::kDebug,
                   "Storing hint destined for endpoint /%");
  lp_.tbl_frozen =
      lp(stages_.table, L::kDebug,
         "MemTable is already frozen; another thread must be flushing it");
  lp_.tbl_start =
      lp(stages_.table, L::kDebug, "Start applying update to MemTable");
  lp_.tbl_apply = lp(stages_.table, L::kDebug, "Applying mutation of row %");
  lp_.tbl_done =
      lp(stages_.table, L::kDebug, "Applied mutation. Sending response");
  lp_.tbl_flush = lp(stages_.table, L::kInfo,
                     "Memtable over threshold; switching in a fresh Memtable");
  lp_.lra_add = lp(stages_.log_record_adder, L::kDebug,
                   "Adding row mutation to commit log");
  lp_.lra_done = lp(stages_.log_record_adder, L::kDebug,
                    "Commit log append completed at position %");
  lp_.mem_enqueue =
      lp(stages_.memtable, L::kInfo, "Enqueuing flush of Memtable-%");
  lp_.mem_write = lp(stages_.memtable, L::kInfo, "Writing Memtable-%");
  lp_.mem_done = lp(stages_.memtable, L::kInfo,
                    "Completed flushing; new sstable written");
  lp_.mem_error = lp(stages_.memtable, L::kError,
                     "Error writing Memtable to disk; will retry");
  lp_.cl_check =
      lp(stages_.commit_log, L::kDebug, "Checking commit log segments");
  lp_.cl_discard = lp(stages_.commit_log, L::kDebug,
                      "Discarding obsolete commit log segment");
  lp_.cm_check = lp(stages_.compaction_manager, L::kDebug,
                    "Checking to see if compaction of % would be useful");
  lp_.cm_start =
      lp(stages_.compaction_manager, L::kInfo, "Compacting % sstables");
  lp_.cm_done = lp(stages_.compaction_manager, L::kInfo,
                   "Compacted to single sstable; % bytes");
  lp_.cm_error = lp(stages_.compaction_manager, L::kError,
                    "Compaction failed with IO error");
  lp_.gc_minor = lp(stages_.gc_inspector, L::kDebug, "GC for ParNew: % ms");
  lp_.gc_warn = lp(stages_.gc_inspector, L::kWarn,
                   "Heap is % full. GC pauses are getting long");
  lp_.gc_done = lp(stages_.gc_inspector, L::kDebug, "GC inspection complete");
  lp_.cd_gossip =
      lp(stages_.cassandra_daemon, L::kDebug, "Gossiping my state to /%");
  lp_.cd_ok = lp(stages_.cassandra_daemon, L::kDebug, "Gossip round complete");
  lp_.cd_down =
      lp(stages_.cassandra_daemon, L::kInfo, "InetAddress /% is now DOWN");
  lp_.cd_oom = lp(stages_.cassandra_daemon, L::kError,
                  "OutOfMemory pressure: mutation stage backed up");
  lp_.lr_start = lp(stages_.local_read, L::kDebug,
                    "Executing single-partition query on %");
  lp_.lr_disk =
      lp(stages_.local_read, L::kDebug, "Merging data from sstable %");
  lp_.lr_done = lp(stages_.local_read, L::kDebug, "Read % live cells");
  lp_.out_send = lp(stages_.outbound_tcp, L::kDebug,
                    "Sending message to /% over socket");
  lp_.out_reconnect = lp(stages_.outbound_tcp, L::kDebug,
                         "Socket closed by peer; reconnecting to /%");
  lp_.in_recv = lp(stages_.incoming_tcp, L::kDebug,
                   "Received message from /% ; dispatching");
  lp_.hh_start = lp(stages_.hinted_handoff, L::kInfo,
                    "Started hinted handoff for endpoint /%");
  lp_.hh_done = lp(stages_.hinted_handoff, L::kInfo,
                   "Finished hinted handoff of % rows to endpoint /%");
  lp_.hh_timeout = lp(stages_.hinted_handoff, L::kWarn,
                      "Timed out replaying hints to endpoint /%");

  nodes_.reserve(options_.nodes);
  for (int i = 0; i < options_.nodes; ++i) {
    auto node = std::make_unique<Node>(i);
    core::TaskExecutionTracker* tracker =
        monitor ? &monitor->tracker(static_cast<core::HostId>(i)) : nullptr;
    node->host = std::make_unique<Host>(
        engine_, plane_, registry_, sink, threshold, tracker,
        static_cast<core::HostId>(i), rng_.split());
    node->store =
        std::make_unique<lsm::LsmStore>(engine_, &node->host->disk(),
                                        options_.lsm);
    node->worker_queue = std::make_unique<sim::SimQueue<Message>>(engine_);
    node->flush_queue =
        std::make_unique<sim::SimQueue<std::shared_ptr<sim::OneShot>>>(
            engine_);
    nodes_.push_back(std::move(node));
  }
}

MiniCassandra::~MiniCassandra() = default;

void MiniCassandra::start() {
  assert(!started_);
  started_ = true;
  for (auto& node : nodes_) {
    node->host->run_disk_hog_service();
    for (int w = 0; w < options_.workers_per_node; ++w) worker_loop(*node);
    memtable_loop(*node);
    commitlog_daemon(*node);
    compaction_daemon(*node);
    gc_daemon(*node);
    gossip_daemon(*node);
    hint_daemon(*node);
  }
}

void MiniCassandra::preload(std::uint64_t keys, std::size_t value_bytes) {
  std::vector<std::map<std::string, std::string>> per_node(nodes_.size());
  for (std::uint64_t k = 0; k < keys; ++k) {
    const std::string key = "user" + std::to_string(k);
    const std::string value(value_bytes, 'v');
    for (int r = 0; r < options_.replication_factor; ++r) {
      per_node[static_cast<std::size_t>(replica_for(key, r))][key] = value;
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->store->preload(std::move(per_node[i]));
  }
}

int MiniCassandra::replica_for(const std::string& key, int r) const {
  return static_cast<int>((key_hash(key) + static_cast<std::uint64_t>(r)) %
                          nodes_.size());
}

int MiniCassandra::pick_coordinator() {
  // Clients rotate over nodes that are up (a crashed node refuses
  // connections; a wedged node still accepts them — fault masking).
  for (std::size_t attempt = 0; attempt < nodes_.size(); ++attempt) {
    next_coordinator_ = (next_coordinator_ + 1) % static_cast<int>(nodes_.size());
    if (!nodes_[next_coordinator_]->crashed) return next_coordinator_;
  }
  return 0;  // everything down: degenerate, callers will time out
}

int MiniCassandra::pick_healthy(int avoid) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    const int candidate =
        static_cast<int>(rng_.next_below(nodes_.size()));
    if (candidate != avoid && !nodes_[candidate]->crashed &&
        !nodes_[candidate]->known_down) {
      return candidate;
    }
  }
  return avoid;  // no healthy peer found
}

void MiniCassandra::enqueue_local(Node& node, Message msg) {
  if (node.crashed) return;
  node.worker_queue->push(std::move(msg));
}

void MiniCassandra::store_hint(int target_node, const std::string& key,
                               const std::string& value) {
  const int holder = pick_healthy(target_node);
  if (holder == target_node) return;
  Message hint;
  hint.kind = Message::Kind::kHintStore;
  hint.key = key;
  hint.value = value;
  hint.hint_target = target_node;
  enqueue_local(*nodes_[holder], std::move(hint));
}

void MiniCassandra::maybe_crash(Node& node) {
  if (node.crashing || node.crashed ||
      node.buffered_bytes < options_.crash_buffered_bytes) {
    return;
  }
  node.crashing = true;
  crash_sequence(node);
}

sim::Process MiniCassandra::crash_sequence(Node& node) {
  // "The effect of memory pressure becomes visible as a dozen of error
  // messages ... and shortly after that, the Cassandra process crashes."
  for (int i = 0; i < 12; ++i) {
    {
      auto task = node.host->begin(stages_.cassandra_daemon);
      task.log(lp_.cd_oom,
               [&] { return std::string("OutOfMemory pressure: mutation "
                                        "stage backed up"); });
    }
    co_await engine_->delay(sec(2));
  }
  node.crashed = true;
}

sim::Process MiniCassandra::send_remote(Node& from, Node& to, Message msg) {
  {
    auto task = from.host->begin(stages_.outbound_tcp);
    task.log(lp_.out_send, [&] {
      return "Sending message to /10.0.0." + std::to_string(to.index) +
             " over socket";
    });
    if (from.host->rng().chance(options_.outbound_reconnect_chance)) {
      co_await engine_->delay(ms(2));
      task.log(lp_.out_reconnect, [&] {
        return "Socket closed by peer; reconnecting to /10.0.0." +
               std::to_string(to.index);
      });
    }
  }
  const auto io = co_await network_->transfer(
      static_cast<std::uint16_t>(from.index), options_.rpc_cpu);
  if (!io.ok || to.crashed) co_return;  // dropped on the floor
  {
    auto task = to.host->begin(stages_.incoming_tcp);
    task.log(lp_.in_recv, [&] {
      return "Received message from /10.0.0." + std::to_string(from.index) +
             " ; dispatching";
    });
    co_await to.host->compute(options_.rpc_cpu);
  }
  if (msg.kind == Message::Kind::kRead) {
    read_task(to, std::move(msg));
  } else {
    enqueue_local(to, std::move(msg));
  }
}

sim::Task<bool> MiniCassandra::put(std::string key, std::string value) {
  Node& coord = *nodes_[pick_coordinator()];
  auto task = coord.host->begin(stages_.storage_proxy);
  task.log(lp_.sp_mutate,
           [&] { return "insert writing key " + key + " to replicas"; });

  struct Pending {
    int replica;
    std::shared_ptr<sim::OneShot> ack;
  };
  std::vector<Pending> pending;
  for (int r = 0; r < options_.replication_factor; ++r) {
    const int replica = replica_for(key, r);
    Node& target = *nodes_[replica];
    if (target.crashed || target.known_down) {
      // Gossip already told us: don't wait, hint straight away.
      task.log(lp_.sp_hint, [&] {
        return "Adding hint for unresponsive endpoint /10.0.0." +
               std::to_string(replica);
      });
      store_hint(replica, key, value);
      continue;
    }
    Message m;
    m.kind = Message::Kind::kMutation;
    m.key = key;
    m.value = value;
    m.ack = sim::OneShot::create(engine_);
    pending.push_back(Pending{replica, m.ack});
    if (replica == coord.index) {
      enqueue_local(coord, std::move(m));
    } else {
      send_remote(coord, target, std::move(m));
    }
  }

  const UsTime deadline = engine_->now() + options_.write_timeout;
  int acked = 0;
  for (auto& p : pending) {
    const UsTime budget = std::max<UsTime>(deadline - engine_->now(), 1);
    const bool ok = co_await p.ack->wait(budget);
    if (ok) {
      acked++;
    } else {
      write_timeouts_++;
      task.log(lp_.sp_hint, [&] {
        return "Adding hint for unresponsive endpoint /10.0.0." +
               std::to_string(p.replica);
      });
      store_hint(p.replica, key, value);
    }
  }
  if (acked > 0) {
    task.log(lp_.sp_done, "Write completed, responding to client");
    co_return true;
  }
  co_return false;  // premature: no sp_done
}

sim::Process MiniCassandra::worker_loop(Node& node) {
  for (;;) {
    SAAD_STAGE("WorkerProcess");
    Message msg = co_await node.worker_queue->pop();
    if (node.crashed) continue;
    auto task = node.host->begin(stages_.worker_process);
    task.log(lp_.wp_start,
             [&] { return "Executing row mutation for key " + msg.key; });
    if (msg.kind == Message::Kind::kHintStore) {
      task.log(lp_.wp_hint, [&] {
        return "Storing hint destined for endpoint /10.0.0." +
               std::to_string(msg.hint_target);
      });
      node.hints.push_back(Hint{msg.hint_target, msg.key, msg.value});
      hints_stored_++;
      co_await node.host->compute(options_.mutate_cpu);
      if (msg.ack) msg.ack->fulfill();
      continue;
    }
    co_await node.host->compute(options_.rpc_cpu);
    const bool ok = co_await apply_mutation(node, msg);
    if (ok) {
      task.log(lp_.wp_done, "Row mutation applied. Sending response");
      if (msg.ack) msg.ack->fulfill();
    }
    // !ok: premature termination — the wp task ends without wp_done.
  }
}

sim::Task<bool> MiniCassandra::apply_mutation(Node& node, const Message& msg) {
  auto task = node.host->begin(stages_.table);
  if (node.store->memtable_frozen()) {
    task.log(lp_.tbl_frozen,
             "MemTable is already frozen; another thread must be flushing it");
    co_await engine_->delay(ms(2));  // brief wait for the lock holder
    if (node.store->memtable_frozen()) {
      if (node.wedged) {
        // Writes buffer in memory behind the stuck task: the slow march
        // toward the OOM crash of Fig. 9a.
        node.buffered_bytes += msg.key.size() + msg.value.size();
        maybe_crash(node);
      }
      co_return false;  // premature: signature is {tbl_frozen} (Table 1)
    }
  }
  task.log(lp_.tbl_start, "Start applying update to MemTable");

  bool wal_ok = false;
  {
    auto lra = node.host->begin(stages_.log_record_adder);
    lra.log(lp_.lra_add, "Adding row mutation to commit log");
    const auto io =
        co_await node.store->wal_append(msg.key.size() + msg.value.size());
    wal_ok = io.ok;
    if (wal_ok) {
      lra.log(lp_.lra_done, [&] {
        return "Commit log append completed at position " +
               std::to_string(node.store->wal().pending_bytes());
      });
    }
    // !ok: lra ends prematurely with {lra_add}.
  }
  if (!wal_ok) {
    node.consecutive_wal_failures++;
    if (node.consecutive_wal_failures >=
            options_.wedge_consecutive_wal_failures &&
        !node.wedged) {
      // The paper's wedge: retries exhausted while holding the MemTable
      // switch lock; the task blocks forever without releasing it, freezing
      // the MemTable for everyone else (Table 1's anomalous flow).
      node.wedged = true;
      node.store->wedge_active();
      co_await stuck_gate_->wait();  // never returns
    }
    co_return false;  // premature: {tbl_start} without tbl_apply/tbl_done
  }
  node.consecutive_wal_failures = 0;

  task.log(lp_.tbl_apply,
           [&] { return "Applying mutation of row " + msg.key; });
  co_await node.host->compute(options_.mutate_cpu);
  node.store->apply(msg.key, msg.value);
  task.log(lp_.tbl_done, "Applied mutation. Sending response");
  // The write is durable (WAL) and applied: acknowledge *before* any flush
  // hand-off so coordinators are not timed out by background I/O. fulfill()
  // is idempotent, so the worker's post-hoc fulfill is harmless.
  if (msg.ack) msg.ack->fulfill();

  if (node.store->needs_flush()) {
    // The task that fills the MemTable is on the hook for the flush
    // hand-off and waits for it (paper §5.4.2, delay-on-flush discussion).
    task.log(lp_.tbl_flush,
             "Memtable over threshold; switching in a fresh Memtable");
    auto done = sim::OneShot::create(engine_);
    node.flush_queue->push(done);
    co_await done->wait(sec(30));
  }
  co_return true;
}

sim::Task<std::optional<std::string>> MiniCassandra::get(std::string key) {
  Node& coord = *nodes_[pick_coordinator()];
  auto task = coord.host->begin(stages_.storage_proxy);
  task.log(lp_.sp_read,
           [&] { return "Reading data for key " + key + " from replica"; });

  // Read from the first live replica.
  int replica = replica_for(key, 0);
  for (int r = 0; r < options_.replication_factor; ++r) {
    const int candidate = replica_for(key, r);
    if (!nodes_[candidate]->crashed && !nodes_[candidate]->known_down) {
      replica = candidate;
      break;
    }
  }
  Message m;
  m.kind = Message::Kind::kRead;
  m.key = key;
  m.ack = sim::OneShot::create(engine_);
  m.result = std::make_shared<std::optional<std::string>>();
  auto ack = m.ack;
  auto result = m.result;
  if (replica == coord.index) {
    read_task(coord, std::move(m));
  } else {
    send_remote(coord, *nodes_[replica], std::move(m));
  }
  const bool ok = co_await ack->wait(options_.read_timeout);
  if (!ok) {
    task.log(lp_.sp_read_timeout,
             [&] { return "Read timed out for key " + key; });
    co_return std::nullopt;
  }
  co_return *result;
}

sim::Process MiniCassandra::read_task(Node& node, Message msg) {
  // Dispatcher-worker stage: one LocalReadRunnable task per query.
  if (node.crashed) co_return;
  auto task = node.host->begin(stages_.local_read);
  task.log(lp_.lr_start,
           [&] { return "Executing single-partition query on " + msg.key; });
  co_await node.host->compute(options_.rpc_cpu);
  const auto r = co_await node.store->get(msg.key);
  if (r.sstables_probed > 0) {
    task.log(lp_.lr_disk, [&] {
      return "Merging data from sstable " + std::to_string(r.sstables_probed);
    });
  }
  task.log(lp_.lr_done, [&] {
    return "Read " + std::to_string(r.value ? 1 : 0) + " live cells";
  });
  *msg.result = r.value;
  msg.ack->fulfill();
}

sim::Process MiniCassandra::memtable_loop(Node& node) {
  for (;;) {
    SAAD_STAGE("Memtable");
    auto done = co_await node.flush_queue->pop();
    if (node.crashed) {
      done->fulfill();
      continue;
    }
    if (node.wedged) {
      // The stuck mutation holds the MemTable switch lock: the flush
      // executor cannot rotate the frozen table either. Flush requests
      // pile up unserved while memory pressure grows (Fig. 9a).
      done->fulfill();
      continue;
    }
    auto task = node.host->begin(stages_.memtable);
    task.log(lp_.mem_enqueue, [&] {
      return "Enqueuing flush of Memtable-" +
             std::to_string(node.store->active_bytes());
    });
    task.log(lp_.mem_write, [&] {
      return "Writing Memtable-" + std::to_string(node.store->active_bytes());
    });
    const bool ok = co_await node.store->flush();
    if (ok) {
      task.log(lp_.mem_done, "Completed flushing; new sstable written");
    } else {
      task.log(lp_.mem_error, "Error writing Memtable to disk; will retry");
      // Retry later; nobody waits on the retry's completion.
      engine_->schedule_in(options_.flush_retry_delay, [this, &node] {
        if (!node.crashed)
          node.flush_queue->push(sim::OneShot::create(engine_));
      });
    }
    done->fulfill();
  }
}

sim::Process MiniCassandra::commitlog_daemon(Node& node) {
  for (;;) {
    co_await engine_->delay(options_.commitlog_period);
    if (node.crashed) continue;
    auto task = node.host->begin(stages_.commit_log);
    task.log(lp_.cl_check, "Checking commit log segments");
    if (node.store->wal().pending_bytes() >= options_.commitlog_segment_bytes) {
      // A segment can only be recycled after the MemTables holding its
      // entries are flushed, so recycling forces a flush of the dirty
      // tables and waits for it. This coupling is why delay-on-flush
      // faults surface as CommitLog performance anomalies (Fig. 9d).
      auto flushed = sim::OneShot::create(engine_);
      node.flush_queue->push(flushed);
      co_await flushed->wait(sec(10));
      co_await node.host->disk().io(faults::Activity::kDiskWrite, 400);
      task.log(lp_.cl_discard, "Discarding obsolete commit log segment");
    }
  }
}

sim::Process MiniCassandra::compaction_daemon(Node& node) {
  for (;;) {
    co_await engine_->delay(options_.compaction_check_period);
    if (node.crashed) continue;
    auto task = node.host->begin(stages_.compaction_manager);
    task.log(lp_.cm_check, [&] {
      return "Checking to see if compaction of " +
             std::to_string(node.store->num_sstables()) +
             " sstables would be useful";
    });
    if (node.store->needs_major_compaction()) {
      task.log(lp_.cm_start, [&] {
        return "Compacting " + std::to_string(node.store->num_sstables()) +
               " sstables";
      });
      const bool ok = co_await node.store->major_compact();
      if (ok) {
        task.log(lp_.cm_done, "Compacted to single sstable");
      } else {
        task.log(lp_.cm_error, "Compaction failed with IO error");
      }
    }
  }
}

sim::Process MiniCassandra::gc_daemon(Node& node) {
  for (;;) {
    co_await engine_->delay(options_.gc_period);
    if (node.crashed) continue;
    auto task = node.host->begin(stages_.gc_inspector);
    const std::size_t pressure =
        node.store->unflushed_bytes() + node.buffered_bytes;
    const UsTime pause = std::min<UsTime>(
        ms(2) + static_cast<UsTime>(pressure / 1024) * 40, ms(500));
    task.log(lp_.gc_minor, [&] {
      return "GC for ParNew: " + std::to_string(to_ms(pause)) + " ms";
    });
    co_await node.host->compute(pause);
    if (pressure > options_.gc_pressure_bytes) {
      task.log(lp_.gc_warn, [&] {
        return "Heap is " + std::to_string(pressure) +
               " full. GC pauses are getting long";
      });
    }
    task.log(lp_.gc_done, "GC inspection complete");
  }
}

sim::Process MiniCassandra::gossip_daemon(Node& node) {
  for (;;) {
    co_await engine_->delay(options_.gossip_period);
    if (node.crashed) continue;
    auto task = node.host->begin(stages_.cassandra_daemon);
    const int peer = static_cast<int>(
        node.host->rng().next_below(nodes_.size()));
    if (peer == node.index) {
      task.log(lp_.cd_ok, "Gossip round complete");
      continue;
    }
    task.log(lp_.cd_gossip, [&] {
      return "Gossiping my state to /10.0.0." + std::to_string(peer);
    });
    co_await network_->transfer(static_cast<std::uint16_t>(node.index));
    if (nodes_[peer]->crashed && !nodes_[peer]->known_down) {
      nodes_[peer]->known_down = true;
      task.log(lp_.cd_down, [&] {
        return "InetAddress /10.0.0." + std::to_string(peer) + " is now DOWN";
      });
    } else {
      task.log(lp_.cd_ok, "Gossip round complete");
    }
  }
}

sim::Process MiniCassandra::hint_daemon(Node& node) {
  for (;;) {
    co_await engine_->delay(options_.hint_replay_period);
    if (node.crashed || node.hints.empty()) continue;
    auto task = node.host->begin(stages_.hinted_handoff);
    const Hint hint = node.hints.front();
    task.log(lp_.hh_start, [&] {
      return "Started hinted handoff for endpoint /10.0.0." +
             std::to_string(hint.target_node);
    });
    Node& target = *nodes_[hint.target_node];
    if (target.crashed || target.known_down) {
      co_await engine_->delay(options_.write_timeout);
      task.log(lp_.hh_timeout, [&] {
        return "Timed out replaying hints to endpoint /10.0.0." +
               std::to_string(hint.target_node);
      });
      continue;  // keep the hint, try again next round
    }
    Message m;
    m.kind = Message::Kind::kHintedMutation;
    m.key = hint.key;
    m.value = hint.value;
    m.ack = sim::OneShot::create(engine_);
    auto ack = m.ack;
    if (hint.target_node == node.index) {
      enqueue_local(node, std::move(m));
    } else {
      send_remote(node, target, std::move(m));
    }
    const bool ok = co_await ack->wait(options_.write_timeout);
    if (ok) {
      node.hints.erase(node.hints.begin());
      task.log(lp_.hh_done, [&] {
        return "Finished hinted handoff of 1 rows to endpoint /10.0.0." +
               std::to_string(hint.target_node);
      });
    } else {
      task.log(lp_.hh_timeout, [&] {
        return "Timed out replaying hints to endpoint /10.0.0." +
               std::to_string(hint.target_node);
      });
    }
  }
}

}  // namespace saad::systems
