// Per-node bundle shared by all three simulated systems: the node's logger
// (wired to its SAAD task execution tracker), its disk, its RNG stream, and
// helpers for starting stage tasks and charging CPU time (with hog slowdown).
#pragma once

#include <memory>

#include "common/rng.h"
#include "core/logger.h"
#include "core/monitor.h"
#include "faults/fault_plane.h"
#include "sim/engine.h"
#include "sim/resource.h"
#include "sim/staged.h"

namespace saad::systems {

class Host {
 public:
  /// Hyper-threaded dual-Xeon testbed nodes (paper §5.2): a handful of
  /// hardware threads, so CPU work queues under contention.
  static constexpr int kCpuSlots = 4;
  static constexpr double kDiskJitterSigma = 0.25;
  static constexpr double kCpuJitterSigma = 0.20;

  Host(sim::Engine* engine, const faults::FaultPlane* plane,
       const core::LogRegistry* registry, core::LogSink* sink,
       core::Level threshold, core::TaskExecutionTracker* tracker,
       core::HostId id, Rng rng)
      : engine_(engine), plane_(plane), id_(id), rng_(rng),
        logger_(registry, sink, threshold),
        disk_(engine, plane, id, rng_.split(), kDiskJitterSigma),
        cpu_(engine, kCpuSlots) {
    logger_.set_tracker(tracker);
    tracker_ = tracker;
  }

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  /// Begin a task of `stage` on this host (tracks + logs through this host's
  /// tracker/logger). May be called with a null tracker for "SAAD off" runs.
  sim::StageTask begin(core::StageId stage) {
    return sim::StageTask(tracker_, &logger_, stage);
  }

  /// CPU-bound work: queues on the host's cores; service time inflated by
  /// active hogs' cycle theft plus natural jitter.
  sim::Task<void> compute(UsTime base) {
    const double factor = plane_->cpu_slowdown(id_, engine_->now());
    const double jitter = rng_.lognormal_median(1.0, kCpuJitterSigma);
    return cpu_.use(
        static_cast<UsTime>(static_cast<double>(base) * factor * jitter));
  }

  /// Background disk-hog service: while dd processes are active on this
  /// host, kernel writeback periodically dumps their dirty pages in bursts
  /// that monopolize the disk. One or two writers are absorbed by the
  /// writeback budget; past that, burst length grows quadratically with the
  /// excess (writeback falls behind) — this is what separates the paper's
  /// medium from high intensity. Burst phases are de-correlated across hosts
  /// so only occasionally do several pipeline hops stall at once. Call once
  /// per host.
  sim::Process run_disk_hog_service(UsTime period = sec(2),
                                    UsTime burst_unit = ms(60)) {
    Rng rng = rng_.split();
    for (;;) {
      co_await engine_->delay(
          period + static_cast<UsTime>(rng.uniform(0, to_sec(period) * 5e5)));
      const int procs = plane_->hog_processes(id_, engine_->now());
      if (procs <= 2) continue;
      const UsTime burst = burst_unit * (procs - 2) * (procs - 2);
      (void)co_await disk_.io(faults::Activity::kDiskWrite, burst);
    }
  }

  sim::Engine& engine() { return *engine_; }
  const faults::FaultPlane& plane() const { return *plane_; }
  core::Logger& logger() { return logger_; }
  sim::Disk& disk() { return disk_; }
  Rng& rng() { return rng_; }
  core::HostId id() const { return id_; }
  UsTime now() const { return engine_->now(); }

 private:
  sim::Engine* engine_;
  const faults::FaultPlane* plane_;
  core::HostId id_;
  Rng rng_;
  core::Logger logger_;
  sim::Disk disk_;
  sim::Resource cpu_;
  core::TaskExecutionTracker* tracker_ = nullptr;
};

}  // namespace saad::systems
