// Plain-text table rendering for bench/example output. The experiment benches
// print the same rows/series the paper's tables and figures report; this keeps
// that output aligned and diffable.
#pragma once

#include <string>
#include <vector>

namespace saad {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string num(std::int64_t v);

  /// Render with column alignment and a header underline.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a sparse timeline like the paper's Fig. 9/10: one row per label,
/// one column per time bucket, with single-character event markers. Later
/// marks overwrite earlier ones in the same cell.
class TimelineChart {
 public:
  TimelineChart(std::size_t num_buckets, std::string title);

  void mark(const std::string& row_label, std::size_t bucket, char marker);

  /// Rows appear in first-mark order; axis is labeled every `tick` buckets.
  std::string to_string(std::size_t tick = 10) const;

 private:
  std::size_t num_buckets_;
  std::string title_;
  std::vector<std::string> labels_;
  std::vector<std::string> rows_;
};

}  // namespace saad
