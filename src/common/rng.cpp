#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace saad {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift; the slight bias for huge bounds is irrelevant
  // for workload generation and keeps this branch-free.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) {
  // Marsaglia polar method; discards the second variate for simplicity.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return mu + sigma * u * std::sqrt(-2.0 * std::log(s) / s);
}

double Rng::lognormal_median(double median, double sigma) {
  assert(median > 0.0);
  return median * std::exp(normal(0.0, sigma));
}

Rng Rng::split() { return Rng(next_u64()); }

namespace {
double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

Zipfian::Zipfian(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n > 0);
  zetan_ = zeta(n, theta);
  zeta2theta_ = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t Zipfian::next(Rng& rng) const {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

std::size_t pick_cumulative(Rng& rng, const std::vector<double>& cumulative) {
  assert(!cumulative.empty() && cumulative.back() > 0.0);
  const double x = rng.next_double() * cumulative.back();
  std::size_t lo = 0, hi = cumulative.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cumulative[mid] <= x)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace saad
