// Simple value recorders used by benches and the workload generator:
//  - Histogram: fixed-resolution log-scale histogram for latency percentiles
//    without storing every sample.
//  - WindowedCounter: per-fixed-window event counts (e.g. throughput per 10 s).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"

namespace saad {

/// Log-scale histogram over positive int64 values (e.g. latencies in us).
/// Buckets are <= 2% wide; percentile error is bounded by the bucket width.
class Histogram {
 public:
  Histogram();

  void record(std::int64_t value);
  void merge(const Histogram& other);
  void clear();

  std::uint64_t count() const { return count_; }
  double mean() const;
  std::int64_t min() const { return count_ ? min_ : 0; }
  std::int64_t max() const { return count_ ? max_ : 0; }

  /// Value at quantile q in [0, 1]; 0 when empty.
  std::int64_t percentile(double q) const;

 private:
  static std::size_t bucket_for(std::int64_t value);
  static std::int64_t bucket_upper(std::size_t bucket);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Counts events into fixed-width time windows; used for throughput series.
class WindowedCounter {
 public:
  explicit WindowedCounter(UsTime window_width) : width_(window_width) {}

  void record(UsTime at, std::uint64_t n = 1);

  UsTime window_width() const { return width_; }
  std::size_t num_windows() const { return counts_.size(); }
  std::uint64_t count_in(std::size_t window) const;

  /// Events per second in the given window.
  double rate_in(std::size_t window) const;

  /// Per-window rates for the whole series.
  std::vector<double> rates() const;

 private:
  UsTime width_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace saad
