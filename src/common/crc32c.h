// CRC32C (Castagnoli polynomial, reflected). Used by the framed trace
// format v2 to checksum each block of synopses; picked over plain CRC32
// because it is the de-facto storage checksum (iSCSI, ext4, LevelDB WAL)
// and has hardware support on most targets if we ever want it.
#pragma once

#include <cstdint>
#include <span>

namespace saad {

/// CRC32C of `data`, chained onto `crc` (pass the previous return value to
/// checksum a stream incrementally; 0 starts a fresh sum).
std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t crc = 0);

}  // namespace saad
