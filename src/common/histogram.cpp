#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace saad {

namespace {
// 64 orders-of-two, 32 sub-buckets each: ~3% relative resolution.
constexpr std::size_t kSubBuckets = 32;
constexpr std::size_t kNumBuckets = 64 * kSubBuckets;
}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

std::size_t Histogram::bucket_for(std::int64_t value) {
  if (value < 1) value = 1;
  const auto v = static_cast<std::uint64_t>(value);
  const int msb = 63 - __builtin_clzll(v);
  std::size_t sub = 0;
  if (msb >= 5) {
    sub = (v >> (msb - 5)) & (kSubBuckets - 1);
  } else {
    sub = (v << (5 - msb)) & (kSubBuckets - 1);
  }
  const std::size_t b = static_cast<std::size_t>(msb) * kSubBuckets + sub;
  return std::min(b, kNumBuckets - 1);
}

std::int64_t Histogram::bucket_upper(std::size_t bucket) {
  const std::size_t msb = bucket / kSubBuckets;
  const std::size_t sub = bucket % kSubBuckets;
  if (msb < 5) {
    // Low buckets degenerate; return a small exact-ish value.
    return static_cast<std::int64_t>((1ull << msb) + sub);
  }
  const std::uint64_t base = 1ull << msb;
  const std::uint64_t step = base / kSubBuckets;
  return static_cast<std::int64_t>(base + (sub + 1) * step - 1);
}

void Histogram::record(std::int64_t value) {
  buckets_[bucket_for(value)]++;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  sum_ += static_cast<double>(value);
  count_++;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (other.count_) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0;
}

double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::int64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::clamp(bucket_upper(i), min_, max_);
    }
  }
  return max_;
}

void WindowedCounter::record(UsTime at, std::uint64_t n) {
  assert(at >= 0 && width_ > 0);
  const auto w = static_cast<std::size_t>(at / width_);
  if (w >= counts_.size()) counts_.resize(w + 1, 0);
  counts_[w] += n;
}

std::uint64_t WindowedCounter::count_in(std::size_t window) const {
  return window < counts_.size() ? counts_[window] : 0;
}

double WindowedCounter::rate_in(std::size_t window) const {
  return static_cast<double>(count_in(window)) / to_sec(width_);
}

std::vector<double> WindowedCounter::rates() const {
  std::vector<double> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) out[i] = rate_in(i);
  return out;
}

}  // namespace saad
