// Time units used across the SAAD reproduction.
//
// All timestamps and durations are signed 64-bit microsecond counts. A single
// scalar type keeps virtual (simulated) and real clocks interchangeable and
// makes synopsis encoding trivially portable.
#pragma once

#include <cstdint>

namespace saad {

/// Microseconds since an arbitrary epoch (simulation start or process start).
using UsTime = std::int64_t;

inline constexpr UsTime kUsPerMs = 1000;
inline constexpr UsTime kUsPerSec = 1000 * 1000;
inline constexpr UsTime kUsPerMin = 60 * kUsPerSec;

constexpr UsTime ms(std::int64_t v) { return v * kUsPerMs; }
constexpr UsTime sec(std::int64_t v) { return v * kUsPerSec; }
constexpr UsTime minutes(std::int64_t v) { return v * kUsPerMin; }

constexpr double to_ms(UsTime t) { return static_cast<double>(t) / kUsPerMs; }
constexpr double to_sec(UsTime t) { return static_cast<double>(t) / kUsPerSec; }
constexpr double to_min(UsTime t) { return static_cast<double>(t) / kUsPerMin; }

}  // namespace saad
