#include "common/crc32c.h"

#include <array>

namespace saad {

namespace {

// Reflected CRC32C table for the Castagnoli polynomial 0x1EDC6F41
// (reversed: 0x82F63B78), built once at static-init time.
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t crc) {
  std::uint32_t c = ~crc;
  for (const std::uint8_t byte : data)
    c = kTable[(c ^ byte) & 0xFF] ^ (c >> 8);
  return ~c;
}

}  // namespace saad
