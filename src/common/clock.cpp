#include "common/clock.h"

#include <chrono>

namespace saad {

namespace {
UsTime steady_now_us() {
  using namespace std::chrono;
  return duration_cast<microseconds>(steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

RealClock::RealClock() : origin_(steady_now_us()) {}

UsTime RealClock::now() const { return steady_now_us() - origin_; }

}  // namespace saad
