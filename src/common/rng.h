// Deterministic random number generation and the distributions used by the
// workload generator and simulator.
//
// We ship our own small PRNG (xoshiro256**, seeded via SplitMix64) instead of
// <random> engines so that experiment benches are bit-reproducible across
// standard-library implementations. Distribution helpers are methods on Rng.
#pragma once

#include <cstdint>
#include <vector>

namespace saad {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA'14).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) using Lemire's unbiased multiply-shift.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Marsaglia polar method.
  double normal(double mu = 0.0, double sigma = 1.0);

  /// Log-normal parameterized by the *resulting* median and sigma of the
  /// underlying normal. Service times in the simulator use this: heavy right
  /// tail, strictly positive.
  double lognormal_median(double median, double sigma);

  /// Fork a statistically independent generator (for per-component streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Zipfian distribution over [0, n) with skew theta (YCSB uses 0.99),
/// implemented with the Gray et al. rejection-free method as in YCSB's
/// ZipfianGenerator. Deterministic given the Rng passed to next().
class Zipfian {
 public:
  Zipfian(std::uint64_t n, double theta = 0.99);

  std::uint64_t next(Rng& rng) const;
  std::uint64_t n() const { return n_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

/// Draw an index from a discrete distribution given cumulative weights.
/// `cumulative` must be non-empty, non-decreasing, with cumulative.back() > 0.
std::size_t pick_cumulative(Rng& rng, const std::vector<double>& cumulative);

}  // namespace saad
