#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace saad {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::num(std::int64_t v) { return std::to_string(v); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "  " << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

TimelineChart::TimelineChart(std::size_t num_buckets, std::string title)
    : num_buckets_(num_buckets), title_(std::move(title)) {}

void TimelineChart::mark(const std::string& row_label, std::size_t bucket,
                         char marker) {
  if (bucket >= num_buckets_) return;
  std::size_t idx = labels_.size();
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == row_label) {
      idx = i;
      break;
    }
  }
  if (idx == labels_.size()) {
    labels_.push_back(row_label);
    rows_.emplace_back(num_buckets_, '.');
  }
  rows_[idx][bucket] = marker;
}

std::string TimelineChart::to_string(std::size_t tick) const {
  std::size_t label_w = 0;
  for (const auto& l : labels_) label_w = std::max(label_w, l.size());

  std::ostringstream out;
  out << title_ << '\n';
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    out << labels_[i] << std::string(label_w - labels_[i].size(), ' ') << " |"
        << rows_[i] << "|\n";
  }
  // Axis with tick marks.
  out << std::string(label_w, ' ') << " +";
  for (std::size_t b = 0; b < num_buckets_; ++b)
    out << (tick != 0 && b % tick == 0 ? '+' : '-');
  out << "+\n";
  out << std::string(label_w, ' ') << "  ";
  std::string axis(num_buckets_ + 1, ' ');
  for (std::size_t b = 0; tick != 0 && b < num_buckets_; b += tick) {
    const std::string t = std::to_string(b);
    for (std::size_t k = 0; k < t.size() && b + k < axis.size(); ++k)
      axis[b + k] = t[k];
  }
  out << axis << '\n';
  return out.str();
}

}  // namespace saad
