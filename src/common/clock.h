// Clock abstraction: the SAAD tracker and analyzer are written against this
// interface so the same code runs on real threads (overhead benchmark) and on
// the deterministic discrete-event simulator (all statistical experiments).
#pragma once

#include <atomic>

#include "common/time.h"

namespace saad {

/// Monotonic time source in microseconds.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual UsTime now() const = 0;
};

/// Wall clock backed by std::chrono::steady_clock. Thread-safe.
class RealClock final : public Clock {
 public:
  RealClock();
  UsTime now() const override;

 private:
  UsTime origin_;
};

/// Manually advanced clock for tests and the simulator. Thread-safe: reads
/// and writes are atomic, though simulation code advances it single-threaded.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(UsTime start = 0) : now_(start) {}

  UsTime now() const override { return now_.load(std::memory_order_relaxed); }
  void set(UsTime t) { now_.store(t, std::memory_order_relaxed); }
  void advance(UsTime dt) { now_.fetch_add(dt, std::memory_order_relaxed); }

 private:
  std::atomic<UsTime> now_;
};

}  // namespace saad
