#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <optional>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"

namespace saad::net {

namespace {

// Process-wide server-side metrics (all SynopsisServer instances accumulate
// into the same families — the Prometheus model, matching channel.cpp).
struct ServerMetrics {
  obs::Counter& connections;
  obs::Counter& connections_rejected;
  obs::Counter& sessions;
  obs::Counter& frames;
  obs::Counter& batches;
  obs::Counter& synopses;
  obs::Counter& published;
  obs::Counter& bytes;
  obs::Counter& heartbeats;
  obs::Counter& goodbyes;
  obs::Counter& goodbye_mismatches;
  obs::Counter& crc_rejects;
  obs::Counter& magic_rejects;
  obs::Counter& frame_rejects;
  obs::Counter& payload_rejects;
  obs::Counter& truncated;
  obs::Counter& shed_batches;
  obs::Counter& shed_synopses;
  obs::Gauge& active;
  obs::Gauge& pending;

  ServerMetrics()
      : connections(obs::MetricsRegistry::global().counter(
            "saad_net_connections_total", "Client connections accepted.")),
        connections_rejected(obs::MetricsRegistry::global().counter(
            "saad_net_connections_rejected_total",
            "Connections refused because max_connections was reached.")),
        sessions(obs::MetricsRegistry::global().counter(
            "saad_net_sessions_total",
            "Hello-completed connections that have ended (goodbye or "
            "disconnect).")),
        frames(obs::MetricsRegistry::global().counter(
            "saad_net_frames_total",
            "Valid SAADNET1 frames decoded, all types.")),
        batches(obs::MetricsRegistry::global().counter(
            "saad_net_batches_total", "Batch frames decoded.")),
        synopses(obs::MetricsRegistry::global().counter(
            "saad_net_synopses_total",
            "Synopses decoded from batch frames.")),
        published(obs::MetricsRegistry::global().counter(
            "saad_net_published_total",
            "Synopses published into the analyzer channel.")),
        bytes(obs::MetricsRegistry::global().counter(
            "saad_net_bytes_total", "Raw bytes received from clients.")),
        heartbeats(obs::MetricsRegistry::global().counter(
            "saad_net_heartbeats_total", "Heartbeat frames received.")),
        goodbyes(obs::MetricsRegistry::global().counter(
            "saad_net_goodbyes_total", "Goodbye frames received.")),
        goodbye_mismatches(obs::MetricsRegistry::global().counter(
            "saad_net_goodbye_mismatches_total",
            "Goodbye frames whose synopsis count disagreed with what the "
            "connection delivered.")),
        crc_rejects(obs::MetricsRegistry::global().counter(
            "saad_net_crc_rejects_total",
            "Connections dropped for a frame CRC32C mismatch.")),
        magic_rejects(obs::MetricsRegistry::global().counter(
            "saad_net_magic_rejects_total",
            "Connections dropped for a bad SAADNET1 stream prologue.")),
        frame_rejects(obs::MetricsRegistry::global().counter(
            "saad_net_frame_rejects_total",
            "Connections dropped for framing damage (bad type byte or "
            "oversized length prefix).")),
        payload_rejects(obs::MetricsRegistry::global().counter(
            "saad_net_payload_rejects_total",
            "Connections dropped for an undecodable payload, a non-hello "
            "first frame, or an unsupported protocol version.")),
        truncated(obs::MetricsRegistry::global().counter(
            "saad_net_truncated_total",
            "Connections that disconnected mid-frame.")),
        shed_batches(obs::MetricsRegistry::global().counter(
            "saad_net_shed_batches_total",
            "Oldest pending batches shed under overload.")),
        shed_synopses(obs::MetricsRegistry::global().counter(
            "saad_net_shed_synopses_total",
            "Synopses lost to overload sheds.")),
        active(obs::MetricsRegistry::global().gauge(
            "saad_net_connections_active", "Currently open connections.")),
        pending(obs::MetricsRegistry::global().gauge(
            "saad_net_pending_batches",
            "Decoded batches waiting to be published.")) {}

  static ServerMetrics& get() {
    static ServerMetrics* metrics = new ServerMetrics();
    return *metrics;
  }
};

void close_quietly(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

void detail::register_server_metrics() { ServerMetrics::get(); }

struct SynopsisServer::Connection {
  int fd = -1;
  FrameDecoder decoder;  // expects the stream magic
  bool got_hello = false;
  std::uint64_t synopses = 0;  // decoded on this connection
};

struct SynopsisServer::Impl {
  // A decoded batch waiting to be published, with the span token the tracer
  // issued at decode (0 = batch not sampled).
  struct PendingBatch {
    std::vector<core::Synopsis> synopses;
    std::uint64_t span_token = 0;
  };

  int listen_fd = -1;
  int wake_rd = -1, wake_wr = -1;  // self-pipe: stop() wakes poll()
  std::vector<std::unique_ptr<Connection>> connections;
  std::deque<PendingBatch> pending;  // decoded, unpublished
  std::vector<std::uint8_t> recv_buf;
  std::optional<core::SynopsisChannel::Producer> producer;

  // stats() is cross-thread; the I/O thread updates these relaxed.
  std::atomic<std::uint64_t> connections_total{0}, connections_rejected{0},
      frames{0}, batches{0}, synopses{0}, bytes{0}, heartbeats{0}, goodbyes{0},
      goodbye_mismatches{0}, crc_rejects{0}, magic_rejects{0}, frame_rejects{0},
      payload_rejects{0}, truncated{0}, shed_batches{0}, shed_synopses{0};
  std::atomic<std::size_t> pending_batches{0};
};

SynopsisServer::SynopsisServer(core::SynopsisChannel* channel, Options options)
    : channel_(channel),
      options_(std::move(options)),
      impl_(std::make_unique<Impl>()) {
  ServerMetrics::get();  // register families even if start() never runs
  impl_->recv_buf.resize(64 * 1024);
}

SynopsisServer::~SynopsisServer() { stop(); }

bool SynopsisServer::start() {
  if (running()) return true;
  Impl& im = *impl_;

  im.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (im.listen_fd < 0) return false;
  const int one = 1;
  ::setsockopt(im.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1 ||
      ::bind(im.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(im.listen_fd, 64) != 0 || !set_nonblocking(im.listen_fd)) {
    close_quietly(im.listen_fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(im.listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    close_quietly(im.listen_fd);
    return false;
  }
  port_ = ntohs(addr.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    close_quietly(im.listen_fd);
    return false;
  }
  im.wake_rd = pipe_fds[0];
  im.wake_wr = pipe_fds[1];
  set_nonblocking(im.wake_rd);

  im.producer.emplace(channel_->producer());
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { io_loop(); });
  return true;
}

void SynopsisServer::stop() {
  if (!running()) return;
  stopping_.store(true, std::memory_order_release);
  const char byte = 0;
  [[maybe_unused]] const auto n = ::write(impl_->wake_wr, &byte, 1);
  if (thread_.joinable()) thread_.join();
  // The fds are closed here, not in io_loop(): a concurrent stop() caller
  // reads wake_wr, so only the thread that joined may invalidate them.
  close_quietly(impl_->listen_fd);
  close_quietly(impl_->wake_rd);
  close_quietly(impl_->wake_wr);
  running_.store(false, std::memory_order_release);
}

void SynopsisServer::ack(std::uint64_t n) {
  acked_.fetch_add(n, std::memory_order_relaxed);
}

bool SynopsisServer::drained() const {
  return impl_->pending_batches.load(std::memory_order_acquire) == 0;
}

SynopsisServer::Stats SynopsisServer::stats() const {
  const Impl& im = *impl_;
  Stats s;
  s.connections = im.connections_total.load(std::memory_order_relaxed);
  s.connections_rejected =
      im.connections_rejected.load(std::memory_order_relaxed);
  s.sessions = sessions_.load(std::memory_order_relaxed);
  s.frames = im.frames.load(std::memory_order_relaxed);
  s.batches = im.batches.load(std::memory_order_relaxed);
  s.synopses = im.synopses.load(std::memory_order_relaxed);
  s.published = published_.load(std::memory_order_relaxed);
  s.bytes = im.bytes.load(std::memory_order_relaxed);
  s.heartbeats = im.heartbeats.load(std::memory_order_relaxed);
  s.goodbyes = im.goodbyes.load(std::memory_order_relaxed);
  s.goodbye_mismatches = im.goodbye_mismatches.load(std::memory_order_relaxed);
  s.crc_rejects = im.crc_rejects.load(std::memory_order_relaxed);
  s.magic_rejects = im.magic_rejects.load(std::memory_order_relaxed);
  s.frame_rejects = im.frame_rejects.load(std::memory_order_relaxed);
  s.payload_rejects = im.payload_rejects.load(std::memory_order_relaxed);
  s.truncated = im.truncated.load(std::memory_order_relaxed);
  s.shed_batches = im.shed_batches.load(std::memory_order_relaxed);
  s.shed_synopses = im.shed_synopses.load(std::memory_order_relaxed);
  return s;
}

void SynopsisServer::io_loop() {
  Impl& im = *impl_;
  auto& metrics = ServerMetrics::get();

  auto bump = [](std::atomic<std::uint64_t>& stat, obs::Counter& counter,
                 std::uint64_t n = 1) {
    stat.fetch_add(n, std::memory_order_relaxed);
    counter.inc(n);
  };

  // Closes a connection and attributes the end to the right counters.
  auto close_connection = [&](std::size_t index, bool count_truncation) {
    Connection& conn = *im.connections[index];
    if (count_truncation && conn.decoder.mid_frame())
      bump(im.truncated, metrics.truncated);
    if (conn.got_hello) {
      sessions_.fetch_add(1, std::memory_order_relaxed);
      metrics.sessions.inc();
    }
    close_quietly(conn.fd);
    im.connections.erase(im.connections.begin() +
                         static_cast<std::ptrdiff_t>(index));
    active_.store(im.connections.size(), std::memory_order_relaxed);
    metrics.active.set(static_cast<std::int64_t>(im.connections.size()));
  };

  // Attributes a wire decode error to its reject family.
  auto count_reject = [&](WireError error) {
    switch (error) {
      case WireError::kBadCrc:
        bump(im.crc_rejects, metrics.crc_rejects);
        break;
      case WireError::kBadMagic:
        bump(im.magic_rejects, metrics.magic_rejects);
        break;
      case WireError::kBadType:
      case WireError::kOversized:
        bump(im.frame_rejects, metrics.frame_rejects);
        break;
      default:
        bump(im.payload_rejects, metrics.payload_rejects);
        break;
    }
  };

  // Publishes pending batches while under the outstanding watermark. The
  // Producer is bound to one channel shard, so publish order is FIFO.
  auto publish_ready = [&] {
    while (!im.pending.empty()) {
      const std::uint64_t batch_size = im.pending.front().synopses.size();
      if (outstanding() + batch_size > options_.max_outstanding_synopses &&
          batch_size <= options_.max_outstanding_synopses)
        break;  // wait for acks (oversized-vs-watermark batches pass anyway)
      // Stamp the publish hop before the first push: once a synopsis is in
      // the channel the consumer may dequeue it, and the span's publish
      // timestamp must precede its dequeue timestamp.
      obs::SpanTracer::global().on_published(
          im.pending.front().span_token,
          published_.load(std::memory_order_relaxed) + batch_size);
      for (const auto& s : im.pending.front().synopses) im.producer->push(s);
      im.producer->flush();
      im.pending.pop_front();
      published_.fetch_add(batch_size, std::memory_order_relaxed);
      metrics.published.inc(batch_size);
    }
    im.pending_batches.store(im.pending.size(), std::memory_order_release);
    metrics.pending.set(static_cast<std::int64_t>(im.pending.size()));
  };

  // Queues a decoded batch, shedding the oldest when full.
  auto enqueue_batch = [&](std::vector<core::Synopsis>&& batch,
                           std::uint64_t span_token) {
    if (batch.empty()) return;
    while (im.pending.size() >= options_.max_pending_batches) {
      bump(im.shed_batches, metrics.shed_batches);
      bump(im.shed_synopses, metrics.shed_synopses,
           im.pending.front().synopses.size());
      obs::SpanTracer::global().on_shed(im.pending.front().span_token);
      im.pending.pop_front();
    }
    im.pending.push_back({std::move(batch), span_token});
    im.pending_batches.store(im.pending.size(), std::memory_order_release);
  };

  // Handles every completed frame on a connection. Returns false when the
  // connection must be dropped (protocol violation or goodbye).
  auto handle_frames = [&](Connection& conn) -> bool {
    Frame frame;
    while (conn.decoder.next(frame)) {
      if (!conn.got_hello && frame.type != FrameType::kHello) {
        count_reject(WireError::kNotHello);
        return false;
      }
      bump(im.frames, metrics.frames);
      switch (frame.type) {
        case FrameType::kHello: {
          Hello hello;
          if (!decode_hello(frame.payload, hello)) {
            count_reject(WireError::kBadPayload);
            return false;
          }
          if (hello.version != kProtocolVersion) {
            count_reject(WireError::kBadVersion);
            return false;
          }
          conn.got_hello = true;
          break;
        }
        case FrameType::kBatch: {
          std::vector<core::Synopsis> batch;
          if (!decode_batch(frame.payload, batch)) {
            count_reject(WireError::kBadPayload);
            return false;
          }
          bump(im.batches, metrics.batches);
          bump(im.synopses, metrics.synopses, batch.size());
          conn.synopses += batch.size();
          const std::uint64_t span_token =
              obs::SpanTracer::global().on_batch_decoded(batch.size());
          enqueue_batch(std::move(batch), span_token);
          break;
        }
        case FrameType::kHeartbeat:
          bump(im.heartbeats, metrics.heartbeats);
          break;
        case FrameType::kGoodbye: {
          std::uint64_t claimed = 0;
          if (!decode_goodbye(frame.payload, claimed)) {
            count_reject(WireError::kBadPayload);
            return false;
          }
          bump(im.goodbyes, metrics.goodbyes);
          if (claimed != conn.synopses)
            bump(im.goodbye_mismatches, metrics.goodbye_mismatches);
          return false;  // clean end of session
        }
      }
    }
    return true;
  };

  std::vector<pollfd> fds;
  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({im.wake_rd, POLLIN, 0});
    fds.push_back({im.listen_fd, POLLIN, 0});
    for (const auto& conn : im.connections)
      fds.push_back({conn->fd, POLLIN, 0});

    const int rc = ::poll(fds.data(), fds.size(), options_.poll_interval_ms);
    if (rc < 0 && errno != EINTR) break;

    // Accept new connections (drain the backlog).
    if (fds[1].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(im.listen_fd, nullptr, nullptr);
        if (fd < 0) break;
        if (im.connections.size() >= options_.max_connections) {
          bump(im.connections_rejected, metrics.connections_rejected);
          ::close(fd);
          continue;
        }
        set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        im.connections.push_back(std::move(conn));
        bump(im.connections_total, metrics.connections);
        active_.store(im.connections.size(), std::memory_order_relaxed);
        metrics.active.set(static_cast<std::int64_t>(im.connections.size()));
      }
    }

    // Service readable connections. fds[i + 2] belongs to connections[i] as
    // polled; iterate backwards so close_connection()'s erase cannot shift
    // a not-yet-visited entry.
    const std::size_t polled = fds.size() - 2;
    for (std::size_t i = polled; i-- > 0;) {
      if (i >= im.connections.size()) continue;  // closed by accept path? no — safety
      const short revents = fds[i + 2].revents;
      if (revents == 0) continue;
      Connection& conn = *im.connections[i];
      bool drop = false, truncation = true;
      for (;;) {
        const ssize_t n =
            ::recv(conn.fd, im.recv_buf.data(), im.recv_buf.size(), 0);
        if (n > 0) {
          bump(im.bytes, metrics.bytes, static_cast<std::uint64_t>(n));
          if (!conn.decoder.feed(
                  std::span(im.recv_buf.data(), static_cast<std::size_t>(n)))) {
            count_reject(conn.decoder.error());
            drop = true;
            truncation = false;  // decode damage, not a torn disconnect
            break;
          }
          if (!handle_frames(conn)) {
            drop = true;
            truncation = false;
            break;
          }
          continue;
        }
        if (n == 0) {  // peer closed
          drop = true;
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        drop = true;  // hard socket error
        break;
      }
      if (drop) close_connection(i, truncation);
    }

    publish_ready();
  }

  // Shutdown: close everything, then publish what was already decoded so no
  // accepted data is stranded invisibly between the wire and the channel.
  while (!im.connections.empty())
    close_connection(im.connections.size() - 1, true);
  options_.max_outstanding_synopses = UINT64_MAX;
  publish_ready();
  im.producer->flush();
  im.producer.reset();
  // listen/wake fds stay open here; stop() closes them after the join so a
  // concurrent stop() can still write its wake byte into a live pipe.
}

}  // namespace saad::net
