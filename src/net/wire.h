// Wire protocol for live synopsis ingestion (paper §3, Fig. 2: instrumented
// servers stream ~48-byte synopses to a *centralized* analyzer).
//
// A connection is a byte stream that starts with the 8-byte protocol magic
// "SAADNET1" and then carries back-to-back frames:
//
//   +------+-------------+---------+------------------+
//   | type | payload_len | crc32c  | payload          |
//   | 1 B  | u32 LE      | u32 LE  | payload_len B    |
//   +------+-------------+---------+------------------+
//
// The CRC32C covers the type byte and the payload, so a flipped type or a
// corrupted body are both detected; the length field is validated against
// kMaxFramePayload before any allocation, so a corrupted length can never
// cause an oversized buffer. Frame types:
//
//   kHello      first frame on every connection: varint protocol version +
//               varint host hint + varint flags. A version the receiver does
//               not speak rejects the connection (there is nothing to resync
//               to — framing itself is versioned).
//   kBatch      varint record count + that many varint-encoded synopses (the
//               same codec the channel and the trace file use).
//   kHeartbeat  empty payload; keeps idle connections distinguishable from
//               dead ones.
//   kGoodbye    varint synopses sent *on this connection* (not the sender's
//               lifetime total — after an outage + reconnect the receiver
//               only saw this connection), so the receiver can audit the
//               session before the FIN.
//
// Damage policy: TCP guarantees ordered delivery, so framing damage means a
// corrupted or malicious peer, not reordering. After any decode error the
// stream is poisoned — the decoder latches the error and the server drops
// the connection (and counts it), rather than guessing where the next frame
// boundary might be.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "core/ids.h"
#include "core/synopsis.h"

namespace saad::net {

/// Stream prologue: sent once, before the first frame.
inline constexpr std::uint8_t kStreamMagic[8] = {'S', 'A', 'A', 'D',
                                                 'N', 'E', 'T', '1'};
inline constexpr std::uint64_t kProtocolVersion = 1;

/// Upper bound on a frame payload; a length prefix beyond this is framing
/// damage (and keeps a hostile peer from making the receiver allocate GBs).
inline constexpr std::size_t kMaxFramePayload = 4 * 1024 * 1024;

/// Fixed frame header size: type + payload_len + crc32c.
inline constexpr std::size_t kFrameHeaderBytes = 1 + 4 + 4;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kBatch = 2,
  kHeartbeat = 3,
  kGoodbye = 4,
};

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::vector<std::uint8_t> payload;
};

struct Hello {
  std::uint64_t version = kProtocolVersion;
  core::HostId host = 0;  // advisory: the sender's host id, 0 if unknown
  std::uint64_t flags = 0;
};

/// Appends one framed message (header + payload) to `out`.
void encode_frame(FrameType type, std::span<const std::uint8_t> payload,
                  std::vector<std::uint8_t>& out);

/// Payload builders/parsers. Parsers return false on malformed payloads
/// (which poison the connection exactly like framing damage).
void encode_hello(const Hello& hello, std::vector<std::uint8_t>& out);
bool decode_hello(std::span<const std::uint8_t> payload, Hello& out);

void encode_batch(std::span<const core::Synopsis> batch,
                  std::vector<std::uint8_t>& out);
bool decode_batch(std::span<const std::uint8_t> payload,
                  std::vector<core::Synopsis>& out);

void encode_goodbye(std::uint64_t total_synopses,
                    std::vector<std::uint8_t>& out);
bool decode_goodbye(std::span<const std::uint8_t> payload,
                    std::uint64_t& total_synopses);

/// Why a stream was rejected; one enumerator per saad_net_*_rejects metric.
enum class WireError : std::uint8_t {
  kNone = 0,
  kBadMagic,     // prologue is not "SAADNET1"
  kBadType,      // frame type byte outside the enum
  kOversized,    // payload_len > kMaxFramePayload
  kBadCrc,       // checksum mismatch on a complete frame
  kBadPayload,   // frame intact but its payload failed to parse
  kNotHello,     // first frame was not kHello
  kBadVersion,   // hello carried a version we do not speak
};
const char* to_string(WireError error);

/// Incremental frame reassembler: feed() raw socket bytes, next() pops
/// completed frames. Tolerates arbitrary fragmentation (one byte at a time
/// is fine). After the first error the decoder is poisoned: feed() ignores
/// further input and no new frames are sliced — the caller must drop the
/// connection. Frames that completed *before* the damage stay poppable:
/// they were validly framed and CRC-checked, and the server has typically
/// already acted on them.
class FrameDecoder {
 public:
  /// expect_magic: require the "SAADNET1" prologue (the server side).
  explicit FrameDecoder(bool expect_magic = true);

  /// Buffers `data` and slices out any completed frames. Returns false once
  /// the stream is poisoned (error() says why).
  bool feed(std::span<const std::uint8_t> data);

  /// Pops the oldest completed frame; false when none is pending.
  bool next(Frame& out);

  WireError error() const { return error_; }
  bool failed() const { return error_ != WireError::kNone; }

  /// True while the buffer holds a partial prologue/header/frame — a
  /// disconnect now is a mid-frame truncation.
  bool mid_frame() const { return !failed() && !buffer_.empty(); }

  /// Bytes currently buffered (bounded by one frame + one header).
  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  bool magic_pending_;
  WireError error_ = WireError::kNone;
  std::vector<std::uint8_t> buffer_;
  std::deque<Frame> ready_;
};

/// Registers every saad_net_* and saad_http_* metric family in the global
/// registry (synopsis server, client, and the admin listener), so snapshots
/// taken by tools that link the net layer always expose the full set,
/// zero-valued when unused. Mirrors core::register_pipeline_metrics()
/// (core/telemetry.h).
void register_net_metrics();

namespace detail {
void register_server_metrics();
void register_client_metrics();
void register_http_metrics();  // defined in http.cpp
}  // namespace detail

}  // namespace saad::net
