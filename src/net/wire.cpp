#include "net/wire.h"

#include <cstring>

#include "common/crc32c.h"
#include "core/varint.h"

namespace saad::net {

namespace {

void put_u32le(std::uint32_t v, std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

/// CRC over the type byte then the payload, so both are covered.
std::uint32_t frame_crc(FrameType type, std::span<const std::uint8_t> payload) {
  const auto type_byte = static_cast<std::uint8_t>(type);
  const std::uint32_t seed = crc32c(std::span(&type_byte, 1));
  return crc32c(payload, seed);
}

bool valid_type(std::uint8_t byte) {
  return byte >= static_cast<std::uint8_t>(FrameType::kHello) &&
         byte <= static_cast<std::uint8_t>(FrameType::kGoodbye);
}

}  // namespace

const char* to_string(WireError error) {
  switch (error) {
    case WireError::kNone: return "none";
    case WireError::kBadMagic: return "bad-magic";
    case WireError::kBadType: return "bad-type";
    case WireError::kOversized: return "oversized";
    case WireError::kBadCrc: return "bad-crc";
    case WireError::kBadPayload: return "bad-payload";
    case WireError::kNotHello: return "not-hello";
    case WireError::kBadVersion: return "bad-version";
  }
  return "unknown";
}

void encode_frame(FrameType type, std::span<const std::uint8_t> payload,
                  std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32le(static_cast<std::uint32_t>(payload.size()), out);
  put_u32le(frame_crc(type, payload), out);
  out.insert(out.end(), payload.begin(), payload.end());
}

void encode_hello(const Hello& hello, std::vector<std::uint8_t>& out) {
  core::put_varint(hello.version, out);
  core::put_varint(hello.host, out);
  core::put_varint(hello.flags, out);
}

bool decode_hello(std::span<const std::uint8_t> payload, Hello& out) {
  std::uint64_t host = 0;
  if (!core::get_varint(payload, out.version)) return false;
  if (!core::get_varint(payload, host)) return false;
  if (!core::get_varint(payload, out.flags)) return false;
  if (host > 0xFFFF || !payload.empty()) return false;
  out.host = static_cast<core::HostId>(host);
  return true;
}

void encode_batch(std::span<const core::Synopsis> batch,
                  std::vector<std::uint8_t>& out) {
  core::put_varint(batch.size(), out);
  for (const auto& s : batch) core::encode_synopsis(s, out);
}

bool decode_batch(std::span<const std::uint8_t> payload,
                  std::vector<core::Synopsis>& out) {
  std::uint64_t count = 0;
  if (!core::get_varint(payload, count)) return false;
  // Each synopsis encodes to >= 6 bytes; a count beyond what the payload
  // could possibly hold is damage, caught before reserving anything.
  if (count > payload.size()) return false;
  out.reserve(out.size() + count);
  for (std::uint64_t i = 0; i < count; ++i) {
    core::Synopsis s;
    if (!core::decode_synopsis(payload, s)) return false;
    out.push_back(std::move(s));
  }
  return payload.empty();
}

void encode_goodbye(std::uint64_t total_synopses,
                    std::vector<std::uint8_t>& out) {
  core::put_varint(total_synopses, out);
}

bool decode_goodbye(std::span<const std::uint8_t> payload,
                    std::uint64_t& total_synopses) {
  return core::get_varint(payload, total_synopses) && payload.empty();
}

// ---- FrameDecoder ----------------------------------------------------------

FrameDecoder::FrameDecoder(bool expect_magic) : magic_pending_(expect_magic) {}

bool FrameDecoder::feed(std::span<const std::uint8_t> data) {
  if (failed()) return false;
  buffer_.insert(buffer_.end(), data.begin(), data.end());

  std::size_t pos = 0;
  if (magic_pending_) {
    const std::size_t have = std::min(buffer_.size(), sizeof kStreamMagic);
    if (std::memcmp(buffer_.data(), kStreamMagic, have) != 0) {
      error_ = WireError::kBadMagic;
      buffer_.clear();
      return false;
    }
    if (have < sizeof kStreamMagic) return true;  // wait for the rest
    magic_pending_ = false;
    pos = sizeof kStreamMagic;
  }

  while (buffer_.size() - pos >= kFrameHeaderBytes) {
    const std::uint8_t* header = buffer_.data() + pos;
    const std::uint8_t type_byte = header[0];
    const std::uint32_t len = get_u32le(header + 1);
    const std::uint32_t crc = get_u32le(header + 5);
    // Validate before waiting for (or allocating) the payload: a corrupt
    // length must not stall the connection or balloon the buffer.
    if (!valid_type(type_byte)) {
      error_ = WireError::kBadType;
      break;
    }
    if (len > kMaxFramePayload) {
      error_ = WireError::kOversized;
      break;
    }
    if (buffer_.size() - pos - kFrameHeaderBytes < len) break;  // partial
    Frame frame;
    frame.type = static_cast<FrameType>(type_byte);
    frame.payload.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(
                                               pos + kFrameHeaderBytes),
                         buffer_.begin() + static_cast<std::ptrdiff_t>(
                                               pos + kFrameHeaderBytes + len));
    if (frame_crc(frame.type, frame.payload) != crc) {
      error_ = WireError::kBadCrc;
      break;
    }
    ready_.push_back(std::move(frame));
    pos += kFrameHeaderBytes + len;
  }

  if (failed()) {
    buffer_.clear();
    return false;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
  return true;
}

bool FrameDecoder::next(Frame& out) {
  if (ready_.empty()) return false;
  out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

void register_net_metrics() {
  detail::register_server_metrics();
  detail::register_client_metrics();
  detail::register_http_metrics();
}

}  // namespace saad::net
