#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace saad::net {

namespace {

// Process-wide client-side metrics (every SynopsisClient accumulates into
// the same families, matching the server side in server.cpp).
struct ClientMetrics {
  obs::Counter& connects;
  obs::Counter& reconnects;
  obs::Counter& connect_failures;
  obs::Counter& backoffs;
  obs::Counter& sent_synopses;
  obs::Counter& sent_frames;
  obs::Counter& send_errors;
  obs::Counter& spilled;
  obs::Counter& dropped;
  obs::Gauge& spool_depth;

  ClientMetrics()
      : connects(obs::MetricsRegistry::global().counter(
            "saad_net_client_connects_total",
            "Successful connections to a synopsis server.")),
        reconnects(obs::MetricsRegistry::global().counter(
            "saad_net_client_reconnects_total",
            "Successful connections after the first (recoveries).")),
        connect_failures(obs::MetricsRegistry::global().counter(
            "saad_net_client_connect_failures_total",
            "Connection attempts that failed.")),
        backoffs(obs::MetricsRegistry::global().counter(
            "saad_net_client_backoffs_total",
            "Backoff waits taken before reconnect attempts.")),
        sent_synopses(obs::MetricsRegistry::global().counter(
            "saad_net_client_sent_synopses_total",
            "Synopses fully handed to the kernel in batch frames.")),
        sent_frames(obs::MetricsRegistry::global().counter(
            "saad_net_client_sent_frames_total",
            "Frames written (hello, batch, heartbeat, goodbye).")),
        send_errors(obs::MetricsRegistry::global().counter(
            "saad_net_client_send_errors_total",
            "Failed or partial writes that dropped the connection.")),
        spilled(obs::MetricsRegistry::global().counter(
            "saad_net_client_spilled_synopses_total",
            "Synopses degraded to the crash-safe spill trace on spool "
            "overflow.")),
        dropped(obs::MetricsRegistry::global().counter(
            "saad_net_client_dropped_synopses_total",
            "Synopses dropped on spool overflow with no spill path "
            "configured.")),
        spool_depth(obs::MetricsRegistry::global().gauge(
            "saad_net_client_spool_depth",
            "Synopses currently spooled awaiting delivery.")) {}

  static ClientMetrics& get() {
    static ClientMetrics* metrics = new ClientMetrics();
    return *metrics;
  }
};

void default_sleep(UsTime us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

void detail::register_client_metrics() { ClientMetrics::get(); }

SynopsisClient::SynopsisClient(Options options)
    : options_(std::move(options)), jitter_(options_.seed) {
  ClientMetrics::get();
  if (!options_.sleep_fn) options_.sleep_fn = default_sleep;
}

SynopsisClient::~SynopsisClient() {
  // No goodbye: destruction without close() models a crash, and the spool
  // (if a spill path exists) degrades to disk rather than vanishing.
  if (!spool_.empty() && !options_.spill_trace_path.empty() &&
      ensure_spill_writer()) {
    auto& metrics = ClientMetrics::get();
    while (!spool_.empty()) {
      if (!spill_->append(spool_.front())) break;
      spool_.pop_front();
      ++stats_.spilled;
      metrics.spilled.inc();
    }
  }
  if (spill_) spill_->finalize();
  disconnect();
  ClientMetrics::get().spool_depth.set(0);
}

UsTime SynopsisClient::current_backoff() const {
  if (consecutive_failures_ == 0) return 0;
  UsTime delay = options_.backoff_initial;
  for (std::size_t i = 1; i < consecutive_failures_ && delay < options_.backoff_max;
       ++i)
    delay *= 2;
  return std::min(delay, options_.backoff_max);
}

bool SynopsisClient::connect() {
  if (connected()) return true;
  auto& metrics = ClientMetrics::get();

  // Retry: wait out the jittered exponential backoff before dialing.
  if (const UsTime base = current_backoff(); base > 0) {
    const double factor =
        1.0 + options_.backoff_jitter * (2.0 * jitter_.next_double() - 1.0);
    const auto delay = static_cast<UsTime>(static_cast<double>(base) * factor);
    ++stats_.backoffs;
    metrics.backoffs.inc();
    options_.sleep_fn(std::max<UsTime>(delay, 0));
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    ++consecutive_failures_;
    ++stats_.connect_failures;
    metrics.connect_failures.inc();
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    ++consecutive_failures_;
    ++stats_.connect_failures;
    metrics.connect_failures.inc();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;

  // Prologue + versioned hello open every connection.
  std::vector<std::uint8_t> bytes(std::begin(kStreamMagic),
                                  std::end(kStreamMagic));
  std::vector<std::uint8_t> payload;
  encode_hello(Hello{kProtocolVersion, options_.host_id, 0}, payload);
  encode_frame(FrameType::kHello, payload, bytes);
  if (!send_all(bytes.data(), bytes.size())) return false;  // disconnects
  ++stats_.sent_frames;
  metrics.sent_frames.inc();

  sent_on_connection_ = 0;  // the server's goodbye audit is per-connection

  const bool first = stats_.connects == 0;
  ++stats_.connects;
  metrics.connects.inc();
  if (!first) {
    ++stats_.reconnects;
    metrics.reconnects.inc();
  }
  consecutive_failures_ = 0;
  return true;
}

void SynopsisClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SynopsisClient::send_all(const std::uint8_t* data, std::size_t n) {
  auto& metrics = ClientMetrics::get();
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    // Any other failure (EPIPE, ECONNRESET, ...): the connection is gone.
    ++stats_.send_errors;
    metrics.send_errors.inc();
    ++consecutive_failures_;
    disconnect();
    return false;
  }
  return true;
}

bool SynopsisClient::send_frame(FrameType type,
                                const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kFrameHeaderBytes + payload.size());
  encode_frame(type, payload, bytes);
  if (!send_all(bytes.data(), bytes.size())) return false;
  ++stats_.sent_frames;
  ClientMetrics::get().sent_frames.inc();
  return true;
}

bool SynopsisClient::ensure_spill_writer() {
  if (spill_) return spill_->ok();
  if (options_.spill_trace_path.empty()) return false;
  spill_ = std::make_unique<core::TraceWriter>(options_.spill_trace_path);
  return spill_->ok();
}

void SynopsisClient::enqueue(const core::Synopsis& s) {
  auto& metrics = ClientMetrics::get();
  while (spool_.size() >= options_.spool_max_synopses && !spool_.empty()) {
    // Overflow: degrade the *oldest* to the crash-safe spill trace (it can
    // be replayed later); with no spill path it is dropped, loudly.
    if (ensure_spill_writer() && spill_->append(spool_.front())) {
      ++stats_.spilled;
      metrics.spilled.inc();
    } else {
      ++stats_.dropped;
      metrics.dropped.inc();
    }
    spool_.pop_front();
  }
  spool_.push_back(s);
  metrics.spool_depth.set(static_cast<std::int64_t>(spool_.size()));
}

bool SynopsisClient::flush() {
  auto& metrics = ClientMetrics::get();
  std::size_t attempts = 0;
  while (!spool_.empty()) {
    if (!connected()) {
      if (attempts >= options_.connect_attempts_per_flush) return false;
      ++attempts;
      if (!connect()) continue;
    }
    const std::size_t n = std::min(spool_.size(), options_.batch_synopses);
    std::vector<core::Synopsis> batch(spool_.begin(),
                                      spool_.begin() + static_cast<std::ptrdiff_t>(n));
    std::vector<std::uint8_t> payload;
    encode_batch(batch, payload);
    if (!send_frame(FrameType::kBatch, payload)) continue;  // retry/backoff
    // The whole frame reached the kernel: only now do the synopses leave
    // the spool (the exactly-once-after-reconnect guarantee).
    spool_.erase(spool_.begin(), spool_.begin() + static_cast<std::ptrdiff_t>(n));
    stats_.sent_synopses += n;
    sent_on_connection_ += n;
    metrics.sent_synopses.inc(n);
    metrics.spool_depth.set(static_cast<std::int64_t>(spool_.size()));
  }
  return true;
}

bool SynopsisClient::heartbeat() {
  if (!connected() && !connect()) return false;
  return send_frame(FrameType::kHeartbeat, {});
}

bool SynopsisClient::close() {
  if (!flush()) return false;
  if (!connected() && !connect()) return false;
  // Claim only this connection's synopses: after an outage + reconnect the
  // server never saw what earlier connections carried, and the lifetime
  // total would trip its per-connection goodbye audit.
  std::vector<std::uint8_t> payload;
  encode_goodbye(sent_on_connection_, payload);
  const bool ok = send_frame(FrameType::kGoodbye, payload);
  disconnect();
  return ok;
}

}  // namespace saad::net
