// SynopsisClient — the tracker-side shim that streams synopses to a remote
// SynopsisServer over the SAADNET1 framed protocol (net/wire.h).
//
// Design (paper §3, Fig. 2: trackers are inside latency-sensitive servers,
// so the shim must never block the caller on the network for long and must
// never silently lose a synopsis):
//
//   * enqueue() appends to a bounded in-memory spool and returns; the
//     network is only touched by flush()/close().
//   * flush() frames the spool into batch frames and writes them; a synopsis
//     leaves the spool only after its whole frame was handed to the kernel,
//     so synopses spooled across an outage are delivered exactly once after
//     reconnect (synopses already written when the peer died are
//     at-most-once — TCP cannot do better without server acks).
//   * A failed write closes the socket; the next flush() reconnects with
//     jittered exponential backoff (deterministic given Options::seed, and
//     waits go through Options::sleep_fn so tests can capture instead of
//     sleep). Delays grow initial, 2x, 4x, ... capped at backoff_max, each
//     scaled by a uniform factor in [1-jitter, 1+jitter].
//   * When the spool cap is hit while the server is unreachable, the oldest
//     synopses degrade to the crash-safe v2 trace file at spill_trace_path
//     (replayable later with `saad_offline replay`) instead of vanishing;
//     with no spill path configured they are dropped *and counted*
//     (saad_net_client_dropped_synopses_total) — loss is always observable.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/time.h"
#include "core/synopsis.h"
#include "core/trace_io.h"
#include "net/wire.h"

namespace saad::net {

class SynopsisClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    core::HostId host_id = 0;      // advisory, carried in the hello
    std::size_t batch_synopses = 256;   // max synopses per batch frame
    std::size_t spool_max_synopses = 64 * 1024;
    /// Crash-safe overflow target (trace format v2); empty = drop + count.
    std::string spill_trace_path;
    UsTime backoff_initial = ms(50);
    UsTime backoff_max = sec(2);
    double backoff_jitter = 0.2;   // +/- fraction applied to each delay
    std::uint64_t seed = 1;        // jitter stream (deterministic in tests)
    /// How many connect attempts one flush() makes before giving up and
    /// leaving everything spooled.
    std::size_t connect_attempts_per_flush = 1;
    /// Invoked for every backoff wait; defaults to a real sleep. Tests
    /// inject a recorder to pin the schedule without wall-clock delays.
    std::function<void(UsTime)> sleep_fn;
  };

  struct Stats {
    std::uint64_t connects = 0;     // successful connections
    std::uint64_t reconnects = 0;   // successful connections after the first
    std::uint64_t connect_failures = 0;
    std::uint64_t backoffs = 0;     // waits taken before reconnect attempts
    std::uint64_t sent_synopses = 0;
    std::uint64_t sent_frames = 0;  // all frame types
    std::uint64_t send_errors = 0;  // failed/partial writes (socket dropped)
    std::uint64_t spilled = 0;      // synopses degraded to the spill trace
    std::uint64_t dropped = 0;      // synopses lost (no spill path)
  };

  explicit SynopsisClient(Options options);  // no default: host/port required
  ~SynopsisClient();  // closes without a goodbye (models a crash)
  SynopsisClient(const SynopsisClient&) = delete;
  SynopsisClient& operator=(const SynopsisClient&) = delete;

  /// Spools one synopsis (bounded; overflow spills or drops the oldest).
  /// Never touches the network.
  void enqueue(const core::Synopsis& s);

  /// Sends everything spooled. Reconnects (with backoff) when disconnected;
  /// false when the spool could not be fully delivered — the remainder
  /// stays spooled for the next flush().
  bool flush();

  /// One connection attempt, preceded by the backoff wait when this is a
  /// retry. True when connected (idempotent on an open connection).
  bool connect();

  bool connected() const { return fd_ >= 0; }

  /// Empty heartbeat frame; false (and disconnects) on write failure.
  bool heartbeat();

  /// flush() + goodbye frame + FIN. True only when everything (including
  /// the goodbye) was delivered. The goodbye claims the synopses sent on
  /// the *current connection*, not the client's lifetime total: the
  /// server's audit is per-connection, so after an outage + reconnect a
  /// lifetime count would flag a spurious goodbye mismatch.
  bool close();

  std::size_t spool_size() const { return spool_.size(); }
  const Stats& stats() const { return stats_; }

  /// The delay the *next* backoff wait would use (pre-jitter); tests pin
  /// the exponential schedule through this and the sleep_fn recorder.
  UsTime current_backoff() const;

 private:
  bool ensure_spill_writer();
  bool send_all(const std::uint8_t* data, std::size_t n);
  bool send_frame(FrameType type, const std::vector<std::uint8_t>& payload);
  void disconnect();

  Options options_;
  int fd_ = -1;
  std::deque<core::Synopsis> spool_;
  std::unique_ptr<core::TraceWriter> spill_;
  Rng jitter_;
  std::size_t consecutive_failures_ = 0;
  Stats stats_;
  /// Synopses delivered on the current connection (reset on every successful
  /// connect); what the goodbye frame claims.
  std::uint64_t sent_on_connection_ = 0;
};

}  // namespace saad::net
