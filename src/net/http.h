// AdminServer — a minimal, allocation-bounded HTTP/1.1 listener for the
// live pipeline's admin plane (/metrics, /healthz, /readyz, /statusz,
// /flightrecorder, /spans). It is deliberately not a web server:
//
//   * GET (and HEAD) only; anything else is 405.
//   * No keep-alive: every response carries `Connection: close` and the
//     connection is closed after it — a scraper opens one connection per
//     scrape, which is exactly Prometheus's model.
//   * Strict caps before allocation: the request line is bounded by
//     max_request_line bytes, the whole head (request line + headers) by
//     max_request_bytes, and the header count by max_headers; any breach is
//     rejected with 414/431 and its exact saad_http_* reject counter. Bodies
//     are never read (a request with a body is rejected as malformed).
//
// Concurrency shape: one dedicated poll()-based I/O thread owns the
// listener and every connection, with a self-pipe so stop() can wake it —
// the same discipline as SynopsisServer, on its own port so admin traffic
// can never head-of-line-block synopsis ingestion. Handlers run on that
// thread; they must only read thread-safe state (the metrics registry
// snapshot, atomics published by the serving loop). Responses are written
// with a bounded send timeout, so one stalled scraper can delay — but never
// wedge — the admin plane.
//
// Every reject path has a counter (tests pin the exact attribution):
// saad_http_parse_rejects_total (400), saad_http_request_line_rejects_total
// (414), saad_http_header_rejects_total (431), saad_http_method_rejects
// (405), saad_http_not_found_total (404), saad_http_truncated_total
// (disconnect mid-request).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace saad::net {

struct HttpRequest {
  std::string method;  // "GET" / "HEAD"
  std::string path;    // target with any ?query stripped
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// When set, `body` is ignored: the headers go out without Content-Length
  /// and the writer streams a close-delimited body straight to the socket
  /// (used by /flightrecorder, whose dump_to_fd writes without allocating).
  std::function<void(int fd)> body_writer;
};

const char* http_status_reason(int status);

/// Incremental request-head parser with hard caps, exposed for direct fuzz
/// testing. Feed bytes as they arrive; the parser never buffers more than
/// max_request_bytes.
class HttpParser {
 public:
  enum class Status : std::uint8_t {
    kNeedMore,       // head not complete yet
    kOk,             // request parsed into request()
    kBadRequest,     // malformed request line / header / embedded body
    kLineTooLong,    // request line over max_request_line
    kHeadersTooBig,  // head over max_request_bytes or too many headers
    kBadMethod,      // parsed, but not GET/HEAD
  };

  HttpParser(std::size_t max_request_line, std::size_t max_request_bytes,
             std::size_t max_headers)
      : max_request_line_(max_request_line),
        max_request_bytes_(max_request_bytes),
        max_headers_(max_headers) {}

  /// Consumes bytes; returns the parse state. Once a verdict other than
  /// kNeedMore is returned, further feeds return the same verdict.
  Status feed(const char* data, std::size_t n);

  const HttpRequest& request() const { return request_; }
  bool started() const { return !buffer_.empty() || done_; }

 private:
  Status finish(Status verdict);
  Status parse_head();

  std::size_t max_request_line_;
  std::size_t max_request_bytes_;
  std::size_t max_headers_;
  std::string buffer_;
  HttpRequest request_;
  bool done_ = false;
  Status verdict_ = Status::kNeedMore;
};

class AdminServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral; see port()
    std::size_t max_connections = 32;
    int poll_interval_ms = 50;
    /// Per-response send timeout (a stalled scraper is cut off, not waited
    /// on forever).
    int send_timeout_ms = 5000;
    std::size_t max_request_line = 1024;
    std::size_t max_request_bytes = 8192;
    std::size_t max_headers = 64;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  AdminServer() : AdminServer(Options()) {}
  explicit AdminServer(Options options);
  ~AdminServer();  // stop()s if still running
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers an exact-match route. Call before start(); the route table
  /// is immutable once the I/O thread runs.
  void route(std::string path, Handler handler);

  /// Binds, listens, spawns the I/O thread. False on bind/listen failure.
  bool start();

  /// Closes the listener and every connection and joins the I/O thread.
  /// Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Actual bound port (resolves port 0); valid after start().
  std::uint16_t port() const { return port_; }

 private:
  struct Connection;
  struct Impl;

  void io_loop();
  void respond(Connection& conn, const HttpResponse& response, bool head_only);

  Options options_;
  std::vector<std::pair<std::string, Handler>> routes_;
  std::unique_ptr<Impl> impl_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::uint16_t port_ = 0;
};

namespace detail {
void register_http_metrics();
}

}  // namespace saad::net
