#include "net/http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"

namespace saad::net {

namespace {

// Process-wide admin-plane metrics (every AdminServer accumulates into the
// same families, like ServerMetrics in server.cpp). Each reject path has its
// own counter — tests pin the exact attribution.
struct HttpMetrics {
  obs::Counter& connections;
  obs::Counter& connections_rejected;
  obs::Counter& requests;
  obs::Counter& parse_rejects;         // 400
  obs::Counter& request_line_rejects;  // 414
  obs::Counter& header_rejects;        // 431
  obs::Counter& method_rejects;        // 405
  obs::Counter& not_found;             // 404
  obs::Counter& truncated;             // disconnect mid-request
  obs::Counter& bytes_read;
  obs::Counter& bytes_written;
  obs::Gauge& active;
  obs::Histogram& request_us;

  HttpMetrics()
      : connections(obs::MetricsRegistry::global().counter(
            "saad_http_connections_total",
            "Admin-plane connections accepted.")),
        connections_rejected(obs::MetricsRegistry::global().counter(
            "saad_http_connections_rejected_total",
            "Admin-plane connections refused because max_connections was "
            "reached.")),
        requests(obs::MetricsRegistry::global().counter(
            "saad_http_requests_total",
            "Well-formed admin requests dispatched to routing.")),
        parse_rejects(obs::MetricsRegistry::global().counter(
            "saad_http_parse_rejects_total",
            "Requests rejected 400 for a malformed request line, header, or "
            "embedded body.")),
        request_line_rejects(obs::MetricsRegistry::global().counter(
            "saad_http_request_line_rejects_total",
            "Requests rejected 414 for an oversized request line.")),
        header_rejects(obs::MetricsRegistry::global().counter(
            "saad_http_header_rejects_total",
            "Requests rejected 431 for an oversized or over-counted header "
            "block.")),
        method_rejects(obs::MetricsRegistry::global().counter(
            "saad_http_method_rejects_total",
            "Requests rejected 405 (only GET and HEAD are served).")),
        not_found(obs::MetricsRegistry::global().counter(
            "saad_http_not_found_total",
            "Well-formed requests for an unregistered path (404).")),
        truncated(obs::MetricsRegistry::global().counter(
            "saad_http_truncated_total",
            "Connections that disconnected mid-request.")),
        bytes_read(obs::MetricsRegistry::global().counter(
            "saad_http_bytes_read_total",
            "Raw bytes received on admin connections.")),
        bytes_written(obs::MetricsRegistry::global().counter(
            "saad_http_bytes_written_total",
            "Response bytes written to admin connections (excluding "
            "streamed bodies).")),
        active(obs::MetricsRegistry::global().gauge(
            "saad_http_connections_active",
            "Currently open admin connections.")),
        request_us(obs::MetricsRegistry::global().histogram(
            "saad_http_request_us",
            "Admin request latency from accept to response written.",
            obs::latency_bounds_us())) {}

  // Per-status response counters, pre-registered for every code the server
  // can emit so scrapes expose them zero-valued.
  obs::Counter& responses(int status) {
    switch (status) {
      case 200:
        return counter_for("200");
      case 400:
        return counter_for("400");
      case 404:
        return counter_for("404");
      case 405:
        return counter_for("405");
      case 414:
        return counter_for("414");
      case 431:
        return counter_for("431");
      case 503:
        return counter_for("503");
      default:
        return counter_for("500");
    }
  }

  static HttpMetrics& get() {
    static HttpMetrics* metrics = new HttpMetrics();
    return *metrics;
  }

 private:
  static obs::Counter& counter_for(const char* code) {
    return obs::MetricsRegistry::global().counter(
        "saad_http_responses_total", "Admin responses written, by status.",
        {{"code", code}});
  }
};

void close_quietly(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_blocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) == 0;
}

// Full write with EINTR retry; the socket is blocking with SO_SNDTIMEO, so
// a stalled peer surfaces as EAGAIN after the timeout and we give up.
bool write_fully(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool equals_ignore_case(const std::string& a, const char* b) {
  const std::size_t n = std::strlen(b);
  if (a.size() != n) return false;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

}  // namespace

const char* http_status_reason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 414:
      return "URI Too Long";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

// ---- HttpParser -------------------------------------------------------------

HttpParser::Status HttpParser::finish(Status verdict) {
  done_ = true;
  verdict_ = verdict;
  return verdict_;
}

HttpParser::Status HttpParser::feed(const char* data, std::size_t n) {
  if (done_) return verdict_;
  // Never buffer past the head cap: admit just enough extra to detect the
  // overflow, then reject.
  const std::size_t room = max_request_bytes_ + 1 > buffer_.size()
                               ? max_request_bytes_ + 1 - buffer_.size()
                               : 0;
  buffer_.append(data, std::min(n, room));

  const std::size_t head_end = buffer_.find("\r\n\r\n");
  const std::size_t bare_end = buffer_.find("\n\n");
  std::size_t end = head_end, terminator = 4;
  if (bare_end != std::string::npos && (end == std::string::npos ||
                                        bare_end < end)) {
    end = bare_end;
    terminator = 2;
  }

  if (end == std::string::npos) {
    // Head incomplete: check the caps against what has already arrived.
    const std::size_t line_end = buffer_.find('\n');
    if (line_end == std::string::npos && buffer_.size() > max_request_line_)
      return finish(Status::kLineTooLong);
    if (buffer_.size() > max_request_bytes_)
      return finish(Status::kHeadersTooBig);
    return Status::kNeedMore;
  }

  if (end + terminator < buffer_.size())
    return finish(Status::kBadRequest);  // body bytes: we never serve those
  if (end + terminator > max_request_bytes_)
    return finish(Status::kHeadersTooBig);
  return finish(parse_head());
}

HttpParser::Status HttpParser::parse_head() {
  // Split the head into lines, tolerating LF as well as CRLF.
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < buffer_.size()) {
    std::size_t nl = buffer_.find('\n', start);
    if (nl == std::string::npos) break;
    std::size_t len = nl - start;
    if (len > 0 && buffer_[start + len - 1] == '\r') --len;
    lines.emplace_back(buffer_, start, len);
    start = nl + 1;
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) return Status::kBadRequest;

  const std::string& request_line = lines[0];
  if (request_line.size() > max_request_line_) return Status::kLineTooLong;

  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      request_line.find(' ', sp2 + 1) != std::string::npos)
    return Status::kBadRequest;

  request_.method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = request_line.substr(sp2 + 1);

  if (version.rfind("HTTP/1.", 0) != 0 || version.size() != 8 ||
      !std::isdigit(static_cast<unsigned char>(version[7])))
    return Status::kBadRequest;
  if (request_.method.empty() || target.empty() || target[0] != '/')
    return Status::kBadRequest;
  for (char c : request_.method) {
    if (!std::isupper(static_cast<unsigned char>(c)))
      return Status::kBadRequest;
  }
  for (char c : target) {
    if (static_cast<unsigned char>(c) <= 0x20 ||
        static_cast<unsigned char>(c) >= 0x7f)
      return Status::kBadRequest;
  }
  const std::size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);
  request_.path = std::move(target);

  if (lines.size() - 1 > max_headers_) return Status::kHeadersTooBig;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) return Status::kBadRequest;
    std::string key = line.substr(0, colon);
    std::string value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t'))
      value.erase(value.begin());
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t'))
      value.pop_back();
    // The admin plane never reads bodies; a request that announces one is
    // malformed by our rules.
    if (equals_ignore_case(key, "transfer-encoding"))
      return Status::kBadRequest;
    if (equals_ignore_case(key, "content-length") && value != "0")
      return Status::kBadRequest;
  }

  if (request_.method != "GET" && request_.method != "HEAD")
    return Status::kBadMethod;
  return Status::kOk;
}

// ---- AdminServer ------------------------------------------------------------

void detail::register_http_metrics() {
  auto& metrics = HttpMetrics::get();
  for (int code : {200, 400, 404, 405, 414, 431, 500, 503})
    metrics.responses(code);
}

struct AdminServer::Connection {
  int fd = -1;
  HttpParser parser;
  std::int64_t accepted_us = 0;

  Connection(std::size_t max_line, std::size_t max_bytes,
             std::size_t max_headers)
      : parser(max_line, max_bytes, max_headers) {}
};

struct AdminServer::Impl {
  int listen_fd = -1;
  int wake_rd = -1, wake_wr = -1;  // self-pipe: stop() wakes poll()
  std::vector<std::unique_ptr<Connection>> connections;
  std::vector<char> recv_buf;
};

AdminServer::AdminServer(Options options)
    : options_(std::move(options)), impl_(std::make_unique<Impl>()) {
  detail::register_http_metrics();  // families exist even if start() fails
  impl_->recv_buf.resize(16 * 1024);
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::route(std::string path, Handler handler) {
  routes_.emplace_back(std::move(path), std::move(handler));
}

bool AdminServer::start() {
  if (running()) return true;
  Impl& im = *impl_;

  im.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (im.listen_fd < 0) return false;
  const int one = 1;
  ::setsockopt(im.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
          1 ||
      ::bind(im.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(im.listen_fd, 16) != 0 || !set_nonblocking(im.listen_fd)) {
    close_quietly(im.listen_fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(im.listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    close_quietly(im.listen_fd);
    return false;
  }
  port_ = ntohs(addr.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    close_quietly(im.listen_fd);
    return false;
  }
  im.wake_rd = pipe_fds[0];
  im.wake_wr = pipe_fds[1];
  set_nonblocking(im.wake_rd);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { io_loop(); });
  return true;
}

void AdminServer::stop() {
  if (!running()) return;
  stopping_.store(true, std::memory_order_release);
  const char byte = 0;
  [[maybe_unused]] const auto n = ::write(impl_->wake_wr, &byte, 1);
  if (thread_.joinable()) thread_.join();
  close_quietly(impl_->listen_fd);
  close_quietly(impl_->wake_rd);
  close_quietly(impl_->wake_wr);
  running_.store(false, std::memory_order_release);
}

void AdminServer::respond(Connection& conn, const HttpResponse& response,
                          bool head_only) {
  auto& metrics = HttpMetrics::get();

  // The response is written synchronously with a bounded send timeout —
  // simpler than write-interest plumbing, and a stalled scraper costs at
  // most send_timeout_ms before being cut off.
  set_blocking(conn.fd);
  timeval tv{};
  tv.tv_sec = options_.send_timeout_ms / 1000;
  tv.tv_usec = (options_.send_timeout_ms % 1000) * 1000;
  ::setsockopt(conn.fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  const bool streamed = static_cast<bool>(response.body_writer) && !head_only;
  std::string head = "HTTP/1.1 ";
  head += std::to_string(response.status);
  head += ' ';
  head += http_status_reason(response.status);
  head += "\r\nContent-Type: ";
  head += response.content_type;
  head += "\r\nConnection: close\r\n";
  if (!streamed) {
    const std::size_t length =
        response.body_writer ? 0 : response.body.size();
    head += "Content-Length: ";
    head += std::to_string(length);
    head += "\r\n";
  }
  head += "\r\n";

  bool ok = write_fully(conn.fd, head.data(), head.size());
  std::uint64_t written = ok ? head.size() : 0;
  if (ok && !head_only) {
    if (streamed) {
      response.body_writer(conn.fd);  // close-delimited body
    } else if (!response.body_writer) {
      ok = write_fully(conn.fd, response.body.data(), response.body.size());
      if (ok) written += response.body.size();
    }
  }
  metrics.bytes_written.inc(written);
  metrics.responses(response.status).inc();
  metrics.request_us.observe(steady_now_us() - conn.accepted_us);
}

void AdminServer::io_loop() {
  Impl& im = *impl_;
  auto& metrics = HttpMetrics::get();

  auto close_connection = [&](std::size_t index, bool count_truncation) {
    Connection& conn = *im.connections[index];
    if (count_truncation && conn.parser.started()) metrics.truncated.inc();
    close_quietly(conn.fd);
    im.connections.erase(im.connections.begin() +
                         static_cast<std::ptrdiff_t>(index));
    metrics.active.set(static_cast<std::int64_t>(im.connections.size()));
  };

  // Maps a parse verdict to the response + exact reject counter, or runs
  // the routed handler on kOk.
  auto serve_verdict = [&](Connection& conn, HttpParser::Status verdict) {
    HttpResponse response;
    bool head_only = false;
    switch (verdict) {
      case HttpParser::Status::kOk: {
        metrics.requests.inc();
        const HttpRequest& request = conn.parser.request();
        head_only = request.method == "HEAD";
        const auto it = std::find_if(
            routes_.begin(), routes_.end(),
            [&](const auto& route) { return route.first == request.path; });
        if (it == routes_.end()) {
          metrics.not_found.inc();
          response.status = 404;
          response.body = "not found\n";
        } else {
          response = it->second(request);
        }
        break;
      }
      case HttpParser::Status::kBadRequest:
        metrics.parse_rejects.inc();
        response.status = 400;
        response.body = "bad request\n";
        break;
      case HttpParser::Status::kLineTooLong:
        metrics.request_line_rejects.inc();
        response.status = 414;
        response.body = "request line too long\n";
        break;
      case HttpParser::Status::kHeadersTooBig:
        metrics.header_rejects.inc();
        response.status = 431;
        response.body = "headers too large\n";
        break;
      case HttpParser::Status::kBadMethod:
        metrics.method_rejects.inc();
        response.status = 405;
        response.body = "only GET and HEAD\n";
        break;
      case HttpParser::Status::kNeedMore:
        return;  // unreachable: caller filters
    }
    respond(conn, response, head_only);
  };

  std::vector<pollfd> fds;
  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({im.wake_rd, POLLIN, 0});
    fds.push_back({im.listen_fd, POLLIN, 0});
    for (const auto& conn : im.connections)
      fds.push_back({conn->fd, POLLIN, 0});

    const int rc = ::poll(fds.data(), fds.size(), options_.poll_interval_ms);
    if (rc < 0 && errno != EINTR) break;

    if (fds[1].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(im.listen_fd, nullptr, nullptr);
        if (fd < 0) break;
        if (im.connections.size() >= options_.max_connections) {
          metrics.connections_rejected.inc();
          ::close(fd);
          continue;
        }
        set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        auto conn = std::make_unique<Connection>(options_.max_request_line,
                                                 options_.max_request_bytes,
                                                 options_.max_headers);
        conn->fd = fd;
        conn->accepted_us = steady_now_us();
        im.connections.push_back(std::move(conn));
        metrics.connections.inc();
        metrics.active.set(static_cast<std::int64_t>(im.connections.size()));
      }
    }

    // fds[i + 2] belongs to connections[i] as polled; iterate backwards so
    // erases cannot shift a not-yet-visited entry.
    const std::size_t polled = fds.size() - 2;
    for (std::size_t i = polled; i-- > 0;) {
      if (i >= im.connections.size()) continue;
      const short revents = fds[i + 2].revents;
      if (revents == 0) continue;
      Connection& conn = *im.connections[i];
      bool drop = false, truncation = true;
      for (;;) {
        const ssize_t n =
            ::recv(conn.fd, im.recv_buf.data(), im.recv_buf.size(), 0);
        if (n > 0) {
          metrics.bytes_read.inc(static_cast<std::uint64_t>(n));
          const auto verdict =
              conn.parser.feed(im.recv_buf.data(), static_cast<std::size_t>(n));
          if (verdict != HttpParser::Status::kNeedMore) {
            serve_verdict(conn, verdict);
            drop = true;  // one request per connection, no keep-alive
            truncation = false;
            break;
          }
          continue;
        }
        if (n == 0) {  // peer closed before completing a request
          drop = true;
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        drop = true;
        break;
      }
      if (drop) close_connection(i, truncation);
    }
  }

  while (!im.connections.empty())
    close_connection(im.connections.size() - 1, true);
  // listen/wake fds stay open here; stop() closes them after the join.
}

}  // namespace saad::net
