// SynopsisServer — the analyzer-side TCP acceptor for live synopsis
// ingestion. Remote trackers (SynopsisClient, or `saad_offline replay`)
// connect, speak the SAADNET1 framed protocol (net/wire.h), and their batch
// frames are decoded and published into the existing sharded
// core::SynopsisChannel, from which the analyzer loop drains exactly as it
// would from in-process trackers.
//
// Concurrency shape: one poll()-based I/O thread owns the listener, every
// connection, and the channel Producer handle; the analyzer (consumer)
// thread only drains the channel and calls ack(). No per-connection threads
// — the paper's deployment expects many lightweight senders per analyzer.
//
// Ordering: the I/O thread publishes decoded batches FIFO through a single
// channel Producer (one shard), so a single client's synopses reach the
// analyzer in exactly the order it sent them — the property the end-to-end
// determinism test pins. Interleaving *between* clients is unspecified, as
// it already is between in-process producer threads.
//
// Overload policy (bounded everywhere, never block the acceptor):
//   * per-connection reassembly buffers are bounded by one frame
//     (kMaxFramePayload) — a corrupt length prefix cannot balloon them;
//   * decoded-but-unpublished batches wait in a bounded pending queue;
//     when it is full the *oldest* batch is shed and counted
//     (saad_net_shed_batches_total / saad_net_shed_synopses_total) —
//     freshest data wins, and the I/O thread never blocks on a slow
//     analyzer;
//   * batches are published only while published-minus-acked stays under
//     max_outstanding_synopses, so a stalled consumer shows up as sheds
//     here instead of unbounded channel growth.
//
// Damage policy: any wire decode error poisons that connection — it is
// closed and the matching saad_net_* reject counter is bumped; other
// connections and the listener are unaffected (the corruption suite pins
// "never crash, always count").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "core/channel.h"
#include "net/wire.h"

namespace saad::net {

class SynopsisServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral; see port() for the real one
    std::size_t max_connections = 64;
    /// Decoded batches waiting to be published; the oldest is shed when a
    /// new batch arrives while the queue is full.
    std::size_t max_pending_batches = 1024;
    /// High watermark on synopses published into the channel but not yet
    /// ack()ed by the consumer.
    std::uint64_t max_outstanding_synopses = 1 << 20;
    /// poll() timeout; also the cadence at which publish retries after the
    /// consumer acks below the watermark.
    int poll_interval_ms = 20;
  };

  /// Monotonic since start(); every field also feeds a saad_net_* family.
  struct Stats {
    std::uint64_t connections = 0;       // accepted
    std::uint64_t connections_rejected = 0;  // over max_connections
    std::uint64_t sessions = 0;          // hello'd connections that ended
    std::uint64_t frames = 0;            // valid frames, all types
    std::uint64_t batches = 0;
    std::uint64_t synopses = 0;          // decoded from batch frames
    std::uint64_t published = 0;         // handed to the channel
    std::uint64_t bytes = 0;             // raw bytes received
    std::uint64_t heartbeats = 0;
    std::uint64_t goodbyes = 0;
    std::uint64_t goodbye_mismatches = 0;  // goodbye count != received count
    std::uint64_t crc_rejects = 0;       // WireError::kBadCrc
    std::uint64_t magic_rejects = 0;     // WireError::kBadMagic
    std::uint64_t frame_rejects = 0;     // kBadType / kOversized
    std::uint64_t payload_rejects = 0;   // kBadPayload / kNotHello / kBadVersion
    std::uint64_t truncated = 0;         // disconnect mid-frame
    std::uint64_t shed_batches = 0;
    std::uint64_t shed_synopses = 0;
  };

  explicit SynopsisServer(core::SynopsisChannel* channel)
      : SynopsisServer(channel, Options()) {}
  SynopsisServer(core::SynopsisChannel* channel, Options options);
  ~SynopsisServer();  // stop()s if still running
  SynopsisServer(const SynopsisServer&) = delete;
  SynopsisServer& operator=(const SynopsisServer&) = delete;

  /// Binds, listens and spawns the I/O thread. False on bind/listen failure
  /// (error written to errno by the failing call).
  bool start();

  /// Closes the listener and every connection, publishes any still-pending
  /// batches, and joins the I/O thread. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Actual bound port (resolves port 0); valid after start().
  std::uint16_t port() const { return port_; }

  /// Consumer-side flow control: report `n` synopses drained out of the
  /// channel, freeing watermark room for further publishes.
  void ack(std::uint64_t n);

  std::size_t active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Connections that completed the hello and have since ended (goodbye or
  /// disconnect). `serve --once` exits when this goes positive and the
  /// pipeline has drained.
  std::uint64_t sessions_finished() const {
    return sessions_.load(std::memory_order_relaxed);
  }

  /// Synopses published minus acked — the channel backlog this server is
  /// responsible for.
  std::uint64_t outstanding() const {
    return published_.load(std::memory_order_relaxed) -
           acked_.load(std::memory_order_relaxed);
  }

  /// True once every decoded batch has been published (nothing pending).
  bool drained() const;

  Stats stats() const;

 private:
  struct Connection;
  struct Impl;

  void io_loop();

  core::SynopsisChannel* channel_;
  Options options_;
  std::unique_ptr<Impl> impl_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::uint16_t port_ = 0;

  std::atomic<std::size_t> active_{0};
  std::atomic<std::uint64_t> sessions_{0};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> acked_{0};
};

}  // namespace saad::net
