#include "core/logger.h"

#include <cassert>

#include "core/tracker.h"

namespace saad::core {

void CountingSink::write(Level level, LogPointId, std::string_view message) {
  auto& slot = per_level_[static_cast<std::size_t>(level)];
  slot.messages.fetch_add(1, std::memory_order_relaxed);
  // +1 for the newline a file appender would add.
  slot.bytes.fetch_add(message.size() + 1, std::memory_order_relaxed);
}

std::uint64_t CountingSink::messages(Level level) const {
  return per_level_[static_cast<std::size_t>(level)].messages.load(
      std::memory_order_relaxed);
}

std::uint64_t CountingSink::bytes(Level level) const {
  return per_level_[static_cast<std::size_t>(level)].bytes.load(
      std::memory_order_relaxed);
}

std::uint64_t CountingSink::total_messages() const {
  std::uint64_t sum = 0;
  for (const auto& slot : per_level_)
    sum += slot.messages.load(std::memory_order_relaxed);
  return sum;
}

std::uint64_t CountingSink::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& slot : per_level_)
    sum += slot.bytes.load(std::memory_order_relaxed);
  return sum;
}

void MemorySink::write(Level level, LogPointId point,
                       std::string_view message) {
  std::lock_guard lock(mu_);
  lines_.push_back(Line{level, point, std::string(message)});
  bytes_ += message.size() + 1;
}

void MemorySink::clear() {
  std::lock_guard lock(mu_);
  lines_.clear();
  bytes_ = 0;
}

Logger::Logger(const LogRegistry* registry, LogSink* sink, Level threshold)
    : registry_(registry), sink_(sink), threshold_(threshold) {
  assert(registry_ != nullptr && sink_ != nullptr);
}

void Logger::log(LogPointId point, std::string_view message) {
  // Tracepoint first: SAAD observes every log call, whatever the verbosity.
  if (tracker_ != nullptr) tracker_->on_log(point);
  const Level level = registry_->log_point(point).level;
  if (level >= threshold_) sink_->write(level, point, message);
}

}  // namespace saad::core
