#include "core/monitor.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/log_registry.h"
#include "core/telemetry.h"
#include "core/trace_io.h"
#include "core/varint.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace saad::core {

namespace {

struct MonitorMetrics {
  obs::Counter& polls;
  obs::Counter& discarded;

  MonitorMetrics()
      : polls(obs::MetricsRegistry::global().counter(
            "saad_monitor_polls_total", "Monitor::poll() calls.")),
        discarded(obs::MetricsRegistry::global().counter(
            "saad_monitor_discarded_total",
            "Synopses drained while idle (between training, recording, and "
            "arming) and discarded by policy.")) {}

  static MonitorMetrics& get() {
    static MonitorMetrics* metrics = new MonitorMetrics();
    return *metrics;
  }
};

}  // namespace

void detail::register_monitor_metrics() { MonitorMetrics::get(); }

Monitor::Monitor(const LogRegistry* registry, const Clock* clock)
    : registry_(registry), clock_(clock) {
  assert(registry_ != nullptr && clock_ != nullptr);
}

TaskExecutionTracker& Monitor::tracker(HostId host) {
  if (host >= trackers_.size()) trackers_.resize(host + 1);
  if (trackers_[host] == nullptr) {
    trackers_[host] = std::make_unique<TaskExecutionTracker>(
        host, clock_, [this](const Synopsis& s) { channel_.push(s); });
  }
  return *trackers_[host];
}

void Monitor::start_training() {
  // Discard anything queued before training formally began.
  std::vector<Synopsis> scratch;
  channel_.drain(scratch);
  training_trace_.clear();
  mode_ = Mode::kTraining;
  obs::FlightRecorder::global().record(obs::EventKind::kModeChange,
                                       "monitor: training started");
}

void Monitor::start_recording(TraceWriter* writer) {
  assert(writer != nullptr);
  // Discard anything queued before recording formally began.
  std::vector<Synopsis> scratch;
  channel_.drain(scratch);
  trace_writer_ = writer;
  mode_ = Mode::kRecording;
  obs::FlightRecorder::global().record(obs::EventKind::kModeChange,
                                       "monitor: recording to %s",
                                       writer->path().c_str());
}

bool Monitor::stop_recording() {
  if (mode_ != Mode::kRecording)
    throw std::logic_error("Monitor::stop_recording without start_recording");
  poll(clock_->now());
  TraceWriter* writer = trace_writer_;
  trace_writer_ = nullptr;
  mode_ = Mode::kIdle;
  obs::FlightRecorder::global().record(
      obs::EventKind::kModeChange,
      "monitor: recording stopped (%llu synopses, %llu blocks)",
      static_cast<unsigned long long>(writer->synopses_written()),
      static_cast<unsigned long long>(writer->blocks_written()));
  return writer->flush();
}

void Monitor::train(const TrainingConfig& config) {
  if (mode_ != Mode::kTraining)
    throw std::logic_error("Monitor::train without start_training");
  channel_.drain(training_trace_);
  model_ = std::make_unique<OutlierModel>(
      OutlierModel::train(training_trace_, config));
  mode_ = Mode::kIdle;
  obs::FlightRecorder::global().record(
      obs::EventKind::kModelReload,
      "monitor: trained model on %zu synopses (%zu stages)",
      training_trace_.size(), model_->num_stages());
}

void Monitor::set_model(OutlierModel model) {
  model_ = std::make_unique<OutlierModel>(std::move(model));
  obs::FlightRecorder::global().record(
      obs::EventKind::kModelReload,
      "monitor: external model loaded (%zu stages)", model_->num_stages());
}

void Monitor::arm(const DetectorConfig& config) {
  if (model_ == nullptr)
    throw std::logic_error("Monitor::arm requires a trained model");
  // Drop synopses produced between training and arming.
  std::vector<Synopsis> scratch;
  channel_.drain(scratch);
  analyzer_ = std::make_unique<AnalyzerPool>(model_.get(), config);
  mode_ = Mode::kDetecting;
  obs::FlightRecorder::global().record(
      obs::EventKind::kModeChange, "monitor: armed (%zu analyzer threads)",
      analyzer_->threads());
}

std::vector<Anomaly> Monitor::poll(UsTime now) {
  if constexpr (obs::kMetricsEnabled) MonitorMetrics::get().polls.inc();
  std::vector<Synopsis> batch;
  channel_.drain(batch);
  if (mode_ == Mode::kTraining) {
    training_trace_.insert(training_trace_.end(), batch.begin(), batch.end());
    return {};
  }
  if (mode_ == Mode::kRecording) {
    for (const auto& s : batch) trace_writer_->append(s);
    return {};
  }
  if (mode_ != Mode::kDetecting) {  // idle: batch is discarded
    if constexpr (obs::kMetricsEnabled) {
      if (!batch.empty())
        MonitorMetrics::get().discarded.inc(batch.size());
    }
    return {};
  }
  for (const auto& s : batch) analyzer_->ingest(s);
  return analyzer_->advance_to(now);
}

std::vector<Anomaly> Monitor::finish() {
  if (analyzer_ == nullptr) return {};
  auto out = poll(clock_->now());
  auto tail = analyzer_->finish();
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

namespace {
constexpr std::uint64_t kMonitorStateVersion = 1;
}

bool Monitor::save_state(std::vector<std::uint8_t>& out) const {
  if (analyzer_ == nullptr || model_ == nullptr) return false;
  put_varint(kMonitorStateVersion, out);
  std::vector<std::uint8_t> model_bytes;
  model_->save(model_bytes);
  put_varint(model_bytes.size(), out);
  out.insert(out.end(), model_bytes.begin(), model_bytes.end());
  const DetectorConfig& config = analyzer_->config();
  put_varint(zigzag(config.window), out);
  put_double(config.alpha, out);
  put_varint(static_cast<std::uint64_t>(config.test_kind), out);
  put_varint(config.min_n, out);
  put_varint(config.new_signature_is_anomaly ? 1 : 0, out);
  put_varint(config.bonferroni ? 1 : 0, out);
  put_varint(config.analyzer_threads, out);
  std::vector<std::uint8_t> analyzer_bytes;
  analyzer_->save_state(analyzer_bytes);
  put_varint(analyzer_bytes.size(), out);
  out.insert(out.end(), analyzer_bytes.begin(), analyzer_bytes.end());
  return true;
}

bool Monitor::restore_state(std::span<const std::uint8_t> in) {
  std::uint64_t v = 0;
  if (!get_varint(in, v) || v != kMonitorStateVersion) return false;
  if (!get_varint(in, v) || v > in.size()) return false;
  auto model = OutlierModel::load(in.first(static_cast<std::size_t>(v)));
  if (!model) return false;
  in = in.subspan(static_cast<std::size_t>(v));
  DetectorConfig config;
  if (!get_varint(in, v)) return false;
  config.window = unzigzag(v);
  if (config.window <= 0) return false;
  if (!get_double(in, config.alpha) || !std::isfinite(config.alpha) ||
      config.alpha <= 0.0 || config.alpha >= 1.0) {
    return false;
  }
  if (!get_varint(in, v) || v > 2) return false;
  config.test_kind = static_cast<stats::ProportionTestKind>(v);
  if (!get_varint(in, config.min_n)) return false;
  if (!get_varint(in, v) || v > 1) return false;
  config.new_signature_is_anomaly = v != 0;
  if (!get_varint(in, v) || v > 1) return false;
  config.bonferroni = v != 0;
  if (!get_varint(in, v)) return false;
  config.analyzer_threads = static_cast<std::size_t>(v);
  if (!get_varint(in, v) || v != in.size()) return false;

  // All parsed; build the new plane before touching the monitor, so a
  // malformed analyzer payload leaves the current state intact.
  auto restored = std::make_unique<OutlierModel>(std::move(*model));
  auto analyzer = std::make_unique<AnalyzerPool>(restored.get(), config);
  if (!analyzer->restore_state(in)) return false;

  std::vector<Synopsis> scratch;  // arm() discipline: drop the backlog
  channel_.drain(scratch);
  model_ = std::move(restored);
  analyzer_ = std::move(analyzer);
  mode_ = Mode::kDetecting;
  obs::FlightRecorder::global().record(
      obs::EventKind::kModeChange,
      "monitor: restored from checkpoint state (%zu analyzer threads)",
      analyzer_->threads());
  return true;
}

}  // namespace saad::core
