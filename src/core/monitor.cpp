#include "core/monitor.h"

#include <cassert>
#include <stdexcept>

#include "core/log_registry.h"
#include "core/trace_io.h"

namespace saad::core {

Monitor::Monitor(const LogRegistry* registry, const Clock* clock)
    : registry_(registry), clock_(clock) {
  assert(registry_ != nullptr && clock_ != nullptr);
}

TaskExecutionTracker& Monitor::tracker(HostId host) {
  if (host >= trackers_.size()) trackers_.resize(host + 1);
  if (trackers_[host] == nullptr) {
    trackers_[host] = std::make_unique<TaskExecutionTracker>(
        host, clock_, [this](const Synopsis& s) { channel_.push(s); });
  }
  return *trackers_[host];
}

void Monitor::start_training() {
  // Discard anything queued before training formally began.
  std::vector<Synopsis> scratch;
  channel_.drain(scratch);
  training_trace_.clear();
  mode_ = Mode::kTraining;
}

void Monitor::start_recording(TraceWriter* writer) {
  assert(writer != nullptr);
  // Discard anything queued before recording formally began.
  std::vector<Synopsis> scratch;
  channel_.drain(scratch);
  trace_writer_ = writer;
  mode_ = Mode::kRecording;
}

bool Monitor::stop_recording() {
  if (mode_ != Mode::kRecording)
    throw std::logic_error("Monitor::stop_recording without start_recording");
  poll(clock_->now());
  TraceWriter* writer = trace_writer_;
  trace_writer_ = nullptr;
  mode_ = Mode::kIdle;
  return writer->flush();
}

void Monitor::train(const TrainingConfig& config) {
  if (mode_ != Mode::kTraining)
    throw std::logic_error("Monitor::train without start_training");
  channel_.drain(training_trace_);
  model_ = std::make_unique<OutlierModel>(
      OutlierModel::train(training_trace_, config));
  mode_ = Mode::kIdle;
}

void Monitor::set_model(OutlierModel model) {
  model_ = std::make_unique<OutlierModel>(std::move(model));
}

void Monitor::arm(const DetectorConfig& config) {
  if (model_ == nullptr)
    throw std::logic_error("Monitor::arm requires a trained model");
  // Drop synopses produced between training and arming.
  std::vector<Synopsis> scratch;
  channel_.drain(scratch);
  analyzer_ = std::make_unique<AnalyzerPool>(model_.get(), config);
  mode_ = Mode::kDetecting;
}

std::vector<Anomaly> Monitor::poll(UsTime now) {
  std::vector<Synopsis> batch;
  channel_.drain(batch);
  if (mode_ == Mode::kTraining) {
    training_trace_.insert(training_trace_.end(), batch.begin(), batch.end());
    return {};
  }
  if (mode_ == Mode::kRecording) {
    for (const auto& s : batch) trace_writer_->append(s);
    return {};
  }
  if (mode_ != Mode::kDetecting) return {};  // idle: batch is discarded
  for (const auto& s : batch) analyzer_->ingest(s);
  return analyzer_->advance_to(now);
}

std::vector<Anomaly> Monitor::finish() {
  if (analyzer_ == nullptr) return {};
  auto out = poll(clock_->now());
  auto tail = analyzer_->finish();
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

}  // namespace saad::core
