#include "core/incidents.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/report.h"

namespace saad::core {

std::vector<Incident> group_incidents(const std::vector<Anomaly>& anomalies,
                                      std::size_t max_gap_windows) {
  // Bucket by identity, then sweep windows in order.
  using Key = std::tuple<HostId, StageId, AnomalyKind>;
  std::map<Key, std::vector<const Anomaly*>> buckets;
  for (const auto& a : anomalies)
    buckets[{a.host, a.stage, a.kind}].push_back(&a);

  std::vector<Incident> incidents;
  for (auto& [key, list] : buckets) {
    std::sort(list.begin(), list.end(),
              [](const Anomaly* a, const Anomaly* b) {
                return a->window < b->window;
              });
    Incident current;
    bool open = false;
    auto flush = [&] {
      if (open) incidents.push_back(current);
      open = false;
    };
    for (const Anomaly* a : list) {
      if (open && a->window > current.last_window + max_gap_windows + 1) {
        flush();
      }
      if (!open) {
        current = Incident{};
        current.host = a->host;
        current.stage = a->stage;
        current.kind = a->kind;
        current.first_window = a->window;
        current.last_window = a->window;
        open = true;
      }
      current.last_window = a->window;
      current.windows++;
      current.any_new_signature |= a->due_to_new_signature;
      if (a->p_value <= current.min_p_value) {
        current.min_p_value = a->p_value;
        current.example_signature = a->example_signature;
      }
    }
    flush();
  }
  std::sort(incidents.begin(), incidents.end(),
            [](const Incident& a, const Incident& b) {
              if (a.first_window != b.first_window)
                return a.first_window < b.first_window;
              if (a.host != b.host) return a.host < b.host;
              return a.stage < b.stage;
            });
  return incidents;
}

std::string describe(const Incident& incident, const LogRegistry& registry) {
  char buf[160];
  std::snprintf(
      buf, sizeof(buf), "windows %zu-%zu (%zu flagged): %s %s%s, p<=%.2g",
      incident.first_window, incident.last_window, incident.windows,
      incident.kind == AnomalyKind::kFlow ? "FLOW" : "PERF",
      stage_host_label(registry, incident.stage, incident.host).c_str(),
      incident.any_new_signature ? ", new signature" : "",
      incident.min_p_value);
  return buf;
}

}  // namespace saad::core
