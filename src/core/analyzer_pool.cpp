#include "core/analyzer_pool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <tuple>

#include "core/telemetry.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace saad::core {

namespace {

// Pool-level metrics; per-worker series live on the Worker structs.
struct PoolMetrics {
  obs::Counter& ingested;
  obs::Counter& dispatch_batches;
  obs::Histogram& dispatch_batch_size;
  obs::Histogram& merge_us;
  obs::Gauge& workers;
  obs::Counter& model_swaps;
  obs::Gauge& model_epoch;

  PoolMetrics()
      : ingested(obs::MetricsRegistry::global().counter(
            "saad_analyzer_ingested_total",
            "Synopses routed into the analyzer pool.")),
        dispatch_batches(obs::MetricsRegistry::global().counter(
            "saad_analyzer_dispatch_batches_total",
            "Ingest batches handed to worker queues.")),
        dispatch_batch_size(obs::MetricsRegistry::global().histogram(
            "saad_analyzer_dispatch_batch_size",
            "Synopses per dispatched worker batch.", obs::size_bounds())),
        merge_us(obs::MetricsRegistry::global().histogram(
            "saad_analyzer_merge_us",
            "Window-close barrier latency: flush + worker close + "
            "deterministic merge, microseconds.",
            obs::latency_bounds_us())),
        workers(obs::MetricsRegistry::global().gauge(
            "saad_analyzer_workers",
            "Worker threads of the most recently constructed pool (1 = "
            "inline serial path).")),
        model_swaps(obs::MetricsRegistry::global().counter(
            "saad_analyzer_model_swaps_total",
            "Hot model reloads applied at a window boundary.")),
        model_epoch(obs::MetricsRegistry::global().gauge(
            "saad_analyzer_model_epoch",
            "Model epoch of the most recently constructed pool (0 = the "
            "construction model, +1 per applied swap).")) {}

  static PoolMetrics& get() {
    static PoolMetrics* metrics = new PoolMetrics();
    return *metrics;
  }
};

obs::Counter& worker_counter(const char* name, const char* help,
                             std::size_t index) {
  return obs::MetricsRegistry::global().counter(
      name, help,
      {{"worker", std::to_string(index % obs::kMaxIndexedLabels)}});
}

std::uint64_t mix64(std::uint64_t x) {
  // SplitMix64 finalizer: full avalanche, so consecutive host/stage ids
  // spread evenly over the partitions.
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace

void detail::register_analyzer_pool_metrics() {
  PoolMetrics::get();
  // The per-worker families register one series per constructed worker;
  // force index 0 so the families exist even for serial-path commands.
  worker_counter("saad_analyzer_worker_busy_us_total",
                 "Microseconds each worker spent processing jobs (worker "
                 "label is the worker index mod 16).",
                 0);
  worker_counter("saad_analyzer_worker_jobs_total",
                 "Jobs (ingest batches and window closes) each worker "
                 "completed.",
                 0);
}

std::size_t AnalyzerPool::partition(HostId host, StageId stage,
                                    std::size_t n) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(host) << 32) ^ static_cast<std::uint64_t>(stage);
  return static_cast<std::size_t>(mix64(key) % n);
}

AnalyzerPool::AnalyzerPool(const OutlierModel* model, DetectorConfig config)
    : model_(model), config_(config) {
  assert(model_ != nullptr);
  std::size_t n = config_.analyzer_threads;
  if (n == 0) n = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  // Bonferroni counts tests across the whole window — a partition cannot see
  // that count locally, so the pool stays serial to keep verdicts exact.
  if (config_.bonferroni) n = 1;
  if (n <= 1) {
    serial_ = std::make_unique<AnomalyDetector>(model_, config_);
    if constexpr (obs::kMetricsEnabled) PoolMetrics::get().workers.set(1);
    return;
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->detector = std::make_unique<AnomalyDetector>(model_, config_);
    worker->pending.reserve(kDispatchBatch);
    if constexpr (obs::kMetricsEnabled) {
      worker->busy_us = &worker_counter(
          "saad_analyzer_worker_busy_us_total",
          "Microseconds each worker spent processing jobs (worker label is "
          "the worker index mod 16).",
          i);
      worker->jobs_done = &worker_counter(
          "saad_analyzer_worker_jobs_total",
          "Jobs (ingest batches and window closes) each worker completed.",
          i);
    }
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_)
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
  if constexpr (obs::kMetricsEnabled) {
    PoolMetrics::get().workers.set(static_cast<std::int64_t>(n));
  }
  obs::FlightRecorder::global().record(
      obs::EventKind::kWorkerStart, "analyzer pool: %zu workers started", n);
}

AnalyzerPool::~AnalyzerPool() {
  for (auto& worker : workers_) {
    {
      std::lock_guard lock(worker->mu);
      worker->stop = true;
    }
    worker->cv.notify_one();
  }
  for (auto& worker : workers_)
    if (worker->thread.joinable()) worker->thread.join();
  if (!workers_.empty()) {
    obs::FlightRecorder::global().record(
        obs::EventKind::kWorkerStop, "analyzer pool: %zu workers joined",
        workers_.size());
  }
}

void AnalyzerPool::worker_loop(Worker& worker) {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(worker.mu);
      worker.cv.wait(lock,
                     [&] { return worker.stop || !worker.jobs.empty(); });
      if (worker.jobs.empty()) return;  // stop && drained
      job = std::move(worker.jobs.front());
      worker.jobs.pop_front();
    }
    std::chrono::steady_clock::time_point job_begin;
    if constexpr (obs::kMetricsEnabled)
      job_begin = std::chrono::steady_clock::now();
    for (const auto& s : job.batch) worker.detector->ingest(s);
    if (job.close) {
      *job.out = job.close_all ? worker.detector->finish()
                               : worker.detector->advance_to(job.now);
    }
    if (job.save_out != nullptr) worker.detector->save_state(*job.save_out);
    if constexpr (obs::kMetricsEnabled) {
      worker.busy_us->inc(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - job_begin)
              .count()));
      worker.jobs_done->inc();
    }
    if (job.close || job.save_out != nullptr) {
      {
        std::lock_guard lock(done_mu_);
        outstanding_--;
      }
      done_cv_.notify_one();
    }
  }
}

void AnalyzerPool::enqueue(Worker& worker, Job job) {
  {
    std::lock_guard lock(worker.mu);
    worker.jobs.push_back(std::move(job));
  }
  worker.cv.notify_one();
}

void AnalyzerPool::flush_pending(Worker& worker) {
  if (worker.pending.empty()) return;
  if constexpr (obs::kMetricsEnabled) {
    auto& metrics = PoolMetrics::get();
    metrics.dispatch_batches.inc();
    metrics.dispatch_batch_size.observe(
        static_cast<std::int64_t>(worker.pending.size()));
  }
  Job job;
  job.batch.swap(worker.pending);
  worker.pending.reserve(kDispatchBatch);
  enqueue(worker, std::move(job));
}

void AnalyzerPool::ingest(const Synopsis& synopsis) {
  ingested_++;
  if constexpr (obs::kMetricsEnabled) PoolMetrics::get().ingested.inc();
  if (serial_ != nullptr) {
    serial_->ingest(synopsis);
    return;
  }
  Worker& worker =
      *workers_[partition(synopsis.host, synopsis.stage, workers_.size())];
  worker.pending.push_back(synopsis);
  if (worker.pending.size() >= kDispatchBatch) flush_pending(worker);
}

void AnalyzerPool::apply_pending_model() {
  if (pending_model_ == nullptr) return;
  if (serial_ != nullptr) {
    serial_->rebind_model(pending_model_);
  } else {
    // Workers are idle (the caller just waited out a barrier, and ingest is
    // single-threaded with the caller); the next enqueue's mutex handoff
    // orders these writes before any worker touches its detector again.
    for (auto& worker : workers_) worker->detector->rebind_model(pending_model_);
  }
  model_ = pending_model_;
  pending_model_ = nullptr;
  ++model_epoch_;
  if constexpr (obs::kMetricsEnabled) {
    auto& metrics = PoolMetrics::get();
    metrics.model_swaps.inc();
    metrics.model_epoch.set(static_cast<std::int64_t>(model_epoch_));
  }
  obs::FlightRecorder::global().record(
      obs::EventKind::kModelReload,
      "analyzer pool: model swapped at window boundary (epoch %llu)",
      static_cast<unsigned long long>(model_epoch_));
}

void AnalyzerPool::swap_model(const OutlierModel* model) {
  assert(model != nullptr);
  pending_model_ = model;
}

void AnalyzerPool::save_state(std::vector<std::uint8_t>& out) {
  if (serial_ != nullptr) {
    serial_->save_state(out);
    return;
  }
  std::vector<std::vector<std::uint8_t>> slots(workers_.size());
  {
    std::lock_guard lock(done_mu_);
    outstanding_ = workers_.size();
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    flush_pending(*workers_[i]);
    Job job;
    job.save_out = &slots[i];
    enqueue(*workers_[i], std::move(job));
  }
  {
    std::unique_lock lock(done_mu_);
    done_cv_.wait(lock, [&] { return outstanding_ == 0; });
  }
  // Fold the per-worker states into one canonical state. Partitions own
  // disjoint (host, stage) keys, so the merge is a disjoint union; cursors
  // max (a worker that saw no traffic lags the global close cursor).
  AnomalyDetector scratch(model_, config_);
  for (const auto& slot : slots) {
    const bool ok = scratch.restore_state(slot, /*merge=*/true);
    assert(ok);
    (void)ok;
  }
  scratch.ingested_ = ingested_;  // pool-level count is authoritative
  scratch.save_state(out);
}

bool AnalyzerPool::restore_state(std::span<const std::uint8_t> in) {
  if (serial_ != nullptr) {
    if (!serial_->restore_state(in)) return false;
    ingested_ = serial_->ingested();
    restored_next_window_ = serial_->next_window_to_close();
    return true;
  }
  AnomalyDetector scratch(model_, config_);
  if (!scratch.restore_state(in)) return false;
  ingested_ = scratch.ingested_;
  restored_next_window_ = scratch.next_window_to_close_;
  // Split the canonical state across the current partitions. Every worker
  // gets the global close cursor: a restored pool then reattributes late
  // synopses exactly like the serial path, regardless of which partitions
  // had traffic before the checkpoint. restore precedes the first ingest,
  // so workers are idle and the next enqueue's mutex handoff publishes
  // these writes to the worker threads.
  for (auto& worker : workers_) {
    worker->detector = std::make_unique<AnomalyDetector>(model_, config_);
    worker->detector->next_window_to_close_ = scratch.next_window_to_close_;
  }
  for (auto& [index, window] : scratch.open_windows_) {
    for (auto& [key, stats] : window) {
      AnomalyDetector& detector =
          *workers_[partition(key.first, key.second, workers_.size())]
               ->detector;
      detector.open_windows_[index][key] = std::move(stats);
    }
  }
  return true;
}

std::vector<Anomaly> AnalyzerPool::close_windows(UsTime now, bool close_all) {
  if (serial_ != nullptr) {
    auto out = close_all ? serial_->finish() : serial_->advance_to(now);
    apply_pending_model();
    return out;
  }

  std::chrono::steady_clock::time_point merge_begin;
  if constexpr (obs::kMetricsEnabled)
    merge_begin = std::chrono::steady_clock::now();

  std::vector<std::vector<Anomaly>> slots(workers_.size());
  {
    std::lock_guard lock(done_mu_);
    outstanding_ = workers_.size();
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    flush_pending(*workers_[i]);
    Job job;
    job.close = true;
    job.now = now;
    job.close_all = close_all;
    job.out = &slots[i];
    enqueue(*workers_[i], std::move(job));
  }
  {
    std::unique_lock lock(done_mu_);
    done_cv_.wait(lock, [&] { return outstanding_ == 0; });
  }

  std::vector<Anomaly> out;
  std::size_t total = 0;
  for (const auto& slot : slots) total += slot.size();
  out.reserve(total);
  for (auto& slot : slots)
    out.insert(out.end(), std::make_move_iterator(slot.begin()),
               std::make_move_iterator(slot.end()));
  // Reconstruct the serial emission order; at most one anomaly exists per
  // sort key, so the order (and thus the byte stream) is fully determined.
  std::sort(out.begin(), out.end(), [](const Anomaly& a, const Anomaly& b) {
    return std::tie(a.window, a.host, a.stage, a.kind) <
           std::tie(b.window, b.host, b.stage, b.kind);
  });
  // The barrier just drained every worker: this is a window boundary, the
  // only point a staged hot model reload may take effect.
  apply_pending_model();
  if constexpr (obs::kMetricsEnabled) {
    PoolMetrics::get().merge_us.observe(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - merge_begin)
            .count());
  }
  return out;
}

std::vector<Anomaly> AnalyzerPool::advance_to(UsTime now) {
  return close_windows(now, /*close_all=*/false);
}

std::vector<Anomaly> AnalyzerPool::finish() {
  return close_windows(/*now=*/0, /*close_all=*/true);
}

}  // namespace saad::core
