#include "core/channel.h"

#include <thread>

#include "core/telemetry.h"
#include "obs/metrics.h"

namespace saad::core {

namespace {

// Process-wide channel metrics (all SynopsisChannel instances accumulate into
// the same families — the Prometheus model). Built once, on first use, from
// the global registry; the references stay valid for the process lifetime.
struct ChannelMetrics {
  obs::Counter& enqueued;
  obs::Counter& dequeued;
  obs::Counter& bytes;
  obs::Counter& drains;
  obs::Histogram& batch_size;
  std::vector<obs::Gauge*> shard_depth;  // label shard="i", i mod cap

  ChannelMetrics()
      : enqueued(obs::MetricsRegistry::global().counter(
            "saad_channel_enqueued_total",
            "Synopses made visible to drain() (direct push or producer "
            "flush).")),
        dequeued(obs::MetricsRegistry::global().counter(
            "saad_channel_dequeued_total",
            "Synopses handed to the consumer by drain().")),
        bytes(obs::MetricsRegistry::global().counter(
            "saad_channel_bytes_total",
            "Wire volume (encoded bytes) of enqueued synopses.")),
        drains(obs::MetricsRegistry::global().counter(
            "saad_channel_drains_total", "Consumer drain() calls.")),
        batch_size(obs::MetricsRegistry::global().histogram(
            "saad_channel_producer_batch_size",
            "Synopses per producer flush (batched path).",
            obs::size_bounds())) {
    shard_depth.reserve(obs::kMaxIndexedLabels);
    for (std::size_t i = 0; i < obs::kMaxIndexedLabels; ++i) {
      shard_depth.push_back(&obs::MetricsRegistry::global().gauge(
          "saad_channel_depth",
          "Synopses currently queued, per shard (shard label is the shard "
          "index mod 16).",
          {{"shard", std::to_string(i)}}));
    }
  }

  obs::Gauge& depth(std::size_t shard) {
    return *shard_depth[shard % shard_depth.size()];
  }

  static ChannelMetrics& get() {
    static ChannelMetrics* metrics = new ChannelMetrics();
    return *metrics;
  }
};

}  // namespace

void detail::register_channel_metrics() { ChannelMetrics::get(); }

SynopsisChannel::SynopsisChannel(std::size_t shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::size_t SynopsisChannel::shard_for_this_thread() const {
  // Stable per thread for the channel's lifetime, so a single producer
  // thread's synopses stay FIFO within one shard.
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  // Fibonacci multiplier spreads consecutive thread-id hashes (often small
  // integers) across shards.
  return (h * 0x9E3779B97F4A7C15ull >> 32) % shards_.size();
}

void SynopsisChannel::push(const Synopsis& s) {
  const std::size_t wire = encoded_size(s);  // compute outside the lock
  const std::size_t shard_index = shard_for_this_thread();
  Shard& shard = *shards_[shard_index];
  {
    std::lock_guard lock(shard.mu);
    shard.items.push_back(s);
  }
  pushed_.fetch_add(1, std::memory_order_relaxed);
  encoded_bytes_.fetch_add(wire, std::memory_order_relaxed);
  if constexpr (obs::kMetricsEnabled) {
    auto& metrics = ChannelMetrics::get();
    metrics.enqueued.inc();
    metrics.bytes.inc(wire);
    metrics.depth(shard_index).add(1);
  }
}

void SynopsisChannel::push_batch(std::size_t shard_index,
                                 std::vector<Synopsis>& batch) {
  if (batch.empty()) return;
  std::uint64_t wire = 0;
  for (const auto& s : batch) wire += encoded_size(s);
  Shard& shard = *shards_[shard_index];
  {
    std::lock_guard lock(shard.mu);
    shard.items.insert(shard.items.end(),
                       std::make_move_iterator(batch.begin()),
                       std::make_move_iterator(batch.end()));
  }
  pushed_.fetch_add(batch.size(), std::memory_order_relaxed);
  encoded_bytes_.fetch_add(wire, std::memory_order_relaxed);
  if constexpr (obs::kMetricsEnabled) {
    auto& metrics = ChannelMetrics::get();
    metrics.enqueued.inc(batch.size());
    metrics.bytes.inc(wire);
    metrics.batch_size.observe(static_cast<std::int64_t>(batch.size()));
    metrics.depth(shard_index).add(static_cast<std::int64_t>(batch.size()));
  }
  batch.clear();
}

void SynopsisChannel::drain(std::vector<Synopsis>& out) {
  std::size_t queued = 0;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    queued += shard->items.size();
  }
  out.reserve(out.size() + queued);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::vector<Synopsis> items;
    {
      std::lock_guard lock(shards_[i]->mu);
      items.swap(shards_[i]->items);
    }
    if constexpr (obs::kMetricsEnabled) {
      if (!items.empty()) {
        auto& metrics = ChannelMetrics::get();
        metrics.dequeued.inc(items.size());
        metrics.depth(i).sub(static_cast<std::int64_t>(items.size()));
      }
    }
    out.insert(out.end(), std::make_move_iterator(items.begin()),
               std::make_move_iterator(items.end()));
  }
  if constexpr (obs::kMetricsEnabled) ChannelMetrics::get().drains.inc();
}

std::uint64_t SynopsisChannel::pushed() const {
  return pushed_.load(std::memory_order_relaxed);
}

std::uint64_t SynopsisChannel::encoded_bytes() const {
  return encoded_bytes_.load(std::memory_order_relaxed);
}

// ---- Producer --------------------------------------------------------------

SynopsisChannel::Producer::Producer(SynopsisChannel& channel)
    : channel_(&channel),
      shard_(channel.next_producer_shard_.fetch_add(
                 1, std::memory_order_relaxed) %
             channel.shards_.size()) {
  buffer_.reserve(kBatch);
}

SynopsisChannel::Producer::~Producer() {
  if (channel_ != nullptr) flush();
}

SynopsisChannel::Producer::Producer(Producer&& other) noexcept
    : channel_(other.channel_),
      shard_(other.shard_),
      buffer_(std::move(other.buffer_)) {
  other.channel_ = nullptr;
}

void SynopsisChannel::Producer::push(const Synopsis& s) {
  buffer_.push_back(s);
  if (buffer_.size() >= kBatch) flush();
}

void SynopsisChannel::Producer::flush() {
  channel_->push_batch(shard_, buffer_);
}

}  // namespace saad::core
