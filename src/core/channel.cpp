#include "core/channel.h"

namespace saad::core {

void SynopsisChannel::push(const Synopsis& s) {
  const std::size_t wire = encoded_size(s);
  std::lock_guard lock(mu_);
  queue_.push_back(s);
  pushed_++;
  encoded_bytes_ += wire;
}

void SynopsisChannel::drain(std::vector<Synopsis>& out) {
  std::lock_guard lock(mu_);
  out.reserve(out.size() + queue_.size());
  for (auto& s : queue_) out.push_back(std::move(s));
  queue_.clear();
}

std::uint64_t SynopsisChannel::pushed() const {
  std::lock_guard lock(mu_);
  return pushed_;
}

std::uint64_t SynopsisChannel::encoded_bytes() const {
  std::lock_guard lock(mu_);
  return encoded_bytes_;
}

}  // namespace saad::core
