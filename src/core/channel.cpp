#include "core/channel.h"

#include <thread>

namespace saad::core {

SynopsisChannel::SynopsisChannel(std::size_t shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::size_t SynopsisChannel::shard_for_this_thread() const {
  // Stable per thread for the channel's lifetime, so a single producer
  // thread's synopses stay FIFO within one shard.
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  // Fibonacci multiplier spreads consecutive thread-id hashes (often small
  // integers) across shards.
  return (h * 0x9E3779B97F4A7C15ull >> 32) % shards_.size();
}

void SynopsisChannel::push(const Synopsis& s) {
  const std::size_t wire = encoded_size(s);  // compute outside the lock
  Shard& shard = *shards_[shard_for_this_thread()];
  {
    std::lock_guard lock(shard.mu);
    shard.items.push_back(s);
  }
  pushed_.fetch_add(1, std::memory_order_relaxed);
  encoded_bytes_.fetch_add(wire, std::memory_order_relaxed);
}

void SynopsisChannel::push_batch(std::size_t shard_index,
                                 std::vector<Synopsis>& batch) {
  if (batch.empty()) return;
  std::uint64_t wire = 0;
  for (const auto& s : batch) wire += encoded_size(s);
  Shard& shard = *shards_[shard_index];
  {
    std::lock_guard lock(shard.mu);
    shard.items.insert(shard.items.end(),
                       std::make_move_iterator(batch.begin()),
                       std::make_move_iterator(batch.end()));
  }
  pushed_.fetch_add(batch.size(), std::memory_order_relaxed);
  encoded_bytes_.fetch_add(wire, std::memory_order_relaxed);
  batch.clear();
}

void SynopsisChannel::drain(std::vector<Synopsis>& out) {
  std::size_t queued = 0;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    queued += shard->items.size();
  }
  out.reserve(out.size() + queued);
  for (auto& shard : shards_) {
    std::vector<Synopsis> items;
    {
      std::lock_guard lock(shard->mu);
      items.swap(shard->items);
    }
    out.insert(out.end(), std::make_move_iterator(items.begin()),
               std::make_move_iterator(items.end()));
  }
}

std::uint64_t SynopsisChannel::pushed() const {
  return pushed_.load(std::memory_order_relaxed);
}

std::uint64_t SynopsisChannel::encoded_bytes() const {
  return encoded_bytes_.load(std::memory_order_relaxed);
}

// ---- Producer --------------------------------------------------------------

SynopsisChannel::Producer::Producer(SynopsisChannel& channel)
    : channel_(&channel),
      shard_(channel.next_producer_shard_.fetch_add(
                 1, std::memory_order_relaxed) %
             channel.shards_.size()) {
  buffer_.reserve(kBatch);
}

SynopsisChannel::Producer::~Producer() {
  if (channel_ != nullptr) flush();
}

SynopsisChannel::Producer::Producer(Producer&& other) noexcept
    : channel_(other.channel_),
      shard_(other.shard_),
      buffer_(std::move(other.buffer_)) {
  other.channel_ = nullptr;
}

void SynopsisChannel::Producer::push(const Synopsis& s) {
  buffer_.push_back(s);
  if (buffer_.size() >= kBatch) flush();
}

void SynopsisChannel::Producer::flush() {
  channel_->push_batch(shard_, buffer_);
}

}  // namespace saad::core
