#include "core/source_lex.h"

#include <cctype>

namespace saad::core {

std::string mask_comments_and_strings(std::string_view source) {
  std::string code(source);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code[i] = code[i + 1] = '\x01';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code[i] = code[i + 1] = '\x01';
          ++i;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n')
          state = State::kCode;
        else
          code[i] = '\x01';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          code[i] = code[i + 1] = '\x01';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          code[i] = '\x01';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char close = state == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < source.size()) {
          code[i] = '\x01';
          if (next != '\n') code[i + 1] = '\x01';
          ++i;
        } else if (c == close) {
          state = State::kCode;
        } else if (c == '\n') {
          // Unterminated literal at end of line: bail back to code so one
          // bad line cannot swallow the rest of the file.
          state = State::kCode;
        } else {
          code[i] = '\x01';
        }
        break;
      }
    }
  }
  return code;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool word_at(std::string_view code, std::size_t pos, std::string_view word) {
  if (pos + word.size() > code.size()) return false;
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(code[pos + i])) != word[i])
      return false;
  }
  if (pos > 0 && is_ident_char(code[pos - 1])) return false;
  if (pos + word.size() < code.size() && is_ident_char(code[pos + word.size()]))
    return false;
  return true;
}

std::size_t skip_ws(std::string_view code, std::size_t pos) {
  while (pos < code.size() &&
         (std::isspace(static_cast<unsigned char>(code[pos])) ||
          code[pos] == '\x01')) {
    ++pos;
  }
  return pos;
}

std::size_t match_paren(std::string_view code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string_view::npos;
}

std::size_t match_brace(std::string_view code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '{') ++depth;
    if (code[i] == '}' && --depth == 0) return i + 1;
  }
  return std::string_view::npos;
}

}  // namespace saad::core
