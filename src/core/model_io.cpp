// Binary persistence for OutlierModel (declared in model.h).
//
// Format (all integers varint, all rates IEEE-754 doubles):
//   magic "SAADMDL1"
//   config: flow_share_threshold, duration_quantile, kfold_k,
//           unstable_factor, min_signature_samples
//   trained_tasks, num_stages
//   per stage: stage_id, task_count, train_flow_outlier_rate, num_signatures
//     per signature: point count, delta-encoded points, task_count, share,
//       flags (flow_outlier | perf_applicable << 1), duration_threshold,
//       train_perf_outlier_rate
#include <cmath>
#include <cstring>

#include "core/model.h"
#include "core/varint.h"

namespace saad::core {

namespace {
constexpr char kMagic[8] = {'S', 'A', 'A', 'D', 'M', 'D', 'L', '1'};

// Shares, rates, and quantiles are probabilities; anything else in those
// fields is corruption, not a model.
bool valid_rate(double d) { return std::isfinite(d) && d >= 0.0 && d <= 1.0; }
}

void OutlierModel::save(std::vector<std::uint8_t>& out) const {
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  put_double(config_.flow_share_threshold, out);
  put_double(config_.duration_quantile, out);
  put_varint(config_.kfold_k, out);
  put_double(config_.unstable_factor, out);
  put_varint(config_.min_signature_samples, out);

  put_varint(trained_tasks_, out);
  put_varint(stages_.size(), out);
  for (const auto& [stage_id, sm] : stages_) {
    put_varint(stage_id, out);
    put_varint(sm.task_count, out);
    put_double(sm.train_flow_outlier_rate, out);
    put_varint(sm.signatures.size(), out);
    for (const auto& [sig, ss] : sm.signatures) {
      put_varint(sig.points().size(), out);
      LogPointId prev = 0;
      for (const LogPointId p : sig.points()) {
        put_varint(static_cast<std::uint64_t>(p - prev), out);
        prev = p;
      }
      put_varint(ss.task_count, out);
      put_double(ss.share, out);
      const std::uint64_t flags =
          (ss.flow_outlier ? 1u : 0u) | (ss.perf_applicable ? 2u : 0u);
      put_varint(flags, out);
      put_varint(zigzag(ss.duration_threshold), out);
      put_double(ss.train_perf_outlier_rate, out);
    }
  }
}

std::optional<OutlierModel> OutlierModel::load(
    std::span<const std::uint8_t> in) {
  if (in.size() < sizeof(kMagic) ||
      std::memcmp(in.data(), kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  in = in.subspan(sizeof(kMagic));

  OutlierModel model;
  std::uint64_t v = 0;
  if (!get_double(in, model.config_.flow_share_threshold) ||
      !valid_rate(model.config_.flow_share_threshold)) {
    return std::nullopt;
  }
  if (!get_double(in, model.config_.duration_quantile) ||
      !valid_rate(model.config_.duration_quantile)) {
    return std::nullopt;
  }
  if (!get_varint(in, v)) return std::nullopt;
  model.config_.kfold_k = static_cast<std::size_t>(v);
  if (!get_double(in, model.config_.unstable_factor) ||
      !std::isfinite(model.config_.unstable_factor) ||
      model.config_.unstable_factor < 0.0) {
    return std::nullopt;
  }
  if (!get_varint(in, v)) return std::nullopt;
  model.config_.min_signature_samples = static_cast<std::size_t>(v);

  if (!get_varint(in, model.trained_tasks_)) return std::nullopt;
  std::uint64_t num_stages = 0;
  if (!get_varint(in, num_stages) || num_stages > 0x10000) return std::nullopt;
  for (std::uint64_t s = 0; s < num_stages; ++s) {
    StageModel sm;
    if (!get_varint(in, v) || v > 0xFFFF) return std::nullopt;
    sm.stage = static_cast<StageId>(v);
    if (!get_varint(in, sm.task_count)) return std::nullopt;
    if (!get_double(in, sm.train_flow_outlier_rate) ||
        !valid_rate(sm.train_flow_outlier_rate)) {
      return std::nullopt;
    }
    std::uint64_t num_sigs = 0;
    if (!get_varint(in, num_sigs) || num_sigs > 0x100000) return std::nullopt;
    for (std::uint64_t g = 0; g < num_sigs; ++g) {
      std::uint64_t num_points = 0;
      if (!get_varint(in, num_points) || num_points > 0x10000)
        return std::nullopt;
      std::vector<LogPointId> points;
      points.reserve(num_points);
      std::uint64_t prev = 0;
      for (std::uint64_t p = 0; p < num_points; ++p) {
        std::uint64_t delta = 0;
        if (!get_varint(in, delta)) return std::nullopt;
        prev += delta;
        if (prev > 0xFFFF) return std::nullopt;
        points.push_back(static_cast<LogPointId>(prev));
      }
      SignatureStats ss;
      if (!get_varint(in, ss.task_count)) return std::nullopt;
      if (!get_double(in, ss.share) || !valid_rate(ss.share))
        return std::nullopt;
      std::uint64_t flags = 0;
      if (!get_varint(in, flags) || flags > 3u) return std::nullopt;
      ss.flow_outlier = (flags & 1u) != 0;
      ss.perf_applicable = (flags & 2u) != 0;
      if (!get_varint(in, v)) return std::nullopt;
      ss.duration_threshold = unzigzag(v);
      // Thresholds are trained from task durations, which are never
      // negative; a negative value here is corruption.
      if (ss.duration_threshold < 0) return std::nullopt;
      if (!get_double(in, ss.train_perf_outlier_rate) ||
          !valid_rate(ss.train_perf_outlier_rate)) {
        return std::nullopt;
      }
      sm.signatures.emplace(Signature(std::move(points)), ss);
    }
    model.stages_.emplace(sm.stage, std::move(sm));
  }
  // A valid model consumes its input exactly; trailing bytes mean the file
  // is not what it claims to be (concatenated junk, a torn rewrite, ...).
  if (!in.empty()) return std::nullopt;
  return model;
}

}  // namespace saad::core
