// LEB128-style varint primitives shared by the synopsis codec, the trace
// file format and the model serializer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace saad::core {

inline void put_varint(std::uint64_t v, std::vector<std::uint8_t>& out) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Reads one varint from the front of `in`, advancing it. False on
/// truncated input, on encodings longer than 10 bytes, and on 10-byte
/// encodings whose final byte carries bits beyond the 64th — those bits
/// would otherwise be shifted out and silently dropped.
inline bool get_varint(std::span<const std::uint8_t>& in, std::uint64_t& v) {
  v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (in.empty()) return false;
    const std::uint8_t byte = in.front();
    in = in.subspan(1);
    // The 10th byte (shift 63) has exactly one bit of room left in a u64.
    if (shift == 63 && (byte & 0x7F) > 1) return false;
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;
}

inline std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Zig-zag mapping for signed values.
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Doubles are stored as their IEEE-754 bit pattern, little-endian.
inline void put_double(double d, std::vector<std::uint8_t>& out) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

inline bool get_double(std::span<const std::uint8_t>& in, double& d) {
  if (in.size() < 8) return false;
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i)
    bits |= static_cast<std::uint64_t>(in[static_cast<std::size_t>(i)])
            << (8 * i);
  in = in.subspan(8);
  __builtin_memcpy(&d, &bits, sizeof(d));
  return true;
}

}  // namespace saad::core
