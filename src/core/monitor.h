// Monitor: the end-to-end SAAD facade (Fig. 5). Wires per-host task execution
// trackers through the synopsis channel into either a training trace capture
// or the armed anomaly detector.
//
// Lifecycle:
//   Monitor mon(&registry, &clock);
//   auto& tracker = mon.tracker(host);      // attach to the host's Logger
//   mon.start_training();
//   ... run fault-free workload ...
//   mon.train(training_config);             // builds the outlier model
//   mon.arm(detector_config);               // switch to detection
//   ... run workload; periodically: auto anomalies = mon.poll(clock.now());
//   auto tail = mon.finish();
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/analyzer_pool.h"
#include "core/channel.h"
#include "core/detector.h"
#include "core/tracker.h"

namespace saad::core {

class LogRegistry;
class TraceWriter;

class Monitor {
 public:
  Monitor(const LogRegistry* registry, const Clock* clock);

  /// Tracker for `host`, created on first use. Stable address; attach it to
  /// the host's Logger(s) via Logger::set_tracker.
  TaskExecutionTracker& tracker(HostId host);

  /// Start capturing the fault-free training trace.
  void start_training();

  /// Start streaming every subsequent synopsis straight to `writer` (the
  /// crash-safe spill path: O(block) memory instead of an in-RAM trace, and
  /// everything up to the writer's last flush survives a crash). The writer
  /// must outlive recording; like start_training, anything queued beforehand
  /// is discarded. Synopses are handed to the writer on each poll().
  void start_recording(TraceWriter* writer);

  /// Drain outstanding synopses to the writer and seal the current block.
  /// Leaves the monitor idle; finalizing the writer stays with the caller.
  /// Returns the writer's health.
  bool stop_recording();

  /// Drain outstanding synopses into the training trace and build the model.
  /// Training on an empty trace is valid and yields an empty model (zero
  /// stages): once armed, every task then hits an unknown stage and raises a
  /// new-signature flow anomaly — loud, by design, rather than silent.
  void train(const TrainingConfig& config = {});

  /// Provide an externally trained model instead.
  void set_model(OutlierModel model);
  const OutlierModel* model() const { return model_.get(); }

  /// Switch to detection. Requires a trained model. With
  /// config.analyzer_threads > 1 detection fans out across an AnalyzerPool;
  /// anomaly output is identical to the serial path for any thread count.
  void arm(const DetectorConfig& config = {});
  bool armed() const { return analyzer_ != nullptr; }

  /// Drain the channel; when armed, ingest and close windows ending <= now.
  /// When training, append to the training trace instead. When idle (before
  /// start_training / arm), queued synopses are drained and *discarded* —
  /// the same policy arm() applies to synopses produced between training and
  /// arming — and an empty list is returned.
  std::vector<Anomaly> poll(UsTime now);

  /// Close all remaining windows. May be called repeatedly: each call closes
  /// the windows open at that point, so a second finish() with no new
  /// synopses in between returns an empty list. Returns empty when unarmed.
  std::vector<Anomaly> finish();

  // ---- Warm-restart state (checkpoint.h) -----------------------------------

  /// Serializes the armed detection plane: the model, the detector config,
  /// and every open window (AnalyzerPool::save_state). False unless armed.
  /// Trackers and the channel are not captured — in-flight tasks at crash
  /// time never produced a synopsis, so there is nothing to restore.
  bool save_state(std::vector<std::uint8_t>& out) const;

  /// Rebuilds the detection plane from save_state() bytes: loads the model,
  /// arms with the stored config (including its analyzer_threads — save and
  /// restore may use different thread counts of the same pool state), and
  /// restores the open windows. False on malformed input, leaving the
  /// monitor unchanged. Like arm(), discards anything queued beforehand.
  bool restore_state(std::span<const std::uint8_t> in);

  const std::vector<Synopsis>& training_trace() const {
    return training_trace_;
  }
  const SynopsisChannel& channel() const { return channel_; }
  const LogRegistry& registry() const { return *registry_; }

 private:
  enum class Mode { kIdle, kTraining, kRecording, kDetecting };

  const LogRegistry* registry_;
  const Clock* clock_;
  SynopsisChannel channel_;
  std::vector<std::unique_ptr<TaskExecutionTracker>> trackers_;  // by host
  std::vector<Synopsis> training_trace_;
  std::unique_ptr<OutlierModel> model_;
  std::unique_ptr<AnalyzerPool> analyzer_;
  TraceWriter* trace_writer_ = nullptr;  // non-null iff mode_ == kRecording
  Mode mode_ = Mode::kIdle;
};

}  // namespace saad::core
