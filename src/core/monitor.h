// Monitor: the end-to-end SAAD facade (Fig. 5). Wires per-host task execution
// trackers through the synopsis channel into either a training trace capture
// or the armed anomaly detector.
//
// Lifecycle:
//   Monitor mon(&registry, &clock);
//   auto& tracker = mon.tracker(host);      // attach to the host's Logger
//   mon.start_training();
//   ... run fault-free workload ...
//   mon.train(training_config);             // builds the outlier model
//   mon.arm(detector_config);               // switch to detection
//   ... run workload; periodically: auto anomalies = mon.poll(clock.now());
//   auto tail = mon.finish();
#pragma once

#include <memory>
#include <vector>

#include "core/channel.h"
#include "core/detector.h"
#include "core/tracker.h"

namespace saad::core {

class LogRegistry;

class Monitor {
 public:
  Monitor(const LogRegistry* registry, const Clock* clock);

  /// Tracker for `host`, created on first use. Stable address; attach it to
  /// the host's Logger(s) via Logger::set_tracker.
  TaskExecutionTracker& tracker(HostId host);

  /// Start capturing the fault-free training trace.
  void start_training();

  /// Drain outstanding synopses into the training trace and build the model.
  void train(const TrainingConfig& config = {});

  /// Provide an externally trained model instead.
  void set_model(OutlierModel model);
  const OutlierModel* model() const { return model_.get(); }

  /// Switch to detection. Requires a trained model.
  void arm(const DetectorConfig& config = {});
  bool armed() const { return detector_ != nullptr; }

  /// Drain the channel; when armed, ingest and close windows ending <= now.
  std::vector<Anomaly> poll(UsTime now);

  /// Close all remaining windows.
  std::vector<Anomaly> finish();

  const std::vector<Synopsis>& training_trace() const {
    return training_trace_;
  }
  const SynopsisChannel& channel() const { return channel_; }
  const LogRegistry& registry() const { return *registry_; }

 private:
  enum class Mode { kIdle, kTraining, kDetecting };

  const LogRegistry* registry_;
  const Clock* clock_;
  SynopsisChannel channel_;
  std::vector<std::unique_ptr<TaskExecutionTracker>> trackers_;  // by host
  std::vector<Synopsis> training_trace_;
  std::unique_ptr<OutlierModel> model_;
  std::unique_ptr<AnomalyDetector> detector_;
  Mode mode_ = Mode::kIdle;
};

}  // namespace saad::core
