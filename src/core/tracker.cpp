#include "core/tracker.h"

#include <algorithm>
#include <cassert>

namespace saad::core {

TaskContext::TaskContext(HostId host, StageId stage, TaskUid uid, UsTime start)
    : host_(host), stage_(stage), uid_(uid), start_(start), last_log_(start) {
  counts_.reserve(8);
}

void TaskContext::on_log(LogPointId point, UsTime now) {
  last_log_ = now;
  // Sorted small-vector upsert; tasks touch few distinct log points, so a
  // linear scan beats a hash map here.
  auto it = std::lower_bound(
      counts_.begin(), counts_.end(), point,
      [](const LogPointCount& c, LogPointId p) { return c.point < p; });
  if (it != counts_.end() && it->point == point) {
    it->count++;
  } else {
    counts_.insert(it, LogPointCount{point, 1});
  }
}

Synopsis TaskContext::finish() const {
  Synopsis s;
  s.host = host_;
  s.stage = stage_;
  s.uid = uid_;
  s.start = start_;
  s.duration = last_log_ - start_;
  s.log_points = counts_;
  return s;
}

namespace {

/// Thread-local slot holding the calling thread's open task. The destructor
/// flushes a pending context at thread exit: dispatcher-worker termination
/// inference (the paper uses Java finalizers; we use RAII).
struct TlSlot {
  TaskExecutionTracker* owner = nullptr;
  std::unique_ptr<TaskContext> ctx;

  ~TlSlot() { flush(); }

  void flush() {
    if (owner != nullptr && ctx != nullptr) {
      owner->end_task(std::move(ctx));
    }
    ctx.reset();
    owner = nullptr;
  }
};

thread_local TlSlot tl_slot;

}  // namespace

TaskExecutionTracker::TaskExecutionTracker(HostId host, const Clock* clock,
                                           SynopsisFn emit)
    : host_(host), clock_(clock), emit_fn_(std::move(emit)) {
  assert(clock_ != nullptr);
}

TaskExecutionTracker::~TaskExecutionTracker() {
  // If this thread still holds a context owned by this tracker, drop it so
  // the thread_local destructor does not touch a dead tracker. Worker threads
  // must not outlive the tracker (documented contract).
  if (tl_slot.owner == this) {
    tl_slot.ctx.reset();
    tl_slot.owner = nullptr;
  }
}

void TaskExecutionTracker::set_context(StageId stage) {
  if (tl_slot.owner == this && tl_slot.ctx != nullptr) {
    // Producer-consumer inference: starting a new task ends the previous one.
    end_task(std::move(tl_slot.ctx));
  }
  tl_slot.owner = this;
  tl_slot.ctx = begin_task(stage);
}

void TaskExecutionTracker::end_context() {
  if (tl_slot.owner == this && tl_slot.ctx != nullptr) {
    end_task(std::move(tl_slot.ctx));
  }
  if (tl_slot.owner == this) tl_slot.owner = nullptr;
}

std::unique_ptr<TaskContext> TaskExecutionTracker::begin_task(StageId stage) {
  const TaskUid uid = next_uid_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<TaskContext>(host_, stage, uid, clock_->now());
}

void TaskExecutionTracker::end_task(std::unique_ptr<TaskContext> task) {
  if (task == nullptr) return;
  if (current_ == task.get()) current_ = nullptr;
  emit(*task);
}

void TaskExecutionTracker::on_log(LogPointId point) {
  TaskContext* ctx = current_;
  if (ctx == nullptr && tl_slot.owner == this) ctx = tl_slot.ctx.get();
  if (ctx == nullptr) {
    unattributed_logs_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ctx->on_log(point, clock_->now());
}

void TaskExecutionTracker::emit(const TaskContext& ctx) {
  const Synopsis s = ctx.finish();
  {
    std::lock_guard lock(emit_mu_);
    if (emit_fn_) emit_fn_(s);
  }
  tasks_completed_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace saad::core
