// Log-point and stage registry: the C++ equivalent of the paper's static
// pre-processing pass (§3.2.2, §4.1.1).
//
// The paper's Ruby scripts rewrite Java sources to pass a unique id at every
// log statement and to mark stage beginnings. Here, server code registers its
// stages and log points once at construction; the registry hands out dense
// ids and keeps the *log template dictionary* (static text of each statement,
// source location, level) used for anomaly reporting and for the text-mining
// baseline.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/ids.h"

namespace saad::core {

/// Severity levels, mirroring log4j's subset that matters here.
enum class Level : std::uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

std::string_view level_name(Level level);

struct LogPointInfo {
  LogPointId id = kInvalidLogPoint;
  StageId stage = kInvalidStage;  // stage whose code contains the statement
  Level level = Level::kDebug;
  std::string template_text;  // static portion, e.g. "Receiving block blk_%"
  std::string file;           // source location, for the dictionary
  int line = 0;
};

struct StageInfo {
  StageId id = kInvalidStage;
  std::string name;
};

/// Thread-safe append-only registry. Registration happens at system
/// construction; lookups afterwards are lock-free reads in practice but we
/// keep the mutex for correctness under concurrent late registration.
class LogRegistry {
 public:
  StageId register_stage(std::string name);
  LogPointId register_log_point(StageId stage, Level level,
                                std::string template_text,
                                std::string file = {}, int line = 0);

  const StageInfo& stage(StageId id) const;
  const LogPointInfo& log_point(LogPointId id) const;

  /// Name lookup; returns kInvalidStage when absent.
  StageId find_stage(std::string_view name) const;

  std::size_t num_stages() const;
  std::size_t num_log_points() const;

  /// All log points belonging to a stage, in registration order.
  std::vector<LogPointId> log_points_of(StageId stage) const;

  // ---- Persistence ----------------------------------------------------------
  // The registry is the log template dictionary (paper §4.1.1): produced by
  // the instrumentation pass, shipped to wherever anomalies are inspected.

  /// Appends a self-contained binary encoding to `out`.
  void save(std::vector<std::uint8_t>& out) const;

  /// Replaces this registry's contents with a dictionary produced by
  /// save(). False (and unchanged contents) on malformed input.
  bool load(std::span<const std::uint8_t> in);

 private:
  mutable std::mutex mu_;
  std::vector<StageInfo> stages_;
  std::vector<LogPointInfo> points_;
};

}  // namespace saad::core
