// Windowed anomaly detector (paper §3.3.3): periodically applies statistical
// tests to the synopsis stream.
//
// Per window, per (host, stage):
//  * FLOW anomaly when a never-seen signature appears, or a one-sided
//    proportion t-test (alpha = 0.001) rejects "flow-outlier proportion <=
//    training proportion";
//  * PERFORMANCE anomaly when, for any signature of the stage with a valid
//    duration threshold, the same test rejects "performance-outlier
//    proportion <= that signature's training proportion".
//
// Anomalies are keyed (window, host, stage, kind) — exactly the marks on the
// paper's Fig. 9/10 timelines.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/model.h"
#include "stats/tests.h"

namespace saad::core {

struct DetectorConfig {
  UsTime window = kUsPerMin;  // detection period
  double alpha = stats::kDefaultAlpha;
  stats::ProportionTestKind test_kind = stats::ProportionTestKind::kTTest;
  /// Minimum tasks for a proportion test in a window (below: exact binomial).
  std::uint64_t min_n = 20;
  /// When true, a single never-seen signature immediately raises a flow
  /// anomaly (the paper's condition ii).
  bool new_signature_is_anomaly = true;
  /// Extension (not in the paper): Bonferroni-correct alpha by the number
  /// of hypothesis tests run in the window. The paper tests every
  /// (host, stage) and every (host, stage, signature) each period at a flat
  /// alpha = 0.001; with hundreds of simultaneous tests that compounds —
  /// the correction trades a little sensitivity for a familywise error
  /// bound. See the `ablation_tests` bench.
  bool bonferroni = false;
  /// Worker threads for windowed detection when the detector runs behind an
  /// AnalyzerPool (Monitor does this). 1 = serial (seed behavior), 0 = one
  /// per hardware thread. Verdicts are thread-count-invariant: tests are
  /// keyed per (host, stage[, signature]) and windows are partitioned by
  /// that key (see analyzer_pool.h). Ignored by a bare AnomalyDetector.
  std::size_t analyzer_threads = 1;
};

enum class AnomalyKind : std::uint8_t { kFlow, kPerformance };

struct Anomaly {
  std::size_t window = 0;  // index: [window * config.window, +config.window)
  UsTime window_start = 0;
  HostId host = 0;
  StageId stage = kInvalidStage;
  AnomalyKind kind = AnomalyKind::kFlow;
  bool due_to_new_signature = false;  // flow anomalies only
  double p_value = 1.0;
  double proportion = 0.0;        // observed outlier proportion in the window
  double train_proportion = 0.0;  // training baseline it was tested against
  std::uint64_t n = 0;            // tasks considered
  std::uint64_t outliers = 0;     // outlier tasks among them
  Signature example_signature;    // a representative outlier/new signature
};

class AnomalyDetector {
 public:
  AnomalyDetector(const OutlierModel* model, DetectorConfig config = {});

  /// Buckets the synopsis into its window (by task start time). Synopses may
  /// arrive out of order within open windows.
  void ingest(const Synopsis& synopsis);

  /// Closes every window that ends at or before `now` and appends its
  /// anomalies to the internal result. Returns the newly produced anomalies.
  std::vector<Anomaly> advance_to(UsTime now);

  /// Closes all remaining windows.
  std::vector<Anomaly> finish();

  const DetectorConfig& config() const { return config_; }
  std::uint64_t ingested() const { return ingested_; }
  /// Index of the oldest window a future synopsis can still land in.
  std::size_t next_window_to_close() const { return next_window_to_close_; }

  // ---- Warm-restart state (checkpoint.h) -----------------------------------
  // The detector's only mutable state is the open-window tallies plus the
  // close cursor; both serialize to a canonical byte string (std::map
  // iteration order), so save -> restore -> save round-trips bit-identically
  // and two detectors with equal state encode equal bytes.

  /// Appends every open window's per-(host, stage) and per-signature tallies,
  /// the close cursor, and the ingest count to `out`.
  void save_state(std::vector<std::uint8_t>& out) const;

  /// Replaces (merge = false) or merges in (merge = true: tallies summed,
  /// cursors maxed — how AnalyzerPool folds per-worker states into one
  /// canonical state) state produced by save_state(). False on malformed
  /// input, leaving the detector unchanged. The model is not part of the
  /// state: the caller restores it first and constructs the detector over it.
  bool restore_state(std::span<const std::uint8_t> in, bool merge = false);

  /// Points classification at a new model. Only legal at a window boundary
  /// (no ingest since the last advance_to/finish on the windows the swap
  /// should not affect is *not* required — open windows were classified at
  /// ingest time under the old model and close with those tallies; only
  /// synopses ingested after the rebind see the new model). AnalyzerPool
  /// applies staged swaps here, after the close barrier.
  void rebind_model(const OutlierModel* model);

 private:
  friend class AnalyzerPool;  // splits/merges state across partitions

  struct SigWindowStats {
    std::uint64_t n = 0;
    std::uint64_t perf_outliers = 0;
    bool perf_applicable = false;
  };
  struct StageWindowStats {
    std::uint64_t n = 0;
    std::uint64_t flow_outliers = 0;
    std::vector<Signature> new_signatures;  // distinct, first-seen order
    std::map<Signature, SigWindowStats> per_signature;
    Signature example_flow_outlier;
  };
  // (host, stage) -> stats, inside one window.
  using WindowStats = std::map<std::pair<HostId, StageId>, StageWindowStats>;

  std::vector<Anomaly> close_window(std::size_t index, WindowStats& stats);

  const OutlierModel* model_;
  DetectorConfig config_;
  std::map<std::size_t, WindowStats> open_windows_;
  std::size_t next_window_to_close_ = 0;
  std::uint64_t ingested_ = 0;
};

}  // namespace saad::core
