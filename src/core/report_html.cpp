#include "core/report_html.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "core/report.h"

namespace saad::core {

namespace {

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

const char* cell_class(const Anomaly& a) {
  if (a.kind == AnomalyKind::kPerformance) return "perf";
  return a.due_to_new_signature ? "newsig" : "flow";
}

}  // namespace

std::string render_html_report(const std::vector<Anomaly>& anomalies,
                               const LogRegistry& registry,
                               const HtmlReportOptions& options) {
  std::ostringstream out;
  out << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>"
      << escape(options.title) << "</title>\n<style>\n"
      << "body{font-family:system-ui,sans-serif;margin:2em;color:#222}\n"
      << "h1{font-size:1.4em} h2{font-size:1.1em;margin-top:2em}\n"
      << "table{border-collapse:collapse;font-size:0.85em}\n"
      << "td,th{border:1px solid #ddd;padding:2px 6px;text-align:left}\n"
      << ".grid td{width:10px;height:14px;padding:0}\n"
      << ".grid th{white-space:nowrap;font-weight:normal}\n"
      << ".flow{background:#d9534f}.newsig{background:#8e44ad}"
      << ".perf{background:#f0ad4e}\n"
      << ".legend span{display:inline-block;width:12px;height:12px;"
      << "margin:0 4px 0 12px;vertical-align:middle}\n"
      << "details{margin:0.4em 0} summary{cursor:pointer}\n"
      << "code{background:#f6f6f6;padding:1px 4px}\n"
      << "</style></head><body>\n";
  out << "<h1>" << escape(options.title) << "</h1>\n";
  out << "<p>" << anomalies.size()
      << " anomalies. <span class=\"legend\"><span class=\"flow\"></span>flow "
      << "<span class=\"newsig\"></span>new signature "
      << "<span class=\"perf\"></span>performance</span></p>\n";

  // ---- Timeline grid -----------------------------------------------------
  std::map<std::string, std::map<std::size_t, const Anomaly*>> rows;
  for (const auto& a : anomalies) {
    if (a.window >= options.num_windows) continue;
    auto& row = rows[stage_host_label(registry, a.stage, a.host)];
    const auto it = row.find(a.window);
    // Flow anomalies win a shared cell (the stronger signal).
    if (it == row.end() || a.kind == AnomalyKind::kFlow) row[a.window] = &a;
  }
  out << "<h2>Timeline (columns are windows)</h2>\n<table class=\"grid\">\n";
  for (const auto& [label, cells] : rows) {
    out << "<tr><th>" << escape(label) << "</th>";
    for (std::size_t w = 0; w < options.num_windows; ++w) {
      const auto it = cells.find(w);
      if (it == cells.end()) {
        out << "<td></td>";
      } else {
        out << "<td class=\"" << cell_class(*it->second) << "\" title=\""
            << escape(describe(*it->second, registry)) << "\"></td>";
      }
    }
    out << "</tr>\n";
  }
  out << "</table>\n";

  // ---- Details -------------------------------------------------------------
  out << "<h2>Anomalies</h2>\n";
  std::size_t shown = 0;
  for (const auto& a : anomalies) {
    if (shown++ >= options.max_details) {
      out << "<p>... " << (anomalies.size() - options.max_details)
          << " more anomalies omitted.</p>\n";
      break;
    }
    out << "<details><summary>" << escape(describe(a, registry))
        << "</summary>\n<table><tr><th>log template</th></tr>\n";
    for (const auto& text : signature_templates(a.example_signature, registry))
      out << "<tr><td><code>" << escape(text) << "</code></td></tr>\n";
    out << "</table></details>\n";
  }
  out << "</body></html>\n";
  return out.str();
}

}  // namespace saad::core
