// In-memory synopsis stream from per-host trackers to the centralized
// analyzer (paper §3.1: synopses are "streamed out to a centralized
// statistical analyzer", all in memory, never on persistent storage).
//
// The channel also keeps wire-volume accounting (encoded bytes), which the
// Fig. 8 storage-overhead bench reads.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "core/synopsis.h"

namespace saad::core {

class SynopsisChannel {
 public:
  /// Thread-safe multi-producer push.
  void push(const Synopsis& s);

  /// Moves all queued synopses into `out` (appended). Single consumer.
  void drain(std::vector<Synopsis>& out);

  std::uint64_t pushed() const;
  std::uint64_t encoded_bytes() const;

 private:
  mutable std::mutex mu_;
  std::deque<Synopsis> queue_;
  std::uint64_t pushed_ = 0;
  std::uint64_t encoded_bytes_ = 0;
};

}  // namespace saad::core
