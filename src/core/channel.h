// In-memory synopsis stream from per-host trackers to the centralized
// analyzer (paper §3.1: synopses are "streamed out to a centralized
// statistical analyzer", all in memory, never on persistent storage).
//
// Sharded MPSC design: the channel is split into kDefaultShards independent
// shards, each a (mutex, vector) pair. Producers either
//
//  * call push() directly — the calling thread is hashed to a stable shard,
//    so unrelated producer threads contend on different mutexes and a single
//    producer keeps strict FIFO order within its shard; or
//  * hold a Producer handle — a small fixed-size local buffer assigned its
//    own shard round-robin, flushed under the shard mutex only once per
//    kBatch synopses (or on flush()/destruction). This is the high-throughput
//    path: the common-case push is a plain vector append with no atomics and
//    no locks.
//
// The single consumer's drain() splices every shard in shard-index order, so
// the relative order of synopses from one producer is always preserved; only
// the interleaving *between* producers is unspecified (exactly what a
// concurrent channel already implied).
//
// The channel also keeps wire-volume accounting (encoded bytes), which the
// Fig. 8 storage-overhead bench reads. Counters are updated when a synopsis
// becomes visible to drain() (i.e. at direct push or at Producer flush), so
// after every producer has flushed, pushed() == the number drain() returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/synopsis.h"

namespace saad::core {

class SynopsisChannel {
 public:
  static constexpr std::size_t kDefaultShards = 8;
  static constexpr std::size_t kBatch = 64;

  explicit SynopsisChannel(std::size_t shards = kDefaultShards);

  /// Batched producer handle. NOT thread-safe itself — create one per
  /// producer thread. Buffered synopses become visible to drain() at flush()
  /// (called automatically when the buffer fills and on destruction).
  class Producer {
   public:
    explicit Producer(SynopsisChannel& channel);
    ~Producer();
    Producer(Producer&& other) noexcept;
    Producer& operator=(Producer&&) = delete;
    Producer(const Producer&) = delete;
    Producer& operator=(const Producer&) = delete;

    void push(const Synopsis& s);
    void flush();

   private:
    SynopsisChannel* channel_;
    std::size_t shard_;
    std::vector<Synopsis> buffer_;
  };

  /// Thread-safe multi-producer push; immediately visible to drain().
  void push(const Synopsis& s);

  /// Creates a batched handle bound to the next shard (round-robin).
  Producer producer() { return Producer(*this); }

  /// Moves all queued synopses into `out` (appended), splicing shards in
  /// shard-index order. Single consumer.
  void drain(std::vector<Synopsis>& out);

  /// Lifetime totals over everything made visible so far (Fig. 8 reads
  /// encoded_bytes() as the stream's wire volume).
  std::uint64_t pushed() const;
  std::uint64_t encoded_bytes() const;

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    std::mutex mu;
    std::vector<Synopsis> items;
  };

  std::size_t shard_for_this_thread() const;

  /// Moves `batch` into `shard` under its mutex and bumps the counters.
  void push_batch(std::size_t shard, std::vector<Synopsis>& batch);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> next_producer_shard_{0};
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> encoded_bytes_{0};
};

}  // namespace saad::core
