#include "core/detector.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "core/telemetry.h"
#include "core/varint.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace saad::core {

namespace {

struct DetectorMetrics {
  obs::Counter& synopses;
  obs::Counter& windows_closed;
  obs::Counter& flow_anomalies;
  obs::Counter& perf_anomalies;
  obs::Counter& tests_run;
  obs::Counter& tests_rejected;
  obs::Histogram& window_close_us;

  DetectorMetrics()
      : synopses(obs::MetricsRegistry::global().counter(
            "saad_detector_synopses_total",
            "Synopses classified and bucketed into windows.")),
        windows_closed(obs::MetricsRegistry::global().counter(
            "saad_detector_windows_closed_total",
            "Detection windows closed (summed across pool workers).")),
        flow_anomalies(obs::MetricsRegistry::global().counter(
            "saad_detector_anomalies_total", "Anomaly verdicts raised.",
            {{"kind", "flow"}})),
        perf_anomalies(obs::MetricsRegistry::global().counter(
            "saad_detector_anomalies_total", "Anomaly verdicts raised.",
            {{"kind", "performance"}})),
        tests_run(obs::MetricsRegistry::global().counter(
            "saad_detector_tests_total",
            "Proportion hypothesis tests executed at window close.")),
        tests_rejected(obs::MetricsRegistry::global().counter(
            "saad_detector_test_rejections_total",
            "Hypothesis tests that rejected the null (raised or contributed "
            "to an anomaly).")),
        window_close_us(obs::MetricsRegistry::global().histogram(
            "saad_detector_window_close_us",
            "Latency of closing one detection window (all tests for all "
            "(host, stage) keys), microseconds.",
            obs::latency_bounds_us())) {}

  static DetectorMetrics& get() {
    static DetectorMetrics* metrics = new DetectorMetrics();
    return *metrics;
  }
};

}  // namespace

void detail::register_detector_metrics() { DetectorMetrics::get(); }

AnomalyDetector::AnomalyDetector(const OutlierModel* model,
                                 DetectorConfig config)
    : model_(model), config_(config) {
  assert(model_ != nullptr);
  assert(config_.window > 0);
}

void AnomalyDetector::ingest(const Synopsis& synopsis) {
  const Feature f = make_feature(synopsis);
  const auto window =
      static_cast<std::size_t>(std::max<UsTime>(f.start, 0) / config_.window);
  // Late synopses for windows already closed are attributed to the oldest
  // open window rather than dropped: anomalies should not escape detection
  // because a long task finished after its start window closed.
  const std::size_t effective = std::max(window, next_window_to_close_);
  auto [win_it, opened] = open_windows_.try_emplace(effective);
  if (opened) {
    obs::FlightRecorder::global().record(obs::EventKind::kWindowOpen,
                                         "window %zu opened", effective);
  }
  auto& stage_stats = win_it->second[{f.host, f.stage}];
  if constexpr (obs::kMetricsEnabled) DetectorMetrics::get().synopses.inc();

  const Classification c = model_->classify(f);
  stage_stats.n++;
  if (c.flow_outlier) {
    stage_stats.flow_outliers++;
    if (stage_stats.example_flow_outlier.empty())
      stage_stats.example_flow_outlier = f.signature;
  }
  if (c.new_signature) {
    auto& fresh = stage_stats.new_signatures;
    if (std::find(fresh.begin(), fresh.end(), f.signature) == fresh.end())
      fresh.push_back(f.signature);
  }
  auto& sig_stats = stage_stats.per_signature[f.signature];
  sig_stats.n++;
  sig_stats.perf_applicable = c.perf_applicable;
  if (c.perf_outlier) sig_stats.perf_outliers++;
  ingested_++;
}

std::vector<Anomaly> AnomalyDetector::advance_to(UsTime now) {
  std::vector<Anomaly> out;
  while (!open_windows_.empty()) {
    auto it = open_windows_.begin();
    const UsTime window_end =
        static_cast<UsTime>(it->first + 1) * config_.window;
    if (window_end > now) break;
    auto produced = close_window(it->first, it->second);
    out.insert(out.end(), produced.begin(), produced.end());
    next_window_to_close_ = it->first + 1;
    open_windows_.erase(it);
  }
  return out;
}

std::vector<Anomaly> AnomalyDetector::finish() {
  std::vector<Anomaly> out;
  for (auto& [index, stats] : open_windows_) {
    auto produced = close_window(index, stats);
    out.insert(out.end(), produced.begin(), produced.end());
    next_window_to_close_ = index + 1;
  }
  open_windows_.clear();
  return out;
}

void AnomalyDetector::rebind_model(const OutlierModel* model) {
  assert(model != nullptr);
  model_ = model;
}

namespace {

// Detector-state codec (version 1). All integers varint; signatures are
// count + delta-encoded sorted points (the model_io.cpp idiom). Every map
// iterates in key order, so equal states encode equal bytes.
constexpr std::uint64_t kDetectorStateVersion = 1;

void put_signature(const Signature& sig, std::vector<std::uint8_t>& out) {
  put_varint(sig.points().size(), out);
  LogPointId prev = 0;
  for (const LogPointId p : sig.points()) {
    put_varint(static_cast<std::uint64_t>(p - prev), out);
    prev = p;
  }
}

bool get_signature(std::span<const std::uint8_t>& in, Signature& sig) {
  std::uint64_t count = 0;
  if (!get_varint(in, count) || count > 0x10000) return false;
  std::vector<LogPointId> points;
  points.reserve(count);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t delta = 0;
    if (!get_varint(in, delta)) return false;
    prev += delta;
    if (prev > 0xFFFF) return false;
    points.push_back(static_cast<LogPointId>(prev));
  }
  sig = Signature(std::move(points));
  return true;
}

}  // namespace

void AnomalyDetector::save_state(std::vector<std::uint8_t>& out) const {
  put_varint(kDetectorStateVersion, out);
  put_varint(next_window_to_close_, out);
  put_varint(ingested_, out);
  put_varint(open_windows_.size(), out);
  for (const auto& [index, window] : open_windows_) {
    put_varint(index, out);
    put_varint(window.size(), out);
    for (const auto& [key, stage_stats] : window) {
      put_varint(key.first, out);
      put_varint(key.second, out);
      put_varint(stage_stats.n, out);
      put_varint(stage_stats.flow_outliers, out);
      put_signature(stage_stats.example_flow_outlier, out);
      put_varint(stage_stats.new_signatures.size(), out);
      for (const Signature& sig : stage_stats.new_signatures)
        put_signature(sig, out);
      put_varint(stage_stats.per_signature.size(), out);
      for (const auto& [sig, sig_stats] : stage_stats.per_signature) {
        put_signature(sig, out);
        put_varint(sig_stats.n, out);
        put_varint(sig_stats.perf_outliers, out);
        put_varint(sig_stats.perf_applicable ? 1 : 0, out);
      }
    }
  }
}

bool AnomalyDetector::restore_state(std::span<const std::uint8_t> in,
                                    bool merge) {
  // Decode into scratch structures first: a malformed tail must not leave
  // the detector half-mutated.
  std::uint64_t version = 0, next_window = 0, ingested = 0, num_windows = 0;
  if (!get_varint(in, version) || version != kDetectorStateVersion)
    return false;
  if (!get_varint(in, next_window)) return false;
  if (!get_varint(in, ingested)) return false;
  if (!get_varint(in, num_windows) || num_windows > 0x100000) return false;
  std::map<std::size_t, WindowStats> windows;
  for (std::uint64_t w = 0; w < num_windows; ++w) {
    std::uint64_t index = 0, num_keys = 0;
    if (!get_varint(in, index)) return false;
    auto [win_it, fresh] = windows.try_emplace(static_cast<std::size_t>(index));
    if (!fresh) return false;  // duplicate window index
    if (!get_varint(in, num_keys) || num_keys > 0x100000) return false;
    for (std::uint64_t k = 0; k < num_keys; ++k) {
      std::uint64_t host = 0, stage = 0, count = 0;
      if (!get_varint(in, host) || host > 0xFFFFFFFF) return false;
      if (!get_varint(in, stage) || stage > 0xFFFF) return false;
      StageWindowStats stage_stats;
      if (!get_varint(in, stage_stats.n)) return false;
      if (!get_varint(in, stage_stats.flow_outliers)) return false;
      if (!get_signature(in, stage_stats.example_flow_outlier)) return false;
      if (!get_varint(in, count) || count > 0x100000) return false;
      stage_stats.new_signatures.reserve(count);
      for (std::uint64_t s = 0; s < count; ++s) {
        Signature sig;
        if (!get_signature(in, sig)) return false;
        stage_stats.new_signatures.push_back(std::move(sig));
      }
      if (!get_varint(in, count) || count > 0x100000) return false;
      for (std::uint64_t s = 0; s < count; ++s) {
        Signature sig;
        if (!get_signature(in, sig)) return false;
        SigWindowStats sig_stats;
        std::uint64_t flags = 0;
        if (!get_varint(in, sig_stats.n)) return false;
        if (!get_varint(in, sig_stats.perf_outliers)) return false;
        if (!get_varint(in, flags) || flags > 1) return false;
        sig_stats.perf_applicable = flags != 0;
        if (!win_it->second[{static_cast<HostId>(host),
                             static_cast<StageId>(stage)}]
                 .per_signature.emplace(std::move(sig), sig_stats)
                 .second) {
          return false;  // duplicate signature
        }
      }
      auto& slot = win_it->second[{static_cast<HostId>(host),
                                   static_cast<StageId>(stage)}];
      slot.n = stage_stats.n;
      slot.flow_outliers = stage_stats.flow_outliers;
      slot.example_flow_outlier = std::move(stage_stats.example_flow_outlier);
      slot.new_signatures = std::move(stage_stats.new_signatures);
    }
  }
  if (!in.empty()) return false;

  if (!merge) {
    open_windows_ = std::move(windows);
    next_window_to_close_ = static_cast<std::size_t>(next_window);
    ingested_ = ingested;
    return true;
  }
  // Merge: sum tallies, max cursors. AnalyzerPool folds per-worker states
  // this way — partitions have disjoint (host, stage) keys, but the merge is
  // written to be correct for overlapping keys too.
  for (auto& [index, window] : windows) {
    auto& dst_window = open_windows_[index];
    for (auto& [key, src] : window) {
      auto& dst = dst_window[key];
      dst.n += src.n;
      dst.flow_outliers += src.flow_outliers;
      if (dst.example_flow_outlier.empty())
        dst.example_flow_outlier = std::move(src.example_flow_outlier);
      for (auto& sig : src.new_signatures) {
        auto& fresh = dst.new_signatures;
        if (std::find(fresh.begin(), fresh.end(), sig) == fresh.end())
          fresh.push_back(std::move(sig));
      }
      for (auto& [sig, src_stats] : src.per_signature) {
        auto& dst_stats = dst.per_signature[sig];
        dst_stats.n += src_stats.n;
        dst_stats.perf_outliers += src_stats.perf_outliers;
        dst_stats.perf_applicable |= src_stats.perf_applicable;
      }
    }
  }
  next_window_to_close_ =
      std::max(next_window_to_close_, static_cast<std::size_t>(next_window));
  ingested_ += ingested;
  return true;
}

std::vector<Anomaly> AnomalyDetector::close_window(std::size_t index,
                                                   WindowStats& stats) {
  std::vector<Anomaly> out;
  std::chrono::steady_clock::time_point close_begin;
  if constexpr (obs::kMetricsEnabled)
    close_begin = std::chrono::steady_clock::now();

  double alpha = config_.alpha;
  if (config_.bonferroni) {
    // Count the hypothesis tests this window will run: one flow test per
    // (host, stage) with outliers, one perf test per applicable signature
    // with outliers.
    std::size_t tests = 0;
    for (const auto& [key, stage_stats] : stats) {
      if (stage_stats.flow_outliers > 0) tests++;
      for (const auto& [sig, sig_stats] : stage_stats.per_signature) {
        if (sig_stats.perf_applicable && sig_stats.perf_outliers > 0) tests++;
      }
    }
    if (tests > 1) alpha /= static_cast<double>(tests);
  }

  for (auto& [key, stage_stats] : stats) {
    const auto [host, stage] = key;
    const StageModel* sm = model_->stage_model(stage);
    const double train_flow_rate = sm ? sm->train_flow_outlier_rate : 0.0;

    // ---- Flow anomaly ---------------------------------------------------
    Anomaly flow;
    flow.window = index;
    flow.window_start = static_cast<UsTime>(index) * config_.window;
    flow.host = host;
    flow.stage = stage;
    flow.kind = AnomalyKind::kFlow;
    flow.n = stage_stats.n;
    flow.outliers = stage_stats.flow_outliers;
    flow.proportion = stage_stats.n > 0
                          ? static_cast<double>(stage_stats.flow_outliers) /
                                static_cast<double>(stage_stats.n)
                          : 0.0;
    flow.train_proportion = train_flow_rate;
    flow.example_signature = stage_stats.example_flow_outlier;

    bool flow_anomalous = false;
    if (config_.new_signature_is_anomaly && !stage_stats.new_signatures.empty()) {
      flow_anomalous = true;
      flow.due_to_new_signature = true;
      flow.example_signature = stage_stats.new_signatures.front();
      flow.p_value = 0.0;  // condition (ii): categorical, not a test
    } else if (stage_stats.flow_outliers > 0) {
      const auto result = stats::proportion_above(
          stage_stats.flow_outliers, stage_stats.n, train_flow_rate, alpha,
          config_.test_kind, config_.min_n);
      flow.p_value = result.p_value;
      flow_anomalous = result.reject;
      if constexpr (obs::kMetricsEnabled) {
        auto& metrics = DetectorMetrics::get();
        metrics.tests_run.inc();
        if (result.reject) metrics.tests_rejected.inc();
      }
    }
    if (flow_anomalous) out.push_back(flow);

    // ---- Performance anomaly ---------------------------------------------
    // Tested per signature; the stage is anomalous if any signature rejects.
    bool perf_anomalous = false;
    Anomaly perf;
    perf.window = index;
    perf.window_start = flow.window_start;
    perf.host = host;
    perf.stage = stage;
    perf.kind = AnomalyKind::kPerformance;
    perf.p_value = 1.0;
    if (sm != nullptr) {
      for (const auto& [sig, sig_stats] : stage_stats.per_signature) {
        if (!sig_stats.perf_applicable || sig_stats.perf_outliers == 0)
          continue;
        const auto trained = sm->signatures.find(sig);
        if (trained == sm->signatures.end()) continue;
        const auto result = stats::proportion_above(
            sig_stats.perf_outliers, sig_stats.n,
            trained->second.train_perf_outlier_rate, alpha,
            config_.test_kind, config_.min_n);
        if constexpr (obs::kMetricsEnabled) {
          auto& metrics = DetectorMetrics::get();
          metrics.tests_run.inc();
          if (result.reject) metrics.tests_rejected.inc();
        }
        if (result.reject && result.p_value <= perf.p_value) {
          perf_anomalous = true;
          perf.p_value = result.p_value;
          perf.n = sig_stats.n;
          perf.outliers = sig_stats.perf_outliers;
          perf.proportion = static_cast<double>(sig_stats.perf_outliers) /
                            static_cast<double>(sig_stats.n);
          perf.train_proportion = trained->second.train_perf_outlier_rate;
          perf.example_signature = sig;
        }
      }
    }
    if (perf_anomalous) out.push_back(perf);
  }

  if constexpr (obs::kMetricsEnabled) {
    auto& metrics = DetectorMetrics::get();
    metrics.windows_closed.inc();
    metrics.window_close_us.observe(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - close_begin)
            .count());
    for (const auto& anomaly : out) {
      (anomaly.kind == AnomalyKind::kFlow ? metrics.flow_anomalies
                                          : metrics.perf_anomalies)
          .inc();
    }
  }
  if (!out.empty()) {
    obs::FlightRecorder::global().record(
        obs::EventKind::kWindowClose, "window %zu closed: %zu anomalies over %zu (host, stage) keys",
        index, out.size(), stats.size());
  }
  return out;
}

}  // namespace saad::core
