#include "core/detector.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "core/telemetry.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace saad::core {

namespace {

struct DetectorMetrics {
  obs::Counter& synopses;
  obs::Counter& windows_closed;
  obs::Counter& flow_anomalies;
  obs::Counter& perf_anomalies;
  obs::Counter& tests_run;
  obs::Counter& tests_rejected;
  obs::Histogram& window_close_us;

  DetectorMetrics()
      : synopses(obs::MetricsRegistry::global().counter(
            "saad_detector_synopses_total",
            "Synopses classified and bucketed into windows.")),
        windows_closed(obs::MetricsRegistry::global().counter(
            "saad_detector_windows_closed_total",
            "Detection windows closed (summed across pool workers).")),
        flow_anomalies(obs::MetricsRegistry::global().counter(
            "saad_detector_anomalies_total", "Anomaly verdicts raised.",
            {{"kind", "flow"}})),
        perf_anomalies(obs::MetricsRegistry::global().counter(
            "saad_detector_anomalies_total", "Anomaly verdicts raised.",
            {{"kind", "performance"}})),
        tests_run(obs::MetricsRegistry::global().counter(
            "saad_detector_tests_total",
            "Proportion hypothesis tests executed at window close.")),
        tests_rejected(obs::MetricsRegistry::global().counter(
            "saad_detector_test_rejections_total",
            "Hypothesis tests that rejected the null (raised or contributed "
            "to an anomaly).")),
        window_close_us(obs::MetricsRegistry::global().histogram(
            "saad_detector_window_close_us",
            "Latency of closing one detection window (all tests for all "
            "(host, stage) keys), microseconds.",
            obs::latency_bounds_us())) {}

  static DetectorMetrics& get() {
    static DetectorMetrics* metrics = new DetectorMetrics();
    return *metrics;
  }
};

}  // namespace

void detail::register_detector_metrics() { DetectorMetrics::get(); }

AnomalyDetector::AnomalyDetector(const OutlierModel* model,
                                 DetectorConfig config)
    : model_(model), config_(config) {
  assert(model_ != nullptr);
  assert(config_.window > 0);
}

void AnomalyDetector::ingest(const Synopsis& synopsis) {
  const Feature f = make_feature(synopsis);
  const auto window =
      static_cast<std::size_t>(std::max<UsTime>(f.start, 0) / config_.window);
  // Late synopses for windows already closed are attributed to the oldest
  // open window rather than dropped: anomalies should not escape detection
  // because a long task finished after its start window closed.
  const std::size_t effective = std::max(window, next_window_to_close_);
  auto [win_it, opened] = open_windows_.try_emplace(effective);
  if (opened) {
    obs::FlightRecorder::global().record(obs::EventKind::kWindowOpen,
                                         "window %zu opened", effective);
  }
  auto& stage_stats = win_it->second[{f.host, f.stage}];
  if constexpr (obs::kMetricsEnabled) DetectorMetrics::get().synopses.inc();

  const Classification c = model_->classify(f);
  stage_stats.n++;
  if (c.flow_outlier) {
    stage_stats.flow_outliers++;
    if (stage_stats.example_flow_outlier.empty())
      stage_stats.example_flow_outlier = f.signature;
  }
  if (c.new_signature) {
    auto& fresh = stage_stats.new_signatures;
    if (std::find(fresh.begin(), fresh.end(), f.signature) == fresh.end())
      fresh.push_back(f.signature);
  }
  auto& sig_stats = stage_stats.per_signature[f.signature];
  sig_stats.n++;
  sig_stats.perf_applicable = c.perf_applicable;
  if (c.perf_outlier) sig_stats.perf_outliers++;
  ingested_++;
}

std::vector<Anomaly> AnomalyDetector::advance_to(UsTime now) {
  std::vector<Anomaly> out;
  while (!open_windows_.empty()) {
    auto it = open_windows_.begin();
    const UsTime window_end =
        static_cast<UsTime>(it->first + 1) * config_.window;
    if (window_end > now) break;
    auto produced = close_window(it->first, it->second);
    out.insert(out.end(), produced.begin(), produced.end());
    next_window_to_close_ = it->first + 1;
    open_windows_.erase(it);
  }
  return out;
}

std::vector<Anomaly> AnomalyDetector::finish() {
  std::vector<Anomaly> out;
  for (auto& [index, stats] : open_windows_) {
    auto produced = close_window(index, stats);
    out.insert(out.end(), produced.begin(), produced.end());
    next_window_to_close_ = index + 1;
  }
  open_windows_.clear();
  return out;
}

std::vector<Anomaly> AnomalyDetector::close_window(std::size_t index,
                                                   WindowStats& stats) {
  std::vector<Anomaly> out;
  std::chrono::steady_clock::time_point close_begin;
  if constexpr (obs::kMetricsEnabled)
    close_begin = std::chrono::steady_clock::now();

  double alpha = config_.alpha;
  if (config_.bonferroni) {
    // Count the hypothesis tests this window will run: one flow test per
    // (host, stage) with outliers, one perf test per applicable signature
    // with outliers.
    std::size_t tests = 0;
    for (const auto& [key, stage_stats] : stats) {
      if (stage_stats.flow_outliers > 0) tests++;
      for (const auto& [sig, sig_stats] : stage_stats.per_signature) {
        if (sig_stats.perf_applicable && sig_stats.perf_outliers > 0) tests++;
      }
    }
    if (tests > 1) alpha /= static_cast<double>(tests);
  }

  for (auto& [key, stage_stats] : stats) {
    const auto [host, stage] = key;
    const StageModel* sm = model_->stage_model(stage);
    const double train_flow_rate = sm ? sm->train_flow_outlier_rate : 0.0;

    // ---- Flow anomaly ---------------------------------------------------
    Anomaly flow;
    flow.window = index;
    flow.window_start = static_cast<UsTime>(index) * config_.window;
    flow.host = host;
    flow.stage = stage;
    flow.kind = AnomalyKind::kFlow;
    flow.n = stage_stats.n;
    flow.outliers = stage_stats.flow_outliers;
    flow.proportion = stage_stats.n > 0
                          ? static_cast<double>(stage_stats.flow_outliers) /
                                static_cast<double>(stage_stats.n)
                          : 0.0;
    flow.train_proportion = train_flow_rate;
    flow.example_signature = stage_stats.example_flow_outlier;

    bool flow_anomalous = false;
    if (config_.new_signature_is_anomaly && !stage_stats.new_signatures.empty()) {
      flow_anomalous = true;
      flow.due_to_new_signature = true;
      flow.example_signature = stage_stats.new_signatures.front();
      flow.p_value = 0.0;  // condition (ii): categorical, not a test
    } else if (stage_stats.flow_outliers > 0) {
      const auto result = stats::proportion_above(
          stage_stats.flow_outliers, stage_stats.n, train_flow_rate, alpha,
          config_.test_kind, config_.min_n);
      flow.p_value = result.p_value;
      flow_anomalous = result.reject;
      if constexpr (obs::kMetricsEnabled) {
        auto& metrics = DetectorMetrics::get();
        metrics.tests_run.inc();
        if (result.reject) metrics.tests_rejected.inc();
      }
    }
    if (flow_anomalous) out.push_back(flow);

    // ---- Performance anomaly ---------------------------------------------
    // Tested per signature; the stage is anomalous if any signature rejects.
    bool perf_anomalous = false;
    Anomaly perf;
    perf.window = index;
    perf.window_start = flow.window_start;
    perf.host = host;
    perf.stage = stage;
    perf.kind = AnomalyKind::kPerformance;
    perf.p_value = 1.0;
    if (sm != nullptr) {
      for (const auto& [sig, sig_stats] : stage_stats.per_signature) {
        if (!sig_stats.perf_applicable || sig_stats.perf_outliers == 0)
          continue;
        const auto trained = sm->signatures.find(sig);
        if (trained == sm->signatures.end()) continue;
        const auto result = stats::proportion_above(
            sig_stats.perf_outliers, sig_stats.n,
            trained->second.train_perf_outlier_rate, alpha,
            config_.test_kind, config_.min_n);
        if constexpr (obs::kMetricsEnabled) {
          auto& metrics = DetectorMetrics::get();
          metrics.tests_run.inc();
          if (result.reject) metrics.tests_rejected.inc();
        }
        if (result.reject && result.p_value <= perf.p_value) {
          perf_anomalous = true;
          perf.p_value = result.p_value;
          perf.n = sig_stats.n;
          perf.outliers = sig_stats.perf_outliers;
          perf.proportion = static_cast<double>(sig_stats.perf_outliers) /
                            static_cast<double>(sig_stats.n);
          perf.train_proportion = trained->second.train_perf_outlier_rate;
          perf.example_signature = sig;
        }
      }
    }
    if (perf_anomalous) out.push_back(perf);
  }

  if constexpr (obs::kMetricsEnabled) {
    auto& metrics = DetectorMetrics::get();
    metrics.windows_closed.inc();
    metrics.window_close_us.observe(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - close_begin)
            .count());
    for (const auto& anomaly : out) {
      (anomaly.kind == AnomalyKind::kFlow ? metrics.flow_anomalies
                                          : metrics.perf_anomalies)
          .inc();
    }
  }
  if (!out.empty()) {
    obs::FlightRecorder::global().record(
        obs::EventKind::kWindowClose, "window %zu closed: %zu anomalies over %zu (host, stage) keys",
        index, out.size(), stats.size());
  }
  return out;
}

}  // namespace saad::core
