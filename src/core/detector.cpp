#include "core/detector.h"

#include <algorithm>
#include <cassert>

namespace saad::core {

AnomalyDetector::AnomalyDetector(const OutlierModel* model,
                                 DetectorConfig config)
    : model_(model), config_(config) {
  assert(model_ != nullptr);
  assert(config_.window > 0);
}

void AnomalyDetector::ingest(const Synopsis& synopsis) {
  const Feature f = make_feature(synopsis);
  const auto window =
      static_cast<std::size_t>(std::max<UsTime>(f.start, 0) / config_.window);
  // Late synopses for windows already closed are attributed to the oldest
  // open window rather than dropped: anomalies should not escape detection
  // because a long task finished after its start window closed.
  const std::size_t effective = std::max(window, next_window_to_close_);
  auto& stage_stats = open_windows_[effective][{f.host, f.stage}];

  const Classification c = model_->classify(f);
  stage_stats.n++;
  if (c.flow_outlier) {
    stage_stats.flow_outliers++;
    if (stage_stats.example_flow_outlier.empty())
      stage_stats.example_flow_outlier = f.signature;
  }
  if (c.new_signature) {
    auto& fresh = stage_stats.new_signatures;
    if (std::find(fresh.begin(), fresh.end(), f.signature) == fresh.end())
      fresh.push_back(f.signature);
  }
  auto& sig_stats = stage_stats.per_signature[f.signature];
  sig_stats.n++;
  sig_stats.perf_applicable = c.perf_applicable;
  if (c.perf_outlier) sig_stats.perf_outliers++;
  ingested_++;
}

std::vector<Anomaly> AnomalyDetector::advance_to(UsTime now) {
  std::vector<Anomaly> out;
  while (!open_windows_.empty()) {
    auto it = open_windows_.begin();
    const UsTime window_end =
        static_cast<UsTime>(it->first + 1) * config_.window;
    if (window_end > now) break;
    auto produced = close_window(it->first, it->second);
    out.insert(out.end(), produced.begin(), produced.end());
    next_window_to_close_ = it->first + 1;
    open_windows_.erase(it);
  }
  return out;
}

std::vector<Anomaly> AnomalyDetector::finish() {
  std::vector<Anomaly> out;
  for (auto& [index, stats] : open_windows_) {
    auto produced = close_window(index, stats);
    out.insert(out.end(), produced.begin(), produced.end());
    next_window_to_close_ = index + 1;
  }
  open_windows_.clear();
  return out;
}

std::vector<Anomaly> AnomalyDetector::close_window(std::size_t index,
                                                   WindowStats& stats) {
  std::vector<Anomaly> out;

  double alpha = config_.alpha;
  if (config_.bonferroni) {
    // Count the hypothesis tests this window will run: one flow test per
    // (host, stage) with outliers, one perf test per applicable signature
    // with outliers.
    std::size_t tests = 0;
    for (const auto& [key, stage_stats] : stats) {
      if (stage_stats.flow_outliers > 0) tests++;
      for (const auto& [sig, sig_stats] : stage_stats.per_signature) {
        if (sig_stats.perf_applicable && sig_stats.perf_outliers > 0) tests++;
      }
    }
    if (tests > 1) alpha /= static_cast<double>(tests);
  }

  for (auto& [key, stage_stats] : stats) {
    const auto [host, stage] = key;
    const StageModel* sm = model_->stage_model(stage);
    const double train_flow_rate = sm ? sm->train_flow_outlier_rate : 0.0;

    // ---- Flow anomaly ---------------------------------------------------
    Anomaly flow;
    flow.window = index;
    flow.window_start = static_cast<UsTime>(index) * config_.window;
    flow.host = host;
    flow.stage = stage;
    flow.kind = AnomalyKind::kFlow;
    flow.n = stage_stats.n;
    flow.outliers = stage_stats.flow_outliers;
    flow.proportion = stage_stats.n > 0
                          ? static_cast<double>(stage_stats.flow_outliers) /
                                static_cast<double>(stage_stats.n)
                          : 0.0;
    flow.train_proportion = train_flow_rate;
    flow.example_signature = stage_stats.example_flow_outlier;

    bool flow_anomalous = false;
    if (config_.new_signature_is_anomaly && !stage_stats.new_signatures.empty()) {
      flow_anomalous = true;
      flow.due_to_new_signature = true;
      flow.example_signature = stage_stats.new_signatures.front();
      flow.p_value = 0.0;  // condition (ii): categorical, not a test
    } else if (stage_stats.flow_outliers > 0) {
      const auto result = stats::proportion_above(
          stage_stats.flow_outliers, stage_stats.n, train_flow_rate, alpha,
          config_.test_kind, config_.min_n);
      flow.p_value = result.p_value;
      flow_anomalous = result.reject;
    }
    if (flow_anomalous) out.push_back(flow);

    // ---- Performance anomaly ---------------------------------------------
    // Tested per signature; the stage is anomalous if any signature rejects.
    bool perf_anomalous = false;
    Anomaly perf;
    perf.window = index;
    perf.window_start = flow.window_start;
    perf.host = host;
    perf.stage = stage;
    perf.kind = AnomalyKind::kPerformance;
    perf.p_value = 1.0;
    if (sm != nullptr) {
      for (const auto& [sig, sig_stats] : stage_stats.per_signature) {
        if (!sig_stats.perf_applicable || sig_stats.perf_outliers == 0)
          continue;
        const auto trained = sm->signatures.find(sig);
        if (trained == sm->signatures.end()) continue;
        const auto result = stats::proportion_above(
            sig_stats.perf_outliers, sig_stats.n,
            trained->second.train_perf_outlier_rate, alpha,
            config_.test_kind, config_.min_n);
        if (result.reject && result.p_value <= perf.p_value) {
          perf_anomalous = true;
          perf.p_value = result.p_value;
          perf.n = sig_stats.n;
          perf.outliers = sig_stats.perf_outliers;
          perf.proportion = static_cast<double>(sig_stats.perf_outliers) /
                            static_cast<double>(sig_stats.n);
          perf.train_proportion = trained->second.train_perf_outlier_rate;
          perf.example_signature = sig;
        }
      }
    }
    if (perf_anomalous) out.push_back(perf);
  }
  return out;
}

}  // namespace saad::core
