// Eager registration of the core pipeline's telemetry families.
//
// Instrumented components register their metric families lazily, on first
// use — a command that exercises only part of the pipeline (e.g. `detect`,
// which reads a trace straight into the analyzer pool and never builds a
// SynopsisChannel) would therefore expose an incomplete family set. Tools
// that scrape or snapshot the registry call register_pipeline_metrics()
// once at startup so every family is present (zero-valued if unused), in
// both SAAD_METRICS modes.
#pragma once

namespace saad::net {
/// The network layer's saad_net_* and saad_http_* families (synopsis
/// ingestion plus the admin-plane listener), declared here so tools can
/// register them alongside the core set; defined in saad_net
/// (net/wire.cpp) — only call it from binaries that link saad_net.
void register_net_metrics();
}  // namespace saad::net

namespace saad::obs {
/// The pipeline span tracer's saad_span_* families; defined in saad_obs
/// (obs/span.cpp) — only call it from binaries that link saad_obs.
void register_span_metrics();
}  // namespace saad::obs

namespace saad::core {

void register_pipeline_metrics();

namespace detail {
void register_channel_metrics();
void register_analyzer_pool_metrics();
void register_detector_metrics();
void register_trace_io_metrics();
void register_monitor_metrics();
void register_checkpoint_metrics();
}  // namespace detail

}  // namespace saad::core
