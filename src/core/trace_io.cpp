#include "core/trace_io.h"

#include <cstring>
#include <fstream>

namespace saad::core {

namespace {
constexpr char kMagic[8] = {'S', 'A', 'A', 'D', 'T', 'R', 'C', '1'};
}

std::vector<std::uint8_t> encode_trace(std::span<const Synopsis> trace) {
  std::vector<std::uint8_t> out;
  out.reserve(trace.size() * 32 + sizeof(kMagic));
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  for (const auto& s : trace) encode_synopsis(s, out);
  return out;
}

std::optional<std::vector<Synopsis>> decode_trace(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  bytes = bytes.subspan(sizeof(kMagic));
  std::vector<Synopsis> trace;
  while (!bytes.empty()) {
    Synopsis s;
    if (!decode_synopsis(bytes, s)) return std::nullopt;
    trace.push_back(std::move(s));
  }
  return trace;
}

bool write_trace_file(const std::string& path,
                      std::span<const Synopsis> trace) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  const auto bytes = encode_trace(trace);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(file);
}

std::optional<std::vector<Synopsis>> read_trace_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                                  std::istreambuf_iterator<char>());
  return decode_trace(bytes);
}

}  // namespace saad::core
