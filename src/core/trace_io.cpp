#include "core/trace_io.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "common/crc32c.h"
#include "core/telemetry.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace saad::core {

namespace {

struct TraceIoMetrics {
  obs::Counter& writer_synopses;
  obs::Counter& writer_blocks;
  obs::Counter& writer_bytes;
  obs::Counter& writer_flushes;
  obs::Counter& reader_records;
  obs::Counter& reader_blocks;
  obs::Counter& reader_crc_failures;
  obs::Counter& reader_bytes_discarded;
  obs::Counter& reader_torn_tails;

  TraceIoMetrics()
      : writer_synopses(obs::MetricsRegistry::global().counter(
            "saad_trace_writer_synopses_total",
            "Synopses appended to trace writers.")),
        writer_blocks(obs::MetricsRegistry::global().counter(
            "saad_trace_writer_blocks_total",
            "Sealed v2 blocks written to disk.")),
        writer_bytes(obs::MetricsRegistry::global().counter(
            "saad_trace_writer_bytes_total",
            "Framed bytes written (headers + payloads).")),
        writer_flushes(obs::MetricsRegistry::global().counter(
            "saad_trace_writer_flushes_total",
            "Explicit flush() calls that pushed data to the OS.")),
        reader_records(obs::MetricsRegistry::global().counter(
            "saad_trace_reader_records_total",
            "Synopses decoded from trace files (v1 + v2).")),
        reader_blocks(obs::MetricsRegistry::global().counter(
            "saad_trace_reader_blocks_total",
            "v2 block headers seen, including corrupt blocks.")),
        reader_crc_failures(obs::MetricsRegistry::global().counter(
            "saad_trace_reader_crc_failures_total",
            "Blocks skipped for CRC mismatch, bad framing, or undecodable "
            "payload.")),
        reader_bytes_discarded(obs::MetricsRegistry::global().counter(
            "saad_trace_reader_bytes_discarded_total",
            "Bytes of damage skipped while recovering trace files.")),
        reader_torn_tails(obs::MetricsRegistry::global().counter(
            "saad_trace_reader_torn_tails_total",
            "Files that ended mid-record or mid-block (crash tails "
            "recovered up to the last sealed block).")) {}

  static TraceIoMetrics& get() {
    static TraceIoMetrics* metrics = new TraceIoMetrics();
    return *metrics;
  }
};

constexpr char kMagicV1[8] = {'S', 'A', 'A', 'D', 'T', 'R', 'C', '1'};
constexpr char kMagicV2[8] = {'S', 'A', 'A', 'D', 'T', 'R', 'C', '2'};
constexpr char kBlockMarker[4] = {'B', 'L', 'K', '2'};
constexpr std::size_t kBlockHeaderSize = 16;
// Sanity cap on a decoded block: a length field above this is damage, not a
// block (the writer seals at Options::block_bytes, default 64 KB).
constexpr std::uint32_t kMaxBlockPayload = 64u * 1024 * 1024;
constexpr std::size_t kV1Chunk = 64 * 1024;

// Publishes the TraceStats deltas accrued during one reader step (a v2 block
// refill or a v1 decode step) into the global metrics and flight recorder,
// whatever exit path the step takes. Keeps the recovery logic free of
// per-site instrumentation.
class ReaderDamageScope {
 public:
  explicit ReaderDamageScope(const TraceStats& stats)
      : stats_(stats), before_(stats) {}
  ReaderDamageScope(const ReaderDamageScope&) = delete;
  ReaderDamageScope& operator=(const ReaderDamageScope&) = delete;

  ~ReaderDamageScope() {
    if constexpr (obs::kMetricsEnabled) {
      auto& metrics = TraceIoMetrics::get();
      metrics.reader_blocks.inc(stats_.blocks_total - before_.blocks_total);
      metrics.reader_crc_failures.inc(stats_.blocks_corrupt -
                                      before_.blocks_corrupt);
      metrics.reader_bytes_discarded.inc(stats_.bytes_discarded -
                                         before_.bytes_discarded);
      if (stats_.truncated_tail && !before_.truncated_tail)
        metrics.reader_torn_tails.inc();
    }
    if (stats_.blocks_corrupt > before_.blocks_corrupt) {
      obs::FlightRecorder::global().record(
          obs::EventKind::kCorruptBlock,
          "skipped %llu corrupt block(s), %llu byte(s) discarded",
          static_cast<unsigned long long>(stats_.blocks_corrupt -
                                          before_.blocks_corrupt),
          static_cast<unsigned long long>(stats_.bytes_discarded -
                                          before_.bytes_discarded));
    }
    if (stats_.truncated_tail && !before_.truncated_tail) {
      obs::FlightRecorder::global().record(
          obs::EventKind::kTornTail, "torn tail: %llu byte(s) discarded",
          static_cast<unsigned long long>(stats_.bytes_discarded -
                                          before_.bytes_discarded));
    }
  }

 private:
  const TraceStats& stats_;
  TraceStats before_;
};

void put_u32le(std::uint32_t v, std::uint8_t* dst) {
  for (int i = 0; i < 4; ++i) dst[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32le(const std::uint8_t* src) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(src[i]) << (8 * i);
  return v;
}

}  // namespace

void detail::register_trace_io_metrics() { TraceIoMetrics::get(); }

// ---- v1 buffer codec -------------------------------------------------------

std::vector<std::uint8_t> encode_trace(std::span<const Synopsis> trace) {
  std::vector<std::uint8_t> out;
  out.reserve(trace.size() * 32 + sizeof(kMagicV1));
  // resize + memcpy rather than insert-from-array: GCC 12's stringop-overflow
  // pass misattributes the 8-byte magic copy to the reserve'd allocation and
  // warns under -Werror.
  out.resize(sizeof(kMagicV1));
  std::memcpy(out.data(), kMagicV1, sizeof(kMagicV1));
  for (const auto& s : trace) encode_synopsis(s, out);
  return out;
}

std::optional<std::vector<Synopsis>> decode_trace(
    std::span<const std::uint8_t> bytes, TraceStats* stats) {
  TraceStats local;
  if (stats) *stats = local;
  if (bytes.size() < sizeof(kMagicV1) ||
      std::memcmp(bytes.data(), kMagicV1, sizeof(kMagicV1)) != 0) {
    return std::nullopt;
  }
  local.version = 1;
  bytes = bytes.subspan(sizeof(kMagicV1));
  std::vector<Synopsis> trace;
  while (!bytes.empty()) {
    auto attempt = bytes;  // decode leaves the span unspecified on failure
    Synopsis s;
    if (!decode_synopsis(attempt, s)) {
      // Unframed records: recover the complete-record prefix, drop the rest.
      local.bytes_discarded = bytes.size();
      local.truncated_tail = true;
      break;
    }
    bytes = attempt;
    trace.push_back(std::move(s));
  }
  local.synopses = trace.size();
  if (stats) *stats = local;
  return trace;
}

// ---- TraceWriter -----------------------------------------------------------

TraceWriter::TraceWriter(std::string path, Options options)
    : path_(std::move(path)),
      write_path_(options.atomic_finalize ? path_ + ".tmp" : path_),
      options_(options) {
  if (options_.block_bytes == 0) options_.block_bytes = 1;
  out_.open(write_path_, std::ios::binary | std::ios::trunc);
  if (!out_) return;
  out_.write(kMagicV2, sizeof(kMagicV2));
  ok_ = static_cast<bool>(out_);
  if (ok_) bytes_ = sizeof(kMagicV2);
}

TraceWriter::~TraceWriter() {
  // Crash semantics: flush what we can, never rename. An unfinalized atomic
  // writer leaves `path.tmp` with every sealed block recoverable.
  if (!finalized_) {
    flush();
    out_.close();
  }
}

bool TraceWriter::write_block() {
  std::uint8_t header[kBlockHeaderSize];
  std::memcpy(header, kBlockMarker, sizeof(kBlockMarker));
  put_u32le(static_cast<std::uint32_t>(payload_.size()), header + 4);
  put_u32le(payload_records_, header + 8);
  put_u32le(crc32c(payload_), header + 12);
  out_.write(reinterpret_cast<const char*>(header), sizeof(header));
  out_.write(reinterpret_cast<const char*>(payload_.data()),
             static_cast<std::streamsize>(payload_.size()));
  out_.flush();  // sealed blocks survive the process dying
  if (!out_) {
    ok_ = false;
    return false;
  }
  if constexpr (obs::kMetricsEnabled) {
    auto& metrics = TraceIoMetrics::get();
    metrics.writer_blocks.inc();
    metrics.writer_bytes.inc(sizeof(header) + payload_.size());
  }
  bytes_ += sizeof(header) + payload_.size();
  ++blocks_;
  payload_.clear();
  payload_records_ = 0;
  return true;
}

bool TraceWriter::append(const Synopsis& s) {
  if (!ok_ || finalized_) return false;
  encode_synopsis(s, payload_);
  ++payload_records_;
  ++synopses_;
  if constexpr (obs::kMetricsEnabled)
    TraceIoMetrics::get().writer_synopses.inc();
  if (payload_.size() >= options_.block_bytes) return write_block();
  return true;
}

bool TraceWriter::flush() {
  if (!ok_ || finalized_) return false;
  if constexpr (obs::kMetricsEnabled)
    TraceIoMetrics::get().writer_flushes.inc();
  if (!payload_.empty()) return write_block();
  out_.flush();
  ok_ = static_cast<bool>(out_);
  return ok_;
}

bool TraceWriter::finalize() {
  if (finalized_) return ok_;
  if (ok_) flush();
  out_.close();
  if (out_.fail()) ok_ = false;
  if (ok_ && options_.atomic_finalize) {
    std::error_code ec;
    std::filesystem::rename(write_path_, path_, ec);
    if (ec) ok_ = false;
  }
  finalized_ = true;
  return ok_;
}

// ---- TraceReader -----------------------------------------------------------

TraceReader::TraceReader(const std::string& path) {
  in_.open(path, std::ios::binary);
  if (!in_) return;
  std::uint8_t magic[8];
  std::size_t got = 0;
  if (!read_exact(magic, sizeof(magic), &got)) return;
  if (std::memcmp(magic, kMagicV1, sizeof(magic)) == 0) {
    stats_.version = 1;
    ok_ = true;
  } else if (std::memcmp(magic, kMagicV2, sizeof(magic)) == 0) {
    stats_.version = 2;
    ok_ = true;
  }
}

bool TraceReader::read_exact(std::uint8_t* dst, std::size_t n,
                             std::size_t* got_out) {
  std::size_t got = 0;
  const std::size_t from_carry = std::min(n, carry_.size());
  if (from_carry > 0) {  // empty carry_ has a null data(): UB to memcpy from
    std::memcpy(dst, carry_.data(), from_carry);
    carry_.erase(carry_.begin(),
                 carry_.begin() + static_cast<std::ptrdiff_t>(from_carry));
    got += from_carry;
  }
  if (got < n) {
    in_.read(reinterpret_cast<char*>(dst) + got,
             static_cast<std::streamsize>(n - got));
    got += static_cast<std::size_t>(in_.gcount());
  }
  if (got_out) *got_out = got;
  return got == n;
}

bool TraceReader::next(Synopsis& out) {
  if (!ok_) return false;
  if (stats_.version == 1) return next_v1(out);
  if (block_pos_ >= block_records_.size() && !refill_block_v2()) return false;
  out = std::move(block_records_[block_pos_++]);
  ++stats_.synopses;
  if constexpr (obs::kMetricsEnabled)
    TraceIoMetrics::get().reader_records.inc();
  return true;
}

bool TraceReader::refill_block_v2() {
  ReaderDamageScope damage(stats_);
  block_records_.clear();
  block_pos_ = 0;

  // Scans forward from `window` (bytes already consumed, starting at the
  // byte where framing broke) to the next block marker; queues the marker
  // and everything after it back through carry_. False when the file ends
  // first. Every skipped byte is counted discarded.
  const auto resync = [this](std::vector<std::uint8_t> window) {
    ++stats_.blocks_corrupt;
    if (!window.empty()) {  // the first byte is known-bad
      window.erase(window.begin());
      ++stats_.bytes_discarded;
    }
    for (;;) {
      std::size_t i = 0;
      for (; i + sizeof(kBlockMarker) <= window.size(); ++i)
        if (std::memcmp(window.data() + i, kBlockMarker,
                        sizeof(kBlockMarker)) == 0)
          break;
      if (i + sizeof(kBlockMarker) <= window.size()) {
        stats_.bytes_discarded += i;
        carry_.assign(window.begin() + static_cast<std::ptrdiff_t>(i),
                      window.end());
        return true;
      }
      if (window.size() > 3) {  // keep a 3-byte overlap for split markers
        stats_.bytes_discarded += window.size() - 3;
        window.erase(window.begin(),
                     window.end() - 3);
      }
      std::uint8_t chunk[512];
      in_.read(reinterpret_cast<char*>(chunk), sizeof(chunk));
      const auto got = static_cast<std::size_t>(in_.gcount());
      if (got == 0) {
        stats_.bytes_discarded += window.size();
        return false;
      }
      window.insert(window.end(), chunk, chunk + got);
    }
  };

  for (;;) {
    std::uint8_t header[kBlockHeaderSize];
    std::size_t got = 0;
    if (!read_exact(header, sizeof(header), &got)) {
      if (got > 0) {  // partial header: torn tail
        stats_.bytes_discarded += got;
        stats_.truncated_tail = true;
      }
      return false;
    }
    const std::uint32_t payload_len = get_u32le(header + 4);
    const std::uint32_t record_count = get_u32le(header + 8);
    const std::uint32_t crc = get_u32le(header + 12);
    if (std::memcmp(header, kBlockMarker, sizeof(kBlockMarker)) != 0 ||
        payload_len > kMaxBlockPayload) {
      if (!resync(std::vector<std::uint8_t>(header, header + sizeof(header))))
        return false;
      continue;
    }
    ++stats_.blocks_total;
    std::vector<std::uint8_t> payload(payload_len);
    got = 0;
    if (!read_exact(payload.data(), payload_len, &got)) {
      stats_.bytes_discarded += sizeof(header) + got;
      stats_.truncated_tail = true;
      return false;
    }
    max_buffered_ = std::max(max_buffered_, payload.size() + sizeof(header));
    if (crc32c(payload) != crc) {
      ++stats_.blocks_corrupt;
      stats_.bytes_discarded += sizeof(header) + payload_len;
      continue;  // framing intact: the next header follows immediately
    }
    // CRC verified; a decode failure past this point is a codec bug or a
    // CRC collision — treat the block as corrupt rather than trust it.
    std::span<const std::uint8_t> rest(payload);
    bool bad = false;
    for (std::uint32_t r = 0; r < record_count; ++r) {
      Synopsis s;
      if (!decode_synopsis(rest, s)) {
        bad = true;
        break;
      }
      block_records_.push_back(std::move(s));
    }
    if (bad || !rest.empty()) {
      block_records_.clear();
      ++stats_.blocks_corrupt;
      stats_.bytes_discarded += sizeof(header) + payload_len;
      continue;
    }
    if (!block_records_.empty()) return true;
  }
}

bool TraceReader::next_v1(Synopsis& out) {
  ReaderDamageScope damage(stats_);
  for (;;) {
    std::span<const std::uint8_t> rest(v1_buf_.data() + v1_pos_,
                                       v1_buf_.size() - v1_pos_);
    if (!rest.empty()) {
      auto attempt = rest;
      if (decode_synopsis(attempt, out)) {
        v1_pos_ = v1_buf_.size() - attempt.size();
        ++stats_.synopses;
        if constexpr (obs::kMetricsEnabled)
          TraceIoMetrics::get().reader_records.inc();
        return true;
      }
    }
    if (v1_eof_) {
      // v1 carries no framing, so a failed record ends recovery: whether
      // torn tail or mid-file damage, everything after the last complete
      // record is discarded.
      if (!rest.empty()) {
        stats_.bytes_discarded += rest.size();
        stats_.truncated_tail = true;
        v1_pos_ = v1_buf_.size();
      }
      return false;
    }
    // The record may simply span the chunk boundary: slide the unconsumed
    // tail to the front and read another chunk.
    v1_buf_.erase(v1_buf_.begin(),
                  v1_buf_.begin() + static_cast<std::ptrdiff_t>(v1_pos_));
    v1_pos_ = 0;
    const std::size_t old = v1_buf_.size();
    v1_buf_.resize(old + kV1Chunk);
    in_.read(reinterpret_cast<char*>(v1_buf_.data() + old), kV1Chunk);
    const auto got = static_cast<std::size_t>(in_.gcount());
    v1_buf_.resize(old + got);
    if (got < kV1Chunk) v1_eof_ = true;
    max_buffered_ = std::max(max_buffered_, v1_buf_.size());
  }
}

// ---- file convenience wrappers ---------------------------------------------

bool write_trace_file(const std::string& path,
                      std::span<const Synopsis> trace) {
  bool ok;
  {
    TraceWriter writer(path);
    ok = writer.ok();
    for (const auto& s : trace) {
      if (!writer.append(s)) {
        ok = false;
        break;
      }
    }
    if (ok) ok = writer.finalize();
  }
  if (!ok) {  // don't leave a stale temp file behind
    std::error_code ec;
    std::filesystem::remove(path + ".tmp", ec);
  }
  return ok;
}

std::optional<std::vector<Synopsis>> read_trace_file(const std::string& path,
                                                     TraceStats* stats) {
  TraceReader reader(path);
  if (stats) *stats = reader.stats();
  if (!reader.ok()) return std::nullopt;
  std::vector<Synopsis> trace;
  Synopsis s;
  while (reader.next(s)) trace.push_back(std::move(s));
  if (stats) *stats = reader.stats();
  return trace;
}

}  // namespace saad::core
