// Multi-threaded windowed detection (scales the paper's "centralized
// analyzer" across cores without changing a single verdict).
//
// Every statistical test the detector runs is keyed per (host, stage) — the
// flow test — or per (host, stage, signature) — the performance test. Nothing
// crosses those keys, so closed windows can be fanned out across worker
// threads that each own a private AnomalyDetector over a fixed hash partition
// of (host, stage). Because the partition function is a pure function of the
// key, a given (host, stage) always lands on the same worker, every worker
// sees exactly the serial detector's per-key input in the serial order, and
// the per-key statistics — hence every test statistic and p-value — are
// bit-identical to the serial path.
//
// Output ordering: the serial detector emits, per closed window in ascending
// order, one flow and/or one performance anomaly per (host, stage) in
// ascending key order. At most one anomaly exists per (window, host, stage,
// kind), so sorting the merged worker outputs by exactly that tuple
// reconstructs the serial order — the determinism the golden test pins.
//
// The one intentionally unsupported combination: DetectorConfig::bonferroni
// counts hypothesis tests *across the whole window*, which a partition cannot
// see locally; with bonferroni the pool falls back to one inline serial
// detector (still correct, just not parallel).
//
// Threading model: ingest() is called by the single analyzer/consumer thread;
// it appends to a caller-side per-worker buffer (no locks) and hands full
// buffers to the worker's FIFO job queue, so classification and window
// bookkeeping overlap with the caller's next channel drain. advance_to() and
// finish() flush all buffers, enqueue a close job on every worker, wait for
// the barrier, and merge.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/detector.h"

namespace saad::obs {
class Counter;
}

namespace saad::core {

class AnalyzerPool {
 public:
  /// Spawns config.analyzer_threads workers when analyzer_threads >= 2
  /// (0 means std::thread::hardware_concurrency()); with analyzer_threads
  /// == 1 (or bonferroni set) no threads are spawned and every call runs an
  /// inline AnomalyDetector — the exact serial path.
  AnalyzerPool(const OutlierModel* model, DetectorConfig config = {});
  ~AnalyzerPool();

  AnalyzerPool(const AnalyzerPool&) = delete;
  AnalyzerPool& operator=(const AnalyzerPool&) = delete;

  /// Routes the synopsis to its (host, stage) partition. Single caller
  /// thread (the channel's single consumer).
  void ingest(const Synopsis& synopsis);

  /// Closes every window ending at or before `now` on all partitions and
  /// returns the merged anomalies in serial (window, host, stage, kind)
  /// order. Blocks until all workers have drained their queues.
  std::vector<Anomaly> advance_to(UsTime now);

  /// Closes all remaining windows on all partitions.
  std::vector<Anomaly> finish();

  const DetectorConfig& config() const { return config_; }
  /// Actual parallelism (1 when running inline).
  std::size_t threads() const { return workers_.empty() ? 1 : workers_.size(); }
  std::uint64_t ingested() const { return ingested_; }

  // ---- Warm-restart state (checkpoint.h) -----------------------------------

  /// Serializes the pool's detection state as ONE canonical AnomalyDetector
  /// state: per-worker states are folded back together (partitions own
  /// disjoint (host, stage) keys), so the bytes are identical for any thread
  /// count — a checkpoint taken at threads=4 restores into threads=1 and
  /// vice versa. Barriers on all workers (call it between batches, like
  /// advance_to).
  void save_state(std::vector<std::uint8_t>& out);

  /// Restores state produced by save_state() (possibly under a different
  /// thread count), splitting it across the current partitions. Call before
  /// the first ingest(); false on malformed input. The model is not part of
  /// the state — construct the pool over the restored model first.
  bool restore_state(std::span<const std::uint8_t> in);

  /// Close cursor recovered by the last restore_state() (0 before): the
  /// oldest window index still open, for resuming watermark bookkeeping.
  std::size_t restored_next_window() const { return restored_next_window_; }

  /// Stages `model` to replace the current one. The swap applies at the end
  /// of the next advance_to()/finish() — a window boundary — so every
  /// verdict stream position sees exactly one model and verdicts stay
  /// bit-identical for any thread count. `model` must stay alive until the
  /// pool is destroyed or swapped again; the previously bound model may be
  /// freed once the applying advance_to()/finish() returns. Staging twice
  /// before a boundary keeps only the newest model (one epoch bump).
  void swap_model(const OutlierModel* model);

  /// Applied model swaps so far (construction model = epoch 0).
  std::uint64_t model_epoch() const { return model_epoch_; }

 private:
  struct Job {
    std::vector<Synopsis> batch;             // non-empty: ingest these
    bool close = false;                      // then close windows...
    UsTime now = 0;                          // ...ending <= now,
    bool close_all = false;                  // or all of them (finish)
    std::vector<Anomaly>* out = nullptr;     // close-job result slot
    std::vector<std::uint8_t>* save_out = nullptr;  // save-job result slot
  };

  struct Worker {
    std::unique_ptr<AnomalyDetector> detector;  // worker-thread-owned
    std::vector<Synopsis> pending;              // caller-side, lock-free
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Job> jobs;
    bool stop = false;
    std::thread thread;
    // Self-telemetry (worker="i" series in the global registry); null when
    // running inline.
    obs::Counter* busy_us = nullptr;   // time spent processing jobs
    obs::Counter* jobs_done = nullptr; // jobs (ingest batches + closes)
  };

  static std::size_t partition(HostId host, StageId stage, std::size_t n);

  void worker_loop(Worker& worker);
  void enqueue(Worker& worker, Job job);
  void flush_pending(Worker& worker);
  std::vector<Anomaly> close_windows(UsTime now, bool close_all);
  /// Rebinds every detector to the staged model, if any. Only called with
  /// all workers idle (after a close/save barrier).
  void apply_pending_model();

  const OutlierModel* model_;
  DetectorConfig config_;
  std::unique_ptr<AnomalyDetector> serial_;      // inline path (threads <= 1)
  std::vector<std::unique_ptr<Worker>> workers_; // parallel path

  // Barrier for close jobs: workers decrement and notify.
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::size_t outstanding_ = 0;

  std::uint64_t ingested_ = 0;

  // Hot model reload: staged by swap_model(), applied at the next window
  // boundary by apply_pending_model().
  const OutlierModel* pending_model_ = nullptr;
  std::uint64_t model_epoch_ = 0;
  std::size_t restored_next_window_ = 0;

  /// Caller-side batch size before a buffer is handed to its worker.
  static constexpr std::size_t kDispatchBatch = 512;
};

}  // namespace saad::core
