// Warm-restart checkpoints for the serving pipeline (paper §4: the
// centralized analyzer is stateful — trained thresholds plus open detection
// windows — so a crash of `saad_offline serve` must not lose in-flight
// windows or force a retrain/reload cycle).
//
// File format "SAADCKP1": the 8-byte magic followed by CRC32C-framed
// sections, each
//
//   +------+-------------+---------+------------------+
//   | id   | payload_len | crc32c  | payload          |
//   | 1 B  | u32 LE      | u32 LE  | payload_len B    |
//   +------+-------------+---------+------------------+
//
// The CRC32C seeds with the id byte (the wire.h discipline), so a flipped
// id or a corrupted body are both detected, and the length is validated
// against kMaxCheckpointSection before any allocation. Section ids:
//
//   kMeta      varints: format version, sequence, model epoch,
//              zigzag(window), analyzer threads, synopses ingested, and the
//              server's published/acked watermark at capture.
//   kModel     the OutlierModel bytes (model_io.cpp's "SAADMDL1" codec).
//   kRegistry  the LogRegistry bytes (log_registry.cpp codec).
//   kAnalyzer  canonical AnalyzerPool state (AnalyzerPool::save_state) —
//              every open detection window's per-(host, stage) and
//              per-signature tallies, portable across thread counts.
//   kAnomalies verdicts already emitted before the checkpoint, so a resumed
//              serve's final report is byte-identical to an uninterrupted
//              run.
//   kEnd       empty payload, required last: its absence is a torn write.
//
// Validation is all-or-nothing: a checkpoint with any missing, truncated,
// reordered, or corrupt section (including a missing kEnd or trailing
// bytes) is rejected whole — there is no partial restore. CheckpointDir
// then falls back to the next-newest file, loudly, counting every rejected
// candidate in saad_checkpoint_corrupt_total.
//
// Write discipline is trace_io's: stream to `path + ".tmp"`, rename onto
// `path` only once complete, so a crash mid-write leaves the previous
// checkpoint untouched and at most a stale .tmp behind.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/detector.h"

namespace saad::core {

inline constexpr char kCheckpointMagic[8] = {'S', 'A', 'A', 'D',
                                             'C', 'K', 'P', '1'};
inline constexpr std::uint64_t kCheckpointVersion = 1;

/// Upper bound on one section payload; a length prefix beyond this is
/// damage (and keeps a corrupt file from making the reader allocate GBs).
inline constexpr std::size_t kMaxCheckpointSection = 64 * 1024 * 1024;

/// Section header size: id + payload_len + crc32c.
inline constexpr std::size_t kCheckpointSectionHeader = 1 + 4 + 4;

enum class CheckpointSection : std::uint8_t {
  kMeta = 1,
  kModel = 2,
  kRegistry = 3,
  kAnalyzer = 4,
  kAnomalies = 5,
  kEnd = 0x7F,
};

struct Checkpoint {
  std::uint64_t sequence = 0;     // monotone per directory; in the filename
  std::uint64_t model_epoch = 0;  // AnalyzerPool epoch at capture
  UsTime window = 0;              // detector window; resume must match
  std::uint64_t threads = 0;      // advisory: analyzer threads at capture
  std::uint64_t ingested = 0;     // synopses ingested (for the final report)
  std::uint64_t published = 0;    // server watermark: synopses -> channel
  std::uint64_t acked = 0;        // server watermark: synopses consumed
  std::vector<std::uint8_t> model;     // OutlierModel::save bytes
  std::vector<std::uint8_t> registry;  // LogRegistry::save bytes
  std::vector<std::uint8_t> analyzer;  // AnalyzerPool::save_state bytes
  std::vector<Anomaly> anomalies;      // verdicts emitted before capture
};

/// Appends the framed encoding of `c` to `out`.
void encode_checkpoint(const Checkpoint& c, std::vector<std::uint8_t>& out);

/// Strict decode: nullopt on any framing damage, CRC mismatch, unknown or
/// out-of-order section, missing end marker, or trailing bytes.
std::optional<Checkpoint> decode_checkpoint(std::span<const std::uint8_t> in);

/// Anomaly list codec, exposed for tests (kAnomalies uses it).
void encode_anomalies(std::span<const Anomaly> anomalies,
                      std::vector<std::uint8_t>& out);
bool decode_anomalies(std::span<const std::uint8_t> in,
                      std::vector<Anomaly>& out);

/// Writes `c` to `path` atomically (path + ".tmp", then rename). False on
/// any I/O failure; the previous file at `path`, if any, is untouched then.
bool write_checkpoint_file(const std::string& path, const Checkpoint& c);

/// Reads and strictly validates one checkpoint file.
std::optional<Checkpoint> read_checkpoint_file(const std::string& path);

/// A directory of `ckpt-<sequence>.saadckp` files with newest-valid
/// fallback. Not thread-safe; one writer (the serve consumer loop) owns it.
class CheckpointDir {
 public:
  explicit CheckpointDir(std::string dir);

  /// Creates the directory when missing. False when it cannot be used.
  bool ensure();

  const std::string& dir() const { return dir_; }
  std::string path_for(std::uint64_t sequence) const;

  /// Largest sequence among present files (valid or not), 0 when none —
  /// resume continues numbering above every file ever written.
  std::uint64_t max_sequence() const;

  /// Decodes the newest valid checkpoint, scanning newest-first. Every
  /// newer candidate that fails validation is counted (and reported in
  /// `corrupt_skipped` when non-null) — the loud fallback.
  std::optional<Checkpoint> load_latest(
      std::size_t* corrupt_skipped = nullptr) const;

  /// Atomically writes `c` at path_for(c.sequence), then prunes older
  /// checkpoints down to `keep` files. False on write failure.
  bool write(const Checkpoint& c, std::size_t keep = 4);

 private:
  std::string dir_;
};

}  // namespace saad::core
