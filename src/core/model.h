// Trained outlier model (paper §3.3.2): built offline from a fault-free trace
// of task synopses, then queried online by the detector.
//
// Training is deliberately limited to counting and percentiles:
//  * per stage, signatures are ranked by task share; signatures below the
//    share threshold (default 1%, i.e. the paper's "99th percentile rank")
//    are *flow outliers*;
//  * per (stage, signature), the duration_quantile (default 99th percentile)
//    of task durations is the *performance outlier* threshold;
//  * signatures whose duration distribution cannot support that threshold
//    (k-fold cross-validated held-out outlier rate > unstable_factor x the
//    nominal tail) are discarded for performance detection.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/feature.h"

namespace saad::core {

struct TrainingConfig {
  /// Signatures accounting for less than this share of a stage's tasks are
  /// flow outliers (paper example: 99th-percentile rank == share < 1%).
  double flow_share_threshold = 0.01;

  /// Quantile of per-(stage, signature) durations used as the performance
  /// outlier threshold.
  double duration_quantile = 0.99;

  /// k for the cross-validated stability filter; k < 2 disables the filter.
  std::size_t kfold_k = 5;

  /// A signature is unstable (excluded from performance detection) when its
  /// mean held-out outlier rate exceeds unstable_factor x (1 - quantile).
  double unstable_factor = 2.0;

  /// Signatures with fewer training tasks than this are excluded from
  /// performance detection (too little data for a tail threshold).
  std::size_t min_signature_samples = 50;
};

struct SignatureStats {
  std::uint64_t task_count = 0;
  double share = 0.0;           // of the stage's training tasks
  bool flow_outlier = false;    // rare flow in training
  bool perf_applicable = false; // stable enough for duration thresholding
  UsTime duration_threshold = 0;
  double train_perf_outlier_rate = 0.0;  // empirical, measured on training
};

struct StageModel {
  StageId stage = kInvalidStage;
  std::uint64_t task_count = 0;
  double train_flow_outlier_rate = 0.0;
  std::unordered_map<Signature, SignatureStats, SignatureHash> signatures;
};

/// How the model classifies a single task.
struct Classification {
  bool known_stage = false;     // stage present in training
  bool new_signature = false;   // never seen in training (strong flow signal)
  bool flow_outlier = false;    // rare-in-training signature (incl. new)
  bool perf_applicable = false; // duration test meaningful for this signature
  bool perf_outlier = false;    // duration above the trained threshold
};

class OutlierModel {
 public:
  /// Trains from a fault-free trace. Signatures are pooled across hosts:
  /// the statistical strength comes from comparing the many instances of the
  /// same stage within and across nodes (paper §2).
  static OutlierModel train(std::span<const Synopsis> trace,
                            const TrainingConfig& config = {});

  Classification classify(const Feature& feature) const;

  const StageModel* stage_model(StageId stage) const;
  const TrainingConfig& config() const { return config_; }
  std::size_t num_stages() const { return stages_.size(); }

  /// Total training tasks across stages.
  std::uint64_t trained_tasks() const { return trained_tasks_; }

  // ---- Persistence ----------------------------------------------------------
  // Train once (e.g. from an overnight fault-free trace), deploy many times:
  // the serialized model is a few KB and loads in microseconds.

  /// Appends a self-contained binary encoding of the model to `out`.
  void save(std::vector<std::uint8_t>& out) const;

  /// Decodes a model produced by save(). nullopt on malformed input.
  static std::optional<OutlierModel> load(std::span<const std::uint8_t> in);

 private:
  TrainingConfig config_;
  std::unordered_map<StageId, StageModel> stages_;
  std::uint64_t trained_tasks_ = 0;
};

}  // namespace saad::core
