#include "core/log_registry.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "core/varint.h"

namespace saad::core {

std::string_view level_name(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
  }
  return "?";
}

StageId LogRegistry::register_stage(std::string name) {
  std::lock_guard lock(mu_);
  if (stages_.size() >= kInvalidStage)
    throw std::length_error("too many stages");
  StageInfo info;
  info.id = static_cast<StageId>(stages_.size());
  info.name = std::move(name);
  stages_.push_back(std::move(info));
  return stages_.back().id;
}

LogPointId LogRegistry::register_log_point(StageId stage, Level level,
                                           std::string template_text,
                                           std::string file, int line) {
  std::lock_guard lock(mu_);
  if (points_.size() >= kInvalidLogPoint)
    throw std::length_error("too many log points");
  LogPointInfo info;
  info.id = static_cast<LogPointId>(points_.size());
  info.stage = stage;
  info.level = level;
  info.template_text = std::move(template_text);
  info.file = std::move(file);
  info.line = line;
  points_.push_back(std::move(info));
  return points_.back().id;
}

const StageInfo& LogRegistry::stage(StageId id) const {
  std::lock_guard lock(mu_);
  assert(id < stages_.size());
  return stages_[id];
}

const LogPointInfo& LogRegistry::log_point(LogPointId id) const {
  std::lock_guard lock(mu_);
  assert(id < points_.size());
  return points_[id];
}

StageId LogRegistry::find_stage(std::string_view name) const {
  std::lock_guard lock(mu_);
  for (const auto& s : stages_)
    if (s.name == name) return s.id;
  return kInvalidStage;
}

std::size_t LogRegistry::num_stages() const {
  std::lock_guard lock(mu_);
  return stages_.size();
}

std::size_t LogRegistry::num_log_points() const {
  std::lock_guard lock(mu_);
  return points_.size();
}

std::vector<LogPointId> LogRegistry::log_points_of(StageId stage) const {
  std::lock_guard lock(mu_);
  std::vector<LogPointId> out;
  for (const auto& p : points_)
    if (p.stage == stage) out.push_back(p.id);
  return out;
}

namespace {

constexpr char kMagic[8] = {'S', 'A', 'A', 'D', 'R', 'E', 'G', '1'};

void put_string(const std::string& s, std::vector<std::uint8_t>& out) {
  put_varint(s.size(), out);
  out.insert(out.end(), s.begin(), s.end());
}

bool get_string(std::span<const std::uint8_t>& in, std::string& s) {
  std::uint64_t len = 0;
  if (!get_varint(in, len) || len > in.size() || len > 0x100000) return false;
  s.assign(reinterpret_cast<const char*>(in.data()), len);
  in = in.subspan(len);
  return true;
}

}  // namespace

void LogRegistry::save(std::vector<std::uint8_t>& out) const {
  std::lock_guard lock(mu_);
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  put_varint(stages_.size(), out);
  for (const auto& stage : stages_) put_string(stage.name, out);
  put_varint(points_.size(), out);
  for (const auto& point : points_) {
    put_varint(point.stage, out);
    put_varint(static_cast<std::uint64_t>(point.level), out);
    put_string(point.template_text, out);
    put_string(point.file, out);
    put_varint(static_cast<std::uint64_t>(std::max(point.line, 0)), out);
  }
}

bool LogRegistry::load(std::span<const std::uint8_t> in) {
  if (in.size() < sizeof(kMagic) ||
      std::memcmp(in.data(), kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  in = in.subspan(sizeof(kMagic));

  std::vector<StageInfo> stages;
  std::vector<LogPointInfo> points;
  std::uint64_t n = 0;
  if (!get_varint(in, n) || n > kInvalidStage) return false;
  stages.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    StageInfo info;
    info.id = static_cast<StageId>(i);
    if (!get_string(in, info.name)) return false;
    stages.push_back(std::move(info));
  }
  if (!get_varint(in, n) || n > kInvalidLogPoint) return false;
  points.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    LogPointInfo info;
    info.id = static_cast<LogPointId>(i);
    std::uint64_t v = 0;
    if (!get_varint(in, v) || v >= stages.size()) return false;
    info.stage = static_cast<StageId>(v);
    if (!get_varint(in, v) || v > 3) return false;
    info.level = static_cast<Level>(v);
    if (!get_string(in, info.template_text)) return false;
    if (!get_string(in, info.file)) return false;
    if (!get_varint(in, v)) return false;
    info.line = static_cast<int>(v);
    points.push_back(std::move(info));
  }

  std::lock_guard lock(mu_);
  stages_ = std::move(stages);
  points_ = std::move(points);
  return true;
}

}  // namespace saad::core
