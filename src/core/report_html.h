// Standalone HTML anomaly report — the reproduction's version of the paper's
// visualization tool (§3.3.3 "Anomaly Reporting"): a per-stage/host timeline
// grid plus, for each anomaly, the log templates of its signature so an
// operator can read the semantics of the flow.
//
// The output is a single self-contained page (inline CSS, no scripts, no
// external assets) safe to attach to an incident ticket.
#pragma once

#include <string>
#include <vector>

#include "core/detector.h"
#include "core/log_registry.h"

namespace saad::core {

struct HtmlReportOptions {
  std::string title = "SAAD anomaly report";
  /// Timeline columns (windows); window width is taken from the anomalies'
  /// window_start / window values.
  std::size_t num_windows = 60;
  /// Cap on the detailed per-anomaly sections.
  std::size_t max_details = 100;
};

std::string render_html_report(const std::vector<Anomaly>& anomalies,
                               const LogRegistry& registry,
                               const HtmlReportOptions& options = {});

}  // namespace saad::core
