// Task execution synopsis (paper §3.2.2, §4.1): the tiny record a tracker
// emits when a task terminates, replacing all of the task's log text.
//
//   struct synopsis{ byte sid; int uid; int ts; int duration;
//                    { short lpid; int count; } log_points[]; }
//
// We add the host id (the analyzer is centralized and must distinguish stage
// instances per host) and encode with varints so typical synopses stay at a
// few tens of bytes, matching the paper's ~48 B average.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/time.h"
#include "core/ids.h"

namespace saad::core {

struct LogPointCount {
  LogPointId point = kInvalidLogPoint;
  std::uint32_t count = 0;

  friend bool operator==(const LogPointCount&, const LogPointCount&) = default;
};

struct Synopsis {
  HostId host = 0;
  StageId stage = kInvalidStage;
  TaskUid uid = 0;
  UsTime start = 0;     // task start time (us since experiment origin)
  UsTime duration = 0;  // start -> last encountered log point
  std::vector<LogPointCount> log_points;  // sorted by point id

  friend bool operator==(const Synopsis&, const Synopsis&) = default;
};

/// Appends the binary encoding of `s` to `out`. Returns encoded size.
std::size_t encode_synopsis(const Synopsis& s, std::vector<std::uint8_t>& out);

/// Decodes one synopsis from the front of `in`; advances `in` past it.
/// Returns false on malformed/truncated input (in which case `in` is left
/// unspecified and `out` partially filled).
bool decode_synopsis(std::span<const std::uint8_t>& in, Synopsis& out);

/// Size in bytes the synopsis would occupy on the wire.
std::size_t encoded_size(const Synopsis& s);

}  // namespace saad::core
