#include "core/synopsis.h"

#include <cassert>

#include "core/varint.h"

namespace saad::core {

std::size_t encode_synopsis(const Synopsis& s, std::vector<std::uint8_t>& out) {
  const std::size_t before = out.size();
  put_varint(s.host, out);
  put_varint(s.stage, out);
  put_varint(s.uid, out);
  put_varint(zigzag(s.start), out);
  put_varint(zigzag(s.duration), out);
  put_varint(s.log_points.size(), out);
  // Delta-encode point ids (sorted ascending) to shave bytes.
  LogPointId prev = 0;
  for (const auto& lp : s.log_points) {
    assert(lp.point >= prev);
    put_varint(static_cast<std::uint64_t>(lp.point - prev), out);
    put_varint(lp.count, out);
    prev = lp.point;
  }
  return out.size() - before;
}

bool decode_synopsis(std::span<const std::uint8_t>& in, Synopsis& out) {
  std::uint64_t v = 0;
  if (!get_varint(in, v) || v > 0xFFFF) return false;
  out.host = static_cast<HostId>(v);
  if (!get_varint(in, v) || v > 0xFFFF) return false;
  out.stage = static_cast<StageId>(v);
  if (!get_varint(in, v)) return false;
  out.uid = v;
  if (!get_varint(in, v)) return false;
  out.start = unzigzag(v);
  if (!get_varint(in, v)) return false;
  out.duration = unzigzag(v);
  if (!get_varint(in, v)) return false;
  const std::uint64_t n = v;
  if (n > 0x10000) return false;  // more points than ids exist: malformed
  out.log_points.clear();
  out.log_points.reserve(n);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t delta = 0, count = 0;
    if (!get_varint(in, delta) || !get_varint(in, count)) return false;
    prev += delta;
    if (prev > 0xFFFF || count > 0xFFFFFFFFull) return false;
    out.log_points.push_back(LogPointCount{static_cast<LogPointId>(prev),
                                           static_cast<std::uint32_t>(count)});
  }
  return true;
}

std::size_t encoded_size(const Synopsis& s) {
  std::size_t n = varint_size(s.host) + varint_size(s.stage) +
                  varint_size(s.uid) + varint_size(zigzag(s.start)) +
                  varint_size(zigzag(s.duration)) +
                  varint_size(s.log_points.size());
  LogPointId prev = 0;
  for (const auto& lp : s.log_points) {
    n += varint_size(static_cast<std::uint64_t>(lp.point - prev)) +
         varint_size(lp.count);
    prev = lp.point;
  }
  return n;
}

}  // namespace saad::core
