// Incident grouping: collapse per-window anomalies into contiguous bands per
// (host, stage, kind) — the horizontal bars a human reads off the paper's
// Fig. 9/10 timelines. Operators page on incidents, not on every one-minute
// re-confirmation of the same problem.
#pragma once

#include <string>
#include <vector>

#include "core/detector.h"
#include "core/log_registry.h"

namespace saad::core {

struct Incident {
  HostId host = 0;
  StageId stage = kInvalidStage;
  AnomalyKind kind = AnomalyKind::kFlow;
  std::size_t first_window = 0;
  std::size_t last_window = 0;  // inclusive
  std::size_t windows = 0;      // windows actually flagged within the band
  bool any_new_signature = false;
  double min_p_value = 1.0;
  Signature example_signature;  // from the band's most significant anomaly

  std::size_t span() const { return last_window - first_window + 1; }
};

/// Groups anomalies (any order) into incidents. Two anomalies of the same
/// (host, stage, kind) belong to the same incident when their windows are at
/// most `max_gap_windows` apart. Result is sorted by first window, then
/// host, then stage.
std::vector<Incident> group_incidents(const std::vector<Anomaly>& anomalies,
                                      std::size_t max_gap_windows = 1);

/// One line per incident, e.g.
///   "minutes 30-40 (10 windows): FLOW Table(4), new signature, p<=1e-12".
std::string describe(const Incident& incident, const LogRegistry& registry);

}  // namespace saad::core
