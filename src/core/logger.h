// Logger shim: the thin layer the paper inserts between server code and
// log4j (§4.1). Every log call carries its pre-assigned LogPointId.
//
// Two things happen on each call:
//  1. Tracepoint: the call is reported to the host's TaskExecutionTracker
//     regardless of verbosity — SAAD uses DEBUG statements as tracepoints even
//     when their text is never rendered or written (that is the whole point:
//     DEBUG-level insight at INFO-level cost).
//  2. Logging: if the statement's level passes the logger's threshold, the
//     rendered message is handed to the sink (file emulation, counting, ...).
//
// Rendering is the caller's job and should be guarded with `writes(level)` so
// the DEBUG formatting cost is not paid when DEBUG text is off — mirroring
// log4j's isDebugEnabled() idiom that the paper's instrumentation preserves.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/log_registry.h"

namespace saad::core {

class TaskExecutionTracker;

/// Where rendered log text goes. Implementations must be thread-safe.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(Level level, LogPointId point,
                     std::string_view message) = 0;
};

/// Discards everything (still counts bytes for volume accounting).
class NullSink final : public LogSink {
 public:
  void write(Level, LogPointId, std::string_view) override {}
};

/// Counts messages and bytes per level; used for the Fig. 8 volume study.
class CountingSink final : public LogSink {
 public:
  void write(Level level, LogPointId point, std::string_view message) override;

  std::uint64_t messages(Level level) const;
  std::uint64_t bytes(Level level) const;
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;

 private:
  struct PerLevel {
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> bytes{0};
  };
  PerLevel per_level_[4];
};

/// Retains every rendered line (with level and point) in memory; feeds the
/// text-mining baseline. Not for long real-thread runs.
class MemorySink final : public LogSink {
 public:
  struct Line {
    Level level;
    LogPointId point;
    std::string text;
  };

  void write(Level level, LogPointId point, std::string_view message) override;

  const std::vector<Line>& lines() const { return lines_; }
  std::uint64_t total_bytes() const { return bytes_; }
  void clear();

 private:
  std::mutex mu_;
  std::vector<Line> lines_;
  std::uint64_t bytes_ = 0;
};

/// Per-host logger. Cheap to call; hot path is two branches plus the tracker
/// update.
class Logger {
 public:
  Logger(const LogRegistry* registry, LogSink* sink, Level threshold);

  /// True when text at `level` will actually be written — use to guard
  /// message rendering (the isDebugEnabled() idiom).
  bool writes(Level level) const { return level >= threshold_; }

  void set_threshold(Level level) { threshold_ = level; }
  Level threshold() const { return threshold_; }

  /// Attach / detach the task execution tracker (may be null: plain logging).
  void set_tracker(TaskExecutionTracker* tracker) { tracker_ = tracker; }
  TaskExecutionTracker* tracker() const { return tracker_; }

  /// Log with pre-rendered text. `message` may be empty when the caller
  /// skipped rendering because writes(level) was false; the tracepoint still
  /// fires.
  void log(LogPointId point, std::string_view message = {});

  const LogRegistry& registry() const { return *registry_; }

 private:
  const LogRegistry* registry_;
  LogSink* sink_;
  Level threshold_;
  TaskExecutionTracker* tracker_ = nullptr;
};

}  // namespace saad::core
