// Umbrella header for the SAAD core library.
//
// Typical embedding (cf. Fig. 5):
//   LogRegistry registry;            // stages + log points + templates
//   RealClock clock;                 // or the simulator's virtual clock
//   Monitor monitor(&registry, &clock);
//   Logger logger(&registry, &sink, Level::kInfo);
//   logger.set_tracker(&monitor.tracker(host));
//   ... server calls logger.log(point, text) from instrumented statements,
//       tracker.set_context(stage) at stage beginnings ...
#pragma once

#include "core/channel.h"     // IWYU pragma: export
#include "core/detector.h"    // IWYU pragma: export
#include "core/feature.h"     // IWYU pragma: export
#include "core/ids.h"         // IWYU pragma: export
#include "core/incidents.h"   // IWYU pragma: export
#include "core/log_registry.h"  // IWYU pragma: export
#include "core/logger.h"      // IWYU pragma: export
#include "core/model.h"       // IWYU pragma: export
#include "core/monitor.h"     // IWYU pragma: export
#include "core/report.h"      // IWYU pragma: export
#include "core/report_html.h" // IWYU pragma: export
#include "core/report_json.h" // IWYU pragma: export
#include "core/synopsis.h"    // IWYU pragma: export
#include "core/trace_io.h"    // IWYU pragma: export
#include "core/tracker.h"     // IWYU pragma: export
