// Shared source-lexing utilities for the instrumentation scanner
// (core/source_scan) and the stage-flow CFG builder (src/flow): comment and
// string masking plus 1-based line/column lookup. Both passes must agree on
// what is code and what is literal text, so the masking lives here once.
#pragma once

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

namespace saad::core {

/// Returns `source` with comment bytes and string/char-literal contents
/// blanked to '\x01' (newlines preserved, quote characters kept). Searching
/// the result can therefore never match inside a comment or a literal,
/// while the original source still holds the literal text for template
/// extraction.
std::string mask_comments_and_strings(std::string_view source);

/// 1-based (line, column) lookup built once per scanned file.
class LineIndex {
 public:
  explicit LineIndex(std::string_view source) {
    starts_.push_back(0);
    for (std::size_t i = 0; i < source.size(); ++i)
      if (source[i] == '\n') starts_.push_back(i + 1);
  }
  int line(std::size_t pos) const {
    const auto it = std::upper_bound(starts_.begin(), starts_.end(), pos);
    return static_cast<int>(it - starts_.begin());
  }
  int column(std::size_t pos) const {
    return static_cast<int>(
               pos - starts_[static_cast<std::size_t>(line(pos) - 1)]) +
           1;
  }
  /// Byte offset of the first character of a 1-based line; npos when the
  /// line number is past the end of the file.
  std::size_t offset_of_line(int line_number) const {
    if (line_number < 1 ||
        static_cast<std::size_t>(line_number) > starts_.size())
      return std::string_view::npos;
    return starts_[static_cast<std::size_t>(line_number - 1)];
  }
  std::string_view line_text(std::string_view source, int line_number) const {
    const std::size_t begin =
        starts_[static_cast<std::size_t>(line_number - 1)];
    std::size_t end = source.find('\n', begin);
    if (end == std::string_view::npos) end = source.size();
    return source.substr(begin, end - begin);
  }

 private:
  std::vector<std::size_t> starts_;
};

/// True for identifier characters [A-Za-z0-9_].
bool is_ident_char(char c);

/// Case-insensitive match of `word` (which must be lowercase) at `pos` in
/// `code`, with identifier boundaries on both sides.
bool word_at(std::string_view code, std::size_t pos, std::string_view word);

/// Position past any whitespace or mask bytes starting at `pos`.
std::size_t skip_ws(std::string_view code, std::size_t pos);

/// Position just past the matching ')' for the '(' at `open`, or npos when
/// unbalanced. Parens inside literals are masked, so plain counting works.
std::size_t match_paren(std::string_view code, std::size_t open);

/// Position just past the matching '}' for the '{' at `open`, or npos.
std::size_t match_brace(std::string_view code, std::size_t open);

}  // namespace saad::core
