#include "core/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace saad::core {

std::string stage_host_label(const LogRegistry& registry, StageId stage,
                             HostId host) {
  std::string name = stage < registry.num_stages()
                         ? registry.stage(stage).name
                         : "stage#" + std::to_string(stage);
  return name + "(" + std::to_string(host) + ")";
}

std::string describe(const Anomaly& anomaly, const LogRegistry& registry) {
  std::ostringstream out;
  out << "[min " << static_cast<long long>(to_min(anomaly.window_start))
      << "] "
      << (anomaly.kind == AnomalyKind::kFlow ? "FLOW" : "PERF") << " "
      << stage_host_label(registry, anomaly.stage, anomaly.host) << ": ";
  if (anomaly.due_to_new_signature) {
    out << "new signature " << anomaly.example_signature.to_string() << "; ";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu/%llu outliers (p=%.4g, train=%.4g)",
                static_cast<unsigned long long>(anomaly.outliers),
                static_cast<unsigned long long>(anomaly.n), anomaly.p_value,
                anomaly.train_proportion);
  out << buf;
  return out.str();
}

std::vector<std::string> signature_templates(const Signature& signature,
                                             const LogRegistry& registry) {
  std::vector<std::string> out;
  out.reserve(signature.size());
  for (LogPointId p : signature.points()) {
    if (p < registry.num_log_points()) {
      out.push_back(registry.log_point(p).template_text);
    } else {
      out.push_back("<unknown log point " + std::to_string(p) + ">");
    }
  }
  return out;
}

std::string signature_comparison(const Signature& normal,
                                 const Signature& anomalous,
                                 const LogRegistry& registry) {
  std::vector<LogPointId> all(normal.points());
  all.insert(all.end(), anomalous.points().begin(), anomalous.points().end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  TextTable table({"Description of log statements", "Normal", "Anomalous"});
  for (LogPointId p : all) {
    const std::string text = p < registry.num_log_points()
                                 ? registry.log_point(p).template_text
                                 : "<log point " + std::to_string(p) + ">";
    table.add_row({text, normal.contains(p) ? "x" : "",
                   anomalous.contains(p) ? "x" : ""});
  }
  return table.to_string();
}

TimelineChart anomaly_timeline(const std::vector<Anomaly>& anomalies,
                               const LogRegistry& registry,
                               std::size_t num_windows, std::string title) {
  TimelineChart chart(num_windows, std::move(title));
  // Performance marks first, then flow marks so a co-located flow anomaly
  // stays visible (flow is the stronger signal in the paper's narrative).
  for (const auto& a : anomalies) {
    if (a.kind != AnomalyKind::kPerformance) continue;
    chart.mark(stage_host_label(registry, a.stage, a.host), a.window, 'P');
  }
  for (const auto& a : anomalies) {
    if (a.kind != AnomalyKind::kFlow) continue;
    chart.mark(stage_host_label(registry, a.stage, a.host), a.window,
               a.due_to_new_signature ? 'N' : 'F');
  }
  return chart;
}

}  // namespace saad::core
