// Identifier types shared across the SAAD core.
//
// Log points and stages are pre-assigned small dense integers by the
// instrumentation pass (paper §3.2.2), which keeps per-task tracking to a few
// array/hash operations and the synopsis to a few tens of bytes.
#pragma once

#include <cstdint>

namespace saad::core {

/// Identifies a log statement site in the server source.
using LogPointId = std::uint16_t;

/// Identifies a stage (code module executed by pooled/spawned threads).
using StageId = std::uint16_t;

/// Identifies a host (node) in the cluster. The tracker runs per host; the
/// centralized analyzer distinguishes stage instances per host (Fig. 9/10
/// label rows "Stage(host)").
using HostId = std::uint16_t;

/// Unique id per task, assigned by the tracker at task start.
using TaskUid = std::uint64_t;

inline constexpr LogPointId kInvalidLogPoint = 0xFFFF;
inline constexpr StageId kInvalidStage = 0xFFFF;

}  // namespace saad::core
