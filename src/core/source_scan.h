// Source-instrumentation scanner: the reproduction of the paper's §4.1.1
// pre-processing pass (two ~50-line Ruby scripts in the original).
//
// Given server source text, the scanner finds
//   * logging statements (log.debug/info/warn/error with a string literal):
//     these become log points; their static text becomes the template
//     dictionary entry;
//   * stage beginnings: `void run()` methods of Runnable-style classes
//     (covers dispatcher-worker and Executor-based producer-consumer
//     stages) and explicit SAAD_STAGE("Name") markers;
//   * queue-dequeue call sites (`take(`, `poll(`, `dequeue(`, `pop(`):
//     candidate non-Executor consumer-stage beginnings, "identified and
//     presented for manual inspection" exactly as in the paper.
//
// From a scan the tool generates the registration code that builds the
// LogRegistry at startup — the dense log-point ids the tracker needs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace saad::core {

struct ScannedLogPoint {
  std::string file;
  int line = 0;
  std::string level;          // "debug" | "info" | "warn" | "error"
  std::string template_text;  // static portion of the statement
  std::string stage;          // enclosing class, if known
};

struct ScannedStage {
  std::string file;
  int line = 0;
  std::string name;
  bool explicit_marker = false;  // SAAD_STAGE vs inferred from run()
};

struct ScannedDequeueSite {
  std::string file;
  int line = 0;
  std::string text;  // the trimmed source line, for manual inspection
};

struct ScanResult {
  std::vector<ScannedStage> stages;
  std::vector<ScannedLogPoint> log_points;
  std::vector<ScannedDequeueSite> dequeue_sites;
};

/// Scans one source file's text. Append results across files by scanning
/// each and merging the vectors.
ScanResult scan_source(std::string_view source, const std::string& file_name);

void merge(ScanResult& into, ScanResult&& from);

/// Emits C++ registration code: a function
///   void register_instrumented(saad::core::LogRegistry& registry,
///                              Stages& stages, LogPoints& points);
/// plus the Stages/LogPoints structs with one member per discovery.
std::string generate_registration(const ScanResult& result);

}  // namespace saad::core
