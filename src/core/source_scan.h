// Source-instrumentation scanner: the reproduction of the paper's §4.1.1
// pre-processing pass (two ~50-line Ruby scripts in the original).
//
// Given server source text, the scanner finds
//   * logging statements (log.debug/info/warn/error): these become log
//     points; their static text becomes the template dictionary entry.
//     Statements may span lines; adjacent string literals concatenate;
//     calls with no static literal at all are recorded as dynamic-only
//     (the lint layer flags them — their dictionary entry would be empty);
//   * stage beginnings: `void run()` methods of Runnable-style classes
//     (covers dispatcher-worker and Executor-based producer-consumer
//     stages) and explicit SAAD_STAGE("Name") markers;
//   * queue-dequeue call sites (`take(`, `poll(`, `dequeue(`, `pop(`):
//     candidate non-Executor consumer-stage beginnings, "identified and
//     presented for manual inspection" exactly as in the paper.
//
// The scan is span-aware: it lexes comments and string literals first, so
// `log.info` inside a comment or a string never matches, and every finding
// carries a (line, column, end_line) span for diagnostics. Stage
// attribution tracks brace depth, so a log point after a class body closes
// is not attributed to that class.
//
// From a scan the tool generates the registration code that builds the
// LogRegistry at startup — the dense log-point ids the tracker needs.
// The `src/lint` layer consumes the same ScanResult to judge the
// instrumentation (duplicate templates, stages without log points, ...).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace saad::core {

struct ScannedLogPoint {
  std::string file;
  int line = 0;      // 1-based line of the call
  int column = 0;    // 1-based column of the receiver
  int end_line = 0;  // last line of the (possibly multi-line) statement
  std::string level;          // "debug" | "info" | "warn" | "error"
  std::string template_text;  // static portion of the statement
  std::string stage;          // enclosing class, if known
  bool dynamic_only = false;  // no string literal: template_text is empty
};

struct ScannedStage {
  std::string file;
  int line = 0;
  int column = 0;
  std::string name;
  bool explicit_marker = false;  // SAAD_STAGE vs inferred from run()
};

struct ScannedDequeueSite {
  std::string file;
  int line = 0;
  int column = 0;
  std::string text;  // the trimmed source line, for manual inspection
};

struct ScanResult {
  std::vector<ScannedStage> stages;
  std::vector<ScannedLogPoint> log_points;
  std::vector<ScannedDequeueSite> dequeue_sites;
};

/// Scans one source file's text. Append results across files by scanning
/// each and merging the vectors. Findings are in source order.
ScanResult scan_source(std::string_view source, const std::string& file_name);

void merge(ScanResult& into, ScanResult&& from);

/// Emits C++ registration code: a function
///   void register_instrumented(saad::core::LogRegistry& registry,
///                              Stages& stages, LogPoints& points);
/// plus the Stages/LogPoints structs with one member per discovery.
/// Dynamic-only log points (empty template) are skipped — they have no
/// dictionary entry to register.
std::string generate_registration(const ScanResult& result);

}  // namespace saad::core
