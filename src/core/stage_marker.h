// SAAD_STAGE("Name") — explicit stage-beginning marker.
//
// The paper's instrumentation pass marks consumer-stage beginnings (the
// statement after a queue dequeue) so the tracker can attribute the events
// that follow to the right stage. In this codebase the marker is purely
// static: saad_lint's scanner reads it for stage attribution, dequeue-site
// coverage (SAAD-DQ005), and stage-flow CFG regions, while at runtime it
// compiles to nothing. The name should match the stage registered with
// LogRegistry::register_stage for the surrounding code.
#pragma once

#ifndef SAAD_STAGE
#define SAAD_STAGE(name) static_cast<void>(0)
#endif
