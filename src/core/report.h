// Anomaly reporting (paper §3.3.3 "Anomaly Reporting"): anomalies are
// rendered for humans with stage names and the log templates of the
// signature's log points — the semantics of the execution flow.
#pragma once

#include <string>
#include <vector>

#include "common/table.h"
#include "core/detector.h"
#include "core/log_registry.h"

namespace saad::core {

/// "Stage(host)" label used on the paper's timeline figures.
std::string stage_host_label(const LogRegistry& registry, StageId stage,
                             HostId host);

/// One human-readable line per anomaly, e.g.
///   [min 31] FLOW Table(4): new signature {1,2}; 14/120 outliers (p=0.000)
std::string describe(const Anomaly& anomaly, const LogRegistry& registry);

/// The log templates of a signature's points, in id order — what the paper's
/// visualization shows the user for root-cause inspection.
std::vector<std::string> signature_templates(const Signature& signature,
                                             const LogRegistry& registry);

/// Side-by-side template table in the style of the paper's Table 1: rows are
/// the union of both signatures' log templates; columns mark membership.
std::string signature_comparison(const Signature& normal,
                                 const Signature& anomalous,
                                 const LogRegistry& registry);

/// Builds a Fig. 9/10-style timeline: rows are "Stage(host)" (first-anomaly
/// order), columns are windows, markers: F = flow anomaly, P = performance
/// anomaly, N = flow anomaly due to a new signature.
TimelineChart anomaly_timeline(const std::vector<Anomaly>& anomalies,
                               const LogRegistry& registry,
                               std::size_t num_windows, std::string title);

}  // namespace saad::core
