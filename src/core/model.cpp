#include "core/model.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/kfold.h"

namespace saad::core {

OutlierModel OutlierModel::train(std::span<const Synopsis> trace,
                                 const TrainingConfig& config) {
  OutlierModel model;
  model.config_ = config;

  // Pass 1: group durations per (stage, signature).
  struct Group {
    std::vector<double> durations;
  };
  std::unordered_map<StageId,
                     std::unordered_map<Signature, Group, SignatureHash>>
      groups;
  for (const auto& synopsis : trace) {
    const Feature f = make_feature(synopsis);
    groups[f.stage][f.signature].durations.push_back(
        static_cast<double>(f.duration));
  }

  for (auto& [stage_id, sig_groups] : groups) {
    StageModel sm;
    sm.stage = stage_id;
    for (const auto& [sig, group] : sig_groups)
      sm.task_count += group.durations.size();

    std::uint64_t flow_outlier_tasks = 0;
    for (auto& [sig, group] : sig_groups) {
      SignatureStats ss;
      ss.task_count = group.durations.size();
      ss.share = static_cast<double>(ss.task_count) /
                 static_cast<double>(sm.task_count);
      ss.flow_outlier = ss.share < config.flow_share_threshold;
      if (ss.flow_outlier) flow_outlier_tasks += ss.task_count;

      // Performance threshold: quantile of training durations, gated by
      // sample size and the cross-validated stability filter.
      if (ss.task_count >= config.min_signature_samples &&
          !group.durations.empty()) {
        std::vector<double> sorted = group.durations;
        std::sort(sorted.begin(), sorted.end());
        const double threshold =
            stats::percentile_sorted(sorted, config.duration_quantile);
        // percentile_sorted returns NaN for an empty sample (ruled out
        // above, but a NaN threshold must never become a UsTime): such a
        // signature stays out of performance detection (perf_applicable
        // keeps its false default) while remaining in the flow model.
        if (std::isfinite(threshold)) {
          ss.duration_threshold = static_cast<UsTime>(threshold);

          std::uint64_t above = 0;
          for (double d : sorted)
            if (d > threshold) ++above;
          ss.train_perf_outlier_rate =
              static_cast<double>(above) / static_cast<double>(ss.task_count);

          if (config.kfold_k >= 2) {
            const auto stability = stats::kfold_quantile_stability(
                group.durations, config.kfold_k, config.duration_quantile,
                config.unstable_factor);
            ss.perf_applicable = stability.stable;
          } else {
            ss.perf_applicable = true;
          }
        }
      }
      sm.signatures.emplace(sig, ss);
    }
    sm.train_flow_outlier_rate =
        sm.task_count > 0 ? static_cast<double>(flow_outlier_tasks) /
                                static_cast<double>(sm.task_count)
                          : 0.0;
    model.trained_tasks_ += sm.task_count;
    model.stages_.emplace(stage_id, std::move(sm));
  }
  return model;
}

Classification OutlierModel::classify(const Feature& feature) const {
  Classification c;
  const auto stage_it = stages_.find(feature.stage);
  if (stage_it == stages_.end()) {
    // A stage never seen in training: every task is a new flow.
    c.new_signature = true;
    c.flow_outlier = true;
    return c;
  }
  c.known_stage = true;
  const StageModel& sm = stage_it->second;
  const auto sig_it = sm.signatures.find(feature.signature);
  if (sig_it == sm.signatures.end()) {
    c.new_signature = true;
    c.flow_outlier = true;
    return c;
  }
  const SignatureStats& ss = sig_it->second;
  c.flow_outlier = ss.flow_outlier;
  c.perf_applicable = ss.perf_applicable;
  if (ss.perf_applicable)
    c.perf_outlier = feature.duration > ss.duration_threshold;
  return c;
}

const StageModel* OutlierModel::stage_model(StageId stage) const {
  const auto it = stages_.find(stage);
  return it == stages_.end() ? nullptr : &it->second;
}

}  // namespace saad::core
