// JSON export of anomalies and incidents — the machine-readable side of the
// paper's anomaly reporting, for feeding alerting pipelines (PagerDuty-style
// webhooks, log shippers) instead of humans. Self-contained: no JSON library
// dependency, RFC 8259-conformant escaping.
#pragma once

#include <string>
#include <vector>

#include "core/detector.h"
#include "core/incidents.h"
#include "core/log_registry.h"

namespace saad::core {

/// One JSON object per anomaly, e.g.
/// {"window":31,"window_start_us":1860000000,"host":4,"stage":"Table",
///  "kind":"flow","new_signature":true,"p_value":0.0,"outliers":14,"n":120,
///  "signature":[8],"templates":["MemTable is already frozen; ..."]}
std::string to_json(const Anomaly& anomaly, const LogRegistry& registry);

/// {"anomalies":[...]} for a whole batch.
std::string to_json(const std::vector<Anomaly>& anomalies,
                    const LogRegistry& registry);

/// {"incidents":[...]} — grouped bands (see core/incidents.h).
std::string to_json(const std::vector<Incident>& incidents,
                    const LogRegistry& registry);

/// RFC 8259 string escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view text);

}  // namespace saad::core
