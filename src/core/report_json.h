// JSON export of anomalies and incidents — the machine-readable side of the
// paper's anomaly reporting, for feeding alerting pipelines (PagerDuty-style
// webhooks, log shippers) instead of humans. Self-contained: no JSON library
// dependency, RFC 8259-conformant escaping.
#pragma once

#include <string>
#include <vector>

#include "core/detector.h"
#include "core/incidents.h"
#include "core/log_registry.h"

namespace saad::obs {
class MetricsRegistry;
}

namespace saad::core {

/// Options for the batch report overloads.
struct JsonReportOptions {
  /// When set, the report gains a "telemetry" member holding the
  /// schema-versioned obs::render_json() snapshot of this registry, so an
  /// alerting consumer sees the pipeline's own health next to the verdicts.
  const obs::MetricsRegistry* telemetry = nullptr;
};

/// One JSON object per anomaly, e.g.
/// {"window":31,"window_start_us":1860000000,"host":4,"stage":"Table",
///  "kind":"flow","new_signature":true,"p_value":0.0,"outliers":14,"n":120,
///  "signature":[8],"templates":["MemTable is already frozen; ..."]}
std::string to_json(const Anomaly& anomaly, const LogRegistry& registry);

/// {"anomalies":[...]} for a whole batch; with options.telemetry,
/// {"anomalies":[...],"telemetry":{...}}.
std::string to_json(const std::vector<Anomaly>& anomalies,
                    const LogRegistry& registry,
                    const JsonReportOptions& options = {});

/// {"incidents":[...]} — grouped bands (see core/incidents.h); with
/// options.telemetry, {"incidents":[...],"telemetry":{...}}.
std::string to_json(const std::vector<Incident>& incidents,
                    const LogRegistry& registry,
                    const JsonReportOptions& options = {});

/// RFC 8259 string escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view text);

}  // namespace saad::core
