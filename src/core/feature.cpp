#include "core/feature.h"

#include <algorithm>

namespace saad::core {

Signature::Signature(std::vector<LogPointId> points)
    : points_(std::move(points)) {
  std::sort(points_.begin(), points_.end());
  points_.erase(std::unique(points_.begin(), points_.end()), points_.end());
}

Signature Signature::from(const Synopsis& synopsis) {
  std::vector<LogPointId> pts;
  pts.reserve(synopsis.log_points.size());
  for (const auto& lp : synopsis.log_points) pts.push_back(lp.point);
  return Signature(std::move(pts));
}

bool Signature::contains(LogPointId p) const {
  return std::binary_search(points_.begin(), points_.end(), p);
}

std::string Signature::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(points_[i]);
  }
  out += '}';
  return out;
}

std::size_t SignatureHash::operator()(const Signature& s) const noexcept {
  // FNV-1a over the point ids.
  std::size_t h = 1469598103934665603ull;
  for (LogPointId p : s.points()) {
    h ^= p;
    h *= 1099511628211ull;
  }
  return h;
}

Feature make_feature(const Synopsis& synopsis) {
  Feature f;
  f.uid = synopsis.uid;
  f.host = synopsis.host;
  f.stage = synopsis.stage;
  f.signature = Signature::from(synopsis);
  f.start = synopsis.start;
  f.duration = synopsis.duration;
  return f;
}

}  // namespace saad::core
