// Feature creation (paper §3.3.1): each synopsis becomes a feature vector
// <id, stage, signature, duration> where the signature is the *set* of
// distinct log points the task encountered.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/synopsis.h"

namespace saad::core {

/// A task signature: sorted set of distinct log points encountered at least
/// once. "The slightest difference in signature is a strong indicator of a
/// difference in the execution flow" — equality is exact set equality.
class Signature {
 public:
  Signature() = default;

  /// From an explicit point list (deduplicated and sorted).
  explicit Signature(std::vector<LogPointId> points);

  static Signature from(const Synopsis& synopsis);

  const std::vector<LogPointId>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  bool contains(LogPointId p) const;

  std::string to_string() const;  // e.g. "{3,7,9}"

  friend bool operator==(const Signature&, const Signature&) = default;
  friend auto operator<=>(const Signature& a, const Signature& b) {
    return a.points_ <=> b.points_;
  }

 private:
  std::vector<LogPointId> points_;
};

struct SignatureHash {
  std::size_t operator()(const Signature& s) const noexcept;
};

/// The analyzer's per-task feature vector.
struct Feature {
  TaskUid uid = 0;
  HostId host = 0;
  StageId stage = kInvalidStage;
  Signature signature;
  UsTime start = 0;
  UsTime duration = 0;
};

Feature make_feature(const Synopsis& synopsis);

}  // namespace saad::core
