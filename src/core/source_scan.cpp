#include "core/source_scan.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace saad::core {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

/// Extracts the first double-quoted string literal after `from` in `line`
/// (handling \" escapes). Empty when none.
std::string first_string_literal(std::string_view line, std::size_t from) {
  const auto open = line.find('"', from);
  if (open == std::string_view::npos) return {};
  std::string out;
  for (std::size_t i = open + 1; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      out += line[i + 1];
      ++i;
      continue;
    }
    if (line[i] == '"') return out;
    out += line[i];
  }
  return {};
}

/// Finds `needle` at a word-ish boundary (not preceded by an identifier
/// character), case-insensitive on the first letter to catch LOG./log. use.
std::size_t find_call(std::string_view line, std::string_view needle) {
  for (std::size_t pos = 0; pos + needle.size() <= line.size(); ++pos) {
    bool match = true;
    for (std::size_t i = 0; i < needle.size(); ++i) {
      const char a = static_cast<char>(
          std::tolower(static_cast<unsigned char>(line[pos + i])));
      if (a != needle[i]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    // Word boundary only matters when the needle begins with an identifier
    // character (e.g. "saad_stage("); needles like ".info(" legitimately
    // follow a receiver name.
    const char first = needle.front();
    if ((std::isalnum(static_cast<unsigned char>(first)) || first == '_') &&
        pos > 0) {
      const char prev = line[pos - 1];
      if (std::isalnum(static_cast<unsigned char>(prev)) || prev == '_')
        continue;
    }
    return pos;
  }
  return std::string_view::npos;
}

/// The enclosing class name from a `class Foo ...` line, if this is one.
std::string class_name_of(std::string_view line) {
  const auto trimmed = trim(line);
  if (trimmed.rfind("class ", 0) != 0 &&
      trimmed.find(" class ") == std::string_view::npos) {
    return {};
  }
  const auto kw = trimmed.find("class ");
  auto rest = trim(trimmed.substr(kw + 6));
  std::string name;
  for (char c : rest) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') break;
    name += c;
  }
  return name;
}

bool is_commented(std::string_view line, std::size_t pos) {
  const auto comment = line.find("//");
  return comment != std::string_view::npos && comment < pos;
}

std::string sanitize_identifier(std::string_view text, std::size_t index) {
  std::string out;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
    if (out.size() >= 28) break;
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])))
    out = "lp_" + std::to_string(index);
  return out;
}

std::string escape_literal(std::string_view text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

ScanResult scan_source(std::string_view source, const std::string& file_name) {
  ScanResult result;
  std::string current_class;

  static constexpr std::string_view kLevels[] = {"debug", "info", "warn",
                                                 "error"};
  static constexpr std::string_view kDequeues[] = {".take(", ".poll(",
                                                   ".dequeue(", ".pop("};

  int line_number = 0;
  std::size_t begin = 0;
  while (begin <= source.size()) {
    const auto end = source.find('\n', begin);
    const std::string_view line =
        source.substr(begin, end == std::string_view::npos ? std::string_view::npos
                                                           : end - begin);
    line_number++;

    if (const auto name = class_name_of(line); !name.empty()) {
      current_class = name;
    }

    // Explicit stage markers: SAAD_STAGE("Name") / setContext(stageId).
    if (const auto pos = find_call(line, "saad_stage(");
        pos != std::string_view::npos && !is_commented(line, pos)) {
      ScannedStage stage;
      stage.file = file_name;
      stage.line = line_number;
      stage.name = first_string_literal(line, pos);
      stage.explicit_marker = true;
      if (!stage.name.empty()) result.stages.push_back(std::move(stage));
    }

    // Runnable-style stage beginnings: `void run()` inside a class.
    if (const auto pos = find_call(line, "void run(");
        pos != std::string_view::npos && !is_commented(line, pos) &&
        !current_class.empty()) {
      ScannedStage stage;
      stage.file = file_name;
      stage.line = line_number;
      stage.name = current_class;
      result.stages.push_back(std::move(stage));
    }

    // Logging statements: log.<level>("...") / LOG.<level>("...").
    for (const auto level : kLevels) {
      const std::string call = std::string(".") + std::string(level) + "(";
      const auto pos = find_call(line, call);
      if (pos == std::string_view::npos || is_commented(line, pos)) continue;
      // Require a log-ish receiver right before the call.
      const auto recv_end = pos;
      std::size_t recv_begin = recv_end;
      while (recv_begin > 0 &&
             (std::isalnum(static_cast<unsigned char>(line[recv_begin - 1])) ||
              line[recv_begin - 1] == '_')) {
        recv_begin--;
      }
      std::string receiver(line.substr(recv_begin, recv_end - recv_begin));
      std::transform(receiver.begin(), receiver.end(), receiver.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (receiver.find("log") == std::string::npos) continue;

      const auto text = first_string_literal(line, pos);
      if (text.empty()) continue;
      ScannedLogPoint point;
      point.file = file_name;
      point.line = line_number;
      point.level = std::string(level);
      point.template_text = text;
      point.stage = current_class;
      result.log_points.push_back(std::move(point));
    }

    // Dequeue sites: candidate consumer-stage beginnings.
    for (const auto needle : kDequeues) {
      const auto pos = find_call(line, needle);
      if (pos == std::string_view::npos || is_commented(line, pos)) continue;
      ScannedDequeueSite site;
      site.file = file_name;
      site.line = line_number;
      site.text = std::string(trim(line));
      result.dequeue_sites.push_back(std::move(site));
      break;
    }

    if (end == std::string_view::npos) break;
    begin = end + 1;
  }
  return result;
}

void merge(ScanResult& into, ScanResult&& from) {
  auto move_all = [](auto& dst, auto& src) {
    dst.insert(dst.end(), std::make_move_iterator(src.begin()),
               std::make_move_iterator(src.end()));
  };
  move_all(into.stages, from.stages);
  move_all(into.log_points, from.log_points);
  move_all(into.dequeue_sites, from.dequeue_sites);
}

std::string generate_registration(const ScanResult& result) {
  std::ostringstream out;
  out << "// Generated by saad_instrument — do not edit.\n"
      << "#include \"core/log_registry.h\"\n\n"
      << "struct Stages {\n";
  for (std::size_t i = 0; i < result.stages.size(); ++i) {
    out << "  saad::core::StageId "
        << sanitize_identifier(result.stages[i].name, i) << ";\n";
  }
  out << "};\n\nstruct LogPoints {\n";
  for (std::size_t i = 0; i < result.log_points.size(); ++i) {
    out << "  saad::core::LogPointId "
        << sanitize_identifier(result.log_points[i].template_text, i) << ";\n";
  }
  out << "};\n\ninline void register_instrumented("
      << "saad::core::LogRegistry& registry, Stages& stages, "
      << "LogPoints& points) {\n";
  for (std::size_t i = 0; i < result.stages.size(); ++i) {
    const auto& stage = result.stages[i];
    out << "  stages." << sanitize_identifier(stage.name, i)
        << " = registry.register_stage(\"" << escape_literal(stage.name)
        << "\");\n";
  }
  for (std::size_t i = 0; i < result.log_points.size(); ++i) {
    const auto& point = result.log_points[i];
    // Attribute the point to its enclosing stage when scanned, else stage 0.
    std::string stage_expr = "0";
    for (std::size_t s = 0; s < result.stages.size(); ++s) {
      if (result.stages[s].name == point.stage) {
        stage_expr =
            "stages." + sanitize_identifier(result.stages[s].name, s);
        break;
      }
    }
    std::string level = "kDebug";
    if (point.level == "info") level = "kInfo";
    if (point.level == "warn") level = "kWarn";
    if (point.level == "error") level = "kError";
    out << "  points." << sanitize_identifier(point.template_text, i)
        << " = registry.register_log_point(" << stage_expr
        << ", saad::core::Level::" << level << ", \""
        << escape_literal(point.template_text) << "\", \""
        << escape_literal(point.file) << "\", " << point.line << ");\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace saad::core
